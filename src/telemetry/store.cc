#include "telemetry/store.h"

#include <algorithm>

#include <cstdlib>

#include "common/csv.h"

namespace kea::telemetry {

void TelemetryStore::AppendAll(const std::vector<MachineHourRecord>& records) {
  records_.insert(records_.end(), records.begin(), records.end());
}

std::vector<MachineHourRecord> TelemetryStore::Query(const RecordFilter& filter) const {
  if (!filter) return records_;
  std::vector<MachineHourRecord> out;
  for (const auto& r : records_) {
    if (filter(r)) out.push_back(r);
  }
  return out;
}

std::map<sim::MachineGroupKey, std::vector<MachineHourRecord>>
TelemetryStore::GroupByKey(const RecordFilter& filter) const {
  std::map<sim::MachineGroupKey, std::vector<MachineHourRecord>> out;
  for (const auto& r : records_) {
    if (filter && !filter(r)) continue;
    out[r.group()].push_back(r);
  }
  return out;
}

std::vector<double> TelemetryStore::Extract(
    const std::function<double(const MachineHourRecord&)>& field,
    const RecordFilter& filter) const {
  std::vector<double> out;
  out.reserve(records_.size());
  for (const auto& r : records_) {
    if (filter && !filter(r)) continue;
    out.push_back(field(r));
  }
  return out;
}

StatusOr<std::pair<sim::HourIndex, sim::HourIndex>> TelemetryStore::HourRange() const {
  if (records_.empty()) {
    return Status::FailedPrecondition("telemetry store is empty");
  }
  sim::HourIndex lo = records_.front().hour;
  sim::HourIndex hi = lo;
  for (const auto& r : records_) {
    lo = std::min(lo, r.hour);
    hi = std::max(hi, r.hour);
  }
  return std::make_pair(lo, hi);
}

StatusOr<TelemetryStore> TelemetryStore::FromCsv(const std::string& text) {
  // ToCsv() terminates every row — including the last — with '\n'. Text that
  // does not end in a newline is therefore a truncation artifact, and its
  // final row may hold a silently shortened number ("280.5" cut to "280."
  // parses fine but means something else). Reject it outright rather than
  // fabricating a value.
  if (text.empty() || text.back() != '\n') {
    return Status::InvalidArgument(
        "telemetry CSV does not end in a newline (truncated?)");
  }
  KEA_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text));
  std::vector<std::string> header = MachineHourCsvHeader();
  std::vector<int> index;
  index.reserve(header.size());
  for (const std::string& column : header) {
    int i = table.ColumnIndex(column);
    if (i < 0) return Status::InvalidArgument("missing column: " + column);
    index.push_back(i);
  }

  auto num = [](const std::string& cell) -> StatusOr<double> {
    char* end = nullptr;
    double v = std::strtod(cell.c_str(), &end);
    if (end == cell.c_str() || *end != '\0') {
      return Status::InvalidArgument("unparsable number '" + cell + "'");
    }
    return v;
  };

  TelemetryStore store;
  for (const auto& row : table.rows) {
    auto cell = [&](size_t i) -> const std::string& {
      return row[static_cast<size_t>(index[i])];
    };
    MachineHourRecord r;
    KEA_ASSIGN_OR_RETURN(double machine_id, num(cell(0)));
    KEA_ASSIGN_OR_RETURN(double hour, num(cell(1)));
    KEA_ASSIGN_OR_RETURN(double rack, num(cell(2)));
    KEA_ASSIGN_OR_RETURN(double sku, num(cell(3)));
    KEA_ASSIGN_OR_RETURN(double sc, num(cell(4)));
    r.machine_id = static_cast<int>(machine_id);
    r.hour = static_cast<sim::HourIndex>(hour);
    r.rack = static_cast<int>(rack);
    r.sku = static_cast<sim::SkuId>(sku);
    r.sc = static_cast<sim::ScId>(sc);
    KEA_ASSIGN_OR_RETURN(r.avg_running_containers, num(cell(5)));
    KEA_ASSIGN_OR_RETURN(r.cpu_utilization, num(cell(6)));
    KEA_ASSIGN_OR_RETURN(r.tasks_finished, num(cell(7)));
    KEA_ASSIGN_OR_RETURN(r.data_read_mb, num(cell(8)));
    KEA_ASSIGN_OR_RETURN(r.avg_task_latency_s, num(cell(9)));
    KEA_ASSIGN_OR_RETURN(r.cpu_time_core_s, num(cell(10)));
    KEA_ASSIGN_OR_RETURN(r.queued_containers, num(cell(11)));
    KEA_ASSIGN_OR_RETURN(r.queue_latency_ms, num(cell(12)));
    KEA_ASSIGN_OR_RETURN(r.rejected_containers, num(cell(13)));
    KEA_ASSIGN_OR_RETURN(r.cores_used, num(cell(14)));
    KEA_ASSIGN_OR_RETURN(r.ssd_used_gb, num(cell(15)));
    KEA_ASSIGN_OR_RETURN(r.ram_used_gb, num(cell(16)));
    KEA_ASSIGN_OR_RETURN(r.network_used_mbps, num(cell(17)));
    KEA_ASSIGN_OR_RETURN(r.power_watts, num(cell(18)));
    store.Append(r);
  }
  return store;
}

std::string TelemetryStore::ToCsv() const {
  CsvWriter writer;
  writer.SetHeader(MachineHourCsvHeader());
  for (const auto& r : records_) {
    // Row width always matches the header; ignore the status.
    (void)writer.AppendRow(MachineHourCsvRow(r));
  }
  return writer.ToString();
}

}  // namespace kea::telemetry
