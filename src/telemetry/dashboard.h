#ifndef KEA_TELEMETRY_DASHBOARD_H_
#define KEA_TELEMETRY_DASHBOARD_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "telemetry/perf_monitor.h"

namespace kea::telemetry {

/// Text renderings of the performance monitor's views (Section 4.1: "the
/// resulting visualizations are embraced by the engineering teams"). These
/// power the bench/example output; they are not a plotting library, just the
/// monitor's scatter/series views in fixed-width ASCII.

/// Renders an x/y scatter as a rows x cols character grid. Multiple points
/// in one cell escalate the glyph (. : * #). Axis ranges are data-driven.
/// Returns InvalidArgument for empty input or degenerate grid sizes.
StatusOr<std::string> RenderScatter(const std::vector<ScatterPoint>& points,
                                    int rows, int cols,
                                    const std::string& x_label,
                                    const std::string& y_label);

/// Renders a series as one sparkline row per bucket using block characters
/// of increasing height (space . : - = # @). Values are min-max normalized.
StatusOr<std::string> RenderSparkline(const std::vector<double>& values,
                                      int width = 80);

/// Renders the hourly cluster utilization view of Figure 1 (one sparkline
/// per day) directly from a store.
StatusOr<std::string> RenderUtilizationWeek(const TelemetryStore& store,
                                            const RecordFilter& filter = nullptr);

/// Renders the kea::obs registry snapshot as a fixed-width ops panel: every
/// deterministic counter, and — when `include_timing` is set — the wall-clock
/// gauges and latency histograms too. This is the "ops view" that sits next
/// to the fleet report: what the pipeline *did* (fits, sweeps, ingestion
/// accept/quarantine, rollout waves) beside what the fleet *looked like*.
std::string RenderObsPanel(bool include_timing = false);

/// Renders the span tracer's aggregated self-time table (top spans by self
/// time). Empty string when tracing is disabled or no spans were recorded.
std::string RenderTraceSummary();

}  // namespace kea::telemetry

#endif  // KEA_TELEMETRY_DASHBOARD_H_
