#ifndef KEA_TELEMETRY_STORE_H_
#define KEA_TELEMETRY_STORE_H_

#include <functional>
#include <map>
#include <vector>

#include "common/status.h"
#include "telemetry/record.h"

namespace kea::telemetry {

/// Predicate over machine-hour records used by queries.
using RecordFilter = std::function<bool(const MachineHourRecord&)>;

/// In-memory column-agnostic store of machine-hour telemetry. In production
/// this is the output of the daily data-orchestration pipeline; here the
/// simulation engines append into it and KEA's performance monitor queries
/// it.
class TelemetryStore {
 public:
  void Append(const MachineHourRecord& record) { records_.push_back(record); }
  void AppendAll(const std::vector<MachineHourRecord>& records);

  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const std::vector<MachineHourRecord>& records() const { return records_; }

  /// Returns the records matching `filter` (all records when filter is null).
  std::vector<MachineHourRecord> Query(const RecordFilter& filter) const;

  /// Returns records grouped by SC-SKU combination.
  std::map<sim::MachineGroupKey, std::vector<MachineHourRecord>> GroupByKey(
      const RecordFilter& filter = nullptr) const;

  /// Extracts one numeric field from each matching record.
  std::vector<double> Extract(const std::function<double(const MachineHourRecord&)>& field,
                              const RecordFilter& filter = nullptr) const;

  /// Hour range covered by the store: [min_hour, max_hour]. Returns
  /// FailedPrecondition when empty.
  StatusOr<std::pair<sim::HourIndex, sim::HourIndex>> HourRange() const;

  /// Serializes all records as CSV text (header + rows).
  std::string ToCsv() const;

  /// Parses a store from CSV produced by ToCsv (or an external trace with
  /// the same header). Returns InvalidArgument on unknown columns or
  /// unparsable numbers.
  static StatusOr<TelemetryStore> FromCsv(const std::string& text);

  void Clear() { records_.clear(); }

 private:
  std::vector<MachineHourRecord> records_;
};

}  // namespace kea::telemetry

#endif  // KEA_TELEMETRY_STORE_H_
