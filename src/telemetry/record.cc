#include "telemetry/record.h"

namespace kea::telemetry {

double MachineHourRecord::BytesPerSecond() const {
  double total_exec_s = tasks_finished * avg_task_latency_s;
  if (total_exec_s <= 0.0) return 0.0;
  return data_read_mb / total_exec_s;
}

double MachineHourRecord::BytesPerCpuTime() const {
  if (cpu_time_core_s <= 0.0) return 0.0;
  return data_read_mb / cpu_time_core_s;
}

std::vector<std::string> MachineHourCsvHeader() {
  return {"machine_id", "hour", "rack", "sku", "sc",
          "avg_running_containers", "cpu_utilization", "tasks_finished",
          "data_read_mb", "avg_task_latency_s", "cpu_time_core_s",
          "queued_containers", "queue_latency_ms", "rejected_containers", "cores_used",
          "ssd_used_gb", "ram_used_gb", "network_used_mbps", "power_watts"};
}

std::vector<std::string> MachineHourCsvRow(const MachineHourRecord& r) {
  auto d = [](double v) { return std::to_string(v); };
  return {std::to_string(r.machine_id), std::to_string(r.hour),
          std::to_string(r.rack), std::to_string(r.sku), std::to_string(r.sc),
          d(r.avg_running_containers), d(r.cpu_utilization), d(r.tasks_finished),
          d(r.data_read_mb), d(r.avg_task_latency_s), d(r.cpu_time_core_s),
          d(r.queued_containers), d(r.queue_latency_ms), d(r.rejected_containers), d(r.cores_used),
          d(r.ssd_used_gb), d(r.ram_used_gb), d(r.network_used_mbps),
          d(r.power_watts)};
}

}  // namespace kea::telemetry
