#include "telemetry/record.h"

#include <cstdio>

namespace kea::telemetry {

double MachineHourRecord::BytesPerSecond() const {
  double total_exec_s = tasks_finished * avg_task_latency_s;
  if (total_exec_s <= 0.0) return 0.0;
  return data_read_mb / total_exec_s;
}

double MachineHourRecord::BytesPerCpuTime() const {
  if (cpu_time_core_s <= 0.0) return 0.0;
  return data_read_mb / cpu_time_core_s;
}

std::vector<std::string> MachineHourCsvHeader() {
  return {"machine_id", "hour", "rack", "sku", "sc",
          "avg_running_containers", "cpu_utilization", "tasks_finished",
          "data_read_mb", "avg_task_latency_s", "cpu_time_core_s",
          "queued_containers", "queue_latency_ms", "rejected_containers", "cores_used",
          "ssd_used_gb", "ram_used_gb", "network_used_mbps", "power_watts"};
}

std::vector<std::string> MachineHourCsvRow(const MachineHourRecord& r) {
  // %.17g round-trips every finite double exactly through strtod, which the
  // checkpoint/resume path depends on: a store serialized to CSV and parsed
  // back must be bit-identical to the original.
  auto d = [](double v) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return std::string(buf);
  };
  return {std::to_string(r.machine_id), std::to_string(r.hour),
          std::to_string(r.rack), std::to_string(r.sku), std::to_string(r.sc),
          d(r.avg_running_containers), d(r.cpu_utilization), d(r.tasks_finished),
          d(r.data_read_mb), d(r.avg_task_latency_s), d(r.cpu_time_core_s),
          d(r.queued_containers), d(r.queue_latency_ms), d(r.rejected_containers), d(r.cores_used),
          d(r.ssd_used_gb), d(r.ram_used_gb), d(r.network_used_mbps),
          d(r.power_watts)};
}

void PutMachineHourRecord(const MachineHourRecord& r, StateWriter* w) {
  w->PutInt(r.machine_id);
  w->PutI64(r.hour);
  w->PutInt(r.rack);
  w->PutInt(r.sku);
  w->PutInt(r.sc);
  w->PutDouble(r.avg_running_containers);
  w->PutDouble(r.cpu_utilization);
  w->PutDouble(r.tasks_finished);
  w->PutDouble(r.data_read_mb);
  w->PutDouble(r.avg_task_latency_s);
  w->PutDouble(r.cpu_time_core_s);
  w->PutDouble(r.queued_containers);
  w->PutDouble(r.queue_latency_ms);
  w->PutDouble(r.rejected_containers);
  w->PutDouble(r.cores_used);
  w->PutDouble(r.ssd_used_gb);
  w->PutDouble(r.ram_used_gb);
  w->PutDouble(r.network_used_mbps);
  w->PutDouble(r.power_watts);
}

Status GetMachineHourRecord(StateReader* reader, MachineHourRecord* r) {
  KEA_RETURN_IF_ERROR(reader->GetInt(&r->machine_id));
  int64_t hour = 0;
  KEA_RETURN_IF_ERROR(reader->GetI64(&hour));
  r->hour = static_cast<sim::HourIndex>(hour);
  KEA_RETURN_IF_ERROR(reader->GetInt(&r->rack));
  KEA_RETURN_IF_ERROR(reader->GetInt(&r->sku));
  KEA_RETURN_IF_ERROR(reader->GetInt(&r->sc));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->avg_running_containers));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->cpu_utilization));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->tasks_finished));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->data_read_mb));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->avg_task_latency_s));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->cpu_time_core_s));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->queued_containers));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->queue_latency_ms));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->rejected_containers));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->cores_used));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->ssd_used_gb));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->ram_used_gb));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->network_used_mbps));
  KEA_RETURN_IF_ERROR(reader->GetDouble(&r->power_watts));
  return Status::OK();
}

}  // namespace kea::telemetry
