#ifndef KEA_TELEMETRY_DRIFT_DETECTOR_H_
#define KEA_TELEMETRY_DRIFT_DETECTOR_H_

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/stats.h"
#include "sim/types.h"
#include "telemetry/store.h"

namespace kea::telemetry {

/// Change-point monitoring over the machine-hour stream — KEA's early warning
/// that the environment its What-if models were fitted on no longer exists.
/// It watches hourly fleet aggregates (machines reporting, utilization, task
/// latency, queue latency, throughput) through per-metric Page-Hinkley
/// detectors, plus a staleness clock that fires when telemetry stops arriving
/// altogether. Alarms feed the core::ModelHealth circuit breaker; the
/// detector itself never looks at models or configs.
///
/// The detector reads the store incrementally through a cursor, so repeated
/// CatchUp calls cost O(new records), not O(store).
class DriftDetector {
 public:
  /// The monitored per-hour fleet aggregates, in stream-index order.
  enum Metric : size_t {
    kMachinesReporting = 0,  ///< Records per hour (crashes → gaps).
    kUtilization,            ///< Mean cpu_utilization.
    kTaskLatency,            ///< Mean avg_task_latency_s over active machines.
    kQueueLatency,           ///< Mean queue_latency_ms.
    kThroughput,             ///< Mean tasks_finished per machine.
    kNumMetrics,
  };

  struct Options {
    /// The drift detector's Page-Hinkley defaults differ from the class
    /// defaults in one way: min_stddev doubles as a *practical-significance
    /// floor*. Seasonal differencing leaves a near-noiseless stream of
    /// relative week-on-week changes, so the standardization divisor floors
    /// at 0.05 — shifts under ~5% of the metric's level (KEA's own
    /// conservative config deployments, clamped by guardrails) never
    /// accumulate fast enough to alarm, while fleet faults (double-digit
    /// machine loss, inflated latencies) stand several floors tall.
    static ml::PageHinkleyDetector::Options DefaultPageHinkley() {
      ml::PageHinkleyDetector::Options o;
      o.min_stddev = 0.05;
      return o;
    }

    /// Shared Page-Hinkley parameterization for every metric stream (inputs
    /// are standardized, so one setting fits counts and fractions alike).
    ml::PageHinkleyDetector::Options page_hinkley = DefaultPageHinkley();
    /// Hours without any new telemetry before the staleness alarm fires.
    int staleness_hours = 48;
    /// Seasonal differencing period: each detector observes the *relative*
    /// change (x[t] - x[t - period]) / x[t - period], so any recurring
    /// pattern with this period (diurnal + weekly load cycles) cancels
    /// exactly, while a regime change shows up as a period-long pulse. The
    /// first period of data only primes the baseline (nothing is fed).
    /// 0 feeds raw values — only sensible for streams with no seasonal
    /// structure.
    int seasonal_period_hours = sim::kHoursPerWeek;
  };

  struct Alarm {
    std::string metric;      ///< Metric name, or "staleness".
    sim::HourIndex hour = 0; ///< Hour whose aggregate fired the alarm.
    double drift = 0.0;      ///< Cumulative drift at the alarm (sigma units).
  };

  DriftDetector() : DriftDetector(Options()) {}
  explicit DriftDetector(const Options& options);

  /// Consumes records appended to `store` since the last call, folds them
  /// into hourly aggregates, feeds completed hours to the detectors, and
  /// returns the alarms that fired. An hour is fed once the cursor moves past
  /// it; records for hours at or below the fed watermark (late arrivals) are
  /// counted but not re-fed.
  std::vector<Alarm> CatchUp(const TelemetryStore& store);

  /// Staleness check against the session clock: alarms when no telemetry has
  /// been observed for staleness_hours. Fires at most once per dry spell.
  std::vector<Alarm> CheckStaleness(sim::HourIndex now);

  /// True once any alarm has fired since the last Rearm().
  bool drifting() const { return drifting_; }

  /// Clears alarm state, resets every detector and the seasonal baselines —
  /// called after a model refit passes validation, making the post-drift
  /// regime the new baseline. (The next period of data re-primes the
  /// baselines; residual tracking covers the window in between.)
  void Rearm();

  static const char* MetricName(size_t metric);
  /// Alarms fired per metric since construction (Rearm does not clear).
  const std::array<size_t, kNumMetrics>& alarm_counts() const {
    return alarm_counts_;
  }
  size_t staleness_alarms() const { return staleness_alarms_; }
  sim::HourIndex last_data_hour() const { return last_data_hour_; }
  /// Largest current drift across metric streams, in sigma units.
  double max_drift() const;

  /// Bit-exact checkpoint of cursor, aggregates-in-flight, detector states
  /// and alarm bookkeeping. Options are construction-time.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  struct HourAgg {
    sim::HourIndex hour = 0;
    size_t records = 0;
    size_t active = 0;  ///< Records with tasks_finished > 0.
    double util_sum = 0.0;
    double latency_sum = 0.0;
    double queue_sum = 0.0;
    double tasks_sum = 0.0;
  };

  void FeedHour(const HourAgg& agg, std::vector<Alarm>* alarms);
  void ResetSeasonalBaseline();

  Options options_;
  std::array<ml::PageHinkleyDetector, kNumMetrics> detectors_;
  std::array<size_t, kNumMetrics> alarm_counts_{};
  size_t staleness_alarms_ = 0;
  uint64_t cursor_ = 0;             ///< Store records consumed so far.
  sim::HourIndex fed_watermark_ = -1;  ///< Highest hour already fed.
  sim::HourIndex last_data_hour_ = -1;
  bool drifting_ = false;
  bool stale_alarmed_ = false;
  std::vector<HourAgg> pending_;    ///< Hours aggregated but not yet fed.

  /// Seasonal baselines for differencing, indexed [metric][hour % period];
  /// the filled flag distinguishes "no prior week yet" from a stored 0.
  std::array<std::vector<double>, kNumMetrics> season_value_;
  std::array<std::vector<uint8_t>, kNumMetrics> season_filled_;
};

}  // namespace kea::telemetry

#endif  // KEA_TELEMETRY_DRIFT_DETECTOR_H_
