#include "telemetry/ingestion.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/snapshot.h"
#include "obs/metrics.h"

namespace kea::telemetry {
namespace {

// Registry mirrors of the pipeline's internal Counters (satellite of the
// observability PR: quarantines must be visible outside the pipeline
// object). Deterministic: they count logical records, and the metrics-level
// invariant ingest.accepted + ingest.quarantined == ingest.seen holds at
// every instant because each record bumps exactly one of the two before the
// next is seen (checked in ingestion_test).
obs::Counter* SeenCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("ingest.seen");
  return c;
}
obs::Counter* AcceptedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("ingest.accepted");
  return c;
}
obs::Counter* QuarantinedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("ingest.quarantined");
  return c;
}
obs::Counter* TransientWriteFailureCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("ingest.transient_write_failures");
  return c;
}
obs::Counter* ReasonCounter(QuarantineReason reason) {
  static const auto* counters = [] {
    auto* a = new std::array<obs::Counter*, kNumQuarantineReasons>();
    for (size_t i = 0; i < kNumQuarantineReasons; ++i) {
      (*a)[i] = obs::Registry::Get().GetCounter(
          "ingest.quarantined",
          std::string("reason=") +
              QuarantineReasonToString(static_cast<QuarantineReason>(i)));
    }
    return a;
  }();
  return (*counters)[static_cast<size_t>(reason)];
}

/// Stable key for the (machine, hour) dedup index.
uint64_t RecordKey(const MachineHourRecord& r) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(r.machine_id)) << 32) |
         static_cast<uint32_t>(r.hour);
}

/// FNV-1a over the metric payload (everything that should vary hour to hour
/// on a live machine). Identity fields are excluded: a stuck counter is a
/// machine whose *measurements* freeze, not its labels.
uint64_t MetricSignature(const MachineHourRecord& r) {
  const double fields[] = {
      r.avg_running_containers, r.cpu_utilization,  r.tasks_finished,
      r.data_read_mb,           r.avg_task_latency_s, r.cpu_time_core_s,
      r.queued_containers,      r.queue_latency_ms,  r.rejected_containers,
      r.cores_used,             r.ssd_used_gb,       r.ram_used_gb,
      r.network_used_mbps,      r.power_watts};
  uint64_t hash = 1469598103934665603ULL;
  for (double v : fields) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace

const char* QuarantineReasonToString(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kNonFinite:
      return "NON_FINITE";
    case QuarantineReason::kOutOfRange:
      return "OUT_OF_RANGE";
    case QuarantineReason::kInconsistent:
      return "INCONSISTENT";
    case QuarantineReason::kDuplicate:
      return "DUPLICATE";
    case QuarantineReason::kLate:
      return "LATE";
    case QuarantineReason::kStuckCounter:
      return "STUCK_COUNTER";
    case QuarantineReason::kWriteFailed:
      return "WRITE_FAILED";
  }
  return "UNKNOWN";
}

bool IngestionPipeline::Validate(const MachineHourRecord& r,
                                 QuarantineReason* reason) const {
  const double fields[] = {
      r.avg_running_containers, r.cpu_utilization,  r.tasks_finished,
      r.data_read_mb,           r.avg_task_latency_s, r.cpu_time_core_s,
      r.queued_containers,      r.queue_latency_ms,  r.rejected_containers,
      r.cores_used,             r.ssd_used_gb,       r.ram_used_gb,
      r.network_used_mbps,      r.power_watts};
  for (double v : fields) {
    if (!std::isfinite(v)) {
      *reason = QuarantineReason::kNonFinite;
      return false;
    }
  }
  for (double v : fields) {
    if (v < 0.0) {
      *reason = QuarantineReason::kOutOfRange;
      return false;
    }
  }
  if (r.cpu_utilization > 1.0 || r.hour < 0 || r.machine_id < 0) {
    *reason = QuarantineReason::kOutOfRange;
    return false;
  }
  // Latency with zero finished tasks is a join artifact, not a measurement.
  if (r.tasks_finished <= 0.0 && r.avg_task_latency_s > 0.0) {
    *reason = QuarantineReason::kInconsistent;
    return false;
  }
  return true;
}

void IngestionPipeline::Quarantine(const MachineHourRecord& r,
                                   QuarantineReason reason) {
  ++counters_.quarantined;
  ++counters_.by_reason[static_cast<size_t>(reason)];
  QuarantinedCounter()->Increment();
  ReasonCounter(reason)->Increment();
  quarantine_.push_back(QuarantinedRecord{r, reason, watermark_});
}

Status IngestionPipeline::Ingest(const std::vector<MachineHourRecord>& batch) {
  if (sink_ == nullptr) return Status::InvalidArgument("null telemetry sink");
  // Register every mirror up front so the registry's instrument set — and
  // therefore the deterministic snapshot — does not depend on which rare
  // events (e.g. a transient write failure) happened to occur.
  SeenCounter();
  AcceptedCounter();
  QuarantinedCounter();
  TransientWriteFailureCounter();
  ReasonCounter(QuarantineReason::kNonFinite);
  for (const MachineHourRecord& r : batch) {
    ++counters_.seen;
    SeenCounter()->Increment();

    if (options_.validate) {
      QuarantineReason reason;
      if (!Validate(r, &reason)) {
        Quarantine(r, reason);
        continue;
      }
    }
    if (options_.max_lateness_hours >= 0 && watermark_ >= 0 &&
        r.hour < watermark_ - options_.max_lateness_hours) {
      Quarantine(r, QuarantineReason::kLate);
      continue;
    }
    if (options_.deduplicate && seen_keys_.count(RecordKey(r)) > 0) {
      Quarantine(r, QuarantineReason::kDuplicate);
      continue;
    }
    if (options_.stuck_run_threshold > 0) {
      StuckState& state = stuck_[r.machine_id];
      uint64_t signature = MetricSignature(r);
      state.run_length = signature == state.signature ? state.run_length + 1 : 1;
      state.signature = signature;
      if (state.run_length > options_.stuck_run_threshold) {
        Quarantine(r, QuarantineReason::kStuckCounter);
        continue;
      }
    }

    Status written = retry_.Run([this, &r](int attempt) {
      if (!write_hook_) return Status::OK();
      Status s = write_hook_(r, attempt);
      if (RetryPolicy::IsTransient(s.code())) {
        ++counters_.transient_write_failures;
        TransientWriteFailureCounter()->Increment();
      }
      return s;
    });
    if (!written.ok()) {
      Quarantine(r, QuarantineReason::kWriteFailed);
      continue;
    }

    sink_->Append(r);
    ++counters_.accepted;
    AcceptedCounter()->Increment();
    if (options_.deduplicate) seen_keys_.insert(RecordKey(r));
    if (r.hour > watermark_) watermark_ = r.hour;
  }
  return Status::OK();
}

std::string IngestionPipeline::SerializeState() const {
  StateWriter w;
  w.PutU64(counters_.seen);
  w.PutU64(counters_.accepted);
  w.PutU64(counters_.quarantined);
  for (size_t n : counters_.by_reason) w.PutU64(n);
  w.PutU64(counters_.transient_write_failures);

  w.PutU64(quarantine_.size());
  for (const QuarantinedRecord& q : quarantine_) {
    PutMachineHourRecord(q.record, &w);
    w.PutInt(static_cast<int>(q.reason));
    w.PutI64(q.watermark);
  }

  // Canonical (sorted) order so two pipelines with identical logical state
  // serialize identically regardless of hash-table iteration order.
  std::vector<uint64_t> keys(seen_keys_.begin(), seen_keys_.end());
  std::sort(keys.begin(), keys.end());
  w.PutU64(keys.size());
  for (uint64_t k : keys) w.PutU64(k);

  w.PutI64(watermark_);

  std::vector<std::pair<int, StuckState>> stuck(stuck_.begin(), stuck_.end());
  std::sort(stuck.begin(), stuck.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  w.PutU64(stuck.size());
  for (const auto& [machine, state] : stuck) {
    w.PutInt(machine);
    w.PutU64(state.signature);
    w.PutInt(state.run_length);
  }

  const RetryPolicy::Stats& rs = retry_.stats();
  w.PutI64(rs.calls);
  w.PutI64(rs.attempts);
  w.PutI64(rs.retries);
  w.PutI64(rs.exhausted);
  w.PutDouble(rs.total_backoff_ms);
  return w.Release();
}

Status IngestionPipeline::RestoreState(const std::string& blob) {
  StateReader r(blob);
  Counters counters;
  uint64_t u = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&u));
  counters.seen = u;
  KEA_RETURN_IF_ERROR(r.GetU64(&u));
  counters.accepted = u;
  KEA_RETURN_IF_ERROR(r.GetU64(&u));
  counters.quarantined = u;
  for (size_t& n : counters.by_reason) {
    KEA_RETURN_IF_ERROR(r.GetU64(&u));
    n = u;
  }
  KEA_RETURN_IF_ERROR(r.GetU64(&u));
  counters.transient_write_failures = u;

  uint64_t count = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  std::vector<QuarantinedRecord> quarantine(count);
  for (QuarantinedRecord& q : quarantine) {
    KEA_RETURN_IF_ERROR(GetMachineHourRecord(&r, &q.record));
    int reason = 0;
    KEA_RETURN_IF_ERROR(r.GetInt(&reason));
    if (reason < 0 || reason >= static_cast<int>(kNumQuarantineReasons)) {
      return Status::InvalidArgument("bad quarantine reason in state blob");
    }
    q.reason = static_cast<QuarantineReason>(reason);
    int64_t wm = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&wm));
    q.watermark = static_cast<sim::HourIndex>(wm);
  }

  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  std::unordered_set<uint64_t> seen_keys;
  seen_keys.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t k = 0;
    KEA_RETURN_IF_ERROR(r.GetU64(&k));
    seen_keys.insert(k);
  }

  int64_t watermark = 0;
  KEA_RETURN_IF_ERROR(r.GetI64(&watermark));

  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  std::unordered_map<int, StuckState> stuck;
  stuck.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int machine = 0;
    StuckState state;
    KEA_RETURN_IF_ERROR(r.GetInt(&machine));
    KEA_RETURN_IF_ERROR(r.GetU64(&state.signature));
    KEA_RETURN_IF_ERROR(r.GetInt(&state.run_length));
    stuck[machine] = state;
  }

  RetryPolicy::Stats rs;
  KEA_RETURN_IF_ERROR(r.GetI64(&rs.calls));
  KEA_RETURN_IF_ERROR(r.GetI64(&rs.attempts));
  KEA_RETURN_IF_ERROR(r.GetI64(&rs.retries));
  KEA_RETURN_IF_ERROR(r.GetI64(&rs.exhausted));
  KEA_RETURN_IF_ERROR(r.GetDouble(&rs.total_backoff_ms));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in ingestion state blob");
  }

  counters_ = counters;
  quarantine_ = std::move(quarantine);
  seen_keys_ = std::move(seen_keys);
  watermark_ = static_cast<sim::HourIndex>(watermark);
  stuck_ = std::move(stuck);
  retry_.RestoreStats(rs);

  // Re-point the registry mirrors at the restored totals so a resumed
  // process reports the same counts the crashed one had durably recorded
  // (obs_test asserts the snapshot is bit-identical across the cycle).
  SeenCounter()->RestoreTo(counters_.seen);
  AcceptedCounter()->RestoreTo(counters_.accepted);
  QuarantinedCounter()->RestoreTo(counters_.quarantined);
  TransientWriteFailureCounter()->RestoreTo(counters_.transient_write_failures);
  for (size_t i = 0; i < kNumQuarantineReasons; ++i) {
    ReasonCounter(static_cast<QuarantineReason>(i))
        ->RestoreTo(counters_.by_reason[i]);
  }
  return Status::OK();
}

}  // namespace kea::telemetry
