#include "telemetry/ingestion.h"

#include <cmath>
#include <cstring>

namespace kea::telemetry {
namespace {

/// Stable key for the (machine, hour) dedup index.
uint64_t RecordKey(const MachineHourRecord& r) {
  return (static_cast<uint64_t>(static_cast<uint32_t>(r.machine_id)) << 32) |
         static_cast<uint32_t>(r.hour);
}

/// FNV-1a over the metric payload (everything that should vary hour to hour
/// on a live machine). Identity fields are excluded: a stuck counter is a
/// machine whose *measurements* freeze, not its labels.
uint64_t MetricSignature(const MachineHourRecord& r) {
  const double fields[] = {
      r.avg_running_containers, r.cpu_utilization,  r.tasks_finished,
      r.data_read_mb,           r.avg_task_latency_s, r.cpu_time_core_s,
      r.queued_containers,      r.queue_latency_ms,  r.rejected_containers,
      r.cores_used,             r.ssd_used_gb,       r.ram_used_gb,
      r.network_used_mbps,      r.power_watts};
  uint64_t hash = 1469598103934665603ULL;
  for (double v : fields) {
    uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    for (int shift = 0; shift < 64; shift += 8) {
      hash ^= (bits >> shift) & 0xFF;
      hash *= 1099511628211ULL;
    }
  }
  return hash;
}

}  // namespace

const char* QuarantineReasonToString(QuarantineReason reason) {
  switch (reason) {
    case QuarantineReason::kNonFinite:
      return "NON_FINITE";
    case QuarantineReason::kOutOfRange:
      return "OUT_OF_RANGE";
    case QuarantineReason::kInconsistent:
      return "INCONSISTENT";
    case QuarantineReason::kDuplicate:
      return "DUPLICATE";
    case QuarantineReason::kLate:
      return "LATE";
    case QuarantineReason::kStuckCounter:
      return "STUCK_COUNTER";
    case QuarantineReason::kWriteFailed:
      return "WRITE_FAILED";
  }
  return "UNKNOWN";
}

bool IngestionPipeline::Validate(const MachineHourRecord& r,
                                 QuarantineReason* reason) const {
  const double fields[] = {
      r.avg_running_containers, r.cpu_utilization,  r.tasks_finished,
      r.data_read_mb,           r.avg_task_latency_s, r.cpu_time_core_s,
      r.queued_containers,      r.queue_latency_ms,  r.rejected_containers,
      r.cores_used,             r.ssd_used_gb,       r.ram_used_gb,
      r.network_used_mbps,      r.power_watts};
  for (double v : fields) {
    if (!std::isfinite(v)) {
      *reason = QuarantineReason::kNonFinite;
      return false;
    }
  }
  for (double v : fields) {
    if (v < 0.0) {
      *reason = QuarantineReason::kOutOfRange;
      return false;
    }
  }
  if (r.cpu_utilization > 1.0 || r.hour < 0 || r.machine_id < 0) {
    *reason = QuarantineReason::kOutOfRange;
    return false;
  }
  // Latency with zero finished tasks is a join artifact, not a measurement.
  if (r.tasks_finished <= 0.0 && r.avg_task_latency_s > 0.0) {
    *reason = QuarantineReason::kInconsistent;
    return false;
  }
  return true;
}

void IngestionPipeline::Quarantine(const MachineHourRecord& r,
                                   QuarantineReason reason) {
  ++counters_.quarantined;
  ++counters_.by_reason[static_cast<size_t>(reason)];
  quarantine_.push_back(QuarantinedRecord{r, reason, watermark_});
}

Status IngestionPipeline::Ingest(const std::vector<MachineHourRecord>& batch) {
  if (sink_ == nullptr) return Status::InvalidArgument("null telemetry sink");
  for (const MachineHourRecord& r : batch) {
    ++counters_.seen;

    if (options_.validate) {
      QuarantineReason reason;
      if (!Validate(r, &reason)) {
        Quarantine(r, reason);
        continue;
      }
    }
    if (options_.max_lateness_hours >= 0 && watermark_ >= 0 &&
        r.hour < watermark_ - options_.max_lateness_hours) {
      Quarantine(r, QuarantineReason::kLate);
      continue;
    }
    if (options_.deduplicate && seen_keys_.count(RecordKey(r)) > 0) {
      Quarantine(r, QuarantineReason::kDuplicate);
      continue;
    }
    if (options_.stuck_run_threshold > 0) {
      StuckState& state = stuck_[r.machine_id];
      uint64_t signature = MetricSignature(r);
      state.run_length = signature == state.signature ? state.run_length + 1 : 1;
      state.signature = signature;
      if (state.run_length > options_.stuck_run_threshold) {
        Quarantine(r, QuarantineReason::kStuckCounter);
        continue;
      }
    }

    Status written = retry_.Run([this, &r](int attempt) {
      if (!write_hook_) return Status::OK();
      Status s = write_hook_(r, attempt);
      if (RetryPolicy::IsTransient(s.code())) {
        ++counters_.transient_write_failures;
      }
      return s;
    });
    if (!written.ok()) {
      Quarantine(r, QuarantineReason::kWriteFailed);
      continue;
    }

    sink_->Append(r);
    ++counters_.accepted;
    if (options_.deduplicate) seen_keys_.insert(RecordKey(r));
    if (r.hour > watermark_) watermark_ = r.hour;
  }
  return Status::OK();
}

}  // namespace kea::telemetry
