#include "telemetry/drift_detector.h"

#include <algorithm>
#include <cmath>

#include "common/snapshot.h"
#include "obs/metrics.h"

namespace kea::telemetry {

namespace {

constexpr const char* kMetricNames[DriftDetector::kNumMetrics] = {
    "machines_reporting", "utilization", "task_latency", "queue_latency",
    "throughput",
};

obs::Counter* AlarmCounter(size_t metric) {
  static obs::Counter* counters[DriftDetector::kNumMetrics] = {
      obs::Registry::Get().GetCounter("drift.alarms",
                                      "metric=machines_reporting"),
      obs::Registry::Get().GetCounter("drift.alarms", "metric=utilization"),
      obs::Registry::Get().GetCounter("drift.alarms", "metric=task_latency"),
      obs::Registry::Get().GetCounter("drift.alarms", "metric=queue_latency"),
      obs::Registry::Get().GetCounter("drift.alarms", "metric=throughput"),
  };
  return counters[metric];
}

obs::Counter* StalenessCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("drift.alarms", "metric=staleness");
  return c;
}

}  // namespace

DriftDetector::DriftDetector(const Options& options) : options_(options) {
  for (auto& d : detectors_) {
    d = ml::PageHinkleyDetector(options_.page_hinkley);
  }
  ResetSeasonalBaseline();
}

void DriftDetector::ResetSeasonalBaseline() {
  const size_t period = options_.seasonal_period_hours > 0
                            ? static_cast<size_t>(options_.seasonal_period_hours)
                            : 0;
  for (size_t m = 0; m < kNumMetrics; ++m) {
    season_value_[m].assign(period, 0.0);
    season_filled_[m].assign(period, 0);
  }
}

const char* DriftDetector::MetricName(size_t metric) {
  return metric < kNumMetrics ? kMetricNames[metric] : "unknown";
}

void DriftDetector::FeedHour(const HourAgg& agg, std::vector<Alarm>* alarms) {
  if (agg.records == 0) return;
  const double n = static_cast<double>(agg.records);
  double values[kNumMetrics];
  bool present[kNumMetrics];
  for (size_t m = 0; m < kNumMetrics; ++m) present[m] = true;
  values[kMachinesReporting] = n;
  values[kUtilization] = agg.util_sum / n;
  // Latency is averaged over machines that actually ran tasks; an idle hour
  // contributes nothing rather than a fake zero.
  present[kTaskLatency] = agg.active > 0;
  values[kTaskLatency] =
      agg.active > 0 ? agg.latency_sum / static_cast<double>(agg.active) : 0.0;
  values[kQueueLatency] = agg.queue_sum / n;
  values[kThroughput] = agg.tasks_sum / n;

  for (size_t m = 0; m < kNumMetrics; ++m) {
    if (!present[m]) continue;
    double observation = values[m];
    if (!season_value_[m].empty()) {
      // Seasonal differencing: compare against the same hour-of-period from
      // the most recent prior period, as a relative change so one
      // parameterization (and the min_stddev significance floor) fits every
      // metric's scale. The first period only primes the baseline —
      // recurring load cycles must cancel before the detectors see anything.
      const size_t slot = static_cast<size_t>(agg.hour) % season_value_[m].size();
      const bool primed = season_filled_[m][slot] != 0;
      const double baseline = season_value_[m][slot];
      season_value_[m][slot] = values[m];
      season_filled_[m][slot] = 1;
      if (!primed) continue;
      observation = (values[m] - baseline) /
                    std::max(std::abs(baseline), 1e-12);
    }
    if (detectors_[m].Observe(observation)) {
      ++alarm_counts_[m];
      drifting_ = true;
      AlarmCounter(m)->Increment();
      alarms->push_back(
          Alarm{kMetricNames[m], agg.hour, detectors_[m].drift_magnitude()});
    }
  }
}

std::vector<DriftDetector::Alarm> DriftDetector::CatchUp(
    const TelemetryStore& store) {
  std::vector<Alarm> alarms;
  const auto& records = store.records();
  if (cursor_ > records.size()) {
    // Store was replaced/truncated under us; start over from the beginning
    // rather than fabricate a window.
    cursor_ = 0;
  }
  bool saw_data = false;
  for (size_t i = cursor_; i < records.size(); ++i) {
    const MachineHourRecord& r = records[i];
    saw_data = true;
    last_data_hour_ = std::max(last_data_hour_, r.hour);
    if (r.hour <= fed_watermark_) continue;  // Late arrival; hour already fed.
    auto it = std::find_if(pending_.begin(), pending_.end(),
                           [&](const HourAgg& a) { return a.hour == r.hour; });
    if (it == pending_.end()) {
      pending_.push_back(HourAgg{});
      it = pending_.end() - 1;
      it->hour = r.hour;
    }
    ++it->records;
    it->util_sum += r.cpu_utilization;
    it->queue_sum += r.queue_latency_ms;
    it->tasks_sum += r.tasks_finished;
    if (r.tasks_finished > 0.0) {
      ++it->active;
      it->latency_sum += r.avg_task_latency_s;
    }
  }
  cursor_ = records.size();
  if (saw_data) stale_alarmed_ = false;

  // Feed every aggregated hour strictly below the newest hour seen — the
  // newest may still be receiving records at a batch boundary.
  std::sort(pending_.begin(), pending_.end(),
            [](const HourAgg& a, const HourAgg& b) { return a.hour < b.hour; });
  size_t fed = 0;
  for (const HourAgg& agg : pending_) {
    if (agg.hour >= last_data_hour_) break;
    FeedHour(agg, &alarms);
    fed_watermark_ = std::max(fed_watermark_, agg.hour);
    ++fed;
  }
  pending_.erase(pending_.begin(), pending_.begin() + fed);
  return alarms;
}

std::vector<DriftDetector::Alarm> DriftDetector::CheckStaleness(
    sim::HourIndex now) {
  std::vector<Alarm> alarms;
  if (last_data_hour_ < 0 || stale_alarmed_) return alarms;
  if (now - last_data_hour_ >= options_.staleness_hours) {
    stale_alarmed_ = true;
    drifting_ = true;
    ++staleness_alarms_;
    StalenessCounter()->Increment();
    alarms.push_back(
        Alarm{"staleness", now, static_cast<double>(now - last_data_hour_)});
  }
  return alarms;
}

void DriftDetector::Rearm() {
  for (auto& d : detectors_) d.Reset();
  ResetSeasonalBaseline();
  drifting_ = false;
  stale_alarmed_ = false;
}

double DriftDetector::max_drift() const {
  double max_drift = 0.0;
  for (const auto& d : detectors_) {
    max_drift = std::max(max_drift, d.drift_magnitude());
  }
  return max_drift;
}

std::string DriftDetector::SerializeState() const {
  StateWriter w;
  w.PutU64(cursor_);
  w.PutI64(fed_watermark_);
  w.PutI64(last_data_hour_);
  w.PutBool(drifting_);
  w.PutBool(stale_alarmed_);
  w.PutU64(staleness_alarms_);
  for (size_t m = 0; m < kNumMetrics; ++m) {
    w.PutU64(alarm_counts_[m]);
    w.PutString(detectors_[m].SerializeState());
    w.PutU64(season_value_[m].size());
    for (size_t s = 0; s < season_value_[m].size(); ++s) {
      w.PutDouble(season_value_[m][s]);
      w.PutBool(season_filled_[m][s] != 0);
    }
  }
  w.PutU64(pending_.size());
  for (const HourAgg& a : pending_) {
    w.PutI64(a.hour);
    w.PutU64(a.records);
    w.PutU64(a.active);
    w.PutDouble(a.util_sum);
    w.PutDouble(a.latency_sum);
    w.PutDouble(a.queue_sum);
    w.PutDouble(a.tasks_sum);
  }
  return w.Release();
}

Status DriftDetector::RestoreState(const std::string& blob) {
  StateReader r(blob);
  uint64_t cursor = 0;
  int64_t fed_watermark = 0, last_data_hour = 0;
  bool drifting = false, stale_alarmed = false;
  uint64_t staleness_alarms = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&cursor));
  KEA_RETURN_IF_ERROR(r.GetI64(&fed_watermark));
  KEA_RETURN_IF_ERROR(r.GetI64(&last_data_hour));
  KEA_RETURN_IF_ERROR(r.GetBool(&drifting));
  KEA_RETURN_IF_ERROR(r.GetBool(&stale_alarmed));
  KEA_RETURN_IF_ERROR(r.GetU64(&staleness_alarms));
  std::array<size_t, kNumMetrics> alarm_counts{};
  std::array<ml::PageHinkleyDetector, kNumMetrics> detectors;
  std::array<std::vector<double>, kNumMetrics> season_value;
  std::array<std::vector<uint8_t>, kNumMetrics> season_filled;
  for (size_t m = 0; m < kNumMetrics; ++m) {
    uint64_t count = 0;
    KEA_RETURN_IF_ERROR(r.GetU64(&count));
    alarm_counts[m] = count;
    std::string state;
    KEA_RETURN_IF_ERROR(r.GetString(&state));
    detectors[m] = ml::PageHinkleyDetector(options_.page_hinkley);
    KEA_RETURN_IF_ERROR(detectors[m].RestoreState(state));
    uint64_t period = 0;
    KEA_RETURN_IF_ERROR(r.GetU64(&period));
    const size_t expected = options_.seasonal_period_hours > 0
                                ? static_cast<size_t>(options_.seasonal_period_hours)
                                : 0;
    if (period != expected) {
      return Status::InvalidArgument(
          "drift-detector state has a different seasonal period");
    }
    season_value[m].resize(period);
    season_filled[m].resize(period);
    for (size_t s = 0; s < period; ++s) {
      KEA_RETURN_IF_ERROR(r.GetDouble(&season_value[m][s]));
      bool filled = false;
      KEA_RETURN_IF_ERROR(r.GetBool(&filled));
      season_filled[m][s] = filled ? 1 : 0;
    }
  }
  uint64_t n_pending = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&n_pending));
  std::vector<HourAgg> pending(n_pending);
  for (HourAgg& a : pending) {
    int64_t hour = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&hour));
    a.hour = static_cast<sim::HourIndex>(hour);
    uint64_t records = 0, active = 0;
    KEA_RETURN_IF_ERROR(r.GetU64(&records));
    KEA_RETURN_IF_ERROR(r.GetU64(&active));
    a.records = records;
    a.active = active;
    KEA_RETURN_IF_ERROR(r.GetDouble(&a.util_sum));
    KEA_RETURN_IF_ERROR(r.GetDouble(&a.latency_sum));
    KEA_RETURN_IF_ERROR(r.GetDouble(&a.queue_sum));
    KEA_RETURN_IF_ERROR(r.GetDouble(&a.tasks_sum));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in drift-detector state");
  }
  cursor_ = cursor;
  fed_watermark_ = static_cast<sim::HourIndex>(fed_watermark);
  last_data_hour_ = static_cast<sim::HourIndex>(last_data_hour);
  drifting_ = drifting;
  stale_alarmed_ = stale_alarmed;
  staleness_alarms_ = staleness_alarms;
  alarm_counts_ = alarm_counts;
  detectors_ = detectors;
  season_value_ = std::move(season_value);
  season_filled_ = std::move(season_filled);
  pending_ = std::move(pending);
  return Status::OK();
}

}  // namespace kea::telemetry

