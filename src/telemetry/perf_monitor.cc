#include "telemetry/perf_monitor.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <unordered_set>

namespace kea::telemetry {
namespace {

/// True when every field the aggregate queries touch is finite. Records
/// failing this cannot contribute to any mean without poisoning it.
bool RecordFinite(const MachineHourRecord& r) {
  return std::isfinite(r.avg_running_containers) && std::isfinite(r.cpu_utilization) &&
         std::isfinite(r.tasks_finished) && std::isfinite(r.data_read_mb) &&
         std::isfinite(r.avg_task_latency_s) && std::isfinite(r.cpu_time_core_s) &&
         std::isfinite(r.queued_containers) && std::isfinite(r.queue_latency_ms) &&
         std::isfinite(r.power_watts);
}

/// Clamps v's values to its [frac, 1-frac] empirical quantiles in place.
/// Order is preserved (only magnitudes change), so downstream accumulation
/// order — and hence determinism — is unaffected.
void Winsorize(std::vector<double>* v, double frac) {
  if (frac <= 0.0 || v->size() < 3) return;
  std::vector<double> sorted = *v;
  std::sort(sorted.begin(), sorted.end());
  size_t n = sorted.size();
  size_t lo_idx = static_cast<size_t>(frac * static_cast<double>(n));
  size_t hi_idx = n - 1 - std::min(lo_idx, n - 1);
  double lo = sorted[std::min(lo_idx, n - 1)];
  double hi = sorted[hi_idx];
  for (double& x : *v) x = std::clamp(x, lo, hi);
}

}  // namespace

StatusOr<std::map<sim::MachineGroupKey, GroupMetrics>>
PerformanceMonitor::GroupMetricsByKey(const RecordFilter& filter) const {
  return GroupMetricsByKey(filter, AggregationOptions());
}

StatusOr<std::map<sim::MachineGroupKey, GroupMetrics>>
PerformanceMonitor::GroupMetricsByKey(const RecordFilter& filter,
                                      const AggregationOptions& options) const {
  auto grouped = store_->GroupByKey(filter);
  if (grouped.empty()) {
    return Status::FailedPrecondition("no telemetry records match the filter");
  }
  std::map<sim::MachineGroupKey, GroupMetrics> out;
  for (const auto& [key, all_records] : grouped) {
    // Non-finite records are unusable for any aggregate; screen them first
    // (a no-op on clean stores, so the default path is unchanged bit for bit).
    std::vector<MachineHourRecord> records;
    records.reserve(all_records.size());
    for (const auto& r : all_records) {
      if (RecordFinite(r)) records.push_back(r);
    }
    if (records.empty()) continue;
    if (options.min_support > 0 && records.size() < options.min_support) continue;

    GroupMetrics m;
    m.group = key;
    m.machine_hours = records.size();

    // Per-metric value vectors in record order; winsorizing clamps values
    // without reordering, so the accumulation below is identical to summing
    // the raw fields when winsorize_fraction is 0.
    size_t count = records.size();
    std::vector<double> containers(count), utils(count), tasks(count), data(count);
    std::vector<double> latencies(count), cpu_seconds(count), queued(count);
    std::vector<double> power(count);
    std::unordered_set<int> machines;
    std::vector<double> queue_latencies;
    queue_latencies.reserve(count);
    for (size_t i = 0; i < count; ++i) {
      const auto& r = records[i];
      machines.insert(r.machine_id);
      containers[i] = r.avg_running_containers;
      utils[i] = r.cpu_utilization;
      tasks[i] = r.tasks_finished;
      data[i] = r.data_read_mb;
      latencies[i] = r.avg_task_latency_s;
      cpu_seconds[i] = r.cpu_time_core_s;
      queued[i] = r.queued_containers;
      power[i] = r.power_watts;
      queue_latencies.push_back(r.queue_latency_ms);
    }
    if (options.winsorize_fraction > 0.0) {
      double f = std::min(options.winsorize_fraction, 0.49);
      Winsorize(&containers, f);
      Winsorize(&utils, f);
      Winsorize(&tasks, f);
      Winsorize(&data, f);
      Winsorize(&latencies, f);
      Winsorize(&cpu_seconds, f);
      Winsorize(&queued, f);
      Winsorize(&power, f);
    }

    double sum_containers = 0.0, sum_util = 0.0, sum_tasks = 0.0, sum_data = 0.0;
    double sum_latency_weighted = 0.0;
    double sum_exec_seconds = 0.0, sum_cpu_seconds = 0.0;
    double sum_queued = 0.0, sum_power = 0.0;
    for (size_t i = 0; i < count; ++i) {
      sum_containers += containers[i];
      sum_util += utils[i];
      sum_tasks += tasks[i];
      sum_data += data[i];
      sum_latency_weighted += latencies[i] * tasks[i];
      sum_exec_seconds += latencies[i] * tasks[i];
      sum_cpu_seconds += cpu_seconds[i];
      sum_queued += queued[i];
      sum_power += power[i];
    }
    double n = static_cast<double>(count);
    m.num_machines = static_cast<int>(machines.size());
    m.avg_running_containers = sum_containers / n;
    m.avg_cpu_utilization = sum_util / n;
    m.avg_tasks_per_hour = sum_tasks / n;
    m.avg_data_read_mb_per_hour = sum_data / n;
    m.avg_task_latency_s = sum_tasks > 0.0 ? sum_latency_weighted / sum_tasks : 0.0;
    m.bytes_per_second = sum_exec_seconds > 0.0 ? sum_data / sum_exec_seconds : 0.0;
    m.bytes_per_cpu_time = sum_cpu_seconds > 0.0 ? sum_data / sum_cpu_seconds : 0.0;
    m.avg_queued_containers = sum_queued / n;
    m.avg_power_watts = sum_power / n;

    std::sort(queue_latencies.begin(), queue_latencies.end());
    size_t p99 = static_cast<size_t>(0.99 * static_cast<double>(queue_latencies.size()));
    p99 = std::min(p99, queue_latencies.size() - 1);
    m.p99_queue_latency_ms = queue_latencies[p99];

    out[key] = m;
  }
  if (out.empty()) {
    return Status::FailedPrecondition(
        "no group meets the aggregation support/validity requirements");
  }
  return out;
}

StatusOr<std::vector<std::pair<sim::HourIndex, double>>>
PerformanceMonitor::HourlyClusterUtilization(const RecordFilter& filter) const {
  std::map<sim::HourIndex, std::pair<double, size_t>> by_hour;
  for (const auto& r : store_->records()) {
    if (filter && !filter(r)) continue;
    if (!std::isfinite(r.cpu_utilization)) continue;
    auto& [sum, count] = by_hour[r.hour];
    sum += r.cpu_utilization;
    ++count;
  }
  if (by_hour.empty()) {
    return Status::FailedPrecondition("no telemetry records match the filter");
  }
  std::vector<std::pair<sim::HourIndex, double>> out;
  out.reserve(by_hour.size());
  for (const auto& [hour, agg] : by_hour) {
    out.emplace_back(hour, agg.first / static_cast<double>(agg.second));
  }
  return out;
}

std::vector<ScatterPoint> PerformanceMonitor::UtilizationThroughputScatter(
    size_t max_points, const RecordFilter& filter) const {
  std::vector<ScatterPoint> points;
  const auto& records = store_->records();
  size_t matching = 0;
  for (const auto& r : records) {
    if (filter && !filter(r)) continue;
    ++matching;
  }
  if (matching == 0) return points;
  size_t stride = std::max<size_t>(1, matching / std::max<size_t>(1, max_points));
  size_t index = 0;
  for (const auto& r : records) {
    if (filter && !filter(r)) continue;
    if (index++ % stride != 0) continue;
    ScatterPoint p;
    p.x = r.cpu_utilization;
    p.y = r.data_read_mb;
    p.group = r.group();
    points.push_back(p);
  }
  return points;
}

StatusOr<double> PerformanceMonitor::ClusterAverageTaskLatency(
    const RecordFilter& filter) const {
  double weighted = 0.0, tasks = 0.0;
  for (const auto& r : store_->records()) {
    if (filter && !filter(r)) continue;
    if (!std::isfinite(r.avg_task_latency_s) || !std::isfinite(r.tasks_finished) ||
        r.tasks_finished < 0.0) {
      continue;
    }
    weighted += r.avg_task_latency_s * r.tasks_finished;
    tasks += r.tasks_finished;
  }
  if (tasks <= 0.0) {
    return Status::FailedPrecondition("no finished tasks in the filtered telemetry");
  }
  return weighted / tasks;
}

double PerformanceMonitor::TotalDataReadMb(const RecordFilter& filter) const {
  double total = 0.0;
  for (const auto& r : store_->records()) {
    if (filter && !filter(r)) continue;
    if (!std::isfinite(r.data_read_mb)) continue;
    total += r.data_read_mb;
  }
  return total;
}

double PerformanceMonitor::TotalTasksFinished(const RecordFilter& filter) const {
  double total = 0.0;
  for (const auto& r : store_->records()) {
    if (filter && !filter(r)) continue;
    if (!std::isfinite(r.tasks_finished)) continue;
    total += r.tasks_finished;
  }
  return total;
}

RecordFilter HourRangeFilter(sim::HourIndex begin, sim::HourIndex end) {
  return [begin, end](const MachineHourRecord& r) {
    return r.hour >= begin && r.hour < end;
  };
}

RecordFilter MachineSetFilter(std::vector<int> machine_ids) {
  auto set = std::make_shared<std::unordered_set<int>>(machine_ids.begin(),
                                                       machine_ids.end());
  return [set](const MachineHourRecord& r) { return set->count(r.machine_id) > 0; };
}

RecordFilter GroupFilter(sim::MachineGroupKey key) {
  return [key](const MachineHourRecord& r) { return r.group() == key; };
}

RecordFilter AndFilter(RecordFilter a, RecordFilter b) {
  return [a = std::move(a), b = std::move(b)](const MachineHourRecord& r) {
    return (!a || a(r)) && (!b || b(r));
  };
}

std::vector<MachineHourRecord> RollUpDaily(const TelemetryStore& store,
                                           const RecordFilter& filter) {
  // (machine, day) -> accumulated record + hour count.
  std::map<std::pair<int, int>, std::pair<MachineHourRecord, int>> days;
  for (const auto& r : store.records()) {
    if (filter && !filter(r)) continue;
    if (!RecordFinite(r)) continue;
    int day = r.hour / sim::kHoursPerDay;
    auto [it, inserted] = days.try_emplace({r.machine_id, day});
    MachineHourRecord& acc = it->second.first;
    if (inserted) {
      acc = r;
      acc.hour = day;
      // Convert the mean-latency field to total execution seconds while
      // accumulating; divided back out at the end.
      acc.avg_task_latency_s = r.avg_task_latency_s * r.tasks_finished;
      it->second.second = 1;
      continue;
    }
    acc.avg_running_containers += r.avg_running_containers;
    acc.cpu_utilization += r.cpu_utilization;
    acc.tasks_finished += r.tasks_finished;
    acc.data_read_mb += r.data_read_mb;
    acc.avg_task_latency_s += r.avg_task_latency_s * r.tasks_finished;
    acc.cpu_time_core_s += r.cpu_time_core_s;
    acc.queued_containers += r.queued_containers;
    acc.queue_latency_ms += r.queue_latency_ms;
    acc.rejected_containers += r.rejected_containers;
    acc.cores_used += r.cores_used;
    acc.ssd_used_gb += r.ssd_used_gb;
    acc.ram_used_gb += r.ram_used_gb;
    acc.network_used_mbps += r.network_used_mbps;
    acc.power_watts += r.power_watts;
    it->second.second += 1;
  }

  std::vector<MachineHourRecord> out;
  out.reserve(days.size());
  for (auto& [key, entry] : days) {
    MachineHourRecord& acc = entry.first;
    double hours = static_cast<double>(entry.second);
    // Level metrics back to time averages.
    acc.avg_running_containers /= hours;
    acc.cpu_utilization /= hours;
    acc.queued_containers /= hours;
    acc.queue_latency_ms /= hours;
    acc.cores_used /= hours;
    acc.ssd_used_gb /= hours;
    acc.ram_used_gb /= hours;
    acc.network_used_mbps /= hours;
    acc.power_watts /= hours;
    // Task-weighted mean latency.
    acc.avg_task_latency_s =
        acc.tasks_finished > 0.0 ? acc.avg_task_latency_s / acc.tasks_finished : 0.0;
    out.push_back(acc);
  }
  return out;
}

std::vector<MachineHourRecord> ScreenRecords(const std::vector<MachineHourRecord>& records,
                                             size_t* dropped) {
  std::vector<MachineHourRecord> clean;
  clean.reserve(records.size());
  size_t bad = 0;
  for (const auto& r : records) {
    bool ok = std::isfinite(r.cpu_utilization) && r.cpu_utilization >= 0.0 &&
              r.cpu_utilization <= 1.0 && std::isfinite(r.avg_running_containers) &&
              r.avg_running_containers >= 0.0 && std::isfinite(r.tasks_finished) &&
              r.tasks_finished >= 0.0 && std::isfinite(r.data_read_mb) &&
              r.data_read_mb >= 0.0 && std::isfinite(r.avg_task_latency_s) &&
              r.avg_task_latency_s >= 0.0 &&
              !(r.tasks_finished <= 0.0 && r.avg_task_latency_s > 0.0);
    if (ok) {
      clean.push_back(r);
    } else {
      ++bad;
    }
  }
  if (dropped != nullptr) *dropped = bad;
  return clean;
}

}  // namespace kea::telemetry
