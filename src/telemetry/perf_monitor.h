#ifndef KEA_TELEMETRY_PERF_MONITOR_H_
#define KEA_TELEMETRY_PERF_MONITOR_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "telemetry/store.h"

namespace kea::telemetry {

/// Machine-group aggregate of the Table 2 performance metrics over a set of
/// machine-hour records.
struct GroupMetrics {
  sim::MachineGroupKey group;
  size_t machine_hours = 0;
  int num_machines = 0;  ///< Distinct machines observed.

  double avg_running_containers = 0.0;
  double avg_cpu_utilization = 0.0;
  double avg_tasks_per_hour = 0.0;
  double avg_data_read_mb_per_hour = 0.0;
  /// Task-weighted mean task latency (seconds).
  double avg_task_latency_s = 0.0;
  double bytes_per_second = 0.0;    ///< Total MB / total execution seconds.
  double bytes_per_cpu_time = 0.0;  ///< Total MB / total core-seconds.
  double avg_queued_containers = 0.0;
  double p99_queue_latency_ms = 0.0;
  double avg_power_watts = 0.0;
};

/// One (x, y) point of the scatter view (Figure 8).
struct ScatterPoint {
  double x = 0.0;
  double y = 0.0;
  sim::MachineGroupKey group;
};

/// Robustness knobs for the aggregate queries. The defaults reproduce the
/// plain (non-robust) aggregation bit for bit; the guarded tuning loop turns
/// both on so a few corrupt survivors cannot skew the What-if fits.
struct AggregationOptions {
  /// Groups with fewer matching machine-hours than this are excluded from
  /// the result (too thin to fit or trust). 0 keeps every group.
  size_t min_support = 0;
  /// Two-sided winsorization fraction in [0, 0.5): each averaged metric has
  /// its values clamped to the [f, 1-f] empirical quantiles before summing,
  /// bounding the leverage of any single machine-hour. 0 disables.
  double winsorize_fraction = 0.0;
};

/// The Performance Monitor joins raw telemetry into the metrics KEA's
/// modeling consumes (Section 4.1). All queries take an optional filter so
/// flighting/experiment analyses can scope to machine subsets or windows.
///
/// Every aggregate guards its ratios (zero tasks, zero execution seconds,
/// zero core-seconds, empty groups) and skips records with non-finite fields,
/// so no query output ever contains NaN/Inf — even over a store filled by an
/// unvalidated path.
class PerformanceMonitor {
 public:
  /// `store` must outlive the monitor.
  explicit PerformanceMonitor(const TelemetryStore* store) : store_(store) {}

  /// Per-group Table 2 aggregates. FailedPrecondition when no records match
  /// (or none survive min_support screening).
  StatusOr<std::map<sim::MachineGroupKey, GroupMetrics>> GroupMetricsByKey(
      const RecordFilter& filter = nullptr) const;

  /// Robust variant: min-support screening plus winsorized means.
  StatusOr<std::map<sim::MachineGroupKey, GroupMetrics>> GroupMetricsByKey(
      const RecordFilter& filter, const AggregationOptions& options) const;

  /// Cluster-wide average CPU utilization per hour (Figure 1).
  StatusOr<std::vector<std::pair<sim::HourIndex, double>>> HourlyClusterUtilization(
      const RecordFilter& filter = nullptr) const;

  /// Scatter view: one point per machine-hour, x = cpu utilization,
  /// y = data read (Figure 8). Subsampled to at most `max_points`.
  std::vector<ScatterPoint> UtilizationThroughputScatter(
      size_t max_points, const RecordFilter& filter = nullptr) const;

  /// The overall average task latency W-bar of Eq. (9): the task-weighted
  /// mean latency across all matching machine-hours.
  StatusOr<double> ClusterAverageTaskLatency(const RecordFilter& filter = nullptr) const;

  /// Total data read in MB over matching records.
  double TotalDataReadMb(const RecordFilter& filter = nullptr) const;

  /// Total tasks finished over matching records.
  double TotalTasksFinished(const RecordFilter& filter = nullptr) const;

 private:
  const TelemetryStore* store_;
};

/// Convenience filters.
RecordFilter HourRangeFilter(sim::HourIndex begin, sim::HourIndex end);
RecordFilter MachineSetFilter(std::vector<int> machine_ids);
RecordFilter GroupFilter(sim::MachineGroupKey key);
RecordFilter AndFilter(RecordFilter a, RecordFilter b);

/// Rolls hourly records up to machine-days (the production pipeline prepares
/// metrics "at a daily basis"; each dot of Figure 9 is a machine-day).
/// Averages the level metrics (containers, utilization, latency via task
/// weighting) and sums the volume metrics (tasks, data, cpu-time); the
/// `hour` field of each output record holds the day index. Records matching
/// `filter` only.
std::vector<MachineHourRecord> RollUpDaily(const TelemetryStore& store,
                                           const RecordFilter& filter = nullptr);

/// Data-quality screen (production data preparation): drops records with
/// impossible metrics — negative counts, utilization outside [0, 1], NaNs,
/// latency but no tasks. Returns the clean records and reports how many were
/// dropped via `dropped` (optional).
std::vector<MachineHourRecord> ScreenRecords(const std::vector<MachineHourRecord>& records,
                                             size_t* dropped = nullptr);

}  // namespace kea::telemetry

#endif  // KEA_TELEMETRY_PERF_MONITOR_H_
