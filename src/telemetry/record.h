#ifndef KEA_TELEMETRY_RECORD_H_
#define KEA_TELEMETRY_RECORD_H_

#include <string>
#include <vector>

#include "common/snapshot.h"
#include "sim/types.h"

namespace kea::telemetry {

/// One machine-hour observation — the atom of KEA's telemetry. Each point in
/// the scatter view of Figure 8 is one of these. Produced by the fluid
/// simulation engine (in production: by the data orchestration pipeline that
/// joins Cosmos sources).
struct MachineHourRecord {
  int machine_id = 0;
  sim::HourIndex hour = 0;
  int rack = 0;
  sim::SkuId sku = 0;
  sim::ScId sc = 0;

  /// Time-average number of simultaneously running containers.
  double avg_running_containers = 0.0;
  /// Time-average CPU utilization in [0, 1].
  double cpu_utilization = 0.0;
  /// Tasks finished during the hour.
  double tasks_finished = 0.0;
  /// Total data read in MB during the hour ("Total Data Read").
  double data_read_mb = 0.0;
  /// Mean task execution latency in seconds.
  double avg_task_latency_s = 0.0;
  /// Total CPU time consumed by tasks during the hour, in core-seconds.
  double cpu_time_core_s = 0.0;

  /// Low-priority queue state (Section 5.3 / Figure 12).
  double queued_containers = 0.0;
  double queue_latency_ms = 0.0;
  /// Containers that could not even queue (per-machine queue cap hit) and
  /// were rejected back to the scheduler.
  double rejected_containers = 0.0;

  /// Resource usage (Section 6.1 / Figure 13; network per Section 6.2).
  double cores_used = 0.0;
  double ssd_used_gb = 0.0;
  double ram_used_gb = 0.0;
  double network_used_mbps = 0.0;

  /// Electrical draw in watts.
  double power_watts = 0.0;

  sim::MachineGroupKey group() const { return sim::MachineGroupKey{sc, sku}; }

  /// Derived: bytes per second of task execution time (MB/s), a normalized
  /// throughput metric from Table 2 that is robust to load level.
  double BytesPerSecond() const;

  /// Derived: bytes per core-second of CPU time (MB/core-s), Table 2's
  /// "Bytes per CPU Time".
  double BytesPerCpuTime() const;
};

/// Per-task observation emitted by the discrete-event job engine; used for
/// the task-level validation analyses (Figure 5, Figure 6).
struct TaskRecord {
  int64_t job_id = 0;
  int stage = 0;
  int task_type = 0;  ///< Index into the workload's task-type list.
  int machine_id = 0;
  int rack = 0;
  sim::SkuId sku = 0;
  sim::ScId sc = 0;
  double start_time_s = 0.0;
  double duration_s = 0.0;
  bool on_critical_path = false;
};

/// Per-job observation from the discrete-event engine (Figure 11).
struct JobRecord {
  int64_t job_id = 0;
  int template_id = 0;
  double submit_time_s = 0.0;
  double runtime_s = 0.0;
};

/// CSV header + row serialization for MachineHourRecord dumps.
std::vector<std::string> MachineHourCsvHeader();
std::vector<std::string> MachineHourCsvRow(const MachineHourRecord& r);

/// Bit-exact binary codec for checkpoint blobs (fault-injector queues,
/// quarantine contents). Doubles are stored as raw IEEE-754 bit patterns.
void PutMachineHourRecord(const MachineHourRecord& r, StateWriter* w);
Status GetMachineHourRecord(StateReader* reader, MachineHourRecord* r);

}  // namespace kea::telemetry

#endif  // KEA_TELEMETRY_RECORD_H_
