#ifndef KEA_TELEMETRY_INGESTION_H_
#define KEA_TELEMETRY_INGESTION_H_

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/retry.h"
#include "common/status.h"
#include "telemetry/store.h"

namespace kea::telemetry {

/// Why a record was diverted to the quarantine store instead of the main
/// TelemetryStore.
enum class QuarantineReason {
  kNonFinite = 0,     ///< NaN or +-Inf in a numeric field.
  kOutOfRange,        ///< Negative count / utilization outside [0, 1] / etc.
  kInconsistent,      ///< Fields that contradict each other (latency, no tasks).
  kDuplicate,         ///< (machine, hour) already ingested.
  kLate,              ///< Arrived more than max_lateness_hours behind watermark.
  kStuckCounter,      ///< Machine repeating an identical metric payload.
  kWriteFailed,       ///< Sink write failed even after retries.
};
constexpr size_t kNumQuarantineReasons = 7;

const char* QuarantineReasonToString(QuarantineReason reason);

/// A rejected record kept for inspection, with the reason and the watermark
/// at rejection time (operators triage quarantine dumps by reason).
struct QuarantinedRecord {
  MachineHourRecord record;
  QuarantineReason reason = QuarantineReason::kNonFinite;
  sim::HourIndex watermark = 0;
};

/// Pluggable sink write. `attempt` is the 0-based retry attempt; the fault
/// injector's hook uses it to decide which attempts fail transiently. The
/// default hook always succeeds. A hook returning OK means the pipeline may
/// append the record to the sink.
using WriteHook = std::function<Status(const MachineHourRecord& record, int attempt)>;

/// The validating front door to TelemetryStore: everything the simulation
/// engines (or an external trace) emit passes through here before KEA's
/// models may see it. Production telemetry is dirty — machine churn drops
/// hours, pipeline replays duplicate them, broken collectors emit NaNs and
/// stuck counters (Section 3.2) — so the pipeline:
///
///   - enforces schema/range invariants (finite, non-negative, util in [0,1]);
///   - deduplicates on (machine, hour);
///   - bounds lateness against a high-watermark and quarantines stragglers;
///   - detects stuck-counter machines (identical metric payload repeated);
///   - retries transient sink failures under a bounded, deterministically
///     jittered RetryPolicy, quarantining (never dropping) on exhaustion.
///
/// Invariant, checked by the property tests: every input record is counted
/// exactly once — accepted() + quarantined() == seen(). With clean input and
/// default options the pipeline is a bit-identical pass-through to
/// TelemetryStore::Append, preserving record order.
class IngestionPipeline {
 public:
  struct Options {
    /// Schema/range validation (kNonFinite / kOutOfRange / kInconsistent).
    bool validate = true;
    /// Reject (machine, hour) pairs already accepted.
    bool deduplicate = true;
    /// Records older than watermark - max_lateness_hours are quarantined as
    /// kLate; negative disables the lateness bound entirely.
    int max_lateness_hours = -1;
    /// Quarantine a machine's records once it has repeated the exact same
    /// metric payload this many times in a row (0 disables). The first
    /// `stuck_run_threshold` copies are accepted — a stuck counter is only
    /// detectable in hindsight.
    int stuck_run_threshold = 0;
    /// Retry policy for transient sink-write failures.
    RetryPolicy::Options retry;
  };

  struct Counters {
    size_t seen = 0;
    size_t accepted = 0;
    size_t quarantined = 0;
    std::array<size_t, kNumQuarantineReasons> by_reason{};
    /// Transient write failures observed (each consumed one retry attempt).
    size_t transient_write_failures = 0;

    size_t Reason(QuarantineReason r) const {
      return by_reason[static_cast<size_t>(r)];
    }
  };

  /// `sink` must outlive the pipeline.
  IngestionPipeline(TelemetryStore* sink, const Options& options)
      : sink_(sink), options_(options), retry_(options.retry) {}

  /// Installs a fallible write hook (e.g. the fault injector's transient
  /// failure hook). Null restores the always-OK default.
  void set_write_hook(WriteHook hook) { write_hook_ = std::move(hook); }

  /// Runs the batch through validation, dedup, lateness and stuck-counter
  /// screens, then writes survivors to the sink under the retry policy.
  /// Always processes the whole batch; the returned status is only non-OK for
  /// structural errors (null sink), never for bad records — those are
  /// quarantined and counted instead.
  Status Ingest(const std::vector<MachineHourRecord>& batch);

  const Counters& counters() const { return counters_; }
  const std::vector<QuarantinedRecord>& quarantine() const { return quarantine_; }
  const RetryPolicy& retry_policy() const { return retry_; }
  /// Highest hour accepted so far (lateness reference). -1 before any accept.
  sim::HourIndex watermark() const { return watermark_; }

  /// Bit-exact checkpoint of the pipeline's mutable state: counters,
  /// quarantine contents, dedup index, watermark, stuck-counter tracking, and
  /// retry-policy counters (whose call index feeds the deterministic jitter).
  /// Options and the sink binding are construction-time and not included.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  /// Validation verdict for one record, OK reasons aside.
  bool Validate(const MachineHourRecord& r, QuarantineReason* reason) const;
  void Quarantine(const MachineHourRecord& r, QuarantineReason reason);

  TelemetryStore* sink_;
  Options options_;
  RetryPolicy retry_;
  WriteHook write_hook_;

  Counters counters_;
  std::vector<QuarantinedRecord> quarantine_;
  std::unordered_set<uint64_t> seen_keys_;  ///< (machine, hour) dedup index.
  sim::HourIndex watermark_ = -1;

  /// Stuck-counter tracking: per machine, a hash of the last metric payload
  /// and how many consecutive records carried it.
  struct StuckState {
    uint64_t signature = 0;
    int run_length = 0;
  };
  std::unordered_map<int, StuckState> stuck_;
};

}  // namespace kea::telemetry

#endif  // KEA_TELEMETRY_INGESTION_H_
