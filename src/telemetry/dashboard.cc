#include "telemetry/dashboard.h"

#include <algorithm>
#include <cmath>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace kea::telemetry {

StatusOr<std::string> RenderScatter(const std::vector<ScatterPoint>& points,
                                    int rows, int cols, const std::string& x_label,
                                    const std::string& y_label) {
  if (points.empty()) return Status::InvalidArgument("no points to render");
  if (rows < 2 || cols < 2) return Status::InvalidArgument("grid too small");

  double x_min = points[0].x, x_max = points[0].x;
  double y_min = points[0].y, y_max = points[0].y;
  for (const auto& p : points) {
    x_min = std::min(x_min, p.x);
    x_max = std::max(x_max, p.x);
    y_min = std::min(y_min, p.y);
    y_max = std::max(y_max, p.y);
  }
  if (x_max - x_min < 1e-12) x_max = x_min + 1.0;
  if (y_max - y_min < 1e-12) y_max = y_min + 1.0;

  std::vector<std::vector<int>> counts(static_cast<size_t>(rows),
                                       std::vector<int>(static_cast<size_t>(cols), 0));
  for (const auto& p : points) {
    int col = static_cast<int>((p.x - x_min) / (x_max - x_min) * (cols - 1));
    int row = static_cast<int>((p.y - y_min) / (y_max - y_min) * (rows - 1));
    col = std::clamp(col, 0, cols - 1);
    row = std::clamp(row, 0, rows - 1);
    ++counts[static_cast<size_t>(row)][static_cast<size_t>(col)];
  }

  auto glyph = [](int count) {
    if (count == 0) return ' ';
    if (count <= 1) return '.';
    if (count <= 3) return ':';
    if (count <= 8) return '*';
    return '#';
  };

  std::string out;
  out += y_label + "\n";
  // Highest y at the top.
  for (int r = rows - 1; r >= 0; --r) {
    out += "|";
    for (int c = 0; c < cols; ++c) {
      out += glyph(counts[static_cast<size_t>(r)][static_cast<size_t>(c)]);
    }
    out += "\n";
  }
  out += "+";
  out.append(static_cast<size_t>(cols), '-');
  out += "> " + x_label + "\n";
  char range[128];
  std::snprintf(range, sizeof(range), "x: [%.3g, %.3g]  y: [%.3g, %.3g]\n", x_min,
                x_max, y_min, y_max);
  out += range;
  return out;
}

StatusOr<std::string> RenderSparkline(const std::vector<double>& values, int width) {
  if (values.empty()) return Status::InvalidArgument("no values to render");
  if (width < 2) return Status::InvalidArgument("width too small");

  double lo = values[0], hi = values[0];
  for (double v : values) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  if (hi - lo < 1e-12) hi = lo + 1.0;

  static const char kLevels[] = {' ', '.', ':', '-', '=', '#', '@'};
  constexpr int kNumLevels = 7;

  // Bucket values into `width` columns (mean per bucket).
  size_t n = values.size();
  int columns = std::min<int>(width, static_cast<int>(n));
  std::string out;
  for (int c = 0; c < columns; ++c) {
    size_t begin = static_cast<size_t>(c) * n / static_cast<size_t>(columns);
    size_t end = static_cast<size_t>(c + 1) * n / static_cast<size_t>(columns);
    double sum = 0.0;
    for (size_t i = begin; i < end; ++i) sum += values[i];
    double mean = sum / static_cast<double>(end - begin);
    int level = static_cast<int>((mean - lo) / (hi - lo) * (kNumLevels - 1) + 0.5);
    out += kLevels[std::clamp(level, 0, kNumLevels - 1)];
  }
  return out;
}

StatusOr<std::string> RenderUtilizationWeek(const TelemetryStore& store,
                                            const RecordFilter& filter) {
  PerformanceMonitor monitor(&store);
  KEA_ASSIGN_OR_RETURN(auto hourly, monitor.HourlyClusterUtilization(filter));

  std::string out = "cluster CPU utilization by day (one column per hour)\n";
  std::vector<double> day_values;
  int current_day = hourly.front().first / sim::kHoursPerDay;
  auto flush = [&](int day) -> Status {
    if (day_values.empty()) return Status::OK();
    KEA_ASSIGN_OR_RETURN(std::string line, RenderSparkline(day_values, 24));
    out += "day " + std::to_string(day) + " |" + line + "|\n";
    day_values.clear();
    return Status::OK();
  };
  for (const auto& [hour, util] : hourly) {
    int day = hour / sim::kHoursPerDay;
    if (day != current_day) {
      KEA_RETURN_IF_ERROR(flush(current_day));
      current_day = day;
    }
    day_values.push_back(util);
  }
  KEA_RETURN_IF_ERROR(flush(current_day));
  return out;
}

std::string RenderObsPanel(bool include_timing) {
  std::string out = "== ops panel (kea::obs registry) ==\n";
  std::string body = obs::Registry::Get().RenderText(include_timing);
  if (body.empty()) {
    out += "(no instruments recorded)\n";
    return out;
  }
  out += body;
  if (!include_timing) {
    out += "(timing instruments hidden; pass include_timing for wall-clock)\n";
  }
  return out;
}

std::string RenderTraceSummary() {
  obs::Tracer& tracer = obs::Tracer::Get();
  if (tracer.event_count() == 0) return "";
  std::string out = "== span self-time summary ==\n";
  out += tracer.SelfTimeSummary();
  return out;
}

}  // namespace kea::telemetry
