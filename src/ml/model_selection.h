#ifndef KEA_ML_MODEL_SELECTION_H_
#define KEA_ML_MODEL_SELECTION_H_

#include "common/status.h"
#include "ml/regression.h"

namespace kea::ml {

/// Regression families the What-if Engine can choose between. "In general,
/// we use regression models as the predictors, such as linear regression
/// (LR), support vector machines (SVM)... Linear models are more explainable,
/// which is critical for domain experts" (Section 5.1) — within the linear
/// family, the choice that matters in production is plain OLS vs the
/// outlier-robust Huber loss.
enum class RegressorFamily { kOls, kHuber };

/// K-fold cross-validated RMSE of a family on a dataset. Folds are assigned
/// deterministically by index stride (observation i belongs to fold
/// i % folds), so results are reproducible without an RNG. Returns
/// InvalidArgument for folds < 2 or datasets too small to leave every fold a
/// valid training set.
StatusOr<double> CrossValidateRmse(const Dataset& data, RegressorFamily family,
                                   int folds);

/// Picks the family with the lower cross-validated RMSE. On clean data the
/// two are nearly tied (OLS wins on efficiency); under contamination Huber
/// wins decisively.
StatusOr<RegressorFamily> SelectRegressor(const Dataset& data, int folds = 5);

/// Fits the given family on the full dataset.
StatusOr<LinearModel> FitFamily(const Dataset& data, RegressorFamily family);

}  // namespace kea::ml

#endif  // KEA_ML_MODEL_SELECTION_H_
