#ifndef KEA_ML_REGRESSION_H_
#define KEA_ML_REGRESSION_H_

#include <vector>

#include "common/status.h"
#include "ml/matrix.h"

namespace kea::ml {

/// A dataset for regression: each row of `x` is one observation's features;
/// `y` holds the targets. An intercept column is added internally by the
/// regressors (do not add one yourself).
struct Dataset {
  Matrix x;  ///< n x d feature matrix.
  Vector y;  ///< n targets.

  size_t size() const { return y.size(); }
};

/// A fitted linear model: y_hat = intercept + dot(coefficients, features).
class LinearModel {
 public:
  LinearModel() = default;
  LinearModel(double intercept, Vector coefficients)
      : intercept_(intercept), coefficients_(std::move(coefficients)) {}

  double intercept() const { return intercept_; }
  const Vector& coefficients() const { return coefficients_; }

  /// Predicts a single observation; requires features.size() == coefficients().size().
  double Predict(const Vector& features) const;

  /// Convenience for 1-D models: predict from a scalar feature.
  double Predict1D(double x) const;

  /// Predicts every row of the feature matrix.
  StatusOr<Vector> PredictBatch(const Matrix& features) const;

  /// Inverts a 1-D model: returns the x with Predict1D(x) == y. Returns
  /// FailedPrecondition if the model is not 1-D or the slope is ~0.
  StatusOr<double> Invert1D(double y) const;

 private:
  double intercept_ = 0.0;
  Vector coefficients_;
};

/// Ordinary least squares (optionally ridge-regularized) linear regression.
/// Solves the normal equations via Cholesky with a Gaussian-elimination
/// fallback. Suitable for the small design matrices KEA fits per SC-SKU
/// group.
class LinearRegressor {
 public:
  /// l2 >= 0 adds ridge regularization on the coefficients (not the
  /// intercept).
  explicit LinearRegressor(double l2 = 0.0) : l2_(l2) {}

  /// Fits the model. Returns InvalidArgument if the dataset is empty or
  /// shapes mismatch; FailedPrecondition if the system is singular.
  StatusOr<LinearModel> Fit(const Dataset& data) const;

  /// Weighted fit; `weights` must be non-negative, one per observation.
  StatusOr<LinearModel> FitWeighted(const Dataset& data, const Vector& weights) const;

 private:
  double l2_;
};

/// Robust linear regression with the Huber loss, fit by iteratively
/// reweighted least squares (IRLS). This is the estimator the paper uses for
/// the What-if Engine models (Section 5.2.1): "more robust to outliers
/// compared to the Least Squares Regression".
class HuberRegressor {
 public:
  struct Options {
    /// Residuals beyond delta * (robust residual scale) get linear loss.
    double delta = 1.345;
    int max_iterations = 50;
    double tolerance = 1e-8;
    /// Ridge term passed to the inner weighted least squares.
    double l2 = 0.0;
  };

  explicit HuberRegressor() : options_(Options()) {}
  explicit HuberRegressor(const Options& options) : options_(options) {}

  /// Fits the model; error conditions match LinearRegressor::Fit.
  StatusOr<LinearModel> Fit(const Dataset& data) const;

 private:
  Options options_;
};

/// Goodness-of-fit metrics for a fitted model on a dataset.
struct RegressionMetrics {
  double r2 = 0.0;    ///< Coefficient of determination.
  double rmse = 0.0;  ///< Root mean squared error.
  double mae = 0.0;   ///< Mean absolute error.
};

/// Evaluates `model` on `data`.
StatusOr<RegressionMetrics> Evaluate(const LinearModel& model, const Dataset& data);

/// Builds a 1-D dataset from paired samples (x_i, y_i).
Dataset MakeDataset1D(const Vector& x, const Vector& y);

}  // namespace kea::ml

#endif  // KEA_ML_REGRESSION_H_
