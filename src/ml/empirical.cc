#include "ml/empirical.h"

#include <algorithm>
#include <cmath>

namespace kea::ml {

EmpiricalDistribution::EmpiricalDistribution(std::vector<double> sorted)
    : sorted_(std::move(sorted)) {
  double sum = 0.0;
  for (double v : sorted_) sum += v;
  mean_ = sum / static_cast<double>(sorted_.size());
}

StatusOr<EmpiricalDistribution> EmpiricalDistribution::FromSamples(
    std::vector<double> samples) {
  if (samples.empty()) {
    return Status::InvalidArgument("empirical distribution needs samples");
  }
  std::sort(samples.begin(), samples.end());
  return EmpiricalDistribution(std::move(samples));
}

double EmpiricalDistribution::Sample(Rng* rng) const {
  size_t i = static_cast<size_t>(
      rng->UniformInt(0, static_cast<int64_t>(sorted_.size()) - 1));
  return sorted_[i];
}

double EmpiricalDistribution::Cdf(double x) const {
  auto it = std::upper_bound(sorted_.begin(), sorted_.end(), x);
  return static_cast<double>(it - sorted_.begin()) /
         static_cast<double>(sorted_.size());
}

double EmpiricalDistribution::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  double pos = q * static_cast<double>(sorted_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted_.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted_[lo] * (1.0 - frac) + sorted_[hi] * frac;
}

StatusOr<BootstrapInterval> BootstrapCi(
    const std::vector<double>& sample,
    double (*statistic)(const std::vector<double>&), double level, int iterations,
    Rng* rng) {
  if (sample.empty()) return Status::InvalidArgument("empty sample");
  if (level <= 0.0 || level >= 1.0) {
    return Status::InvalidArgument("confidence level must be in (0, 1)");
  }
  if (iterations < 10) return Status::InvalidArgument("too few bootstrap iterations");

  std::vector<double> stats;
  stats.reserve(static_cast<size_t>(iterations));
  std::vector<double> resample(sample.size());
  for (int it = 0; it < iterations; ++it) {
    for (size_t i = 0; i < sample.size(); ++i) {
      size_t j = static_cast<size_t>(
          rng->UniformInt(0, static_cast<int64_t>(sample.size()) - 1));
      resample[i] = sample[j];
    }
    stats.push_back(statistic(resample));
  }
  std::sort(stats.begin(), stats.end());
  double alpha = 1.0 - level;
  auto pick = [&](double q) {
    double pos = q * static_cast<double>(stats.size() - 1);
    size_t lo = static_cast<size_t>(pos);
    size_t hi = std::min(lo + 1, stats.size() - 1);
    double frac = pos - static_cast<double>(lo);
    return stats[lo] * (1.0 - frac) + stats[hi] * frac;
  };
  BootstrapInterval ci;
  ci.lo = pick(alpha / 2.0);
  ci.hi = pick(1.0 - alpha / 2.0);
  ci.point_estimate = statistic(sample);
  return ci;
}

}  // namespace kea::ml
