#include "ml/model_selection.h"

#include <cmath>

namespace kea::ml {

StatusOr<LinearModel> FitFamily(const Dataset& data, RegressorFamily family) {
  if (family == RegressorFamily::kHuber) {
    HuberRegressor regressor;
    return regressor.Fit(data);
  }
  LinearRegressor regressor;
  return regressor.Fit(data);
}

StatusOr<double> CrossValidateRmse(const Dataset& data, RegressorFamily family,
                                   int folds) {
  if (folds < 2) return Status::InvalidArgument("need at least 2 folds");
  size_t n = data.size();
  size_t d = data.x.cols();
  if (n < static_cast<size_t>(folds) * (d + 2)) {
    return Status::InvalidArgument("dataset too small for the requested folds");
  }

  double total_sq = 0.0;
  size_t total_count = 0;
  for (int fold = 0; fold < folds; ++fold) {
    // Deterministic stride split: observation i is in fold i % folds.
    Dataset train;
    std::vector<size_t> test_rows;
    size_t train_rows = 0;
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i % static_cast<size_t>(folds)) == fold) {
        test_rows.push_back(i);
      } else {
        ++train_rows;
      }
    }
    train.x = Matrix(train_rows, d);
    train.y.resize(train_rows);
    size_t row = 0;
    for (size_t i = 0; i < n; ++i) {
      if (static_cast<int>(i % static_cast<size_t>(folds)) == fold) continue;
      for (size_t c = 0; c < d; ++c) train.x(row, c) = data.x(i, c);
      train.y[row] = data.y[i];
      ++row;
    }
    KEA_ASSIGN_OR_RETURN(LinearModel model, FitFamily(train, family));
    for (size_t i : test_rows) {
      Vector features(d);
      for (size_t c = 0; c < d; ++c) features[c] = data.x(i, c);
      double err = data.y[i] - model.Predict(features);
      total_sq += err * err;
      ++total_count;
    }
  }
  return std::sqrt(total_sq / static_cast<double>(total_count));
}

StatusOr<RegressorFamily> SelectRegressor(const Dataset& data, int folds) {
  KEA_ASSIGN_OR_RETURN(double ols, CrossValidateRmse(data, RegressorFamily::kOls, folds));
  KEA_ASSIGN_OR_RETURN(double huber,
                       CrossValidateRmse(data, RegressorFamily::kHuber, folds));
  return huber < ols ? RegressorFamily::kHuber : RegressorFamily::kOls;
}

}  // namespace kea::ml
