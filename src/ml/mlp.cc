#include "ml/mlp.h"

#include <algorithm>
#include <cmath>

namespace kea::ml {

double MlpRegressor::Model::Predict(const Vector& features) const {
  double out = b2_;
  for (size_t h = 0; h < w1_.size(); ++h) {
    double z = b1_[h];
    for (size_t j = 0; j < features.size(); ++j) {
      double x = x_std_[j] > 1e-12 ? (features[j] - x_mean_[j]) / x_std_[j] : 0.0;
      z += w1_[h][j] * x;
    }
    out += w2_[h] * std::tanh(z);
  }
  return out * y_std_ + y_mean_;
}

StatusOr<Vector> MlpRegressor::Model::PredictBatch(const Matrix& features) const {
  if (features.cols() != input_dim()) {
    return Status::InvalidArgument("feature width mismatch in MLP PredictBatch");
  }
  Vector out(features.rows());
  Vector row(features.cols());
  for (size_t r = 0; r < features.rows(); ++r) {
    for (size_t c = 0; c < features.cols(); ++c) row[c] = features(r, c);
    out[r] = Predict(row);
  }
  return out;
}

StatusOr<MlpRegressor::Model> MlpRegressor::Fit(const Dataset& data) const {
  const size_t n = data.size();
  const size_t d = data.x.cols();
  if (n < 2 || d == 0) return Status::InvalidArgument("degenerate MLP dataset");
  if (data.x.rows() != n) return Status::InvalidArgument("shape mismatch");
  if (options_.hidden_units <= 0 || options_.epochs <= 0 ||
      options_.batch_size <= 0 || options_.learning_rate <= 0.0) {
    return Status::InvalidArgument("invalid MLP options");
  }

  Model model;
  const size_t hidden = static_cast<size_t>(options_.hidden_units);

  // Standardize features and target (SGD on raw scales diverges).
  model.x_mean_.assign(d, 0.0);
  model.x_std_.assign(d, 0.0);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) model.x_mean_[c] += data.x(r, c);
  }
  for (double& m : model.x_mean_) m /= static_cast<double>(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      double delta = data.x(r, c) - model.x_mean_[c];
      model.x_std_[c] += delta * delta;
    }
  }
  for (double& s : model.x_std_) {
    s = std::sqrt(s / static_cast<double>(n));
    if (s < 1e-12) s = 1.0;
  }
  model.y_mean_ = 0.0;
  for (double v : data.y) model.y_mean_ += v;
  model.y_mean_ /= static_cast<double>(n);
  double y_var = 0.0;
  for (double v : data.y) {
    double delta = v - model.y_mean_;
    y_var += delta * delta;
  }
  model.y_std_ = std::sqrt(y_var / static_cast<double>(n));
  if (model.y_std_ < 1e-12) model.y_std_ = 1.0;

  // Standardized copies.
  std::vector<Vector> xs(n, Vector(d));
  Vector ys(n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < d; ++c) {
      xs[r][c] = (data.x(r, c) - model.x_mean_[c]) / model.x_std_[c];
    }
    ys[r] = (data.y[r] - model.y_mean_) / model.y_std_;
  }

  // Xavier-ish init.
  Rng rng(options_.seed);
  double scale = 1.0 / std::sqrt(static_cast<double>(d));
  model.w1_.assign(hidden, Vector(d));
  model.b1_.assign(hidden, 0.0);
  model.w2_.assign(hidden, 0.0);
  for (size_t h = 0; h < hidden; ++h) {
    for (size_t j = 0; j < d; ++j) model.w1_[h][j] = rng.Gaussian(0.0, scale);
    model.w2_[h] = rng.Gaussian(0.0, 1.0 / std::sqrt(static_cast<double>(hidden)));
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  Vector hidden_act(hidden);
  for (int epoch = 0; epoch < options_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double lr = options_.learning_rate /
                (1.0 + 0.01 * static_cast<double>(epoch));
    for (size_t start = 0; start < n; start += static_cast<size_t>(options_.batch_size)) {
      size_t end = std::min(n, start + static_cast<size_t>(options_.batch_size));
      // Accumulate gradients over the batch.
      std::vector<Vector> g_w1(hidden, Vector(d, 0.0));
      Vector g_b1(hidden, 0.0), g_w2(hidden, 0.0);
      double g_b2 = 0.0;
      for (size_t bi = start; bi < end; ++bi) {
        const Vector& x = xs[order[bi]];
        double y = ys[order[bi]];
        double pred = model.b2_;
        for (size_t h = 0; h < hidden; ++h) {
          double z = model.b1_[h];
          for (size_t j = 0; j < d; ++j) z += model.w1_[h][j] * x[j];
          hidden_act[h] = std::tanh(z);
          pred += model.w2_[h] * hidden_act[h];
        }
        double err = pred - y;  // d(0.5 err^2)/d pred.
        g_b2 += err;
        for (size_t h = 0; h < hidden; ++h) {
          g_w2[h] += err * hidden_act[h];
          double back = err * model.w2_[h] * (1.0 - hidden_act[h] * hidden_act[h]);
          g_b1[h] += back;
          for (size_t j = 0; j < d; ++j) g_w1[h][j] += back * x[j];
        }
      }
      double inv = 1.0 / static_cast<double>(end - start);
      model.b2_ -= lr * g_b2 * inv;
      for (size_t h = 0; h < hidden; ++h) {
        model.w2_[h] -= lr * (g_w2[h] * inv + options_.l2 * model.w2_[h]);
        model.b1_[h] -= lr * g_b1[h] * inv;
        for (size_t j = 0; j < d; ++j) {
          model.w1_[h][j] -=
              lr * (g_w1[h][j] * inv + options_.l2 * model.w1_[h][j]);
        }
      }
    }
  }
  return model;
}

}  // namespace kea::ml
