#ifndef KEA_ML_MATRIX_H_
#define KEA_ML_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common/status.h"

namespace kea::ml {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles. Sized for the regression problems KEA
/// solves (design matrices with a handful of features); not a BLAS
/// replacement.
class Matrix {
 public:
  Matrix() = default;

  /// Creates a rows x cols matrix filled with `fill`.
  Matrix(size_t rows, size_t cols, double fill = 0.0);

  /// Creates a matrix from nested initializer lists; all rows must have the
  /// same width (asserted).
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  /// Identity matrix of size n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Matrix transpose.
  Matrix Transposed() const;

  /// Matrix-matrix product; returns InvalidArgument on shape mismatch.
  StatusOr<Matrix> Multiply(const Matrix& other) const;

  /// Matrix-vector product; returns InvalidArgument on shape mismatch.
  StatusOr<Vector> Multiply(const Vector& v) const;

  /// Returns this^T * this (the Gram matrix of the columns).
  Matrix Gram() const;

  /// Returns this^T * v; requires v.size() == rows().
  StatusOr<Vector> TransposedMultiply(const Vector& v) const;

  /// Adds `value` to every diagonal entry (ridge regularization).
  void AddToDiagonal(double value);

  bool operator==(const Matrix& other) const {
    return rows_ == other.rows_ && cols_ == other.cols_ && data_ == other.data_;
  }

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;
};

/// Solves the square linear system A x = b via Gaussian elimination with
/// partial pivoting. Returns:
///  - InvalidArgument if A is not square or shapes mismatch,
///  - FailedPrecondition if A is (numerically) singular.
StatusOr<Vector> SolveLinearSystem(Matrix a, Vector b);

/// Solves a symmetric positive-definite system via Cholesky factorization.
/// Returns FailedPrecondition if A is not positive definite.
StatusOr<Vector> SolveCholesky(const Matrix& a, const Vector& b);

/// Dot product; asserts equal sizes.
double Dot(const Vector& a, const Vector& b);

}  // namespace kea::ml

#endif  // KEA_ML_MATRIX_H_
