#ifndef KEA_ML_EMPIRICAL_H_
#define KEA_ML_EMPIRICAL_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace kea::ml {

/// An empirical distribution backed by observed samples. The SKU-design
/// Monte-Carlo (Section 6.1) draws per-core usage slopes (beta_s, beta_r)
/// from the observational data rather than assuming a parametric form.
class EmpiricalDistribution {
 public:
  /// Returns InvalidArgument for an empty sample set.
  static StatusOr<EmpiricalDistribution> FromSamples(std::vector<double> samples);

  /// Draws a sample uniformly from the observations (bootstrap draw).
  double Sample(Rng* rng) const;

  /// Empirical CDF at x: fraction of observations <= x.
  double Cdf(double x) const;

  /// Empirical quantile (inverse CDF), q in [0, 1].
  double Quantile(double q) const;

  double mean() const { return mean_; }
  size_t size() const { return sorted_.size(); }

 private:
  explicit EmpiricalDistribution(std::vector<double> sorted);

  std::vector<double> sorted_;
  double mean_ = 0.0;
};

/// Draws `iterations` bootstrap resamples of `sample`, applies `statistic` to
/// each, and returns the percentile confidence interval [lo, hi] at the given
/// level (e.g., 0.95).
struct BootstrapInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point_estimate = 0.0;
};

StatusOr<BootstrapInterval> BootstrapCi(
    const std::vector<double>& sample,
    double (*statistic)(const std::vector<double>&), double level, int iterations,
    Rng* rng);

}  // namespace kea::ml

#endif  // KEA_ML_EMPIRICAL_H_
