#ifndef KEA_ML_STATS_H_
#define KEA_ML_STATS_H_

#include <cstddef>
#include <vector>

#include "common/status.h"

namespace kea::ml {

/// Descriptive summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1) sample variance.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes the descriptive summary; returns InvalidArgument for an empty
/// sample.
StatusOr<Summary> Summarize(const std::vector<double>& sample);

/// Arithmetic mean; returns 0 for an empty sample.
double Mean(const std::vector<double>& sample);

/// Unbiased sample variance; returns 0 for samples of size < 2.
double Variance(const std::vector<double>& sample);

/// Linear-interpolation quantile, q in [0, 1]. Returns InvalidArgument for an
/// empty sample or q outside [0, 1]. q=0.5 is the median.
StatusOr<double> Quantile(std::vector<double> sample, double q);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<size_t> counts;

  /// Bucket center of bin i.
  double BinCenter(size_t i) const;
};

/// Builds a histogram. Returns InvalidArgument if bins == 0 or hi <= lo.
StatusOr<Histogram> MakeHistogram(const std::vector<double>& sample, double lo,
                                  double hi, size_t bins);

/// Result of a two-sample t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;        ///< Two-sided p-value.
  double mean_difference = 0.0;  ///< mean(a) - mean(b).
  bool significant_at_05 = false;
};

/// Student's two-sample t-test with pooled variance (assumes equal variances).
/// This is the test the paper uses for before/after comparisons (§5.2.2, §7).
/// Requires both samples to have >= 2 observations.
StatusOr<TTestResult> StudentTTest(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Welch's t-test (unequal variances) with Welch-Satterthwaite dof.
StatusOr<TTestResult> WelchTTest(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// CDF of the Student-t distribution with `dof` degrees of freedom, via the
/// regularized incomplete beta function.
double StudentTCdf(double t, double dof);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz's algorithm).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Pearson correlation coefficient; returns InvalidArgument on size mismatch
/// or fewer than 2 observations, FailedPrecondition if either sample is
/// constant.
StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y);

}  // namespace kea::ml

#endif  // KEA_ML_STATS_H_
