#ifndef KEA_ML_STATS_H_
#define KEA_ML_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"

namespace kea::ml {

/// Descriptive summary of a sample.
struct Summary {
  size_t count = 0;
  double mean = 0.0;
  double variance = 0.0;  ///< Unbiased (n-1) sample variance.
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Computes the descriptive summary; returns InvalidArgument for an empty
/// sample.
StatusOr<Summary> Summarize(const std::vector<double>& sample);

/// Arithmetic mean; returns 0 for an empty sample.
double Mean(const std::vector<double>& sample);

/// Unbiased sample variance; returns 0 for samples of size < 2.
double Variance(const std::vector<double>& sample);

/// Linear-interpolation quantile, q in [0, 1]. Returns InvalidArgument for an
/// empty sample or q outside [0, 1]. q=0.5 is the median.
StatusOr<double> Quantile(std::vector<double> sample, double q);

/// Equal-width histogram over [lo, hi] with `bins` buckets; values outside
/// the range are clamped into the edge buckets.
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<size_t> counts;

  /// Bucket center of bin i.
  double BinCenter(size_t i) const;
};

/// Builds a histogram. Returns InvalidArgument if bins == 0 or hi <= lo.
StatusOr<Histogram> MakeHistogram(const std::vector<double>& sample, double lo,
                                  double hi, size_t bins);

/// Result of a two-sample t-test.
struct TTestResult {
  double t_statistic = 0.0;
  double degrees_of_freedom = 0.0;
  double p_value = 1.0;        ///< Two-sided p-value.
  double mean_difference = 0.0;  ///< mean(a) - mean(b).
  bool significant_at_05 = false;
};

/// Student's two-sample t-test with pooled variance (assumes equal variances).
/// This is the test the paper uses for before/after comparisons (§5.2.2, §7).
/// Requires both samples to have >= 2 observations.
StatusOr<TTestResult> StudentTTest(const std::vector<double>& a,
                                   const std::vector<double>& b);

/// Welch's t-test (unequal variances) with Welch-Satterthwaite dof.
StatusOr<TTestResult> WelchTTest(const std::vector<double>& a,
                                 const std::vector<double>& b);

/// CDF of the Student-t distribution with `dof` degrees of freedom, via the
/// regularized incomplete beta function.
double StudentTCdf(double t, double dof);

/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz's algorithm).
double RegularizedIncompleteBeta(double a, double b, double x);

/// Pearson correlation coefficient; returns InvalidArgument on size mismatch
/// or fewer than 2 observations, FailedPrecondition if either sample is
/// constant.
StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Two-sided Page-Hinkley change-point detector over a scalar stream — the
/// sequential test behind the telemetry drift monitor (DESIGN.md "fleet fault
/// model & self-healing loop"). Observations are standardized against the
/// stream's own running mean/stddev (Welford), so thresholds are in sigma
/// units and one parameterization works for utilization fractions and
/// machine counts alike. Tracks the cumulative standardized deviation in
/// both directions and alarms when either drifts `lambda` past its running
/// extremum — a sustained mean shift fires, symmetric oscillation (diurnal
/// load) does not.
///
/// Zero-variance streams are explicitly guarded: the standardization divisor
/// is max(stddev, min_stddev), so a constant stream contributes exactly zero
/// drift (never NaN) while a later jump off the constant still alarms.
class PageHinkleyDetector {
 public:
  struct Options {
    /// Drift tolerance per observation, in stddev units. Deviations smaller
    /// than this never accumulate. Hourly telemetry is strongly
    /// autocorrelated (diurnal load), so this must exceed the per-hour gain
    /// of one half-cycle divided by its length or clean days will alarm;
    /// 0.25 drains a symmetric daily swing while a sustained +1-sigma shift
    /// still nets +0.75 per hour.
    double delta = 0.25;
    /// Alarm threshold on the cumulative drift, in stddev units. With
    /// delta = 0.25 a +1-sigma mean shift trips in about a day.
    double lambda = 18.0;
    /// Observations before alarms may fire (running stats settle first).
    int warmup = 48;
    /// Floor on the standardization divisor (the division-by-zero guard).
    double min_stddev = 1e-9;
    /// Cap on a single standardized deviation so one jump off a
    /// zero-variance stream cannot overflow the accumulators.
    double max_z = 1e6;
  };

  PageHinkleyDetector() : PageHinkleyDetector(Options()) {}
  explicit PageHinkleyDetector(const Options& options) : options_(options) {}

  /// Feeds one observation; returns true when a change point is detected.
  /// Non-finite observations are ignored (they are the telemetry pipeline's
  /// problem, not the detector's). After an alarm the detector keeps
  /// accumulating; call Reset() to start a fresh regime.
  bool Observe(double x);

  /// Forgets everything — running stats and drift accumulators. Used after a
  /// model refit: the post-drift regime is the new normal.
  void Reset();

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  double stddev() const;
  /// Largest cumulative drift currently held in either direction.
  double drift_magnitude() const;
  bool alarmed() const { return alarmed_; }

  /// Bit-exact codec for checkpoint/resume.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  Options options_;
  // Welford running stats.
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  // Cumulative standardized deviations and their running extrema.
  double up_sum_ = 0.0;
  double up_min_ = 0.0;
  double down_sum_ = 0.0;
  double down_max_ = 0.0;
  bool alarmed_ = false;
};

}  // namespace kea::ml

#endif  // KEA_ML_STATS_H_
