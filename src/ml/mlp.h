#ifndef KEA_ML_MLP_H_
#define KEA_ML_MLP_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/regression.h"

namespace kea::ml {

/// A small feed-forward neural regressor: one tanh hidden layer trained with
/// mini-batch SGD on standardized inputs/targets. Section 5.1 lists DNNs
/// among the What-if Engine's candidate predictors; in practice "linear
/// models are more explainable, which is critical for domain experts" — the
/// ablation bench quantifies how little accuracy the MLP buys on the
/// near-linear machine-group relationships.
class MlpRegressor {
 public:
  struct Options {
    int hidden_units = 16;
    int epochs = 200;
    int batch_size = 32;
    double learning_rate = 0.01;
    double l2 = 1e-4;
    uint64_t seed = 1;
  };

  /// A fitted network (value type; cheap to copy at these sizes).
  class Model {
   public:
    /// Predicts a single observation; feature width must match training.
    double Predict(const Vector& features) const;
    /// Predicts every row; returns InvalidArgument on width mismatch.
    StatusOr<Vector> PredictBatch(const Matrix& features) const;

    size_t input_dim() const { return w1_.empty() ? 0 : w1_[0].size(); }
    int hidden_units() const { return static_cast<int>(w1_.size()); }

   private:
    friend class MlpRegressor;
    std::vector<Vector> w1_;  ///< hidden x input.
    Vector b1_;               ///< hidden.
    Vector w2_;               ///< hidden.
    double b2_ = 0.0;
    // Standardization parameters.
    Vector x_mean_, x_std_;
    double y_mean_ = 0.0, y_std_ = 1.0;
  };

  MlpRegressor() : options_(Options()) {}
  explicit MlpRegressor(const Options& options) : options_(options) {}

  /// Trains on the dataset. Returns InvalidArgument on degenerate data
  /// (empty, fewer rows than 2, non-positive options).
  StatusOr<Model> Fit(const Dataset& data) const;

 private:
  Options options_;
};

}  // namespace kea::ml

#endif  // KEA_ML_MLP_H_
