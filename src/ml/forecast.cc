#include "ml/forecast.h"

#include <cmath>

#include "ml/regression.h"

namespace kea::ml {

StatusOr<SeasonalTrendForecaster> SeasonalTrendForecaster::Fit(
    const std::vector<double>& series, int season_length) {
  if (season_length <= 0) {
    return Status::InvalidArgument("season_length must be positive");
  }
  if (series.size() < 2 * static_cast<size_t>(season_length)) {
    return Status::InvalidArgument("need at least two full seasons of data");
  }
  double mean = 0.0;
  for (double v : series) mean += v;
  mean /= static_cast<double>(series.size());
  if (mean <= 1e-12) {
    return Status::FailedPrecondition("series mean must be positive");
  }

  SeasonalTrendForecaster f;
  f.fitted_length_ = static_cast<int64_t>(series.size());
  f.seasonal_.assign(static_cast<size_t>(season_length), 1.0);

  // Backfitting: alternate (a) OLS trend on the seasonally adjusted series
  // and (b) seasonal factors from the detrended series. One pass is biased —
  // the seasonal phase correlates with the global time index — so iterate to
  // convergence (three rounds suffice for these smooth series).
  Vector t(series.size());
  for (size_t i = 0; i < series.size(); ++i) t[i] = static_cast<double>(i);
  LinearRegressor regressor;
  for (int iteration = 0; iteration < 3; ++iteration) {
    // (a) Trend on y / seasonal.
    Vector adjusted(series.size());
    for (size_t i = 0; i < series.size(); ++i) {
      double s = f.seasonal_[i % static_cast<size_t>(season_length)];
      adjusted[i] = s > 1e-12 ? series[i] / s : series[i];
    }
    KEA_ASSIGN_OR_RETURN(LinearModel trend,
                         regressor.Fit(MakeDataset1D(t, adjusted)));
    f.intercept_ = trend.intercept();
    f.slope_ = trend.coefficients()[0];

    // (b) Seasonal factors = mean ratio of observed to trend per phase.
    std::vector<double> sums(static_cast<size_t>(season_length), 0.0);
    std::vector<int> counts(static_cast<size_t>(season_length), 0);
    for (size_t i = 0; i < series.size(); ++i) {
      double base = f.intercept_ + f.slope_ * static_cast<double>(i);
      if (base <= 1e-12) continue;
      size_t phase = i % static_cast<size_t>(season_length);
      sums[phase] += series[i] / base;
      ++counts[phase];
    }
    for (size_t p = 0; p < f.seasonal_.size(); ++p) {
      f.seasonal_[p] =
          counts[p] > 0 ? sums[p] / static_cast<double>(counts[p]) : 1.0;
    }
  }

  // In-sample accuracy.
  double mape = 0.0;
  size_t used = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    if (std::fabs(series[i]) < 1e-12) continue;
    double pred = f.Predict(static_cast<int64_t>(i));
    mape += std::fabs(pred - series[i]) / std::fabs(series[i]);
    ++used;
  }
  f.training_mape_ = used > 0 ? mape / static_cast<double>(used) : 0.0;
  return f;
}

double SeasonalTrendForecaster::Predict(int64_t t) const {
  double base = intercept_ + slope_ * static_cast<double>(t);
  size_t phase = static_cast<size_t>(t % static_cast<int64_t>(seasonal_.size()));
  return base * seasonal_[phase];
}

std::vector<double> SeasonalTrendForecaster::Forecast(int horizon) const {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(std::max(horizon, 0)));
  for (int h = 0; h < horizon; ++h) {
    out.push_back(Predict(fitted_length_ + h));
  }
  return out;
}

StatusOr<double> MeanAbsolutePercentageError(const std::vector<double>& actual,
                                             const std::vector<double>& predicted) {
  if (actual.size() != predicted.size()) {
    return Status::InvalidArgument("size mismatch in MAPE");
  }
  if (actual.empty()) return Status::InvalidArgument("empty series in MAPE");
  double total = 0.0;
  for (size_t i = 0; i < actual.size(); ++i) {
    if (std::fabs(actual[i]) < 1e-12) {
      return Status::FailedPrecondition("actual value ~0 in MAPE");
    }
    total += std::fabs(predicted[i] - actual[i]) / std::fabs(actual[i]);
  }
  return total / static_cast<double>(actual.size());
}

}  // namespace kea::ml
