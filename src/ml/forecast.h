#ifndef KEA_ML_FORECAST_H_
#define KEA_ML_FORECAST_H_

#include <vector>

#include "common/status.h"

namespace kea::ml {

/// Multiplicative seasonal-trend forecaster for hourly infrastructure
/// series: y_t = (a + b*t) * s[t mod season]. Fit in two stages — OLS linear
/// trend, then per-phase seasonal factors from the detrended series. This is
/// the workhorse behind KEA's capacity planning: demand series have strong
/// diurnal/weekly seasonality plus slow organic growth, and "long-term
/// workload seasonalities impose long observation windows" (Section 2).
class SeasonalTrendForecaster {
 public:
  /// Constructs a trivial (all-zero) forecaster; use Fit() to obtain a
  /// usable one. Exists so result structs can hold a forecaster by value.
  SeasonalTrendForecaster() = default;

  /// Fits on `series` (one value per hour). Requires at least two full
  /// seasons of data and a positive mean. season_length defaults to one week
  /// of hours.
  static StatusOr<SeasonalTrendForecaster> Fit(const std::vector<double>& series,
                                               int season_length = 168);

  /// Predicted value at absolute index t (t = 0 is the first fitted hour;
  /// t >= series size extrapolates).
  double Predict(int64_t t) const;

  /// Forecasts `horizon` hours beyond the end of the fitted series.
  std::vector<double> Forecast(int horizon) const;

  double trend_intercept() const { return intercept_; }
  double trend_slope() const { return slope_; }
  const std::vector<double>& seasonal_factors() const { return seasonal_; }
  int64_t fitted_length() const { return fitted_length_; }

  /// In-sample mean absolute percentage error.
  double TrainingMape() const { return training_mape_; }

 private:

  double intercept_ = 0.0;
  double slope_ = 0.0;
  std::vector<double> seasonal_;
  int64_t fitted_length_ = 0;
  double training_mape_ = 0.0;
};

/// Mean absolute percentage error between a forecast and actuals; returns
/// InvalidArgument on size mismatch or empty input, FailedPrecondition if an
/// actual is ~0.
StatusOr<double> MeanAbsolutePercentageError(const std::vector<double>& actual,
                                             const std::vector<double>& predicted);

}  // namespace kea::ml

#endif  // KEA_ML_FORECAST_H_
