#include "ml/matrix.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace kea::ml {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows) {
  rows_ = rows.size();
  cols_ = rows_ == 0 ? 0 : rows.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Transposed() const {
  Matrix t(cols_, rows_);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
  }
  return t;
}

StatusOr<Matrix> Matrix::Multiply(const Matrix& other) const {
  if (cols_ != other.rows_) {
    return Status::InvalidArgument("matrix shape mismatch in multiply");
  }
  Matrix out(rows_, other.cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t k = 0; k < cols_; ++k) {
      double a = (*this)(r, k);
      if (a == 0.0) continue;
      for (size_t c = 0; c < other.cols_; ++c) {
        out(r, c) += a * other(k, c);
      }
    }
  }
  return out;
}

StatusOr<Vector> Matrix::Multiply(const Vector& v) const {
  if (cols_ != v.size()) {
    return Status::InvalidArgument("matrix-vector shape mismatch");
  }
  Vector out(rows_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double sum = 0.0;
    for (size_t c = 0; c < cols_; ++c) sum += (*this)(r, c) * v[c];
    out[r] = sum;
  }
  return out;
}

Matrix Matrix::Gram() const {
  Matrix g(cols_, cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    for (size_t i = 0; i < cols_; ++i) {
      double a = (*this)(r, i);
      if (a == 0.0) continue;
      for (size_t j = i; j < cols_; ++j) {
        g(i, j) += a * (*this)(r, j);
      }
    }
  }
  for (size_t i = 0; i < cols_; ++i) {
    for (size_t j = 0; j < i; ++j) g(i, j) = g(j, i);
  }
  return g;
}

StatusOr<Vector> Matrix::TransposedMultiply(const Vector& v) const {
  if (rows_ != v.size()) {
    return Status::InvalidArgument("transposed matrix-vector shape mismatch");
  }
  Vector out(cols_, 0.0);
  for (size_t r = 0; r < rows_; ++r) {
    double w = v[r];
    if (w == 0.0) continue;
    for (size_t c = 0; c < cols_; ++c) out[c] += (*this)(r, c) * w;
  }
  return out;
}

void Matrix::AddToDiagonal(double value) {
  size_t n = rows_ < cols_ ? rows_ : cols_;
  for (size_t i = 0; i < n; ++i) (*this)(i, i) += value;
}

StatusOr<Vector> SolveLinearSystem(Matrix a, Vector b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem requires a square matrix");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem shape mismatch");
  }
  const size_t n = a.rows();
  // Forward elimination with partial pivoting.
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::FailedPrecondition("singular matrix in SolveLinearSystem");
    }
    if (pivot != col) {
      for (size_t c = col; c < n; ++c) std::swap(a(col, c), a(pivot, c));
      std::swap(b[col], b[pivot]);
    }
    for (size_t r = col + 1; r < n; ++r) {
      double factor = a(r, col) / a(col, col);
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (size_t c = col + 1; c < n; ++c) a(r, c) -= factor * a(col, c);
      b[r] -= factor * b[col];
    }
  }
  // Back substitution.
  Vector x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (size_t c = i + 1; c < n; ++c) sum -= a(i, c) * x[c];
    x[i] = sum / a(i, i);
  }
  return x;
}

StatusOr<Vector> SolveCholesky(const Matrix& a, const Vector& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("SolveCholesky shape mismatch");
  }
  const size_t n = a.rows();
  Matrix l(n, n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double sum = a(i, j);
      for (size_t k = 0; k < j; ++k) sum -= l(i, k) * l(j, k);
      if (i == j) {
        if (sum <= 1e-14) {
          return Status::FailedPrecondition("matrix not positive definite in SolveCholesky");
        }
        l(i, i) = std::sqrt(sum);
      } else {
        l(i, j) = sum / l(j, j);
      }
    }
  }
  // Solve L y = b.
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double sum = b[i];
    for (size_t k = 0; k < i; ++k) sum -= l(i, k) * y[k];
    y[i] = sum / l(i, i);
  }
  // Solve L^T x = y.
  Vector x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double sum = y[i];
    for (size_t k = i + 1; k < n; ++k) sum -= l(k, i) * x[k];
    x[i] = sum / l(i, i);
  }
  return x;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace kea::ml
