#include "ml/stats.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/snapshot.h"

namespace kea::ml {

namespace {

/// Log of the gamma function (Lanczos approximation).
double LogGamma(double x) {
  static const double kCoefficients[6] = {76.18009172947146,  -86.50532032941677,
                                          24.01409824083091,  -1.231739572450155,
                                          0.1208650973866179e-2, -0.5395239384953e-5};
  double y = x;
  double tmp = x + 5.5;
  tmp -= (x + 0.5) * std::log(tmp);
  double series = 1.000000000190015;
  for (double c : kCoefficients) {
    y += 1.0;
    series += c / y;
  }
  return -tmp + std::log(2.5066282746310005 * series / x);
}

/// Continued fraction for the incomplete beta function (Numerical Recipes
/// style modified Lentz).
double BetaContinuedFraction(double a, double b, double x) {
  constexpr int kMaxIterations = 300;
  constexpr double kEpsilon = 3e-14;
  constexpr double kTiny = 1e-300;

  double qab = a + b;
  double qap = a + 1.0;
  double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kTiny) d = kTiny;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIterations; ++m) {
    int m2 = 2 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kTiny) d = kTiny;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kTiny) c = kTiny;
    d = 1.0 / d;
    double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEpsilon) break;
  }
  return h;
}

TTestResult FinishTTest(double t, double dof, double mean_diff) {
  TTestResult result;
  result.t_statistic = t;
  result.degrees_of_freedom = dof;
  result.mean_difference = mean_diff;
  // Two-sided p-value.
  double cdf = StudentTCdf(std::fabs(t), dof);
  result.p_value = 2.0 * (1.0 - cdf);
  result.p_value = std::clamp(result.p_value, 0.0, 1.0);
  result.significant_at_05 = result.p_value < 0.05;
  return result;
}

}  // namespace

double RegularizedIncompleteBeta(double a, double b, double x) {
  if (x <= 0.0) return 0.0;
  if (x >= 1.0) return 1.0;
  double ln_beta = LogGamma(a + b) - LogGamma(a) - LogGamma(b) +
                   a * std::log(x) + b * std::log(1.0 - x);
  double front = std::exp(ln_beta);
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * BetaContinuedFraction(a, b, x) / a;
  }
  return 1.0 - front * BetaContinuedFraction(b, a, 1.0 - x) / b;
}

double StudentTCdf(double t, double dof) {
  if (dof <= 0.0) return 0.5;
  double x = dof / (dof + t * t);
  double tail = 0.5 * RegularizedIncompleteBeta(dof / 2.0, 0.5, x);
  return t >= 0.0 ? 1.0 - tail : tail;
}

StatusOr<Summary> Summarize(const std::vector<double>& sample) {
  if (sample.empty()) return Status::InvalidArgument("empty sample");
  Summary s;
  s.count = sample.size();
  s.min = sample.front();
  s.max = sample.front();
  double sum = 0.0;
  for (double v : sample) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(sample.size());
  double sq = 0.0;
  for (double v : sample) {
    double d = v - s.mean;
    sq += d * d;
  }
  s.variance = sample.size() > 1 ? sq / static_cast<double>(sample.size() - 1) : 0.0;
  s.stddev = std::sqrt(s.variance);
  return s;
}

double Mean(const std::vector<double>& sample) {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double Variance(const std::vector<double>& sample) {
  if (sample.size() < 2) return 0.0;
  double mean = Mean(sample);
  double sq = 0.0;
  for (double v : sample) {
    double d = v - mean;
    sq += d * d;
  }
  return sq / static_cast<double>(sample.size() - 1);
}

StatusOr<double> Quantile(std::vector<double> sample, double q) {
  if (sample.empty()) return Status::InvalidArgument("empty sample");
  if (q < 0.0 || q > 1.0) return Status::InvalidArgument("quantile outside [0, 1]");
  std::sort(sample.begin(), sample.end());
  double pos = q * static_cast<double>(sample.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sample.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sample[lo] * (1.0 - frac) + sample[hi] * frac;
}

double Histogram::BinCenter(size_t i) const {
  double width = (hi - lo) / static_cast<double>(counts.size());
  return lo + (static_cast<double>(i) + 0.5) * width;
}

StatusOr<Histogram> MakeHistogram(const std::vector<double>& sample, double lo,
                                  double hi, size_t bins) {
  if (bins == 0) return Status::InvalidArgument("histogram needs at least one bin");
  if (hi <= lo) return Status::InvalidArgument("histogram range must be non-empty");
  Histogram h;
  h.lo = lo;
  h.hi = hi;
  h.counts.assign(bins, 0);
  double width = (hi - lo) / static_cast<double>(bins);
  for (double v : sample) {
    double offset = (v - lo) / width;
    long bin = static_cast<long>(std::floor(offset));
    bin = std::clamp<long>(bin, 0, static_cast<long>(bins) - 1);
    ++h.counts[static_cast<size_t>(bin)];
  }
  return h;
}

StatusOr<TTestResult> StudentTTest(const std::vector<double>& a,
                                   const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    return Status::InvalidArgument("t-test requires >= 2 observations per sample");
  }
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double mean_a = Mean(a);
  double mean_b = Mean(b);
  double var_a = Variance(a);
  double var_b = Variance(b);
  double dof = na + nb - 2.0;
  double pooled = ((na - 1.0) * var_a + (nb - 1.0) * var_b) / dof;
  double se = std::sqrt(pooled * (1.0 / na + 1.0 / nb));
  if (se < 1e-300) {
    return Status::FailedPrecondition("zero variance in both samples");
  }
  return FinishTTest((mean_a - mean_b) / se, dof, mean_a - mean_b);
}

StatusOr<TTestResult> WelchTTest(const std::vector<double>& a,
                                 const std::vector<double>& b) {
  if (a.size() < 2 || b.size() < 2) {
    return Status::InvalidArgument("t-test requires >= 2 observations per sample");
  }
  double na = static_cast<double>(a.size());
  double nb = static_cast<double>(b.size());
  double mean_a = Mean(a);
  double mean_b = Mean(b);
  double sa = Variance(a) / na;
  double sb = Variance(b) / nb;
  double se2 = sa + sb;
  if (se2 < 1e-300) {
    return Status::FailedPrecondition("zero variance in both samples");
  }
  double dof = se2 * se2 /
               (sa * sa / (na - 1.0) + sb * sb / (nb - 1.0));
  return FinishTTest((mean_a - mean_b) / std::sqrt(se2), dof, mean_a - mean_b);
}

StatusOr<double> PearsonCorrelation(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) return Status::InvalidArgument("size mismatch");
  if (x.size() < 2) return Status::InvalidArgument("need >= 2 observations");
  double mx = Mean(x);
  double my = Mean(y);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    double dx = x[i] - mx;
    double dy = y[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx < 1e-300 || syy < 1e-300) {
    return Status::FailedPrecondition("constant sample in correlation");
  }
  return sxy / std::sqrt(sxx * syy);
}

bool PageHinkleyDetector::Observe(double x) {
  if (!std::isfinite(x)) return false;
  ++count_;
  double delta_mean = x - mean_;
  mean_ += delta_mean / static_cast<double>(count_);
  m2_ += delta_mean * (x - mean_);

  // Standardize against the stats *before* this point settled; the
  // min_stddev floor is the zero-variance guard — a constant stream yields
  // z == 0 exactly, never NaN.
  double sd = stddev();
  double z = (x - mean_) / std::max(sd, options_.min_stddev);
  z = std::clamp(z, -options_.max_z, options_.max_z);

  up_sum_ += z - options_.delta;
  up_min_ = std::min(up_min_, up_sum_);
  down_sum_ += z + options_.delta;
  down_max_ = std::max(down_max_, down_sum_);

  if (count_ <= static_cast<size_t>(std::max(options_.warmup, 1))) {
    return false;
  }
  bool alarm = (up_sum_ - up_min_ > options_.lambda) ||
               (down_max_ - down_sum_ > options_.lambda);
  if (alarm) alarmed_ = true;
  return alarm;
}

void PageHinkleyDetector::Reset() {
  count_ = 0;
  mean_ = 0.0;
  m2_ = 0.0;
  up_sum_ = 0.0;
  up_min_ = 0.0;
  down_sum_ = 0.0;
  down_max_ = 0.0;
  alarmed_ = false;
}

double PageHinkleyDetector::stddev() const {
  if (count_ < 2) return 0.0;
  return std::sqrt(std::max(0.0, m2_ / static_cast<double>(count_ - 1)));
}

double PageHinkleyDetector::drift_magnitude() const {
  return std::max(up_sum_ - up_min_, down_max_ - down_sum_);
}

std::string PageHinkleyDetector::SerializeState() const {
  StateWriter w;
  w.PutU64(count_);
  w.PutDouble(mean_);
  w.PutDouble(m2_);
  w.PutDouble(up_sum_);
  w.PutDouble(up_min_);
  w.PutDouble(down_sum_);
  w.PutDouble(down_max_);
  w.PutBool(alarmed_);
  return w.Release();
}

Status PageHinkleyDetector::RestoreState(const std::string& blob) {
  StateReader r(blob);
  uint64_t count = 0;
  double mean = 0.0, m2 = 0.0, up_sum = 0.0, up_min = 0.0, down_sum = 0.0,
         down_max = 0.0;
  bool alarmed = false;
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  KEA_RETURN_IF_ERROR(r.GetDouble(&mean));
  KEA_RETURN_IF_ERROR(r.GetDouble(&m2));
  KEA_RETURN_IF_ERROR(r.GetDouble(&up_sum));
  KEA_RETURN_IF_ERROR(r.GetDouble(&up_min));
  KEA_RETURN_IF_ERROR(r.GetDouble(&down_sum));
  KEA_RETURN_IF_ERROR(r.GetDouble(&down_max));
  KEA_RETURN_IF_ERROR(r.GetBool(&alarmed));
  count_ = count;
  mean_ = mean;
  m2_ = m2;
  up_sum_ = up_sum;
  up_min_ = up_min;
  down_sum_ = down_sum;
  down_max_ = down_max;
  alarmed_ = alarmed;
  return Status::OK();
}

}  // namespace kea::ml
