#include "ml/regression.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace kea::ml {

namespace {

/// Builds the design matrix with a leading intercept column.
Matrix WithIntercept(const Matrix& x) {
  Matrix d(x.rows(), x.cols() + 1, 0.0);
  for (size_t r = 0; r < x.rows(); ++r) {
    d(r, 0) = 1.0;
    for (size_t c = 0; c < x.cols(); ++c) d(r, c + 1) = x(r, c);
  }
  return d;
}

Status ValidateDataset(const Dataset& data) {
  if (data.y.empty()) return Status::InvalidArgument("empty dataset");
  if (data.x.rows() != data.y.size()) {
    return Status::InvalidArgument("feature/target row count mismatch");
  }
  if (data.x.cols() == 0) return Status::InvalidArgument("dataset has no features");
  if (data.y.size() < data.x.cols() + 1) {
    return Status::InvalidArgument("fewer observations than parameters");
  }
  return Status::OK();
}

LinearModel ModelFromSolution(const Vector& beta) {
  Vector coef(beta.begin() + 1, beta.end());
  return LinearModel(beta[0], std::move(coef));
}

/// Median of |values|; used for the robust residual scale (MAD).
double MedianAbs(Vector values) {
  for (double& v : values) v = std::fabs(v);
  size_t mid = values.size() / 2;
  std::nth_element(values.begin(), values.begin() + mid, values.end());
  double m = values[mid];
  if (values.size() % 2 == 0) {
    std::nth_element(values.begin(), values.begin() + mid - 1, values.begin() + mid);
    m = 0.5 * (m + values[mid - 1]);
  }
  return m;
}

}  // namespace

double LinearModel::Predict(const Vector& features) const {
  assert(features.size() == coefficients_.size());
  return intercept_ + Dot(features, coefficients_);
}

double LinearModel::Predict1D(double x) const {
  assert(coefficients_.size() == 1);
  return intercept_ + coefficients_[0] * x;
}

StatusOr<Vector> LinearModel::PredictBatch(const Matrix& features) const {
  if (features.cols() != coefficients_.size()) {
    return Status::InvalidArgument("feature width mismatch in PredictBatch");
  }
  Vector out(features.rows(), 0.0);
  for (size_t r = 0; r < features.rows(); ++r) {
    double sum = intercept_;
    for (size_t c = 0; c < features.cols(); ++c) {
      sum += features(r, c) * coefficients_[c];
    }
    out[r] = sum;
  }
  return out;
}

StatusOr<double> LinearModel::Invert1D(double y) const {
  if (coefficients_.size() != 1) {
    return Status::FailedPrecondition("Invert1D requires a 1-D model");
  }
  if (std::fabs(coefficients_[0]) < 1e-12) {
    return Status::FailedPrecondition("cannot invert a flat model");
  }
  return (y - intercept_) / coefficients_[0];
}

StatusOr<LinearModel> LinearRegressor::Fit(const Dataset& data) const {
  Vector ones(data.y.size(), 1.0);
  return FitWeighted(data, ones);
}

StatusOr<LinearModel> LinearRegressor::FitWeighted(const Dataset& data,
                                                   const Vector& weights) const {
  KEA_RETURN_IF_ERROR(ValidateDataset(data));
  if (weights.size() != data.y.size()) {
    return Status::InvalidArgument("weight count mismatch");
  }
  for (double w : weights) {
    if (w < 0.0) return Status::InvalidArgument("negative observation weight");
  }

  Matrix design = WithIntercept(data.x);
  // Scale rows by sqrt(w): (W^1/2 X)^T (W^1/2 X) beta = (W^1/2 X)^T W^1/2 y.
  Vector scaled_y(data.y.size());
  for (size_t r = 0; r < design.rows(); ++r) {
    double s = std::sqrt(weights[r]);
    for (size_t c = 0; c < design.cols(); ++c) design(r, c) *= s;
    scaled_y[r] = data.y[r] * s;
  }

  Matrix gram = design.Gram();
  if (l2_ > 0.0) {
    // Regularize coefficients only; the intercept (index 0) stays free.
    for (size_t i = 1; i < gram.rows(); ++i) gram(i, i) += l2_;
  }
  KEA_ASSIGN_OR_RETURN(Vector rhs, design.TransposedMultiply(scaled_y));

  auto chol = SolveCholesky(gram, rhs);
  if (chol.ok()) return ModelFromSolution(chol.value());
  // Fall back to pivoted Gaussian elimination for semi-definite cases.
  KEA_ASSIGN_OR_RETURN(Vector beta, SolveLinearSystem(gram, rhs));
  return ModelFromSolution(beta);
}

StatusOr<LinearModel> HuberRegressor::Fit(const Dataset& data) const {
  KEA_RETURN_IF_ERROR(ValidateDataset(data));
  LinearRegressor inner(options_.l2);

  KEA_ASSIGN_OR_RETURN(LinearModel model, inner.Fit(data));
  Vector weights(data.y.size(), 1.0);

  for (int iter = 0; iter < options_.max_iterations; ++iter) {
    // Residuals of the current model.
    Vector residuals(data.y.size());
    for (size_t r = 0; r < data.y.size(); ++r) {
      Vector features(data.x.cols());
      for (size_t c = 0; c < data.x.cols(); ++c) features[c] = data.x(r, c);
      residuals[r] = data.y[r] - model.Predict(features);
    }
    // Robust scale: MAD / 0.6745 (consistent with sigma under normality).
    double scale = MedianAbs(residuals) / 0.6745;
    if (scale < 1e-12) scale = 1e-12;

    double max_weight_change = 0.0;
    for (size_t r = 0; r < residuals.size(); ++r) {
      double z = std::fabs(residuals[r]) / scale;
      double w = z <= options_.delta ? 1.0 : options_.delta / z;
      max_weight_change = std::max(max_weight_change, std::fabs(w - weights[r]));
      weights[r] = w;
    }
    KEA_ASSIGN_OR_RETURN(model, inner.FitWeighted(data, weights));
    if (max_weight_change < options_.tolerance) break;
  }
  return model;
}

StatusOr<RegressionMetrics> Evaluate(const LinearModel& model, const Dataset& data) {
  KEA_RETURN_IF_ERROR(ValidateDataset(data));
  KEA_ASSIGN_OR_RETURN(Vector pred, model.PredictBatch(data.x));

  double mean_y = 0.0;
  for (double v : data.y) mean_y += v;
  mean_y /= static_cast<double>(data.y.size());

  double ss_res = 0.0, ss_tot = 0.0, abs_sum = 0.0;
  for (size_t i = 0; i < data.y.size(); ++i) {
    double e = data.y[i] - pred[i];
    ss_res += e * e;
    abs_sum += std::fabs(e);
    double d = data.y[i] - mean_y;
    ss_tot += d * d;
  }
  RegressionMetrics m;
  m.rmse = std::sqrt(ss_res / static_cast<double>(data.y.size()));
  m.mae = abs_sum / static_cast<double>(data.y.size());
  m.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : (ss_res == 0.0 ? 1.0 : 0.0);
  return m;
}

Dataset MakeDataset1D(const Vector& x, const Vector& y) {
  assert(x.size() == y.size());
  Dataset d;
  d.x = Matrix(x.size(), 1);
  for (size_t i = 0; i < x.size(); ++i) d.x(i, 0) = x[i];
  d.y = y;
  return d;
}

}  // namespace kea::ml
