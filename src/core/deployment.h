#ifndef KEA_CORE_DEPLOYMENT_H_
#define KEA_CORE_DEPLOYMENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/deployment_ledger.h"
#include "sim/cluster.h"

namespace kea::core {

/// A per-group configuration recommendation produced by an optimizer.
struct GroupRecommendation {
  sim::MachineGroupKey group;
  int current_max_containers = 0;
  int recommended_max_containers = 0;
};

/// One change the deployment module actually applied.
struct AppliedChange {
  sim::MachineGroupKey group;
  int old_max_containers = 0;
  int new_max_containers = 0;
  bool clamped = false;  ///< True when the recommendation exceeded max_step.
};

/// The Deployment Module: rolls recommendations out to the full cluster with
/// the production guardrails of Section 5.2.2 — "we only modify the
/// configuration by a small margin, i.e. decrease or increase the maximum
/// running containers for each group of machines by one" (max_step below).
class DeploymentModule {
 public:
  struct Options {
    /// Largest per-round change in max_containers per group.
    int max_step = 1;
    /// Floor for any group's max_containers.
    int min_containers = 1;
  };

  DeploymentModule() : options_(Options()) {}
  explicit DeploymentModule(const Options& options) : options_(options) {}

  /// Clamps each recommendation to +-max_step of its current value and
  /// applies it to the cluster. No-op recommendations (delta 0 after
  /// clamping) are skipped. Returns the changes applied, which are also kept
  /// in history().
  StatusOr<std::vector<AppliedChange>> ApplyConservatively(
      const std::vector<GroupRecommendation>& recommendations,
      sim::Cluster* cluster);

  /// All changes applied through this module, in order.
  const std::vector<AppliedChange>& history() const { return history_; }

  /// CSV dump of history() — one row per applied change, in order. Columns:
  ///   sc,sku,old_max_containers,new_max_containers,clamped
  std::string HistoryCsv() const;

  /// Attaches a write-ahead ledger: each ApplyConservatively batch and each
  /// RollbackLast is journaled (keys "module/apply/<n>", "module/rollback/<n>")
  /// *before* the cluster is mutated. `ledger` must outlive the module; null
  /// detaches. The per-operation counters feeding the keys survive
  /// checkpoint/restore via SerializeState().
  void AttachLedger(DeploymentLedger* ledger) { ledger_ = ledger; }

  /// Restores the configuration prior to the last ApplyConservatively call
  /// (the rollback path when flighting invalidates a model). Changes are
  /// undone in reverse application order. Semantics are explicit because the
  /// guardrailed rollout leans on them:
  ///   - OK no-op when the last apply produced no changes (all
  ///     recommendations clamped to no-ops) — there is nothing to restore,
  ///     and the fleet is already in the pre-apply state;
  ///   - idempotent FailedPrecondition on a second rollback (or before any
  ///     apply): the call never mutates the cluster, so retrying it is safe
  ///     and returns the same error.
  Status RollbackLast(sim::Cluster* cluster);

  /// True while the last ApplyConservatively has not been rolled back.
  bool has_pending_batch() const { return has_last_batch_; }

  /// Bit-exact checkpoint of mutable state: history, the pending batch, and
  /// the ledger-key counters. Options and the ledger binding are
  /// construction-time and not included.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  Options options_;
  DeploymentLedger* ledger_ = nullptr;
  std::vector<AppliedChange> history_;
  std::vector<AppliedChange> last_batch_;
  bool has_last_batch_ = false;  ///< Apply seen and not yet rolled back.
  int64_t apply_count_ = 0;      ///< ApplyConservatively calls (ledger keys).
  int64_t rollback_count_ = 0;   ///< Effective RollbackLast calls (ledger keys).
};

}  // namespace kea::core

#endif  // KEA_CORE_DEPLOYMENT_H_
