#include "core/whatif.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "common/thread_pool.h"
#include "ml/model_selection.h"
#include "ml/stats.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace kea::core {

namespace {

// Deterministic: logical fit events, identical at any thread count.
obs::Counter* FitsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("whatif.fits");
  return c;
}
obs::Counter* GroupsFittedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("whatif.groups_fitted");
  return c;
}
obs::Counter* GroupsSkippedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("whatif.groups_skipped");
  return c;
}

StatusOr<ml::LinearModel> FitPairs(const std::vector<double>& x,
                                   const std::vector<double>& y,
                                   RegressorKind kind) {
  ml::Dataset data = ml::MakeDataset1D(x, y);
  if (kind == RegressorKind::kAuto) {
    KEA_ASSIGN_OR_RETURN(ml::RegressorFamily family, ml::SelectRegressor(data));
    return ml::FitFamily(data, family);
  }
  if (kind == RegressorKind::kHuber) {
    ml::HuberRegressor regressor;
    return regressor.Fit(data);
  }
  ml::LinearRegressor regressor;
  return regressor.Fit(data);
}

/// Fits one machine group's g/h/f models. Returns an empty optional when the
/// group lacks enough busy observations (skipped, not an error).
StatusOr<std::optional<GroupModels>> FitGroup(
    const sim::MachineGroupKey& key,
    const std::vector<telemetry::MachineHourRecord>& records,
    const WhatIfEngine::Options& options) {
  std::vector<double> containers, util, tasks, latency;
  std::unordered_set<int> machines;
  containers.reserve(records.size());
  util.reserve(records.size());
  tasks.reserve(records.size());
  latency.reserve(records.size());
  for (const auto& r : records) {
    // Idle machine-hours carry no task-latency signal; skip them, matching
    // the production pipeline's data preparation.
    if (r.tasks_finished <= 0.0) continue;
    machines.insert(r.machine_id);
    containers.push_back(r.avg_running_containers);
    util.push_back(r.cpu_utilization);
    tasks.push_back(r.tasks_finished);
    latency.push_back(r.avg_task_latency_s);
  }
  if (containers.size() < options.min_observations) {
    return std::optional<GroupModels>();
  }

  GroupModels gm;
  gm.group = key;
  gm.num_machines = static_cast<int>(machines.size());

  KEA_ASSIGN_OR_RETURN(gm.g, FitPairs(containers, util, options.regressor));
  KEA_ASSIGN_OR_RETURN(gm.h, FitPairs(util, tasks, options.regressor));
  KEA_ASSIGN_OR_RETURN(gm.f, FitPairs(util, latency, options.regressor));

  KEA_ASSIGN_OR_RETURN(gm.g_fit, ml::Evaluate(gm.g, ml::MakeDataset1D(containers, util)));
  KEA_ASSIGN_OR_RETURN(gm.h_fit, ml::Evaluate(gm.h, ml::MakeDataset1D(util, tasks)));
  KEA_ASSIGN_OR_RETURN(gm.f_fit, ml::Evaluate(gm.f, ml::MakeDataset1D(util, latency)));

  // Median operating point (the large dot of Figure 9).
  KEA_ASSIGN_OR_RETURN(gm.current_containers, ml::Quantile(containers, 0.5));
  KEA_ASSIGN_OR_RETURN(gm.current_utilization, ml::Quantile(util, 0.5));
  KEA_ASSIGN_OR_RETURN(gm.current_tasks_per_hour, ml::Quantile(tasks, 0.5));
  KEA_ASSIGN_OR_RETURN(gm.current_latency_s, ml::Quantile(latency, 0.5));

  return std::optional<GroupModels>(std::move(gm));
}

}  // namespace

StatusOr<WhatIfEngine> WhatIfEngine::Fit(const telemetry::TelemetryStore& store,
                                         const telemetry::RecordFilter& filter,
                                         const Options& options) {
  auto grouped = store.GroupByKey(filter);
  if (grouped.empty()) {
    return Status::FailedPrecondition("no telemetry to fit the What-if Engine");
  }
  KEA_TRACE_SPAN("whatif.fit",
                 {{"groups", std::to_string(grouped.size())},
                  {"records", std::to_string(store.size())}});
  KEA_PHASE("whatif.fit");
  FitsCounter()->Increment();

  // Groups are independent (one g/h/f triple per SC-SKU combination), so the
  // fitting loop fans out over the pool. Results land in per-group slots and
  // are assembled below in key order, making the output identical at any
  // thread count.
  std::vector<const std::pair<const sim::MachineGroupKey,
                              std::vector<telemetry::MachineHourRecord>>*>
      groups;
  groups.reserve(grouped.size());
  for (const auto& entry : grouped) {
    if (entry.second.size() >= options.min_observations) groups.push_back(&entry);
  }

  std::vector<std::optional<GroupModels>> fitted(groups.size());
  std::vector<Status> failures(groups.size(), Status::OK());
  common::ThreadPool::Run(options.num_threads, groups.size(), [&](size_t i) {
    KEA_TRACE_SPAN("whatif.fit_group",
                   {{"group", sim::GroupLabel(groups[i]->first)},
                    {"records", std::to_string(groups[i]->second.size())}});
    StatusOr<std::optional<GroupModels>> result =
        FitGroup(groups[i]->first, groups[i]->second, options);
    if (result.ok()) {
      fitted[i] = std::move(result).value();
    } else {
      failures[i] = result.status();
    }
  });
  for (const Status& s : failures) KEA_RETURN_IF_ERROR(s);

  // Counted during single-threaded assembly (not in the workers) so the
  // increments land in a deterministic order at every thread count.
  std::map<sim::MachineGroupKey, GroupModels> models;
  for (size_t i = 0; i < groups.size(); ++i) {
    if (fitted[i].has_value()) {
      GroupsFittedCounter()->Increment();
      models[groups[i]->first] = std::move(*fitted[i]);
    } else {
      GroupsSkippedCounter()->Increment();
    }
  }
  if (models.empty()) {
    return Status::FailedPrecondition(
        "no machine group has enough observations for the What-if Engine");
  }
  return WhatIfEngine(std::move(models));
}

StatusOr<const GroupModels*> WhatIfEngine::Find(sim::MachineGroupKey group) const {
  auto it = models_.find(group);
  if (it == models_.end()) {
    return Status::NotFound("no calibrated models for group " + sim::GroupLabel(group));
  }
  return &it->second;
}

StatusOr<double> WhatIfEngine::PredictUtilization(sim::MachineGroupKey group,
                                                  double containers) const {
  KEA_ASSIGN_OR_RETURN(const GroupModels* m, Find(group));
  return m->g.Predict1D(containers);
}

StatusOr<double> WhatIfEngine::PredictTasksPerHour(sim::MachineGroupKey group,
                                                   double containers) const {
  KEA_ASSIGN_OR_RETURN(const GroupModels* m, Find(group));
  return m->h.Predict1D(m->g.Predict1D(containers));
}

StatusOr<double> WhatIfEngine::PredictTaskLatency(sim::MachineGroupKey group,
                                                  double containers) const {
  KEA_ASSIGN_OR_RETURN(const GroupModels* m, Find(group));
  return m->f.Predict1D(m->g.Predict1D(containers));
}

StatusOr<double> WhatIfEngine::PredictClusterLatency(
    const std::map<sim::MachineGroupKey, double>& containers_per_machine) const {
  double weighted = 0.0, weight = 0.0;
  for (const auto& [key, m_k] : containers_per_machine) {
    KEA_ASSIGN_OR_RETURN(const GroupModels* gm, Find(key));
    double util = gm->g.Predict1D(m_k);
    double tasks = gm->h.Predict1D(util);
    double latency = gm->f.Predict1D(util);
    double n_k = static_cast<double>(gm->num_machines);
    weighted += latency * tasks * n_k;
    weight += tasks * n_k;
  }
  if (weight <= 0.0) {
    return Status::FailedPrecondition("predicted zero task throughput");
  }
  return weighted / weight;
}

StatusOr<double> WhatIfEngine::CurrentClusterLatency() const {
  std::map<sim::MachineGroupKey, double> current;
  for (const auto& [key, gm] : models_) current[key] = gm.current_containers;
  return PredictClusterLatency(current);
}

namespace {

/// Deterministic per-group sampling seed: a pure function of the group key
/// and the candidate's exact bits, so uncertainty estimates never depend on
/// evaluation order, thread count, or wall clock.
uint64_t SampleSeed(const sim::MachineGroupKey& key, double containers) {
  uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffu;
      h *= 0x100000001b3ULL;
    }
  };
  mix(static_cast<uint64_t>(static_cast<int64_t>(key.sc)));
  mix(static_cast<uint64_t>(static_cast<int64_t>(key.sku)));
  mix(std::bit_cast<uint64_t>(containers));
  return h;
}

double Stddev(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  double mean = 0.0;
  for (double x : xs) mean += x;
  mean /= static_cast<double>(xs.size());
  double ss = 0.0;
  for (double x : xs) ss += (x - mean) * (x - mean);
  return std::sqrt(ss / static_cast<double>(xs.size() - 1));
}

}  // namespace

StatusOr<WhatIfResult> WhatIfEngine::EvaluateWhatIf(
    const std::map<sim::MachineGroupKey, double>& containers_per_machine,
    int uncertainty_samples) const {
  WhatIfResult result;
  double weighted = 0.0, weight = 0.0;
  const size_t samples =
      uncertainty_samples > 0 ? static_cast<size_t>(uncertainty_samples) : 0;
  // Per-sample cluster accumulators, aggregated across groups.
  std::vector<double> mc_weighted(samples, 0.0), mc_weight(samples, 0.0);
  std::vector<double> mc_latency(samples);
  for (const auto& [key, m_k] : containers_per_machine) {
    KEA_ASSIGN_OR_RETURN(const GroupModels* gm, Find(key));
    GroupWhatIf gw;
    gw.containers = m_k;
    gw.utilization = gm->g.Predict1D(m_k);
    gw.tasks_per_hour = gm->h.Predict1D(gw.utilization);
    gw.latency_s = gm->f.Predict1D(gw.utilization);
    double n_k = static_cast<double>(gm->num_machines);
    weighted += gw.latency_s * gw.tasks_per_hour * n_k;
    weight += gw.tasks_per_hour * n_k;

    if (samples > 0) {
      // Propagate each model's residual noise through the g -> h/f chain.
      // Throughput is floored at a sliver so a noisy draw cannot flip the
      // task-weighting negative.
      Rng rng(SampleSeed(key, m_k));
      for (size_t s = 0; s < samples; ++s) {
        const double util = rng.Gaussian(gw.utilization, gm->g_fit.rmse);
        const double tasks = std::max(
            rng.Gaussian(gm->h.Predict1D(util), gm->h_fit.rmse), 1e-9);
        const double latency =
            rng.Gaussian(gm->f.Predict1D(util), gm->f_fit.rmse);
        mc_latency[s] = latency;
        mc_weighted[s] += latency * tasks * n_k;
        mc_weight[s] += tasks * n_k;
      }
      gw.latency_stderr_s = Stddev(mc_latency);
    }
    result.groups[key] = gw;
  }
  if (weight <= 0.0) {
    return Status::FailedPrecondition("predicted zero task throughput");
  }
  result.cluster_latency_s = weighted / weight;
  if (samples > 0) {
    for (size_t s = 0; s < samples; ++s) {
      mc_latency[s] = mc_weighted[s] / mc_weight[s];
    }
    result.cluster_latency_stderr_s = Stddev(mc_latency);
  }
  return result;
}

namespace {

// FNV-1a over the value's little-endian bytes; doubles hash their exact
// IEEE-754 bit pattern so the digest is as bit-exact as the models.
inline void HashU64(uint64_t v, uint64_t* h) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffu;
    *h *= 0x100000001b3ULL;
  }
}
inline void HashDouble(double v, uint64_t* h) {
  HashU64(std::bit_cast<uint64_t>(v), h);
}
inline void HashModel(const ml::LinearModel& m, uint64_t* h) {
  HashDouble(m.intercept(), h);
  HashU64(m.coefficients().size(), h);
  for (double c : m.coefficients()) HashDouble(c, h);
}

}  // namespace

uint64_t WhatIfEngine::ModelHash() const {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis.
  HashU64(models_.size(), &h);
  for (const auto& [key, gm] : models_) {
    HashU64(static_cast<uint64_t>(static_cast<int64_t>(key.sc)), &h);
    HashU64(static_cast<uint64_t>(static_cast<int64_t>(key.sku)), &h);
    HashU64(static_cast<uint64_t>(gm.num_machines), &h);
    HashModel(gm.g, &h);
    HashModel(gm.h, &h);
    HashModel(gm.f, &h);
    HashDouble(gm.current_containers, &h);
    HashDouble(gm.current_utilization, &h);
    HashDouble(gm.current_tasks_per_hour, &h);
    HashDouble(gm.current_latency_s, &h);
  }
  return h;
}

}  // namespace kea::core
