#ifndef KEA_CORE_GUARDRAILED_ROLLOUT_H_
#define KEA_CORE_GUARDRAILED_ROLLOUT_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/deployment.h"
#include "core/deployment_ledger.h"
#include "sim/cluster.h"
#include "telemetry/store.h"

namespace kea::core {

/// Regression limits evaluated between rollout waves. Each observed guardrail
/// metric is compared against the same machines' pre-rollout baseline; any
/// violation trips the rollout and triggers automatic rollback of every
/// applied wave.
struct GuardrailThresholds {
  /// Observed / baseline cluster-average task latency (Eq. 9's W-bar) must
  /// stay at or below this ratio.
  double max_latency_ratio = 1.05;
  /// Observed / baseline p99 queue latency must stay at or below this ratio.
  /// A baseline p99 of ~0 (empty queues) only trips when the observed p99
  /// exceeds queue_p99_floor_ms in absolute terms.
  double max_queue_p99_ratio = 1.5;
  double queue_p99_floor_ms = 10.0;
  /// Observed mean CPU utilization must stay at or below this cap (the
  /// "machines off the cliff" guard of Eq. 10).
  double max_utilization = 0.99;
  /// SLO guardrail, disabled by default (0.0). When set, each observed
  /// machine-hour whose mean task latency exceeds this target burns error
  /// budget; the wave trips when the burn rate — bad fraction divided by
  /// the budget (1 - slo_objective) — exceeds max_slo_burn. This is the
  /// same burn-rate semantic obs::SloTracker uses in kea::serve, applied
  /// to rollout observation windows.
  double slo_target_latency_s = 0.0;
  double slo_objective = 0.99;
  double max_slo_burn = 1.0;
};

/// One guardrail evaluation: the baseline vs observed metric values and the
/// per-metric verdicts.
struct GuardrailEvaluation {
  double baseline_latency_s = 0.0;
  double observed_latency_s = 0.0;
  double baseline_queue_p99_ms = 0.0;
  double observed_queue_p99_ms = 0.0;
  double baseline_utilization = 0.0;
  double observed_utilization = 0.0;

  bool latency_ok = false;
  bool queue_ok = false;
  bool utilization_ok = false;
  /// False when the wave window had no usable telemetry at all — treated as
  /// a trip (never conclude "healthy" from silence).
  bool measurable = false;
  /// SLO guardrail verdict. slo_checked records whether the guardrail was
  /// enabled for this evaluation; slo_ok defaults true so evaluations
  /// decoded from pre-SLO ledger blobs (and runs with the guardrail off)
  /// pass unchanged.
  bool slo_checked = false;
  double observed_slo_burn = 0.0;
  bool slo_ok = true;

  bool pass() const {
    return measurable && latency_ok && queue_ok && utilization_ok && slo_ok;
  }
  std::string Describe() const;
};

/// Staged deployment with guardrails and automatic rollback — the Section
/// 5.2.2 discipline ("modify the configuration by a small margin", flighting
/// before fleet) composed into a state machine:
///
///   Canary wave (a few sub-clusters) -> observe -> guardrails
///     -> widening waves -> observe -> guardrails -> ... -> converged
///   any guardrail trip -> roll back every applied wave, newest first,
///                         restoring the exact pre-rollout per-machine config
///
/// Waves are whole sub-clusters (pilot flightings target sub-clusters in the
/// paper), selected deterministically. Per-group targets are clamped to
/// +-deploy.max_step of the group's pre-rollout configuration, exactly like
/// DeploymentModule. The rollout never touches machines outside its waves,
/// and after a rollback the fleet configuration is bit-identical to the
/// snapshot taken on entry.
class GuardrailedRollout {
 public:
  struct Options {
    /// Cumulative fraction of sub-clusters configured after each wave. Must
    /// be increasing and end at 1.0 for a full-fleet rollout.
    std::vector<double> wave_fractions = {0.05, 0.25, 1.0};
    /// Simulated/observed hours between a wave's apply and its guardrail
    /// evaluation.
    int observe_hours_per_wave = 24;
    /// Pre-rollout window used for baseline guardrail metrics.
    int baseline_hours = 24;
    GuardrailThresholds guardrails;
    DeploymentModule::Options deploy;
  };

  enum class Outcome {
    kConverged,   ///< Every wave passed; the new configuration is fleet-wide.
    kRolledBack,  ///< A guardrail tripped; pre-rollout config restored.
    kNoChange,    ///< Every recommendation clamped to a no-op; nothing applied.
  };

  struct WaveResult {
    int wave = 0;
    /// Sub-clusters configured in this wave.
    std::vector<int> sub_clusters;
    /// Machines whose max_containers actually changed.
    size_t machines_changed = 0;
    sim::HourIndex observe_begin = 0;
    sim::HourIndex observe_end = 0;
    GuardrailEvaluation eval;
    bool passed = false;
  };

  struct Report {
    Outcome outcome = Outcome::kNoChange;
    std::vector<WaveResult> waves;
    /// Index of the wave whose guardrails tripped; -1 when none did.
    int tripped_wave = -1;
    /// Machines restored during rollback (0 when no rollback happened).
    size_t machines_restored = 0;
  };

  /// Advances the world (simulate + ingest) by `hours`; the rollout calls it
  /// between apply and evaluate. Implementations must append the new
  /// telemetry to the store passed to Execute.
  using AdvanceFn = std::function<Status(int hours)>;

  explicit GuardrailedRollout(const Options& options);

  /// Runs the staged rollout. `store` is read for baseline and per-wave
  /// guardrail metrics; `start_hour` is the current simulation clock (the
  /// baseline window is [start_hour - baseline_hours, start_hour)).
  /// Guardrail trips are reported via Report::outcome, not a non-OK status;
  /// errors (bad options, failing advance) leave the cluster rolled back to
  /// its entry state before returning.
  StatusOr<Report> Execute(const std::vector<GroupRecommendation>& recommendations,
                           sim::Cluster* cluster,
                           const telemetry::TelemetryStore* store,
                           sim::HourIndex start_hour, const AdvanceFn& advance);

  /// Durability context for ExecuteJournaled. `durable_seq` is the ledger
  /// sequence the restored checkpoint covers: ledger events below it are
  /// replayed (bookkeeping only — their effects are already in the restored
  /// state), events at or above it are re-driven. `checkpoint(covered_seq)`,
  /// when set, persists the world after each journaled step; `covered_seq` is
  /// the number of ledger events whose effects the persisted state contains.
  struct JournalContext {
    DeploymentLedger* ledger = nullptr;
    uint64_t durable_seq = 0;
    int round = 0;
    std::function<Status(uint64_t covered_seq)> checkpoint;
  };

  /// Execute() with write-ahead journaling and crash-point hooks: every wave
  /// transition (started / applied / observed / guardrail verdict / rollback)
  /// is appended to the ledger *before* its effect, keyed idempotently as
  /// "r<round>/w<wave>/<step>", so a crashed round resumed from its last
  /// checkpoint re-drives pending steps exactly once and finishes
  /// bit-identical to an uninterrupted run. An injected crash (kAborted)
  /// unwinds without touching anything further — mirroring process death —
  /// while real errors roll the in-memory cluster back as Execute() does.
  StatusOr<Report> ExecuteJournaled(
      const std::vector<GroupRecommendation>& recommendations,
      sim::Cluster* cluster, const telemetry::TelemetryStore* store,
      sim::HourIndex start_hour, const AdvanceFn& advance, JournalContext* ctx);

  /// Bit-exact codec for GuardrailEvaluation (used in WAVE_VERDICT payloads).
  static std::string EncodeEvaluation(const GuardrailEvaluation& eval);
  static Status DecodeEvaluation(const std::string& blob, GuardrailEvaluation* eval);

 private:
  /// Snapshot entry: (machine id, pre-rollout max_containers).
  using MachineSnapshot = std::vector<std::pair<int, int>>;

  Status ValidateOptions() const;
  /// Applies the per-group clamped targets to `machine_ids`; returns the
  /// snapshot of prior values for the machines actually changed.
  StatusOr<MachineSnapshot> ApplyWave(
      const std::vector<int>& machine_ids,
      const std::map<sim::MachineGroupKey, int>& targets, sim::Cluster* cluster);
  /// Computes guardrail metrics over `machine_ids` in [begin, end).
  GuardrailEvaluation Evaluate(const telemetry::TelemetryStore& store,
                               const std::vector<int>& machine_ids,
                               sim::HourIndex baseline_begin,
                               sim::HourIndex baseline_end, sim::HourIndex begin,
                               sim::HourIndex end) const;
  /// Restores all snapshots, newest wave first.
  void Restore(const std::vector<MachineSnapshot>& snapshots,
               sim::Cluster* cluster, size_t* restored) const;

  /// Body of ExecuteJournaled; `snapshots` is owned by the caller so the
  /// error path can roll back whatever was applied before the failure.
  Status RunJournaled(const std::vector<GroupRecommendation>& recommendations,
                      sim::Cluster* cluster,
                      const telemetry::TelemetryStore* store,
                      sim::HourIndex start_hour, const AdvanceFn& advance,
                      JournalContext* ctx, Report* report,
                      std::vector<MachineSnapshot>* snapshots);

  Options options_;
};

}  // namespace kea::core

#endif  // KEA_CORE_GUARDRAILED_ROLLOUT_H_
