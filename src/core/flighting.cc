#include "core/flighting.h"

#include <algorithm>
#include <unordered_set>

#include "common/snapshot.h"

namespace kea::core {

std::string EncodeConfigPatch(const ConfigPatch& patch) {
  StateWriter w;
  w.PutBool(patch.max_containers.has_value());
  w.PutInt(patch.max_containers.value_or(0));
  w.PutBool(patch.power_cap_fraction.has_value());
  w.PutDouble(patch.power_cap_fraction.value_or(0.0));
  w.PutBool(patch.feature_enabled.has_value());
  w.PutBool(patch.feature_enabled.value_or(false));
  w.PutBool(patch.software_config.has_value());
  w.PutInt(patch.software_config.value_or(0));
  return w.Release();
}

Status DecodeConfigPatch(const std::string& blob, ConfigPatch* patch) {
  StateReader r(blob);
  bool has = false;
  int i = 0;
  double d = 0.0;
  bool b = false;
  *patch = ConfigPatch{};
  KEA_RETURN_IF_ERROR(r.GetBool(&has));
  KEA_RETURN_IF_ERROR(r.GetInt(&i));
  if (has) patch->max_containers = i;
  KEA_RETURN_IF_ERROR(r.GetBool(&has));
  KEA_RETURN_IF_ERROR(r.GetDouble(&d));
  if (has) patch->power_cap_fraction = d;
  KEA_RETURN_IF_ERROR(r.GetBool(&has));
  KEA_RETURN_IF_ERROR(r.GetBool(&b));
  if (has) patch->feature_enabled = b;
  KEA_RETURN_IF_ERROR(r.GetBool(&has));
  KEA_RETURN_IF_ERROR(r.GetInt(&i));
  if (has) patch->software_config = i;
  return Status::OK();
}

Status ApplyPatch(const ConfigPatch& patch, const std::vector<int>& machine_ids,
                  sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  auto& machines = cluster->mutable_machines();
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
  }
  if (patch.max_containers) {
    if (*patch.max_containers <= 0) {
      return Status::InvalidArgument("max_containers must be positive");
    }
    for (int id : machine_ids) {
      machines[static_cast<size_t>(id)].max_containers = *patch.max_containers;
    }
  }
  if (patch.power_cap_fraction) {
    KEA_RETURN_IF_ERROR(cluster->SetPowerCap(machine_ids, *patch.power_cap_fraction));
  }
  if (patch.feature_enabled) {
    KEA_RETURN_IF_ERROR(cluster->SetFeature(machine_ids, *patch.feature_enabled));
  }
  if (patch.software_config) {
    KEA_RETURN_IF_ERROR(cluster->SetSoftwareConfig(machine_ids, *patch.software_config));
  }
  return Status::OK();
}

StatusOr<FlightId> FlightingService::CreateFlight(FlightSpec spec) {
  if (spec.machine_ids.empty()) {
    return Status::InvalidArgument("flight needs target machines");
  }
  if (spec.patch.empty()) {
    return Status::InvalidArgument("flight has an empty configuration patch");
  }
  if (spec.end_hour <= spec.start_hour) {
    return Status::InvalidArgument("flight window must have positive length");
  }
  // A machine may carry at most one flight at a time: two patches racing on
  // the same machine in overlapping windows would make both arms' telemetry
  // unattributable (and End() would restore a snapshot taken mid-flight of
  // the other). Registration is rejected, not silently allowed.
  std::unordered_set<int> requested(spec.machine_ids.begin(),
                                    spec.machine_ids.end());
  for (size_t other = 0; other < specs_.size(); ++other) {
    const FlightSpec& existing = specs_[other];
    if (spec.start_hour >= existing.end_hour ||
        existing.start_hour >= spec.end_hour) {
      continue;  // Disjoint windows never conflict.
    }
    for (int mid : existing.machine_ids) {
      if (requested.count(mid) > 0) {
        return Status::FailedPrecondition(
            "machine " + std::to_string(mid) + " is already in flight '" +
            existing.name + "' (" + std::to_string(existing.start_hour) + "-" +
            std::to_string(existing.end_hour) + ") overlapping hours " +
            std::to_string(spec.start_hour) + "-" +
            std::to_string(spec.end_hour));
      }
    }
  }
  FlightId id = static_cast<FlightId>(specs_.size());
  specs_.push_back(std::move(spec));
  snapshots_[id] = Snapshot{};
  return id;
}

Status FlightingService::Begin(FlightId id, sim::Cluster* cluster) {
  if (id < 0 || static_cast<size_t>(id) >= specs_.size()) {
    return Status::NotFound("unknown flight id");
  }
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  Snapshot& snap = snapshots_[id];
  if (snap.active) return Status::FailedPrecondition("flight already active");

  const FlightSpec& spec = specs_[static_cast<size_t>(id)];
  const auto& machines = cluster->machines();
  snap.machines.clear();
  for (int mid : spec.machine_ids) {
    if (mid < 0 || static_cast<size_t>(mid) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(mid));
    }
    snap.machines.push_back(machines[static_cast<size_t>(mid)]);
  }
  KEA_RETURN_IF_ERROR(ApplyPatch(spec.patch, spec.machine_ids, cluster));
  snap.active = true;
  return Status::OK();
}

Status FlightingService::End(FlightId id, sim::Cluster* cluster) {
  if (id < 0 || static_cast<size_t>(id) >= specs_.size()) {
    return Status::NotFound("unknown flight id");
  }
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  Snapshot& snap = snapshots_[id];
  if (!snap.active) return Status::FailedPrecondition("flight is not active");

  auto& machines = cluster->mutable_machines();
  bool sc_changed = false;
  for (const sim::Machine& prior : snap.machines) {
    sim::Machine& current = machines[static_cast<size_t>(prior.id)];
    if (current.sc != prior.sc) sc_changed = true;
    current = prior;
  }
  if (sc_changed) {
    // Restore group indexes after SC reassignment.
    std::vector<int> ids;
    ids.reserve(snap.machines.size());
    for (const sim::Machine& m : snap.machines) ids.push_back(m.id);
    // SetSoftwareConfig rebuilds groups; reapply each machine's (restored) sc.
    for (const sim::Machine& m : snap.machines) {
      KEA_RETURN_IF_ERROR(cluster->SetSoftwareConfig({m.id}, m.sc));
    }
  }
  snap.active = false;
  snap.machines.clear();
  return Status::OK();
}

StatusOr<bool> FlightingService::IsActive(FlightId id) const {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return Status::NotFound("unknown flight id");
  return it->second.active;
}

}  // namespace kea::core
