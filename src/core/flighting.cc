#include "core/flighting.h"

namespace kea::core {

Status ApplyPatch(const ConfigPatch& patch, const std::vector<int>& machine_ids,
                  sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  auto& machines = cluster->mutable_machines();
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
  }
  if (patch.max_containers) {
    if (*patch.max_containers <= 0) {
      return Status::InvalidArgument("max_containers must be positive");
    }
    for (int id : machine_ids) {
      machines[static_cast<size_t>(id)].max_containers = *patch.max_containers;
    }
  }
  if (patch.power_cap_fraction) {
    KEA_RETURN_IF_ERROR(cluster->SetPowerCap(machine_ids, *patch.power_cap_fraction));
  }
  if (patch.feature_enabled) {
    KEA_RETURN_IF_ERROR(cluster->SetFeature(machine_ids, *patch.feature_enabled));
  }
  if (patch.software_config) {
    KEA_RETURN_IF_ERROR(cluster->SetSoftwareConfig(machine_ids, *patch.software_config));
  }
  return Status::OK();
}

StatusOr<FlightId> FlightingService::CreateFlight(FlightSpec spec) {
  if (spec.machine_ids.empty()) {
    return Status::InvalidArgument("flight needs target machines");
  }
  if (spec.patch.empty()) {
    return Status::InvalidArgument("flight has an empty configuration patch");
  }
  if (spec.end_hour <= spec.start_hour) {
    return Status::InvalidArgument("flight window must have positive length");
  }
  FlightId id = static_cast<FlightId>(specs_.size());
  specs_.push_back(std::move(spec));
  snapshots_[id] = Snapshot{};
  return id;
}

Status FlightingService::Begin(FlightId id, sim::Cluster* cluster) {
  if (id < 0 || static_cast<size_t>(id) >= specs_.size()) {
    return Status::NotFound("unknown flight id");
  }
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  Snapshot& snap = snapshots_[id];
  if (snap.active) return Status::FailedPrecondition("flight already active");

  const FlightSpec& spec = specs_[static_cast<size_t>(id)];
  const auto& machines = cluster->machines();
  snap.machines.clear();
  for (int mid : spec.machine_ids) {
    if (mid < 0 || static_cast<size_t>(mid) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(mid));
    }
    snap.machines.push_back(machines[static_cast<size_t>(mid)]);
  }
  KEA_RETURN_IF_ERROR(ApplyPatch(spec.patch, spec.machine_ids, cluster));
  snap.active = true;
  return Status::OK();
}

Status FlightingService::End(FlightId id, sim::Cluster* cluster) {
  if (id < 0 || static_cast<size_t>(id) >= specs_.size()) {
    return Status::NotFound("unknown flight id");
  }
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  Snapshot& snap = snapshots_[id];
  if (!snap.active) return Status::FailedPrecondition("flight is not active");

  auto& machines = cluster->mutable_machines();
  bool sc_changed = false;
  for (const sim::Machine& prior : snap.machines) {
    sim::Machine& current = machines[static_cast<size_t>(prior.id)];
    if (current.sc != prior.sc) sc_changed = true;
    current = prior;
  }
  if (sc_changed) {
    // Restore group indexes after SC reassignment.
    std::vector<int> ids;
    ids.reserve(snap.machines.size());
    for (const sim::Machine& m : snap.machines) ids.push_back(m.id);
    // SetSoftwareConfig rebuilds groups; reapply each machine's (restored) sc.
    for (const sim::Machine& m : snap.machines) {
      KEA_RETURN_IF_ERROR(cluster->SetSoftwareConfig({m.id}, m.sc));
    }
  }
  snap.active = false;
  snap.machines.clear();
  return Status::OK();
}

StatusOr<bool> FlightingService::IsActive(FlightId id) const {
  auto it = snapshots_.find(id);
  if (it == snapshots_.end()) return Status::NotFound("unknown flight id");
  return it->second.active;
}

}  // namespace kea::core
