#ifndef KEA_CORE_FLIGHTING_H_
#define KEA_CORE_FLIGHTING_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/cluster.h"

namespace kea::core {

/// Configuration payload of a flight: only the set fields are changed on the
/// target machines; everything else is left untouched.
struct ConfigPatch {
  std::optional<int> max_containers;
  std::optional<double> power_cap_fraction;
  std::optional<bool> feature_enabled;
  std::optional<sim::ScId> software_config;

  bool empty() const {
    return !max_containers && !power_cap_fraction && !feature_enabled &&
           !software_config;
  }
};

/// A flight: a configuration patch applied to named machines for a time
/// window. Mirrors the production flighting tool, where "users can specify
/// the machine names and the starting/ending time of each flighting"
/// (Section 4.1).
struct FlightSpec {
  std::string name;
  std::vector<int> machine_ids;
  sim::HourIndex start_hour = 0;
  sim::HourIndex end_hour = 0;
  ConfigPatch patch;
};

using FlightId = int;

/// Deploys configuration changes to machine subsets as a pre-deployment
/// safety check, and restores the previous configuration when the flight
/// ends. The per-machine prior state is snapshotted at Begin() so overlapping
/// edits cannot corrupt the fleet configuration.
class FlightingService {
 public:
  /// Registers a flight. Returns InvalidArgument for an empty patch, empty
  /// machine list, or a non-positive window; FailedPrecondition when any
  /// target machine already belongs to a registered flight whose window
  /// overlaps this one — a machine is never in two arms at once.
  StatusOr<FlightId> CreateFlight(FlightSpec spec);

  /// Applies the flight's patch to the cluster, snapshotting prior values.
  /// FailedPrecondition if already active; OutOfRange on bad machine ids.
  Status Begin(FlightId id, sim::Cluster* cluster);

  /// Reverts the patch using the snapshot. FailedPrecondition if not active.
  Status End(FlightId id, sim::Cluster* cluster);

  /// True while Begin() has been called without a matching End().
  StatusOr<bool> IsActive(FlightId id) const;

  const std::vector<FlightSpec>& flights() const { return specs_; }

 private:
  struct Snapshot {
    std::vector<sim::Machine> machines;  ///< Prior state of target machines.
    bool active = false;
  };

  std::vector<FlightSpec> specs_;
  std::map<FlightId, Snapshot> snapshots_;
};

/// Applies a patch to a machine set directly (shared by flighting and the
/// deployment module).
Status ApplyPatch(const ConfigPatch& patch, const std::vector<int>& machine_ids,
                  sim::Cluster* cluster);

/// Bit-exact codec for ConfigPatch (FLIGHT_STARTED ledger payloads).
std::string EncodeConfigPatch(const ConfigPatch& patch);
Status DecodeConfigPatch(const std::string& blob, ConfigPatch* patch);

}  // namespace kea::core

#endif  // KEA_CORE_FLIGHTING_H_
