#include "core/deployment.h"

#include <algorithm>

namespace kea::core {

StatusOr<std::vector<AppliedChange>> DeploymentModule::ApplyConservatively(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (recommendations.empty()) {
    return Status::InvalidArgument("no recommendations to deploy");
  }

  std::vector<AppliedChange> applied;
  for (const GroupRecommendation& rec : recommendations) {
    int delta = rec.recommended_max_containers - rec.current_max_containers;
    int clamped_delta = std::clamp(delta, -options_.max_step, options_.max_step);
    int target = std::max(rec.current_max_containers + clamped_delta,
                          options_.min_containers);
    if (target == rec.current_max_containers) continue;

    KEA_RETURN_IF_ERROR(cluster->SetGroupMaxContainers(rec.group, target));

    AppliedChange change;
    change.group = rec.group;
    change.old_max_containers = rec.current_max_containers;
    change.new_max_containers = target;
    change.clamped = clamped_delta != delta;
    applied.push_back(change);
  }
  last_batch_ = applied;
  history_.insert(history_.end(), applied.begin(), applied.end());
  return applied;
}

Status DeploymentModule::RollbackLast(sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (last_batch_.empty()) {
    return Status::FailedPrecondition("nothing to roll back");
  }
  for (const AppliedChange& change : last_batch_) {
    KEA_RETURN_IF_ERROR(
        cluster->SetGroupMaxContainers(change.group, change.old_max_containers));
  }
  last_batch_.clear();
  return Status::OK();
}

}  // namespace kea::core
