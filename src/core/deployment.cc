#include "core/deployment.h"

#include <algorithm>

#include "common/csv.h"
#include "common/snapshot.h"

namespace kea::core {
namespace {

std::string EncodeChangeBatch(const std::vector<AppliedChange>& batch) {
  StateWriter w;
  w.PutU64(batch.size());
  for (const AppliedChange& c : batch) {
    w.PutInt(c.group.sc);
    w.PutInt(c.group.sku);
    w.PutInt(c.old_max_containers);
    w.PutInt(c.new_max_containers);
    w.PutBool(c.clamped);
  }
  return w.Release();
}

Status DecodeChangeBatch(const std::string& blob,
                         std::vector<AppliedChange>* batch) {
  StateReader r(blob);
  uint64_t count = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  batch->clear();
  batch->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    AppliedChange c;
    KEA_RETURN_IF_ERROR(r.GetInt(&c.group.sc));
    KEA_RETURN_IF_ERROR(r.GetInt(&c.group.sku));
    KEA_RETURN_IF_ERROR(r.GetInt(&c.old_max_containers));
    KEA_RETURN_IF_ERROR(r.GetInt(&c.new_max_containers));
    KEA_RETURN_IF_ERROR(r.GetBool(&c.clamped));
    batch->push_back(c);
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::vector<AppliedChange>> DeploymentModule::ApplyConservatively(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (recommendations.empty()) {
    return Status::InvalidArgument("no recommendations to deploy");
  }

  // Decide first (pure), then journal the intent, then mutate — write-ahead
  // ordering so a crash after the ledger append can re-drive the apply.
  std::vector<AppliedChange> applied;
  for (const GroupRecommendation& rec : recommendations) {
    int delta = rec.recommended_max_containers - rec.current_max_containers;
    int clamped_delta = std::clamp(delta, -options_.max_step, options_.max_step);
    int target = std::max(rec.current_max_containers + clamped_delta,
                          options_.min_containers);
    if (target == rec.current_max_containers) continue;

    AppliedChange change;
    change.group = rec.group;
    change.old_max_containers = rec.current_max_containers;
    change.new_max_containers = target;
    change.clamped = clamped_delta != delta;
    applied.push_back(change);
  }

  if (ledger_ != nullptr) {
    const std::string key = "module/apply/" + std::to_string(apply_count_);
    KEA_RETURN_IF_ERROR(ledger_
                            ->Append(DeploymentLedger::EventType::kApply, key,
                                     EncodeChangeBatch(applied))
                            .status());
  }
  ++apply_count_;

  for (const AppliedChange& change : applied) {
    KEA_RETURN_IF_ERROR(
        cluster->SetGroupMaxContainers(change.group, change.new_max_containers));
  }
  last_batch_ = applied;
  has_last_batch_ = true;
  history_.insert(history_.end(), applied.begin(), applied.end());
  return applied;
}

Status DeploymentModule::RollbackLast(sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (!has_last_batch_) {
    // Never applied, or already rolled back: idempotent error, no mutation —
    // and no ledger record, since nothing is about to change.
    return Status::FailedPrecondition("nothing to roll back");
  }
  if (ledger_ != nullptr) {
    const std::string key = "module/rollback/" + std::to_string(rollback_count_);
    KEA_RETURN_IF_ERROR(
        ledger_
            ->Append(DeploymentLedger::EventType::kModuleRollback, key,
                     EncodeChangeBatch(last_batch_))
            .status());
  }
  ++rollback_count_;
  // Empty batch (every recommendation clamped to a no-op): the cluster is
  // already in the pre-apply state, so rolling back is an OK no-op.
  for (auto it = last_batch_.rbegin(); it != last_batch_.rend(); ++it) {
    KEA_RETURN_IF_ERROR(
        cluster->SetGroupMaxContainers(it->group, it->old_max_containers));
  }
  last_batch_.clear();
  has_last_batch_ = false;
  return Status::OK();
}

std::string DeploymentModule::HistoryCsv() const {
  CsvWriter writer;
  writer.SetHeader(
      {"sc", "sku", "old_max_containers", "new_max_containers", "clamped"});
  for (const AppliedChange& c : history_) {
    (void)writer.AppendRow({std::to_string(c.group.sc), std::to_string(c.group.sku),
                            std::to_string(c.old_max_containers),
                            std::to_string(c.new_max_containers),
                            c.clamped ? "1" : "0"});
  }
  return writer.ToString();
}

std::string DeploymentModule::SerializeState() const {
  StateWriter w;
  w.PutString(EncodeChangeBatch(history_));
  w.PutString(EncodeChangeBatch(last_batch_));
  w.PutBool(has_last_batch_);
  w.PutI64(apply_count_);
  w.PutI64(rollback_count_);
  return w.Release();
}

Status DeploymentModule::RestoreState(const std::string& blob) {
  StateReader r(blob);
  std::string history_blob, batch_blob;
  KEA_RETURN_IF_ERROR(r.GetString(&history_blob));
  KEA_RETURN_IF_ERROR(r.GetString(&batch_blob));
  std::vector<AppliedChange> history, last_batch;
  KEA_RETURN_IF_ERROR(DecodeChangeBatch(history_blob, &history));
  KEA_RETURN_IF_ERROR(DecodeChangeBatch(batch_blob, &last_batch));
  bool has_last_batch = false;
  int64_t apply_count = 0, rollback_count = 0;
  KEA_RETURN_IF_ERROR(r.GetBool(&has_last_batch));
  KEA_RETURN_IF_ERROR(r.GetI64(&apply_count));
  KEA_RETURN_IF_ERROR(r.GetI64(&rollback_count));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in deployment state blob");
  }
  history_ = std::move(history);
  last_batch_ = std::move(last_batch);
  has_last_batch_ = has_last_batch;
  apply_count_ = apply_count;
  rollback_count_ = rollback_count;
  return Status::OK();
}

}  // namespace kea::core
