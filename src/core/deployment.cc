#include "core/deployment.h"

#include <algorithm>

namespace kea::core {

StatusOr<std::vector<AppliedChange>> DeploymentModule::ApplyConservatively(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (recommendations.empty()) {
    return Status::InvalidArgument("no recommendations to deploy");
  }

  std::vector<AppliedChange> applied;
  for (const GroupRecommendation& rec : recommendations) {
    int delta = rec.recommended_max_containers - rec.current_max_containers;
    int clamped_delta = std::clamp(delta, -options_.max_step, options_.max_step);
    int target = std::max(rec.current_max_containers + clamped_delta,
                          options_.min_containers);
    if (target == rec.current_max_containers) continue;

    KEA_RETURN_IF_ERROR(cluster->SetGroupMaxContainers(rec.group, target));

    AppliedChange change;
    change.group = rec.group;
    change.old_max_containers = rec.current_max_containers;
    change.new_max_containers = target;
    change.clamped = clamped_delta != delta;
    applied.push_back(change);
  }
  last_batch_ = applied;
  has_last_batch_ = true;
  history_.insert(history_.end(), applied.begin(), applied.end());
  return applied;
}

Status DeploymentModule::RollbackLast(sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (!has_last_batch_) {
    // Never applied, or already rolled back: idempotent error, no mutation.
    return Status::FailedPrecondition("nothing to roll back");
  }
  // Empty batch (every recommendation clamped to a no-op): the cluster is
  // already in the pre-apply state, so rolling back is an OK no-op.
  for (auto it = last_batch_.rbegin(); it != last_batch_.rend(); ++it) {
    KEA_RETURN_IF_ERROR(
        cluster->SetGroupMaxContainers(it->group, it->old_max_containers));
  }
  last_batch_.clear();
  has_last_batch_ = false;
  return Status::OK();
}

}  // namespace kea::core
