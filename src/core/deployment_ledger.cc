#include "core/deployment_ledger.h"

#include "common/csv.h"
#include "common/snapshot.h"

namespace kea::core {

const char* DeploymentLedger::EventTypeToString(EventType type) {
  switch (type) {
    case EventType::kRoundStarted:
      return "ROUND_STARTED";
    case EventType::kWaveStarted:
      return "WAVE_STARTED";
    case EventType::kWaveApplied:
      return "WAVE_APPLIED";
    case EventType::kWaveObserved:
      return "WAVE_OBSERVED";
    case EventType::kWaveVerdict:
      return "WAVE_VERDICT";
    case EventType::kRollback:
      return "ROLLBACK";
    case EventType::kRoundFinished:
      return "ROUND_FINISHED";
    case EventType::kApply:
      return "APPLY";
    case EventType::kModuleRollback:
      return "MODULE_ROLLBACK";
    case EventType::kFabricStarted:
      return "FABRIC_STARTED";
    case EventType::kFlightAdmitted:
      return "FLIGHT_ADMITTED";
    case EventType::kFlightStarted:
      return "FLIGHT_STARTED";
    case EventType::kFabricAdvanced:
      return "FABRIC_ADVANCED";
    case EventType::kFlightVerdict:
      return "FLIGHT_VERDICT";
    case EventType::kFlightRollback:
      return "FLIGHT_ROLLBACK";
    case EventType::kFlightConcluded:
      return "FLIGHT_CONCLUDED";
    case EventType::kFabricFinished:
      return "FABRIC_FINISHED";
  }
  return "UNKNOWN";
}

StatusOr<std::unique_ptr<DeploymentLedger>> DeploymentLedger::Open(
    const std::string& path) {
  KEA_ASSIGN_OR_RETURN(std::unique_ptr<Journal> journal, Journal::Open(path));
  auto ledger = std::unique_ptr<DeploymentLedger>(
      new DeploymentLedger(std::move(journal)));
  for (const std::string& record : ledger->journal_->records()) {
    StateReader r(record);
    int type = 0;
    Event event;
    KEA_RETURN_IF_ERROR(r.GetInt(&type));
    if (type < 0 || type > static_cast<int>(EventType::kFabricFinished)) {
      return Status::InvalidArgument("ledger record with unknown event type " +
                                     std::to_string(type));
    }
    event.type = static_cast<EventType>(type);
    KEA_RETURN_IF_ERROR(r.GetString(&event.key));
    KEA_RETURN_IF_ERROR(r.GetString(&event.payload));
    event.seq = ledger->events_.size();
    if (!ledger->by_key_.emplace(event.key, event.seq).second) {
      return Status::InvalidArgument("ledger has duplicate key '" + event.key +
                                     "'");
    }
    ledger->events_.push_back(std::move(event));
  }
  return ledger;
}

StatusOr<const DeploymentLedger::Event*> DeploymentLedger::Append(
    EventType type, const std::string& key, const std::string& payload) {
  auto it = by_key_.find(key);
  if (it != by_key_.end()) {
    // Idempotent replay: the step was journaled by a previous incarnation.
    return &events_[it->second];
  }
  StateWriter w;
  w.PutInt(static_cast<int>(type));
  w.PutString(key);
  w.PutString(payload);
  KEA_RETURN_IF_ERROR(journal_->Append(w.Release()));
  Event event;
  event.seq = events_.size();
  event.type = type;
  event.key = key;
  event.payload = payload;
  by_key_.emplace(key, events_.size());
  events_.push_back(std::move(event));
  return &events_.back();
}

StatusOr<Journal::ScrubReport> DeploymentLedger::VerifyIntegrity() const {
  return Journal::Scrub(journal_->path(), /*repair=*/false);
}

const DeploymentLedger::Event* DeploymentLedger::Find(
    const std::string& key) const {
  auto it = by_key_.find(key);
  return it == by_key_.end() ? nullptr : &events_[it->second];
}

std::string DeploymentLedger::AppliedChangesCsv() const {
  CsvWriter writer;
  writer.SetHeader({"seq", "key", "kind", "sc", "sku", "machine_id",
                    "old_max_containers", "new_max_containers"});
  auto str = [](int64_t v) { return std::to_string(v); };
  for (const Event& event : events_) {
    if (event.type == EventType::kWaveApplied) {
      StateReader r(event.payload);
      uint64_t count = 0;
      if (!r.GetU64(&count).ok()) continue;
      for (uint64_t i = 0; i < count; ++i) {
        int machine = 0, old_max = 0, new_max = 0;
        if (!r.GetInt(&machine).ok() || !r.GetInt(&old_max).ok() ||
            !r.GetInt(&new_max).ok()) {
          break;
        }
        (void)writer.AppendRow({str(static_cast<int64_t>(event.seq)), event.key,
                                "wave_machine", "-1", "-1", str(machine),
                                str(old_max), str(new_max)});
      }
    } else if (event.type == EventType::kFlightStarted) {
      // Experiment-fabric patch application: payload is the encoded config
      // patch followed by per-machine priors (see experiment_fabric.cc).
      StateReader r(event.payload);
      std::string patch_blob;
      uint64_t count = 0;
      if (!r.GetString(&patch_blob).ok() || !r.GetU64(&count).ok()) continue;
      for (uint64_t i = 0; i < count; ++i) {
        int machine = 0, old_max = 0, new_max = 0, sc = 0;
        double power = 0.0;
        bool feature = false;
        if (!r.GetInt(&machine).ok() || !r.GetInt(&old_max).ok() ||
            !r.GetInt(&new_max).ok() || !r.GetDouble(&power).ok() ||
            !r.GetBool(&feature).ok() || !r.GetInt(&sc).ok()) {
          break;
        }
        (void)writer.AppendRow({str(static_cast<int64_t>(event.seq)), event.key,
                                "flight_machine", str(sc), "-1", str(machine),
                                str(old_max), str(new_max)});
      }
    } else if (event.type == EventType::kApply) {
      StateReader r(event.payload);
      uint64_t count = 0;
      if (!r.GetU64(&count).ok()) continue;
      for (uint64_t i = 0; i < count; ++i) {
        int sc = 0, sku = 0, old_max = 0, new_max = 0;
        bool clamped = false;
        if (!r.GetInt(&sc).ok() || !r.GetInt(&sku).ok() ||
            !r.GetInt(&old_max).ok() || !r.GetInt(&new_max).ok() ||
            !r.GetBool(&clamped).ok()) {
          break;
        }
        (void)writer.AppendRow({str(static_cast<int64_t>(event.seq)), event.key,
                                "group", str(sc), str(sku), "-1", str(old_max),
                                str(new_max)});
      }
    }
  }
  return writer.ToString();
}

}  // namespace kea::core
