#include "core/validation.h"

#include <algorithm>
#include <cmath>

#include "ml/stats.h"

namespace kea::core {

StatusOr<ValidationReport> ModelValidator::Validate(
    const WhatIfEngine& engine, const telemetry::TelemetryStore& store,
    const telemetry::RecordFilter& window) const {
  auto grouped = store.GroupByKey(window);
  if (grouped.empty()) {
    return Status::FailedPrecondition("no telemetry in the validation window");
  }

  ValidationReport report;
  report.models_valid = true;
  bool any_validated = false;

  for (const auto& [key, records] : grouped) {
    if (engine.models().find(key) == engine.models().end()) {
      report.unmodeled_groups.push_back(key);
      report.models_valid = false;
      continue;
    }
    std::vector<double> containers, util, latency;
    for (const auto& r : records) {
      if (r.tasks_finished <= 0.0) continue;
      containers.push_back(r.avg_running_containers);
      util.push_back(r.cpu_utilization);
      latency.push_back(r.avg_task_latency_s);
    }
    if (containers.size() < options_.min_observations) continue;

    GroupValidation v;
    v.group = key;
    v.observations = containers.size();
    KEA_ASSIGN_OR_RETURN(v.observed_containers, ml::Quantile(containers, 0.5));
    KEA_ASSIGN_OR_RETURN(v.observed_utilization, ml::Quantile(util, 0.5));
    KEA_ASSIGN_OR_RETURN(v.observed_latency_s, ml::Quantile(latency, 0.5));

    KEA_ASSIGN_OR_RETURN(v.predicted_utilization,
                         engine.PredictUtilization(key, v.observed_containers));
    KEA_ASSIGN_OR_RETURN(v.predicted_latency_s,
                         engine.PredictTaskLatency(key, v.observed_containers));

    v.utilization_error =
        v.observed_utilization > 1e-9
            ? std::fabs(v.predicted_utilization - v.observed_utilization) /
                  v.observed_utilization
            : 0.0;
    v.latency_error =
        v.observed_latency_s > 1e-9
            ? std::fabs(v.predicted_latency_s - v.observed_latency_s) /
                  v.observed_latency_s
            : 0.0;
    v.within_tolerance = v.utilization_error <= options_.tolerance &&
                         v.latency_error <= options_.tolerance;

    report.max_latency_error = std::max(report.max_latency_error, v.latency_error);
    report.max_utilization_error =
        std::max(report.max_utilization_error, v.utilization_error);
    if (!v.within_tolerance) report.models_valid = false;
    report.groups.push_back(v);
    any_validated = true;
  }

  if (!any_validated && report.unmodeled_groups.empty()) {
    return Status::FailedPrecondition(
        "no group had enough observations to validate");
  }
  return report;
}

}  // namespace kea::core
