#ifndef KEA_CORE_EXPERIMENT_H_
#define KEA_CORE_EXPERIMENT_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/cluster.h"

namespace kea::core {

/// Assignment of machines to the arms of an experiment.
struct ExperimentAssignment {
  std::vector<int> control;
  std::vector<int> treatment;
};

/// The *ideal* experiment setting (Section 7): control and treatment
/// interleave within the same racks — "choosing every other machine in the
/// same rack" — so both arms receive statistically identical workloads.
/// Selects machines of `sku` from up to `max_racks` racks. Returns
/// FailedPrecondition if fewer than `min_per_arm` machines land in each arm.
StatusOr<ExperimentAssignment> IdealAssignment(const sim::Cluster& cluster,
                                               sim::SkuId sku, int max_racks,
                                               int min_per_arm);

/// One window of a time-slicing experiment.
struct TimeSlice {
  sim::HourIndex start_hour = 0;
  sim::HourIndex end_hour = 0;
  bool treatment = false;  ///< Which configuration runs during the window.
};

/// The *time-slicing* setting: the same machines run the old and new
/// configuration in alternating windows. The paper warns against 24h-aligned
/// windows (day-of-week confounds); window_hours defaults to 5 for that
/// reason. Returns InvalidArgument on a degenerate horizon or window.
StatusOr<std::vector<TimeSlice>> TimeSlicingSchedule(sim::HourIndex start_hour,
                                                     sim::HourIndex end_hour,
                                                     int window_hours);

/// The *hybrid* setting: different machine groups get different
/// configurations. Machines of the given SKU are split into `num_groups`
/// groups of exactly `group_size`, balanced across racks (round-robin over a
/// rack-sorted list) so the groups have similar characteristics. Used by the
/// power-capping study (groups A-D). Returns FailedPrecondition when there
/// are not enough machines.
StatusOr<std::vector<std::vector<int>>> HybridGroups(const sim::Cluster& cluster,
                                                     sim::SkuId sku, int num_groups,
                                                     int group_size);

/// Balance diagnostics for an assignment: both arms should have nearly equal
/// size and matching rack coverage.
struct BalanceReport {
  size_t control_size = 0;
  size_t treatment_size = 0;
  /// Max over racks of | #control - #treatment | within the rack.
  int max_rack_imbalance = 0;
  bool balanced = false;
};

BalanceReport CheckBalance(const sim::Cluster& cluster,
                           const ExperimentAssignment& assignment);

}  // namespace kea::core

#endif  // KEA_CORE_EXPERIMENT_H_
