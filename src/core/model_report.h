#ifndef KEA_CORE_MODEL_REPORT_H_
#define KEA_CORE_MODEL_REPORT_H_

#include <string>

#include "common/status.h"
#include "core/whatif.h"

namespace kea::core {

/// Serializes a fitted What-if Engine's calibrated models as CSV — the
/// review artifact the DS hands the DX in Phase II ("results are interpreted
/// and validated by DX", Section 3.1). One row per SC-SKU group with the
/// g/h/f coefficients, fit quality, and the current operating point.
std::string WhatIfModelsToCsv(const WhatIfEngine& engine);

/// Writes the report to a file.
Status SaveWhatIfModels(const WhatIfEngine& engine, const std::string& path);

}  // namespace kea::core

#endif  // KEA_CORE_MODEL_REPORT_H_
