#ifndef KEA_CORE_EXPERIMENT_FABRIC_H_
#define KEA_CORE_EXPERIMENT_FABRIC_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/flighting.h"
#include "core/guardrailed_rollout.h"
#include "core/treatment.h"
#include "sim/cluster.h"
#include "telemetry/store.h"

namespace kea::core {

/// Why an experiment request could not start alongside the currently active
/// flights. kSharedMachines / kSharedRack / kKnobInteraction /
/// kBlastRadiusBudget are *serialization* reasons — the request waits and is
/// retried at the next slice boundary; kInsufficientMachines and a request
/// too large for the budget even on an idle fabric are permanent rejections.
enum class InterferenceReason {
  kNone = 0,
  kSharedMachines,       ///< Pinned machines overlap an active flight's arms.
  kSharedRack,           ///< Would share a rack with an active flight.
  kKnobInteraction,      ///< Knob couples with an active flight's knob
                         ///< through the scheduler (capacity knobs).
  kBlastRadiusBudget,    ///< Would push flighted machines over the budget.
  kInsufficientMachines, ///< The fleet cannot field both arms at all.
};

const char* InterferenceReasonToString(InterferenceReason reason);

/// One planned A/B flight submitted to the fabric — typically derived from an
/// ExperimentPlanner plan. Both arms are machines_per_arm strong; guardrails
/// are evaluated on the treatment arm every window_hours for num_windows
/// windows, after which the treatment effect is estimated and the
/// configuration restored.
struct FlightRequest {
  std::string name;
  sim::SkuId sku = 0;
  ConfigPatch treatment;
  int machines_per_arm = 8;
  int window_hours = 5;  ///< Slice/guardrail cadence (paper avoids 24h).
  int num_windows = 4;
  /// Optional explicit machine pool (e.g. hand-picked racks). When empty the
  /// fabric partitions free racks of `sku` itself.
  std::vector<int> pinned_machines;
  GuardrailThresholds guardrails;
};

/// Scheduler for concurrent A/B flights (paper Section 6-7 scaled out): admits
/// a queue of planned experiments, partitions the fleet into non-interfering
/// experiment groups — disjoint whole racks per flight, so a correlated rack
/// outage can never straddle two experiments, with control and treatment
/// interleaved *within* each rack ("every other machine in the same rack") so
/// it hits both arms symmetrically — detects cross-experiment interference at
/// admission time with a typed reason, and enforces a global blast-radius
/// budget over all concurrently flighted machines. A per-flight guardrail
/// trip rolls back exactly that flight; everyone else keeps running.
///
/// Every state transition (admit, start, slice boundary, verdict, rollback,
/// conclude) is write-ahead journaled through the DeploymentLedger with
/// idempotency keys "fab<round>/f<index>/<step>", so a crash at any point
/// resumes bit-identically (see experiment_fabric_test's crash sweep). A
/// tripped or concluded flight's racks stay reserved until its *planned*
/// horizon ends — post-rollback carryover must not seed another experiment.
class ExperimentFabric {
 public:
  struct Options {
    /// Global blast-radius budget: active flighted machines (both arms, all
    /// concurrent flights) never exceed this fraction of the fleet.
    double max_flighted_fraction = 0.25;
    /// Pre-start window for each flight's guardrail baseline.
    int baseline_hours = 24;
    /// Threads for per-boundary guardrail evaluation / conclusion estimation.
    /// Results are bit-identical at any thread count.
    int num_threads = 1;
    /// Optional cumulative per-machine-set down-hours accessor (wired to
    /// FleetFaultInjector::DownHours) for per-arm fault attribution.
    std::function<uint64_t(const std::vector<int>&)> down_hours;
  };

  /// Final state of one request, in request order.
  struct FlightConclusion {
    int flight = -1;  ///< Index in the submitted request vector.
    std::string name;
    bool admitted = false;
    /// kNone unless the request was permanently rejected.
    InterferenceReason rejected = InterferenceReason::kNone;
    /// Admission passes the request sat out before starting.
    uint64_t deferrals = 0;

    sim::HourIndex start_hour = 0;
    sim::HourIndex end_hour = 0;  ///< Actual end (trip hour when tripped).
    std::vector<int> racks;
    std::vector<int> treatment_machines;
    std::vector<int> control_machines;

    bool tripped = false;
    int tripped_window = -1;
    GuardrailEvaluation trip_eval;

    /// Treatment-effect estimates over [start_hour, end_hour); only valid
    /// when effect_ok (a tripped flight, or arms starved of telemetry by
    /// chaos, reaches no estimate).
    bool effect_ok = false;
    TreatmentEffect data_read;
    TreatmentEffect task_latency;
    /// 95% CI of data_read.percent_change.
    double data_read_ci_low = 0.0;
    double data_read_ci_high = 0.0;

    /// Machine-down-hours accrued inside the flight window, per arm (0
    /// without a down_hours accessor). Rack-exclusive partitions make these
    /// symmetric under rack outages.
    uint64_t treatment_down_hours = 0;
    uint64_t control_down_hours = 0;
    size_t machines_restored = 0;
  };

  struct Report {
    std::vector<FlightConclusion> flights;  ///< One per request, in order.
    size_t admitted = 0;
    size_t rejected = 0;
    size_t trips = 0;
    /// Peak number of simultaneously running flights / flighted machines.
    size_t max_concurrent = 0;
    size_t peak_flighted_machines = 0;
    sim::HourIndex end_hour = 0;
  };

  /// Advances the world (simulate + ingest) by `hours`, appending telemetry
  /// to the store passed to Run.
  using AdvanceFn = std::function<Status(int hours)>;
  /// Same durability context as GuardrailedRollout: ledger + durable_seq +
  /// round number + per-step checkpoint hook.
  using JournalContext = GuardrailedRollout::JournalContext;

  explicit ExperimentFabric(const Options& options);

  /// Runs the whole request queue to completion. `ctx` may be null (no
  /// journaling, e.g. what-if exploration); with a context every transition
  /// is journaled and checkpointed, and a crashed run re-driven through the
  /// same requests finishes bit-identically. Guardrail trips are reported per
  /// flight, never as a non-OK status. On return the cluster configuration is
  /// restored to its entry state (every flight ends or is rolled back).
  StatusOr<Report> Run(const std::vector<FlightRequest>& requests,
                       sim::Cluster* cluster,
                       const telemetry::TelemetryStore* store,
                       sim::HourIndex start_hour, const AdvanceFn& advance,
                       JournalContext* ctx);

  /// Bit-exact codec for FlightConclusion (FLIGHT_CONCLUDED payloads and
  /// report signatures in tests).
  static std::string EncodeConclusion(const FlightConclusion& c);
  static Status DecodeConclusion(const std::string& blob, FlightConclusion* c);

 private:
  Options options_;
};

}  // namespace kea::core

#endif  // KEA_CORE_EXPERIMENT_FABRIC_H_
