#include "core/power_analysis.h"

#include <cmath>

namespace kea::core {

StatusOr<double> NormalQuantile(double p) {
  if (p <= 0.0 || p >= 1.0) {
    return Status::InvalidArgument("normal quantile needs p in (0, 1)");
  }
  // Acklam's rational approximation for the inverse normal CDF.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;

  double q, r, x;
  if (p < p_low) {
    q = std::sqrt(-2.0 * std::log(p));
    x = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    q = p - 0.5;
    r = q * q;
    x = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    q = std::sqrt(-2.0 * std::log(1.0 - p));
    x = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return x;
}

namespace {

Status ValidateOptions(const PowerAnalysis& options) {
  if (options.alpha <= 0.0 || options.alpha >= 1.0) {
    return Status::InvalidArgument("alpha must be in (0, 1)");
  }
  if (options.power <= 0.0 || options.power >= 1.0) {
    return Status::InvalidArgument("power must be in (0, 1)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<int64_t> RequiredSampleSizePerArm(double effect_size, double stddev,
                                           const PowerAnalysis& options) {
  KEA_RETURN_IF_ERROR(ValidateOptions(options));
  if (effect_size <= 0.0) {
    return Status::InvalidArgument("effect size must be positive");
  }
  if (stddev <= 0.0) return Status::InvalidArgument("stddev must be positive");

  KEA_ASSIGN_OR_RETURN(double z_alpha, NormalQuantile(1.0 - options.alpha / 2.0));
  KEA_ASSIGN_OR_RETURN(double z_beta, NormalQuantile(options.power));
  double ratio = (z_alpha + z_beta) * stddev / effect_size;
  double n = 2.0 * ratio * ratio;
  return static_cast<int64_t>(std::ceil(n));
}

StatusOr<double> MinimumDetectableEffect(int64_t n_per_arm, double stddev,
                                         const PowerAnalysis& options) {
  KEA_RETURN_IF_ERROR(ValidateOptions(options));
  if (n_per_arm < 2) return Status::InvalidArgument("need >= 2 per arm");
  if (stddev <= 0.0) return Status::InvalidArgument("stddev must be positive");

  KEA_ASSIGN_OR_RETURN(double z_alpha, NormalQuantile(1.0 - options.alpha / 2.0));
  KEA_ASSIGN_OR_RETURN(double z_beta, NormalQuantile(options.power));
  return (z_alpha + z_beta) * stddev *
         std::sqrt(2.0 / static_cast<double>(n_per_arm));
}

}  // namespace kea::core
