#ifndef KEA_CORE_POWER_ANALYSIS_H_
#define KEA_CORE_POWER_ANALYSIS_H_

#include "common/status.h"

namespace kea::core {

/// Statistical power analysis for the experimental-tuning designs (Section
/// 7: "To have statistical significance, we also want to have a relatively
/// large sample size"). Two-sample two-sided tests under the normal
/// approximation: n per arm = 2 * ((z_{1-a/2} + z_{1-b}) * sigma / delta)^2.
struct PowerAnalysis {
  /// Two-sided significance level (probability of a false positive).
  double alpha = 0.05;
  /// Target power 1 - beta (probability of detecting a true effect).
  double power = 0.8;
};

/// Quantile of the standard normal distribution (inverse CDF), via the
/// Acklam rational approximation (|error| < 1.2e-9). p must be in (0, 1).
StatusOr<double> NormalQuantile(double p);

/// Observations needed *per arm* to detect a mean difference of
/// `effect_size` when the per-observation standard deviation is `stddev`.
/// Returns InvalidArgument on non-positive inputs or out-of-range
/// alpha/power.
StatusOr<int64_t> RequiredSampleSizePerArm(double effect_size, double stddev,
                                           const PowerAnalysis& options);

/// The smallest mean difference detectable with `n_per_arm` observations per
/// arm at the given alpha/power.
StatusOr<double> MinimumDetectableEffect(int64_t n_per_arm, double stddev,
                                         const PowerAnalysis& options);

}  // namespace kea::core

#endif  // KEA_CORE_POWER_ANALYSIS_H_
