#ifndef KEA_CORE_MODEL_HEALTH_H_
#define KEA_CORE_MODEL_HEALTH_H_

#include <cstddef>
#include <string>

#include "common/status.h"
#include "core/guardrailed_rollout.h"
#include "core/validation.h"
#include "sim/types.h"

namespace kea::core {

/// Circuit breaker guarding the What-if models — the self-healing half of the
/// fleet fault model (DESIGN.md "fleet fault model & self-healing loop").
/// State machine:
///
///   HEALTHY ──drift alarm / residual inflation──▶ TRIPPED
///   TRIPPED ──refit due──▶ REFITTING
///   REFITTING ──validation gate passes──▶ RE-ARMED
///   REFITTING ──gate fails──▶ TRIPPED (retry after another refit interval)
///   RE-ARMED ──probation rounds clean──▶ HEALTHY
///   RE-ARMED ──new alarm / inflation──▶ TRIPPED
///
/// While TRIPPED or REFITTING the session is in *safe mode*: the last
/// known-good config is held, new deployments are refused, and only refits
/// run. While RE-ARMED, deployments resume under tightened guardrails
/// (probation). The breaker itself owns no models — KeaSession drives the
/// refits and reports validation results back.
class ModelHealth {
 public:
  enum class State { kHealthy, kTripped, kRefitting, kRearmed };

  struct Options {
    /// Trip when a validation pass reports relative error above this.
    double residual_tolerance = 0.3;
    /// Also trip when error exceeds this multiple of the first (known-good)
    /// validation error — catches slow inflation long before the absolute
    /// ceiling.
    double residual_inflation = 3.0;
    /// Floor on the inflation baseline so a near-perfect first fit does not
    /// make the inflation trigger hair-triggered.
    double min_baseline_error = 0.02;
    /// Hours after a trip before attempting a refit (lets post-drift
    /// telemetry accumulate).
    int refit_delay_hours = 24;
    /// Telemetry window for the refit: [now - lookback, now - holdout) is
    /// fitted, [now - holdout, now) is the held-out validation gate.
    int refit_lookback_hours = 120;
    int holdout_hours = 24;
    /// Maximum relative error on the held-out window for the gate to pass.
    double validation_tolerance = 0.25;
    /// Clean rounds in RE-ARMED before returning to HEALTHY.
    int probation_rounds = 2;
    /// Guardrail tightening during probation: allowed degradation margins
    /// shrink by this factor (0.5 = half the headroom).
    double probation_margin_scale = 0.5;
  };

  ModelHealth() : ModelHealth(Options()) {}
  explicit ModelHealth(const Options& options) : options_(options) {}

  State state() const { return state_; }
  static const char* StateName(State s);
  const std::string& trip_reason() const { return trip_reason_; }
  sim::HourIndex tripped_at() const { return tripped_at_; }

  /// True when the session may deploy configuration changes.
  bool deployments_allowed() const {
    return state_ == State::kHealthy || state_ == State::kRearmed;
  }
  bool in_safe_mode() const { return !deployments_allowed(); }

  /// Trips the breaker (drift alarm, staleness, residual inflation). No-op
  /// when already tripped; from RE-ARMED it re-trips.
  void Trip(const std::string& reason, sim::HourIndex hour);

  /// Folds a validation pass into residual tracking. The first healthy
  /// result becomes the inflation baseline. May trip the breaker; returns
  /// true when it did.
  bool ObserveValidation(const ValidationReport& report, sim::HourIndex hour);

  /// True when a refit should be attempted this round.
  bool RefitDue(sim::HourIndex now) const;
  /// Marks the refit as started (TRIPPED → REFITTING).
  void BeginRefit();
  /// Outcome of the held-out validation gate. Pass → RE-ARMED; fail →
  /// back to TRIPPED with the retry clock restarted at `now`.
  void CompleteRefit(bool gate_passed, sim::HourIndex now);

  /// Call once per tuning round. In RE-ARMED, counts down probation and
  /// returns to HEALTHY when it clears. In safe mode, counts the round.
  void NoteRound();

  /// Guardrails for the current state: the caller's thresholds, tightened
  /// while RE-ARMED (probation) — a freshly refitted model gets less rope.
  GuardrailThresholds EffectiveGuardrails(const GuardrailThresholds& base) const;

  size_t trips() const { return trips_; }
  size_t refits() const { return refits_; }
  size_t refit_failures() const { return refit_failures_; }
  size_t safe_mode_rounds() const { return safe_mode_rounds_; }
  double baseline_error() const { return baseline_error_; }
  double last_error() const { return last_error_; }

  const Options& options() const { return options_; }

  /// Bit-exact checkpoint of the breaker state. Options are
  /// construction-time.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  Options options_;
  State state_ = State::kHealthy;
  std::string trip_reason_;
  sim::HourIndex tripped_at_ = -1;
  sim::HourIndex retry_after_ = -1;
  int probation_left_ = 0;
  double baseline_error_ = 0.0;  ///< 0 = not yet established.
  double last_error_ = 0.0;
  size_t trips_ = 0;
  size_t refits_ = 0;
  size_t refit_failures_ = 0;
  size_t safe_mode_rounds_ = 0;
};

}  // namespace kea::core

#endif  // KEA_CORE_MODEL_HEALTH_H_
