#include "core/treatment.h"

#include <cmath>

namespace kea::core {

namespace {

StatusOr<TreatmentEffect> FromTest(const std::string& metric,
                                   const std::vector<double>& control,
                                   const std::vector<double>& treatment,
                                   const ml::TTestResult& test) {
  double control_mean = ml::Mean(control);
  if (std::fabs(control_mean) < 1e-12) {
    return Status::FailedPrecondition("control mean ~0; percent change undefined");
  }
  TreatmentEffect effect;
  effect.metric = metric;
  effect.control_mean = control_mean;
  effect.treatment_mean = ml::Mean(treatment);
  effect.percent_change = (effect.treatment_mean - control_mean) / control_mean;
  // Sign convention: positive t when treatment exceeds control.
  effect.t_value = -test.t_statistic;
  effect.p_value = test.p_value;
  effect.significant = test.significant_at_05;
  return effect;
}

}  // namespace

StatusOr<TreatmentEffect> EstimateTreatmentEffect(const std::string& metric,
                                                  const std::vector<double>& control,
                                                  const std::vector<double>& treatment) {
  KEA_ASSIGN_OR_RETURN(ml::TTestResult test, ml::StudentTTest(control, treatment));
  return FromTest(metric, control, treatment, test);
}

StatusOr<TreatmentEffect> EstimateTreatmentEffectWelch(
    const std::string& metric, const std::vector<double>& control,
    const std::vector<double>& treatment) {
  KEA_ASSIGN_OR_RETURN(ml::TTestResult test, ml::WelchTTest(control, treatment));
  return FromTest(metric, control, treatment, test);
}

StatusOr<DifferenceInDifferences> EstimateDifferenceInDifferences(
    const std::string& metric, const std::vector<double>& control_before,
    const std::vector<double>& control_after,
    const std::vector<double>& treated_before,
    const std::vector<double>& treated_after) {
  if (control_before.size() != control_after.size() ||
      treated_before.size() != treated_after.size()) {
    return Status::InvalidArgument("before/after samples must pair per unit");
  }
  if (control_before.size() < 2 || treated_before.size() < 2) {
    return Status::InvalidArgument("DiD needs >= 2 units per group");
  }
  double treated_base = ml::Mean(treated_before);
  if (std::fabs(treated_base) < 1e-12) {
    return Status::FailedPrecondition("treated before-mean ~0");
  }

  // Per-unit deltas.
  std::vector<double> control_delta(control_before.size());
  for (size_t i = 0; i < control_before.size(); ++i) {
    control_delta[i] = control_after[i] - control_before[i];
  }
  std::vector<double> treated_delta(treated_before.size());
  for (size_t i = 0; i < treated_before.size(); ++i) {
    treated_delta[i] = treated_after[i] - treated_before[i];
  }

  DifferenceInDifferences did;
  did.metric = metric;
  did.control_change = ml::Mean(control_delta);
  did.treatment_change = ml::Mean(treated_delta);
  did.effect = did.treatment_change - did.control_change;
  did.percent_effect = did.effect / treated_base;

  KEA_ASSIGN_OR_RETURN(ml::TTestResult test,
                       ml::WelchTTest(control_delta, treated_delta));
  did.t_value = -test.t_statistic;  // Positive when treated change exceeds control.
  did.p_value = test.p_value;
  did.significant = test.significant_at_05;
  return did;
}

}  // namespace kea::core
