#include "core/experiment_fabric.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <unordered_set>

#include "common/crash_point.h"
#include "common/snapshot.h"
#include "common/thread_pool.h"
#include "core/deployment_ledger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kea::core {
namespace {

obs::Counter* AdmittedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("fabric.flights_admitted");
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("fabric.flights_rejected");
  return c;
}
obs::Counter* DeferralsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("fabric.deferrals");
  return c;
}
obs::Counter* TripsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("fabric.guardrail_trips");
  return c;
}
obs::Counter* RollbacksCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("fabric.rollbacks");
  return c;
}
obs::Counter* ConcludedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("fabric.flights_concluded");
  return c;
}
obs::Counter* StepReplayedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_replayed");
  return c;
}
obs::Counter* StepRedrivenCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_redriven");
  return c;
}
obs::Counter* StepFreshCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("durable.step_fresh");
  return c;
}

/// Guardrail metrics of one telemetry window restricted to a machine set.
/// Mirrors GuardrailedRollout's measurement exactly — flights and rollouts
/// must trip on the same evidence.
struct WindowMetrics {
  size_t records = 0;
  double tasks = 0.0;
  double latency_s = 0.0;  ///< Task-weighted mean latency.
  double queue_p99_ms = 0.0;
  double utilization = 0.0;
};

WindowMetrics Measure(const telemetry::TelemetryStore& store,
                      const std::unordered_set<int>& machine_ids,
                      sim::HourIndex begin, sim::HourIndex end) {
  WindowMetrics m;
  double weighted_latency = 0.0, util_sum = 0.0;
  std::vector<double> queue_latencies;
  for (const auto& r : store.records()) {
    if (r.hour < begin || r.hour >= end) continue;
    if (!machine_ids.empty() && machine_ids.count(r.machine_id) == 0) continue;
    if (!std::isfinite(r.cpu_utilization) ||
        !std::isfinite(r.avg_task_latency_s) ||
        !std::isfinite(r.tasks_finished) || !std::isfinite(r.queue_latency_ms)) {
      continue;
    }
    ++m.records;
    m.tasks += r.tasks_finished;
    weighted_latency += r.avg_task_latency_s * r.tasks_finished;
    util_sum += r.cpu_utilization;
    queue_latencies.push_back(r.queue_latency_ms);
  }
  if (m.records == 0) return m;
  m.latency_s = m.tasks > 0.0 ? weighted_latency / m.tasks : 0.0;
  m.utilization = util_sum / static_cast<double>(m.records);
  std::sort(queue_latencies.begin(), queue_latencies.end());
  size_t p99 =
      static_cast<size_t>(0.99 * static_cast<double>(queue_latencies.size()));
  m.queue_p99_ms = queue_latencies[std::min(p99, queue_latencies.size() - 1)];
  return m;
}

/// GuardrailedRollout::Evaluate semantics applied to one flight's treatment
/// arm: observed window vs the arm's own pre-flight baseline, with the
/// "silence trips" rule.
GuardrailEvaluation EvaluateGuardrails(const telemetry::TelemetryStore& store,
                                       const GuardrailThresholds& t,
                                       const std::vector<int>& machine_ids,
                                       sim::HourIndex baseline_begin,
                                       sim::HourIndex baseline_end,
                                       sim::HourIndex begin,
                                       sim::HourIndex end) {
  std::unordered_set<int> ids(machine_ids.begin(), machine_ids.end());
  WindowMetrics baseline = Measure(store, ids, baseline_begin, baseline_end);
  WindowMetrics observed = Measure(store, ids, begin, end);

  GuardrailEvaluation eval;
  eval.baseline_latency_s = baseline.latency_s;
  eval.observed_latency_s = observed.latency_s;
  eval.baseline_queue_p99_ms = baseline.queue_p99_ms;
  eval.observed_queue_p99_ms = observed.queue_p99_ms;
  eval.baseline_utilization = baseline.utilization;
  eval.observed_utilization = observed.utilization;
  eval.measurable = baseline.records > 0 && observed.records > 0;
  if (!eval.measurable) return eval;

  eval.latency_ok =
      baseline.latency_s > 0.0
          ? observed.latency_s <= baseline.latency_s * t.max_latency_ratio
          : true;
  eval.queue_ok = observed.queue_p99_ms <=
                  std::max(baseline.queue_p99_ms * t.max_queue_p99_ratio,
                           t.queue_p99_floor_ms);
  eval.utilization_ok = observed.utilization <= t.max_utilization;
  return eval;
}

/// Pre-flight value of every config field a patch can touch, per machine.
/// Journaled in FLIGHT_STARTED so rollback restores bit-exact state from the
/// record even across a crash.
struct Prior {
  int id = 0;
  int old_max = 0;
  int new_max = 0;  ///< Post-patch value (for the applied-changes audit CSV).
  double power = 1.0;
  bool feature = false;
  int sc = 0;
};

/// A flight's rack/machine reservation. Held until the *planned* horizon ends
/// even after a trip — post-rollback carryover on those machines must not
/// contaminate a newly admitted experiment.
struct Reservation {
  std::set<int> racks;
  std::unordered_set<int> machines;
  sim::HourIndex planned_end = 0;
  bool running = false;  ///< Patch applied and not yet concluded/rolled back.
  size_t flighted = 0;   ///< Both arms' machine count (blast-radius units).
};

struct FlightState {
  size_t index = 0;
  const FlightRequest* req = nullptr;
  ExperimentFabric::FlightConclusion conclusion;
  std::vector<Prior> priors;
  uint64_t start_treatment_down = 0;
  uint64_t start_control_down = 0;
  sim::HourIndex planned_end = 0;
  int windows_done = 0;
  bool running = false;
  bool finished = false;
};

/// Candidate partition for one request, or the typed reason it is blocked.
struct Assignment {
  std::vector<int> racks;
  std::vector<int> treatment;
  std::vector<int> control;
  InterferenceReason blocked = InterferenceReason::kNone;
};

/// Splits `pool` (machines of one rack, in id order) across the arms by
/// interleaving — "every other machine in the same rack" (Section 7.1) — so
/// rack-local workload and rack outages land on both arms symmetrically.
void InterleaveRack(const std::vector<const sim::Machine*>& pool,
                    Assignment* a) {
  for (size_t i = 0; i < pool.size(); ++i) {
    ((i % 2 == 0) ? a->control : a->treatment).push_back(pool[i]->id);
  }
}

/// Trims both arms to exactly `per_arm` and the rack list to racks actually
/// used by a surviving machine.
void TrimAssignment(const sim::Cluster& cluster, int per_arm, Assignment* a) {
  a->control.resize(static_cast<size_t>(per_arm));
  a->treatment.resize(static_cast<size_t>(per_arm));
  std::set<int> used;
  const auto& machines = cluster.machines();
  for (int id : a->control) used.insert(machines[static_cast<size_t>(id)].rack);
  for (int id : a->treatment)
    used.insert(machines[static_cast<size_t>(id)].rack);
  a->racks.assign(used.begin(), used.end());
}

/// Builds a partition from free whole racks of the request's SKU (racks are
/// SKU-homogeneous by construction). With `ignore_reserved` the partition is
/// attempted as if the fabric were idle — used to tell a temporary conflict
/// (defer) from a fleet that can never field the experiment (reject).
Assignment AssignFromRacks(const sim::Cluster& cluster,
                           const FlightRequest& req,
                           const std::set<int>& reserved_racks,
                           bool ignore_reserved) {
  Assignment a;
  std::map<int, std::vector<const sim::Machine*>> by_rack;
  for (const sim::Machine& m : cluster.machines()) {
    if (m.sku == req.sku) by_rack[m.rack].push_back(&m);
  }
  for (const auto& [rack, pool] : by_rack) {
    if (!ignore_reserved && reserved_racks.count(rack) > 0) continue;
    a.racks.push_back(rack);
    InterleaveRack(pool, &a);
    if (static_cast<int>(a.control.size()) >= req.machines_per_arm &&
        static_cast<int>(a.treatment.size()) >= req.machines_per_arm) {
      break;
    }
  }
  if (static_cast<int>(a.control.size()) < req.machines_per_arm ||
      static_cast<int>(a.treatment.size()) < req.machines_per_arm) {
    a.blocked = InterferenceReason::kInsufficientMachines;
    return a;
  }
  TrimAssignment(cluster, req.machines_per_arm, &a);
  return a;
}

/// Builds a partition from an explicitly pinned machine pool, checking it
/// against the active reservations (shared machines beat shared racks as the
/// reported reason — they are the more direct interference).
Assignment AssignPinned(const sim::Cluster& cluster, const FlightRequest& req,
                        const std::set<int>& reserved_racks,
                        const std::unordered_set<int>& reserved_machines,
                        bool ignore_reserved) {
  Assignment a;
  const auto& machines = cluster.machines();
  if (!ignore_reserved) {
    for (int id : req.pinned_machines) {
      if (reserved_machines.count(id) > 0) {
        a.blocked = InterferenceReason::kSharedMachines;
        return a;
      }
    }
    for (int id : req.pinned_machines) {
      if (reserved_racks.count(machines[static_cast<size_t>(id)].rack) > 0) {
        a.blocked = InterferenceReason::kSharedRack;
        return a;
      }
    }
  }
  std::map<int, std::vector<const sim::Machine*>> by_rack;
  for (int id : req.pinned_machines) {
    const sim::Machine& m = machines[static_cast<size_t>(id)];
    by_rack[m.rack].push_back(&m);
  }
  for (auto& [rack, pool] : by_rack) {
    std::sort(pool.begin(), pool.end(),
              [](const sim::Machine* x, const sim::Machine* y) {
                return x->id < y->id;
              });
    a.racks.push_back(rack);
    InterleaveRack(pool, &a);
  }
  if (static_cast<int>(a.control.size()) < req.machines_per_arm ||
      static_cast<int>(a.treatment.size()) < req.machines_per_arm) {
    a.blocked = InterferenceReason::kInsufficientMachines;
    return a;
  }
  TrimAssignment(cluster, req.machines_per_arm, &a);
  return a;
}

Status RestorePriors(const std::vector<Prior>& priors, sim::Cluster* cluster) {
  auto& machines = cluster->mutable_machines();
  for (const Prior& p : priors) {
    if (p.id < 0 || static_cast<size_t>(p.id) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(p.id));
    }
    sim::Machine& m = machines[static_cast<size_t>(p.id)];
    m.max_containers = p.old_max;
    m.power_cap_fraction = p.power;
    m.feature_enabled = p.feature;
    if (m.sc != p.sc) {
      KEA_RETURN_IF_ERROR(cluster->SetSoftwareConfig({p.id}, p.sc));
    }
  }
  return Status::OK();
}

void PutIntVec(StateWriter* w, const std::vector<int>& v) {
  w->PutU64(v.size());
  for (int x : v) w->PutInt(x);
}

Status GetIntVec(StateReader* r, std::vector<int>* v) {
  uint64_t n = 0;
  KEA_RETURN_IF_ERROR(r->GetU64(&n));
  v->assign(n, 0);
  for (uint64_t i = 0; i < n; ++i) KEA_RETURN_IF_ERROR(r->GetInt(&(*v)[i]));
  return Status::OK();
}

void PutEffect(StateWriter* w, const TreatmentEffect& e) {
  w->PutString(e.metric);
  w->PutDouble(e.control_mean);
  w->PutDouble(e.treatment_mean);
  w->PutDouble(e.percent_change);
  w->PutDouble(e.t_value);
  w->PutDouble(e.p_value);
  w->PutBool(e.significant);
}

Status GetEffect(StateReader* r, TreatmentEffect* e) {
  KEA_RETURN_IF_ERROR(r->GetString(&e->metric));
  KEA_RETURN_IF_ERROR(r->GetDouble(&e->control_mean));
  KEA_RETURN_IF_ERROR(r->GetDouble(&e->treatment_mean));
  KEA_RETURN_IF_ERROR(r->GetDouble(&e->percent_change));
  KEA_RETURN_IF_ERROR(r->GetDouble(&e->t_value));
  KEA_RETURN_IF_ERROR(r->GetDouble(&e->p_value));
  KEA_RETURN_IF_ERROR(r->GetBool(&e->significant));
  return Status::OK();
}

/// Fills the effect estimates of a conclusion whose window and arms are set:
/// per machine-hour data read and task latency over [start, end), task-bearing
/// finite records only (machine-hours silenced by chaos simply drop out).
void EstimateEffects(const telemetry::TelemetryStore& store,
                     ExperimentFabric::FlightConclusion* c) {
  std::unordered_set<int> treat(c->treatment_machines.begin(),
                                c->treatment_machines.end());
  std::unordered_set<int> ctrl(c->control_machines.begin(),
                               c->control_machines.end());
  std::vector<double> t_data, c_data, t_lat, c_lat;
  for (const auto& r : store.records()) {
    if (r.hour < c->start_hour || r.hour >= c->end_hour) continue;
    if (!std::isfinite(r.data_read_mb) || !std::isfinite(r.avg_task_latency_s) ||
        !std::isfinite(r.tasks_finished) || r.tasks_finished <= 0.0) {
      continue;
    }
    if (treat.count(r.machine_id) > 0) {
      t_data.push_back(r.data_read_mb);
      t_lat.push_back(r.avg_task_latency_s);
    } else if (ctrl.count(r.machine_id) > 0) {
      c_data.push_back(r.data_read_mb);
      c_lat.push_back(r.avg_task_latency_s);
    }
  }
  StatusOr<TreatmentEffect> data =
      EstimateTreatmentEffect("data_read_mb", c_data, t_data);
  StatusOr<TreatmentEffect> latency =
      EstimateTreatmentEffect("avg_task_latency_s", c_lat, t_lat);
  c->effect_ok = data.ok() && latency.ok();
  if (data.ok()) {
    c->data_read = std::move(data).value();
    // 95% CI of the percent change, from the t statistic (se = diff / t).
    double half = std::abs(c->data_read.t_value) > 1e-12
                      ? 1.96 * std::abs(c->data_read.percent_change /
                                        c->data_read.t_value)
                      : 1.0;
    c->data_read_ci_low = c->data_read.percent_change - half;
    c->data_read_ci_high = c->data_read.percent_change + half;
  }
  if (latency.ok()) c->task_latency = std::move(latency).value();
}

}  // namespace

const char* InterferenceReasonToString(InterferenceReason reason) {
  switch (reason) {
    case InterferenceReason::kNone:
      return "NONE";
    case InterferenceReason::kSharedMachines:
      return "SHARED_MACHINES";
    case InterferenceReason::kSharedRack:
      return "SHARED_RACK";
    case InterferenceReason::kKnobInteraction:
      return "KNOB_INTERACTION";
    case InterferenceReason::kBlastRadiusBudget:
      return "BLAST_RADIUS_BUDGET";
    case InterferenceReason::kInsufficientMachines:
      return "INSUFFICIENT_MACHINES";
  }
  return "UNKNOWN";
}

ExperimentFabric::ExperimentFabric(const Options& options)
    : options_(options) {}

std::string ExperimentFabric::EncodeConclusion(const FlightConclusion& c) {
  StateWriter w;
  w.PutInt(c.flight);
  w.PutString(c.name);
  w.PutBool(c.admitted);
  w.PutInt(static_cast<int>(c.rejected));
  w.PutU64(c.deferrals);
  w.PutI64(c.start_hour);
  w.PutI64(c.end_hour);
  PutIntVec(&w, c.racks);
  PutIntVec(&w, c.treatment_machines);
  PutIntVec(&w, c.control_machines);
  w.PutBool(c.tripped);
  w.PutInt(c.tripped_window);
  w.PutString(GuardrailedRollout::EncodeEvaluation(c.trip_eval));
  w.PutBool(c.effect_ok);
  PutEffect(&w, c.data_read);
  PutEffect(&w, c.task_latency);
  w.PutDouble(c.data_read_ci_low);
  w.PutDouble(c.data_read_ci_high);
  w.PutU64(c.treatment_down_hours);
  w.PutU64(c.control_down_hours);
  w.PutU64(c.machines_restored);
  return w.Release();
}

Status ExperimentFabric::DecodeConclusion(const std::string& blob,
                                          FlightConclusion* c) {
  StateReader r(blob);
  int rejected = 0;
  int64_t start = 0, end = 0;
  uint64_t restored = 0;
  std::string eval_blob;
  KEA_RETURN_IF_ERROR(r.GetInt(&c->flight));
  KEA_RETURN_IF_ERROR(r.GetString(&c->name));
  KEA_RETURN_IF_ERROR(r.GetBool(&c->admitted));
  KEA_RETURN_IF_ERROR(r.GetInt(&rejected));
  KEA_RETURN_IF_ERROR(r.GetU64(&c->deferrals));
  KEA_RETURN_IF_ERROR(r.GetI64(&start));
  KEA_RETURN_IF_ERROR(r.GetI64(&end));
  KEA_RETURN_IF_ERROR(GetIntVec(&r, &c->racks));
  KEA_RETURN_IF_ERROR(GetIntVec(&r, &c->treatment_machines));
  KEA_RETURN_IF_ERROR(GetIntVec(&r, &c->control_machines));
  KEA_RETURN_IF_ERROR(r.GetBool(&c->tripped));
  KEA_RETURN_IF_ERROR(r.GetInt(&c->tripped_window));
  KEA_RETURN_IF_ERROR(r.GetString(&eval_blob));
  KEA_RETURN_IF_ERROR(
      GuardrailedRollout::DecodeEvaluation(eval_blob, &c->trip_eval));
  KEA_RETURN_IF_ERROR(r.GetBool(&c->effect_ok));
  KEA_RETURN_IF_ERROR(GetEffect(&r, &c->data_read));
  KEA_RETURN_IF_ERROR(GetEffect(&r, &c->task_latency));
  KEA_RETURN_IF_ERROR(r.GetDouble(&c->data_read_ci_low));
  KEA_RETURN_IF_ERROR(r.GetDouble(&c->data_read_ci_high));
  KEA_RETURN_IF_ERROR(r.GetU64(&c->treatment_down_hours));
  KEA_RETURN_IF_ERROR(r.GetU64(&c->control_down_hours));
  KEA_RETURN_IF_ERROR(r.GetU64(&restored));
  c->rejected = static_cast<InterferenceReason>(rejected);
  c->start_hour = static_cast<sim::HourIndex>(start);
  c->end_hour = static_cast<sim::HourIndex>(end);
  c->machines_restored = static_cast<size_t>(restored);
  return Status::OK();
}

StatusOr<ExperimentFabric::Report> ExperimentFabric::Run(
    const std::vector<FlightRequest>& requests, sim::Cluster* cluster,
    const telemetry::TelemetryStore* store, sim::HourIndex start_hour,
    const AdvanceFn& advance, JournalContext* ctx) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (store == nullptr) return Status::InvalidArgument("null telemetry store");
  if (!advance) return Status::InvalidArgument("null advance function");
  if (requests.empty()) {
    return Status::InvalidArgument("no flight requests");
  }
  if (options_.max_flighted_fraction <= 0.0 ||
      options_.max_flighted_fraction > 1.0) {
    return Status::InvalidArgument(
        "max_flighted_fraction must be in (0, 1]");
  }
  if (options_.baseline_hours <= 0) {
    return Status::InvalidArgument("baseline_hours must be positive");
  }
  if (options_.num_threads < 1) {
    return Status::InvalidArgument("num_threads must be >= 1");
  }
  const size_t fleet = cluster->machines().size();
  for (const FlightRequest& req : requests) {
    if (req.machines_per_arm <= 0) {
      return Status::InvalidArgument("machines_per_arm must be positive");
    }
    if (req.window_hours <= 0) {
      return Status::InvalidArgument("window_hours must be positive");
    }
    if (req.num_windows <= 0) {
      return Status::InvalidArgument("num_windows must be positive");
    }
    if (req.treatment.empty()) {
      return Status::InvalidArgument("flight '" + req.name +
                                     "' has an empty treatment patch");
    }
    for (int id : req.pinned_machines) {
      if (id < 0 || static_cast<size_t>(id) >= fleet) {
        return Status::OutOfRange("pinned machine id " + std::to_string(id));
      }
    }
  }

  const size_t budget = static_cast<size_t>(
      options_.max_flighted_fraction * static_cast<double>(fleet));
  const std::string prefix = "fab" + std::to_string(ctx ? ctx->round : 0);
  KEA_TRACE_SPAN("fabric.run",
                 {{"requests", std::to_string(requests.size())},
                  {"budget_machines", std::to_string(budget)},
                  {"journaled", ctx ? "1" : "0"}});

  // One journaled step — identical discipline to GuardrailedRollout: REPLAY
  // below durable_seq, RE-DRIVE from the recorded payload, FRESH otherwise,
  // with crash points bracketing the append. Without a context the step runs
  // bare (payload + effect, no journal).
  auto step = [&](DeploymentLedger::EventType type, const std::string& key,
                  const std::string& crash,
                  const std::function<std::string()>& make_payload,
                  const std::function<Status(const std::string&)>& effect,
                  std::string* out_payload) -> Status {
    if (ctx == nullptr) {
      std::string payload = make_payload();
      if (effect) KEA_RETURN_IF_ERROR(effect(payload));
      *out_payload = std::move(payload);
      return Status::OK();
    }
    const DeploymentLedger::Event* ev = ctx->ledger->Find(key);
    if (ev != nullptr && ev->seq < ctx->durable_seq) {
      StepReplayedCounter()->Increment();
      *out_payload = ev->payload;
      return Status::OK();
    }
    KEA_RETURN_IF_ERROR(CrashPoints::Check(crash + ".pre"));
    std::string payload;
    uint64_t seq = 0;
    if (ev != nullptr) {
      StepRedrivenCounter()->Increment();
      payload = ev->payload;
      seq = ev->seq;
    } else {
      StepFreshCounter()->Increment();
      payload = make_payload();
      KEA_ASSIGN_OR_RETURN(const DeploymentLedger::Event* appended,
                           ctx->ledger->Append(type, key, payload));
      seq = appended->seq;
    }
    KEA_RETURN_IF_ERROR(CrashPoints::Check(crash + ".post_record"));
    if (effect) KEA_RETURN_IF_ERROR(effect(payload));
    if (ctx->checkpoint) KEA_RETURN_IF_ERROR(ctx->checkpoint(seq + 1));
    *out_payload = payload;
    return Status::OK();
  };

  std::vector<FlightState> states(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    states[i].index = i;
    states[i].req = &requests[i];
    states[i].conclusion.flight = static_cast<int>(i);
    states[i].conclusion.name = requests[i].name;
  }

  Report report;
  report.flights.resize(requests.size());
  std::map<size_t, Reservation> reservations;  ///< By flight index.
  // Shadow flighting registry: every admitted partition is registered as a
  // flight over its planned window, so the FlightingService overlap check
  // independently proves no machine is ever in two arms at once.
  FlightingService shadow;
  sim::HourIndex now = start_hour;
  int adv_count = 0;

  auto reserved_racks_at = [&](sim::HourIndex hour) {
    std::set<int> racks;
    for (const auto& [idx, res] : reservations) {
      if (res.planned_end > hour) racks.insert(res.racks.begin(), res.racks.end());
    }
    return racks;
  };
  auto reserved_machines_at = [&](sim::HourIndex hour) {
    std::unordered_set<int> ids;
    for (const auto& [idx, res] : reservations) {
      if (res.planned_end > hour) {
        ids.insert(res.machines.begin(), res.machines.end());
      }
    }
    return ids;
  };
  auto flighted_now = [&] {
    size_t total = 0;
    for (const auto& [idx, res] : reservations) {
      if (res.running) total += res.flighted;
    }
    return total;
  };
  auto running_count = [&] {
    size_t total = 0;
    for (const auto& [idx, res] : reservations) {
      if (res.running) ++total;
    }
    return total;
  };

  // Starts one admitted flight: journals the admission + the patch with its
  // per-machine priors, applies the patch, books the reservation.
  auto start_flight = [&](FlightState& st, const Assignment* fresh_assignment)
      -> Status {
    const std::string fkey = prefix + "/f" + std::to_string(st.index);
    std::string payload;
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kFlightAdmitted, fkey + "/admitted",
        "fabric.admitted",
        [&] {
          StateWriter w;
          w.PutI64(now);
          w.PutI64(now + st.req->window_hours * st.req->num_windows);
          w.PutU64(st.conclusion.deferrals);
          PutIntVec(&w, fresh_assignment->racks);
          PutIntVec(&w, fresh_assignment->treatment);
          PutIntVec(&w, fresh_assignment->control);
          return w.Release();
        },
        nullptr, &payload));
    {
      StateReader r(payload);
      int64_t start = 0, end = 0;
      KEA_RETURN_IF_ERROR(r.GetI64(&start));
      KEA_RETURN_IF_ERROR(r.GetI64(&end));
      KEA_RETURN_IF_ERROR(r.GetU64(&st.conclusion.deferrals));
      KEA_RETURN_IF_ERROR(GetIntVec(&r, &st.conclusion.racks));
      KEA_RETURN_IF_ERROR(GetIntVec(&r, &st.conclusion.treatment_machines));
      KEA_RETURN_IF_ERROR(GetIntVec(&r, &st.conclusion.control_machines));
      st.conclusion.start_hour = static_cast<sim::HourIndex>(start);
      st.planned_end = static_cast<sim::HourIndex>(end);
      st.conclusion.admitted = true;
    }

    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kFlightStarted, fkey + "/started",
        "fabric.started",
        [&] {
          StateWriter w;
          w.PutString(EncodeConfigPatch(st.req->treatment));
          const auto& machines = cluster->machines();
          w.PutU64(st.conclusion.treatment_machines.size());
          for (int id : st.conclusion.treatment_machines) {
            const sim::Machine& m = machines[static_cast<size_t>(id)];
            w.PutInt(id);
            w.PutInt(m.max_containers);
            w.PutInt(st.req->treatment.max_containers
                         ? *st.req->treatment.max_containers
                         : m.max_containers);
            w.PutDouble(m.power_cap_fraction);
            w.PutBool(m.feature_enabled);
            w.PutInt(m.sc);
          }
          w.PutU64(options_.down_hours
                       ? options_.down_hours(st.conclusion.treatment_machines)
                       : 0);
          w.PutU64(options_.down_hours
                       ? options_.down_hours(st.conclusion.control_machines)
                       : 0);
          return w.Release();
        },
        [&](const std::string& p) -> Status {
          StateReader r(p);
          std::string patch_blob;
          KEA_RETURN_IF_ERROR(r.GetString(&patch_blob));
          ConfigPatch patch;
          KEA_RETURN_IF_ERROR(DecodeConfigPatch(patch_blob, &patch));
          uint64_t count = 0;
          KEA_RETURN_IF_ERROR(r.GetU64(&count));
          std::vector<int> ids;
          ids.reserve(count);
          for (uint64_t i = 0; i < count; ++i) {
            Prior prior;
            KEA_RETURN_IF_ERROR(r.GetInt(&prior.id));
            KEA_RETURN_IF_ERROR(r.GetInt(&prior.old_max));
            KEA_RETURN_IF_ERROR(r.GetInt(&prior.new_max));
            KEA_RETURN_IF_ERROR(r.GetDouble(&prior.power));
            KEA_RETURN_IF_ERROR(r.GetBool(&prior.feature));
            KEA_RETURN_IF_ERROR(r.GetInt(&prior.sc));
            ids.push_back(prior.id);
          }
          return ApplyPatch(patch, ids, cluster);
        },
        &payload));
    {
      // The recorded priors are the rollback authority.
      StateReader r(payload);
      std::string patch_blob;
      KEA_RETURN_IF_ERROR(r.GetString(&patch_blob));
      uint64_t count = 0;
      KEA_RETURN_IF_ERROR(r.GetU64(&count));
      st.priors.assign(count, Prior{});
      for (uint64_t i = 0; i < count; ++i) {
        Prior& prior = st.priors[i];
        KEA_RETURN_IF_ERROR(r.GetInt(&prior.id));
        KEA_RETURN_IF_ERROR(r.GetInt(&prior.old_max));
        KEA_RETURN_IF_ERROR(r.GetInt(&prior.new_max));
        KEA_RETURN_IF_ERROR(r.GetDouble(&prior.power));
        KEA_RETURN_IF_ERROR(r.GetBool(&prior.feature));
        KEA_RETURN_IF_ERROR(r.GetInt(&prior.sc));
      }
      KEA_RETURN_IF_ERROR(r.GetU64(&st.start_treatment_down));
      KEA_RETURN_IF_ERROR(r.GetU64(&st.start_control_down));
    }

    // Register the partition in the shadow FlightingService: its overlap
    // rejection independently enforces "no machine in two arms at once".
    FlightSpec spec;
    spec.name = st.req->name.empty() ? ("flight" + std::to_string(st.index))
                                     : st.req->name;
    spec.machine_ids = st.conclusion.treatment_machines;
    spec.machine_ids.insert(spec.machine_ids.end(),
                            st.conclusion.control_machines.begin(),
                            st.conclusion.control_machines.end());
    spec.start_hour = st.conclusion.start_hour;
    spec.end_hour = st.planned_end;
    spec.patch = st.req->treatment;
    StatusOr<FlightId> registered = shadow.CreateFlight(std::move(spec));
    if (!registered.ok()) {
      return Status::Internal("fabric admitted interfering flights: " +
                              registered.status().message());
    }

    Reservation res;
    res.racks.insert(st.conclusion.racks.begin(), st.conclusion.racks.end());
    res.machines.insert(st.conclusion.treatment_machines.begin(),
                        st.conclusion.treatment_machines.end());
    res.machines.insert(st.conclusion.control_machines.begin(),
                        st.conclusion.control_machines.end());
    res.planned_end = st.planned_end;
    res.running = true;
    res.flighted = st.conclusion.treatment_machines.size() +
                   st.conclusion.control_machines.size();
    reservations[st.index] = std::move(res);
    st.running = true;
    AdmittedCounter()->Increment();
    ++report.admitted;
    return Status::OK();
  };

  // Concludes one flight: journals the (tripped or estimated) conclusion and
  // restores the pre-flight configuration. Restoration is idempotent, so a
  // re-driven conclude after a trip's rollback is harmless.
  auto conclude_flight = [&](FlightState& st) -> Status {
    const std::string fkey = prefix + "/f" + std::to_string(st.index);
    st.conclusion.machines_restored = st.priors.size();
    std::string payload;
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kFlightConcluded, fkey + "/concluded",
        "fabric.concluded",
        [&] {
          if (options_.down_hours) {
            st.conclusion.treatment_down_hours =
                options_.down_hours(st.conclusion.treatment_machines) -
                st.start_treatment_down;
            st.conclusion.control_down_hours =
                options_.down_hours(st.conclusion.control_machines) -
                st.start_control_down;
          }
          return EncodeConclusion(st.conclusion);
        },
        [&](const std::string&) { return RestorePriors(st.priors, cluster); },
        &payload));
    KEA_RETURN_IF_ERROR(DecodeConclusion(payload, &st.conclusion));
    st.running = false;
    st.finished = true;
    reservations[st.index].running = false;
    ConcludedCounter()->Increment();
    return Status::OK();
  };

  // The deterministic scheduling loop: admission pass (request order), then
  // advance to the next slice boundary, then guardrail verdicts for every
  // flight whose boundary this is.
  while (true) {
    // --- Admission pass.
    for (FlightState& st : states) {
      if (st.finished || st.running || st.conclusion.admitted) continue;
      const std::string admit_key =
          prefix + "/f" + std::to_string(st.index) + "/admitted";
      const DeploymentLedger::Event* admitted_ev =
          ctx != nullptr ? ctx->ledger->Find(admit_key) : nullptr;
      if (admitted_ev != nullptr) {
        // Journaled admission: the record is the authority. It may belong to
        // a later boundary of the re-driven schedule — only replay it when
        // the clock matches its recorded start.
        StateReader r(admitted_ev->payload);
        int64_t recorded_start = 0;
        KEA_RETURN_IF_ERROR(r.GetI64(&recorded_start));
        if (recorded_start != static_cast<int64_t>(now)) continue;
        KEA_RETURN_IF_ERROR(start_flight(st, nullptr));
        continue;
      }

      const FlightRequest& req = *st.req;
      std::set<int> busy_racks = reserved_racks_at(now);
      std::unordered_set<int> busy_machines = reserved_machines_at(now);
      Assignment assign =
          req.pinned_machines.empty()
              ? AssignFromRacks(*cluster, req, busy_racks, false)
              : AssignPinned(*cluster, req, busy_racks, busy_machines, false);
      InterferenceReason blocked = assign.blocked;
      bool permanent = false;
      if (blocked != InterferenceReason::kNone) {
        // Temporarily blocked, or impossible even on an idle fabric?
        Assignment idle =
            req.pinned_machines.empty()
                ? AssignFromRacks(*cluster, req, {}, true)
                : AssignPinned(*cluster, req, {}, {}, true);
        if (idle.blocked != InterferenceReason::kNone) {
          blocked = idle.blocked;
          permanent = true;
        } else if (blocked == InterferenceReason::kInsufficientMachines) {
          // Enough machines exist, they are just reserved right now.
          blocked = InterferenceReason::kSharedRack;
        }
      } else {
        // Capacity knobs couple through the work-conserving scheduler: two
        // concurrent flights moving max_containers would confound each other
        // (and the blast-radius accounting), so they serialize.
        if (req.treatment.max_containers) {
          for (const FlightState& other : states) {
            if (other.running && other.req->treatment.max_containers) {
              blocked = InterferenceReason::kKnobInteraction;
              break;
            }
          }
        }
        if (blocked == InterferenceReason::kNone) {
          size_t cand = assign.treatment.size() + assign.control.size();
          if (cand > budget) {
            blocked = InterferenceReason::kBlastRadiusBudget;
            permanent = true;
          } else if (flighted_now() + cand > budget) {
            blocked = InterferenceReason::kBlastRadiusBudget;
          }
        }
      }

      if (blocked == InterferenceReason::kNone) {
        KEA_RETURN_IF_ERROR(start_flight(st, &assign));
      } else if (permanent) {
        st.conclusion.rejected = blocked;
        st.finished = true;
        RejectedCounter()->Increment();
        ++report.rejected;
      } else {
        ++st.conclusion.deferrals;
        DeferralsCounter()->Increment();
      }
    }
    report.max_concurrent = std::max(report.max_concurrent, running_count());
    report.peak_flighted_machines =
        std::max(report.peak_flighted_machines, flighted_now());

    // --- Done?
    bool any_pending = false, any_running = false;
    for (const FlightState& st : states) {
      if (st.running) any_running = true;
      if (!st.finished && !st.running) any_pending = true;
    }
    if (!any_pending && !any_running) break;

    // --- Advance to the next slice boundary: the earliest upcoming window
    // boundary of a running flight, or — when only deferred requests remain —
    // the earliest reservation expiry that frees capacity.
    sim::HourIndex next = -1;
    for (const FlightState& st : states) {
      if (!st.running) continue;
      sim::HourIndex boundary = st.conclusion.start_hour +
                                (st.windows_done + 1) * st.req->window_hours;
      if (next < 0 || boundary < next) next = boundary;
    }
    if (next < 0 && any_pending) {
      for (const auto& [idx, res] : reservations) {
        if (res.planned_end > now && (next < 0 || res.planned_end < next)) {
          next = res.planned_end;
        }
      }
    }
    if (next <= now) {
      return Status::Internal("experiment fabric made no progress at hour " +
                              std::to_string(now));
    }
    std::string payload;
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kFabricAdvanced,
        prefix + "/adv" + std::to_string(adv_count), "fabric.advanced",
        [&] {
          StateWriter w;
          w.PutI64(now);
          w.PutI64(next);
          return w.Release();
        },
        [&](const std::string& p) -> Status {
          StateReader r(p);
          int64_t from = 0, to = 0;
          KEA_RETURN_IF_ERROR(r.GetI64(&from));
          KEA_RETURN_IF_ERROR(r.GetI64(&to));
          return advance(static_cast<int>(to - from));
        },
        &payload));
    ++adv_count;
    {
      StateReader r(payload);
      int64_t from = 0, to = 0;
      KEA_RETURN_IF_ERROR(r.GetI64(&from));
      KEA_RETURN_IF_ERROR(r.GetI64(&to));
      now = static_cast<sim::HourIndex>(to);
    }

    // --- Guardrail verdicts for every flight whose boundary this is. The
    // window evaluations (and completion-time effect estimates) are computed
    // in parallel — pure functions of (store, arms, windows), so the result
    // is bit-identical at any thread count — then journaled serially in
    // flight order.
    std::vector<size_t> due;
    for (FlightState& st : states) {
      if (!st.running) continue;
      sim::HourIndex boundary = st.conclusion.start_hour +
                                (st.windows_done + 1) * st.req->window_hours;
      if (boundary == now) due.push_back(st.index);
    }
    KEA_TRACE_SPAN("fabric.window", {{"hour", std::to_string(now)},
                                     {"flights", std::to_string(due.size())}});
    std::vector<GuardrailEvaluation> evals(due.size());
    std::vector<FlightConclusion> estimates(due.size());
    common::ThreadPool::Run(
        options_.num_threads, due.size(), [&](size_t i) {
          FlightState& st = states[due[i]];
          sim::HourIndex baseline_begin = std::max(
              0, st.conclusion.start_hour - options_.baseline_hours);
          evals[i] = EvaluateGuardrails(
              *store, st.req->guardrails, st.conclusion.treatment_machines,
              baseline_begin, st.conclusion.start_hour,
              now - st.req->window_hours, now);
          if (st.windows_done + 1 == st.req->num_windows) {
            estimates[i] = st.conclusion;
            estimates[i].end_hour = now;
            EstimateEffects(*store, &estimates[i]);
          }
        });

    for (size_t i = 0; i < due.size(); ++i) {
      FlightState& st = states[due[i]];
      const std::string fkey = prefix + "/f" + std::to_string(st.index);
      const int window = st.windows_done;
      KEA_RETURN_IF_ERROR(step(
          DeploymentLedger::EventType::kFlightVerdict,
          fkey + "/win" + std::to_string(window), "fabric.verdict",
          [&] { return GuardrailedRollout::EncodeEvaluation(evals[i]); },
          nullptr, &payload));
      GuardrailEvaluation eval;
      KEA_RETURN_IF_ERROR(
          GuardrailedRollout::DecodeEvaluation(payload, &eval));
      ++st.windows_done;

      if (!eval.pass()) {
        // Trip: roll back exactly this flight, conclude it tripped. Its
        // reservation stays until the planned horizon ends.
        TripsCounter()->Increment();
        ++report.trips;
        st.conclusion.tripped = true;
        st.conclusion.tripped_window = window;
        st.conclusion.trip_eval = eval;
        st.conclusion.end_hour = now;
        KEA_RETURN_IF_ERROR(step(
            DeploymentLedger::EventType::kFlightRollback, fkey + "/rollback",
            "fabric.rollback",
            [&] {
              StateWriter w;
              w.PutU64(st.priors.size());
              return w.Release();
            },
            [&](const std::string&) {
              return RestorePriors(st.priors, cluster);
            },
            &payload));
        RollbacksCounter()->Increment();
        KEA_RETURN_IF_ERROR(conclude_flight(st));
      } else if (st.windows_done == st.req->num_windows) {
        st.conclusion = estimates[i];
        KEA_RETURN_IF_ERROR(conclude_flight(st));
      }
    }
  }

  for (FlightState& st : states) {
    report.flights[st.index] = st.conclusion;
  }
  report.end_hour = now;
  return report;
}

}  // namespace kea::core
