#include "core/experiment_runner.h"

#include "telemetry/perf_monitor.h"

namespace kea::core {

StatusOr<TimeSlicingResult> RunTimeSlicingExperiment(
    sim::Cluster* cluster, sim::FluidEngine* engine,
    telemetry::TelemetryStore* store, const std::vector<int>& machines,
    const ConfigPatch& treatment, sim::HourIndex start_hour,
    sim::HourIndex end_hour, int window_hours) {
  if (cluster == nullptr || engine == nullptr || store == nullptr) {
    return Status::InvalidArgument("null cluster/engine/store");
  }
  if (machines.empty()) return Status::InvalidArgument("no experiment machines");
  if (treatment.empty()) return Status::InvalidArgument("empty treatment patch");

  TimeSlicingResult result;
  KEA_ASSIGN_OR_RETURN(result.schedule,
                       TimeSlicingSchedule(start_hour, end_hour, window_hours));

  FlightingService flighting;
  for (const TimeSlice& slice : result.schedule) {
    if (slice.treatment) {
      KEA_ASSIGN_OR_RETURN(
          FlightId flight,
          flighting.CreateFlight({"slice", machines, slice.start_hour,
                                  slice.end_hour, treatment}));
      KEA_RETURN_IF_ERROR(flighting.Begin(flight, cluster));
      KEA_RETURN_IF_ERROR(engine->Run(slice.start_hour,
                                      slice.end_hour - slice.start_hour, store));
      KEA_RETURN_IF_ERROR(flighting.End(flight, cluster));
      result.treatment_hours += slice.end_hour - slice.start_hour;
    } else {
      KEA_RETURN_IF_ERROR(engine->Run(slice.start_hour,
                                      slice.end_hour - slice.start_hour, store));
      result.control_hours += slice.end_hour - slice.start_hour;
    }
  }

  // Split the machine-hour observations by which arm's window they fall in.
  auto in_arm = [&result](sim::HourIndex hour, bool treatment_arm) {
    for (const TimeSlice& slice : result.schedule) {
      if (hour >= slice.start_hour && hour < slice.end_hour) {
        return slice.treatment == treatment_arm;
      }
    }
    return false;
  };
  auto machine_filter = telemetry::MachineSetFilter(machines);

  std::vector<double> control_data, treatment_data;
  std::vector<double> control_latency, treatment_latency;
  for (const auto& r : store->records()) {
    if (!machine_filter(r) || r.tasks_finished <= 0.0) continue;
    if (in_arm(r.hour, false)) {
      control_data.push_back(r.data_read_mb);
      control_latency.push_back(r.avg_task_latency_s);
    } else if (in_arm(r.hour, true)) {
      treatment_data.push_back(r.data_read_mb);
      treatment_latency.push_back(r.avg_task_latency_s);
    }
  }

  KEA_ASSIGN_OR_RETURN(result.data_read,
                       EstimateTreatmentEffect("Total Data Read (MB/machine-hour)",
                                               control_data, treatment_data));
  KEA_ASSIGN_OR_RETURN(
      result.task_latency,
      EstimateTreatmentEffect("Average Task Execution Time (s)", control_latency,
                              treatment_latency));
  return result;
}

}  // namespace kea::core
