#include "core/model_report.h"

#include "common/csv.h"

namespace kea::core {

std::string WhatIfModelsToCsv(const WhatIfEngine& engine) {
  CsvWriter writer;
  writer.SetHeader({"group", "num_machines",
                    "g_intercept", "g_slope", "g_r2",
                    "h_intercept", "h_slope", "h_r2",
                    "f_intercept", "f_slope", "f_r2",
                    "median_containers", "median_utilization",
                    "median_tasks_per_hour", "median_latency_s"});
  auto d = [](double v) { return std::to_string(v); };
  for (const auto& [key, gm] : engine.models()) {
    (void)writer.AppendRow({sim::GroupLabel(key), std::to_string(gm.num_machines),
                            d(gm.g.intercept()), d(gm.g.coefficients()[0]),
                            d(gm.g_fit.r2), d(gm.h.intercept()),
                            d(gm.h.coefficients()[0]), d(gm.h_fit.r2),
                            d(gm.f.intercept()), d(gm.f.coefficients()[0]),
                            d(gm.f_fit.r2), d(gm.current_containers),
                            d(gm.current_utilization), d(gm.current_tasks_per_hour),
                            d(gm.current_latency_s)});
  }
  return writer.ToString();
}

Status SaveWhatIfModels(const WhatIfEngine& engine, const std::string& path) {
  KEA_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(WhatIfModelsToCsv(engine)));
  CsvWriter writer;
  writer.SetHeader(table.header);
  for (const auto& row : table.rows) {
    KEA_RETURN_IF_ERROR(writer.AppendRow(row));
  }
  return writer.WriteFile(path);
}

}  // namespace kea::core
