#include "core/model_health.h"

#include <algorithm>

#include "common/snapshot.h"
#include "obs/metrics.h"

namespace kea::core {

namespace {

obs::Counter* TripsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("model_health.trips");
  return c;
}
obs::Counter* RefitsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("model_health.refits");
  return c;
}
obs::Counter* RefitFailuresCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("model_health.refit_failures");
  return c;
}
obs::Counter* SafeModeRoundsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("model_health.safe_mode_rounds");
  return c;
}

}  // namespace

const char* ModelHealth::StateName(State s) {
  switch (s) {
    case State::kHealthy:
      return "HEALTHY";
    case State::kTripped:
      return "TRIPPED";
    case State::kRefitting:
      return "REFITTING";
    case State::kRearmed:
      return "RE-ARMED";
  }
  return "UNKNOWN";
}

void ModelHealth::Trip(const std::string& reason, sim::HourIndex hour) {
  if (state_ == State::kTripped || state_ == State::kRefitting) return;
  state_ = State::kTripped;
  trip_reason_ = reason;
  tripped_at_ = hour;
  retry_after_ = hour + options_.refit_delay_hours;
  probation_left_ = 0;
  ++trips_;
  TripsCounter()->Increment();
}

bool ModelHealth::ObserveValidation(const ValidationReport& report,
                                    sim::HourIndex hour) {
  double error = std::max(report.max_latency_error,
                          report.max_utilization_error);
  last_error_ = error;
  if (in_safe_mode()) return false;

  if (error > options_.residual_tolerance) {
    Trip("residual error above tolerance", hour);
    return true;
  }
  double baseline = std::max(baseline_error_, options_.min_baseline_error);
  if (baseline_error_ > 0.0 && error > options_.residual_inflation * baseline) {
    Trip("residual inflation over baseline", hour);
    return true;
  }
  // A healthy validation becomes (or refreshes toward) the known-good
  // baseline; keep the smallest seen so inflation is measured against the
  // model at its best.
  if (baseline_error_ == 0.0 || error < baseline_error_) {
    baseline_error_ = error;
  }
  return false;
}

bool ModelHealth::RefitDue(sim::HourIndex now) const {
  return state_ == State::kTripped && now >= retry_after_;
}

void ModelHealth::BeginRefit() {
  if (state_ != State::kTripped) return;
  state_ = State::kRefitting;
}

void ModelHealth::CompleteRefit(bool gate_passed, sim::HourIndex now) {
  if (state_ != State::kRefitting) return;
  if (gate_passed) {
    state_ = State::kRearmed;
    probation_left_ = options_.probation_rounds;
    // The refit's held-out error becomes the fresh inflation baseline once
    // the next healthy validation lands.
    baseline_error_ = 0.0;
    ++refits_;
    RefitsCounter()->Increment();
  } else {
    state_ = State::kTripped;
    retry_after_ = now + options_.refit_delay_hours;
    ++refit_failures_;
    RefitFailuresCounter()->Increment();
  }
}

void ModelHealth::NoteRound() {
  if (in_safe_mode()) {
    ++safe_mode_rounds_;
    SafeModeRoundsCounter()->Increment();
    return;
  }
  if (state_ == State::kRearmed && probation_left_ > 0) {
    if (--probation_left_ == 0) {
      state_ = State::kHealthy;
      trip_reason_.clear();
    }
  }
}

GuardrailThresholds ModelHealth::EffectiveGuardrails(
    const GuardrailThresholds& base) const {
  if (state_ != State::kRearmed) return base;
  GuardrailThresholds tightened = base;
  double s = options_.probation_margin_scale;
  tightened.max_latency_ratio = 1.0 + (base.max_latency_ratio - 1.0) * s;
  tightened.max_queue_p99_ratio = 1.0 + (base.max_queue_p99_ratio - 1.0) * s;
  tightened.queue_p99_floor_ms = base.queue_p99_floor_ms * s;
  return tightened;
}

std::string ModelHealth::SerializeState() const {
  StateWriter w;
  w.PutU32(static_cast<uint32_t>(state_));
  w.PutString(trip_reason_);
  w.PutI64(tripped_at_);
  w.PutI64(retry_after_);
  w.PutInt(probation_left_);
  w.PutDouble(baseline_error_);
  w.PutDouble(last_error_);
  w.PutU64(trips_);
  w.PutU64(refits_);
  w.PutU64(refit_failures_);
  w.PutU64(safe_mode_rounds_);
  return w.Release();
}

Status ModelHealth::RestoreState(const std::string& blob) {
  StateReader r(blob);
  uint32_t state = 0;
  std::string reason;
  int64_t tripped_at = 0, retry_after = 0;
  int probation_left = 0;
  double baseline_error = 0.0, last_error = 0.0;
  uint64_t trips = 0, refits = 0, refit_failures = 0, safe_mode_rounds = 0;
  KEA_RETURN_IF_ERROR(r.GetU32(&state));
  KEA_RETURN_IF_ERROR(r.GetString(&reason));
  KEA_RETURN_IF_ERROR(r.GetI64(&tripped_at));
  KEA_RETURN_IF_ERROR(r.GetI64(&retry_after));
  KEA_RETURN_IF_ERROR(r.GetInt(&probation_left));
  KEA_RETURN_IF_ERROR(r.GetDouble(&baseline_error));
  KEA_RETURN_IF_ERROR(r.GetDouble(&last_error));
  KEA_RETURN_IF_ERROR(r.GetU64(&trips));
  KEA_RETURN_IF_ERROR(r.GetU64(&refits));
  KEA_RETURN_IF_ERROR(r.GetU64(&refit_failures));
  KEA_RETURN_IF_ERROR(r.GetU64(&safe_mode_rounds));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in model-health state");
  }
  if (state > static_cast<uint32_t>(State::kRearmed)) {
    return Status::InvalidArgument("bad model-health state value");
  }
  state_ = static_cast<State>(state);
  trip_reason_ = std::move(reason);
  tripped_at_ = static_cast<sim::HourIndex>(tripped_at);
  retry_after_ = static_cast<sim::HourIndex>(retry_after);
  probation_left_ = probation_left;
  baseline_error_ = baseline_error;
  last_error_ = last_error;
  trips_ = trips;
  refits_ = refits;
  refit_failures_ = refit_failures;
  safe_mode_rounds_ = safe_mode_rounds;
  return Status::OK();
}

}  // namespace kea::core
