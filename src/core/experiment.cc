#include "core/experiment.h"

#include <algorithm>
#include <map>
#include <set>

namespace kea::core {

StatusOr<ExperimentAssignment> IdealAssignment(const sim::Cluster& cluster,
                                               sim::SkuId sku, int max_racks,
                                               int min_per_arm) {
  if (max_racks <= 0) return Status::InvalidArgument("max_racks must be positive");
  if (min_per_arm <= 0) return Status::InvalidArgument("min_per_arm must be positive");

  // Machines of the SKU, by rack, in id order (racks are homogeneous in SKU).
  std::map<int, std::vector<int>> by_rack;
  for (const sim::Machine& m : cluster.machines()) {
    if (m.sku == sku) by_rack[m.rack].push_back(m.id);
  }
  if (by_rack.empty()) {
    return Status::FailedPrecondition("no machines with the requested SKU");
  }

  ExperimentAssignment assignment;
  int racks_used = 0;
  for (const auto& [rack, ids] : by_rack) {
    if (racks_used >= max_racks) break;
    ++racks_used;
    // "Every other machine in the rack", stratified by software
    // configuration: machines alternate SC within a rack, so pairing must
    // happen within each SC or the arms would each get a single SC and the
    // comparison would measure SC2-vs-SC1 instead of the treatment.
    std::map<sim::ScId, std::vector<int>> by_sc;
    for (int id : ids) {
      by_sc[cluster.machines()[static_cast<size_t>(id)].sc].push_back(id);
    }
    for (const auto& [sc, sc_ids] : by_sc) {
      for (size_t i = 0; i < sc_ids.size(); ++i) {
        if (i % 2 == 0) {
          assignment.control.push_back(sc_ids[i]);
        } else {
          assignment.treatment.push_back(sc_ids[i]);
        }
      }
    }
  }
  if (assignment.control.size() < static_cast<size_t>(min_per_arm) ||
      assignment.treatment.size() < static_cast<size_t>(min_per_arm)) {
    return Status::FailedPrecondition(
        "not enough machines for the ideal experiment setting");
  }
  return assignment;
}

StatusOr<std::vector<TimeSlice>> TimeSlicingSchedule(sim::HourIndex start_hour,
                                                     sim::HourIndex end_hour,
                                                     int window_hours) {
  if (end_hour <= start_hour) {
    return Status::InvalidArgument("empty time-slicing horizon");
  }
  if (window_hours <= 0) {
    return Status::InvalidArgument("window_hours must be positive");
  }
  if ((end_hour - start_hour) < 2 * window_hours) {
    return Status::InvalidArgument("horizon shorter than two windows");
  }
  std::vector<TimeSlice> slices;
  bool treatment = false;
  for (sim::HourIndex h = start_hour; h + window_hours <= end_hour; h += window_hours) {
    slices.push_back(TimeSlice{h, h + window_hours, treatment});
    treatment = !treatment;
  }
  return slices;
}

StatusOr<std::vector<std::vector<int>>> HybridGroups(const sim::Cluster& cluster,
                                                     sim::SkuId sku, int num_groups,
                                                     int group_size) {
  if (num_groups <= 0 || group_size <= 0) {
    return Status::InvalidArgument("groups and sizes must be positive");
  }
  // Stratify candidates by software configuration: machines alternate SC
  // within a rack, so a naive round-robin deal would assign each group a
  // single SC and confound the experiment (group differences would measure
  // SC2-vs-SC1, not the treatment). Dealing each SC stratum separately keeps
  // every group balanced in both SC and rack coverage.
  std::map<sim::ScId, std::vector<int>> strata;
  size_t available = 0;
  for (const sim::Machine& m : cluster.machines()) {
    if (m.sku == sku) {
      strata[m.sc].push_back(m.id);
      ++available;
    }
  }
  size_t needed = static_cast<size_t>(num_groups) * static_cast<size_t>(group_size);
  if (available < needed) {
    return Status::FailedPrecondition(
        "not enough machines of the SKU for the hybrid setting: need " +
        std::to_string(needed) + ", have " + std::to_string(available));
  }
  std::vector<std::vector<int>> groups(static_cast<size_t>(num_groups));
  size_t deal = 0;
  for (const auto& [sc, ids] : strata) {
    for (int id : ids) {
      size_t g = deal % static_cast<size_t>(num_groups);
      if (groups[g].size() < static_cast<size_t>(group_size)) {
        groups[g].push_back(id);
      }
      ++deal;
    }
  }
  // Top up any group left short by stratum boundaries from leftover ids.
  for (auto& group : groups) {
    if (group.size() == static_cast<size_t>(group_size)) continue;
    std::set<int> used;
    for (const auto& g : groups) used.insert(g.begin(), g.end());
    for (const auto& [sc, ids] : strata) {
      for (int id : ids) {
        if (group.size() == static_cast<size_t>(group_size)) break;
        if (!used.count(id)) {
          group.push_back(id);
          used.insert(id);
        }
      }
    }
  }
  for (const auto& group : groups) {
    if (group.size() != static_cast<size_t>(group_size)) {
      return Status::Internal("hybrid group dealing failed to fill groups");
    }
  }
  return groups;
}

BalanceReport CheckBalance(const sim::Cluster& cluster,
                           const ExperimentAssignment& assignment) {
  BalanceReport report;
  report.control_size = assignment.control.size();
  report.treatment_size = assignment.treatment.size();

  std::map<int, int> rack_delta;
  for (int id : assignment.control) {
    rack_delta[cluster.machines()[static_cast<size_t>(id)].rack] += 1;
  }
  for (int id : assignment.treatment) {
    rack_delta[cluster.machines()[static_cast<size_t>(id)].rack] -= 1;
  }
  for (const auto& [rack, delta] : rack_delta) {
    report.max_rack_imbalance = std::max(report.max_rack_imbalance, std::abs(delta));
  }
  size_t size_gap = report.control_size > report.treatment_size
                        ? report.control_size - report.treatment_size
                        : report.treatment_size - report.control_size;
  report.balanced = size_gap <= report.control_size / 10 + 1 &&
                    report.max_rack_imbalance <= 1;
  return report;
}

}  // namespace kea::core
