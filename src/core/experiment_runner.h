#ifndef KEA_CORE_EXPERIMENT_RUNNER_H_
#define KEA_CORE_EXPERIMENT_RUNNER_H_

#include <vector>

#include "common/status.h"
#include "core/experiment.h"
#include "core/flighting.h"
#include "core/treatment.h"
#include "sim/fluid_engine.h"
#include "telemetry/store.h"

namespace kea::core {

/// Outcome of a time-slicing A/B experiment.
struct TimeSlicingResult {
  std::vector<TimeSlice> schedule;
  int control_hours = 0;
  int treatment_hours = 0;
  /// Effects computed over per-machine-hour observations: Total Data Read
  /// and mean task latency.
  TreatmentEffect data_read;
  TreatmentEffect task_latency;
};

/// Executes the *time-slicing* experiment setting (Section 7): the same
/// machines run the old and new configuration in alternating windows; the
/// treatment patch is flighted on and off at each boundary. The paper warns
/// that this popular industry setting is fragile — the window length
/// interacts with workload seasonality (use 5h, not 24h, "to avoid day of
/// week effects") — which the experiment-design ablation bench demonstrates.
///
/// Returns InvalidArgument on a degenerate horizon/window (via
/// TimeSlicingSchedule) and propagates simulator errors.
StatusOr<TimeSlicingResult> RunTimeSlicingExperiment(
    sim::Cluster* cluster, sim::FluidEngine* engine,
    telemetry::TelemetryStore* store, const std::vector<int>& machines,
    const ConfigPatch& treatment, sim::HourIndex start_hour,
    sim::HourIndex end_hour, int window_hours);

}  // namespace kea::core

#endif  // KEA_CORE_EXPERIMENT_RUNNER_H_
