#ifndef KEA_CORE_VALIDATION_H_
#define KEA_CORE_VALIDATION_H_

#include <vector>

#include "common/status.h"
#include "core/whatif.h"
#include "telemetry/store.h"

namespace kea::core {

/// Per-group comparison of the What-if Engine's predictions against
/// post-deployment observations.
struct GroupValidation {
  sim::MachineGroupKey group;
  size_t observations = 0;

  double observed_containers = 0.0;  ///< Median over the window.
  double predicted_utilization = 0.0;
  double observed_utilization = 0.0;
  double predicted_latency_s = 0.0;
  double observed_latency_s = 0.0;

  /// Relative errors |predicted - observed| / observed.
  double utilization_error = 0.0;
  double latency_error = 0.0;
  bool within_tolerance = false;
};

/// Deployment-window validation report.
struct ValidationReport {
  std::vector<GroupValidation> groups;
  double max_latency_error = 0.0;
  double max_utilization_error = 0.0;
  /// True when every validated group is within tolerance. When false, the
  /// Phase III loop should re-fit the models before the next rollout round.
  bool models_valid = false;
  /// Groups present in the telemetry but missing from the engine (new SKUs
  /// rolled out since the fit — a re-fit trigger on its own).
  std::vector<sim::MachineGroupKey> unmodeled_groups;
};

/// Phase III of the KEA methodology (Section 3.1): after flighting or
/// deployment, "DS fine-tunes the models and works closely with DX to
/// monitor the cluster behavior". The validator feeds that loop: it replays
/// the calibrated models against a post-change telemetry window and flags
/// drift — the signal to re-fit before trusting the next optimization round.
class ModelValidator {
 public:
  struct Options {
    /// Maximum tolerated relative error on group latency and utilization.
    double tolerance = 0.15;
    /// Minimum machine-hours per group to attempt validation.
    size_t min_observations = 24;
  };

  ModelValidator() : options_(Options()) {}
  explicit ModelValidator(const Options& options) : options_(options) {}

  /// Validates `engine` against the telemetry matching `window`. Returns
  /// FailedPrecondition when no group has enough observations.
  StatusOr<ValidationReport> Validate(const WhatIfEngine& engine,
                                      const telemetry::TelemetryStore& store,
                                      const telemetry::RecordFilter& window) const;

 private:
  Options options_;
};

}  // namespace kea::core

#endif  // KEA_CORE_VALIDATION_H_
