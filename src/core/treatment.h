#ifndef KEA_CORE_TREATMENT_H_
#define KEA_CORE_TREATMENT_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "ml/stats.h"

namespace kea::core {

/// Treatment-effect estimate for one metric: the before/after (or
/// control/treatment) comparison the paper evaluates deployments with
/// (Section 5.2.2, Table 4).
struct TreatmentEffect {
  std::string metric;
  double control_mean = 0.0;
  double treatment_mean = 0.0;
  /// (treatment - control) / control.
  double percent_change = 0.0;
  double t_value = 0.0;
  double p_value = 1.0;
  bool significant = false;  ///< At the 0.05 level.
};

/// Computes the treatment effect on a metric from per-unit observations
/// (machine-hours, machine-days...). Uses Student's t-test, as the paper
/// does. Returns InvalidArgument when either sample has < 2 observations,
/// FailedPrecondition when the control mean is ~0 (percent change undefined).
StatusOr<TreatmentEffect> EstimateTreatmentEffect(const std::string& metric,
                                                  const std::vector<double>& control,
                                                  const std::vector<double>& treatment);

/// Welch variant for arms with clearly unequal variances.
StatusOr<TreatmentEffect> EstimateTreatmentEffectWelch(
    const std::string& metric, const std::vector<double>& control,
    const std::vector<double>& treatment);

/// Difference-in-differences estimate: isolates a deployment's effect when a
/// plain before/after comparison would be confounded by a cluster-wide shift
/// (workload growth, seasonality). The control group's before->after drift is
/// subtracted from the treated group's.
struct DifferenceInDifferences {
  std::string metric;
  double control_change = 0.0;    ///< mean(control_after) - mean(control_before).
  double treatment_change = 0.0;  ///< mean(treated_after) - mean(treated_before).
  /// treatment_change - control_change: the deployment's isolated effect.
  double effect = 0.0;
  /// Effect as a fraction of the treated group's before mean.
  double percent_effect = 0.0;
  /// Welch t-test on the per-unit deltas (requires equal sample pairing by
  /// index within each group).
  double t_value = 0.0;
  double p_value = 1.0;
  bool significant = false;
};

/// Computes DiD from per-unit (e.g., per-machine) paired observations:
/// sample i of `*_before` and `*_after` must be the same unit. Returns
/// InvalidArgument on size mismatches or samples of < 2 units,
/// FailedPrecondition when the treated before-mean is ~0.
StatusOr<DifferenceInDifferences> EstimateDifferenceInDifferences(
    const std::string& metric, const std::vector<double>& control_before,
    const std::vector<double>& control_after,
    const std::vector<double>& treated_before,
    const std::vector<double>& treated_after);

}  // namespace kea::core

#endif  // KEA_CORE_TREATMENT_H_
