#ifndef KEA_CORE_DEPLOYMENT_LEDGER_H_
#define KEA_CORE_DEPLOYMENT_LEDGER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/journal.h"
#include "common/status.h"

namespace kea::core {

/// The write-ahead ledger of everything the control plane does to the fleet:
/// every DeploymentModule apply/rollback and every GuardrailedRollout wave
/// transition is journaled here *before* it takes effect. Each event carries
/// an idempotency key; appending a key that is already present is a no-op
/// that returns the original event, so a crashed-and-resumed round that
/// re-drives its steps records each exactly once.
///
/// The exactly-once contract is split between ledger and checkpoint:
///   - an event's effect becomes *durable* only when a later checkpoint
///     records a `ledger_durable_seq` above the event's sequence number;
///   - on resume, events below the checkpoint's durable_seq are replayed as
///     bookkeeping only (their effects are already inside the checkpoint),
///     events at or above it are re-driven deterministically.
class DeploymentLedger {
 public:
  enum class EventType {
    kRoundStarted = 0,   ///< Tuning round opened; payload carries the plan.
    kWaveStarted = 1,    ///< Rollout wave selected its sub-clusters.
    kWaveApplied = 2,    ///< Per-machine config deltas of one wave.
    kWaveObserved = 3,   ///< Observation window advanced for one wave.
    kWaveVerdict = 4,    ///< Guardrail evaluation for one wave.
    kRollback = 5,       ///< Guardrail trip: every applied wave restored.
    kRoundFinished = 6,  ///< Round closed; payload carries the outcome.
    kApply = 7,          ///< DeploymentModule::ApplyConservatively batch.
    kModuleRollback = 8, ///< DeploymentModule::RollbackLast.
    // Experiment fabric transitions (keys "fab<round>/..."). Every concurrent
    // A/B flight journals its lifecycle here with the same write-ahead +
    // idempotency discipline as rollout waves.
    kFabricStarted = 9,    ///< Fabric run opened; payload carries the queue.
    kFlightAdmitted = 10,  ///< Partition chosen: racks + both arms.
    kFlightStarted = 11,   ///< Patch applied; payload carries per-machine priors.
    kFabricAdvanced = 12,  ///< Clock advanced to the next slice boundary.
    kFlightVerdict = 13,   ///< Guardrail evaluation for one flight window.
    kFlightRollback = 14,  ///< Guardrail trip: one flight's priors restored.
    kFlightConcluded = 15, ///< Flight done; payload carries the conclusion.
    kFabricFinished = 16,  ///< Fabric run closed; payload carries the report.
  };

  struct Event {
    uint64_t seq = 0;     ///< Position in the ledger, dense from 0.
    EventType type = EventType::kRoundStarted;
    std::string key;      ///< Idempotency key, unique in the ledger.
    std::string payload;  ///< Bit-exact binary blob (StateWriter format).
  };

  static const char* EventTypeToString(EventType type);

  /// Opens (or creates) the ledger backed by the journal at `path`. Torn
  /// tails are recovered by the journal layer; a record that decodes to a
  /// duplicate key is rejected as corruption.
  static StatusOr<std::unique_ptr<DeploymentLedger>> Open(const std::string& path);

  /// Write-ahead append. If `key` is already present, nothing is written and
  /// the existing event is returned — replaying a journaled step is
  /// exactly-once by construction. The returned pointer is invalidated by the
  /// next Append.
  StatusOr<const Event*> Append(EventType type, const std::string& key,
                                const std::string& payload);

  const Event* Find(const std::string& key) const;
  bool Has(const std::string& key) const { return Find(key) != nullptr; }

  const std::vector<Event>& events() const { return events_; }
  /// Sequence number the next appended event will get (== events().size()).
  uint64_t next_seq() const { return events_.size(); }
  const Journal::RecoveryInfo& recovery() const { return journal_->recovery(); }

  /// Dry-run integrity check of the backing journal on disk
  /// (Journal::Scrub without repair): CRC-verifies every record and reports
  /// the valid-prefix boundary. Read-only — never truncates, quarantines,
  /// or rewrites, so it is safe to call on a live ledger.
  StatusOr<Journal::ScrubReport> VerifyIntegrity() const;

  /// CSV dump of every applied change in the ledger — per-machine rows from
  /// rollout waves (kWaveApplied) and per-group rows from module batches
  /// (kApply), in ledger order. Columns:
  ///   seq,key,kind,sc,sku,machine_id,old_max_containers,new_max_containers
  /// with -1 for fields a row kind does not carry.
  std::string AppliedChangesCsv() const;

 private:
  explicit DeploymentLedger(std::unique_ptr<Journal> journal)
      : journal_(std::move(journal)) {}

  std::unique_ptr<Journal> journal_;
  std::vector<Event> events_;
  std::unordered_map<std::string, size_t> by_key_;
};

}  // namespace kea::core

#endif  // KEA_CORE_DEPLOYMENT_LEDGER_H_
