#include "core/guardrailed_rollout.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <tuple>
#include <unordered_set>

#include "common/crash_point.h"
#include "common/snapshot.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace kea::core {
namespace {

// Deterministic rollout counters: wave/trip/rollback totals are logical
// events (the rollout loop is single-threaded). The durable.step_* trio
// classifies journaled steps on resume — REPLAY (checkpoint already holds
// the effect), RE-DRIVE (journaled intent, effect re-run), FRESH (new) —
// the audit trail that explains what a recovery actually did.
obs::Counter* WavesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("rollout.waves");
  return c;
}
obs::Counter* TripsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("rollout.guardrail_trips");
  return c;
}
obs::Counter* RollbacksCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("rollout.rollbacks");
  return c;
}
obs::Counter* MachinesRestoredCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("rollout.machines_restored");
  return c;
}
obs::Counter* StepReplayedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_replayed");
  return c;
}
obs::Counter* StepRedrivenCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_redriven");
  return c;
}
obs::Counter* StepFreshCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("durable.step_fresh");
  return c;
}

/// Guardrail metrics of one telemetry window restricted to a machine set.
struct WindowMetrics {
  size_t records = 0;
  double tasks = 0.0;
  double latency_s = 0.0;      ///< Task-weighted mean latency (W-bar).
  double queue_p99_ms = 0.0;
  double utilization = 0.0;    ///< Mean CPU utilization.
  /// Records whose mean task latency exceeded the SLO target (0 when the
  /// SLO guardrail is disabled).
  size_t slo_bad = 0;
};

WindowMetrics Measure(const telemetry::TelemetryStore& store,
                      const std::unordered_set<int>& machine_ids,
                      sim::HourIndex begin, sim::HourIndex end,
                      double slo_target_latency_s = 0.0) {
  WindowMetrics m;
  double weighted_latency = 0.0, util_sum = 0.0;
  std::vector<double> queue_latencies;
  for (const auto& r : store.records()) {
    if (r.hour < begin || r.hour >= end) continue;
    if (!machine_ids.empty() && machine_ids.count(r.machine_id) == 0) continue;
    if (!std::isfinite(r.cpu_utilization) || !std::isfinite(r.avg_task_latency_s) ||
        !std::isfinite(r.tasks_finished) || !std::isfinite(r.queue_latency_ms)) {
      continue;
    }
    ++m.records;
    if (slo_target_latency_s > 0.0 &&
        r.avg_task_latency_s > slo_target_latency_s) {
      ++m.slo_bad;
    }
    m.tasks += r.tasks_finished;
    weighted_latency += r.avg_task_latency_s * r.tasks_finished;
    util_sum += r.cpu_utilization;
    queue_latencies.push_back(r.queue_latency_ms);
  }
  if (m.records == 0) return m;
  m.latency_s = m.tasks > 0.0 ? weighted_latency / m.tasks : 0.0;
  m.utilization = util_sum / static_cast<double>(m.records);
  std::sort(queue_latencies.begin(), queue_latencies.end());
  size_t p99 = static_cast<size_t>(0.99 * static_cast<double>(queue_latencies.size()));
  m.queue_p99_ms = queue_latencies[std::min(p99, queue_latencies.size() - 1)];
  return m;
}

/// Per-group targets clamped to +-max_step of the current configuration,
/// exactly like DeploymentModule::ApplyConservatively. No-ops are omitted.
std::map<sim::MachineGroupKey, int> ClampTargets(
    const std::vector<GroupRecommendation>& recommendations,
    const DeploymentModule::Options& deploy) {
  std::map<sim::MachineGroupKey, int> targets;
  for (const GroupRecommendation& rec : recommendations) {
    int delta = rec.recommended_max_containers - rec.current_max_containers;
    int clamped = std::clamp(delta, -deploy.max_step, deploy.max_step);
    int target =
        std::max(rec.current_max_containers + clamped, deploy.min_containers);
    if (target != rec.current_max_containers) targets[rec.group] = target;
  }
  return targets;
}

}  // namespace

std::string GuardrailEvaluation::Describe() const {
  if (!measurable) return "guardrails unmeasurable (no usable telemetry)";
  std::string out;
  auto add = [&out](const char* name, bool ok, double base, double observed) {
    out += name;
    out += ok ? " ok (" : " TRIPPED (";
    out += std::to_string(base) + " -> " + std::to_string(observed) + ") ";
  };
  add("latency", latency_ok, baseline_latency_s, observed_latency_s);
  add("queue_p99", queue_ok, baseline_queue_p99_ms, observed_queue_p99_ms);
  add("utilization", utilization_ok, baseline_utilization, observed_utilization);
  if (slo_checked) {
    out += "slo_burn";
    out += slo_ok ? " ok (" : " TRIPPED (";
    out += std::to_string(observed_slo_burn) + ") ";
  }
  return out;
}

GuardrailedRollout::GuardrailedRollout(const Options& options) : options_(options) {}

Status GuardrailedRollout::ValidateOptions() const {
  if (options_.wave_fractions.empty()) {
    return Status::InvalidArgument("rollout needs at least one wave");
  }
  double prev = 0.0;
  for (double f : options_.wave_fractions) {
    if (f <= prev || f > 1.0) {
      return Status::InvalidArgument(
          "wave_fractions must be strictly increasing within (0, 1]");
    }
    prev = f;
  }
  if (options_.observe_hours_per_wave <= 0) {
    return Status::InvalidArgument("observe_hours_per_wave must be positive");
  }
  if (options_.baseline_hours <= 0) {
    return Status::InvalidArgument("baseline_hours must be positive");
  }
  return Status::OK();
}

StatusOr<GuardrailedRollout::MachineSnapshot> GuardrailedRollout::ApplyWave(
    const std::vector<int>& machine_ids,
    const std::map<sim::MachineGroupKey, int>& targets, sim::Cluster* cluster) {
  MachineSnapshot snapshot;
  auto& machines = cluster->mutable_machines();
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
    sim::Machine& m = machines[static_cast<size_t>(id)];
    auto it = targets.find(m.group());
    if (it == targets.end() || m.max_containers == it->second) continue;
    snapshot.emplace_back(id, m.max_containers);
    m.max_containers = it->second;
  }
  return snapshot;
}

GuardrailEvaluation GuardrailedRollout::Evaluate(
    const telemetry::TelemetryStore& store, const std::vector<int>& machine_ids,
    sim::HourIndex baseline_begin, sim::HourIndex baseline_end,
    sim::HourIndex begin, sim::HourIndex end) const {
  std::unordered_set<int> ids(machine_ids.begin(), machine_ids.end());
  const double slo_target = options_.guardrails.slo_target_latency_s;
  WindowMetrics baseline = Measure(store, ids, baseline_begin, baseline_end);
  WindowMetrics observed = Measure(store, ids, begin, end, slo_target);

  GuardrailEvaluation eval;
  eval.baseline_latency_s = baseline.latency_s;
  eval.observed_latency_s = observed.latency_s;
  eval.baseline_queue_p99_ms = baseline.queue_p99_ms;
  eval.observed_queue_p99_ms = observed.queue_p99_ms;
  eval.baseline_utilization = baseline.utilization;
  eval.observed_utilization = observed.utilization;

  // Silence is not health: an empty window (all telemetry for the treated
  // machines dropped or quarantined) must trip, never pass.
  eval.measurable = baseline.records > 0 && observed.records > 0;
  if (!eval.measurable) return eval;

  const GuardrailThresholds& t = options_.guardrails;
  eval.latency_ok =
      baseline.latency_s > 0.0
          ? observed.latency_s <= baseline.latency_s * t.max_latency_ratio
          : true;
  eval.queue_ok = observed.queue_p99_ms <=
                  std::max(baseline.queue_p99_ms * t.max_queue_p99_ratio,
                           t.queue_p99_floor_ms);
  eval.utilization_ok = observed.utilization <= t.max_utilization;
  if (t.slo_target_latency_s > 0.0) {
    // Same burn-rate semantic as obs::SloTracker: fraction of bad
    // observations over the window, divided by the error budget.
    eval.slo_checked = true;
    const double bad_fraction = static_cast<double>(observed.slo_bad) /
                                static_cast<double>(observed.records);
    const double budget = 1.0 - t.slo_objective;
    eval.observed_slo_burn =
        budget > 0.0 ? bad_fraction / budget : (bad_fraction > 0.0 ? 1e9 : 0.0);
    eval.slo_ok = eval.observed_slo_burn <= t.max_slo_burn;
  }
  return eval;
}

void GuardrailedRollout::Restore(const std::vector<MachineSnapshot>& snapshots,
                                 sim::Cluster* cluster, size_t* restored) const {
  auto& machines = cluster->mutable_machines();
  for (auto wave = snapshots.rbegin(); wave != snapshots.rend(); ++wave) {
    for (auto entry = wave->rbegin(); entry != wave->rend(); ++entry) {
      machines[static_cast<size_t>(entry->first)].max_containers = entry->second;
      ++*restored;
    }
  }
}

StatusOr<GuardrailedRollout::Report> GuardrailedRollout::Execute(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster,
    const telemetry::TelemetryStore* store, sim::HourIndex start_hour,
    const AdvanceFn& advance) {
  KEA_RETURN_IF_ERROR(ValidateOptions());
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (store == nullptr) return Status::InvalidArgument("null telemetry store");
  if (!advance) return Status::InvalidArgument("null advance function");
  if (recommendations.empty()) {
    return Status::InvalidArgument("no recommendations to roll out");
  }

  std::map<sim::MachineGroupKey, int> targets =
      ClampTargets(recommendations, options_.deploy);

  Report report;
  if (targets.empty()) {
    report.outcome = Outcome::kNoChange;
    return report;
  }

  int num_sc = cluster->num_subclusters();
  if (num_sc <= 0) return Status::FailedPrecondition("cluster has no sub-clusters");

  std::vector<MachineSnapshot> snapshots;
  std::vector<int> treated;  ///< Cumulative machines changed across waves.
  sim::HourIndex now = start_hour;
  sim::HourIndex baseline_begin = std::max(0, start_hour - options_.baseline_hours);

  int next_sc = 0;
  for (size_t w = 0; w < options_.wave_fractions.size(); ++w) {
    int end_sc = static_cast<int>(
        std::ceil(options_.wave_fractions[w] * static_cast<double>(num_sc)));
    end_sc = std::clamp(end_sc, next_sc, num_sc);
    if (w + 1 == options_.wave_fractions.size() &&
        options_.wave_fractions[w] >= 1.0) {
      end_sc = num_sc;  // Final full-fleet wave sweeps every remainder.
    }
    if (end_sc == next_sc && next_sc < num_sc) end_sc = next_sc + 1;

    KEA_TRACE_SPAN("rollout.wave", {{"wave", std::to_string(w)}});
    WavesCounter()->Increment();
    WaveResult wave;
    wave.wave = static_cast<int>(w);
    std::vector<int> wave_machines;
    for (int sc = next_sc; sc < end_sc; ++sc) {
      wave.sub_clusters.push_back(sc);
      std::vector<int> ids = cluster->SubClusterMachines(sc);
      wave_machines.insert(wave_machines.end(), ids.begin(), ids.end());
    }
    next_sc = end_sc;

    auto snapshot = ApplyWave(wave_machines, targets, cluster);
    if (!snapshot.ok()) {
      size_t restored = 0;
      Restore(snapshots, cluster, &restored);
      return snapshot.status();
    }
    wave.machines_changed = snapshot->size();
    if (wave.machines_changed == 0) {
      // No targeted machine in this wave: nothing to observe, trivially safe.
      wave.passed = true;
      report.waves.push_back(std::move(wave));
      continue;
    }
    snapshots.push_back(std::move(snapshot).value());
    for (const auto& entry : snapshots.back()) treated.push_back(entry.first);

    wave.observe_begin = now;
    Status advanced = advance(options_.observe_hours_per_wave);
    if (!advanced.ok()) {
      size_t restored = 0;
      Restore(snapshots, cluster, &restored);
      return advanced;
    }
    now += options_.observe_hours_per_wave;
    wave.observe_end = now;

    wave.eval = Evaluate(*store, treated, baseline_begin, start_hour,
                         wave.observe_begin, wave.observe_end);
    wave.passed = wave.eval.pass();
    bool tripped = !wave.passed;
    report.waves.push_back(std::move(wave));

    if (tripped) {
      TripsCounter()->Increment();
      report.tripped_wave = static_cast<int>(w);
      Restore(snapshots, cluster, &report.machines_restored);
      RollbacksCounter()->Increment();
      MachinesRestoredCounter()->Increment(report.machines_restored);
      report.outcome = Outcome::kRolledBack;
      return report;
    }
  }

  report.outcome = Outcome::kConverged;
  return report;
}

std::string GuardrailedRollout::EncodeEvaluation(const GuardrailEvaluation& eval) {
  StateWriter w;
  w.PutDouble(eval.baseline_latency_s);
  w.PutDouble(eval.observed_latency_s);
  w.PutDouble(eval.baseline_queue_p99_ms);
  w.PutDouble(eval.observed_queue_p99_ms);
  w.PutDouble(eval.baseline_utilization);
  w.PutDouble(eval.observed_utilization);
  w.PutBool(eval.latency_ok);
  w.PutBool(eval.queue_ok);
  w.PutBool(eval.utilization_ok);
  w.PutBool(eval.measurable);
  // SLO guardrail fields (appended; pre-SLO blobs simply end here).
  w.PutBool(eval.slo_checked);
  w.PutDouble(eval.observed_slo_burn);
  w.PutBool(eval.slo_ok);
  return w.Release();
}

Status GuardrailedRollout::DecodeEvaluation(const std::string& blob,
                                            GuardrailEvaluation* eval) {
  StateReader r(blob);
  KEA_RETURN_IF_ERROR(r.GetDouble(&eval->baseline_latency_s));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eval->observed_latency_s));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eval->baseline_queue_p99_ms));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eval->observed_queue_p99_ms));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eval->baseline_utilization));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eval->observed_utilization));
  KEA_RETURN_IF_ERROR(r.GetBool(&eval->latency_ok));
  KEA_RETURN_IF_ERROR(r.GetBool(&eval->queue_ok));
  KEA_RETURN_IF_ERROR(r.GetBool(&eval->utilization_ok));
  KEA_RETURN_IF_ERROR(r.GetBool(&eval->measurable));
  if (!r.AtEnd()) {
    // Blobs journaled before the SLO guardrail existed stop above; their
    // defaults (slo_checked=false, slo_ok=true) reproduce the old verdict.
    KEA_RETURN_IF_ERROR(r.GetBool(&eval->slo_checked));
    KEA_RETURN_IF_ERROR(r.GetDouble(&eval->observed_slo_burn));
    KEA_RETURN_IF_ERROR(r.GetBool(&eval->slo_ok));
  }
  return Status::OK();
}

StatusOr<GuardrailedRollout::Report> GuardrailedRollout::ExecuteJournaled(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster,
    const telemetry::TelemetryStore* store, sim::HourIndex start_hour,
    const AdvanceFn& advance, JournalContext* ctx) {
  if (ctx == nullptr || ctx->ledger == nullptr) {
    return Status::InvalidArgument("null journal context / ledger");
  }
  Report report;
  std::vector<MachineSnapshot> snapshots;
  Status run = RunJournaled(recommendations, cluster, store, start_hour, advance,
                            ctx, &report, &snapshots);
  if (!run.ok()) {
    // An injected crash models abrupt process death: leave the world exactly
    // as the dying process would — resume will pick it up from the journal.
    // Real errors restore the in-memory cluster, mirroring Execute().
    if (!CrashPoints::IsCrash(run) && cluster != nullptr) {
      size_t restored = 0;
      Restore(snapshots, cluster, &restored);
    }
    return run;
  }
  return report;
}

Status GuardrailedRollout::RunJournaled(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster,
    const telemetry::TelemetryStore* store, sim::HourIndex start_hour,
    const AdvanceFn& advance, JournalContext* ctx, Report* report,
    std::vector<MachineSnapshot>* snapshots) {
  KEA_RETURN_IF_ERROR(ValidateOptions());
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (store == nullptr) return Status::InvalidArgument("null telemetry store");
  if (!advance) return Status::InvalidArgument("null advance function");
  if (recommendations.empty()) {
    return Status::InvalidArgument("no recommendations to roll out");
  }

  // One journaled step: write-ahead append under an idempotency key, then the
  // effect, then a checkpoint covering the step. Three phases on resume:
  //   - seq <  durable_seq: REPLAY — the restored checkpoint already holds
  //     the effect; only the recorded payload is returned for bookkeeping.
  //   - seq >= durable_seq: RE-DRIVE — recorded intent whose effect was lost;
  //     the effect runs again from the restored (pre-effect) state.
  //   - absent: FRESH — record intent, run the effect.
  // Crash points bracket the append so the sweep covers both "died before
  // journaling" (step re-runs whole) and "journaled but died before the
  // effect was durable" (step re-drives).
  auto step = [&](DeploymentLedger::EventType type, const std::string& key,
                  const std::string& crash,
                  const std::function<std::string()>& make_payload,
                  const std::function<Status(const std::string&)>& effect,
                  std::string* out_payload) -> Status {
    const DeploymentLedger::Event* ev = ctx->ledger->Find(key);
    if (ev != nullptr && ev->seq < ctx->durable_seq) {
      StepReplayedCounter()->Increment();
      *out_payload = ev->payload;
      return Status::OK();
    }
    KEA_RETURN_IF_ERROR(CrashPoints::Check(crash + ".pre"));
    std::string payload;
    uint64_t seq = 0;
    if (ev != nullptr) {
      StepRedrivenCounter()->Increment();
      payload = ev->payload;
      seq = ev->seq;
    } else {
      StepFreshCounter()->Increment();
      payload = make_payload();
      KEA_ASSIGN_OR_RETURN(const DeploymentLedger::Event* appended,
                           ctx->ledger->Append(type, key, payload));
      seq = appended->seq;
    }
    KEA_RETURN_IF_ERROR(CrashPoints::Check(crash + ".post_record"));
    if (effect) KEA_RETURN_IF_ERROR(effect(payload));
    if (ctx->checkpoint) KEA_RETURN_IF_ERROR(ctx->checkpoint(seq + 1));
    *out_payload = payload;
    return Status::OK();
  };

  std::map<sim::MachineGroupKey, int> targets =
      ClampTargets(recommendations, options_.deploy);
  if (targets.empty()) {
    report->outcome = Outcome::kNoChange;
    return Status::OK();
  }

  int num_sc = cluster->num_subclusters();
  if (num_sc <= 0) return Status::FailedPrecondition("cluster has no sub-clusters");

  std::string rkey = "r";
  rkey += std::to_string(ctx->round);
  std::vector<int> treated;
  sim::HourIndex now = start_hour;
  sim::HourIndex baseline_begin = std::max(0, start_hour - options_.baseline_hours);

  int next_sc = 0;
  bool tripped = false;
  for (size_t w = 0; w < options_.wave_fractions.size() && !tripped; ++w) {
    const std::string wkey = rkey + "/w" + std::to_string(w);
    KEA_TRACE_SPAN("rollout.wave", {{"wave", std::to_string(w)},
                                    {"key", wkey},
                                    {"journaled", "1"}});
    WavesCounter()->Increment();
    WaveResult wave;
    wave.wave = static_cast<int>(w);

    // -- WAVE_STARTED: which sub-clusters this wave covers.
    std::string payload;
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kWaveStarted, wkey + "/started",
        "rollout.wave_started",
        [&] {
          int end_sc = static_cast<int>(std::ceil(
              options_.wave_fractions[w] * static_cast<double>(num_sc)));
          end_sc = std::clamp(end_sc, next_sc, num_sc);
          if (w + 1 == options_.wave_fractions.size() &&
              options_.wave_fractions[w] >= 1.0) {
            end_sc = num_sc;
          }
          if (end_sc == next_sc && next_sc < num_sc) end_sc = next_sc + 1;
          StateWriter sw;
          sw.PutInt(end_sc);
          sw.PutU64(static_cast<uint64_t>(end_sc - next_sc));
          for (int sc = next_sc; sc < end_sc; ++sc) sw.PutInt(sc);
          return sw.Release();
        },
        nullptr, &payload));
    {
      StateReader sr(payload);
      int end_sc = 0;
      uint64_t count = 0;
      KEA_RETURN_IF_ERROR(sr.GetInt(&end_sc));
      KEA_RETURN_IF_ERROR(sr.GetU64(&count));
      for (uint64_t i = 0; i < count; ++i) {
        int sc = 0;
        KEA_RETURN_IF_ERROR(sr.GetInt(&sc));
        wave.sub_clusters.push_back(sc);
      }
      next_sc = end_sc;
    }
    std::vector<int> wave_machines;
    for (int sc : wave.sub_clusters) {
      std::vector<int> ids = cluster->SubClusterMachines(sc);
      wave_machines.insert(wave_machines.end(), ids.begin(), ids.end());
    }

    // -- WAVE_APPLIED: per-machine (id, old, new) deltas, journaled before
    // the cluster is touched.
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kWaveApplied, wkey + "/applied",
        "rollout.wave_applied",
        [&] {
          StateWriter sw;
          std::vector<std::tuple<int, int, int>> deltas;
          const auto& machines = cluster->machines();
          for (int id : wave_machines) {
            if (id < 0 || static_cast<size_t>(id) >= machines.size()) continue;
            const sim::Machine& m = machines[static_cast<size_t>(id)];
            auto it = targets.find(m.group());
            if (it == targets.end() || m.max_containers == it->second) continue;
            deltas.emplace_back(id, m.max_containers, it->second);
          }
          sw.PutU64(deltas.size());
          for (const auto& [id, old_max, new_max] : deltas) {
            sw.PutInt(id);
            sw.PutInt(old_max);
            sw.PutInt(new_max);
          }
          return sw.Release();
        },
        [&](const std::string& p) -> Status {
          StateReader sr(p);
          uint64_t count = 0;
          KEA_RETURN_IF_ERROR(sr.GetU64(&count));
          auto& machines = cluster->mutable_machines();
          for (uint64_t i = 0; i < count; ++i) {
            int id = 0, old_max = 0, new_max = 0;
            KEA_RETURN_IF_ERROR(sr.GetInt(&id));
            KEA_RETURN_IF_ERROR(sr.GetInt(&old_max));
            KEA_RETURN_IF_ERROR(sr.GetInt(&new_max));
            if (id < 0 || static_cast<size_t>(id) >= machines.size()) {
              return Status::OutOfRange("machine id " + std::to_string(id));
            }
            machines[static_cast<size_t>(id)].max_containers = new_max;
          }
          return Status::OK();
        },
        &payload));
    MachineSnapshot snapshot;
    {
      StateReader sr(payload);
      uint64_t count = 0;
      KEA_RETURN_IF_ERROR(sr.GetU64(&count));
      for (uint64_t i = 0; i < count; ++i) {
        int id = 0, old_max = 0, new_max = 0;
        KEA_RETURN_IF_ERROR(sr.GetInt(&id));
        KEA_RETURN_IF_ERROR(sr.GetInt(&old_max));
        KEA_RETURN_IF_ERROR(sr.GetInt(&new_max));
        snapshot.emplace_back(id, old_max);
      }
    }
    wave.machines_changed = snapshot.size();
    if (wave.machines_changed == 0) {
      // No targeted machine in this wave: nothing to observe, trivially safe.
      wave.passed = true;
      report->waves.push_back(std::move(wave));
      continue;
    }
    snapshots->push_back(std::move(snapshot));
    for (const auto& entry : snapshots->back()) treated.push_back(entry.first);

    // -- WAVE_OBSERVED: advance the world through the observation window.
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kWaveObserved, wkey + "/observed",
        "rollout.wave_observed",
        [&] {
          StateWriter sw;
          sw.PutI64(now);
          sw.PutI64(now + options_.observe_hours_per_wave);
          return sw.Release();
        },
        [&](const std::string&) { return advance(options_.observe_hours_per_wave); },
        &payload));
    {
      StateReader sr(payload);
      int64_t begin = 0, end = 0;
      KEA_RETURN_IF_ERROR(sr.GetI64(&begin));
      KEA_RETURN_IF_ERROR(sr.GetI64(&end));
      wave.observe_begin = static_cast<sim::HourIndex>(begin);
      wave.observe_end = static_cast<sim::HourIndex>(end);
      now = wave.observe_end;
    }

    // -- WAVE_VERDICT: the guardrail decision, recorded before it is acted
    // on. A resumed round reuses the recorded verdict rather than judging
    // twice (the deterministic re-evaluation would match, but the record is
    // the authority).
    KEA_RETURN_IF_ERROR(step(
        DeploymentLedger::EventType::kWaveVerdict, wkey + "/verdict",
        "rollout.wave_verdict",
        [&] {
          GuardrailEvaluation eval =
              Evaluate(*store, treated, baseline_begin, start_hour,
                       wave.observe_begin, wave.observe_end);
          return EncodeEvaluation(eval);
        },
        nullptr, &payload));
    KEA_RETURN_IF_ERROR(DecodeEvaluation(payload, &wave.eval));
    wave.passed = wave.eval.pass();
    tripped = !wave.passed;
    report->waves.push_back(std::move(wave));

    if (tripped) {
      TripsCounter()->Increment();
      report->tripped_wave = static_cast<int>(w);
      // -- ROLLBACK: restore every applied wave, newest first.
      KEA_RETURN_IF_ERROR(step(
          DeploymentLedger::EventType::kRollback, rkey + "/rollback",
          "rollout.rollback",
          [&] {
            size_t total = 0;
            for (const MachineSnapshot& s : *snapshots) total += s.size();
            StateWriter sw;
            sw.PutU64(total);
            return sw.Release();
          },
          [&](const std::string&) -> Status {
            size_t restored = 0;
            Restore(*snapshots, cluster, &restored);
            return Status::OK();
          },
          &payload));
      StateReader sr(payload);
      uint64_t restored = 0;
      KEA_RETURN_IF_ERROR(sr.GetU64(&restored));
      report->machines_restored = restored;
      RollbacksCounter()->Increment();
      MachinesRestoredCounter()->Increment(restored);
      // The world is back to its entry state; don't restore again on return.
      snapshots->clear();
      report->outcome = Outcome::kRolledBack;
      return Status::OK();
    }
  }

  report->outcome = Outcome::kConverged;
  return Status::OK();
}

}  // namespace kea::core
