#include "core/guardrailed_rollout.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <unordered_set>

namespace kea::core {
namespace {

/// Guardrail metrics of one telemetry window restricted to a machine set.
struct WindowMetrics {
  size_t records = 0;
  double tasks = 0.0;
  double latency_s = 0.0;      ///< Task-weighted mean latency (W-bar).
  double queue_p99_ms = 0.0;
  double utilization = 0.0;    ///< Mean CPU utilization.
};

WindowMetrics Measure(const telemetry::TelemetryStore& store,
                      const std::unordered_set<int>& machine_ids,
                      sim::HourIndex begin, sim::HourIndex end) {
  WindowMetrics m;
  double weighted_latency = 0.0, util_sum = 0.0;
  std::vector<double> queue_latencies;
  for (const auto& r : store.records()) {
    if (r.hour < begin || r.hour >= end) continue;
    if (!machine_ids.empty() && machine_ids.count(r.machine_id) == 0) continue;
    if (!std::isfinite(r.cpu_utilization) || !std::isfinite(r.avg_task_latency_s) ||
        !std::isfinite(r.tasks_finished) || !std::isfinite(r.queue_latency_ms)) {
      continue;
    }
    ++m.records;
    m.tasks += r.tasks_finished;
    weighted_latency += r.avg_task_latency_s * r.tasks_finished;
    util_sum += r.cpu_utilization;
    queue_latencies.push_back(r.queue_latency_ms);
  }
  if (m.records == 0) return m;
  m.latency_s = m.tasks > 0.0 ? weighted_latency / m.tasks : 0.0;
  m.utilization = util_sum / static_cast<double>(m.records);
  std::sort(queue_latencies.begin(), queue_latencies.end());
  size_t p99 = static_cast<size_t>(0.99 * static_cast<double>(queue_latencies.size()));
  m.queue_p99_ms = queue_latencies[std::min(p99, queue_latencies.size() - 1)];
  return m;
}

}  // namespace

std::string GuardrailEvaluation::Describe() const {
  if (!measurable) return "guardrails unmeasurable (no usable telemetry)";
  std::string out;
  auto add = [&out](const char* name, bool ok, double base, double observed) {
    out += name;
    out += ok ? " ok (" : " TRIPPED (";
    out += std::to_string(base) + " -> " + std::to_string(observed) + ") ";
  };
  add("latency", latency_ok, baseline_latency_s, observed_latency_s);
  add("queue_p99", queue_ok, baseline_queue_p99_ms, observed_queue_p99_ms);
  add("utilization", utilization_ok, baseline_utilization, observed_utilization);
  return out;
}

GuardrailedRollout::GuardrailedRollout(const Options& options) : options_(options) {}

Status GuardrailedRollout::ValidateOptions() const {
  if (options_.wave_fractions.empty()) {
    return Status::InvalidArgument("rollout needs at least one wave");
  }
  double prev = 0.0;
  for (double f : options_.wave_fractions) {
    if (f <= prev || f > 1.0) {
      return Status::InvalidArgument(
          "wave_fractions must be strictly increasing within (0, 1]");
    }
    prev = f;
  }
  if (options_.observe_hours_per_wave <= 0) {
    return Status::InvalidArgument("observe_hours_per_wave must be positive");
  }
  if (options_.baseline_hours <= 0) {
    return Status::InvalidArgument("baseline_hours must be positive");
  }
  return Status::OK();
}

StatusOr<GuardrailedRollout::MachineSnapshot> GuardrailedRollout::ApplyWave(
    const std::vector<int>& machine_ids,
    const std::map<sim::MachineGroupKey, int>& targets, sim::Cluster* cluster) {
  MachineSnapshot snapshot;
  auto& machines = cluster->mutable_machines();
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
    sim::Machine& m = machines[static_cast<size_t>(id)];
    auto it = targets.find(m.group());
    if (it == targets.end() || m.max_containers == it->second) continue;
    snapshot.emplace_back(id, m.max_containers);
    m.max_containers = it->second;
  }
  return snapshot;
}

GuardrailEvaluation GuardrailedRollout::Evaluate(
    const telemetry::TelemetryStore& store, const std::vector<int>& machine_ids,
    sim::HourIndex baseline_begin, sim::HourIndex baseline_end,
    sim::HourIndex begin, sim::HourIndex end) const {
  std::unordered_set<int> ids(machine_ids.begin(), machine_ids.end());
  WindowMetrics baseline = Measure(store, ids, baseline_begin, baseline_end);
  WindowMetrics observed = Measure(store, ids, begin, end);

  GuardrailEvaluation eval;
  eval.baseline_latency_s = baseline.latency_s;
  eval.observed_latency_s = observed.latency_s;
  eval.baseline_queue_p99_ms = baseline.queue_p99_ms;
  eval.observed_queue_p99_ms = observed.queue_p99_ms;
  eval.baseline_utilization = baseline.utilization;
  eval.observed_utilization = observed.utilization;

  // Silence is not health: an empty window (all telemetry for the treated
  // machines dropped or quarantined) must trip, never pass.
  eval.measurable = baseline.records > 0 && observed.records > 0;
  if (!eval.measurable) return eval;

  const GuardrailThresholds& t = options_.guardrails;
  eval.latency_ok =
      baseline.latency_s > 0.0
          ? observed.latency_s <= baseline.latency_s * t.max_latency_ratio
          : true;
  eval.queue_ok = observed.queue_p99_ms <=
                  std::max(baseline.queue_p99_ms * t.max_queue_p99_ratio,
                           t.queue_p99_floor_ms);
  eval.utilization_ok = observed.utilization <= t.max_utilization;
  return eval;
}

void GuardrailedRollout::Restore(const std::vector<MachineSnapshot>& snapshots,
                                 sim::Cluster* cluster, size_t* restored) const {
  auto& machines = cluster->mutable_machines();
  for (auto wave = snapshots.rbegin(); wave != snapshots.rend(); ++wave) {
    for (auto entry = wave->rbegin(); entry != wave->rend(); ++entry) {
      machines[static_cast<size_t>(entry->first)].max_containers = entry->second;
      ++*restored;
    }
  }
}

StatusOr<GuardrailedRollout::Report> GuardrailedRollout::Execute(
    const std::vector<GroupRecommendation>& recommendations, sim::Cluster* cluster,
    const telemetry::TelemetryStore* store, sim::HourIndex start_hour,
    const AdvanceFn& advance) {
  KEA_RETURN_IF_ERROR(ValidateOptions());
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  if (store == nullptr) return Status::InvalidArgument("null telemetry store");
  if (!advance) return Status::InvalidArgument("null advance function");
  if (recommendations.empty()) {
    return Status::InvalidArgument("no recommendations to roll out");
  }

  // Clamp each recommendation to +-max_step of its current configuration,
  // exactly like DeploymentModule::ApplyConservatively.
  std::map<sim::MachineGroupKey, int> targets;
  for (const GroupRecommendation& rec : recommendations) {
    int delta = rec.recommended_max_containers - rec.current_max_containers;
    int clamped =
        std::clamp(delta, -options_.deploy.max_step, options_.deploy.max_step);
    int target = std::max(rec.current_max_containers + clamped,
                          options_.deploy.min_containers);
    if (target != rec.current_max_containers) targets[rec.group] = target;
  }

  Report report;
  if (targets.empty()) {
    report.outcome = Outcome::kNoChange;
    return report;
  }

  int num_sc = cluster->num_subclusters();
  if (num_sc <= 0) return Status::FailedPrecondition("cluster has no sub-clusters");

  std::vector<MachineSnapshot> snapshots;
  std::vector<int> treated;  ///< Cumulative machines changed across waves.
  sim::HourIndex now = start_hour;
  sim::HourIndex baseline_begin = std::max(0, start_hour - options_.baseline_hours);

  int next_sc = 0;
  for (size_t w = 0; w < options_.wave_fractions.size(); ++w) {
    int end_sc = static_cast<int>(
        std::ceil(options_.wave_fractions[w] * static_cast<double>(num_sc)));
    end_sc = std::clamp(end_sc, next_sc, num_sc);
    if (w + 1 == options_.wave_fractions.size() &&
        options_.wave_fractions[w] >= 1.0) {
      end_sc = num_sc;  // Final full-fleet wave sweeps every remainder.
    }
    if (end_sc == next_sc && next_sc < num_sc) end_sc = next_sc + 1;

    WaveResult wave;
    wave.wave = static_cast<int>(w);
    std::vector<int> wave_machines;
    for (int sc = next_sc; sc < end_sc; ++sc) {
      wave.sub_clusters.push_back(sc);
      std::vector<int> ids = cluster->SubClusterMachines(sc);
      wave_machines.insert(wave_machines.end(), ids.begin(), ids.end());
    }
    next_sc = end_sc;

    auto snapshot = ApplyWave(wave_machines, targets, cluster);
    if (!snapshot.ok()) {
      size_t restored = 0;
      Restore(snapshots, cluster, &restored);
      return snapshot.status();
    }
    wave.machines_changed = snapshot->size();
    if (wave.machines_changed == 0) {
      // No targeted machine in this wave: nothing to observe, trivially safe.
      wave.passed = true;
      report.waves.push_back(std::move(wave));
      continue;
    }
    snapshots.push_back(std::move(snapshot).value());
    for (const auto& entry : snapshots.back()) treated.push_back(entry.first);

    wave.observe_begin = now;
    Status advanced = advance(options_.observe_hours_per_wave);
    if (!advanced.ok()) {
      size_t restored = 0;
      Restore(snapshots, cluster, &restored);
      return advanced;
    }
    now += options_.observe_hours_per_wave;
    wave.observe_end = now;

    wave.eval = Evaluate(*store, treated, baseline_begin, start_hour,
                         wave.observe_begin, wave.observe_end);
    wave.passed = wave.eval.pass();
    bool tripped = !wave.passed;
    report.waves.push_back(std::move(wave));

    if (tripped) {
      report.tripped_wave = static_cast<int>(w);
      Restore(snapshots, cluster, &report.machines_restored);
      report.outcome = Outcome::kRolledBack;
      return report;
    }
  }

  report.outcome = Outcome::kConverged;
  return report;
}

}  // namespace kea::core
