#ifndef KEA_CORE_WHATIF_H_
#define KEA_CORE_WHATIF_H_

#include <cstdint>
#include <map>

#include "common/status.h"
#include "ml/regression.h"
#include "telemetry/perf_monitor.h"
#include "telemetry/store.h"

namespace kea::core {

/// Which regression family the What-if Engine fits. The paper uses a Huber
/// regressor in production ("more robust to outliers", Section 5.2.1); OLS is
/// kept for the ablation bench; kAuto picks per relationship by 5-fold
/// cross-validation.
enum class RegressorKind { kOls, kHuber, kAuto };

/// The calibrated model set for one SC-SKU combination k (Figure 9):
///   g_k: running containers -> CPU utilization      (Eq. 1-2)
///   h_k: CPU utilization    -> tasks finished /hour (Eq. 3-4)
///   f_k: CPU utilization    -> mean task latency    (Eq. 5-6)
/// plus the group's current operating point, used as the reference
/// configuration m'_k.
struct GroupModels {
  sim::MachineGroupKey group;
  int num_machines = 0;  ///< n_k of Eq. (7).

  ml::LinearModel g;  ///< containers -> utilization.
  ml::LinearModel h;  ///< utilization -> tasks/hour.
  ml::LinearModel f;  ///< utilization -> task latency (s).

  ml::RegressionMetrics g_fit;
  ml::RegressionMetrics h_fit;
  ml::RegressionMetrics f_fit;

  /// Current (median) operating point from telemetry.
  double current_containers = 0.0;
  double current_utilization = 0.0;
  double current_tasks_per_hour = 0.0;
  double current_latency_s = 0.0;
};

/// Predicted metrics for one machine group under a hypothetical allocation.
struct GroupWhatIf {
  double containers = 0.0;      ///< The hypothetical m_k evaluated.
  double utilization = 0.0;     ///< g_k(m_k).
  double tasks_per_hour = 0.0;  ///< h_k(g_k(m_k)).
  double latency_s = 0.0;       ///< f_k(g_k(m_k)).
  /// Monte Carlo standard error of latency_s under the fitted models'
  /// residual noise; 0 when uncertainty sampling is disabled.
  double latency_stderr_s = 0.0;
};

/// One full what-if evaluation: every group's predicted operating point plus
/// the cluster-wide task-weighted mean latency of Eq. (9).
struct WhatIfResult {
  std::map<sim::MachineGroupKey, GroupWhatIf> groups;
  double cluster_latency_s = 0.0;
  /// Monte Carlo standard error of cluster_latency_s (0 when disabled).
  double cluster_latency_stderr_s = 0.0;
};

/// The What-if Engine (Section 5.1): predicts the performance metrics of a
/// machine group under a *hypothetical* container allocation, using models
/// fit purely on observational telemetry — no experiments. The key property
/// it relies on: the relationships g/h/f reflect hardware and workload
/// mechanics and are invariant to the YARN configuration itself.
class WhatIfEngine {
 public:
  struct Options {
    RegressorKind regressor = RegressorKind::kHuber;
    /// Minimum machine-hours per group to fit a model.
    size_t min_observations = 24;
    /// Threads for the per-group fitting loop (groups are independent,
    /// Section 5.1 fits g/h/f per machine group): 0 = hardware_concurrency,
    /// 1 = the serial legacy path. Fitting is RNG-free and groups are
    /// assembled in key order, so results are identical at any value.
    int num_threads = 0;
  };

  /// Fits per-group models from the telemetry matching `filter`. Returns
  /// FailedPrecondition when no group has enough observations. Groups are
  /// fitted concurrently per `options.num_threads`; on multiple failures the
  /// error for the smallest group key is returned.
  static StatusOr<WhatIfEngine> Fit(const telemetry::TelemetryStore& store,
                                    const telemetry::RecordFilter& filter,
                                    const Options& options);

  const std::map<sim::MachineGroupKey, GroupModels>& models() const { return models_; }

  /// Per-group predictions under a hypothetical container count. NotFound if
  /// the group has no calibrated models.
  StatusOr<double> PredictUtilization(sim::MachineGroupKey group, double containers) const;
  StatusOr<double> PredictTasksPerHour(sim::MachineGroupKey group, double containers) const;
  StatusOr<double> PredictTaskLatency(sim::MachineGroupKey group, double containers) const;

  /// The cluster-wide average task latency W-bar of Eq. (9) under a
  /// hypothetical per-group allocation: the task-weighted mean of the
  /// predicted group latencies. Missing groups are an error.
  StatusOr<double> PredictClusterLatency(
      const std::map<sim::MachineGroupKey, double>& containers_per_machine) const;

  /// W-bar' — the same quantity at the current operating point (Eq. 10).
  StatusOr<double> CurrentClusterLatency() const;

  /// One-call evaluation of a hypothetical allocation: per-group
  /// utilization/throughput/latency plus the Eq. (9) cluster latency, using
  /// the same accumulation order as PredictClusterLatency so the scalar
  /// agrees bit-for-bit with it. Missing groups are an error.
  ///
  /// With `uncertainty_samples > 0`, additionally propagates the fitted
  /// models' residual noise (each model's fit RMSE) through the g -> h/f
  /// chain by Monte Carlo and fills the *_stderr fields. Sampling is seeded
  /// from the group key and candidate bits alone, so the result — error bars
  /// included — is a pure function of (models, candidate): bit-identical
  /// across runs, threads, and identically-fitted engines. The tuning loop
  /// uses the point-prediction paths and never pays this cost.
  StatusOr<WhatIfResult> EvaluateWhatIf(
      const std::map<sim::MachineGroupKey, double>& containers_per_machine,
      int uncertainty_samples = 0) const;

  /// FNV-1a digest over every fitted coefficient and operating point, walked
  /// in group-key order. Engines fit from identical telemetry with identical
  /// options hash identically; a refit on different data changes the digest
  /// with overwhelming probability. Cache-key material for the serving
  /// layer's memoized what-if cache.
  uint64_t ModelHash() const;

 private:
  explicit WhatIfEngine(std::map<sim::MachineGroupKey, GroupModels> models)
      : models_(std::move(models)) {}

  StatusOr<const GroupModels*> Find(sim::MachineGroupKey group) const;

  std::map<sim::MachineGroupKey, GroupModels> models_;
};

}  // namespace kea::core

#endif  // KEA_CORE_WHATIF_H_
