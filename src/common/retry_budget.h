#ifndef KEA_COMMON_RETRY_BUDGET_H_
#define KEA_COMMON_RETRY_BUDGET_H_

#include <cstdint>

#include "common/retry.h"

namespace kea {

/// Token-bucket retry budget: the server-side half of retry amplification
/// control. RetryPolicy (client side) spaces retries out with deterministic
/// jittered backoff; RetryBudget (server side) bounds how many retried
/// submissions a single key (a serving tenant) may spend per unit of virtual
/// time. When a client ignores its backoff hints and hammers, its retries
/// drain the bucket and are then rejected instantly — before touching the
/// queue — so a retry storm cannot amplify overload into collapse.
///
/// Deterministic: the bucket refills lazily as a pure function of elapsed
/// virtual milliseconds (see common/virtual_clock.h), so a scripted schedule
/// of (now_ms, consume) calls replays bit-identically.
class RetryBudget {
 public:
  struct Options {
    /// Bucket capacity in tokens; also the initial fill. One retried
    /// submission costs one token.
    double capacity = 8.0;
    /// Tokens restored per virtual millisecond (capped at capacity).
    double refill_per_ms = 0.01;
  };

  struct Stats {
    int64_t consumed = 0;   ///< Retries admitted against the budget.
    int64_t exhausted = 0;  ///< Retries rejected because the bucket was dry.
  };

  RetryBudget() : RetryBudget(Options()) {}
  explicit RetryBudget(const Options& options)
      : options_(options), tokens_(options.capacity) {}

  /// Spends one token if available. `now_ms` must be monotonic across calls
  /// (virtual time). Returns false — reject the retry — when the bucket is
  /// dry.
  bool TryConsume(int64_t now_ms) {
    Refill(now_ms);
    if (tokens_ >= 1.0) {
      tokens_ -= 1.0;
      ++stats_.consumed;
      return true;
    }
    ++stats_.exhausted;
    return false;
  }

  double available(int64_t now_ms) {
    Refill(now_ms);
    return tokens_;
  }

  const Stats& stats() const { return stats_; }
  const Options& options() const { return options_; }

 private:
  void Refill(int64_t now_ms) {
    if (now_ms > last_refill_ms_) {
      tokens_ += static_cast<double>(now_ms - last_refill_ms_) *
                 options_.refill_per_ms;
      if (tokens_ > options_.capacity) tokens_ = options_.capacity;
      last_refill_ms_ = now_ms;
    }
  }

  Options options_;
  double tokens_;
  int64_t last_refill_ms_ = 0;
  Stats stats_;
};

}  // namespace kea

#endif  // KEA_COMMON_RETRY_BUDGET_H_
