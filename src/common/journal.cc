#include "common/journal.h"

#include <chrono>
#include <cstdio>
#include <cstring>

#include "common/crash_point.h"
#include "obs/metrics.h"

namespace kea {
namespace {

// Deterministic counters: appends/bytes are logical-event totals (the
// journaled paths are single-threaded by design). Latency histograms are
// kTiming and excluded from deterministic exports.
obs::Counter* AppendsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("journal.appends");
  return c;
}
obs::Counter* AppendBytesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("journal.append_bytes");
  return c;
}
obs::Counter* TornTailsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("journal.torn_tails_recovered");
  return c;
}
obs::Histogram* AppendLatencyHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "journal.append_us", "", obs::LatencyBucketsUs(), obs::Kind::kTiming);
  return h;
}
obs::Counter* AtomicWritesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("atomic_write.files");
  return c;
}
obs::Counter* AtomicWriteBytesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("atomic_write.bytes");
  return c;
}
obs::Histogram* AtomicWriteLatencyHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "atomic_write.write_us", "", obs::LatencyBucketsUs(),
      obs::Kind::kTiming);
  return h;
}

double ElapsedUsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr char kMagic[] = "KEAJNL01";
constexpr size_t kMagicLen = 8;
constexpr size_t kHeaderLen = 8;  // u32 length + u32 crc.

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void StoreU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

const uint32_t* CrcTable() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

}  // namespace

uint32_t Crc32(const char* data, size_t size) {
  const uint32_t* table = CrcTable();
  uint32_t c = 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const auto start = std::chrono::steady_clock::now();
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("cannot open temp file for write: " + tmp);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("write failed for temp file: " + tmp);
    }
  }
  // A crash here leaves the old `path` intact and only an orphan .tmp behind.
  KEA_CRASH_POINT("atomic_write.before_rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::Internal("rename failed: " + tmp + " -> " + path);
  }
  AtomicWritesCounter()->Increment();
  AtomicWriteBytesCounter()->Increment(content.size());
  if (obs::MetricsEnabled()) {
    AtomicWriteLatencyHistogram()->Observe(ElapsedUsSince(start));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) {
    return Status::NotFound("cannot open file: " + path);
  }
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  return content;
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  std::vector<std::string> records;
  RecoveryInfo info;
  std::string data;
  bool exists = false;
  {
    auto read = ReadFileToString(path);
    if (read.ok()) {
      exists = true;
      data = std::move(read).value();
    }
  }

  size_t good_end = kMagicLen;
  if (exists && !data.empty()) {
    if (data.size() < kMagicLen ||
        std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
      return Status::InvalidArgument("not a KEA journal: " + path);
    }
    size_t pos = kMagicLen;
    while (pos < data.size()) {
      if (data.size() - pos < kHeaderLen) break;  // Torn header.
      const uint32_t len = LoadU32(data.data() + pos);
      const uint32_t crc = LoadU32(data.data() + pos + 4);
      if (data.size() - pos - kHeaderLen < len) break;  // Torn payload.
      if (Crc32(data.data() + pos + kHeaderLen, len) != crc) break;  // Bit rot.
      records.emplace_back(data.data() + pos + kHeaderLen, len);
      pos += kHeaderLen + len;
      good_end = pos;
    }
    info.records = records.size();
    if (good_end < data.size()) {
      info.tail_truncated = true;
      info.dropped_bytes = data.size() - good_end;
    }
  }

  auto journal =
      std::unique_ptr<Journal>(new Journal(path, std::move(records), info));
  if (!exists || data.empty()) {
    // Fresh journal: write the magic via truncation.
    journal->out_.open(path, std::ios::binary | std::ios::trunc);
    if (!journal->out_.is_open()) {
      return Status::Internal("cannot create journal: " + path);
    }
    journal->out_.write(kMagic, kMagicLen);
    journal->out_.flush();
    if (!journal->out_.good()) {
      return Status::Internal("cannot write journal magic: " + path);
    }
    return journal;
  }

  if (info.tail_truncated) {
    TornTailsCounter()->Increment();
    // Physically drop the torn tail so the next append starts at a record
    // boundary: rewrite the intact prefix atomically, then reopen for append.
    KEA_RETURN_IF_ERROR(AtomicWriteFile(path, data.substr(0, good_end)));
  }
  journal->out_.open(path, std::ios::binary | std::ios::app);
  if (!journal->out_.is_open()) {
    return Status::Internal("cannot open journal for append: " + path);
  }
  return journal;
}

Status Journal::Append(const std::string& payload) {
  std::string framed;
  framed.reserve(kHeaderLen + payload.size());
  StoreU32(static_cast<uint32_t>(payload.size()), &framed);
  StoreU32(Crc32(payload), &framed);
  framed += payload;

  // Injected torn write: persist the header plus half the payload — a
  // realistic power-loss artifact — then fail. Recovery at the next Open()
  // must drop exactly these bytes and keep every earlier record.
  Status torn = CrashPoints::Check("journal.append.torn");
  if (!torn.ok()) {
    const size_t partial = kHeaderLen + payload.size() / 2;
    out_.write(framed.data(), static_cast<std::streamsize>(partial));
    out_.flush();
    return torn;
  }

  const auto start = std::chrono::steady_clock::now();
  out_.write(framed.data(), static_cast<std::streamsize>(framed.size()));
  out_.flush();
  if (!out_.good()) {
    return Status::Internal("journal append failed: " + path_);
  }
  records_.push_back(payload);
  AppendsCounter()->Increment();
  AppendBytesCounter()->Increment(framed.size());
  if (obs::MetricsEnabled()) {
    AppendLatencyHistogram()->Observe(ElapsedUsSince(start));
  }
  return Status::OK();
}

}  // namespace kea
