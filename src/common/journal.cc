#include "common/journal.h"

#include <chrono>
#include <cstring>
#include <fstream>

#include "common/crash_point.h"
#include "common/io.h"
#include "obs/metrics.h"

namespace kea {
namespace {

// Deterministic counters: appends/bytes are logical-event totals (the
// journaled paths are single-threaded by design). Latency histograms are
// kTiming and excluded from deterministic exports.
obs::Counter* AppendsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("journal.appends");
  return c;
}
obs::Counter* AppendBytesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("journal.append_bytes");
  return c;
}
obs::Counter* TornTailsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("journal.torn_tails_recovered");
  return c;
}
obs::Counter* ScrubRepairsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durability.scrub_repairs");
  return c;
}
obs::Histogram* AppendLatencyHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "journal.append_us", "", obs::LatencyBucketsUs(), obs::Kind::kTiming);
  return h;
}
obs::Counter* AtomicWritesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("atomic_write.files");
  return c;
}
obs::Counter* AtomicWriteBytesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("atomic_write.bytes");
  return c;
}
obs::Histogram* AtomicWriteLatencyHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "atomic_write.write_us", "", obs::LatencyBucketsUs(),
      obs::Kind::kTiming);
  return h;
}

double ElapsedUsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - start)
      .count();
}

constexpr char kMagic[] = "KEAJNL01";
constexpr size_t kMagicLen = 8;
constexpr size_t kHeaderLen = 8;  // u32 length + u32 crc.

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
         static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
}

void StoreU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

const uint32_t* CrcTable() {
  static uint32_t table[256];
  static bool init = [] {
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
      }
      table[i] = c;
    }
    return true;
  }();
  (void)init;
  return table;
}

// Shared record scan for Open() and Scrub(): walks `data` (which must start
// with the magic) and returns the intact records plus the byte offset where
// the valid prefix ends. A short header, a length past EOF, or a CRC
// mismatch stops the scan — anything beyond that point is corrupt tail.
struct JournalScan {
  std::vector<std::string> records;
  size_t good_end = kMagicLen;
};

Status ScanJournal(const std::string& data, const std::string& path,
                   JournalScan* out) {
  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("not a KEA journal: " + path);
  }
  size_t pos = kMagicLen;
  while (pos < data.size()) {
    if (data.size() - pos < kHeaderLen) break;  // Torn header.
    const uint32_t len = LoadU32(data.data() + pos);
    const uint32_t crc = LoadU32(data.data() + pos + 4);
    if (data.size() - pos - kHeaderLen < len) break;  // Torn payload.
    if (Crc32(data.data() + pos + kHeaderLen, len) != crc) break;  // Bit rot.
    out->records.emplace_back(data.data() + pos + kHeaderLen, len);
    pos += kHeaderLen + len;
    out->good_end = pos;
  }
  return Status::OK();
}

// Preserves the corrupt tail for post-mortems. Best-effort and deliberately
// NOT routed through the Io seam: a broken disk must not be able to block
// the salvage that follows.
std::string QuarantineTail(const std::string& path, const std::string& data,
                           size_t good_end) {
  const std::string qpath = path + ".quarantine";
  std::ofstream out(qpath, std::ios::binary | std::ios::trunc);
  if (out.is_open()) {
    out.write(data.data() + good_end,
              static_cast<std::streamsize>(data.size() - good_end));
    out.flush();
  }
  return qpath;
}

}  // namespace

uint32_t Crc32Extend(uint32_t crc, const char* data, size_t size) {
  const uint32_t* table = CrcTable();
  uint32_t c = crc ^ 0xffffffffu;
  for (size_t i = 0; i < size; ++i) {
    c = table[(c ^ static_cast<unsigned char>(data[i])) & 0xff] ^ (c >> 8);
  }
  return c ^ 0xffffffffu;
}

uint32_t Crc32(const char* data, size_t size) {
  return Crc32Extend(0, data, size);
}

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  const auto start = std::chrono::steady_clock::now();
  const std::string tmp = path + ".tmp";
  Status written = Io::Get().WriteFile(tmp, content);
  if (!written.ok()) {
    // Never strand a temp file on a live error path (a short write may have
    // persisted a torn prefix). The removal is injection-proof by design.
    Io::Get().RemoveFile(tmp);
    return written;
  }
  // A crash here leaves the old `path` intact and only an orphan .tmp behind
  // — that is the process-death model, where no cleanup can run.
  KEA_CRASH_POINT("atomic_write.before_rename");
  Status renamed = Io::Get().Rename(tmp, path);
  if (!renamed.ok()) {
    Io::Get().RemoveFile(tmp);
    return renamed;
  }
  AtomicWritesCounter()->Increment();
  AtomicWriteBytesCounter()->Increment(content.size());
  if (obs::MetricsEnabled()) {
    AtomicWriteLatencyHistogram()->Observe(ElapsedUsSince(start));
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  return Io::Get().ReadFile(path);
}

StatusOr<std::unique_ptr<Journal>> Journal::Open(const std::string& path) {
  RecoveryInfo info;
  std::string data;
  bool exists = false;
  {
    auto read = ReadFileToString(path);
    if (read.ok()) {
      exists = true;
      data = std::move(read).value();
    } else if (read.status().code() != StatusCode::kNotFound) {
      return read.status();
    }
  }

  JournalScan scan;
  if (exists && !data.empty()) {
    KEA_RETURN_IF_ERROR(ScanJournal(data, path, &scan));
    info.records = scan.records.size();
    if (scan.good_end < data.size()) {
      info.tail_truncated = true;
      info.dropped_bytes = data.size() - scan.good_end;
    }
  }

  if (!exists || data.empty()) {
    // Fresh journal: write the magic via truncation.
    KEA_RETURN_IF_ERROR(Io::Get().WriteFile(path, std::string(kMagic, kMagicLen)));
    return std::unique_ptr<Journal>(
        new Journal(path, std::vector<std::string>(), info));
  }

  if (info.tail_truncated) {
    TornTailsCounter()->Increment();
    ScrubRepairsCounter()->Increment();
    // Physically drop the torn tail so the next append starts at a record
    // boundary — but preserve the dropped bytes first: salvage must never
    // silently destroy evidence.
    info.quarantine_path = QuarantineTail(path, data, scan.good_end);
    KEA_RETURN_IF_ERROR(AtomicWriteFile(path, data.substr(0, scan.good_end)));
  }
  return std::unique_ptr<Journal>(
      new Journal(path, std::move(scan.records), info));
}

StatusOr<Journal::ScrubReport> Journal::Scrub(const std::string& path,
                                              bool repair) {
  ScrubReport report;
  std::string data;
  KEA_ASSIGN_OR_RETURN(data, ReadFileToString(path));
  JournalScan scan;
  KEA_RETURN_IF_ERROR(ScanJournal(data, path, &scan));
  report.records = scan.records.size();
  if (scan.good_end >= data.size()) return report;  // Clean.

  report.corrupt_bytes = data.size() - scan.good_end;
  if (repair) {
    report.quarantine_path = QuarantineTail(path, data, scan.good_end);
    KEA_RETURN_IF_ERROR(AtomicWriteFile(path, data.substr(0, scan.good_end)));
    report.repaired = true;
    ScrubRepairsCounter()->Increment();
  }
  return report;
}

Status Journal::Append(const std::string& payload) {
  std::string framed;
  framed.reserve(kHeaderLen + payload.size());
  StoreU32(static_cast<uint32_t>(payload.size()), &framed);
  StoreU32(Crc32(payload), &framed);
  framed += payload;

  // Injected torn write: persist the header plus half the payload — a
  // realistic power-loss artifact — then fail. Recovery at the next Open()
  // must drop exactly these bytes and keep every earlier record. Written
  // directly (not via Io): this models a process dying mid-write, not an
  // I/O error the seam should see.
  Status torn = CrashPoints::Check("journal.append.torn");
  if (!torn.ok()) {
    std::ofstream out(path_, std::ios::binary | std::ios::app);
    const size_t partial = kHeaderLen + payload.size() / 2;
    out.write(framed.data(), static_cast<std::streamsize>(partial));
    out.flush();
    return torn;
  }

  const auto start = std::chrono::steady_clock::now();
  KEA_RETURN_IF_ERROR(Io::Get().AppendFile(path_, framed));
  records_.push_back(payload);
  AppendsCounter()->Increment();
  AppendBytesCounter()->Increment(framed.size());
  if (obs::MetricsEnabled()) {
    AppendLatencyHistogram()->Observe(ElapsedUsSince(start));
  }
  return Status::OK();
}

}  // namespace kea
