#ifndef KEA_COMMON_CRASH_POINT_H_
#define KEA_COMMON_CRASH_POINT_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kea {

/// Deterministic crash-point injection, compiled into the durable control
/// plane's journaled paths. A crash point is a named location; tests arm one
/// (optionally at its n-th occurrence) and the next matching Check() returns
/// kAborted, which unwinds the operation exactly as an abrupt process death
/// would leave it: everything already journaled or checkpointed survives,
/// everything in flight is lost when the test discards the session object.
///
/// The registry is process-global and thread-safe; the fast path (nothing
/// armed, not recording) is one relaxed atomic load, so the hooks can stay
/// compiled into production paths.
class CrashPoints {
 public:
  /// Arms `name`: its `occurrence`-th Check (0-based) returns the crash
  /// status. Replaces any previously armed point.
  static void Arm(const std::string& name, int occurrence = 0);

  /// Disarms any armed point, stops recording, clears all hit counts.
  static void Reset();

  /// When recording, every Check() tallies its name (the crash-point sweep
  /// uses the tally to enumerate reachable points and their hit counts).
  static void SetRecording(bool on);

  /// (name, hits) pairs observed since recording was enabled, sorted by name.
  static std::vector<std::pair<std::string, int>> Reached();

  /// True for the status Check() returns when a crash fires.
  static bool IsCrash(const Status& status);

  /// Records the hit (when recording) and returns the crash status when this
  /// hit matches the armed (name, occurrence); OK otherwise.
  static Status Check(const std::string& name);
};

/// Propagates an injected crash out of the enclosing function.
#define KEA_CRASH_POINT(name) KEA_RETURN_IF_ERROR(::kea::CrashPoints::Check(name))

}  // namespace kea

#endif  // KEA_COMMON_CRASH_POINT_H_
