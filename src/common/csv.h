#ifndef KEA_COMMON_CSV_H_
#define KEA_COMMON_CSV_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace kea {

/// A parsed CSV table: a header row plus data rows of equal width.
struct CsvTable {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Returns the column index of `name`, or -1 if absent.
  int ColumnIndex(const std::string& name) const;
};

/// Writes rows of string cells as RFC-4180-style CSV (cells containing commas,
/// quotes, or newlines are quoted). The telemetry pipeline uses this to dump
/// machine-hour records for offline inspection.
class CsvWriter {
 public:
  /// Sets the header row; must be called before AppendRow.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Returns InvalidArgument if the width differs from
  /// the header.
  Status AppendRow(const std::vector<std::string>& row);

  /// Serializes the table to a string.
  std::string ToString() const;

  /// Writes the table to `path`. Returns an error on I/O failure.
  Status WriteFile(const std::string& path) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Parses CSV text produced by CsvWriter (handles quoted cells with embedded
/// commas/quotes/newlines). The first row is treated as the header.
StatusOr<CsvTable> ParseCsv(const std::string& text);

/// Reads and parses a CSV file.
StatusOr<CsvTable> ReadCsvFile(const std::string& path);

}  // namespace kea

#endif  // KEA_COMMON_CSV_H_
