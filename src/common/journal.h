#ifndef KEA_COMMON_JOURNAL_H_
#define KEA_COMMON_JOURNAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace kea {

/// CRC-32 (IEEE 802.3 polynomial, reflected) over a byte buffer. Used to
/// detect torn or bit-rotted journal records and snapshot sections.
uint32_t Crc32(const char* data, size_t size);
inline uint32_t Crc32(const std::string& s) { return Crc32(s.data(), s.size()); }

/// Incremental CRC-32: extends `crc` (a previous Crc32/Crc32Extend result,
/// or 0 for an empty prefix) with more bytes, without concatenating buffers.
uint32_t Crc32Extend(uint32_t crc, const char* data, size_t size);
inline uint32_t Crc32Extend(uint32_t crc, const std::string& s) {
  return Crc32Extend(crc, s.data(), s.size());
}

/// Crash-safe whole-file replacement: the content is written to
/// `<path>.tmp`, flushed, and renamed over `path` — all through the
/// `common::Io` seam, so injected storage faults and bounded retries apply.
/// A crash (or injected failure) at any point leaves either the old file or
/// the new one — never a truncated hybrid — and every error path removes
/// the temp file, so a live process never strands `<path>.tmp`. Crash
/// point: "atomic_write.before_rename" (a simulated process death, which
/// deliberately leaves the orphan temp a real crash would).
Status AtomicWriteFile(const std::string& path, const std::string& content);

/// Reads a whole file into a string via the `common::Io` seam. NotFound
/// when it cannot be opened.
StatusOr<std::string> ReadFileToString(const std::string& path);

/// An append-only, length-prefixed, CRC-checked record log — the write-ahead
/// journal under the deployment ledger. On-disk layout:
///
///   magic "KEAJNL01"
///   repeated records: [u32 payload_len][u32 crc32(payload)][payload bytes]
///
/// Open() replays existing records and recovers from a torn tail: a final
/// record with a short header, a length pointing past EOF, or a CRC mismatch
/// is detected, dropped, and physically truncated — it is never misparsed,
/// and no earlier record is lost. The dropped bytes are quarantined to
/// `<path>.quarantine` for post-mortems before the file is repaired.
/// Append() flushes each record before returning, so everything appended
/// before a crash is replayed after it.
class Journal {
 public:
  struct RecoveryInfo {
    size_t records = 0;        ///< Intact records replayed at Open().
    bool tail_truncated = false;
    size_t dropped_bytes = 0;  ///< Bytes of torn tail discarded.
    std::string quarantine_path;  ///< Where the dropped tail was preserved.
  };

  /// Offline integrity report from Scrub().
  struct ScrubReport {
    size_t records = 0;           ///< Intact records found.
    size_t corrupt_bytes = 0;     ///< Bytes past the valid prefix.
    bool repaired = false;        ///< File rewritten to the valid prefix.
    std::string quarantine_path;  ///< Set when corrupt bytes were preserved.
  };

  /// Opens (creating if absent) the journal at `path` and replays it.
  /// Returns InvalidArgument when the file exists but is not a KEA journal.
  static StatusOr<std::unique_ptr<Journal>> Open(const std::string& path);

  /// CRC-verifies every record of the journal at `path` without opening it
  /// for appends. With `repair` set, salvages the valid prefix in place:
  /// the corrupt tail is quarantined to `<path>.quarantine` and the file is
  /// atomically rewritten to end at the last intact record. A mid-file CRC
  /// mismatch is treated as the start of the corrupt tail — everything
  /// after it is quarantined, and no record is ever fabricated or altered.
  static StatusOr<ScrubReport> Scrub(const std::string& path,
                                     bool repair = true);

  /// Appends one record and flushes it to the OS. Crash point
  /// "journal.append.torn" writes a deliberately torn prefix of the record
  /// (header plus half the payload) before failing, to exercise recovery.
  Status Append(const std::string& payload);

  /// All records, in append order (replayed ones first).
  const std::vector<std::string>& records() const { return records_; }
  size_t size() const { return records_.size(); }
  const RecoveryInfo& recovery() const { return recovery_; }
  const std::string& path() const { return path_; }

 private:
  Journal(std::string path, std::vector<std::string> records, RecoveryInfo info)
      : path_(std::move(path)), records_(std::move(records)), recovery_(info) {}

  std::string path_;
  std::vector<std::string> records_;
  RecoveryInfo recovery_;
};

}  // namespace kea

#endif  // KEA_COMMON_JOURNAL_H_
