#include "common/thread_pool.h"

#include <algorithm>

namespace kea::common {

namespace {

/// The pool whose worker is executing on this thread, if any. Lets
/// ParallelFor detect same-pool nesting and fall back to inline execution
/// instead of deadlocking on its own drained workers.
thread_local const ThreadPool* t_current_pool = nullptr;

}  // namespace

int ThreadPool::ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int total = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(total - 1));
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  std::unique_lock<std::mutex> lock(mu_);
  uint64_t seen_generation = 0;
  while (true) {
    work_cv_.wait(lock, [&] { return stopping_ || generation_ != seen_generation; });
    if (stopping_) return;
    seen_generation = generation_;
    DrainIndices(lock, seen_generation);
  }
}

void ThreadPool::DrainIndices(std::unique_lock<std::mutex>& lock,
                              uint64_t generation) {
  while (generation_ == generation && !stopping_ && next_index_ < job_size_) {
    const size_t i = next_index_++;
    const std::function<void(size_t)>* job = job_;
    lock.unlock();
    std::exception_ptr err;
    try {
      (*job)(i);
    } catch (...) {
      err = std::current_exception();
    }
    lock.lock();
    if (err && (!error_ || i < error_index_)) {
      error_ = err;
      error_index_ = i;
    }
    if (++completed_ == job_size_) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_current_pool == this) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }

  // The caller participates in the loop below, so it must carry the same
  // nesting marker as the workers: a re-entrant ParallelFor from one of the
  // caller-drained bodies would otherwise stomp this job's state.
  const ThreadPool* previous_pool = t_current_pool;
  t_current_pool = this;

  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_size_ = n;
  next_index_ = 0;
  completed_ = 0;
  error_index_ = 0;
  error_ = nullptr;
  const uint64_t generation = ++generation_;
  work_cv_.notify_all();

  DrainIndices(lock, generation);
  done_cv_.wait(lock, [&] { return completed_ == job_size_; });
  t_current_pool = previous_pool;

  job_ = nullptr;
  std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::Run(int num_threads, size_t n,
                     const std::function<void(size_t)>& fn) {
  int total = ResolveThreads(num_threads);
  if (total <= 1 || n < 2) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  total = static_cast<int>(std::min<size_t>(static_cast<size_t>(total), n));
  ThreadPool pool(total);
  pool.ParallelFor(n, fn);
}

}  // namespace kea::common
