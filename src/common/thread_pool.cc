#include "common/thread_pool.h"

#include <algorithm>

#include "obs/metrics.h"
#include "obs/shard.h"
#include "obs/trace.h"

namespace kea::common {

namespace {

/// The pool whose worker is executing on this thread, if any. Lets
/// ParallelFor detect same-pool nesting and fall back to inline execution
/// instead of deadlocking on its own drained workers.
thread_local const ThreadPool* t_current_pool = nullptr;

// Deterministic instruments: one job per ParallelFor/Run, one task per loop
// index — totals are independent of thread count by construction, so the
// inline and pooled paths below must bump them identically.
obs::Counter* JobsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("threadpool.jobs");
  return c;
}
obs::Counter* TasksCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("threadpool.tasks");
  return c;
}

// Timing instruments (kTiming: wall-clock derived, excluded from the
// deterministic exports). Wait = dispatch -> index pickup; run = body
// duration; queue depth = indices still unclaimed at pickup.
obs::Histogram* TaskWaitHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "threadpool.task_wait_us", "", obs::LatencyBucketsUs(),
      obs::Kind::kTiming);
  return h;
}
obs::Histogram* TaskRunHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "threadpool.task_run_us", "", obs::LatencyBucketsUs(),
      obs::Kind::kTiming);
  return h;
}
obs::Histogram* QueueDepthHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "threadpool.queue_depth", "", obs::DepthBuckets(), obs::Kind::kTiming);
  return h;
}

double ElapsedUs(std::chrono::steady_clock::time_point from,
                 std::chrono::steady_clock::time_point to) {
  return std::chrono::duration<double, std::micro>(to - from).count();
}

// The serial paths (no workers, n == 1, nested call, Run with one thread)
// must count the same logical events as the pooled path.
void RunInline(size_t n, const std::function<void(size_t)>& fn) {
  JobsCounter()->Increment();
  for (size_t i = 0; i < n; ++i) {
    fn(i);
    TasksCounter()->Increment();
  }
}

}  // namespace

int ThreadPool::ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

ThreadPool::ThreadPool(int num_threads) {
  int total = ResolveThreads(num_threads);
  workers_.reserve(static_cast<size_t>(total - 1));
  for (int i = 1; i < total; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
  // All worker shards folded (see WorkerLoop); one epoch advance drains any
  // residue the dispatching thread accumulated during this pool's jobs into
  // the central base. Transient pools (ThreadPool::Run) therefore leave no
  // per-thread shard memory behind.
  obs::ShardRegistry::Get().AdvanceEpoch();
}

void ThreadPool::WorkerLoop() {
  t_current_pool = this;
  {
    std::unique_lock<std::mutex> lock(mu_);
    uint64_t seen_generation = 0;
    while (true) {
      work_cv_.wait(lock,
                    [&] { return stopping_ || generation_ != seen_generation; });
      if (stopping_) break;
      seen_generation = generation_;
      DrainIndices(lock, seen_generation);
    }
  }
  // Eagerly retire this worker's obs shard (the TLS destructor would too,
  // but doing it here bounds shard-table growth deterministically even if
  // the runtime defers TLS teardown).
  obs::ShardRegistry::Get().FoldCurrentThread();
}

void ThreadPool::DrainIndices(std::unique_lock<std::mutex>& lock,
                              uint64_t generation) {
  while (generation_ == generation && !stopping_ && next_index_ < job_size_) {
    const size_t i = next_index_++;
    const std::function<void(size_t)>* job = job_;
    const size_t depth = job_size_ - next_index_;
    const auto dispatch_time = job_dispatch_time_;
    const uint64_t parent_span = job_parent_span_;
    lock.unlock();

    const bool timing = obs::MetricsEnabled();
    std::chrono::steady_clock::time_point run_start;
    if (timing) {
      run_start = std::chrono::steady_clock::now();
      TaskWaitHistogram()->Observe(ElapsedUs(dispatch_time, run_start));
      QueueDepthHistogram()->Observe(static_cast<double>(depth));
    }
    // Spans begun inside the body (per-group fits, per-candidate draws)
    // nest under the dispatching ParallelFor span rather than floating as
    // roots on the worker thread.
    const bool traced = obs::TraceEnabled();
    uint64_t previous_parent = 0;
    if (traced) {
      previous_parent =
          obs::Tracer::Get().ExchangeThreadDefaultParent(parent_span);
    }

    std::exception_ptr err;
    try {
      (*job)(i);
    } catch (...) {
      err = std::current_exception();
    }

    if (traced) {
      obs::Tracer::Get().ExchangeThreadDefaultParent(previous_parent);
    }
    if (timing) {
      TaskRunHistogram()->Observe(
          ElapsedUs(run_start, std::chrono::steady_clock::now()));
    }
    TasksCounter()->Increment();

    lock.lock();
    if (err && (!error_ || i < error_index_)) {
      error_ = err;
      error_index_ = i;
    }
    if (++completed_ == job_size_) done_cv_.notify_all();
  }
}

void ThreadPool::ParallelFor(size_t n, const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (workers_.empty() || n == 1 || t_current_pool == this) {
    RunInline(n, fn);
    return;
  }

  KEA_TRACE_SPAN("threadpool.parallel_for", {{"n", std::to_string(n)}});
  JobsCounter()->Increment();

  // The caller participates in the loop below, so it must carry the same
  // nesting marker as the workers: a re-entrant ParallelFor from one of the
  // caller-drained bodies would otherwise stomp this job's state.
  const ThreadPool* previous_pool = t_current_pool;
  t_current_pool = this;

  std::unique_lock<std::mutex> lock(mu_);
  job_ = &fn;
  job_size_ = n;
  next_index_ = 0;
  completed_ = 0;
  error_index_ = 0;
  error_ = nullptr;
  job_dispatch_time_ = std::chrono::steady_clock::now();
  job_parent_span_ = obs::Tracer::Get().CurrentSpanId();
  const uint64_t generation = ++generation_;
  work_cv_.notify_all();

  DrainIndices(lock, generation);
  done_cv_.wait(lock, [&] { return completed_ == job_size_; });
  t_current_pool = previous_pool;

  job_ = nullptr;
  std::exception_ptr err = error_;
  error_ = nullptr;
  lock.unlock();
  if (err) std::rethrow_exception(err);
}

void ThreadPool::Run(int num_threads, size_t n,
                     const std::function<void(size_t)>& fn) {
  int total = ResolveThreads(num_threads);
  if (total <= 1 || n < 2) {
    RunInline(n, fn);
    return;
  }
  total = static_cast<int>(std::min<size_t>(static_cast<size_t>(total), n));
  ThreadPool pool(total);
  pool.ParallelFor(n, fn);
}

}  // namespace kea::common
