#ifndef KEA_COMMON_STATUS_H_
#define KEA_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace kea {

/// Canonical error codes, modeled after absl::StatusCode. Library code never
/// throws; fallible operations return Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kUnimplemented = 6,
  kInternal = 7,
  kResourceExhausted = 8,
  kInfeasible = 9,   ///< Optimization problem has no feasible solution.
  kUnbounded = 10,   ///< Optimization problem is unbounded.
  kUnavailable = 11, ///< Transient failure; retrying may succeed.
  kAborted = 12,     ///< Operation was cut short (e.g. injected crash).
  kDeadlineExceeded = 13,  ///< The request's deadline passed before completion.
};

/// Returns a human-readable name for a StatusCode ("OK", "INVALID_ARGUMENT"...).
const char* StatusCodeToString(StatusCode code);

/// A lightweight success-or-error result for operations with no payload.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message. A kOk code with a
  /// non-empty message is normalized to an empty message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(code == StatusCode::kOk ? "" : std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Infeasible(std::string msg) {
    return Status(StatusCode::kInfeasible, std::move(msg));
  }
  static Status Unbounded(std::string msg) {
    return Status(StatusCode::kUnbounded, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// A union of a Status and a value of type T: either holds an OK status and a
/// value, or a non-OK status and no value.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a non-OK status. Constructing from an OK status without a
  /// value is a programming error and is converted to an internal error.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed with OK status but no value");
    }
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : status_(), value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Asserts in debug builds.
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the contained value, or `fallback` if this holds an error.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK Status from an expression to the caller.
#define KEA_RETURN_IF_ERROR(expr)            \
  do {                                       \
    ::kea::Status _kea_status = (expr);      \
    if (!_kea_status.ok()) return _kea_status; \
  } while (false)

/// Evaluates a StatusOr expression; on error returns the status, otherwise
/// assigns the value to `lhs`.
#define KEA_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto KEA_CONCAT_(_kea_statusor_, __LINE__) = (expr);  \
  if (!KEA_CONCAT_(_kea_statusor_, __LINE__).ok())      \
    return KEA_CONCAT_(_kea_statusor_, __LINE__).status(); \
  lhs = std::move(KEA_CONCAT_(_kea_statusor_, __LINE__)).value()

#define KEA_CONCAT_IMPL_(a, b) a##b
#define KEA_CONCAT_(a, b) KEA_CONCAT_IMPL_(a, b)

}  // namespace kea

#endif  // KEA_COMMON_STATUS_H_
