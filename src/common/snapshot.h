#ifndef KEA_COMMON_SNAPSHOT_H_
#define KEA_COMMON_SNAPSHOT_H_

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace kea {

/// A multi-section checkpoint container written as ONE atomic file. Each
/// section is a named, CRC-checked blob (telemetry CSV, RNG state, cluster
/// config...). Because the whole container goes through AtomicWriteFile, a
/// crash during Checkpoint() can never leave mixed generations of the parts —
/// the checkpoint on disk is either entirely old or entirely new.
///
/// On-disk layout:
///   magic "KEASNP01"
///   [u32 section_count]
///   repeated: [u32 name_len][name][u32 content_len][u32 crc32(name+content)][content]
/// The up-front count catches truncation at an exact section boundary, which
/// the per-section CRCs alone cannot. The CRC covers the section NAME as
/// well as its content: a bit flip in a name would otherwise silently turn
/// an optional section invisible — state loss with no error anywhere.
class SnapshotWriter {
 public:
  /// Adds a named section. Names must be unique; content is arbitrary bytes.
  void AddSection(const std::string& name, std::string content);

  /// Serializes all sections and atomically replaces `path` (temp + rename).
  Status WriteFile(const std::string& path) const;

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Reads a snapshot container, verifying every section's CRC. A snapshot
/// that fails any check is rejected whole — partial trust would defeat the
/// all-or-nothing guarantee the writer provides. Rejected with distinct
/// errors: truncation mid-section, fewer sections than declared, trailing
/// bytes past the declared count, duplicate section names, CRC mismatch.
class SnapshotReader {
 public:
  static StatusOr<SnapshotReader> Open(const std::string& path);

  /// Returns the named section, or NotFound.
  StatusOr<std::string> Section(const std::string& name) const;
  bool Has(const std::string& name) const;
  const std::vector<std::pair<std::string, std::string>>& sections() const {
    return sections_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> sections_;
};

/// Keep-last-K snapshot generations: every checkpoint write first rotates
/// the live file `<path>` to `<path>.g<N+1>` (monotonic generation numbers),
/// then installs the new container atomically, then prunes to the newest
/// `keep` rotated generations. Restore walks the live file and then the
/// generations newest-first, so a corrupted or half-installed checkpoint
/// falls back to the newest older one that still validates — the caller
/// replays the journal tail from there to catch up.
class SnapshotGenerations {
 public:
  /// Writes `snapshot` to `path` with rotation. `keep <= 0` disables
  /// rotation entirely — byte-identical to SnapshotWriter::WriteFile.
  static Status Write(const SnapshotWriter& snapshot, const std::string& path,
                      int keep);

  /// Rotated generation numbers present next to `path`, ascending.
  static std::vector<uint64_t> List(const std::string& path);

  /// `<path>.g<generation>`.
  static std::string GenerationPath(const std::string& path,
                                    uint64_t generation);

  struct Restored {
    SnapshotReader reader;
    std::string source_path;
    uint64_t generation = 0;  ///< 0 = the live file.
    size_t discarded = 0;     ///< Newer candidates skipped as invalid.
  };
  /// Opens the newest candidate that (a) parses with all CRCs intact and
  /// (b) passes `validate` (optional — e.g. "checkpoint coverage must not
  /// exceed what the ledger holds"). Candidates that exist but fail either
  /// check are counted in `discarded` and bump the
  /// `durability.generations_discarded` counter. NotFound only when no
  /// candidate exists at all; otherwise the last candidate's error.
  using Validator = std::function<Status(const SnapshotReader&)>;
  static StatusOr<Restored> RestoreLatestValid(const std::string& path,
                                               const Validator& validate = {});
};

/// Little-endian binary codec for component state blobs (RNG cursors, fault
/// injector queues, ...). Doubles are stored as raw IEEE-754 bit patterns so
/// restore is bit-exact; strings are length-prefixed.
class StateWriter {
 public:
  void PutU32(uint32_t v);
  void PutU64(uint64_t v);
  void PutI64(int64_t v) { PutU64(static_cast<uint64_t>(v)); }
  void PutInt(int v) { PutI64(v); }
  void PutBool(bool v) { PutU32(v ? 1 : 0); }
  void PutDouble(double v);
  void PutString(const std::string& s);

  const std::string& str() const { return buf_; }
  std::string Release() { return std::move(buf_); }

 private:
  std::string buf_;
};

/// Reads back what StateWriter wrote, in the same order. Any overrun returns
/// InvalidArgument — a truncated blob never yields fabricated values.
class StateReader {
 public:
  explicit StateReader(std::string data) : data_(std::move(data)) {}

  Status GetU32(uint32_t* v);
  Status GetU64(uint64_t* v);
  Status GetI64(int64_t* v);
  Status GetInt(int* v);
  Status GetBool(bool* v);
  Status GetDouble(double* v);
  Status GetString(std::string* s);

  bool AtEnd() const { return pos_ == data_.size(); }

 private:
  std::string data_;
  size_t pos_ = 0;
};

}  // namespace kea

#endif  // KEA_COMMON_SNAPSHOT_H_
