#ifndef KEA_COMMON_VIRTUAL_CLOCK_H_
#define KEA_COMMON_VIRTUAL_CLOCK_H_

#include <algorithm>
#include <atomic>
#include <cstdint>

namespace kea {

/// Deterministic service clock in virtual milliseconds. Nothing in KEA reads
/// a wall clock on a decision path: simulation time is sim::HourIndex, and
/// the serving layer's deadlines/overload control run against this clock,
/// advanced explicitly by whoever drives the service (a test's scripted
/// arrival schedule, a bench's open-loop generator, or — in a deployment —
/// a ticker thread). Because every advance is an explicit, ordered event,
/// any decision derived from `now_ms()` replays bit-identically.
///
/// Monotonic by construction: AdvanceTo clamps backwards motion to a no-op,
/// so concurrent readers only ever see time move forward.
class VirtualClock {
 public:
  explicit VirtualClock(int64_t start_ms = 0) : now_ms_(start_ms) {}

  int64_t now_ms() const { return now_ms_.load(std::memory_order_acquire); }

  /// Moves the clock to `ms` (no-op when `ms` is in the past). Returns the
  /// clock's value after the call.
  int64_t AdvanceTo(int64_t ms) {
    int64_t cur = now_ms_.load(std::memory_order_relaxed);
    while (ms > cur &&
           !now_ms_.compare_exchange_weak(cur, ms, std::memory_order_release,
                                          std::memory_order_relaxed)) {
    }
    return std::max(cur, ms);
  }

  int64_t AdvanceBy(int64_t delta_ms) {
    return now_ms_.fetch_add(delta_ms, std::memory_order_acq_rel) + delta_ms;
  }

 private:
  std::atomic<int64_t> now_ms_;
};

/// Sentinel for "no deadline": requests carrying it are never shed for
/// staleness and take the exact pre-overload-control dispatch path.
inline constexpr int64_t kNoDeadlineMs = INT64_MAX;

}  // namespace kea

#endif  // KEA_COMMON_VIRTUAL_CLOCK_H_
