#include "common/logging.h"

#include <chrono>
#include <cstdio>
#include <mutex>

#include "obs/metrics.h"

namespace kea {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

// Per-level emitted-line counters. Deterministic: lines are logical events;
// the timestamp prefix (wall clock) never reaches the registry.
obs::Counter* LinesCounter(LogLevel level) {
  static obs::Counter* counters[4] = {
      obs::Registry::Get().GetCounter("log.lines", "level=DEBUG"),
      obs::Registry::Get().GetCounter("log.lines", "level=INFO"),
      obs::Registry::Get().GetCounter("log.lines", "level=WARN"),
      obs::Registry::Get().GetCounter("log.lines", "level=ERROR"),
  };
  int i = static_cast<int>(level);
  if (i < 0 || i > 3) i = 3;
  return counters[i];
}

std::chrono::steady_clock::time_point LogEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger;
  // Pin the timestamp epoch to first use so `[+0.000s]` means "logger came
  // up", not "first timestamped line".
  (void)LogEpoch();
  return *logger;
}

void Logger::set_sink(Sink sink) {
  std::lock_guard<std::mutex> lock(LogMutex());
  sink_ = std::move(sink);
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (quiet() || static_cast<int>(level) < static_cast<int>(min_level_.load(
                                               std::memory_order_relaxed))) {
    return;
  }
  LinesCounter(level)->Increment();
  std::string line;
  if (timestamps()) {
    char prefix[32];
    double secs = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - LogEpoch())
                      .count();
    std::snprintf(prefix, sizeof(prefix), "[+%.3fs] ", secs);
    line += prefix;
  }
  line += "[kea ";
  line += LevelName(level);
  line += "] ";
  line += message;
  std::lock_guard<std::mutex> lock(LogMutex());
  if (sink_) {
    sink_(level, line);
    return;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace kea
