#include "common/logging.h"

#include <cstdio>
#include <mutex>

namespace kea {

namespace {

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

std::mutex& LogMutex() {
  static std::mutex* mu = new std::mutex;
  return *mu;
}

}  // namespace

Logger& Logger::Get() {
  static Logger* logger = new Logger;
  return *logger;
}

void Logger::Write(LogLevel level, const std::string& message) {
  if (quiet_ || static_cast<int>(level) < static_cast<int>(min_level_)) return;
  std::lock_guard<std::mutex> lock(LogMutex());
  std::fprintf(stderr, "[kea %s] %s\n", LevelName(level), message.c_str());
}

}  // namespace kea
