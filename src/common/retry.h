#ifndef KEA_COMMON_RETRY_H_
#define KEA_COMMON_RETRY_H_

#include <cstdint>
#include <functional>

#include "common/random.h"
#include "common/status.h"

namespace kea {

/// Bounded exponential backoff with deterministic jitter, used to wrap
/// transient failures on the telemetry ingestion path (the production data
/// orchestration pipeline retries flaky Cosmos reads the same way).
///
/// Two properties matter here:
///
///   1. **Bounded.** A retry loop in a tuning system must never spin forever:
///      after `max_attempts` the operation fails permanently and the caller
///      decides (the ingestion pipeline quarantines the record instead of
///      blocking the loop).
///   2. **Deterministic.** The jitter on attempt `a` of the policy's `c`-th
///      wrapped call is a pure function of (seed, c, a) via Rng::Split-style
///      seed mixing, so a simulated run replays bit-identically — retries and
///      all — given the seed. Nothing actually sleeps: the simulator has no
///      wall clock, so backoff is accounted in virtual milliseconds via
///      stats().
class RetryPolicy {
 public:
  struct Options {
    /// Total tries per operation, including the first. Must be >= 1.
    int max_attempts = 4;
    /// Backoff before retry r (1-based) is
    /// min(initial_backoff_ms * multiplier^(r-1), max_backoff_ms),
    /// scaled by a jitter factor in [1 - jitter, 1 + jitter].
    double initial_backoff_ms = 10.0;
    double backoff_multiplier = 2.0;
    double max_backoff_ms = 1000.0;
    double jitter = 0.2;
    /// Substream key for the deterministic jitter draws.
    uint64_t seed = 42;
  };

  struct Stats {
    int64_t calls = 0;              ///< Run() invocations.
    int64_t attempts = 0;           ///< Total operation attempts.
    int64_t retries = 0;            ///< Attempts beyond the first.
    int64_t exhausted = 0;          ///< Calls that failed all attempts.
    double total_backoff_ms = 0.0;  ///< Virtual time spent backing off.
  };

  RetryPolicy() : RetryPolicy(Options()) {}
  explicit RetryPolicy(const Options& options) : options_(options) {}

  /// True for codes worth retrying: the failure is expected to clear on its
  /// own (overloaded or momentarily unreachable ingestion sink).
  static bool IsTransient(StatusCode code) {
    return code == StatusCode::kUnavailable ||
           code == StatusCode::kResourceExhausted;
  }

  /// Runs `op` (which receives the 0-based attempt index) until it returns OK,
  /// a non-transient error, or attempts are exhausted — whichever comes first.
  /// Returns the last status. Exhaustion returns the final transient error.
  Status Run(const std::function<Status(int attempt)>& op);

  /// Jittered backoff in virtual ms before retry `retry_index` (1-based) of
  /// call `call_index` (0-based). Pure function of (seed, call, retry).
  double BackoffMs(uint64_t call_index, int retry_index) const;

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }
  void ResetStats() { stats_ = Stats(); }

  /// Restores counters from a checkpoint. stats_.calls doubles as the call
  /// index feeding the deterministic jitter, so a resumed pipeline must put
  /// it back for retries to replay bit-identically.
  void RestoreStats(const Stats& stats) { stats_ = stats; }

 private:
  Options options_;
  Stats stats_;
};

}  // namespace kea

#endif  // KEA_COMMON_RETRY_H_
