#include "common/crash_point.h"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>

namespace kea {
namespace {

constexpr const char kCrashPrefix[] = "crash injected at ";

struct Registry {
  std::mutex mu;
  bool armed = false;
  std::string armed_name;
  int armed_occurrence = 0;
  bool recording = false;
  std::map<std::string, int> hits;
};

Registry& registry() {
  static Registry* r = new Registry();
  return *r;
}

/// Fast-path gate: true when anything is armed or recording.
std::atomic<bool>& active() {
  static std::atomic<bool> a{false};
  return a;
}

}  // namespace

void CrashPoints::Arm(const std::string& name, int occurrence) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed = true;
  r.armed_name = name;
  r.armed_occurrence = occurrence;
  r.hits.clear();
  active().store(true, std::memory_order_release);
}

void CrashPoints::Reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.armed = false;
  r.armed_name.clear();
  r.armed_occurrence = 0;
  r.recording = false;
  r.hits.clear();
  active().store(false, std::memory_order_release);
}

void CrashPoints::SetRecording(bool on) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.recording = on;
  if (on) r.hits.clear();
  active().store(on || r.armed, std::memory_order_release);
}

std::vector<std::pair<std::string, int>> CrashPoints::Reached() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return {r.hits.begin(), r.hits.end()};
}

bool CrashPoints::IsCrash(const Status& status) {
  return status.code() == StatusCode::kAborted &&
         status.message().rfind(kCrashPrefix, 0) == 0;
}

Status CrashPoints::Check(const std::string& name) {
  if (!active().load(std::memory_order_acquire)) return Status::OK();
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  int hit = r.hits[name]++;
  if (r.armed && r.armed_name == name && hit == r.armed_occurrence) {
    // One shot: a crashed process cannot crash twice. The resumed run must
    // sail past this point, so disarm before returning.
    r.armed = false;
    active().store(r.recording, std::memory_order_release);
    return Status::Aborted(kCrashPrefix + name + " (occurrence " +
                           std::to_string(hit) + ")");
  }
  return Status::OK();
}

}  // namespace kea
