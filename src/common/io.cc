#include "common/io.h"

#include <cstdio>
#include <fstream>
#include <iterator>

#include "obs/metrics.h"

namespace kea {
namespace {

// durability.retries counts retry attempts the Io seam spent absorbing
// transient storage faults — deterministic: it only moves when faults are
// injected (or a real disk misbehaves).
obs::Counter* RetriesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durability.retries");
  return c;
}
obs::Counter* RetriesExhaustedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durability.retries_exhausted");
  return c;
}

Status InjectedStatus(StorageFaultKind kind, StorageOp op,
                      const std::string& path) {
  const std::string what = std::string(StorageFaultKindName(kind)) + " (" +
                           StorageOpName(op) + ") on " + path;
  switch (kind) {
    case StorageFaultKind::kTransientEio:
    case StorageFaultKind::kPersistentEio:
      return Status::Unavailable("storage: injected " + what);
    case StorageFaultKind::kEnospc:
      return Status::ResourceExhausted("storage: injected " + what);
    default:
      return Status::Internal("storage: injected " + what);
  }
}

}  // namespace

Io& Io::Get() {
  static Io* io = new Io();
  return *io;
}

StorageFaultInjector::Decision Io::Decide(StorageOp op,
                                          const std::string& path) {
  if (injector_ == nullptr) return StorageFaultInjector::Decision();
  return injector_->Next(op, path);
}

StatusOr<std::string> Io::ReadFile(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t retries_before = retry_.stats().retries;
  std::string content;
  Status st = retry_.Run([&](int) -> Status {
    auto d = Decide(StorageOp::kRead, path);
    if (d.Is(StorageFaultKind::kTransientEio) ||
        d.Is(StorageFaultKind::kPersistentEio)) {
      return InjectedStatus(d.kind, StorageOp::kRead, path);
    }
    std::ifstream in(path, std::ios::binary);
    if (!in.is_open()) {
      return Status::NotFound("cannot open file: " + path);
    }
    content.assign(std::istreambuf_iterator<char>(in),
                   std::istreambuf_iterator<char>());
    if (d.faulted) {
      // At-rest corruption: the bytes rotted on disk; the image the caller
      // sees is damaged and its CRC machinery is expected to reject it.
      StorageFaultInjector::ApplyCorruption(d.kind, d.draw, &content);
    }
    return Status::OK();
  });
  const int64_t delta = retry_.stats().retries - retries_before;
  if (delta > 0) RetriesCounter()->Increment(static_cast<uint64_t>(delta));
  if (!st.ok()) {
    if (RetryPolicy::IsTransient(st.code())) {
      RetriesExhaustedCounter()->Increment();
    }
    return st;
  }
  return content;
}

Status Io::WriteFile(const std::string& path, const std::string& content) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t retries_before = retry_.stats().retries;
  Status st = retry_.Run([&](int) -> Status {
    auto d = Decide(StorageOp::kWrite, path);
    if (d.Is(StorageFaultKind::kTransientEio) ||
        d.Is(StorageFaultKind::kPersistentEio) ||
        d.Is(StorageFaultKind::kEnospc)) {
      return InjectedStatus(d.kind, StorageOp::kWrite, path);
    }
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out.is_open()) {
      return Status::Internal("storage: cannot open file for write: " + path);
    }
    if (d.Is(StorageFaultKind::kShortWrite)) {
      // Persist a torn prefix, then fail without retry: the damage is on
      // disk and recovery (not a rewrite loop) must deal with it.
      out.write(content.data(),
                static_cast<std::streamsize>(content.size() / 2));
      out.flush();
      return InjectedStatus(d.kind, StorageOp::kWrite, path);
    }
    out.write(content.data(), static_cast<std::streamsize>(content.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("storage: write failed: " + path);
    }
    auto f = Decide(StorageOp::kFlush, path);
    if (f.faulted) {
      // A failed whole-file flush is retry-safe: the rewrite starts over.
      return InjectedStatus(f.kind, StorageOp::kFlush, path);
    }
    return Status::OK();
  });
  const int64_t delta = retry_.stats().retries - retries_before;
  if (delta > 0) RetriesCounter()->Increment(static_cast<uint64_t>(delta));
  if (!st.ok() && RetryPolicy::IsTransient(st.code())) {
    RetriesExhaustedCounter()->Increment();
  }
  return st;
}

Status Io::AppendFile(const std::string& path, const std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t retries_before = retry_.stats().retries;
  Status st = retry_.Run([&](int) -> Status {
    auto d = Decide(StorageOp::kWrite, path);
    if (d.Is(StorageFaultKind::kTransientEio) ||
        d.Is(StorageFaultKind::kPersistentEio) ||
        d.Is(StorageFaultKind::kEnospc)) {
      // Pre-write faults: nothing reached the file, a retry is safe.
      return InjectedStatus(d.kind, StorageOp::kWrite, path);
    }
    std::ofstream out(path, std::ios::binary | std::ios::app);
    if (!out.is_open()) {
      return Status::Internal("storage: cannot open file for append: " + path);
    }
    if (d.Is(StorageFaultKind::kShortWrite)) {
      out.write(data.data(), static_cast<std::streamsize>(data.size() / 2));
      out.flush();
      return InjectedStatus(d.kind, StorageOp::kWrite, path);
    }
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out.good()) {
      return Status::Internal("storage: append failed: " + path);
    }
    auto f = Decide(StorageOp::kFlush, path);
    if (f.faulted) {
      // The bytes may already be durable; retrying would duplicate the
      // record. Fail non-retryably — the journal scrubber and the ledger's
      // idempotency keys own recovery for this case.
      return Status::Internal(
          "storage: injected flush fault after append on " + path +
          " (record durability indeterminate)");
    }
    return Status::OK();
  });
  const int64_t delta = retry_.stats().retries - retries_before;
  if (delta > 0) RetriesCounter()->Increment(static_cast<uint64_t>(delta));
  if (!st.ok() && RetryPolicy::IsTransient(st.code())) {
    RetriesExhaustedCounter()->Increment();
  }
  return st;
}

Status Io::Rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mu_);
  const int64_t retries_before = retry_.stats().retries;
  Status st = retry_.Run([&](int) -> Status {
    auto d = Decide(StorageOp::kRename, from);
    if (d.faulted) {
      return InjectedStatus(d.kind, StorageOp::kRename, from);
    }
    if (std::rename(from.c_str(), to.c_str()) != 0) {
      return Status::Internal("storage: rename failed: " + from + " -> " + to);
    }
    return Status::OK();
  });
  const int64_t delta = retry_.stats().retries - retries_before;
  if (delta > 0) RetriesCounter()->Increment(static_cast<uint64_t>(delta));
  if (!st.ok() && RetryPolicy::IsTransient(st.code())) {
    RetriesExhaustedCounter()->Increment();
  }
  return st;
}

void Io::RemoveFile(const std::string& path) {
  std::remove(path.c_str());
}

void Io::SetFaultInjector(StorageFaultInjector* injector) {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = injector;
}

StorageFaultInjector* Io::fault_injector() const {
  std::lock_guard<std::mutex> lock(mu_);
  return injector_;
}

void Io::SetRetryOptions(const RetryPolicy::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  RetryPolicy fresh(options);
  fresh.RestoreStats(retry_.stats());
  retry_ = fresh;
}

RetryPolicy::Stats Io::retry_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retry_.stats();
}

void Io::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  injector_ = nullptr;
  retry_ = RetryPolicy();
}

bool IsStorageFailure(const Status& s) {
  return !s.ok() && s.code() != StatusCode::kAborted &&
         s.message().find("storage:") != std::string::npos;
}

}  // namespace kea
