#ifndef KEA_COMMON_THREAD_POOL_H_
#define KEA_COMMON_THREAD_POOL_H_

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace kea::common {

/// A fixed-size fork-join pool for KEA's embarrassingly parallel loops: the
/// Monte-Carlo candidate grid, per-group model fitting, and the fluid-engine
/// configuration sweep.
///
/// Deliberately work-stealing-free: ParallelFor hands out loop indices from a
/// single shared counter, so scheduling only decides *when* an index runs,
/// never *what* it computes. Determinism therefore rests with the loop body:
/// one that derives all of its randomness from the index (see Rng::Split)
/// produces bit-identical results at any thread count.
///
/// `num_threads` counts total concurrency including the calling thread: the
/// pool spawns num_threads - 1 workers and the caller participates in every
/// ParallelFor. num_threads == 1 spawns nothing and runs loops inline — the
/// exact legacy serial path.
///
/// The pool is built for coarse-grained bodies (hundreds of microseconds and
/// up); index handoff takes the pool mutex, which would dominate a
/// nanosecond-scale loop body.
class ThreadPool {
 public:
  /// 0 = std::thread::hardware_concurrency(). Clamped to >= 1.
  explicit ThreadPool(int num_threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of ParallelFor: spawned workers + the caller.
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Runs fn(i) for every i in [0, n) and blocks until all calls return.
  /// Every index runs exactly once even when some throw; after the loop
  /// drains, the exception thrown at the *smallest* index is rethrown on the
  /// caller (smallest rather than first-observed, so the propagated error is
  /// independent of scheduling). Calling ParallelFor from inside one of this
  /// pool's workers runs the nested loop inline on that worker — the
  /// nested-submit deadlock guard.
  void ParallelFor(size_t n, const std::function<void(size_t)>& fn);

  /// One-shot helper: resolves `num_threads` (0 = hardware concurrency),
  /// runs the loop inline when the effective count is 1 or n < 2, and
  /// otherwise spins up a transient pool of min(num_threads, n) threads.
  static void Run(int num_threads, size_t n, const std::function<void(size_t)>& fn);

  /// 0 -> hardware_concurrency (at least 1); any positive value unchanged.
  static int ResolveThreads(int num_threads);

 private:
  void WorkerLoop();
  /// Pulls and runs indices of the current job until it drains or the
  /// generation moves on. Called with `lock` held; releases it around fn.
  void DrainIndices(std::unique_lock<std::mutex>& lock, uint64_t generation);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< Workers wait here for a new job.
  std::condition_variable done_cv_;  ///< ParallelFor waits here for drain.
  bool stopping_ = false;            ///< Guarded by mu_.
  uint64_t generation_ = 0;          ///< Bumped per ParallelFor; guarded by mu_.

  // Current job; all fields guarded by mu_.
  const std::function<void(size_t)>* job_ = nullptr;
  size_t job_size_ = 0;
  size_t next_index_ = 0;
  size_t completed_ = 0;
  size_t error_index_ = 0;
  std::exception_ptr error_;

  // Observability context of the current job (guarded by mu_): the dispatch
  // time feeds the task-wait histogram and the dispatching span id lets
  // worker-side spans nest under the ParallelFor span (kTiming only — none
  // of this affects which index runs where).
  std::chrono::steady_clock::time_point job_dispatch_time_{};
  uint64_t job_parent_span_ = 0;
};

}  // namespace kea::common

#endif  // KEA_COMMON_THREAD_POOL_H_
