#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/journal.h"

namespace kea {

namespace {

bool NeedsQuoting(const std::string& cell) {
  return cell.find_first_of(",\"\n\r") != std::string::npos;
}

std::string QuoteCell(const std::string& cell) {
  if (!NeedsQuoting(cell)) return cell;
  std::string out = "\"";
  for (char c : cell) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

void AppendRowText(const std::vector<std::string>& row, std::string* out) {
  for (size_t i = 0; i < row.size(); ++i) {
    if (i > 0) *out += ',';
    *out += QuoteCell(row[i]);
  }
  *out += '\n';
}

}  // namespace

int CsvTable::ColumnIndex(const std::string& name) const {
  for (size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return static_cast<int>(i);
  }
  return -1;
}

void CsvWriter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

Status CsvWriter::AppendRow(const std::vector<std::string>& row) {
  if (!header_.empty() && row.size() != header_.size()) {
    return Status::InvalidArgument("CSV row width " + std::to_string(row.size()) +
                                   " does not match header width " +
                                   std::to_string(header_.size()));
  }
  rows_.push_back(row);
  return Status::OK();
}

std::string CsvWriter::ToString() const {
  std::string out;
  if (!header_.empty()) AppendRowText(header_, &out);
  for (const auto& row : rows_) AppendRowText(row, &out);
  return out;
}

Status CsvWriter::WriteFile(const std::string& path) const {
  // Crash-safe: the table lands in `<path>.tmp` first and is renamed into
  // place, so a failure mid-write leaves any previous file untouched rather
  // than a truncated-but-readable CSV.
  return AtomicWriteFile(path, ToString());
}

StatusOr<CsvTable> ParseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> all_rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_started = false;

  auto end_cell = [&]() {
    row.push_back(cell);
    cell.clear();
    cell_started = false;
  };
  auto end_row = [&]() {
    end_cell();
    all_rows.push_back(row);
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          cell += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cell += c;
      }
    } else {
      if (c == '"' && !cell_started) {
        in_quotes = true;
        cell_started = true;
      } else if (c == ',') {
        end_cell();
      } else if (c == '\n') {
        end_row();
      } else if (c == '\r') {
        // Swallow; \r\n is handled by the \n branch.
      } else {
        cell += c;
        cell_started = true;
      }
    }
  }
  if (in_quotes) return Status::InvalidArgument("unterminated quoted CSV cell");
  if (cell_started || !row.empty() || !cell.empty()) end_row();

  if (all_rows.empty()) return Status::InvalidArgument("empty CSV input");

  CsvTable table;
  table.header = all_rows.front();
  for (size_t i = 1; i < all_rows.size(); ++i) {
    if (all_rows[i].size() != table.header.size()) {
      return Status::InvalidArgument("CSV row " + std::to_string(i) + " has width " +
                                     std::to_string(all_rows[i].size()) +
                                     ", expected " + std::to_string(table.header.size()));
    }
    table.rows.push_back(std::move(all_rows[i]));
  }
  return table;
}

StatusOr<CsvTable> ReadCsvFile(const std::string& path) {
  std::ifstream file(path);
  if (!file) return Status::NotFound("cannot open file: " + path);
  std::ostringstream buffer;
  buffer << file.rdbuf();
  return ParseCsv(buffer.str());
}

}  // namespace kea
