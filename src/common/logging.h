#ifndef KEA_COMMON_LOGGING_H_
#define KEA_COMMON_LOGGING_H_

#include <atomic>
#include <functional>
#include <sstream>
#include <string>

namespace kea {

/// Severity levels for the KEA logger, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Not a full logging framework:
/// enough for library diagnostics without external dependencies.
///
/// Thread-safe: the level/quiet filters are atomics so concurrent writers
/// never race with a test flipping them, and line emission is serialized so
/// output from concurrent threads never interleaves mid-line.
///
/// Usage: `KEA_LOG(Info) << "fitted " << n << " models";`
class Logger {
 public:
  /// Replacement destination for formatted log lines. Receives the level and
  /// the fully formatted line (timestamp prefix included, no trailing
  /// newline). Used to capture log output as obs events or into test buffers.
  using Sink = std::function<void(LogLevel, const std::string&)>;

  /// Returns the process-wide logger.
  static Logger& Get();

  /// Messages below `level` are dropped.
  void set_min_level(LogLevel level) {
    min_level_.store(static_cast<int>(level), std::memory_order_relaxed);
  }
  LogLevel min_level() const {
    return static_cast<LogLevel>(min_level_.load(std::memory_order_relaxed));
  }

  /// Silences all output (used by tests).
  void set_quiet(bool quiet) {
    quiet_.store(quiet, std::memory_order_relaxed);
  }
  bool quiet() const { return quiet_.load(std::memory_order_relaxed); }

  /// Prefixes each line with a monotonic `[+12.345s]` timestamp (steady
  /// clock, seconds since the logger was first used). Off by default so
  /// deterministic golden outputs stay byte-stable.
  void set_timestamps(bool enabled) {
    timestamps_.store(enabled, std::memory_order_relaxed);
  }
  bool timestamps() const {
    return timestamps_.load(std::memory_order_relaxed);
  }

  /// Redirects formatted lines to `sink` instead of stderr; pass nullptr to
  /// restore stderr. The sink is invoked with emission serialized, so it may
  /// append to unsynchronized storage.
  void set_sink(Sink sink);

  /// Writes one formatted line if `level` passes the filter.
  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::atomic<bool> quiet_{false};
  std::atomic<bool> timestamps_{false};
  Sink sink_;  // Guarded by the emission mutex in logging.cc.
};

namespace internal_logging {

/// Accumulates one log statement and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define KEA_LOG(severity) \
  ::kea::internal_logging::LogMessage(::kea::LogLevel::k##severity)

#define KEA_LOG_DEBUG KEA_LOG(Debug)
#define KEA_LOG_INFO KEA_LOG(Info)
#define KEA_LOG_WARNING KEA_LOG(Warning)
#define KEA_LOG_ERROR KEA_LOG(Error)

}  // namespace kea

#endif  // KEA_COMMON_LOGGING_H_
