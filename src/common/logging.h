#ifndef KEA_COMMON_LOGGING_H_
#define KEA_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace kea {

/// Severity levels for the KEA logger, lowest to highest.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Minimal leveled logger writing to stderr. Not a full logging framework:
/// enough for library diagnostics without external dependencies.
///
/// Usage: `KEA_LOG(Info) << "fitted " << n << " models";`
class Logger {
 public:
  /// Returns the process-wide logger.
  static Logger& Get();

  /// Messages below `level` are dropped.
  void set_min_level(LogLevel level) { min_level_ = level; }
  LogLevel min_level() const { return min_level_; }

  /// Silences all output (used by tests).
  void set_quiet(bool quiet) { quiet_ = quiet; }
  bool quiet() const { return quiet_; }

  /// Writes one formatted line if `level` passes the filter.
  void Write(LogLevel level, const std::string& message);

 private:
  Logger() = default;
  LogLevel min_level_ = LogLevel::kInfo;
  bool quiet_ = false;
};

namespace internal_logging {

/// Accumulates one log statement and emits it on destruction.
class LogMessage {
 public:
  explicit LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { Logger::Get().Write(level_, stream_.str()); }

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal_logging

#define KEA_LOG(severity) \
  ::kea::internal_logging::LogMessage(::kea::LogLevel::k##severity)

#define KEA_LOG_DEBUG KEA_LOG(Debug)
#define KEA_LOG_INFO KEA_LOG(Info)
#define KEA_LOG_WARNING KEA_LOG(Warning)
#define KEA_LOG_ERROR KEA_LOG(Error)

}  // namespace kea

#endif  // KEA_COMMON_LOGGING_H_
