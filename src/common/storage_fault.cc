#include "common/storage_fault.h"

#include <algorithm>

#include "common/random.h"

namespace kea {
namespace {

// Substream salt family for storage fault decisions — disjoint from the
// telemetry and fleet injector salts by construction (distinct high bits).
constexpr uint64_t kStorageSalt = 0x57064A11F00D0000ull;

uint64_t OpSalt(StorageOp op) {
  return kStorageSalt + static_cast<uint64_t>(op);
}

}  // namespace

const char* StorageOpName(StorageOp op) {
  switch (op) {
    case StorageOp::kRead:
      return "read";
    case StorageOp::kWrite:
      return "write";
    case StorageOp::kFlush:
      return "flush";
    case StorageOp::kRename:
      return "rename";
  }
  return "unknown";
}

const char* StorageFaultKindName(StorageFaultKind kind) {
  switch (kind) {
    case StorageFaultKind::kTransientEio:
      return "transient_eio";
    case StorageFaultKind::kPersistentEio:
      return "persistent_eio";
    case StorageFaultKind::kEnospc:
      return "enospc";
    case StorageFaultKind::kShortWrite:
      return "short_write";
    case StorageFaultKind::kBitFlip:
      return "bit_flip";
    case StorageFaultKind::kZeroPage:
      return "zero_page";
    case StorageFaultKind::kTruncate:
      return "truncate";
  }
  return "unknown";
}

bool StorageFaultProfile::empty() const {
  return read_eio_rate == 0.0 && write_eio_rate == 0.0 &&
         flush_eio_rate == 0.0 && rename_eio_rate == 0.0 &&
         enospc_rate == 0.0 && short_write_rate == 0.0 &&
         bit_flip_rate == 0.0 && zero_page_rate == 0.0 &&
         truncate_rate == 0.0;
}

StorageFaultProfile StorageFaultProfile::Moderate() {
  StorageFaultProfile p;
  p.read_eio_rate = 0.01;
  p.write_eio_rate = 0.01;
  p.flush_eio_rate = 0.005;
  p.rename_eio_rate = 0.005;
  p.persistent_fraction = 0.0;  // all transient: retries absorb everything
  p.bit_flip_rate = 0.002;
  return p;
}

StorageFaultInjector::StorageFaultInjector(const StorageFaultProfile& profile,
                                           uint64_t seed)
    : profile_(profile), seed_(seed) {}

StorageFaultInjector::Decision StorageFaultInjector::Next(
    StorageOp op, const std::string& path) {
  (void)path;  // faults stick per op, not per path — "the disk is gone"
  std::lock_guard<std::mutex> lock(mu_);
  const int o = static_cast<int>(op);
  const uint64_t index = calls_[o]++;
  counters_.ops++;
  if (recording_) recorded_[o] = calls_[o];

  Decision d;
  d.draw = MixSeed(seed_, MixSeed(OpSalt(op), index));
  std::optional<StorageFaultKind> kind = DecideLocked(op, index, d.draw);
  if (kind.has_value()) {
    d.faulted = true;
    d.kind = *kind;
    switch (*kind) {
      case StorageFaultKind::kTransientEio:
        counters_.transient_eio++;
        break;
      case StorageFaultKind::kPersistentEio:
        counters_.persistent_eio++;
        sticky_[o] = StorageFaultKind::kPersistentEio;
        break;
      case StorageFaultKind::kEnospc:
        counters_.enospc++;
        sticky_[o] = StorageFaultKind::kEnospc;
        break;
      case StorageFaultKind::kShortWrite:
        counters_.short_writes++;
        break;
      case StorageFaultKind::kBitFlip:
      case StorageFaultKind::kZeroPage:
      case StorageFaultKind::kTruncate:
        counters_.corrupted_reads++;
        break;
    }
  }
  return d;
}

std::optional<StorageFaultKind> StorageFaultInjector::DecideLocked(
    StorageOp op, uint64_t index, uint64_t draw) {
  const int o = static_cast<int>(op);
  // Sticky faults fire first: a dead disk fails every subsequent op.
  auto sticky = sticky_.find(o);
  if (sticky != sticky_.end()) return sticky->second;

  // Armed faults (the sweep harness) beat the profile.
  for (const Armed& a : armed_) {
    if (a.op == op && static_cast<uint64_t>(a.occurrence) == index) {
      return a.kind;
    }
  }

  if (profile_.empty()) return std::nullopt;
  Rng rng(draw);
  auto hit = [&rng](double rate) {
    return rate > 0.0 && rng.Uniform() < rate;
  };
  double eio_rate = 0.0;
  switch (op) {
    case StorageOp::kRead:
      eio_rate = profile_.read_eio_rate;
      break;
    case StorageOp::kWrite:
      eio_rate = profile_.write_eio_rate;
      break;
    case StorageOp::kFlush:
      eio_rate = profile_.flush_eio_rate;
      break;
    case StorageOp::kRename:
      eio_rate = profile_.rename_eio_rate;
      break;
  }
  if (hit(eio_rate)) {
    return rng.Uniform() < profile_.persistent_fraction
               ? StorageFaultKind::kPersistentEio
               : StorageFaultKind::kTransientEio;
  }
  if (op == StorageOp::kWrite) {
    if (hit(profile_.enospc_rate)) return StorageFaultKind::kEnospc;
    if (hit(profile_.short_write_rate)) return StorageFaultKind::kShortWrite;
  }
  if (op == StorageOp::kRead) {
    if (hit(profile_.bit_flip_rate)) return StorageFaultKind::kBitFlip;
    if (hit(profile_.zero_page_rate)) return StorageFaultKind::kZeroPage;
    if (hit(profile_.truncate_rate)) return StorageFaultKind::kTruncate;
  }
  return std::nullopt;
}

void StorageFaultInjector::ApplyCorruption(StorageFaultKind kind,
                                           uint64_t draw, std::string* data) {
  if (data == nullptr || data->empty()) return;
  Rng rng(MixSeed(draw, 0xC0AA0F7ull));
  switch (kind) {
    case StorageFaultKind::kBitFlip: {
      const size_t byte = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(data->size()) - 1));
      const int bit = static_cast<int>(rng.UniformInt(0, 7));
      (*data)[byte] = static_cast<char>((*data)[byte] ^ (1 << bit));
      break;
    }
    case StorageFaultKind::kZeroPage: {
      constexpr size_t kPage = 64;
      const size_t pages = (data->size() + kPage - 1) / kPage;
      const size_t page = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(pages) - 1));
      const size_t begin = page * kPage;
      const size_t end = std::min(begin + kPage, data->size());
      for (size_t i = begin; i < end; ++i) (*data)[i] = '\0';
      break;
    }
    case StorageFaultKind::kTruncate: {
      const size_t keep = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(data->size()) - 1));
      data->resize(keep);
      break;
    }
    default:
      break;
  }
}

void StorageFaultInjector::Arm(StorageOp op, int occurrence,
                               StorageFaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.push_back(Armed{op, occurrence, kind});
}

void StorageFaultInjector::ClearArmed() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
}

void StorageFaultInjector::ClearPersistent() {
  std::lock_guard<std::mutex> lock(mu_);
  sticky_.clear();
}

void StorageFaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_.clear();
  sticky_.clear();
  counters_ = Counters();
  for (int i = 0; i < 4; ++i) {
    calls_[i] = 0;
    recorded_[i] = 0;
  }
}

void StorageFaultInjector::SetRecording(bool on) {
  std::lock_guard<std::mutex> lock(mu_);
  recording_ = on;
  if (on) {
    for (int i = 0; i < 4; ++i) recorded_[i] = 0;
  }
}

std::vector<std::pair<std::string, int>> StorageFaultInjector::Reached() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, int>> out;
  for (int i = 0; i < 4; ++i) {
    if (recorded_[i] > 0) {
      out.emplace_back(StorageOpName(static_cast<StorageOp>(i)),
                       static_cast<int>(recorded_[i]));
    }
  }
  return out;
}

StorageFaultInjector::Counters StorageFaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace kea
