#include "common/snapshot.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <set>

#include "common/io.h"
#include "common/journal.h"
#include "obs/metrics.h"

namespace kea {
namespace {

// Deterministic write/byte totals; write latency is kTiming (wall clock).
obs::Counter* SnapshotWritesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("snapshot.writes");
  return c;
}
obs::Counter* SnapshotBytesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("snapshot.bytes");
  return c;
}
obs::Histogram* SnapshotWriteLatencyHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "snapshot.write_us", "", obs::LatencyBucketsUs(), obs::Kind::kTiming);
  return h;
}
obs::Counter* GenerationsDiscardedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durability.generations_discarded");
  return c;
}

constexpr char kMagic[] = "KEASNP01";
constexpr size_t kMagicLen = 8;

void AppendU32(uint32_t v, std::string* out) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
  out->push_back(static_cast<char>((v >> 16) & 0xff));
  out->push_back(static_cast<char>((v >> 24) & 0xff));
}

Status ParseU32(const std::string& data, size_t* pos, uint32_t* v) {
  if (data.size() - *pos < 4) {
    return Status::InvalidArgument("snapshot truncated");
  }
  const char* p = data.data() + *pos;
  *v = static_cast<uint32_t>(static_cast<unsigned char>(p[0])) |
       static_cast<uint32_t>(static_cast<unsigned char>(p[1])) << 8 |
       static_cast<uint32_t>(static_cast<unsigned char>(p[2])) << 16 |
       static_cast<uint32_t>(static_cast<unsigned char>(p[3])) << 24;
  *pos += 4;
  return Status::OK();
}

}  // namespace

void SnapshotWriter::AddSection(const std::string& name, std::string content) {
  sections_.emplace_back(name, std::move(content));
}

Status SnapshotWriter::WriteFile(const std::string& path) const {
  std::string out(kMagic, kMagicLen);
  // The section count makes truncation at an exact section boundary — which
  // no per-section CRC can catch — detectable.
  AppendU32(static_cast<uint32_t>(sections_.size()), &out);
  for (const auto& [name, content] : sections_) {
    AppendU32(static_cast<uint32_t>(name.size()), &out);
    out += name;
    AppendU32(static_cast<uint32_t>(content.size()), &out);
    // The CRC covers name and content: a rotted name byte must not be able
    // to silently rename (and thereby hide) a section.
    AppendU32(Crc32Extend(Crc32(name), content), &out);
    out += content;
  }
  const auto start = std::chrono::steady_clock::now();
  Status written = AtomicWriteFile(path, out);
  if (written.ok()) {
    SnapshotWritesCounter()->Increment();
    SnapshotBytesCounter()->Increment(out.size());
    if (obs::MetricsEnabled()) {
      SnapshotWriteLatencyHistogram()->Observe(
          std::chrono::duration<double, std::micro>(
              std::chrono::steady_clock::now() - start)
              .count());
    }
  }
  return written;
}

StatusOr<SnapshotReader> SnapshotReader::Open(const std::string& path) {
  std::string data;
  KEA_ASSIGN_OR_RETURN(data, ReadFileToString(path));
  if (data.size() < kMagicLen ||
      std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
    return Status::InvalidArgument("not a KEA snapshot: " + path);
  }
  SnapshotReader reader;
  size_t pos = kMagicLen;
  uint32_t section_count = 0;
  KEA_RETURN_IF_ERROR(ParseU32(data, &pos, &section_count));
  std::set<std::string> seen;
  for (uint32_t i = 0; i < section_count; ++i) {
    if (pos >= data.size()) {
      return Status::InvalidArgument(
          "snapshot section count mismatch: declared " +
          std::to_string(section_count) + " sections, found " +
          std::to_string(reader.sections_.size()));
    }
    uint32_t name_len = 0, content_len = 0, crc = 0;
    KEA_RETURN_IF_ERROR(ParseU32(data, &pos, &name_len));
    if (data.size() - pos < name_len) {
      return Status::InvalidArgument("snapshot truncated in section name");
    }
    std::string name(data.data() + pos, name_len);
    pos += name_len;
    KEA_RETURN_IF_ERROR(ParseU32(data, &pos, &content_len));
    KEA_RETURN_IF_ERROR(ParseU32(data, &pos, &crc));
    if (data.size() - pos < content_len) {
      return Status::InvalidArgument("snapshot truncated in section '" + name +
                                     "'");
    }
    std::string content(data.data() + pos, content_len);
    pos += content_len;
    if (Crc32Extend(Crc32(name), content) != crc) {
      return Status::InvalidArgument("snapshot CRC mismatch in section '" +
                                     name + "'");
    }
    if (!seen.insert(name).second) {
      return Status::InvalidArgument("snapshot has duplicate section '" +
                                     name + "'");
    }
    reader.sections_.emplace_back(std::move(name), std::move(content));
  }
  if (pos != data.size()) {
    return Status::InvalidArgument(
        "snapshot trailer mismatch: " + std::to_string(data.size() - pos) +
        " trailing bytes after " + std::to_string(section_count) +
        " declared sections");
  }
  return reader;
}

Status SnapshotGenerations::Write(const SnapshotWriter& snapshot,
                                  const std::string& path, int keep) {
  if (keep <= 0) return snapshot.WriteFile(path);
  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    // Rotate the live checkpoint out of the way before installing the new
    // one. A crash (or fault) between the rotate and the install leaves no
    // live file, but the rotated generation still restores.
    std::vector<uint64_t> gens = List(path);
    const uint64_t next = gens.empty() ? 1 : gens.back() + 1;
    KEA_RETURN_IF_ERROR(Io::Get().Rename(path, GenerationPath(path, next)));
  }
  KEA_RETURN_IF_ERROR(snapshot.WriteFile(path));
  std::vector<uint64_t> gens = List(path);
  while (static_cast<int>(gens.size()) > keep) {
    // Best-effort, injection-proof prune: a broken disk must not be able to
    // fail a checkpoint that already installed.
    Io::Get().RemoveFile(GenerationPath(path, gens.front()));
    gens.erase(gens.begin());
  }
  return Status::OK();
}

std::string SnapshotGenerations::GenerationPath(const std::string& path,
                                                uint64_t generation) {
  return path + ".g" + std::to_string(generation);
}

std::vector<uint64_t> SnapshotGenerations::List(const std::string& path) {
  std::vector<uint64_t> gens;
  const std::filesystem::path live(path);
  std::filesystem::path dir = live.parent_path();
  if (dir.empty()) dir = ".";
  const std::string prefix = live.filename().string() + ".g";
  std::error_code ec;
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (name.size() <= prefix.size() || name.compare(0, prefix.size(), prefix) != 0) {
      continue;
    }
    const std::string digits = name.substr(prefix.size());
    if (digits.find_first_not_of("0123456789") != std::string::npos) continue;
    gens.push_back(std::stoull(digits));
  }
  std::sort(gens.begin(), gens.end());
  return gens;
}

StatusOr<SnapshotGenerations::Restored> SnapshotGenerations::RestoreLatestValid(
    const std::string& path, const Validator& validate) {
  std::vector<std::pair<uint64_t, std::string>> candidates;
  candidates.emplace_back(0, path);  // The live file is newest.
  std::vector<uint64_t> gens = List(path);
  for (auto it = gens.rbegin(); it != gens.rend(); ++it) {
    candidates.emplace_back(*it, GenerationPath(path, *it));
  }

  size_t discarded = 0;
  Status last_error = Status::NotFound("no snapshot at " + path);
  bool any_exists = false;
  for (const auto& [gen, cpath] : candidates) {
    auto opened = SnapshotReader::Open(cpath);
    if (!opened.ok()) {
      if (opened.status().code() == StatusCode::kNotFound) continue;
      // Exists but unreadable or corrupt: discard and fall back.
      any_exists = true;
      ++discarded;
      last_error = opened.status();
      continue;
    }
    any_exists = true;
    if (validate) {
      Status valid = validate(opened.value());
      if (!valid.ok()) {
        ++discarded;
        last_error = valid;
        continue;
      }
    }
    if (discarded > 0) GenerationsDiscardedCounter()->Increment(discarded);
    Restored restored;
    restored.reader = std::move(opened).value();
    restored.source_path = cpath;
    restored.generation = gen;
    restored.discarded = discarded;
    return restored;
  }
  if (discarded > 0) GenerationsDiscardedCounter()->Increment(discarded);
  if (!any_exists) return Status::NotFound("no snapshot at " + path);
  return last_error;
}

StatusOr<std::string> SnapshotReader::Section(const std::string& name) const {
  for (const auto& [n, content] : sections_) {
    if (n == name) return content;
  }
  return Status::NotFound("snapshot has no section '" + name + "'");
}

bool SnapshotReader::Has(const std::string& name) const {
  for (const auto& [n, content] : sections_) {
    if (n == name) return true;
  }
  return false;
}

void StateWriter::PutU32(uint32_t v) { AppendU32(v, &buf_); }

void StateWriter::PutU64(uint64_t v) {
  PutU32(static_cast<uint32_t>(v & 0xffffffffu));
  PutU32(static_cast<uint32_t>(v >> 32));
}

void StateWriter::PutDouble(double v) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v), "double must be 64-bit");
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(bits);
}

void StateWriter::PutString(const std::string& s) {
  PutU32(static_cast<uint32_t>(s.size()));
  buf_ += s;
}

Status StateReader::GetU32(uint32_t* v) { return ParseU32(data_, &pos_, v); }

Status StateReader::GetU64(uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  KEA_RETURN_IF_ERROR(GetU32(&lo));
  KEA_RETURN_IF_ERROR(GetU32(&hi));
  *v = static_cast<uint64_t>(hi) << 32 | lo;
  return Status::OK();
}

Status StateReader::GetI64(int64_t* v) {
  uint64_t u = 0;
  KEA_RETURN_IF_ERROR(GetU64(&u));
  *v = static_cast<int64_t>(u);
  return Status::OK();
}

Status StateReader::GetInt(int* v) {
  int64_t i = 0;
  KEA_RETURN_IF_ERROR(GetI64(&i));
  *v = static_cast<int>(i);
  return Status::OK();
}

Status StateReader::GetBool(bool* v) {
  uint32_t u = 0;
  KEA_RETURN_IF_ERROR(GetU32(&u));
  *v = u != 0;
  return Status::OK();
}

Status StateReader::GetDouble(double* v) {
  uint64_t bits = 0;
  KEA_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(v, &bits, sizeof(*v));
  return Status::OK();
}

Status StateReader::GetString(std::string* s) {
  uint32_t len = 0;
  KEA_RETURN_IF_ERROR(GetU32(&len));
  if (data_.size() - pos_ < len) {
    return Status::InvalidArgument("state blob truncated in string");
  }
  s->assign(data_.data() + pos_, len);
  pos_ += len;
  return Status::OK();
}

}  // namespace kea
