#include "common/retry.h"

#include <algorithm>
#include <cmath>

namespace kea {

double RetryPolicy::BackoffMs(uint64_t call_index, int retry_index) const {
  double base = options_.initial_backoff_ms *
                std::pow(options_.backoff_multiplier, retry_index - 1);
  base = std::min(base, options_.max_backoff_ms);
  // One substream per (call, retry): the jitter draw is independent of how
  // many other calls or retries happened before it.
  Rng jitter_rng(MixSeed(options_.seed, call_index * 64 + static_cast<uint64_t>(retry_index)));
  double factor = 1.0 + options_.jitter * jitter_rng.Uniform(-1.0, 1.0);
  return base * std::max(factor, 0.0);
}

Status RetryPolicy::Run(const std::function<Status(int attempt)>& op) {
  uint64_t call_index = static_cast<uint64_t>(stats_.calls);
  ++stats_.calls;
  Status last = Status::Internal("retry policy ran zero attempts");
  int max_attempts = std::max(options_.max_attempts, 1);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++stats_.attempts;
    if (attempt > 0) {
      ++stats_.retries;
      stats_.total_backoff_ms += BackoffMs(call_index, attempt);
    }
    last = op(attempt);
    if (last.ok() || !IsTransient(last.code())) return last;
  }
  ++stats_.exhausted;
  return last;
}

}  // namespace kea
