#ifndef KEA_COMMON_RANDOM_H_
#define KEA_COMMON_RANDOM_H_

#include <cassert>
#include <cmath>
#include <cstdint>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "common/status.h"

namespace kea {

/// SplitMix64-style finalizer that derives an independent substream seed from
/// a (seed, stream id) pair. Pure function of its inputs, so substream i of a
/// given seed is the same on every call, on every thread, in every process.
inline uint64_t MixSeed(uint64_t seed, uint64_t stream_id) {
  uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (stream_id + 1));
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Deterministic pseudo-random generator used across the simulator and the
/// Monte-Carlo machinery. Wraps std::mt19937_64 with convenience samplers so
/// call sites don't instantiate distribution objects.
///
/// All KEA randomness flows through explicitly seeded Rng instances: runs are
/// reproducible given the seed, which the tests and benches rely on.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) : seed_(seed), engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    assert(lo <= hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw.
  double Gaussian() { return normal_(engine_); }

  /// Normal draw with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) { return mean + stddev * Gaussian(); }

  /// Exponential draw with the given rate (lambda > 0).
  double Exponential(double rate) {
    assert(rate > 0);
    return std::exponential_distribution<double>(rate)(engine_);
  }

  /// Log-normal draw parameterized by the underlying normal's mu/sigma.
  double LogNormal(double mu, double sigma) {
    return std::lognormal_distribution<double>(mu, sigma)(engine_);
  }

  /// Pareto draw with scale x_m > 0 and shape alpha > 0 (heavy-tailed work).
  double Pareto(double x_m, double alpha) {
    assert(x_m > 0 && alpha > 0);
    double u = 1.0 - Uniform();  // in (0, 1]
    return x_m / std::pow(u, 1.0 / alpha);
  }

  /// Poisson draw with the given mean.
  int64_t Poisson(double mean) {
    assert(mean >= 0);
    return std::poisson_distribution<int64_t>(mean)(engine_);
  }

  /// Bernoulli draw with success probability p in [0, 1].
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Requires at least one strictly positive weight.
  size_t Categorical(const std::vector<double>& weights) {
    return std::discrete_distribution<size_t>(weights.begin(), weights.end())(engine_);
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(0, static_cast<int64_t>(i) - 1));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Derives an independent child generator; used to give each simulated
  /// machine / worker its own stream. Consumes one draw from this stream, so
  /// successive Fork() calls yield different children.
  Rng Fork() { return Rng(engine_()); }

  /// Derives the substream identified by `stream_id`. Unlike Fork(), this is
  /// a pure function of (constructor seed, stream_id): it does not advance
  /// this generator, and the substream's draw sequence is independent of how
  /// many draws the parent has made. This is what makes parallel loops
  /// deterministic — each logical task splits off its own stream by index
  /// and gets the same draws no matter which thread runs it, or when.
  Rng Split(uint64_t stream_id) const { return Rng(MixSeed(seed_, stream_id)); }

  /// The seed this generator was constructed with (substream derivation key).
  uint64_t seed() const { return seed_; }

  std::mt19937_64& engine() { return engine_; }

  /// Serializes the full generator state — seed, engine position, AND the
  /// distribution objects (std::normal_distribution caches a spare Gaussian
  /// between draws, so engine state alone is not enough for bit-identical
  /// resume). Text format via the standard stream operators.
  std::string SerializeState() const {
    std::ostringstream out;
    out << seed_ << '\n' << engine_ << '\n' << unit_ << '\n' << normal_ << '\n';
    return out.str();
  }

  /// Restores state written by SerializeState(). After a successful restore
  /// the draw sequence continues exactly where the serialized generator was.
  Status RestoreState(const std::string& state) {
    std::istringstream in(state);
    uint64_t seed = 0;
    std::mt19937_64 engine;
    std::uniform_real_distribution<double> unit;
    std::normal_distribution<double> normal;
    in >> seed >> engine >> unit >> normal;
    if (in.fail()) {
      return Status::InvalidArgument("malformed Rng state blob");
    }
    seed_ = seed;
    engine_ = engine;
    unit_ = unit;
    normal_ = normal;
    return Status::OK();
  }

 private:
  uint64_t seed_;
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

}  // namespace kea

#endif  // KEA_COMMON_RANDOM_H_
