#ifndef KEA_COMMON_IO_H_
#define KEA_COMMON_IO_H_

#include <mutex>
#include <string>

#include "common/retry.h"
#include "common/status.h"
#include "common/storage_fault.h"

namespace kea {

/// Process-global seam for durable-path file I/O. Everything `Journal`,
/// `SnapshotWriter/Reader`, `AtomicWriteFile` and `CsvWriter` persist or
/// read back flows through these four primitives, so a single installed
/// `StorageFaultInjector` covers the entire durability plane, and a single
/// bounded `RetryPolicy` absorbs transient faults everywhere.
///
/// Fault/retry semantics per primitive (DESIGN.md "Storage fault model"):
///   - ReadFile: retried on transient EIO (reads are idempotent). At-rest
///     corruption (bit flip / zero page / truncate) perturbs the returned
///     image, never the file — the caller's CRC machinery must catch it.
///   - WriteFile: whole-file truncate+write+flush. Retried on transient
///     EIO/flush faults (a rewrite is idempotent). A short write persists a
///     torn prefix and fails without retry.
///   - AppendFile: append+flush. Only pre-write faults are retried: once
///     bytes may have reached the file, a retry could duplicate the record,
///     so short writes and flush faults fail with a non-retryable status
///     and recovery is left to the journal scrubber / ledger re-drive.
///   - Rename: retried on transient EIO.
///
/// Injected and real failures all carry a "storage:" message prefix so
/// callers (KeaSession's degraded-durability mode) can classify them.
/// With no injector installed the primitives are plain filesystem calls —
/// byte-identical behavior, no extra draws.
class Io {
 public:
  static Io& Get();

  StatusOr<std::string> ReadFile(const std::string& path);
  Status WriteFile(const std::string& path, const std::string& content);
  Status AppendFile(const std::string& path, const std::string& data);
  Status Rename(const std::string& from, const std::string& to);

  /// Best-effort delete for error-path cleanup and generation pruning.
  /// Never fault-injected: a broken disk must not be able to block the
  /// cleanup that keeps it from filling with stray temp files.
  void RemoveFile(const std::string& path);

  /// Installs a fault injector (not owned; nullptr to clear). An injector
  /// with an empty profile and nothing armed is bit-exact pass-through.
  void SetFaultInjector(StorageFaultInjector* injector);
  StorageFaultInjector* fault_injector() const;

  void SetRetryOptions(const RetryPolicy::Options& options);
  RetryPolicy::Stats retry_stats() const;

  /// Clears the injector and resets retry options/stats to defaults.
  void ResetForTest();

 private:
  Io() = default;

  StorageFaultInjector::Decision Decide(StorageOp op, const std::string& path);

  mutable std::mutex mu_;
  StorageFaultInjector* injector_ = nullptr;
  RetryPolicy retry_;
};

/// True when `s` is a storage-plane failure surfaced through the Io seam
/// (injected or real), as opposed to a crash-point kAborted or a domain
/// error. KeaSession uses this to decide when to enter degraded mode.
bool IsStorageFailure(const Status& s);

}  // namespace kea

#endif  // KEA_COMMON_IO_H_
