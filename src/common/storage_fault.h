#ifndef KEA_COMMON_STORAGE_FAULT_H_
#define KEA_COMMON_STORAGE_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace kea {

/// The four primitive operations the `Io` seam exposes to fault injection.
/// Whole-file writes decide a kWrite fault for the data phase and a kFlush
/// fault for the sync phase; journal appends do the same, so every byte on
/// the durable path passes through exactly one injectable decision per phase.
enum class StorageOp { kRead = 0, kWrite = 1, kFlush = 2, kRename = 3 };
const char* StorageOpName(StorageOp op);

/// Fault taxonomy (DESIGN.md "Storage fault model & self-healing durability").
///
///   kTransientEio   — the op fails once, before any byte is persisted; a
///                     bounded retry is expected to absorb it.
///   kPersistentEio  — the op fails and keeps failing for this StorageOp
///                     until ClearPersistent() ("the disk is gone").
///   kEnospc         — write-path only; maps to kResourceExhausted and
///                     sticks like a full disk until ClearPersistent().
///   kShortWrite     — write-path only; a prefix of the data is persisted,
///                     then the op fails with a non-retryable error (the
///                     bytes on disk are torn — recovery, not retry).
///   kBitFlip        — read-path at-rest corruption: one bit of the image
///                     read back is flipped.
///   kZeroPage       — read-path: a 64-byte aligned page of the image reads
///                     back as zeroes.
///   kTruncate       — read-path: the image reads back truncated.
enum class StorageFaultKind {
  kTransientEio = 0,
  kPersistentEio = 1,
  kEnospc = 2,
  kShortWrite = 3,
  kBitFlip = 4,
  kZeroPage = 5,
  kTruncate = 6,
};
const char* StorageFaultKindName(StorageFaultKind kind);

/// Fault rates per operation. All zero (`empty()`) means the injector is
/// pass-through: it still counts occurrences (so sweeps can enumerate fault
/// points) but never perturbs an op — installed-but-empty is bit-exact with
/// not installed at all.
struct StorageFaultProfile {
  double read_eio_rate = 0.0;
  double write_eio_rate = 0.0;
  double flush_eio_rate = 0.0;
  double rename_eio_rate = 0.0;
  /// Share of injected EIOs that stick to the op (persistent vs transient).
  double persistent_fraction = 0.0;
  double enospc_rate = 0.0;       // write phase only
  double short_write_rate = 0.0;  // write phase only
  double bit_flip_rate = 0.0;     // read phase only
  double zero_page_rate = 0.0;    // read phase only
  double truncate_rate = 0.0;     // read phase only

  bool empty() const;
  static StorageFaultProfile None() { return StorageFaultProfile(); }
  /// Mild background rot: occasional transient EIO everywhere plus rare
  /// read corruption — survivable with retries and generation fallback.
  static StorageFaultProfile Moderate();
};

/// Deterministic storage fault injector in the style of
/// `TelemetryFaultInjector` / `FleetFaultInjector`: every decision for the
/// i-th occurrence of an op is a pure function of (seed, op, i) via seeded
/// substreams, so a run with a given profile replays bit-identically.
///
/// Two modes compose:
///   - Profile mode: rate-driven faults for chaos runs (`Moderate()`).
///   - Armed mode, mirroring `CrashPoints`: `Arm(op, occurrence, kind)`
///     makes exactly that occurrence fail with exactly that kind — the
///     exhaustive sweep in storage_recovery_test enumerates occurrences
///     recorded by a reference run (`SetRecording` / `Reached`).
///
/// Thread safety: all methods lock; the `Io` seam calls `Next()` under its
/// own op lock as well, so decisions are totally ordered per process.
class StorageFaultInjector {
 public:
  explicit StorageFaultInjector(const StorageFaultProfile& profile,
                                uint64_t seed = 0);

  /// Decision for the next occurrence of `op` on `path`: the fault to
  /// inject (if any) plus a substream seed for corruption placement.
  struct Decision {
    bool faulted = false;
    StorageFaultKind kind = StorageFaultKind::kTransientEio;  // iff faulted
    uint64_t draw = 0;

    bool Is(StorageFaultKind k) const { return faulted && kind == k; }
  };
  Decision Next(StorageOp op, const std::string& path);

  /// Deterministically corrupts an in-memory read image according to `kind`
  /// (kBitFlip / kZeroPage / kTruncate) using `draw` as the substream seed.
  /// Pure function — also usable by tests to rot bytes at rest.
  static void ApplyCorruption(StorageFaultKind kind, uint64_t draw,
                              std::string* data);

  // --- Armed mode (sweep harness), CrashPoints discipline ---------------
  /// Makes the `occurrence`-th (0-based) future occurrence of `op` fail
  /// with `kind`. Several arms may be registered at once.
  void Arm(StorageOp op, int occurrence, StorageFaultKind kind);
  void ClearArmed();
  /// Clears sticky faults (persistent EIO / ENOSPC) — "disk replaced".
  void ClearPersistent();
  /// ClearArmed + ClearPersistent + zeroes counters and occurrence cursors.
  void Reset();

  /// When recording, every occurrence is tallied so a reference run can
  /// enumerate the sweep space.
  void SetRecording(bool on);
  /// (op name, occurrences seen) pairs for ops reached while recording.
  std::vector<std::pair<std::string, int>> Reached() const;

  struct Counters {
    uint64_t ops = 0;
    uint64_t transient_eio = 0;
    uint64_t persistent_eio = 0;
    uint64_t enospc = 0;
    uint64_t short_writes = 0;
    uint64_t corrupted_reads = 0;
  };
  Counters counters() const;

  const StorageFaultProfile& profile() const { return profile_; }
  uint64_t seed() const { return seed_; }

 private:
  struct Armed {
    StorageOp op;
    int occurrence;
    StorageFaultKind kind;
  };

  std::optional<StorageFaultKind> DecideLocked(StorageOp op, uint64_t index,
                                               uint64_t draw);

  mutable std::mutex mu_;
  StorageFaultProfile profile_;
  uint64_t seed_;
  bool recording_ = false;
  uint64_t calls_[4] = {0, 0, 0, 0};    // occurrence cursor per op
  uint64_t recorded_[4] = {0, 0, 0, 0};  // occurrences seen while recording
  std::vector<Armed> armed_;
  std::map<int, StorageFaultKind> sticky_;  // op -> persistent fault
  Counters counters_;
};

}  // namespace kea

#endif  // KEA_COMMON_STORAGE_FAULT_H_
