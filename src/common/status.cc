#include "common/status.h"

namespace kea {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kUnimplemented:
      return "UNIMPLEMENTED";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kInfeasible:
      return "INFEASIBLE";
    case StatusCode::kUnbounded:
      return "UNBOUNDED";
    case StatusCode::kUnavailable:
      return "UNAVAILABLE";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace kea
