#include "obs/shard.h"

#include <cstdio>
#include <cstdlib>

namespace kea::obs {

thread_local ShardRegistry::TlsHandle ShardRegistry::tls_handle_;
thread_local ThreadBlock* ShardRegistry::tls_block_ = nullptr;

ShardRegistry& ShardRegistry::GetSlow() {
  static ShardRegistry* r = [] {  // never destroyed: slot indices outlive
    ShardRegistry* p = new ShardRegistry();  // every caller
    instance_.store(p, std::memory_order_release);
    return p;
  }();
  return *r;
}

size_t ShardRegistry::AllocateSlots(size_t n, SlotKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  const size_t first = kinds_.size();
  if (first + n > ThreadBlock::kMaxChunks * ShardChunk::kSlots) {
    std::fprintf(stderr, "kea::obs: shard slot space exhausted (%zu slots)\n",
                 first + n);
    std::abort();
  }
  kinds_.resize(first + n, kind);
  base_.resize(first + n, 0);
  return first;
}

ThreadBlock* ShardRegistry::EnsureBlock() {
  TlsHandle& h = tls_handle_;
  if (h.retired) return nullptr;
  auto owned = std::make_unique<ThreadBlock>();
  ThreadBlock* raw = owned.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    live_.push_back(std::move(owned));
  }
  h.block = raw;
  tls_block_ = raw;
  return raw;
}

ShardChunk* ShardRegistry::EnsureChunk(ThreadBlock* b, size_t chunk_index) {
  // Only the owning thread allocates chunks, so a plain release store
  // publishes the zero-initialised chunk to aggregating readers.
  auto* c = new ShardChunk();
  b->chunks[chunk_index].store(c, std::memory_order_release);
  return c;
}

void ShardRegistry::AddBaseU64(size_t slot, uint64_t n) {
  std::lock_guard<std::mutex> lock(mu_);
  base_[slot] += n;
}

void ShardRegistry::AddBaseF64(size_t slot, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  base_[slot] =
      std::bit_cast<uint64_t>(std::bit_cast<double>(base_[slot]) + v);
}

namespace {

std::atomic<uint64_t>* BlockSlot(const ThreadBlock& b, size_t slot) {
  ShardChunk* c =
      b.chunks[slot / ShardChunk::kSlots].load(std::memory_order_acquire);
  return c == nullptr ? nullptr : &c->slots[slot % ShardChunk::kSlots];
}

}  // namespace

uint64_t ShardRegistry::ReadU64(size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  uint64_t total = base_[slot];
  for (const auto& b : live_) {
    if (auto* s = BlockSlot(*b, slot)) {
      total += s->load(std::memory_order_relaxed);
    }
  }
  return total;
}

double ShardRegistry::ReadF64(size_t slot) const {
  std::lock_guard<std::mutex> lock(mu_);
  double total = std::bit_cast<double>(base_[slot]);
  for (const auto& b : live_) {
    if (auto* s = BlockSlot(*b, slot)) {
      total += std::bit_cast<double>(s->load(std::memory_order_relaxed));
    }
  }
  return total;
}

void ShardRegistry::SnapshotU64(size_t first, size_t n, uint64_t* out) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (size_t i = 0; i < n; ++i) out[i] = base_[first + i];
  for (const auto& b : live_) {
    for (size_t i = 0; i < n; ++i) {
      if (auto* s = BlockSlot(*b, first + i)) {
        out[i] += s->load(std::memory_order_relaxed);
      }
    }
  }
}

void ShardRegistry::StoreU64(size_t slot, uint64_t v) {
  std::lock_guard<std::mutex> lock(mu_);
  base_[slot] = v;
  for (const auto& b : live_) {
    if (auto* s = BlockSlot(*b, slot)) s->exchange(0, std::memory_order_relaxed);
  }
}

void ShardRegistry::StoreF64(size_t slot, double v) {
  std::lock_guard<std::mutex> lock(mu_);
  base_[slot] = std::bit_cast<uint64_t>(v);
  for (const auto& b : live_) {
    if (auto* s = BlockSlot(*b, slot)) s->exchange(0, std::memory_order_relaxed);
  }
}

void ShardRegistry::DrainLocked(ThreadBlock* b) {
  const size_t n = kinds_.size();
  for (size_t slot = 0; slot < n; ++slot) {
    auto* s = BlockSlot(*b, slot);
    if (s == nullptr) {
      slot |= ShardChunk::kSlots - 1;  // whole chunk absent: skip it
      continue;
    }
    const uint64_t bits = s->exchange(0, std::memory_order_relaxed);
    if (bits == 0) continue;
    if (kinds_[slot] == SlotKind::kU64) {
      base_[slot] += bits;
    } else {
      base_[slot] = std::bit_cast<uint64_t>(std::bit_cast<double>(base_[slot]) +
                                            std::bit_cast<double>(bits));
    }
  }
}

void ShardRegistry::AdvanceEpoch() {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& b : live_) DrainLocked(b.get());
  ++epochs_;
}

void ShardRegistry::FoldCurrentThread() {
  TlsHandle& h = tls_handle_;
  ThreadBlock* b = h.block;
  h.block = nullptr;
  h.retired = true;
  tls_block_ = nullptr;
  if (b == nullptr) return;
  std::lock_guard<std::mutex> lock(mu_);
  DrainLocked(b);
  for (auto it = live_.begin(); it != live_.end(); ++it) {
    if (it->get() == b) {
      live_.erase(it);
      break;
    }
  }
}

ShardRegistry::TlsHandle::~TlsHandle() {
  if (block != nullptr) ShardRegistry::Get().FoldCurrentThread();
  retired = true;
}

size_t ShardRegistry::live_shard_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_.size();
}

uint64_t ShardRegistry::epochs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epochs_;
}

size_t ShardRegistry::slot_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return kinds_.size();
}

}  // namespace kea::obs
