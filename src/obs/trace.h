#ifndef KEA_OBS_TRACE_H_
#define KEA_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

/// Hierarchical span tracing (DESIGN.md "Observability"). Spans are RAII
/// scopes recorded as begin/end event pairs into per-thread buffers; the
/// merged stream exports as Chrome trace-event JSON (open in Perfetto or
/// chrome://tracing) or aggregates into a self-time summary table.
///
/// Tracing is OFF by default — a disabled span is one relaxed load and no
/// allocation. Every timestamp in a trace is wall-clock derived, so traces
/// are kTiming artifacts by definition: they are never part of the
/// deterministic exports and never feed back into tuning decisions.
namespace kea::obs {

#ifdef KEA_OBS_DISABLED
inline constexpr bool TraceEnabled() { return false; }
inline void EnableTracing() {}
inline void DisableTracing() {}
#else
bool TraceEnabled();
void EnableTracing();
void DisableTracing();
#endif

/// Typed key/value annotations attached to a span's begin event.
using Annotations = std::vector<std::pair<std::string, std::string>>;

struct TraceEvent {
  enum class Phase { kBegin, kEnd };
  Phase phase = Phase::kBegin;
  std::string name;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint64_t ts_ns = 0;      // steady-clock ns since tracer epoch
  uint32_t tid = 0;        // dense tracer-assigned thread id, from 1
  Annotations args;
};

/// One row of the aggregated self-time table: total is inclusive wall time,
/// self excludes time spent in same-thread child spans.
struct SelfTimeRow {
  std::string name;
  uint64_t count = 0;
  double total_us = 0.0;
  double self_us = 0.0;
};

class Tracer {
 public:
  static Tracer& Get();

  /// Records a begin event and pushes the span on this thread's stack.
  /// Returns the span id, or 0 when tracing is disabled (the matching
  /// EndSpan(0, ...) is a no-op). Parent is the innermost open span on this
  /// thread, else the thread's default parent (set by ThreadPool so worker
  /// tasks nest under the dispatching ParallelFor span).
  uint64_t BeginSpan(const char* name, Annotations args = {});
  void EndSpan(uint64_t span_id, const char* name);

  /// Innermost open span on the calling thread (0 if none).
  uint64_t CurrentSpanId() const;

  /// Cross-thread parent propagation: spans begun on this thread with an
  /// empty stack adopt `span_id` as parent. Returns the previous value so
  /// callers can restore it (see ThreadPool::DrainIndices).
  uint64_t ExchangeThreadDefaultParent(uint64_t span_id);

  /// Per-thread buffer bound: once a thread's buffer holds this many
  /// events, further BeginSpan calls on it are DROPPED (counted in
  /// dropped_span_count() and the exported `obs.trace.dropped_spans`
  /// counter) so week-long traced runs cannot grow memory without bound.
  /// End events for already-open spans always append, so the trace stays
  /// well-formed (ValidateChromeTrace passes). 0 = unlimited.
  void SetMaxEventsPerThread(size_t max_events);
  size_t max_events_per_thread() const;
  uint64_t dropped_span_count() const;

  /// Drops all recorded events, restarts span ids from 1, and zeroes the
  /// dropped-span count. Only call with no spans open.
  void Clear();

  size_t event_count() const;

  /// All events, thread-major, in per-thread record order (within a thread
  /// the stream is well-nested by construction).
  std::vector<TraceEvent> Events() const;

  /// Chrome trace-event JSON: {"traceEvents":[...]}. Each span is a "B"/"E"
  /// pair with span/parent ids and annotations in "args".
  std::string ExportChromeTrace() const;

  /// Writes ExportChromeTrace() to `path`; false + *error on failure.
  bool WriteChromeTraceFile(const std::string& path,
                            std::string* error = nullptr) const;

  /// Fixed-width table of per-span-name totals, sorted by total desc.
  std::string SelfTimeSummary() const;

 private:
  struct ThreadBuf {
    mutable std::mutex mu;
    uint32_t tid = 0;
    std::vector<TraceEvent> events;
  };

  Tracer();
  ThreadBuf* LocalBuf();
  uint64_t NowNs() const;

  mutable std::mutex mu_;  // guards bufs_
  std::vector<std::shared_ptr<ThreadBuf>> bufs_;
  std::atomic<uint64_t> next_span_{1};
  // Default cap: ~1M events/thread (order 100MB worst case) — far above any
  // test or example, low enough that an always-on weeklong run stays flat.
  std::atomic<size_t> max_events_per_thread_{1u << 20};
  std::atomic<uint64_t> dropped_spans_{0};
  uint64_t epoch_ns_ = 0;
};

/// RAII span scope. Prefer the KEA_TRACE_SPAN macro.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) : name_(name) {
    if (TraceEnabled()) id_ = Tracer::Get().BeginSpan(name);
  }
  SpanGuard(const char* name, Annotations args) : name_(name) {
    if (TraceEnabled()) id_ = Tracer::Get().BeginSpan(name, std::move(args));
  }
  /// Lazy-annotation form used by KEA_TRACE_SPAN: `make_args` is only
  /// invoked when tracing is on, so annotation strings (std::to_string and
  /// friends) cost nothing on the disabled path.
  template <typename F,
            typename = std::enable_if_t<std::is_invocable_r_v<Annotations, F&>>>
  SpanGuard(const char* name, F&& make_args) : name_(name) {
    if (TraceEnabled()) id_ = Tracer::Get().BeginSpan(name, make_args());
  }
  ~SpanGuard() {
    if (id_ != 0) Tracer::Get().EndSpan(id_, name_);
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  uint64_t id() const { return id_; }

 private:
  const char* name_;
  uint64_t id_ = 0;
};

#define KEA_OBS_CONCAT_INNER(a, b) a##b
#define KEA_OBS_CONCAT(a, b) KEA_OBS_CONCAT_INNER(a, b)
/// KEA_TRACE_SPAN("whatif.fit", {{"groups", "12"}}); — traces the enclosing
/// scope. The annotations are wrapped in a lambda so their construction is
/// skipped entirely when tracing is off.
#define KEA_TRACE_SPAN(name, ...)                                  \
  ::kea::obs::SpanGuard KEA_OBS_CONCAT(kea_trace_span_, __LINE__)( \
      name, [&]() -> ::kea::obs::Annotations {                     \
        return ::kea::obs::Annotations(__VA_ARGS__);               \
      })

// ---------------------------------------------------------------------------
// Trace validation: a small self-contained JSON parser + well-formedness
// checker, shared by obs_test and the `trace_check` CLI used in CI.

struct TraceValidation {
  bool ok = false;
  std::string error;
  size_t events = 0;
  size_t begins = 0;
  size_t ends = 0;
  size_t threads = 0;
  size_t max_depth = 0;
  /// Per-name begin counts, sorted by name.
  std::vector<std::pair<std::string, size_t>> name_counts;
};

/// Checks that `json` is syntactically valid JSON, has a traceEvents array,
/// every B has a matching same-thread E (same name and span id, LIFO order),
/// per-thread timestamps are non-decreasing, and every non-zero parent id
/// refers to a known span that is the enclosing one when the stack is
/// non-empty.
TraceValidation ValidateChromeTrace(const std::string& json);

/// Reads KEA_TRACE from the environment; when set and non-empty, enables
/// tracing and returns true. Call once at tool startup.
bool EnableTracingFromEnv();

/// When KEA_TRACE is set, writes the collected trace there, plus the phase
/// profiler's flamegraph-ready collapsed stacks to "<path>.folded" (feed to
/// flamegraph.pl / speedscope). Returns false (with *error) on write
/// failure, true otherwise (including "not set").
bool WriteTraceFromEnv(std::string* path_out = nullptr,
                       std::string* error = nullptr);

/// Aggregates self-times from an event stream (exposed for tests).
std::vector<SelfTimeRow> ComputeSelfTimes(const std::vector<TraceEvent>& events);

}  // namespace kea::obs

#endif  // KEA_OBS_TRACE_H_
