#ifndef KEA_OBS_PROFILER_H_
#define KEA_OBS_PROFILER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

/// Always-on phase profiler (DESIGN.md "Observability v2").
///
/// Attributes wall time to a stack of NAMED PHASES ("fit", "mc.grid",
/// "sweep.run", ...) per thread, cheap enough to leave on in production:
/// entering a phase is one steady_clock read plus a child lookup on a
/// per-thread trie node (usually a one-element scan); leaving is one clock
/// read plus two relaxed atomic adds. No allocation after a phase path has
/// been seen once on a thread.
///
/// Export is flamegraph-ready collapsed-stack text ("fit;mc.grid 1234"
/// — self nanoseconds per path, merged across threads, sorted), written
/// next to the Chrome trace by WriteTraceFromEnv. Self-overhead is
/// reported from a startup calibration of the enter/leave cost times the
/// observed scope count.
///
/// Wall-clock derived — never part of the deterministic exports.
namespace kea::obs {

class PhaseProfiler {
 public:
  static PhaseProfiler& Get();

  /// Runtime switch (on by default; KEA_OBS_DISABLED builds compile the
  /// scopes out).
  void SetEnabled(bool enabled) {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Enter/leave the named phase on the calling thread. Prefer the
  /// KEA_PHASE macro. `name` must outlive the process (string literal).
  void Begin(const char* name);
  void End();

  /// Collapsed-stack ("folded") export: one "path;leaf <self_ns>" line per
  /// distinct phase path, self time merged across threads, sorted by path.
  std::string CollapsedStack() const;
  /// Writes CollapsedStack() plus '#'-prefixed self-overhead trailer lines
  /// to `path`. Returns false on I/O failure.
  bool WriteCollapsedFile(const std::string& path) const;

  /// Total scopes entered and the calibrated per-scope cost — the
  /// profiler's own bill: overhead_ns ~= scopes * per-scope cost.
  uint64_t scope_count() const;
  double calibrated_scope_cost_ns() const;
  std::string SelfOverheadSummary() const;

  /// Drops all recorded phases (pointers invalidated). Tests only; callers
  /// must be outside any phase on every thread.
  void ResetForTest();

 private:
  struct Node {
    std::string name;
    Node* parent = nullptr;
    // Inclusive wall ns and entry count; owner thread writes, export reads.
    std::atomic<uint64_t> total_ns{0};
    std::atomic<uint64_t> count{0};
    std::vector<std::unique_ptr<Node>> children;  // mutated under mu_
  };
  struct ThreadRoot {
    Node root;  // name "" — never exported itself
  };
  struct TlsState {
    Node* current = nullptr;       // null until first Begin on this thread
    std::vector<int64_t> starts;   // entry timestamps, one per open phase
  };

  PhaseProfiler() = default;
  Node* ChildNamed(Node* parent, const char* name);
  void CollectLocked(const Node& node, std::string* prefix,
                     std::vector<std::pair<std::string, uint64_t>>* out) const;

  static thread_local TlsState tls_;

  mutable std::mutex mu_;  // guards roots_ and children edits
  std::vector<std::unique_ptr<ThreadRoot>> roots_;
  std::atomic<bool> enabled_{true};
  std::atomic<uint64_t> scopes_{0};
  mutable std::atomic<uint64_t> calibrated_ns_bits_{0};  // double bits; 0 = not yet
};

/// RAII phase scope.
class PhaseScope {
 public:
  explicit PhaseScope(const char* name) {
#ifndef KEA_OBS_DISABLED
    PhaseProfiler& p = PhaseProfiler::Get();
    if (p.enabled()) {
      p.Begin(name);
      active_ = true;
    }
#else
    (void)name;
#endif
  }
  ~PhaseScope() {
#ifndef KEA_OBS_DISABLED
    if (active_) PhaseProfiler::Get().End();
#endif
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  bool active_ = false;
};

#define KEA_PHASE_CONCAT_INNER(a, b) a##b
#define KEA_PHASE_CONCAT(a, b) KEA_PHASE_CONCAT_INNER(a, b)
/// Attributes the enclosing scope's wall time to phase `name`.
#define KEA_PHASE(name) \
  ::kea::obs::PhaseScope KEA_PHASE_CONCAT(kea_phase_scope_, __LINE__)(name)

}  // namespace kea::obs

#endif  // KEA_OBS_PROFILER_H_
