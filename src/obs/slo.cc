#include "obs/slo.h"

#include <algorithm>
#include <cstdio>

namespace kea::obs {

SloTracker::SloTracker(SloOptions opts) : opts_(opts) {
  if (opts_.bucket_ms < 1) opts_.bucket_ms = 1;
  if (opts_.slow_window_ms < opts_.bucket_ms)
    opts_.slow_window_ms = opts_.bucket_ms;
  if (opts_.fast_window_ms < opts_.bucket_ms)
    opts_.fast_window_ms = opts_.bucket_ms;
  // +1: a window of N buckets can straddle N+1 ring cells because "now"
  // rarely lands on a bucket edge.
  ring_.resize(
      static_cast<size_t>(opts_.slow_window_ms / opts_.bucket_ms) + 1);
}

void SloTracker::Record(double latency_ms, bool error, int64_t now_ms) {
  now_ms = std::max(now_ms, latest_ms_);
  latest_ms_ = now_ms;
  const int64_t start = (now_ms / opts_.bucket_ms) * opts_.bucket_ms;
  Bucket& b = ring_[static_cast<size_t>((start / opts_.bucket_ms) %
                                        static_cast<int64_t>(ring_.size()))];
  if (b.start_ms != start) {
    b.start_ms = start;
    b.good = 0;
    b.bad = 0;
  }
  const bool good = !error && latency_ms <= opts_.target_ms;
  if (good) {
    ++b.good;
  } else {
    ++b.bad;
    ++bad_;
  }
  ++total_;
}

void SloTracker::WindowTotals(int64_t window_ms, int64_t now_ms,
                              uint64_t* good, uint64_t* bad) const {
  *good = 0;
  *bad = 0;
  const int64_t oldest = now_ms - window_ms;
  for (const Bucket& b : ring_) {
    if (b.start_ms < 0) continue;
    // Include buckets overlapping (oldest, now]: stale cells left over from
    // a previous ring lap have start_ms <= now - slow_window and drop out.
    if (b.start_ms + opts_.bucket_ms <= oldest || b.start_ms > now_ms) {
      continue;
    }
    *good += b.good;
    *bad += b.bad;
  }
}

double SloTracker::BurnRate(int64_t window_ms, int64_t now_ms) const {
  uint64_t good = 0;
  uint64_t bad = 0;
  WindowTotals(window_ms, now_ms, &good, &bad);
  const uint64_t total = good + bad;
  if (total == 0) return 0.0;
  const double bad_fraction =
      static_cast<double>(bad) / static_cast<double>(total);
  const double budget = 1.0 - opts_.objective;
  return budget <= 0.0 ? (bad > 0 ? 1e9 : 0.0) : bad_fraction / budget;
}

std::string SloTracker::Describe(int64_t now_ms) const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "slo target=%.0fms objective=%.4f fast_burn=%.2f "
                "slow_burn=%.2f alerting=%d events=%llu bad=%llu",
                opts_.target_ms, opts_.objective, FastBurn(now_ms),
                SlowBurn(now_ms), Alerting(now_ms) ? 1 : 0,
                static_cast<unsigned long long>(total_),
                static_cast<unsigned long long>(bad_));
  return buf;
}

}  // namespace kea::obs
