#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace kea::obs {

#ifndef KEA_OBS_DISABLED
namespace {
// Metrics on by default: counters are the audit trail, and the enabled cost
// (one relaxed fetch_add) is inside the overhead budget.
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

bool MetricsEnabled() {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}
void EnableMetrics() {
  g_metrics_enabled.store(true, std::memory_order_relaxed);
}
void DisableMetrics() {
  g_metrics_enabled.store(false, std::memory_order_relaxed);
}
#endif

// Defined in trace.cc; forward-declared here so Disable()/Enable() can flip
// both halves without metrics.h depending on trace.h.
void DisableTracingInternal();
void ResetTracingToDefault();

void Disable() {
  DisableMetrics();
  DisableTracingInternal();
}

void Enable() {
  EnableMetrics();
  ResetTracingToDefault();
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), buckets_(bounds_.size() + 1) {
  std::sort(bounds_.begin(), bounds_.end());
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // Lock-free double accumulation via CAS on the bit pattern.
  uint64_t observed = sum_bits_.load(std::memory_order_relaxed);
  uint64_t desired;
  do {
    desired = std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + v);
  } while (!sum_bits_.compare_exchange_weak(observed, desired,
                                            std::memory_order_relaxed));
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(buckets_.size());
  for (size_t i = 0; i < buckets_.size(); ++i) {
    out[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

std::vector<double> LatencyBucketsUs() {
  return {1,    2,    5,     10,    20,    50,    100,     200,     500,
          1000, 2000, 5000,  1e4,   2e4,   5e4,   1e5,     2e5,     5e5,
          1e6,  2e6,  5e6,   1e7};
}

std::vector<double> SizeBucketsBytes() {
  std::vector<double> b;
  for (double v = 64.0; v <= 268435456.0; v *= 4.0) b.push_back(v);
  return b;
}

std::vector<double> DepthBuckets() {
  std::vector<double> b = {0.0};
  for (double v = 1.0; v <= 4096.0; v *= 2.0) b.push_back(v);
  return b;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::Get() {
  static Registry* r = new Registry();  // never destroyed: pointers must
  return *r;                            // outlive every static caller
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[{name, labels}];
  if (!entry.instrument) {
    entry.instrument = std::unique_ptr<Counter>(new Counter());
    entry.kind = kind;
  }
  return entry.instrument.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels,
                          Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[{name, labels}];
  if (!entry.instrument) {
    entry.instrument = std::unique_ptr<Gauge>(new Gauge());
    entry.kind = kind;
  }
  return entry.instrument.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels,
                                  std::vector<double> bounds, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = histograms_[{name, labels}];
  if (!entry.instrument) {
    entry.instrument =
        std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
    entry.kind = kind;
  }
  return entry.instrument.get();
}

uint64_t Registry::CounterValue(const std::string& name,
                                const std::string& labels) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find({name, labels});
  return it == counters_.end() ? 0 : it->second.instrument->value();
}

namespace {

// %.17g prints doubles losslessly and identically across runs, matching the
// CSV codec's determinism guarantee (see telemetry/store.cc).
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FullName(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Registry::RenderText(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    std::snprintf(line, sizeof(line), "counter %s %" PRIu64 "\n",
                  FullName(key.first, key.second).c_str(),
                  entry.instrument->value());
    out += line;
  }
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    out += "gauge " + FullName(key.first, key.second) + " " +
           FmtDouble(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const Histogram& h = *entry.instrument;
    // Snapshot consistency: the exported count is derived from the single
    // bucket read below, not from the separately-updated count_ atomic — a
    // render concurrent with Observe() must still satisfy
    // count == sum(buckets).
    auto counts = h.bucket_counts();
    uint64_t total = 0;
    for (uint64_t n : counts) total += n;
    out += "histogram " + FullName(key.first, key.second) +
           " count=" + std::to_string(total) + " sum=" + FmtDouble(h.sum());
    out += " buckets=[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      if (i < h.bounds().size()) {
        out += "le";
        out += FmtDouble(h.bounds()[i]);
      } else {
        out += "inf";
      }
      out += ":";
      out += std::to_string(counts[i]);
    }
    out += "]\n";
  }
  return out;
}

std::string Registry::RenderCsv(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "kind,name,labels,field,value\n";
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    out += "counter," + key.first + "," + key.second + ",value," +
           std::to_string(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    out += "gauge," + key.first + "," + key.second + ",value," +
           FmtDouble(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const Histogram& h = *entry.instrument;
    // count derives from the same bucket read as the bucket rows (see
    // RenderText) so concurrent snapshots stay internally consistent.
    auto counts = h.bucket_counts();
    uint64_t total = 0;
    for (uint64_t n : counts) total += n;
    out += "histogram," + key.first + "," + key.second + ",count," +
           std::to_string(total) + "\n";
    out += "histogram," + key.first + "," + key.second + ",sum," +
           FmtDouble(h.sum()) + "\n";
    for (size_t i = 0; i < counts.size(); ++i) {
      std::string edge = "inf";
      if (i < h.bounds().size()) {
        edge = "le";
        edge += FmtDouble(h.bounds()[i]);
      }
      out += "histogram," + key.first + "," + key.second + ",bucket_" + edge +
             "," + std::to_string(counts[i]) + "\n";
    }
  }
  return out;
}

std::string Registry::RenderJson(bool include_timing) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(key.first) + "\",\"labels\":\"" +
           JsonEscape(key.second) +
           "\",\"value\":" + std::to_string(entry.instrument->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(key.first) + "\",\"labels\":\"" +
           JsonEscape(key.second) +
           "\",\"value\":" + FmtDouble(entry.instrument->value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    if (!first) out += ",";
    first = false;
    const Histogram& h = *entry.instrument;
    // As in RenderText: count is the sum of one bucket snapshot, never the
    // independently-racing count_ atomic.
    auto counts = h.bucket_counts();
    uint64_t total = 0;
    for (uint64_t n : counts) total += n;
    out += "{\"name\":\"" + JsonEscape(key.first) + "\",\"labels\":\"" +
           JsonEscape(key.second) +
           "\",\"count\":" + std::to_string(total) +
           ",\"sum\":" + FmtDouble(h.sum()) + ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) out += ",";
      out += FmtDouble(h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(counts[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : counters_) entry.instrument->RestoreTo(0);
  for (auto& [key, entry] : gauges_) {
    entry.instrument->bits_.store(std::bit_cast<uint64_t>(0.0),
                                  std::memory_order_relaxed);
  }
  for (auto& [key, entry] : histograms_) {
    Histogram& h = *entry.instrument;
    for (auto& b : h.buckets_) b.store(0, std::memory_order_relaxed);
    h.count_.store(0, std::memory_order_relaxed);
    h.sum_bits_.store(std::bit_cast<uint64_t>(0.0), std::memory_order_relaxed);
  }
}

}  // namespace kea::obs
