#include "obs/metrics.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace kea::obs {

#ifndef KEA_OBS_DISABLED
namespace {
// Metrics on by default: counters are the audit trail, and the enabled cost
// (one relaxed fetch_add on thread-local shard storage) is inside the
// overhead budget.
}  // namespace

namespace internal {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace internal

void EnableMetrics() {
  internal::g_metrics_enabled.store(true, std::memory_order_relaxed);
}
void DisableMetrics() {
  internal::g_metrics_enabled.store(false, std::memory_order_relaxed);
}
#endif

// Defined in trace.cc; forward-declared here so Disable()/Enable() can flip
// both halves without metrics.h depending on trace.h.
void DisableTracingInternal();
void ResetTracingToDefault();

void Disable() {
  DisableMetrics();
  DisableTracingInternal();
}

void Enable() {
  EnableMetrics();
  ResetTracingToDefault();
}

// ---------------------------------------------------------------------------
// Histogram

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  // Bucket slots and the count slot are one contiguous u64 range so a
  // single SnapshotU64 covers them; the double sum lives in its own slot.
  first_slot_ =
      ShardRegistry::Get().AllocateSlots(bounds_.size() + 2, SlotKind::kU64);
  count_slot_ = first_slot_ + bounds_.size() + 1;
  sum_slot_ = ShardRegistry::Get().AllocateSlots(1, SlotKind::kF64);
}

void Histogram::Observe(double v) {
  if (!MetricsEnabled()) return;
  size_t b = 0;
  while (b < bounds_.size() && v > bounds_[b]) ++b;
  ShardRegistry& shards = ShardRegistry::Get();
  shards.AddU64(first_slot_ + b, 1);
  shards.AddU64(count_slot_, 1);
  shards.AddF64(sum_slot_, v);
}

std::vector<uint64_t> Histogram::bucket_counts() const {
  std::vector<uint64_t> out(bounds_.size() + 1);
  ShardRegistry::Get().SnapshotU64(first_slot_, out.size(), out.data());
  return out;
}

double Histogram::Quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const std::vector<uint64_t> counts = bucket_counts();
  uint64_t total = 0;
  for (uint64_t n : counts) total += n;
  if (total == 0) return 0.0;
  if (bounds_.empty()) return mean();  // single +inf bucket: no shape
  const double target = q * static_cast<double>(total);
  uint64_t cum = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts[i];
    if (static_cast<double>(cum) < target) continue;
    if (i >= bounds_.size()) return bounds_.back();  // +inf: saturate
    const double lo = i == 0 ? std::min(0.0, bounds_[0]) : bounds_[i - 1];
    const double hi = bounds_[i];
    const double frac =
        std::clamp((target - before) / static_cast<double>(counts[i]), 0.0, 1.0);
    return lo + frac * (hi - lo);
  }
  return bounds_.back();  // only reachable via racing writers
}

void Histogram::ResetForTestInternal() {
  ShardRegistry& shards = ShardRegistry::Get();
  for (size_t i = 0; i < bounds_.size() + 2; ++i) {
    shards.StoreU64(first_slot_ + i, 0);
  }
  shards.StoreF64(sum_slot_, 0.0);
}

std::vector<double> LatencyBucketsUs() {
  return {1,    2,    5,     10,    20,    50,    100,     200,     500,
          1000, 2000, 5000,  1e4,   2e4,   5e4,   1e5,     2e5,     5e5,
          1e6,  2e6,  5e6,   1e7};
}

std::vector<double> SizeBucketsBytes() {
  std::vector<double> b;
  for (double v = 64.0; v <= 268435456.0; v *= 4.0) b.push_back(v);
  return b;
}

std::vector<double> DepthBuckets() {
  std::vector<double> b = {0.0};
  for (double v = 1.0; v <= 4096.0; v *= 2.0) b.push_back(v);
  return b;
}

std::vector<double> ExponentialBuckets(double start, double growth, int count) {
  std::vector<double> b;
  b.reserve(count > 0 ? static_cast<size_t>(count) : 0);
  double v = start;
  for (int i = 0; i < count; ++i) {
    b.push_back(v);
    v *= growth;
  }
  return b;
}

// ---------------------------------------------------------------------------
// Registry

Registry& Registry::Get() {
  static Registry* r = new Registry();  // never destroyed: pointers must
  return *r;                            // outlive every static caller
}

Counter* Registry::GetCounter(const std::string& name,
                              const std::string& labels, Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = counters_[{name, labels}];
  if (!entry.instrument) {
    entry.instrument = std::unique_ptr<Counter>(new Counter());
    entry.kind = kind;
  }
  return entry.instrument.get();
}

Gauge* Registry::GetGauge(const std::string& name, const std::string& labels,
                          Kind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& entry = gauges_[{name, labels}];
  if (!entry.instrument) {
    entry.instrument = std::unique_ptr<Gauge>(new Gauge());
    entry.kind = kind;
  }
  return entry.instrument.get();
}

Histogram* Registry::GetHistogram(const std::string& name,
                                  const std::string& labels,
                                  std::vector<double> bounds, Kind kind) {
  Histogram* out = nullptr;
  bool mismatch = false;
  bool warn = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& entry = histograms_[{name, labels}];
    if (!entry.instrument) {
      entry.instrument =
          std::unique_ptr<Histogram>(new Histogram(std::move(bounds)));
      entry.kind = kind;
    } else {
      // First caller won; detect later callers asking for a different
      // schema instead of silently ignoring them.
      std::sort(bounds.begin(), bounds.end());
      if (bounds != entry.instrument->bounds()) {
        mismatch = true;
        if (!entry.warned_mismatch) {
          entry.warned_mismatch = true;
          warn = true;
        }
      }
    }
    out = entry.instrument.get();
  }
  // Outside mu_: bumping the mismatch counter re-enters the registry.
  if (mismatch) {
    GetCounter("kea.obs.schema_mismatch", "", Kind::kDeterministic)
        ->Increment();
    if (warn) {
      std::fprintf(stderr,
                   "kea::obs: histogram %s{%s} requested with mismatched "
                   "bucket bounds; first caller's schema kept\n",
                   name.c_str(), labels.c_str());
    }
  }
  return out;
}

uint64_t Registry::CounterValue(const std::string& name,
                                const std::string& labels) const {
  Counter* c = nullptr;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = counters_.find({name, labels});
    if (it == counters_.end()) return 0;
    c = it->second.instrument.get();
  }
  // Outside mu_: value() takes the shard mutex (leaf lock either way, but
  // no reason to hold both).
  return c->value();
}

namespace {

// %.17g prints doubles losslessly and identically across runs, matching the
// CSV codec's determinism guarantee (see telemetry/store.cc).
std::string FmtDouble(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string FullName(const std::string& name, const std::string& labels) {
  return labels.empty() ? name : name + "{" + labels + "}";
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string Registry::RenderText(bool include_timing) const {
  // The render IS the epoch boundary: per-thread residue drains into the
  // central base so the registry view is aggregated before we read.
  ShardRegistry::Get().AdvanceEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char line[256];
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    std::snprintf(line, sizeof(line), "counter %s %" PRIu64 "\n",
                  FullName(key.first, key.second).c_str(),
                  entry.instrument->value());
    out += line;
  }
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    out += "gauge " + FullName(key.first, key.second) + " " +
           FmtDouble(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const Histogram& h = *entry.instrument;
    // Snapshot consistency: the exported count is derived from the single
    // bucket read below, not from the separately-updated count slot — a
    // render concurrent with Observe() must still satisfy
    // count == sum(buckets).
    auto counts = h.bucket_counts();
    uint64_t total = 0;
    for (uint64_t n : counts) total += n;
    out += "histogram " + FullName(key.first, key.second) +
           " count=" + std::to_string(total) + " sum=" + FmtDouble(h.sum());
    out += " buckets=[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      if (i < h.bounds().size()) {
        out += "le";
        out += FmtDouble(h.bounds()[i]);
      } else {
        out += "inf";
      }
      out += ":";
      out += std::to_string(counts[i]);
    }
    out += "]\n";
  }
  return out;
}

std::string Registry::RenderCsv(bool include_timing) const {
  ShardRegistry::Get().AdvanceEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "kind,name,labels,field,value\n";
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    out += "counter," + key.first + "," + key.second + ",value," +
           std::to_string(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    out += "gauge," + key.first + "," + key.second + ",value," +
           FmtDouble(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const Histogram& h = *entry.instrument;
    // count derives from the same bucket read as the bucket rows (see
    // RenderText) so concurrent snapshots stay internally consistent.
    auto counts = h.bucket_counts();
    uint64_t total = 0;
    for (uint64_t n : counts) total += n;
    out += "histogram," + key.first + "," + key.second + ",count," +
           std::to_string(total) + "\n";
    out += "histogram," + key.first + "," + key.second + ",sum," +
           FmtDouble(h.sum()) + "\n";
    for (size_t i = 0; i < counts.size(); ++i) {
      std::string edge = "inf";
      if (i < h.bounds().size()) {
        edge = "le";
        edge += FmtDouble(h.bounds()[i]);
      }
      out += "histogram," + key.first + "," + key.second + ",bucket_" + edge +
             "," + std::to_string(counts[i]) + "\n";
    }
  }
  return out;
}

std::string Registry::RenderJson(bool include_timing) const {
  ShardRegistry::Get().AdvanceEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\"counters\":[";
  bool first = true;
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(key.first) + "\",\"labels\":\"" +
           JsonEscape(key.second) +
           "\",\"value\":" + std::to_string(entry.instrument->value()) + "}";
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(key.first) + "\",\"labels\":\"" +
           JsonEscape(key.second) +
           "\",\"value\":" + FmtDouble(entry.instrument->value()) + "}";
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    if (!first) out += ",";
    first = false;
    const Histogram& h = *entry.instrument;
    // As in RenderText: count is the sum of one bucket snapshot, never the
    // independently-racing count slot.
    auto counts = h.bucket_counts();
    uint64_t total = 0;
    for (uint64_t n : counts) total += n;
    out += "{\"name\":\"" + JsonEscape(key.first) + "\",\"labels\":\"" +
           JsonEscape(key.second) +
           "\",\"count\":" + std::to_string(total) +
           ",\"sum\":" + FmtDouble(h.sum()) + ",\"bounds\":[";
    for (size_t i = 0; i < h.bounds().size(); ++i) {
      if (i) out += ",";
      out += FmtDouble(h.bounds()[i]);
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < counts.size(); ++i) {
      if (i) out += ",";
      out += std::to_string(counts[i]);
    }
    out += "]}";
  }
  out += "]}";
  return out;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Our dotted names map
// '.' (and any other illegal byte) to '_'.
std::string PromName(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out = "_" + out;
  return out;
}

// "k=v,k2=v2" -> {k="v",k2="v2"}; empty labels render as no brace block.
// `extra` (e.g. le="5") is appended when non-empty.
std::string PromLabels(const std::string& labels, const std::string& extra) {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool in_value = false;
  for (char c : labels) {
    if (!in_value && c == '=') {
      out += "=\"";
      in_value = true;
    } else if (in_value && c == ',') {
      out += "\",";
      in_value = false;
    } else {
      if (c == '"' || c == '\\') out += '\\';
      out += c;
    }
  }
  if (in_value) out += '"';
  if (!extra.empty()) {
    if (!labels.empty()) out += ",";
    out += extra;
  }
  out += "}";
  return out;
}

}  // namespace

std::string Registry::RenderPrometheus(bool include_timing) const {
  ShardRegistry::Get().AdvanceEpoch();
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // One # TYPE line per metric name; the maps are sorted by (name, labels)
  // so all series of a name are contiguous.
  std::string last_type_line;
  auto type_line = [&out, &last_type_line](const std::string& pname,
                                           const char* type) {
    std::string line = "# TYPE " + pname + " " + type + "\n";
    if (line != last_type_line) {
      out += line;
      last_type_line = line;
    }
  };
  for (const auto& [key, entry] : counters_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const std::string pname = PromName(key.first);
    type_line(pname, "counter");
    out += pname + PromLabels(key.second, "") + " " +
           std::to_string(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : gauges_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const std::string pname = PromName(key.first);
    type_line(pname, "gauge");
    out += pname + PromLabels(key.second, "") + " " +
           FmtDouble(entry.instrument->value()) + "\n";
  }
  for (const auto& [key, entry] : histograms_) {
    if (entry.kind == Kind::kTiming && !include_timing) continue;
    const Histogram& h = *entry.instrument;
    const std::string pname = PromName(key.first);
    type_line(pname, "histogram");
    auto counts = h.bucket_counts();
    uint64_t cum = 0;
    for (size_t i = 0; i < counts.size(); ++i) {
      cum += counts[i];  // Prometheus buckets are cumulative
      const std::string le =
          i < h.bounds().size() ? FmtDouble(h.bounds()[i]) : "+Inf";
      out += pname + "_bucket" +
             PromLabels(key.second, "le=\"" + le + "\"") + " " +
             std::to_string(cum) + "\n";
    }
    out += pname + "_sum" + PromLabels(key.second, "") + " " +
           FmtDouble(h.sum()) + "\n";
    out += pname + "_count" + PromLabels(key.second, "") + " " +
           std::to_string(cum) + "\n";
  }
  return out;
}

void Registry::ResetForTest() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [key, entry] : counters_) entry.instrument->RestoreTo(0);
  for (auto& [key, entry] : gauges_) {
    entry.instrument->bits_.store(std::bit_cast<uint64_t>(0.0),
                                  std::memory_order_relaxed);
  }
  for (auto& [key, entry] : histograms_) {
    entry.instrument->ResetForTestInternal();
  }
}

}  // namespace kea::obs
