#include "obs/profiler.h"

#include <bit>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>

namespace kea::obs {

thread_local PhaseProfiler::TlsState PhaseProfiler::tls_;

namespace {
int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

PhaseProfiler& PhaseProfiler::Get() {
  static PhaseProfiler* p = new PhaseProfiler();  // leaked like Registry
  return *p;
}

PhaseProfiler::Node* PhaseProfiler::ChildNamed(Node* parent,
                                               const char* name) {
  // Nodes are per-thread (every thread owns its root), so the owning thread
  // may scan children without a lock; only the push_back needs mu_ to
  // synchronize with the exporter.
  for (const auto& c : parent->children) {
    if (c->name == name) return c.get();
  }
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& c : parent->children) {
    if (c->name == name) return c.get();
  }
  auto node = std::make_unique<Node>();
  node->name = name;
  node->parent = parent;
  Node* raw = node.get();
  parent->children.push_back(std::move(node));
  return raw;
}

void PhaseProfiler::Begin(const char* name) {
  TlsState& t = tls_;
  if (t.current == nullptr) {
    auto root = std::make_unique<ThreadRoot>();
    Node* r = &root->root;
    {
      std::lock_guard<std::mutex> lock(mu_);
      roots_.push_back(std::move(root));
    }
    t.current = r;
  }
  t.current = ChildNamed(t.current, name);
  t.starts.push_back(NowNs());
  scopes_.fetch_add(1, std::memory_order_relaxed);
}

void PhaseProfiler::End() {
  TlsState& t = tls_;
  if (t.current == nullptr || t.starts.empty()) return;  // unbalanced; drop
  const int64_t dt = NowNs() - t.starts.back();
  t.starts.pop_back();
  t.current->total_ns.fetch_add(dt > 0 ? static_cast<uint64_t>(dt) : 0,
                                std::memory_order_relaxed);
  t.current->count.fetch_add(1, std::memory_order_relaxed);
  t.current = t.current->parent;
}

void PhaseProfiler::CollectLocked(
    const Node& node, std::string* prefix,
    std::vector<std::pair<std::string, uint64_t>>* out) const {
  const size_t prefix_len = prefix->size();
  if (!prefix->empty()) *prefix += ";";
  *prefix += node.name;
  uint64_t self = node.total_ns.load(std::memory_order_relaxed);
  for (const auto& c : node.children) {
    const uint64_t child_total = c->total_ns.load(std::memory_order_relaxed);
    self = self >= child_total ? self - child_total : 0;
    CollectLocked(*c, prefix, out);
  }
  if (node.count.load(std::memory_order_relaxed) > 0) {
    out->emplace_back(*prefix, self);
  }
  prefix->resize(prefix_len);
}

std::string PhaseProfiler::CollapsedStack() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, uint64_t>> rows;
  std::string prefix;
  for (const auto& r : roots_) {
    for (const auto& c : r->root.children) CollectLocked(*c, &prefix, &rows);
  }
  // Merge identical paths across threads; map iteration sorts by path so
  // the rendering is deterministic given the same timings.
  std::map<std::string, uint64_t> merged;
  for (auto& [path, self_ns] : rows) merged[path] += self_ns;
  std::string out;
  for (const auto& [path, self_ns] : merged) {
    out += path + " " + std::to_string(self_ns) + "\n";
  }
  return out;
}

uint64_t PhaseProfiler::scope_count() const {
  return scopes_.load(std::memory_order_relaxed);
}

double PhaseProfiler::calibrated_scope_cost_ns() const {
  uint64_t bits = calibrated_ns_bits_.load(std::memory_order_relaxed);
  if (bits != 0) return std::bit_cast<double>(bits);
  // A scope's cost is dominated by its two steady_clock reads plus the
  // (amortised-away) child scan; calibrate with clock-read pairs.
  constexpr int kIters = 4096;
  const int64_t begin = NowNs();
  for (int i = 0; i < kIters; ++i) {
    volatile int64_t sink = NowNs();
    (void)sink;
  }
  const double per_scope =
      2.0 * static_cast<double>(NowNs() - begin) / kIters;
  calibrated_ns_bits_.store(std::bit_cast<uint64_t>(per_scope),
                            std::memory_order_relaxed);
  return per_scope;
}

std::string PhaseProfiler::SelfOverheadSummary() const {
  const uint64_t scopes = scope_count();
  const double cost = calibrated_scope_cost_ns();
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "profiler scopes=%llu est_cost_ns_per_scope=%.1f "
                "est_total_overhead_ms=%.3f",
                static_cast<unsigned long long>(scopes), cost,
                scopes * cost / 1e6);
  return buf;
}

bool PhaseProfiler::WriteCollapsedFile(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string body = CollapsedStack();
  bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  const std::string trailer = "# " + SelfOverheadSummary() + "\n";
  ok = std::fwrite(trailer.data(), 1, trailer.size(), f) == trailer.size() &&
       ok;
  ok = std::fclose(f) == 0 && ok;
  return ok;
}

void PhaseProfiler::ResetForTest() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    roots_.clear();
  }
  scopes_.store(0, std::memory_order_relaxed);
  tls_.current = nullptr;
  tls_.starts.clear();
}

}  // namespace kea::obs
