#ifndef KEA_OBS_SHARD_H_
#define KEA_OBS_SHARD_H_

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

/// kea::obs sharding core (DESIGN.md "Observability v2").
///
/// Every instrument value lives in a dense SLOT index. Each thread owns a
/// private ThreadBlock of slots; the hot path is one relaxed atomic RMW on
/// the calling thread's own cache lines — no shared counter, no registry
/// mutex. The aggregated value of a slot is
///
///     base[slot] + sum over live thread blocks of block[slot]
///
/// and is read under the shard mutex (cold path: renders, tests, statusz).
/// Two events move shard residue into `base`:
///
///   - AdvanceEpoch(): atomically drains every live block into base
///     (exchange(0) per slot, so concurrent increments are never lost);
///     called by renders and by ThreadPool teardown.
///   - thread exit: the thread's block is drained and retired via a TLS
///     destructor (and eagerly by ThreadPool workers), so transient pools
///     do not leak shard memory.
///
/// Slot kinds: kU64 accumulates with integer adds (order-independent, exact);
/// kF64 accumulates doubles via single-writer CAS on the bit pattern.
/// Deterministic exports that include kF64 slots (histogram sums) stay
/// bit-identical across thread counts only when the observed values are
/// integer-valued (exact in any fold order) — see DESIGN.md.
namespace kea::obs {

enum class SlotKind : uint8_t {
  kU64 = 0,  // integer accumulator (counters, bucket counts)
  kF64 = 1,  // double accumulator stored as bit pattern (histogram sums)
};

/// Fixed-size chunk of slots; chunks are allocated lazily by the owning
/// thread the first time a slot in the chunk is touched.
struct ShardChunk {
  static constexpr size_t kSlots = 256;
  std::atomic<uint64_t> slots[kSlots];
  ShardChunk() {
    for (auto& s : slots) s.store(0, std::memory_order_relaxed);
  }
};

/// One thread's private shard. Only the owning thread adds; other threads
/// read (aggregation) or zero (RestoreTo/reset/epoch drain) the atomics.
/// Chunk pointers are published with release stores and read with acquire
/// loads so a reader never sees an uninitialised chunk.
struct ThreadBlock {
  static constexpr size_t kMaxChunks = 1024;  // 256Ki slots — far above need
  std::atomic<ShardChunk*> chunks[kMaxChunks];
  ThreadBlock() {
    for (auto& c : chunks) c.store(nullptr, std::memory_order_relaxed);
  }
  ~ThreadBlock() {
    for (auto& c : chunks) delete c.load(std::memory_order_relaxed);
  }
};

/// Process-wide shard table. Leaked singleton (like Registry/Tracer) so slot
/// indices cached in function-local statics outlive every caller.
class ShardRegistry {
 public:
  /// Hot-path accessor: one inlined acquire load once the singleton exists
  /// (every Counter::Increment goes through here, so the usual
  /// function-local-static guard would be a per-increment call).
  static ShardRegistry& Get() {
    ShardRegistry* r = instance_.load(std::memory_order_acquire);
    return r != nullptr ? *r : GetSlow();
  }

  /// Allocates `n` contiguous slots of `kind`; returns the first index.
  /// Slots live forever. Aborts if the fixed slot space is exhausted
  /// (programming error: instruments are created once, not per request).
  size_t AllocateSlots(size_t n, SlotKind kind);

  /// Hot path: add to the calling thread's shard. One relaxed fetch_add
  /// (kU64) or one uncontended CAS (kF64) on thread-owned cache lines.
  void AddU64(size_t slot, uint64_t n) {
    std::atomic<uint64_t>* s = HotSlot(slot);
    if (s != nullptr) {
      s->fetch_add(n, std::memory_order_relaxed);
    } else {
      AddBaseU64(slot, n);  // thread is exiting; rare
    }
  }
  void AddF64(size_t slot, double v) {
    std::atomic<uint64_t>* s = HotSlot(slot);
    if (s == nullptr) {
      AddBaseF64(slot, v);  // thread is exiting; rare
      return;
    }
    uint64_t observed = s->load(std::memory_order_relaxed);
    uint64_t desired;
    do {
      desired = std::bit_cast<uint64_t>(std::bit_cast<double>(observed) + v);
    } while (!s->compare_exchange_weak(observed, desired,
                                       std::memory_order_relaxed));
  }

  /// Aggregated reads: base + sum of live blocks, under the shard mutex.
  uint64_t ReadU64(size_t slot) const;
  double ReadF64(size_t slot) const;
  /// Reads slots [first, first+n) in ONE locked pass — the snapshot renders
  /// use so a histogram's exported count can be derived from the same read
  /// as its buckets.
  void SnapshotU64(size_t first, size_t n, uint64_t* out) const;

  /// Sets the aggregated value to exactly `v`: base := v, every live shard
  /// slot drained to zero. For RestoreTo (checkpoint/resume) and test
  /// resets; racing writers keep only increments that land after the store.
  void StoreU64(size_t slot, uint64_t v);
  void StoreF64(size_t slot, double v);

  /// Drains every live block into base (exchange(0) per slot — concurrent
  /// increments are either captured or left for the next epoch, never
  /// lost). Aggregated values are unchanged; per-thread residue becomes
  /// centrally visible even if a reader later skips the block scan.
  void AdvanceEpoch();

  /// Drains and retires the calling thread's block; later adds from this
  /// thread fall back to the (locked) base path. Called from the TLS
  /// destructor and eagerly by ThreadPool workers on exit.
  void FoldCurrentThread();

  /// Introspection for tests / statusz.
  size_t live_shard_count() const;
  uint64_t epochs() const;
  size_t slot_count() const;

 private:
  ShardRegistry() = default;

  /// Constructs and publishes the leaked singleton (cold; thread-safe via
  /// the function-local static inside).
  static ShardRegistry& GetSlow();
  inline static std::atomic<ShardRegistry*> instance_{nullptr};

  // Returns the calling thread's slot, or nullptr if this thread's shard
  // has been retired (thread exiting). Cold sub-paths are out-of-line.
  std::atomic<uint64_t>* HotSlot(size_t slot) {
    ThreadBlock* b = tls_block_;
    if (b == nullptr) {
      b = EnsureBlock();
      if (b == nullptr) return nullptr;
    }
    const size_t ci = slot / ShardChunk::kSlots;
    ShardChunk* c = b->chunks[ci].load(std::memory_order_acquire);
    if (c == nullptr) c = EnsureChunk(b, ci);
    return &c->slots[slot % ShardChunk::kSlots];
  }

  ThreadBlock* EnsureBlock();
  static ShardChunk* EnsureChunk(ThreadBlock* b, size_t chunk_index);
  void AddBaseU64(size_t slot, uint64_t n);
  void AddBaseF64(size_t slot, double v);
  // Drains `b` into base_. Caller holds mu_.
  void DrainLocked(ThreadBlock* b);

  // TLS handle: destructor retires this thread's block. `tls_block_` is a
  // raw mirror of handle.block so the hot path is a single TLS load.
  struct TlsHandle {
    ThreadBlock* block = nullptr;
    bool retired = false;
    ~TlsHandle();
  };
  static thread_local TlsHandle tls_handle_;
  static thread_local ThreadBlock* tls_block_;

  mutable std::mutex mu_;
  std::vector<SlotKind> kinds_;          // indexed by slot
  std::vector<uint64_t> base_;           // aggregated residue, bit patterns
  std::vector<std::unique_ptr<ThreadBlock>> live_;
  uint64_t epochs_ = 0;
};

}  // namespace kea::obs

#endif  // KEA_OBS_SHARD_H_
