// trace_check: validates a Chrome trace-event JSON file produced by
// kea::obs (CI runs it against the traced quickstart artifact).
//
//   ./build/src/obs/trace_check trace.json
//
// Exit 0 iff the file parses as JSON and every span is well-nested (each B
// has a matching same-thread E, parents resolve, timestamps don't regress).

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/trace.h"

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <trace.json>\n", argv[0]);
    return 2;
  }
  std::ifstream f(argv[1], std::ios::binary);
  if (!f) {
    std::fprintf(stderr, "trace_check: cannot open %s\n", argv[1]);
    return 2;
  }
  std::ostringstream buf;
  buf << f.rdbuf();

  kea::obs::TraceValidation v = kea::obs::ValidateChromeTrace(buf.str());
  if (!v.ok) {
    std::fprintf(stderr, "trace_check: INVALID: %s\n", v.error.c_str());
    return 1;
  }
  std::printf("trace_check: OK — %zu events (%zu spans) on %zu thread(s), "
              "max depth %zu\n",
              v.events, v.begins, v.threads, v.max_depth);
  for (const auto& [name, count] : v.name_counts) {
    std::printf("  %-32s %zu\n", name.c_str(), count);
  }
  return 0;
}
