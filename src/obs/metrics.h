#ifndef KEA_OBS_METRICS_H_
#define KEA_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/shard.h"

/// kea::obs — self-measurement for the tuning pipeline (DESIGN.md
/// "Observability"). This library sits BELOW kea_common so that ThreadPool,
/// Journal and Logger can be instrumented; it therefore depends on nothing
/// but the standard library (no Status, no logging).
///
/// Two invariants shape the API:
///   1. Hot-path cost is one relaxed atomic RMW — on THREAD-LOCAL shard
///      storage (obs/shard.h), so concurrent writers never share a cache
///      line — when enabled, and one relaxed load when disabled. Instrument
///      pointers are stable for the process lifetime — call sites cache
///      them in function-local statics.
///   2. Determinism contract: every instrument is either kDeterministic
///      (counts logical events — bit-identical across thread counts and
///      runs) or kTiming (derived from wall clocks — excluded from the
///      deterministic snapshot exports). `determinism_test` and `obs_test`
///      enforce the split. Sharding preserves the contract: integer
///      accumulation is exact in any fold order, and deterministic
///      histograms observe integer-valued data so their double sums are
///      too (see DESIGN.md "Observability v2").
namespace kea::obs {

// ---------------------------------------------------------------------------
// Kill switches. Metrics default ON (cheap), tracing defaults OFF (it
// allocates). Building with -DKEA_OBS=OFF defines KEA_OBS_DISABLED and turns
// every guard into `if (false)`, compiling the instrumentation out entirely
// — the "null sink" end of the overhead budget.
#ifdef KEA_OBS_DISABLED
inline constexpr bool MetricsEnabled() { return false; }
inline void EnableMetrics() {}
inline void DisableMetrics() {}
#else
namespace internal {
extern std::atomic<bool> g_metrics_enabled;
}
/// Inline: this guard sits on every Counter::Increment / Histogram::Observe.
inline bool MetricsEnabled() {
  return internal::g_metrics_enabled.load(std::memory_order_relaxed);
}
void EnableMetrics();
void DisableMetrics();
#endif

/// Disables metrics AND tracing in one call — the runtime kill switch.
void Disable();
/// Restores the default state: metrics on, tracing off.
void Enable();

/// Export class of an instrument; fixed at creation, first caller wins.
enum class Kind {
  kDeterministic = 0,  // logical event counts; in deterministic exports
  kTiming = 1,         // wall-clock derived; timing-only exports
};

// ---------------------------------------------------------------------------
// Instruments. All methods are thread-safe; mutation is lock-free and
// lands in the calling thread's shard (obs/shard.h). Reads aggregate
// base + live shards under the shard mutex — cold paths only.

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (MetricsEnabled()) ShardRegistry::Get().AddU64(slot_, n);
  }
  uint64_t value() const { return ShardRegistry::Get().ReadU64(slot_); }

  /// Overwrites the value — ONLY for checkpoint/resume, where the restored
  /// process must report the same totals the crashed one had durably
  /// recorded. Bypasses the kill switch so resume state is never lost.
  /// Increments racing the store keep only what lands after it.
  void RestoreTo(uint64_t v) { ShardRegistry::Get().StoreU64(slot_, v); }

 private:
  friend class Registry;
  Counter() : slot_(ShardRegistry::Get().AllocateSlots(1, SlotKind::kU64)) {}
  const size_t slot_;
};

/// Last-value gauge (queue depths, config knobs currently applied, ...).
/// Deliberately NOT sharded: Set() is already a single relaxed store with
/// no RMW, and last-value semantics across shards would need per-shard
/// ordering metadata that costs more than the store it replaces.
class Gauge {
 public:
  void Set(double v) {
    if (MetricsEnabled())
      bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges; an implicit
/// +inf bucket catches the tail. Bucket counts, the event count and the
/// running sum are per-thread shard slots, so concurrent Observe() calls
/// never lock and never share cache lines.
class Histogram {
 public:
  void Observe(double v);

  uint64_t count() const { return ShardRegistry::Get().ReadU64(count_slot_); }
  double sum() const { return ShardRegistry::Get().ReadF64(sum_slot_); }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the +inf overflow bucket. One
  /// locked pass over the shard table — the snapshot the renders derive
  /// their count from, so count == sum(buckets) in every export.
  std::vector<uint64_t> bucket_counts() const;

  /// Quantile estimate from the bucket snapshot, q in [0, 1]. Linear
  /// interpolation inside the containing bucket; values in the +inf bucket
  /// report the last finite bound (the estimate saturates there). Relative
  /// error is bounded by the bucket growth factor — see obs_slo_test.
  /// Returns 0 for an empty histogram, mean() when there are no finite
  /// bounds (single +inf bucket: the snapshot carries no shape).
  double Quantile(double q) const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  void ResetForTestInternal();
  std::vector<double> bounds_;
  size_t first_slot_;  // bounds_.size()+1 bucket slots, then the count slot
  size_t count_slot_;
  size_t sum_slot_;
};

/// Canonical bucket ladders so dashboards line up across instruments.
std::vector<double> LatencyBucketsUs();  // 1us .. 10s, roughly 1-2-5
std::vector<double> SizeBucketsBytes();  // 64B .. 256MB, powers of 4
std::vector<double> DepthBuckets();      // 0 .. 4096, powers of 2
/// HDR-style log-spaced ladder: `count` edges starting at `start`, each
/// `growth` times the last. Quantile() relative error <= growth - 1.
std::vector<double> ExponentialBuckets(double start, double growth, int count);

// ---------------------------------------------------------------------------
// Registry: the process-wide instrument namespace. Instruments are created
// on first Get*() and live forever; the mutex guards only creation/lookup,
// never the hot path. `labels` is a pre-rendered "k=v,k=v" string (empty for
// unlabeled instruments) — rendering is the caller's job because labeled
// hot paths cache the pointer anyway.
class Registry {
 public:
  static Registry& Get();

  Counter* GetCounter(const std::string& name, const std::string& labels = "",
                      Kind kind = Kind::kDeterministic);
  Gauge* GetGauge(const std::string& name, const std::string& labels = "",
                  Kind kind = Kind::kTiming);
  /// First caller wins on bounds and kind. A later caller with DIFFERENT
  /// bounds still gets the existing instrument, but the mismatch bumps the
  /// `kea.obs.schema_mismatch` counter and logs one warning per instrument
  /// — silent first-caller-wins hid real schema bugs (ISSUE 9).
  Histogram* GetHistogram(const std::string& name, const std::string& labels,
                          std::vector<double> bounds,
                          Kind kind = Kind::kTiming);

  /// Value of a counter, or 0 if it was never created. For tests/benches.
  uint64_t CounterValue(const std::string& name,
                        const std::string& labels = "") const;

  /// Deterministic snapshot renderers. Instruments are sorted by
  /// (name, labels); kTiming instruments are included only when
  /// `include_timing` — the deterministic exports must be bit-identical
  /// across thread counts, seeds, and machines.
  ///
  /// Each render first advances the shard epoch (draining per-thread
  /// residue into the central base — the "aggregated by epoch" point) and
  /// then reads aggregated values.
  ///
  /// Snapshot consistency under concurrent writers: each histogram's
  /// exported count is derived from one bucket_counts() read, so
  /// count == sum(buckets) holds in every rendered line even while
  /// Observe() races the render (the count slot and the bucket slots are
  /// separate relaxed accumulators and may otherwise disagree transiently).
  /// The sum field remains a racing read of completed additions.
  std::string RenderText(bool include_timing = false) const;
  std::string RenderCsv(bool include_timing = false) const;
  std::string RenderJson(bool include_timing = false) const;

  /// Prometheus text exposition (metric names with '.' mapped to '_',
  /// histogram buckets cumulative with le="..." labels, _sum/_count
  /// series). Includes timing instruments by default — this is the ops
  /// surface, not the deterministic snapshot.
  std::string RenderPrometheus(bool include_timing = true) const;

  /// Zeroes every instrument (pointers stay valid). Tests only.
  void ResetForTest();

 private:
  Registry() = default;

  using Key = std::pair<std::string, std::string>;  // (name, labels)
  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    Kind kind;
    bool warned_mismatch = false;  // used by histograms only
  };

  mutable std::mutex mu_;
  std::map<Key, Entry<Counter>> counters_;
  std::map<Key, Entry<Gauge>> gauges_;
  std::map<Key, Entry<Histogram>> histograms_;
};

}  // namespace kea::obs

#endif  // KEA_OBS_METRICS_H_
