#ifndef KEA_OBS_METRICS_H_
#define KEA_OBS_METRICS_H_

#include <atomic>
#include <bit>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

/// kea::obs — self-measurement for the tuning pipeline (DESIGN.md
/// "Observability"). This library sits BELOW kea_common so that ThreadPool,
/// Journal and Logger can be instrumented; it therefore depends on nothing
/// but the standard library (no Status, no logging).
///
/// Two invariants shape the API:
///   1. Hot-path cost is one relaxed atomic RMW when enabled and one relaxed
///      load when disabled. Instrument pointers are stable for the process
///      lifetime — call sites cache them in function-local statics.
///   2. Determinism contract: every instrument is either kDeterministic
///      (counts logical events — bit-identical across thread counts and
///      runs) or kTiming (derived from wall clocks — excluded from the
///      deterministic snapshot exports). `determinism_test` and `obs_test`
///      enforce the split.
namespace kea::obs {

// ---------------------------------------------------------------------------
// Kill switches. Metrics default ON (cheap), tracing defaults OFF (it
// allocates). Building with -DKEA_OBS=OFF defines KEA_OBS_DISABLED and turns
// every guard into `if (false)`, compiling the instrumentation out entirely
// — the "null sink" end of the overhead budget.
#ifdef KEA_OBS_DISABLED
inline constexpr bool MetricsEnabled() { return false; }
inline void EnableMetrics() {}
inline void DisableMetrics() {}
#else
bool MetricsEnabled();
void EnableMetrics();
void DisableMetrics();
#endif

/// Disables metrics AND tracing in one call — the runtime kill switch.
void Disable();
/// Restores the default state: metrics on, tracing off.
void Enable();

/// Export class of an instrument; fixed at creation, first caller wins.
enum class Kind {
  kDeterministic = 0,  // logical event counts; in deterministic exports
  kTiming = 1,         // wall-clock derived; timing-only exports
};

// ---------------------------------------------------------------------------
// Instruments. All methods are thread-safe; mutation is lock-free.

/// Monotonic event counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    if (MetricsEnabled()) value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

  /// Overwrites the value — ONLY for checkpoint/resume, where the restored
  /// process must report the same totals the crashed one had durably
  /// recorded. Bypasses the kill switch so resume state is never lost.
  void RestoreTo(uint64_t v) { value_.store(v, std::memory_order_relaxed); }

 private:
  friend class Registry;
  Counter() = default;
  std::atomic<uint64_t> value_{0};
};

/// Last-value gauge (queue depths, config knobs currently applied, ...).
class Gauge {
 public:
  void Set(double v) {
    if (MetricsEnabled())
      bits_.store(std::bit_cast<uint64_t>(v), std::memory_order_relaxed);
  }
  double value() const {
    return std::bit_cast<double>(bits_.load(std::memory_order_relaxed));
  }

 private:
  friend class Registry;
  Gauge() = default;
  std::atomic<uint64_t> bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Fixed-bucket histogram. `bounds` are inclusive upper edges; an implicit
/// +inf bucket catches the tail. Bucket counts and the running sum are
/// atomics, so concurrent Observe() calls never lock.
class Histogram {
 public:
  void Observe(double v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const {
    return std::bit_cast<double>(sum_bits_.load(std::memory_order_relaxed));
  }
  double mean() const {
    uint64_t n = count();
    return n == 0 ? 0.0 : sum() / static_cast<double>(n);
  }
  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; last is the +inf overflow bucket.
  std::vector<uint64_t> bucket_counts() const;

 private:
  friend class Registry;
  explicit Histogram(std::vector<double> bounds);
  std::vector<double> bounds_;
  std::vector<std::atomic<uint64_t>> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_bits_{std::bit_cast<uint64_t>(0.0)};
};

/// Canonical bucket ladders so dashboards line up across instruments.
std::vector<double> LatencyBucketsUs();  // 1us .. 10s, roughly 1-2-5
std::vector<double> SizeBucketsBytes();  // 64B .. 256MB, powers of 4
std::vector<double> DepthBuckets();      // 0 .. 4096, powers of 2

// ---------------------------------------------------------------------------
// Registry: the process-wide instrument namespace. Instruments are created
// on first Get*() and live forever; the mutex guards only creation/lookup,
// never the hot path. `labels` is a pre-rendered "k=v,k=v" string (empty for
// unlabeled instruments) — rendering is the caller's job because labeled
// hot paths cache the pointer anyway.
class Registry {
 public:
  static Registry& Get();

  Counter* GetCounter(const std::string& name, const std::string& labels = "",
                      Kind kind = Kind::kDeterministic);
  Gauge* GetGauge(const std::string& name, const std::string& labels = "",
                  Kind kind = Kind::kTiming);
  Histogram* GetHistogram(const std::string& name, const std::string& labels,
                          std::vector<double> bounds,
                          Kind kind = Kind::kTiming);

  /// Value of a counter, or 0 if it was never created. For tests/benches.
  uint64_t CounterValue(const std::string& name,
                        const std::string& labels = "") const;

  /// Deterministic snapshot renderers. Instruments are sorted by
  /// (name, labels); kTiming instruments are included only when
  /// `include_timing` — the deterministic exports must be bit-identical
  /// across thread counts, seeds, and machines.
  ///
  /// Snapshot consistency under concurrent writers: each histogram's
  /// exported count is derived from one bucket_counts() read, so
  /// count == sum(buckets) holds in every rendered line even while
  /// Observe() races the render (count_ and the buckets are separate
  /// relaxed atomics and may otherwise disagree transiently). The sum field
  /// remains a racing read of completed additions.
  std::string RenderText(bool include_timing = false) const;
  std::string RenderCsv(bool include_timing = false) const;
  std::string RenderJson(bool include_timing = false) const;

  /// Zeroes every instrument (pointers stay valid). Tests only.
  void ResetForTest();

 private:
  Registry() = default;

  using Key = std::pair<std::string, std::string>;  // (name, labels)
  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    Kind kind;
  };

  mutable std::mutex mu_;
  std::map<Key, Entry<Counter>> counters_;
  std::map<Key, Entry<Gauge>> gauges_;
  std::map<Key, Entry<Histogram>> histograms_;
};

}  // namespace kea::obs

#endif  // KEA_OBS_METRICS_H_
