#ifndef KEA_OBS_SLO_H_
#define KEA_OBS_SLO_H_

#include <cstdint>
#include <string>
#include <vector>

/// SLO tracking for kea::obs (DESIGN.md "Observability v2").
///
/// An SloTracker measures a latency SLO ("objective fraction of events
/// complete within target_ms, without error") and reports the ERROR-BUDGET
/// BURN RATE over sliding windows: burn = (bad/total) / (1 - objective).
/// Burn 1.0 consumes the budget exactly at the sustainable rate; the
/// standard SRE multiwindow alert fires when BOTH a fast and a slow window
/// burn hot — the fast window gives response time, the slow window filters
/// blips.
///
/// The tracker is DETERMINISTIC: time is an explicit `now_ms` argument (the
/// caller's virtual clock), never a wall clock, so kea::serve can drive its
/// brownout ladder off the tracker and keep its decision trace bit-identical
/// across worker counts. Not internally synchronized — callers serialize
/// (serve records under its own mutex).
namespace kea::obs {

struct SloOptions {
  double target_ms = 1000.0;  // latency target per event
  double objective = 0.99;    // promised good fraction (0 < objective < 1)
  int64_t fast_window_ms = 60'000;
  int64_t slow_window_ms = 600'000;
  double fast_burn_alert = 6.0;  // both must burn hot to alert
  double slow_burn_alert = 2.0;
  int64_t bucket_ms = 1000;  // ring granularity; windows round to buckets
};

class SloTracker {
 public:
  explicit SloTracker(SloOptions opts);

  /// Records one event at virtual time `now_ms`. Good means latency within
  /// target AND no error. `now_ms` must be non-decreasing; regressions are
  /// clamped to the newest time seen (virtual clocks never rewind, but the
  /// tracker must not corrupt its ring if a caller misbehaves).
  void Record(double latency_ms, bool error, int64_t now_ms);

  /// Error-budget burn over the trailing `window_ms` ending at `now_ms`.
  /// 0 when the window holds no events.
  double BurnRate(int64_t window_ms, int64_t now_ms) const;

  double FastBurn(int64_t now_ms) const {
    return BurnRate(opts_.fast_window_ms, now_ms);
  }
  double SlowBurn(int64_t now_ms) const {
    return BurnRate(opts_.slow_window_ms, now_ms);
  }

  /// Multiwindow alert: fast AND slow windows both over their thresholds.
  bool Alerting(int64_t now_ms) const {
    return FastBurn(now_ms) >= opts_.fast_burn_alert &&
           SlowBurn(now_ms) >= opts_.slow_burn_alert;
  }

  /// Lifetime totals (not windowed).
  uint64_t total() const { return total_; }
  uint64_t bad() const { return bad_; }

  const SloOptions& options() const { return opts_; }

  /// One-line operator rendering for statusz.
  std::string Describe(int64_t now_ms) const;

 private:
  struct Bucket {
    int64_t start_ms = -1;  // bucket-aligned start; -1 = empty
    uint64_t good = 0;
    uint64_t bad = 0;
  };
  // Sums good/bad over buckets inside [now - window, now].
  void WindowTotals(int64_t window_ms, int64_t now_ms, uint64_t* good,
                    uint64_t* bad) const;

  SloOptions opts_;
  std::vector<Bucket> ring_;  // slow_window_ms / bucket_ms buckets
  int64_t latest_ms_ = 0;
  uint64_t total_ = 0;
  uint64_t bad_ = 0;
};

}  // namespace kea::obs

#endif  // KEA_OBS_SLO_H_
