#include "obs/trace.h"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>

#include "obs/metrics.h"
#include "obs/profiler.h"

namespace kea::obs {

#ifndef KEA_OBS_DISABLED
namespace {
// Tracing off by default: spans allocate (event strings, buffer growth),
// which is outside the always-on overhead budget.
std::atomic<bool> g_trace_enabled{false};
}  // namespace

bool TraceEnabled() { return g_trace_enabled.load(std::memory_order_relaxed); }
void EnableTracing() { g_trace_enabled.store(true, std::memory_order_relaxed); }
void DisableTracing() {
  g_trace_enabled.store(false, std::memory_order_relaxed);
}
#endif

// Hooks for metrics.cc's Disable()/Enable() combo switches.
void DisableTracingInternal() { DisableTracing(); }
void ResetTracingToDefault() { DisableTracing(); }

// ---------------------------------------------------------------------------
// Per-thread state. The buffer is shared_ptr'd from the tracer's registry so
// export can walk buffers of threads that have since exited; the per-buffer
// mutex makes the walk safe against a still-running owner. The span stack and
// default parent are plain thread_locals — only the owner touches them.

namespace {

struct TlsState {
  std::shared_ptr<void> buf;  // really Tracer::ThreadBuf; type-erased here
  std::vector<uint64_t> span_stack;
  uint64_t default_parent = 0;
};

TlsState& Tls() {
  thread_local TlsState tls;
  return tls;
}

std::atomic<uint32_t> g_next_tid{1};

}  // namespace

Tracer::Tracer() {
  epoch_ns_ = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

Tracer& Tracer::Get() {
  static Tracer* t = new Tracer();  // leaked: outlives static destructors
  return *t;
}

uint64_t Tracer::NowNs() const {
  uint64_t now = static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
  return now - epoch_ns_;
}

Tracer::ThreadBuf* Tracer::LocalBuf() {
  TlsState& tls = Tls();
  if (!tls.buf) {
    auto buf = std::make_shared<ThreadBuf>();
    buf->tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(mu_);
      bufs_.push_back(buf);
    }
    tls.buf = buf;
  }
  return static_cast<ThreadBuf*>(tls.buf.get());
}

uint64_t Tracer::BeginSpan(const char* name, Annotations args) {
  if (!TraceEnabled()) return 0;
  ThreadBuf* buf = LocalBuf();
  TlsState& tls = Tls();
  // Bounded buffers: once this thread's buffer is full, new spans are
  // dropped whole (no Begin recorded, id 0 so EndSpan no-ops, nothing
  // pushed on the stack — children simply re-parent to the enclosing
  // recorded span). End events bypass the cap so open spans always close.
  const size_t cap = max_events_per_thread_.load(std::memory_order_relaxed);
  if (cap != 0) {
    std::lock_guard<std::mutex> lock(buf->mu);
    if (buf->events.size() >= cap) {
      dropped_spans_.fetch_add(1, std::memory_order_relaxed);
      static Counter* dropped = Registry::Get().GetCounter(
          "obs.trace.dropped_spans", "", Kind::kTiming);
      dropped->Increment();
      return 0;
    }
  }
  const uint64_t id = next_span_.fetch_add(1, std::memory_order_relaxed);
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kBegin;
  ev.name = name;
  ev.span_id = id;
  ev.parent_id =
      tls.span_stack.empty() ? tls.default_parent : tls.span_stack.back();
  ev.ts_ns = NowNs();
  ev.tid = buf->tid;
  ev.args = std::move(args);
  {
    std::lock_guard<std::mutex> lock(buf->mu);
    buf->events.push_back(std::move(ev));
  }
  tls.span_stack.push_back(id);
  return id;
}

void Tracer::EndSpan(uint64_t span_id, const char* name) {
  if (span_id == 0) return;  // begun while disabled
  ThreadBuf* buf = LocalBuf();
  TlsState& tls = Tls();
  // RAII guards unwind LIFO, so the top of the stack is ours. Guard against
  // a mismatch anyway (e.g. Clear() called with a span open in a test).
  if (!tls.span_stack.empty() && tls.span_stack.back() == span_id) {
    tls.span_stack.pop_back();
  }
  TraceEvent ev;
  ev.phase = TraceEvent::Phase::kEnd;
  ev.name = name;
  ev.span_id = span_id;
  ev.ts_ns = NowNs();
  ev.tid = buf->tid;
  std::lock_guard<std::mutex> lock(buf->mu);
  buf->events.push_back(std::move(ev));
}

uint64_t Tracer::CurrentSpanId() const {
  const TlsState& tls = Tls();
  return tls.span_stack.empty() ? 0 : tls.span_stack.back();
}

uint64_t Tracer::ExchangeThreadDefaultParent(uint64_t span_id) {
  TlsState& tls = Tls();
  uint64_t prev = tls.default_parent;
  tls.default_parent = span_id;
  return prev;
}

void Tracer::SetMaxEventsPerThread(size_t max_events) {
  max_events_per_thread_.store(max_events, std::memory_order_relaxed);
}

size_t Tracer::max_events_per_thread() const {
  return max_events_per_thread_.load(std::memory_order_relaxed);
}

uint64_t Tracer::dropped_span_count() const {
  return dropped_spans_.load(std::memory_order_relaxed);
}

void Tracer::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    buf->events.clear();
  }
  next_span_.store(1, std::memory_order_relaxed);
  dropped_spans_.store(0, std::memory_order_relaxed);
}

size_t Tracer::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& buf : bufs_) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    n += buf->events.size();
  }
  return n;
}

std::vector<TraceEvent> Tracer::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::shared_ptr<ThreadBuf>> bufs = bufs_;
  std::sort(bufs.begin(), bufs.end(),
            [](const auto& a, const auto& b) { return a->tid < b->tid; });
  std::vector<TraceEvent> out;
  for (const auto& buf : bufs) {
    std::lock_guard<std::mutex> buf_lock(buf->mu);
    out.insert(out.end(), buf->events.begin(), buf->events.end());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Chrome trace-event export

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string FmtTsUs(uint64_t ts_ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ts_ns) / 1000.0);
  return buf;
}

}  // namespace

std::string Tracer::ExportChromeTrace() const {
  std::vector<TraceEvent> events = Events();
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const TraceEvent& ev : events) {
    if (!first) out += ",";
    first = false;
    const bool begin = ev.phase == TraceEvent::Phase::kBegin;
    out += "{\"name\":\"" + JsonEscape(ev.name) + "\",\"ph\":\"";
    out += begin ? 'B' : 'E';
    out += "\",\"ts\":" + FmtTsUs(ev.ts_ns) +
           ",\"pid\":1,\"tid\":" + std::to_string(ev.tid) + ",\"args\":{";
    out += "\"span\":\"" + std::to_string(ev.span_id) + "\"";
    if (begin) {
      out += ",\"parent\":\"" + std::to_string(ev.parent_id) + "\"";
      for (const auto& [k, v] : ev.args) {
        out += ",\"" + JsonEscape(k) + "\":\"" + JsonEscape(v) + "\"";
      }
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

bool Tracer::WriteChromeTraceFile(const std::string& path,
                                  std::string* error) const {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error) *error = "cannot open " + path + " for writing";
    return false;
  }
  f << ExportChromeTrace();
  f.flush();
  if (!f.good()) {
    if (error) *error = "short write to " + path;
    return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Self-time aggregation

std::vector<SelfTimeRow> ComputeSelfTimes(
    const std::vector<TraceEvent>& events) {
  struct Frame {
    std::string name;
    uint64_t span_id;
    uint64_t begin_ns;
    uint64_t child_ns = 0;
  };
  struct Agg {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t self_ns = 0;
  };
  std::map<uint32_t, std::vector<Frame>> stacks;
  std::map<std::string, Agg> aggs;
  for (const TraceEvent& ev : events) {
    auto& stack = stacks[ev.tid];
    if (ev.phase == TraceEvent::Phase::kBegin) {
      stack.push_back({ev.name, ev.span_id, ev.ts_ns});
    } else {
      if (stack.empty() || stack.back().span_id != ev.span_id) continue;
      Frame frame = stack.back();
      stack.pop_back();
      const uint64_t dur = ev.ts_ns - frame.begin_ns;
      Agg& a = aggs[frame.name];
      a.count += 1;
      a.total_ns += dur;
      a.self_ns += dur > frame.child_ns ? dur - frame.child_ns : 0;
      if (!stack.empty()) stack.back().child_ns += dur;
    }
  }
  std::vector<SelfTimeRow> rows;
  rows.reserve(aggs.size());
  for (const auto& [name, a] : aggs) {
    SelfTimeRow row;
    row.name = name;
    row.count = a.count;
    row.total_us = static_cast<double>(a.total_ns) / 1000.0;
    row.self_us = static_cast<double>(a.self_ns) / 1000.0;
    rows.push_back(std::move(row));
  }
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.total_us != b.total_us ? a.total_us > b.total_us
                                    : a.name < b.name;
  });
  return rows;
}

std::string Tracer::SelfTimeSummary() const {
  std::vector<SelfTimeRow> rows = ComputeSelfTimes(Events());
  std::string out =
      "span name                          count     total_ms      self_ms\n"
      "-------------------------------- ------- ------------ ------------\n";
  char line[160];
  for (const SelfTimeRow& row : rows) {
    std::snprintf(line, sizeof(line), "%-32s %7llu %12.3f %12.3f\n",
                  row.name.c_str(), static_cast<unsigned long long>(row.count),
                  row.total_us / 1000.0, row.self_us / 1000.0);
    out += line;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Minimal JSON parser (objects, arrays, strings, numbers, true/false/null)
// — just enough to validate our own exports without a dependency.

namespace {

struct JsonValue {
  enum Type { kNull, kBool, kNumber, kString, kArray, kObject };
  Type type = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  const JsonValue* Find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  bool Parse(JsonValue* out, std::string* error) {
    bool ok = ParseValue(out) && (SkipWs(), pos_ == text_.size());
    if (!ok && error) {
      *error = "JSON parse error at byte " + std::to_string(pos_) +
               (error_.empty() ? "" : ": " + error_);
    }
    return ok;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Fail(const char* what) {
    if (error_.empty()) error_ = what;
    return false;
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ >= text_.size() || text_[pos_] != c) return false;
    ++pos_;
    return true;
  }

  bool ParseValue(JsonValue* out) {
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->type = JsonValue::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseKeyword(out);
    if (c == 'n') return ParseKeyword(out);
    return ParseNumber(out);
  }

  bool ParseKeyword(JsonValue* out) {
    auto match = [&](const char* kw) {
      size_t len = std::char_traits<char>::length(kw);
      if (text_.compare(pos_, len, kw) != 0) return false;
      pos_ += len;
      return true;
    };
    if (match("true")) {
      out->type = JsonValue::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->type = JsonValue::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->type = JsonValue::kNull;
      return true;
    }
    return Fail("bad keyword");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("bad number");
    char* end = nullptr;
    std::string num = text_.substr(start, pos_ - start);
    out->type = JsonValue::kNumber;
    out->number = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return Fail("bad number");
    return true;
  }

  bool ParseString(std::string* out) {
    if (!Consume('"')) return Fail("expected string");
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return Fail("raw control char");
      if (c != '\\') {
        *out += c;
        continue;
      }
      if (pos_ >= text_.size()) return Fail("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': *out += '"'; break;
        case '\\': *out += '\\'; break;
        case '/': *out += '/'; break;
        case 'b': *out += '\b'; break;
        case 'f': *out += '\f'; break;
        case 'n': *out += '\n'; break;
        case 'r': *out += '\r'; break;
        case 't': *out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Fail("bad \\u escape");
          }
          // Validation only needs byte equality for ASCII; encode as UTF-8.
          if (code < 0x80) {
            *out += static_cast<char>(code);
          } else if (code < 0x800) {
            *out += static_cast<char>(0xC0 | (code >> 6));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            *out += static_cast<char>(0xE0 | (code >> 12));
            *out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            *out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseArray(JsonValue* out) {
    if (!Consume('[')) return Fail("expected array");
    out->type = JsonValue::kArray;
    SkipWs();
    if (Consume(']')) return true;
    while (true) {
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(std::move(v));
      if (Consume(']')) return true;
      if (!Consume(',')) return Fail("expected , or ]");
    }
  }

  bool ParseObject(JsonValue* out) {
    if (!Consume('{')) return Fail("expected object");
    out->type = JsonValue::kObject;
    SkipWs();
    if (Consume('}')) return true;
    while (true) {
      std::string key;
      SkipWs();
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return Fail("expected :");
      JsonValue v;
      if (!ParseValue(&v)) return false;
      out->object.emplace_back(std::move(key), std::move(v));
      if (Consume('}')) return true;
      if (!Consume(',')) return Fail("expected , or }");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

TraceValidation Invalid(std::string why) {
  TraceValidation v;
  v.ok = false;
  v.error = std::move(why);
  return v;
}

}  // namespace

TraceValidation ValidateChromeTrace(const std::string& json) {
  JsonValue root;
  std::string parse_error;
  if (!JsonParser(json).Parse(&root, &parse_error)) return Invalid(parse_error);
  if (root.type != JsonValue::kObject) return Invalid("root is not an object");
  const JsonValue* events = root.Find("traceEvents");
  if (!events || events->type != JsonValue::kArray) {
    return Invalid("missing traceEvents array");
  }

  TraceValidation v;
  struct OpenSpan {
    std::string name;
    uint64_t span_id;
  };
  std::map<int64_t, std::vector<OpenSpan>> stacks;  // tid -> open spans
  std::map<int64_t, double> last_ts;
  std::map<uint64_t, bool> known_spans;
  std::map<std::string, size_t> names;

  // First pass: collect span ids so cross-thread parent references (a worker
  // span whose parent began on the dispatching thread) resolve.
  for (const JsonValue& ev : events->array) {
    const JsonValue* args = ev.Find("args");
    const JsonValue* span = args ? args->Find("span") : nullptr;
    if (span && span->type == JsonValue::kString) {
      known_spans[std::strtoull(span->str.c_str(), nullptr, 10)] = true;
    }
  }

  for (size_t i = 0; i < events->array.size(); ++i) {
    const JsonValue& ev = events->array[i];
    auto at = "event " + std::to_string(i);
    if (ev.type != JsonValue::kObject) return Invalid(at + ": not an object");
    const JsonValue* name = ev.Find("name");
    const JsonValue* ph = ev.Find("ph");
    const JsonValue* ts = ev.Find("ts");
    const JsonValue* tid = ev.Find("tid");
    const JsonValue* args = ev.Find("args");
    if (!name || name->type != JsonValue::kString)
      return Invalid(at + ": missing name");
    if (!ph || ph->type != JsonValue::kString)
      return Invalid(at + ": missing ph");
    if (!ts || ts->type != JsonValue::kNumber || ts->number < 0)
      return Invalid(at + ": bad ts");
    if (!tid || tid->type != JsonValue::kNumber)
      return Invalid(at + ": missing tid");
    if (!args || args->type != JsonValue::kObject)
      return Invalid(at + ": missing args");
    const JsonValue* span = args->Find("span");
    if (!span || span->type != JsonValue::kString)
      return Invalid(at + ": missing args.span");
    const uint64_t span_id = std::strtoull(span->str.c_str(), nullptr, 10);
    const int64_t t = static_cast<int64_t>(tid->number);
    v.events += 1;

    auto ts_it = last_ts.find(t);
    if (ts_it != last_ts.end() && ev.Find("ts")->number < ts_it->second) {
      return Invalid(at + ": timestamps regress on tid " + std::to_string(t));
    }
    last_ts[t] = ts->number;

    auto& stack = stacks[t];
    if (ph->str == "B") {
      v.begins += 1;
      names[name->str] += 1;
      const JsonValue* parent = args->Find("parent");
      if (!parent || parent->type != JsonValue::kString)
        return Invalid(at + ": B without args.parent");
      const uint64_t parent_id =
          std::strtoull(parent->str.c_str(), nullptr, 10);
      if (!stack.empty() && parent_id != stack.back().span_id) {
        return Invalid(at + ": parent " + parent->str +
                       " is not the enclosing span " +
                       std::to_string(stack.back().span_id));
      }
      if (stack.empty() && parent_id != 0 && !known_spans[parent_id]) {
        return Invalid(at + ": parent " + parent->str + " unknown");
      }
      stack.push_back({name->str, span_id});
      v.max_depth = std::max(v.max_depth, stack.size());
    } else if (ph->str == "E") {
      v.ends += 1;
      if (stack.empty()) return Invalid(at + ": E with empty stack");
      if (stack.back().span_id != span_id || stack.back().name != name->str) {
        return Invalid(at + ": E does not match open span " +
                       std::to_string(stack.back().span_id));
      }
      stack.pop_back();
    } else {
      return Invalid(at + ": unsupported phase '" + ph->str + "'");
    }
  }

  for (const auto& [t, stack] : stacks) {
    if (!stack.empty()) {
      return Invalid("tid " + std::to_string(t) + " has " +
                     std::to_string(stack.size()) + " unclosed span(s)");
    }
  }
  v.threads = stacks.size();
  v.name_counts.assign(names.begin(), names.end());
  v.ok = true;
  return v;
}

// ---------------------------------------------------------------------------
// KEA_TRACE environment plumbing

bool EnableTracingFromEnv() {
  const char* path = std::getenv("KEA_TRACE");
  if (path == nullptr || path[0] == '\0') return false;
  EnableTracing();
  return true;
}

bool WriteTraceFromEnv(std::string* path_out, std::string* error) {
  const char* path = std::getenv("KEA_TRACE");
  if (path == nullptr || path[0] == '\0') return true;
  if (path_out) *path_out = path;
  if (!Tracer::Get().WriteChromeTraceFile(path, error)) return false;
  // The phase profile rides along next to the Chrome trace: feed the
  // .folded file to flamegraph.pl or speedscope.
  const std::string folded = std::string(path) + ".folded";
  if (!PhaseProfiler::Get().WriteCollapsedFile(folded)) {
    if (error) *error = "cannot write " + folded;
    return false;
  }
  return true;
}

}  // namespace kea::obs
