#ifndef KEA_KEA_H_
#define KEA_KEA_H_

/// Umbrella header for the KEA library — the public API of the SIGMOD 2021
/// "KEA: Tuning an Exabyte-Scale Data Infrastructure" reproduction. Include
/// individual headers in production code; this is for exploration and
/// examples.

// Foundations.
#include "common/csv.h"       // IWYU pragma: export
#include "common/logging.h"   // IWYU pragma: export
#include "common/random.h"    // IWYU pragma: export
#include "common/retry.h"     // IWYU pragma: export
#include "common/status.h"    // IWYU pragma: export

// ML substrate.
#include "ml/empirical.h"        // IWYU pragma: export
#include "ml/forecast.h"         // IWYU pragma: export
#include "ml/matrix.h"           // IWYU pragma: export
#include "ml/mlp.h"              // IWYU pragma: export
#include "ml/model_selection.h"  // IWYU pragma: export
#include "ml/regression.h"       // IWYU pragma: export
#include "ml/stats.h"            // IWYU pragma: export

// Optimization substrate.
#include "opt/lp.h"          // IWYU pragma: export
#include "opt/montecarlo.h"  // IWYU pragma: export
#include "opt/search.h"      // IWYU pragma: export

// Cluster simulator (the Cosmos stand-in).
#include "sim/cluster.h"        // IWYU pragma: export
#include "sim/fault_injector.h" // IWYU pragma: export
#include "sim/fluid_engine.h"   // IWYU pragma: export
#include "sim/job_sim.h"       // IWYU pragma: export
#include "sim/perf_model.h"    // IWYU pragma: export
#include "sim/sku.h"           // IWYU pragma: export
#include "sim/sku_io.h"        // IWYU pragma: export
#include "sim/workload.h"      // IWYU pragma: export

// Telemetry pipeline.
#include "telemetry/dashboard.h"     // IWYU pragma: export
#include "telemetry/ingestion.h"     // IWYU pragma: export
#include "telemetry/perf_monitor.h"  // IWYU pragma: export
#include "telemetry/record.h"        // IWYU pragma: export
#include "telemetry/store.h"         // IWYU pragma: export

// KEA core.
#include "core/deployment.h"         // IWYU pragma: export
#include "core/experiment.h"         // IWYU pragma: export
#include "core/experiment_runner.h"  // IWYU pragma: export
#include "core/flighting.h"          // IWYU pragma: export
#include "core/guardrailed_rollout.h"  // IWYU pragma: export
#include "core/model_report.h"       // IWYU pragma: export
#include "core/power_analysis.h"     // IWYU pragma: export
#include "core/treatment.h"          // IWYU pragma: export
#include "core/validation.h"         // IWYU pragma: export
#include "core/whatif.h"             // IWYU pragma: export

// Applications.
#include "apps/capacity.h"          // IWYU pragma: export
#include "apps/capacity_planner.h"  // IWYU pragma: export
#include "apps/power_capping.h"     // IWYU pragma: export
#include "apps/queue_tuner.h"       // IWYU pragma: export
#include "apps/sc_selector.h"       // IWYU pragma: export
#include "apps/session.h"           // IWYU pragma: export
#include "apps/sku_designer.h"      // IWYU pragma: export
#include "apps/yarn_tuner.h"        // IWYU pragma: export

// Serving layer (multi-tenant tuning service).
#include "serve/fingerprint.h"    // IWYU pragma: export
#include "serve/request_queue.h"  // IWYU pragma: export
#include "serve/service.h"        // IWYU pragma: export
#include "serve/whatif_cache.h"   // IWYU pragma: export

#endif  // KEA_KEA_H_
