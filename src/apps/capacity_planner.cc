#include "apps/capacity_planner.h"

#include <algorithm>
#include <map>

namespace kea::apps {

StatusOr<CapacityPlanner::Report> CapacityPlanner::Plan(
    const telemetry::TelemetryStore& store, const telemetry::RecordFilter& filter,
    double total_slots, double slots_per_new_machine) const {
  if (total_slots <= 0.0) {
    return Status::InvalidArgument("total_slots must be positive");
  }
  if (slots_per_new_machine <= 0.0) {
    return Status::InvalidArgument("slots_per_new_machine must be positive");
  }

  // Hourly demand = running + queued + rejected containers across the fleet
  // (what the users *wanted* to run, not just what fit).
  std::map<sim::HourIndex, double> by_hour;
  for (const auto& r : store.records()) {
    if (filter && !filter(r)) continue;
    by_hour[r.hour] +=
        r.avg_running_containers + r.queued_containers + r.rejected_containers;
  }
  if (by_hour.size() < 2 * sim::kHoursPerWeek) {
    return Status::FailedPrecondition(
        "capacity planning needs at least two weeks of hourly telemetry");
  }

  Report report;
  report.demand_history.reserve(by_hour.size());
  for (const auto& [hour, demand] : by_hour) {
    report.demand_history.push_back(demand);
  }

  KEA_ASSIGN_OR_RETURN(report.forecaster,
                       ml::SeasonalTrendForecaster::Fit(report.demand_history,
                                                        sim::kHoursPerWeek));
  report.in_sample_mape = report.forecaster.TrainingMape();

  double current_level =
      report.forecaster.trend_intercept() +
      report.forecaster.trend_slope() *
          static_cast<double>(report.demand_history.size());
  if (current_level > 1e-9) {
    report.weekly_growth = report.forecaster.trend_slope() *
                           static_cast<double>(sim::kHoursPerWeek) / current_level;
  }

  double threshold = options_.capacity_threshold * total_slots;
  int horizon_hours = options_.horizon_weeks * sim::kHoursPerWeek;
  std::vector<double> forecast = report.forecaster.Forecast(horizon_hours);
  double peak = 0.0;
  for (int h = 0; h < horizon_hours; ++h) {
    peak = std::max(peak, forecast[static_cast<size_t>(h)]);
    if (report.hours_to_exhaustion < 0 &&
        forecast[static_cast<size_t>(h)] > threshold) {
      report.hours_to_exhaustion = h;
    }
  }
  report.extra_slots_needed = std::max(0.0, peak - threshold);
  report.extra_machines_needed = report.extra_slots_needed / slots_per_new_machine;
  return report;
}

}  // namespace kea::apps
