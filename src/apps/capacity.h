#ifndef KEA_APPS_CAPACITY_H_
#define KEA_APPS_CAPACITY_H_

#include "common/status.h"
#include "core/treatment.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Converts performance improvements into sellable capacity and dollars
/// (Section 5.3: "KEA can also be used to convert any performance improvement
/// into capacity gain (given the same task latency), allowing detailed
/// quantitative evaluation for all engineering changes in monetary values").
class CapacityConverter {
 public:
  struct Options {
    /// Yearly amortized cost of one machine in USD (hardware + datacenter).
    double machine_cost_usd_per_year = 4500.0;
    /// Fleet size the gain extrapolates to (Cosmos: >300k machines).
    double fleet_machines = 300000.0;
  };

  struct Report {
    /// Fractional container-capacity gain at equal cluster latency.
    double capacity_gain = 0.0;
    /// Throughput change (Total Data Read) between the windows.
    double throughput_change = 0.0;
    /// Latency change between the windows (should be ~0 for a valid claim).
    double latency_change = 0.0;
    /// Machines' worth of capacity unlocked.
    double equivalent_machines = 0.0;
    double dollars_per_year = 0.0;
    bool latency_neutral = false;  ///< |latency change| under 1%.
  };

  CapacityConverter() : options_(Options()) {}
  explicit CapacityConverter(const Options& options) : options_(options) {}

  /// Compares two telemetry windows (before/after a deployment) and converts
  /// the container-capacity delta into a monetary estimate. The capacity
  /// gain is the change in average running containers across the fleet;
  /// the report flags whether the latency constraint actually held.
  StatusOr<Report> FromWindows(const telemetry::TelemetryStore& store,
                               const telemetry::RecordFilter& before,
                               const telemetry::RecordFilter& after) const;

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_CAPACITY_H_
