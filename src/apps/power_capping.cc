#include "apps/power_capping.h"

#include <cmath>

#include "core/experiment.h"
#include "core/flighting.h"
#include "core/treatment.h"
#include "telemetry/perf_monitor.h"

namespace kea::apps {

namespace {

/// Group-level normalized metrics over a telemetry window.
struct GroupWindowMetrics {
  double bytes_per_cpu_time = 0.0;
  double bytes_per_second = 0.0;
  double avg_power_watts = 0.0;
  /// Per-machine-hour Bytes-per-CPU-Time samples for significance testing.
  std::vector<double> bytes_per_cpu_samples;
};

StatusOr<GroupWindowMetrics> MeasureGroup(const telemetry::TelemetryStore& store,
                                          const std::vector<int>& machine_ids,
                                          sim::HourIndex begin, sim::HourIndex end) {
  auto filter = telemetry::AndFilter(telemetry::HourRangeFilter(begin, end),
                                     telemetry::MachineSetFilter(machine_ids));
  double data = 0.0, cpu_s = 0.0, exec_s = 0.0, power = 0.0;
  size_t count = 0;
  GroupWindowMetrics m;
  for (const auto& r : store.records()) {
    if (!filter(r)) continue;
    data += r.data_read_mb;
    cpu_s += r.cpu_time_core_s;
    exec_s += r.avg_task_latency_s * r.tasks_finished;
    power += r.power_watts;
    if (r.cpu_time_core_s > 0.0) m.bytes_per_cpu_samples.push_back(r.BytesPerCpuTime());
    ++count;
  }
  if (count == 0 || cpu_s <= 0.0 || exec_s <= 0.0) {
    return Status::FailedPrecondition("no usable telemetry for the group window");
  }
  m.bytes_per_cpu_time = data / cpu_s;
  m.bytes_per_second = data / exec_s;
  m.avg_power_watts = power / static_cast<double>(count);
  return m;
}

}  // namespace

StatusOr<PowerCappingStudy::Result> PowerCappingStudy::Run(
    const sim::PerfModel& model, sim::Cluster* cluster, sim::FluidEngine* engine,
    telemetry::TelemetryStore* store, sim::HourIndex start_hour) const {
  if (cluster == nullptr || engine == nullptr || store == nullptr) {
    return Status::InvalidArgument("null cluster/engine/store");
  }
  if (options_.cap_levels.empty()) {
    return Status::InvalidArgument("no cap levels to test");
  }
  for (double cap : options_.cap_levels) {
    if (cap <= 0.0 || cap >= 1.0) {
      return Status::InvalidArgument("cap levels must be in (0, 1)");
    }
  }

  KEA_ASSIGN_OR_RETURN(auto groups,
                       core::HybridGroups(*cluster, options_.sku, 4,
                                          options_.group_size));
  const std::vector<int>& group_a = groups[0];
  const std::vector<int>& group_b = groups[1];
  const std::vector<int>& group_c = groups[2];
  const std::vector<int>& group_d = groups[3];

  Result result;
  sim::HourIndex hour = start_hour;
  bool emitted_feature_only = false;

  for (double cap : options_.cap_levels) {
    core::FlightingService flighting;

    core::ConfigPatch feature_on;
    feature_on.feature_enabled = true;
    core::ConfigPatch cap_only;
    cap_only.power_cap_fraction = cap;
    core::ConfigPatch cap_and_feature;
    cap_and_feature.power_cap_fraction = cap;
    cap_and_feature.feature_enabled = true;

    sim::HourIndex round_end = hour + options_.hours_per_round;
    KEA_ASSIGN_OR_RETURN(
        core::FlightId fb,
        flighting.CreateFlight({"B_feature", group_b, hour, round_end, feature_on}));
    KEA_ASSIGN_OR_RETURN(
        core::FlightId fc,
        flighting.CreateFlight({"C_cap", group_c, hour, round_end, cap_only}));
    KEA_ASSIGN_OR_RETURN(
        core::FlightId fd,
        flighting.CreateFlight(
            {"D_cap_feature", group_d, hour, round_end, cap_and_feature}));

    KEA_RETURN_IF_ERROR(flighting.Begin(fb, cluster));
    KEA_RETURN_IF_ERROR(flighting.Begin(fc, cluster));
    KEA_RETURN_IF_ERROR(flighting.Begin(fd, cluster));

    KEA_RETURN_IF_ERROR(engine->Run(hour, options_.hours_per_round, store));

    KEA_RETURN_IF_ERROR(flighting.End(fb, cluster));
    KEA_RETURN_IF_ERROR(flighting.End(fc, cluster));
    KEA_RETURN_IF_ERROR(flighting.End(fd, cluster));

    KEA_ASSIGN_OR_RETURN(GroupWindowMetrics a,
                         MeasureGroup(*store, group_a, hour, round_end));
    KEA_ASSIGN_OR_RETURN(GroupWindowMetrics b,
                         MeasureGroup(*store, group_b, hour, round_end));
    KEA_ASSIGN_OR_RETURN(GroupWindowMetrics c,
                         MeasureGroup(*store, group_c, hour, round_end));
    KEA_ASSIGN_OR_RETURN(GroupWindowMetrics d,
                         MeasureGroup(*store, group_d, hour, round_end));

    auto attach_significance = [&a](Cell* cell, const GroupWindowMetrics& x) {
      auto test = core::EstimateTreatmentEffectWelch(
          "bytes_per_cpu", a.bytes_per_cpu_samples, x.bytes_per_cpu_samples);
      if (test.ok()) {
        cell->t_value = test->t_value;
        cell->significant = test->significant;
      }
    };

    if (!emitted_feature_only) {
      Cell cell;
      cell.cap_level = 0.0;
      cell.capped = false;
      cell.feature = true;
      cell.bytes_per_cpu_time_change =
          b.bytes_per_cpu_time / a.bytes_per_cpu_time - 1.0;
      cell.bytes_per_second_change = b.bytes_per_second / a.bytes_per_second - 1.0;
      cell.avg_power_watts = b.avg_power_watts;
      attach_significance(&cell, b);
      result.cells.push_back(cell);
      emitted_feature_only = true;
    }

    Cell off;
    off.cap_level = cap;
    off.capped = true;
    off.feature = false;
    off.bytes_per_cpu_time_change = c.bytes_per_cpu_time / a.bytes_per_cpu_time - 1.0;
    off.bytes_per_second_change = c.bytes_per_second / a.bytes_per_second - 1.0;
    off.avg_power_watts = c.avg_power_watts;
    attach_significance(&off, c);
    result.cells.push_back(off);

    Cell on;
    on.cap_level = cap;
    on.capped = true;
    on.feature = true;
    on.bytes_per_cpu_time_change = d.bytes_per_cpu_time / a.bytes_per_cpu_time - 1.0;
    on.bytes_per_second_change = d.bytes_per_second / a.bytes_per_second - 1.0;
    on.avg_power_watts = d.avg_power_watts;
    attach_significance(&on, d);
    result.cells.push_back(on);

    hour = round_end;
  }

  // Recommend the deepest cap whose Feature-enabled cell keeps Bytes per CPU
  // Time within 1% of the uncapped baseline.
  for (const Cell& cell : result.cells) {
    if (!cell.capped || !cell.feature) continue;
    if (cell.bytes_per_cpu_time_change >= -0.01 &&
        cell.cap_level > result.recommended_cap_level) {
      result.recommended_cap_level = cell.cap_level;
    }
  }
  result.provisioned_watts_saved_per_machine =
      result.recommended_cap_level *
      model.catalog().spec(options_.sku).provisioned_watts;
  return result;
}

}  // namespace kea::apps
