#include "apps/queue_tuner.h"

#include <algorithm>
#include <cmath>

#include "opt/lp.h"
#include "telemetry/perf_monitor.h"

namespace kea::apps {

StatusOr<QueueTuner::Plan> QueueTuner::Propose(
    const telemetry::TelemetryStore& store, const telemetry::RecordFilter& filter,
    const sim::Cluster& cluster) const {
  // Overloaded machine-hours only: the queue model is identified from hours
  // where a queue actually formed.
  auto overloaded = telemetry::AndFilter(
      filter, [](const telemetry::MachineHourRecord& r) {
        return r.queued_containers > 0.05 && r.queue_latency_ms > 0.0;
      });
  auto grouped = store.GroupByKey(overloaded);
  if (grouped.empty()) {
    return Status::FailedPrecondition(
        "no overloaded machine-hours; queue tuning needs queued telemetry");
  }

  Plan plan;
  for (const auto& [key, records] : grouped) {
    if (records.size() < options_.min_observations) continue;
    std::vector<double> queued, latency;
    queued.reserve(records.size());
    latency.reserve(records.size());
    for (const auto& r : records) {
      queued.push_back(r.queued_containers);
      latency.push_back(r.queue_latency_ms);
    }
    ml::HuberRegressor regressor;
    auto model = regressor.Fit(ml::MakeDataset1D(queued, latency));
    if (!model.ok()) continue;
    // A usable model must show latency growing with queue depth.
    if (model->coefficients()[0] <= 0.0) continue;

    GroupPlan gp;
    gp.group = key;
    gp.num_machines = cluster.GroupSize(key);
    if (gp.num_machines == 0) continue;
    gp.latency_vs_queued = std::move(model).value();
    KEA_ASSIGN_OR_RETURN(
        gp.fit, ml::Evaluate(gp.latency_vs_queued, ml::MakeDataset1D(queued, latency)));
    int any_machine = cluster.groups().at(key).front();
    gp.current_max_queued =
        cluster.machines()[static_cast<size_t>(any_machine)].max_queued_containers;
    gp.full_queue_latency_before_ms =
        gp.latency_vs_queued.Predict1D(gp.current_max_queued);
    plan.groups.push_back(std::move(gp));
  }
  if (plan.groups.empty()) {
    return Status::FailedPrecondition("no group had enough queued observations");
  }

  // Min-max LP over (q_1..q_K, t).
  const size_t k_count = plan.groups.size();
  opt::LpProblem lp(k_count + 1, opt::LpDirection::kMinimize);
  const size_t t_index = k_count;
  KEA_RETURN_IF_ERROR(lp.SetObjectiveCoefficient(t_index, 1.0));
  double total_capacity = 0.0;
  for (size_t i = 0; i < k_count; ++i) {
    const GroupPlan& gp = plan.groups[i];
    KEA_RETURN_IF_ERROR(lp.SetBounds(i, options_.min_queue, options_.max_queue));
    total_capacity += static_cast<double>(gp.num_machines) * gp.current_max_queued;

    // a_k + b_k q_k - t <= 0.
    opt::LpConstraint epigraph;
    epigraph.name = "latency_" + sim::GroupLabel(gp.group);
    epigraph.coefficients.assign(k_count + 1, 0.0);
    epigraph.coefficients[i] = gp.latency_vs_queued.coefficients()[0];
    epigraph.coefficients[t_index] = -1.0;
    epigraph.sense = opt::ConstraintSense::kLessEqual;
    epigraph.rhs = -gp.latency_vs_queued.intercept();
    KEA_RETURN_IF_ERROR(lp.AddConstraint(std::move(epigraph)));
  }
  // Keep the cluster's total queue capacity: sum_k n_k q_k = current total.
  opt::LpConstraint capacity;
  capacity.name = "total_queue_capacity";
  capacity.coefficients.assign(k_count + 1, 0.0);
  for (size_t i = 0; i < k_count; ++i) {
    capacity.coefficients[i] = static_cast<double>(plan.groups[i].num_machines);
  }
  capacity.sense = opt::ConstraintSense::kEqual;
  capacity.rhs = total_capacity;
  KEA_RETURN_IF_ERROR(lp.AddConstraint(std::move(capacity)));
  // t is free to grow as needed.
  KEA_RETURN_IF_ERROR(lp.SetBounds(t_index, 0.0, opt::LpProblem::kInfinity));

  opt::SimplexSolver solver;
  KEA_ASSIGN_OR_RETURN(opt::LpSolution solution, solver.Solve(lp));

  plan.worst_latency_before_ms = 0.0;
  plan.worst_latency_after_ms = 0.0;
  for (size_t i = 0; i < k_count; ++i) {
    GroupPlan& gp = plan.groups[i];
    gp.recommended_max_queued = std::clamp(
        static_cast<int>(std::lround(solution.x[i])), options_.min_queue,
        options_.max_queue);
    gp.full_queue_latency_after_ms =
        gp.latency_vs_queued.Predict1D(gp.recommended_max_queued);
    plan.worst_latency_before_ms =
        std::max(plan.worst_latency_before_ms, gp.full_queue_latency_before_ms);
    plan.worst_latency_after_ms =
        std::max(plan.worst_latency_after_ms, gp.full_queue_latency_after_ms);
  }
  return plan;
}

Status QueueTuner::Apply(const Plan& plan, sim::Cluster* cluster) {
  if (cluster == nullptr) return Status::InvalidArgument("null cluster");
  for (const GroupPlan& gp : plan.groups) {
    KEA_RETURN_IF_ERROR(
        cluster->SetGroupMaxQueued(gp.group, gp.recommended_max_queued));
  }
  return Status::OK();
}

}  // namespace kea::apps
