#ifndef KEA_APPS_SKU_DESIGNER_H_
#define KEA_APPS_SKU_DESIGNER_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "ml/empirical.h"
#include "ml/regression.h"
#include "sim/fluid_sweep.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Hypothetical tuning: sizing SSD and RAM for a future machine generation
/// (Section 6.1). The CPU core count is already fixed; KEA projects SSD/RAM
/// demand as linear functions of cores used (Eq. 11-12), then runs a
/// Monte-Carlo over candidate (SSD, RAM) designs, drawing the per-core usage
/// slopes from the observational data, and picks the design minimizing the
/// expected cost of idle resources and out-of-resource stranding (Figure 14).
class SkuDesigner {
 public:
  struct Options {
    /// Cores of the future machine (the paper's new generation has 128).
    int new_machine_cores = 128;

    std::vector<double> ssd_candidates_gb;
    std::vector<double> ram_candidates_gb;
    /// Optional third resource (Section 6.2: "other resources utilization,
    /// such as network bandwidth"). Leave empty for the two-resource design
    /// of Section 6.1.
    std::vector<double> nic_candidates_mbps;

    /// Monte-Carlo draws per candidate (the paper uses 1000).
    int mc_iterations = 1000;

    /// Threads for the candidate-grid Monte-Carlo: 0 = hardware_concurrency,
    /// 1 = the serial legacy path. Each candidate draws from its own RNG
    /// substream, so the cost surface is bit-identical at any value.
    int num_threads = 0;

    /// Unit costs (USD, amortized): the penalty of an *idle* unit.
    double cost_per_idle_core = 40.0;
    double cost_per_idle_ssd_gb = 0.25;
    double cost_per_idle_ram_gb = 2.0;
    double cost_per_idle_nic_mbps = 0.06;

    /// Extra penalty when the machine runs out of SSD / RAM. "Running out of
    /// CPU is handled more gracefully in our system than running out of RAM
    /// or SSD" — so these dominate.
    double out_of_ssd_penalty = 4000.0;
    double out_of_ram_penalty = 5000.0;
    double out_of_nic_penalty = 3000.0;

    static Options Default();
  };

  /// Expected cost at one candidate design.
  struct DesignPoint {
    double ssd_gb = 0.0;
    double ram_gb = 0.0;
    /// 0 when the NIC dimension is not part of the search.
    double nic_mbps = 0.0;
    double expected_cost = 0.0;
    double standard_error = 0.0;
    /// Fraction of draws stranded by each resource.
    double p_out_of_ssd = 0.0;
    double p_out_of_ram = 0.0;
    double p_out_of_nic = 0.0;
  };

  struct Result {
    /// Fitted projections s = p(c), r = q(c) (and n(c) when NIC is searched).
    ml::LinearModel p;  ///< cores used -> SSD GB.
    ml::LinearModel q;  ///< cores used -> RAM GB.
    ml::LinearModel n;  ///< cores used -> network Mbps (NIC mode only).
    ml::RegressionMetrics p_fit;
    ml::RegressionMetrics q_fit;
    ml::RegressionMetrics n_fit;

    /// The cost surface over candidates, row-major over
    /// (ssd_candidates x ram_candidates x nic_candidates), with the NIC
    /// dimension collapsed to one entry when not searched.
    std::vector<DesignPoint> surface;
    size_t best_index = 0;

    const DesignPoint& best() const { return surface[best_index]; }
  };

  SkuDesigner() : options_(Options::Default()) {}
  explicit SkuDesigner(const Options& options) : options_(options) {}

  /// Runs the full hypothetical-tuning pass on the telemetry matching
  /// `filter`. Returns FailedPrecondition when there is not enough usable
  /// telemetry (needs machine-hours with meaningfully busy cores). The
  /// candidate grid is evaluated concurrently per `Options::num_threads`.
  StatusOr<Result> Design(const telemetry::TelemetryStore& store,
                          const telemetry::RecordFilter& filter, Rng* rng) const;

  /// Generates design-input telemetry with the fluid-engine configuration
  /// sweep: one candidate per capacity scale (every machine's max_containers
  /// scaled by the factor, minimum 1), merged in candidate order. Sweeping
  /// capacity pushes the fleet through distinct utilization regimes, which
  /// spreads cores_used and sharpens the per-core slope fits of Eq. (11-12)
  /// compared to telemetry from a single operating point.
  static StatusOr<telemetry::TelemetryStore> SimulateDesignTelemetry(
      const sim::PerfModel* model, const sim::Cluster& base,
      const sim::WorkloadModel* workload,
      const std::vector<double>& capacity_scales, const sim::SweepOptions& sweep);

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_SKU_DESIGNER_H_
