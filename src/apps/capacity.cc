#include "apps/capacity.h"

#include <cmath>

#include "telemetry/perf_monitor.h"

namespace kea::apps {

StatusOr<CapacityConverter::Report> CapacityConverter::FromWindows(
    const telemetry::TelemetryStore& store, const telemetry::RecordFilter& before,
    const telemetry::RecordFilter& after) const {
  telemetry::PerformanceMonitor monitor(&store);

  struct WindowStats {
    double containers = 0.0;
    double data_mb = 0.0;
    double latency_s = 0.0;
    size_t hours = 0;
  };
  auto measure = [&](const telemetry::RecordFilter& filter) -> StatusOr<WindowStats> {
    WindowStats w;
    double weighted_latency = 0.0, tasks = 0.0;
    for (const auto& r : store.records()) {
      if (filter && !filter(r)) continue;
      w.containers += r.avg_running_containers;
      w.data_mb += r.data_read_mb;
      weighted_latency += r.avg_task_latency_s * r.tasks_finished;
      tasks += r.tasks_finished;
      ++w.hours;
    }
    if (w.hours == 0 || tasks <= 0.0) {
      return Status::FailedPrecondition("empty telemetry window");
    }
    w.latency_s = weighted_latency / tasks;
    // Normalize totals per machine-hour so unequal window lengths compare.
    w.containers /= static_cast<double>(w.hours);
    w.data_mb /= static_cast<double>(w.hours);
    return w;
  };

  KEA_ASSIGN_OR_RETURN(WindowStats b, measure(before));
  KEA_ASSIGN_OR_RETURN(WindowStats a, measure(after));
  if (b.containers <= 0.0 || b.data_mb <= 0.0 || b.latency_s <= 0.0) {
    return Status::FailedPrecondition("degenerate baseline window");
  }

  Report report;
  report.capacity_gain = a.containers / b.containers - 1.0;
  report.throughput_change = a.data_mb / b.data_mb - 1.0;
  report.latency_change = a.latency_s / b.latency_s - 1.0;
  report.latency_neutral = std::fabs(report.latency_change) < 0.01;
  report.equivalent_machines = report.capacity_gain * options_.fleet_machines;
  report.dollars_per_year =
      report.equivalent_machines * options_.machine_cost_usd_per_year;
  return report;
}

}  // namespace kea::apps
