#ifndef KEA_APPS_CAPACITY_PLANNER_H_
#define KEA_APPS_CAPACITY_PLANNER_H_

#include <vector>

#include "common/status.h"
#include "ml/forecast.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Hypothetical tuning for fleet growth: forecasts cluster demand from
/// telemetry and projects when the cluster exhausts its container capacity —
/// the kind of analysis KEA feeds to "leadership in critical decisions
/// around engineering and capacity management" (Abstract / Section 1).
///
/// Demand is measured as total desired containers per hour (running +
/// queued + rejected); capacity is the cluster's current container slots.
class CapacityPlanner {
 public:
  struct Options {
    /// Capacity is considered exhausted when forecast demand exceeds this
    /// fraction of total slots (headroom for failures and rollouts).
    double capacity_threshold = 0.98;
    /// Weeks to forecast ahead.
    int horizon_weeks = 26;
  };

  struct Report {
    /// Hourly demand series extracted from telemetry.
    std::vector<double> demand_history;
    ml::SeasonalTrendForecaster forecaster;
    /// Estimated weekly demand growth implied by the fitted trend, as a
    /// fraction of current demand.
    double weekly_growth = 0.0;
    /// First forecast hour (offset from the end of history) where demand
    /// exceeds the capacity threshold; -1 if never within the horizon.
    int hours_to_exhaustion = -1;
    /// Extra container slots needed to survive the full horizon.
    double extra_slots_needed = 0.0;
    /// Extra machines of the newest SKU needed (given its slots/machine).
    double extra_machines_needed = 0.0;
    double in_sample_mape = 0.0;
  };

  CapacityPlanner() : options_(Options()) {}
  explicit CapacityPlanner(const Options& options) : options_(options) {}

  /// Builds the demand series from `store` (matching `filter`), fits the
  /// forecaster and projects capacity exhaustion against `total_slots`
  /// capacity. `slots_per_new_machine` sizes the purchase recommendation.
  /// Needs at least two weeks of hourly telemetry.
  StatusOr<Report> Plan(const telemetry::TelemetryStore& store,
                        const telemetry::RecordFilter& filter, double total_slots,
                        double slots_per_new_machine) const;

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_CAPACITY_PLANNER_H_
