#ifndef KEA_APPS_SESSION_H_
#define KEA_APPS_SESSION_H_

#include <memory>
#include <string>

#include "apps/capacity.h"
#include "apps/yarn_tuner.h"
#include "common/status.h"
#include "core/deployment.h"
#include "core/deployment_ledger.h"
#include "core/experiment_fabric.h"
#include "core/guardrailed_rollout.h"
#include "core/model_health.h"
#include "core/validation.h"
#include "core/whatif.h"
#include "sim/fault_injector.h"
#include "sim/fleet_fault_injector.h"
#include "sim/fluid_engine.h"
#include "sim/perf_model.h"
#include "telemetry/drift_detector.h"
#include "telemetry/ingestion.h"
#include "telemetry/store.h"

namespace kea::apps {

/// A complete KEA environment bound to one (simulated) cluster: ground-truth
/// model, workload, fluid engine, telemetry store, and a simulation clock.
/// Wraps the recurring Phase I-III production loop of Figure 3 into a small
/// API so downstream users don't have to wire the modules by hand:
///
///   KeaSession session = ... Create(config) ...
///   session.Simulate(a month);
///   auto round = session.RunYarnTuningRound(options);   // fit + LP + deploy
///   session.Simulate(another month);
///   auto validation = session.ValidateModels();         // drift check
///   auto value = session.EstimateCapacityValue(...);    // $$ conversion
class KeaSession {
 public:
  struct Config {
    int machines = 1000;
    uint64_t seed = 42;
    sim::PerfModel::Params perf_params;
    sim::WorkloadSpec workload = sim::WorkloadSpec::Default();
    sim::ClusterSpec cluster;  ///< sku_fractions defaulted when empty.
    sim::FluidEngine::Options engine;
  };

  /// One observational-tuning round's artifacts.
  struct TuningRound {
    YarnConfigTuner::Plan plan;
    std::vector<core::AppliedChange> applied;
    /// Telemetry window (hours) the models were fit on.
    sim::HourIndex fit_begin = 0;
    sim::HourIndex fit_end = 0;
  };

  /// Hardened telemetry path configuration: an optional fault injector (the
  /// chaos stage) in front of a validating ingestion pipeline. With a
  /// zero-fault profile and default pipeline options the hardened path is a
  /// bit-identical pass-through of the direct engine->store path.
  struct IngestionConfig {
    sim::FaultProfile faults;  ///< empty() => no corruption stage.
    telemetry::IngestionPipeline::Options pipeline;
    /// Seed for the injector's fault substreams and the retry jitter.
    uint64_t seed = 1234;
  };

  /// Fleet chaos configuration: a deterministic fault process on the
  /// simulated fleet itself (crashes, rack outages, slow nodes, permanent
  /// loss), as opposed to IngestionConfig which corrupts only the telemetry
  /// *about* the fleet. Both injectors may share one seed — their substream
  /// salt families are disjoint by construction.
  struct FleetChaosConfig {
    sim::FleetFaultProfile profile;  ///< empty() => no fleet faults.
    uint64_t seed = 1234;
  };

  /// Drift-aware self-healing configuration: the DriftDetector watches the
  /// telemetry stream, the ModelHealth breaker guards deployments.
  struct SelfHealingConfig {
    telemetry::DriftDetector::Options drift;
    core::ModelHealth::Options health;
  };

  /// Durable control-plane configuration (see EnableDurability).
  struct DurabilityOptions {
    /// Root of the durable state; must exist. The ledger lives at
    /// `<dir>/ledger.kea`, the checkpoint at `<dir>/checkpoint.kea`.
    std::string dir;
    /// Rotated checkpoint generations retained for fallback restore
    /// (`checkpoint.kea.g<N>`, newest N highest). Resume() falls back
    /// generation by generation past corrupt or inadmissible checkpoints.
    /// 0 keeps only the live file — the pre-generation behavior.
    int keep_generations = 3;
  };

  /// Durability health of the session (the ModelHealth discipline applied to
  /// storage): kDurable is the normal write-ahead regime; kDegraded means the
  /// storage plane failed — the session keeps tuning on in-memory state but
  /// refuses anything that would touch the fleet until TryRestoreDurability
  /// (or the auto-probe in Simulate) brings the plane back.
  enum class DurabilityMode { kOff = 0, kDurable = 1, kDegraded = 2 };

  /// One guarded tuning round's artifacts: the plan plus the staged-rollout
  /// state machine's report (which waves ran, what the guardrails measured,
  /// whether rollback fired).
  struct GuardedRound {
    YarnConfigTuner::Plan plan;
    core::GuardrailedRollout::Report rollout;
    sim::HourIndex fit_begin = 0;
    sim::HourIndex fit_end = 0;

    // Self-healing bookkeeping; defaults describe a session without
    // EnableSelfHealing.
    /// True when the breaker was open: no fit, no deployment this round.
    bool safe_mode = false;
    /// A safe-mode round attempted the scheduled refit (and whether the
    /// held-out validation gate passed).
    bool refit_attempted = false;
    bool refit_passed = false;
    /// ModelHealth state after the round ("HEALTHY" ... "RE-ARMED"), empty
    /// without self-healing.
    std::string health_state;
    /// Drift alarms that fired during this round (incl. its observation
    /// windows).
    size_t drift_alarms = 0;
  };

  struct GuardedRoundOptions {
    YarnConfigTuner::Options tuner;
    int lookback_hours = sim::kHoursPerWeek;
    core::GuardrailedRollout::Options rollout;
  };

  /// Builds the environment. Returns InvalidArgument for malformed specs.
  static StatusOr<std::unique_ptr<KeaSession>> Create(const Config& config);

  /// Turns on the crash-safe control plane, rooted at `dir` (which must
  /// exist): the deployment ledger lives at `<dir>/ledger.kea` and
  /// checkpoints at `<dir>/checkpoint.kea`. Once enabled:
  ///   - every DeploymentModule apply/rollback and every guarded-round wave
  ///     transition is write-ahead journaled in the ledger;
  ///   - Simulate() checkpoints the full session after each call (outside
  ///     rollout observation windows, which checkpoint per journaled step);
  ///   - RunGuardedTuningRound() journals the plan at round start,
  ///     checkpoints after every step, and — after a crash — continues an
  ///     in-flight round from its last journaled step.
  /// An initial checkpoint is written immediately.
  Status EnableDurability(const std::string& dir);
  /// As above with explicit knobs (generation retention).
  Status EnableDurability(const DurabilityOptions& options);

  /// Atomically writes a full-session checkpoint (telemetry, sim clock, RNG
  /// cursors, applied-config state, deployment/ledger bookkeeping) covering
  /// everything journaled so far. FailedPrecondition before EnableDurability
  /// and in degraded-durability mode (heal first; see TryRestoreDurability).
  Status Checkpoint();

  DurabilityMode durability_mode() const { return durability_mode_; }
  /// The storage failure that forced degraded mode; OK when not degraded.
  const Status& degraded_reason() const { return degraded_reason_; }
  /// Checkpoint generations the last Resume() had to discard before finding
  /// a valid one (0 = the live checkpoint restored cleanly).
  size_t resume_generations_discarded() const {
    return resume_generations_discarded_;
  }

  /// Attempts to leave degraded-durability mode: re-opens the ledger from
  /// disk (salvaged by the journal layer), verifies it still holds every
  /// event this session acknowledged, and re-checkpoints the full in-memory
  /// state. On success the session is kDurable again; orphan ledger events
  /// (appends that persisted but were reported failed) are re-driven by the
  /// next round exactly once. Never fabricates state: a disk that lost
  /// acknowledged events is refused. FailedPrecondition unless degraded.
  Status TryRestoreDurability();

  /// Reconstructs a session purely from the durable state under `dir`: the
  /// checkpoint defines the state, the ledger defines the progress. A round
  /// that was in flight at the crash is NOT continued here — the next
  /// RunGuardedTuningRound() call picks it up from its last journaled step
  /// and completes it bit-identically to an uninterrupted run.
  static StatusOr<std::unique_ptr<KeaSession>> Resume(const std::string& dir);

  /// Null until EnableDurability has been called.
  const core::DeploymentLedger* ledger() const { return ledger_.get(); }
  const core::DeploymentModule& deployment() const { return deployment_; }

  /// Advances the simulated cluster by `hours`, appending telemetry. With an
  /// ingestion pipeline enabled, engine output is routed through the fault
  /// injector (if any) and the validating pipeline instead of being appended
  /// directly.
  Status Simulate(int hours);

  /// Routes all subsequent Simulate() telemetry through the hardened
  /// ingestion path. Call before the first Simulate() for a fully validated
  /// store. Replaces any previously enabled pipeline (counters reset).
  Status EnableIngestionPipeline(const IngestionConfig& config);

  /// Null until EnableIngestionPipeline has been called.
  const telemetry::IngestionPipeline* ingestion() const { return ingestion_.get(); }
  /// Null unless fault injection is active (non-empty profile).
  const sim::TelemetryFaultInjector* fault_injector() const {
    return fault_injector_.get();
  }

  /// Layers deterministic fleet chaos onto the simulation engine. With an
  /// empty profile every simulated draw stays bit-identical to a session
  /// without chaos. Replaces any previously enabled injector.
  Status EnableFleetChaos(const FleetChaosConfig& config);

  /// Turns on the drift-aware self-healing loop: every Simulate() feeds the
  /// drift detector, alarms trip the ModelHealth breaker, and
  /// RunGuardedTuningRound() honors the breaker — safe-mode rounds hold the
  /// last known-good config, refuse deployments, and drive the auto-refit /
  /// validation-gate / re-arm cycle. With clean telemetry the tuned path is
  /// bit-identical to a session without self-healing.
  Status EnableSelfHealing(const SelfHealingConfig& config);

  /// Null until the corresponding Enable* has been called.
  const sim::FleetFaultInjector* fleet_faults() const {
    return fleet_faults_.get();
  }
  const telemetry::DriftDetector* drift_detector() const { return drift_.get(); }
  const core::ModelHealth* model_health() const { return model_health_.get(); }

  /// Current simulation clock (hours since session start).
  sim::HourIndex now() const { return now_; }

  /// Serving-layer cache-invalidation epochs. model_epoch advances whenever
  /// the session's validation What-if engine is (re)fit — tuning rounds,
  /// FitWhatIfEngine, a passed safe-mode refit — and when a model-health
  /// trip means the current fit is no longer trusted. deploy_epoch advances
  /// whenever the fleet's applied configuration changes (conservative
  /// deploys, staged rollouts that touched machines, rollbacks). Both are
  /// monotonic and survive checkpoint/resume, so any cached artifact keyed
  /// on them is invalidated by exactly the events that stale it.
  uint64_t model_epoch() const { return model_epoch_; }
  uint64_t deploy_epoch() const { return deploy_epoch_; }

  /// The last fitted What-if engine (null before any fit). Owned by the
  /// session and replaced wholesale on the next round/refit — callers must
  /// not hold the pointer across a session mutation.
  const core::WhatIfEngine* whatif_engine() const { return last_engine_.get(); }

  /// Telemetry window [begin, end) of the last fit.
  std::pair<sim::HourIndex, sim::HourIndex> fit_window() const {
    return {last_fit_begin_, last_fit_end_};
  }

  /// Fits the What-if Engine on [now - lookback_hours, now) WITHOUT running
  /// the LP or deploying — the serving layer's "refresh models" request.
  /// Advances model_epoch; does not count as a tuning round for
  /// validation/valuation purposes.
  Status FitWhatIfEngine(const core::WhatIfEngine::Options& options,
                         int lookback_hours);

  /// Runs one observational-tuning round on the telemetry window
  /// [now - lookback_hours, now): fit the What-if Engine, solve the LP, and
  /// deploy conservatively with the given per-round step.
  StatusOr<TuningRound> RunYarnTuningRound(const YarnConfigTuner::Options& options,
                                           int lookback_hours, int deploy_max_step);

  /// The robust counterpart of RunYarnTuningRound: fit + LP as usual, then
  /// deploy through the guardrailed staged rollout (canary wave, widening
  /// waves, guardrail checks between waves, automatic rollback on
  /// regression). Refuses to deploy a plan containing non-finite predictions
  /// — a corrupted model never reaches the fleet. Guardrail trips are
  /// reported in GuardedRound::rollout.outcome, not as an error status.
  StatusOr<GuardedRound> RunGuardedTuningRound(const GuardedRoundOptions& options);

  struct FabricRoundOptions {
    core::ExperimentFabric::Options fabric;
  };

  /// Runs a queue of planned A/B flights concurrently through the
  /// ExperimentFabric: rack-exclusive non-interfering partitions, typed
  /// interference serialization, the global blast-radius budget, per-flight
  /// guardrail trips with exact rollback. With durability enabled every
  /// fabric transition is journaled under "fab/<n>" + "fab<n>/..." keys and a
  /// crashed run is completed bit-identically by calling this again with the
  /// same requests. With fleet chaos enabled, each flight's per-arm
  /// down-hours are attributed in its conclusion (unless options.fabric
  /// already carries a down_hours accessor).
  StatusOr<core::ExperimentFabric::Report> RunExperimentFabric(
      const std::vector<core::FlightRequest>& requests,
      const FabricRoundOptions& options);

  /// Validates the last tuning round's models against telemetry collected
  /// *after* the deployment. FailedPrecondition when no round has run or no
  /// post-deployment telemetry exists.
  StatusOr<core::ValidationReport> ValidateModels(
      const core::ModelValidator::Options& options) const;

  /// Rolls back the last deployment (the Phase III escape hatch).
  Status RollbackLastDeployment();

  /// Converts the last round's before/after windows into capacity dollars.
  StatusOr<CapacityConverter::Report> EstimateCapacityValue(
      const CapacityConverter::Options& options) const;

  const sim::Cluster& cluster() const { return cluster_; }
  sim::Cluster* mutable_cluster() { return &cluster_; }
  const telemetry::TelemetryStore& store() const { return store_; }
  telemetry::TelemetryStore* mutable_store() { return &store_; }
  const sim::PerfModel& perf_model() const { return perf_model_; }
  sim::FluidEngine* engine() { return engine_.get(); }
  const sim::WorkloadModel& workload() const { return workload_; }

 private:
  KeaSession(sim::PerfModel perf_model, sim::WorkloadModel workload)
      : perf_model_(std::move(perf_model)), workload_(std::move(workload)) {}

  /// Writes the checkpoint file; `covered_seq` is the number of ledger
  /// events whose effects the written state contains (recorded as
  /// ledger_durable_seq and used on resume to split replay from re-drive).
  Status WriteCheckpoint(uint64_t covered_seq);

  /// RunGuardedTuningRound body when durability is on: plan journaled at
  /// ROUND_STARTED, waves driven through ExecuteJournaled, outcome sealed at
  /// ROUND_FINISHED.
  StatusOr<GuardedRound> RunGuardedTuningRoundDurable(
      const GuardedRoundOptions& options);

  /// RunExperimentFabric body when durability is on: queue sealed at
  /// FABRIC_STARTED, flights driven through the fabric's journaled steps,
  /// outcome sealed at FABRIC_FINISHED.
  StatusOr<core::ExperimentFabric::Report> RunExperimentFabricDurable(
      const std::vector<core::FlightRequest>& requests,
      const FabricRoundOptions& options);

  /// Marks the storage plane failed: records the reason, bumps the
  /// durability.mode gauge and degraded counters. Idempotent.
  void EnterDegradedMode(const Status& reason);

  /// Round body while the ModelHealth breaker is open: hold config, refuse
  /// deployment, attempt the scheduled refit when due.
  StatusOr<GuardedRound> RunSafeModeRound(const GuardedRoundOptions& options);

  /// Refits the What-if models on post-drift telemetry and checks them
  /// against a held-out tail window. On pass, the refitted engine becomes
  /// the session's validation engine. Returns whether the gate passed.
  bool AttemptRefit(const GuardedRoundOptions& options);

  /// Post-round residual tracking + probation bookkeeping; fills the
  /// GuardedRound self-healing fields. No-op without self-healing.
  void FinishRoundHealth(size_t alarms_before, GuardedRound* round);

  /// Total drift alarms fired so far (all metrics + staleness).
  size_t TotalDriftAlarms() const;

  sim::PerfModel perf_model_;
  sim::WorkloadModel workload_;
  sim::Cluster cluster_;
  telemetry::TelemetryStore store_;
  std::unique_ptr<sim::FluidEngine> engine_;
  core::DeploymentModule deployment_;
  // Hardened telemetry path (optional; see EnableIngestionPipeline).
  std::unique_ptr<sim::TelemetryFaultInjector> fault_injector_;
  std::unique_ptr<telemetry::IngestionPipeline> ingestion_;
  // Fleet chaos + self-healing loop (optional; see EnableFleetChaos /
  // EnableSelfHealing).
  std::unique_ptr<sim::FleetFaultInjector> fleet_faults_;
  std::unique_ptr<telemetry::DriftDetector> drift_;
  std::unique_ptr<core::ModelHealth> model_health_;

  sim::HourIndex now_ = 0;
  // Last tuning round bookkeeping for validation / valuation.
  bool has_round_ = false;
  std::unique_ptr<core::WhatIfEngine> last_engine_;
  sim::HourIndex last_fit_begin_ = 0;
  sim::HourIndex last_fit_end_ = 0;
  sim::HourIndex last_deploy_hour_ = 0;
  // Cache-invalidation epochs (see model_epoch()/deploy_epoch()).
  uint64_t model_epoch_ = 0;
  uint64_t deploy_epoch_ = 0;

  // Durable control plane (null/empty until EnableDurability).
  std::string durability_dir_;
  std::unique_ptr<core::DeploymentLedger> ledger_;
  /// Ledger events below this are covered by the newest checkpoint.
  uint64_t durable_seq_ = 0;
  /// Self-healing durability plane state (see DurabilityMode).
  DurabilityMode durability_mode_ = DurabilityMode::kOff;
  Status degraded_reason_ = Status::OK();
  int keep_generations_ = 3;
  size_t resume_generations_discarded_ = 0;
  /// Guarded rounds completed (numbers the ledger's round keys).
  int64_t round_count_ = 0;
  /// Fabric runs completed (numbers the ledger's fabric keys).
  int64_t fabric_count_ = 0;
  /// True while a journaled round drives Simulate() via its observation
  /// windows — those checkpoints are per-step, not per-Simulate.
  bool in_journaled_round_ = false;
  /// Construction-time knobs remembered so checkpoints are self-contained.
  Config config_;
  IngestionConfig ingestion_config_;
  bool ingestion_enabled_ = false;
  FleetChaosConfig fleet_chaos_config_;
  bool fleet_chaos_enabled_ = false;
  SelfHealingConfig self_healing_config_;
  bool self_healing_enabled_ = false;
  /// Options of the last validated-models fit (for resume refit).
  core::WhatIfEngine::Options last_whatif_options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_SESSION_H_
