#include "apps/session.h"

#include <cmath>

#include "telemetry/perf_monitor.h"

namespace kea::apps {

StatusOr<std::unique_ptr<KeaSession>> KeaSession::Create(const Config& config) {
  KEA_ASSIGN_OR_RETURN(sim::PerfModel perf_model,
                       sim::PerfModel::Create(sim::SkuCatalog::Default(),
                                              sim::DefaultSoftwareConfigs(),
                                              config.perf_params));
  KEA_ASSIGN_OR_RETURN(sim::WorkloadModel workload,
                       sim::WorkloadModel::Create(config.workload));

  // A unique_ptr keeps the engine's pointers into the session stable.
  std::unique_ptr<KeaSession> session(
      new KeaSession(std::move(perf_model), std::move(workload)));

  sim::ClusterSpec cluster_spec = config.cluster;
  if (cluster_spec.sku_fractions.empty()) {
    cluster_spec = sim::ClusterSpec::Default();
  }
  cluster_spec.total_machines = config.machines;
  KEA_ASSIGN_OR_RETURN(
      session->cluster_,
      sim::Cluster::Build(session->perf_model_.catalog(), cluster_spec));

  sim::FluidEngine::Options engine_options = config.engine;
  engine_options.seed = config.seed;
  session->engine_ = std::make_unique<sim::FluidEngine>(
      &session->perf_model_, &session->cluster_, &session->workload_,
      engine_options);
  return session;
}

Status KeaSession::Simulate(int hours) {
  if (ingestion_ == nullptr) {
    KEA_RETURN_IF_ERROR(engine_->Run(now_, hours, &store_));
    now_ += hours;
    return Status::OK();
  }
  // Hardened path: engine -> (fault injector) -> ingestion pipeline -> store.
  telemetry::TelemetryStore scratch;
  KEA_RETURN_IF_ERROR(engine_->Run(now_, hours, &scratch));
  if (fault_injector_ != nullptr) {
    KEA_RETURN_IF_ERROR(ingestion_->Ingest(fault_injector_->Corrupt(scratch.records())));
  } else {
    KEA_RETURN_IF_ERROR(ingestion_->Ingest(scratch.records()));
  }
  now_ += hours;
  return Status::OK();
}

Status KeaSession::EnableIngestionPipeline(const IngestionConfig& config) {
  telemetry::IngestionPipeline::Options pipeline_options = config.pipeline;
  pipeline_options.retry.seed = MixSeed(config.seed, 0x1e7e57);
  ingestion_ =
      std::make_unique<telemetry::IngestionPipeline>(&store_, pipeline_options);
  fault_injector_.reset();
  if (!config.faults.empty()) {
    fault_injector_ =
        std::make_unique<sim::TelemetryFaultInjector>(config.faults, config.seed);
    ingestion_->set_write_hook(fault_injector_->MakeWriteHook());
  }
  return Status::OK();
}

StatusOr<KeaSession::TuningRound> KeaSession::RunYarnTuningRound(
    const YarnConfigTuner::Options& options, int lookback_hours,
    int deploy_max_step) {
  if (lookback_hours <= 0) {
    return Status::InvalidArgument("lookback_hours must be positive");
  }
  if (now_ == 0) {
    return Status::FailedPrecondition("simulate telemetry before tuning");
  }
  sim::HourIndex begin = std::max(0, now_ - lookback_hours);

  KEA_ASSIGN_OR_RETURN(
      core::WhatIfEngine engine,
      core::WhatIfEngine::Fit(store_, telemetry::HourRangeFilter(begin, now_),
                              options.whatif));
  YarnConfigTuner tuner(options);
  TuningRound round;
  KEA_ASSIGN_OR_RETURN(round.plan, tuner.ProposeFromEngine(engine, cluster_));
  round.fit_begin = begin;
  round.fit_end = now_;

  core::DeploymentModule::Options deploy_options;
  deploy_options.max_step = deploy_max_step;
  deployment_ = core::DeploymentModule(deploy_options);
  KEA_ASSIGN_OR_RETURN(round.applied, deployment_.ApplyConservatively(
                                          round.plan.recommendations, &cluster_));

  has_round_ = true;
  last_engine_ = std::make_unique<core::WhatIfEngine>(std::move(engine));
  last_fit_begin_ = begin;
  last_deploy_hour_ = now_;
  return round;
}

StatusOr<KeaSession::GuardedRound> KeaSession::RunGuardedTuningRound(
    const GuardedRoundOptions& options) {
  if (options.lookback_hours <= 0) {
    return Status::InvalidArgument("lookback_hours must be positive");
  }
  if (now_ == 0) {
    return Status::FailedPrecondition("simulate telemetry before tuning");
  }
  sim::HourIndex begin = std::max(0, now_ - options.lookback_hours);

  KEA_ASSIGN_OR_RETURN(
      core::WhatIfEngine engine,
      core::WhatIfEngine::Fit(store_, telemetry::HourRangeFilter(begin, now_),
                              options.tuner.whatif));
  YarnConfigTuner tuner(options.tuner);
  GuardedRound round;
  KEA_ASSIGN_OR_RETURN(round.plan, tuner.ProposeFromEngine(engine, cluster_));
  round.fit_begin = begin;
  round.fit_end = now_;

  // A corrupted model never reaches the fleet: any non-finite prediction or
  // recommendation aborts before the first canary machine is touched.
  bool plan_sane = std::isfinite(round.plan.predicted_capacity_gain) &&
                   std::isfinite(round.plan.predicted_latency_before_s) &&
                   std::isfinite(round.plan.predicted_latency_after_s);
  for (const core::GroupRecommendation& rec : round.plan.recommendations) {
    plan_sane = plan_sane && rec.recommended_max_containers >= 0;
  }
  for (const auto& [key, value] : round.plan.lp_solution) {
    plan_sane = plan_sane && std::isfinite(value);
  }
  if (!plan_sane) {
    return Status::FailedPrecondition(
        "refusing to deploy: plan contains non-finite or negative values");
  }

  core::GuardrailedRollout rollout(options.rollout);
  sim::HourIndex deploy_hour = now_;
  KEA_ASSIGN_OR_RETURN(
      round.rollout,
      rollout.Execute(round.plan.recommendations, &cluster_, &store_, now_,
                      [this](int hours) { return Simulate(hours); }));

  has_round_ = true;
  last_engine_ = std::make_unique<core::WhatIfEngine>(std::move(engine));
  last_fit_begin_ = begin;
  last_deploy_hour_ = deploy_hour;
  return round;
}

StatusOr<core::ValidationReport> KeaSession::ValidateModels(
    const core::ModelValidator::Options& options) const {
  if (!has_round_) {
    return Status::FailedPrecondition("no tuning round to validate");
  }
  if (now_ <= last_deploy_hour_) {
    return Status::FailedPrecondition(
        "simulate post-deployment telemetry before validating");
  }
  core::ModelValidator validator(options);
  return validator.Validate(*last_engine_, store_,
                            telemetry::HourRangeFilter(last_deploy_hour_, now_));
}

Status KeaSession::RollbackLastDeployment() {
  return deployment_.RollbackLast(&cluster_);
}

StatusOr<CapacityConverter::Report> KeaSession::EstimateCapacityValue(
    const CapacityConverter::Options& options) const {
  if (!has_round_) {
    return Status::FailedPrecondition("no tuning round to value");
  }
  if (now_ <= last_deploy_hour_) {
    return Status::FailedPrecondition(
        "simulate post-deployment telemetry before valuation");
  }
  CapacityConverter converter(options);
  return converter.FromWindows(
      store_, telemetry::HourRangeFilter(last_fit_begin_, last_deploy_hour_),
      telemetry::HourRangeFilter(last_deploy_hour_, now_));
}

}  // namespace kea::apps
