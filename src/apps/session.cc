#include "apps/session.h"

#include <cmath>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/crash_point.h"
#include "common/io.h"
#include "common/journal.h"
#include "common/snapshot.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"
#include "telemetry/perf_monitor.h"

namespace kea::apps {
namespace {

constexpr char kLedgerFile[] = "/ledger.kea";
constexpr char kCheckpointFile[] = "/checkpoint.kea";

// Deterministic session-level counters: logical calls and simulated hours, not
// wall clock. The durable.step_* counters classify each resumed-round step the
// same way the journaled rollout does, so a resumed run's step mix is visible
// in one place.
obs::Counter* SimulateCallsCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("session.simulate_calls");
  return c;
}
obs::Counter* SimulateHoursCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("session.simulate_hours");
  return c;
}
obs::Counter* RoundsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("session.rounds");
  return c;
}
obs::Counter* StepReplayedCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_replayed");
  return c;
}
obs::Counter* StepRedrivenCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_redriven");
  return c;
}
obs::Counter* StepFreshCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durable.step_fresh");
  return c;
}
// Self-healing durability plane. The mode gauge mirrors DurabilityMode
// (0=off, 1=durable, 2=degraded); kTiming keeps mode flips out of the
// deterministic export. The entry/restore counters are deterministic — they
// only move when storage actually fails (injected or real).
obs::Gauge* DurabilityModeGauge() {
  static obs::Gauge* g = obs::Registry::Get().GetGauge("durability.mode");
  return g;
}
obs::Counter* DegradedEntriesCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durability.degraded_entries");
  return c;
}
obs::Counter* DegradedRestoresCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("durability.degraded_restores");
  return c;
}

Status DegradedRefusal(const Status& reason) {
  return Status::FailedPrecondition(
      "degraded durability: deployments refused until the storage plane "
      "heals (" + reason.message() + "); call TryRestoreDurability");
}

// ---- Bit-exact codecs for the checkpoint's "config" section. Everything a
// session was constructed with goes in, so Resume() needs only the directory.

void EncodeConfig(const KeaSession::Config& config,
                  const KeaSession::IngestionConfig& ingestion,
                  bool ingestion_enabled,
                  const KeaSession::FleetChaosConfig& chaos, bool chaos_enabled,
                  const KeaSession::SelfHealingConfig& healing,
                  bool healing_enabled, StateWriter* w) {
  w->PutInt(config.machines);
  w->PutU64(config.seed);

  const sim::PerfModel::Params& p = config.perf_params;
  const double perf[] = {p.cores_per_container, p.task_cpu_work, p.task_input_mb,
                         p.task_temp_mb,        p.interference,
                         p.feature_speed_boost, p.feature_power_discount,
                         p.power_elasticity,    p.power_util_exponent,
                         p.ssd_base_gb,         p.ssd_gb_per_core_mean,
                         p.ssd_gb_per_core_stddev, p.ram_base_gb,
                         p.ram_gb_per_core_mean, p.ram_gb_per_core_stddev,
                         p.nic_base_mbps,       p.nic_mbps_per_core_mean,
                         p.nic_mbps_per_core_stddev};
  for (double v : perf) w->PutDouble(v);

  const sim::WorkloadSpec& ws = config.workload;
  w->PutDouble(ws.base_demand_fraction);
  w->PutDouble(ws.diurnal_amplitude);
  w->PutDouble(ws.peak_hour);
  w->PutDouble(ws.weekend_factor);
  w->PutDouble(ws.demand_noise_sigma);
  w->PutDouble(ws.weekly_growth);
  w->PutU64(ws.task_types.size());
  for (const sim::TaskType& t : ws.task_types) {
    w->PutString(t.name);
    w->PutDouble(t.cpu_work_multiplier);
    w->PutDouble(t.input_mb_multiplier);
    w->PutDouble(t.temp_mb_multiplier);
    w->PutDouble(t.weight);
  }

  const sim::ClusterSpec& cs = config.cluster;
  w->PutInt(cs.total_machines);
  w->PutInt(cs.machines_per_rack);
  w->PutU64(cs.sku_fractions.size());
  for (double v : cs.sku_fractions) w->PutDouble(v);
  w->PutU64(cs.baseline_max_containers.size());
  for (int v : cs.baseline_max_containers) w->PutInt(v);
  w->PutInt(cs.baseline_max_queued);
  w->PutDouble(cs.sc2_fraction);
  w->PutInt(cs.racks_per_subcluster);

  const sim::FluidEngine::Options& eo = config.engine;
  w->PutU64(eo.seed);
  w->PutDouble(eo.placement_noise_sigma);
  w->PutDouble(eo.utilization_noise);
  w->PutDouble(eo.latency_noise_sigma);
  w->PutDouble(eo.data_noise_sigma);
  w->PutInt(eo.redistribution_rounds);
  w->PutDouble(eo.failure_rate_per_hour);
  w->PutDouble(eo.mean_repair_hours);

  w->PutBool(ingestion_enabled);
  const sim::FaultProfile& f = ingestion.faults;
  w->PutDouble(f.drop_rate);
  w->PutDouble(f.duplicate_rate);
  w->PutDouble(f.non_finite_rate);
  w->PutDouble(f.out_of_range_rate);
  w->PutDouble(f.outlier_rate);
  w->PutDouble(f.outlier_scale);
  w->PutDouble(f.stuck_machine_fraction);
  w->PutDouble(f.late_rate);
  w->PutInt(f.max_late_hours);
  w->PutDouble(f.transient_error_rate);
  const telemetry::IngestionPipeline::Options& po = ingestion.pipeline;
  w->PutBool(po.validate);
  w->PutBool(po.deduplicate);
  w->PutInt(po.max_lateness_hours);
  w->PutInt(po.stuck_run_threshold);
  w->PutInt(po.retry.max_attempts);
  w->PutDouble(po.retry.initial_backoff_ms);
  w->PutDouble(po.retry.backoff_multiplier);
  w->PutDouble(po.retry.max_backoff_ms);
  w->PutDouble(po.retry.jitter);
  w->PutU64(po.retry.seed);
  w->PutU64(ingestion.seed);

  // Fleet chaos + self-healing (appended after the PR-4 layout; DecodeConfig
  // treats their absence as "not enabled" so older checkpoints still load).
  w->PutBool(chaos_enabled);
  const sim::FleetFaultProfile& fp = chaos.profile;
  w->PutDouble(fp.crash_rate_per_hour);
  w->PutDouble(fp.mean_repair_hours);
  w->PutDouble(fp.rack_outage_rate_per_hour);
  w->PutDouble(fp.mean_rack_outage_hours);
  w->PutDouble(fp.degrade_rate_per_hour);
  w->PutDouble(fp.degrade_severity);
  w->PutDouble(fp.recovery_per_hour);
  w->PutDouble(fp.permanent_loss_rate_per_hour);
  w->PutU64(chaos.seed);

  w->PutBool(healing_enabled);
  const ml::PageHinkleyDetector::Options& ph = healing.drift.page_hinkley;
  w->PutDouble(ph.delta);
  w->PutDouble(ph.lambda);
  w->PutInt(ph.warmup);
  w->PutDouble(ph.min_stddev);
  w->PutDouble(ph.max_z);
  w->PutInt(healing.drift.staleness_hours);
  const core::ModelHealth::Options& mh = healing.health;
  w->PutDouble(mh.residual_tolerance);
  w->PutDouble(mh.residual_inflation);
  w->PutDouble(mh.min_baseline_error);
  w->PutInt(mh.refit_delay_hours);
  w->PutInt(mh.refit_lookback_hours);
  w->PutInt(mh.holdout_hours);
  w->PutDouble(mh.validation_tolerance);
  w->PutInt(mh.probation_rounds);
  w->PutDouble(mh.probation_margin_scale);
}

Status DecodeConfig(const std::string& blob, KeaSession::Config* config,
                    KeaSession::IngestionConfig* ingestion,
                    bool* ingestion_enabled,
                    KeaSession::FleetChaosConfig* chaos, bool* chaos_enabled,
                    KeaSession::SelfHealingConfig* healing,
                    bool* healing_enabled) {
  StateReader r(blob);
  KEA_RETURN_IF_ERROR(r.GetInt(&config->machines));
  KEA_RETURN_IF_ERROR(r.GetU64(&config->seed));

  sim::PerfModel::Params& p = config->perf_params;
  double* perf[] = {&p.cores_per_container, &p.task_cpu_work, &p.task_input_mb,
                    &p.task_temp_mb,        &p.interference,
                    &p.feature_speed_boost, &p.feature_power_discount,
                    &p.power_elasticity,    &p.power_util_exponent,
                    &p.ssd_base_gb,         &p.ssd_gb_per_core_mean,
                    &p.ssd_gb_per_core_stddev, &p.ram_base_gb,
                    &p.ram_gb_per_core_mean, &p.ram_gb_per_core_stddev,
                    &p.nic_base_mbps,       &p.nic_mbps_per_core_mean,
                    &p.nic_mbps_per_core_stddev};
  for (double* v : perf) KEA_RETURN_IF_ERROR(r.GetDouble(v));

  sim::WorkloadSpec& ws = config->workload;
  KEA_RETURN_IF_ERROR(r.GetDouble(&ws.base_demand_fraction));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ws.diurnal_amplitude));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ws.peak_hour));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ws.weekend_factor));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ws.demand_noise_sigma));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ws.weekly_growth));
  uint64_t count = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  ws.task_types.assign(count, sim::TaskType{});
  for (sim::TaskType& t : ws.task_types) {
    KEA_RETURN_IF_ERROR(r.GetString(&t.name));
    KEA_RETURN_IF_ERROR(r.GetDouble(&t.cpu_work_multiplier));
    KEA_RETURN_IF_ERROR(r.GetDouble(&t.input_mb_multiplier));
    KEA_RETURN_IF_ERROR(r.GetDouble(&t.temp_mb_multiplier));
    KEA_RETURN_IF_ERROR(r.GetDouble(&t.weight));
  }

  sim::ClusterSpec& cs = config->cluster;
  KEA_RETURN_IF_ERROR(r.GetInt(&cs.total_machines));
  KEA_RETURN_IF_ERROR(r.GetInt(&cs.machines_per_rack));
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  cs.sku_fractions.assign(count, 0.0);
  for (double& v : cs.sku_fractions) KEA_RETURN_IF_ERROR(r.GetDouble(&v));
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  cs.baseline_max_containers.assign(count, 0);
  for (int& v : cs.baseline_max_containers) KEA_RETURN_IF_ERROR(r.GetInt(&v));
  KEA_RETURN_IF_ERROR(r.GetInt(&cs.baseline_max_queued));
  KEA_RETURN_IF_ERROR(r.GetDouble(&cs.sc2_fraction));
  KEA_RETURN_IF_ERROR(r.GetInt(&cs.racks_per_subcluster));

  sim::FluidEngine::Options& eo = config->engine;
  KEA_RETURN_IF_ERROR(r.GetU64(&eo.seed));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eo.placement_noise_sigma));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eo.utilization_noise));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eo.latency_noise_sigma));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eo.data_noise_sigma));
  KEA_RETURN_IF_ERROR(r.GetInt(&eo.redistribution_rounds));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eo.failure_rate_per_hour));
  KEA_RETURN_IF_ERROR(r.GetDouble(&eo.mean_repair_hours));

  KEA_RETURN_IF_ERROR(r.GetBool(ingestion_enabled));
  sim::FaultProfile& f = ingestion->faults;
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.drop_rate));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.duplicate_rate));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.non_finite_rate));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.out_of_range_rate));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.outlier_rate));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.outlier_scale));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.stuck_machine_fraction));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.late_rate));
  KEA_RETURN_IF_ERROR(r.GetInt(&f.max_late_hours));
  KEA_RETURN_IF_ERROR(r.GetDouble(&f.transient_error_rate));
  telemetry::IngestionPipeline::Options& po = ingestion->pipeline;
  KEA_RETURN_IF_ERROR(r.GetBool(&po.validate));
  KEA_RETURN_IF_ERROR(r.GetBool(&po.deduplicate));
  KEA_RETURN_IF_ERROR(r.GetInt(&po.max_lateness_hours));
  KEA_RETURN_IF_ERROR(r.GetInt(&po.stuck_run_threshold));
  KEA_RETURN_IF_ERROR(r.GetInt(&po.retry.max_attempts));
  KEA_RETURN_IF_ERROR(r.GetDouble(&po.retry.initial_backoff_ms));
  KEA_RETURN_IF_ERROR(r.GetDouble(&po.retry.backoff_multiplier));
  KEA_RETURN_IF_ERROR(r.GetDouble(&po.retry.max_backoff_ms));
  KEA_RETURN_IF_ERROR(r.GetDouble(&po.retry.jitter));
  KEA_RETURN_IF_ERROR(r.GetU64(&po.retry.seed));
  KEA_RETURN_IF_ERROR(r.GetU64(&ingestion->seed));

  // Pre-chaos checkpoints end here.
  *chaos_enabled = false;
  *healing_enabled = false;
  if (r.AtEnd()) return Status::OK();

  KEA_RETURN_IF_ERROR(r.GetBool(chaos_enabled));
  sim::FleetFaultProfile& fp = chaos->profile;
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.crash_rate_per_hour));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.mean_repair_hours));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.rack_outage_rate_per_hour));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.mean_rack_outage_hours));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.degrade_rate_per_hour));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.degrade_severity));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.recovery_per_hour));
  KEA_RETURN_IF_ERROR(r.GetDouble(&fp.permanent_loss_rate_per_hour));
  KEA_RETURN_IF_ERROR(r.GetU64(&chaos->seed));

  KEA_RETURN_IF_ERROR(r.GetBool(healing_enabled));
  ml::PageHinkleyDetector::Options& ph = healing->drift.page_hinkley;
  KEA_RETURN_IF_ERROR(r.GetDouble(&ph.delta));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ph.lambda));
  KEA_RETURN_IF_ERROR(r.GetInt(&ph.warmup));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ph.min_stddev));
  KEA_RETURN_IF_ERROR(r.GetDouble(&ph.max_z));
  KEA_RETURN_IF_ERROR(r.GetInt(&healing->drift.staleness_hours));
  core::ModelHealth::Options& mh = healing->health;
  KEA_RETURN_IF_ERROR(r.GetDouble(&mh.residual_tolerance));
  KEA_RETURN_IF_ERROR(r.GetDouble(&mh.residual_inflation));
  KEA_RETURN_IF_ERROR(r.GetDouble(&mh.min_baseline_error));
  KEA_RETURN_IF_ERROR(r.GetInt(&mh.refit_delay_hours));
  KEA_RETURN_IF_ERROR(r.GetInt(&mh.refit_lookback_hours));
  KEA_RETURN_IF_ERROR(r.GetInt(&mh.holdout_hours));
  KEA_RETURN_IF_ERROR(r.GetDouble(&mh.validation_tolerance));
  KEA_RETURN_IF_ERROR(r.GetInt(&mh.probation_rounds));
  KEA_RETURN_IF_ERROR(r.GetDouble(&mh.probation_margin_scale));
  return Status::OK();
}

// ---- Bit-exact codec for the plan journaled at ROUND_STARTED. The journal,
// not a refit, is the authority on resume: the simulation clock has advanced
// into the rollout, so refitting would see a different window.

void EncodePlan(const YarnConfigTuner::Plan& plan, StateWriter* w) {
  w->PutU64(plan.recommendations.size());
  for (const core::GroupRecommendation& rec : plan.recommendations) {
    w->PutInt(rec.group.sc);
    w->PutInt(rec.group.sku);
    w->PutInt(rec.current_max_containers);
    w->PutInt(rec.recommended_max_containers);
  }
  w->PutDouble(plan.predicted_capacity_gain);
  w->PutDouble(plan.predicted_latency_before_s);
  w->PutDouble(plan.predicted_latency_after_s);
  w->PutU64(plan.lp_solution.size());
  for (const auto& [group, value] : plan.lp_solution) {
    w->PutInt(group.sc);
    w->PutInt(group.sku);
    w->PutDouble(value);
  }
}

Status DecodePlan(StateReader* r, YarnConfigTuner::Plan* plan) {
  uint64_t count = 0;
  KEA_RETURN_IF_ERROR(r->GetU64(&count));
  plan->recommendations.assign(count, core::GroupRecommendation{});
  for (core::GroupRecommendation& rec : plan->recommendations) {
    KEA_RETURN_IF_ERROR(r->GetInt(&rec.group.sc));
    KEA_RETURN_IF_ERROR(r->GetInt(&rec.group.sku));
    KEA_RETURN_IF_ERROR(r->GetInt(&rec.current_max_containers));
    KEA_RETURN_IF_ERROR(r->GetInt(&rec.recommended_max_containers));
  }
  KEA_RETURN_IF_ERROR(r->GetDouble(&plan->predicted_capacity_gain));
  KEA_RETURN_IF_ERROR(r->GetDouble(&plan->predicted_latency_before_s));
  KEA_RETURN_IF_ERROR(r->GetDouble(&plan->predicted_latency_after_s));
  KEA_RETURN_IF_ERROR(r->GetU64(&count));
  plan->lp_solution.clear();
  for (uint64_t i = 0; i < count; ++i) {
    sim::MachineGroupKey group;
    double value = 0.0;
    KEA_RETURN_IF_ERROR(r->GetInt(&group.sc));
    KEA_RETURN_IF_ERROR(r->GetInt(&group.sku));
    KEA_RETURN_IF_ERROR(r->GetDouble(&value));
    plan->lp_solution[group] = value;
  }
  return Status::OK();
}

std::string EncodeRoundStart(sim::HourIndex start_hour, sim::HourIndex fit_begin,
                             sim::HourIndex fit_end,
                             const YarnConfigTuner::Plan& plan) {
  StateWriter w;
  w.PutI64(start_hour);
  w.PutI64(fit_begin);
  w.PutI64(fit_end);
  EncodePlan(plan, &w);
  return w.Release();
}

Status DecodeRoundStart(const std::string& blob, sim::HourIndex* start_hour,
                        sim::HourIndex* fit_begin, sim::HourIndex* fit_end,
                        YarnConfigTuner::Plan* plan) {
  StateReader r(blob);
  int64_t start = 0, begin = 0, end = 0;
  KEA_RETURN_IF_ERROR(r.GetI64(&start));
  KEA_RETURN_IF_ERROR(r.GetI64(&begin));
  KEA_RETURN_IF_ERROR(r.GetI64(&end));
  *start_hour = static_cast<sim::HourIndex>(start);
  *fit_begin = static_cast<sim::HourIndex>(begin);
  *fit_end = static_cast<sim::HourIndex>(end);
  return DecodePlan(&r, plan);
}

/// The plan-sanity screen shared by the plain and durable guarded rounds: a
/// corrupted model never reaches the fleet.
Status CheckPlanSane(const YarnConfigTuner::Plan& plan) {
  bool sane = std::isfinite(plan.predicted_capacity_gain) &&
              std::isfinite(plan.predicted_latency_before_s) &&
              std::isfinite(plan.predicted_latency_after_s);
  for (const core::GroupRecommendation& rec : plan.recommendations) {
    sane = sane && rec.recommended_max_containers >= 0;
  }
  for (const auto& [key, value] : plan.lp_solution) {
    sane = sane && std::isfinite(value);
  }
  if (!sane) {
    return Status::FailedPrecondition(
        "refusing to deploy: plan contains non-finite or negative values");
  }
  return Status::OK();
}

}  // namespace

StatusOr<std::unique_ptr<KeaSession>> KeaSession::Create(const Config& config) {
  KEA_ASSIGN_OR_RETURN(sim::PerfModel perf_model,
                       sim::PerfModel::Create(sim::SkuCatalog::Default(),
                                              sim::DefaultSoftwareConfigs(),
                                              config.perf_params));
  KEA_ASSIGN_OR_RETURN(sim::WorkloadModel workload,
                       sim::WorkloadModel::Create(config.workload));

  // A unique_ptr keeps the engine's pointers into the session stable.
  std::unique_ptr<KeaSession> session(
      new KeaSession(std::move(perf_model), std::move(workload)));

  sim::ClusterSpec cluster_spec = config.cluster;
  if (cluster_spec.sku_fractions.empty()) {
    cluster_spec = sim::ClusterSpec::Default();
  }
  cluster_spec.total_machines = config.machines;
  KEA_ASSIGN_OR_RETURN(
      session->cluster_,
      sim::Cluster::Build(session->perf_model_.catalog(), cluster_spec));

  sim::FluidEngine::Options engine_options = config.engine;
  engine_options.seed = config.seed;
  session->engine_ = std::make_unique<sim::FluidEngine>(
      &session->perf_model_, &session->cluster_, &session->workload_,
      engine_options);
  session->config_ = config;
  return session;
}

Status KeaSession::Simulate(int hours) {
  KEA_TRACE_SPAN("session.simulate", {{"hours", std::to_string(hours)},
                                      {"start_hour", std::to_string(now_)}});
  SimulateCallsCounter()->Increment();
  if (hours > 0) SimulateHoursCounter()->Increment(static_cast<uint64_t>(hours));
  if (ingestion_ == nullptr) {
    KEA_RETURN_IF_ERROR(engine_->Run(now_, hours, &store_));
    now_ += hours;
  } else {
    // Hardened path: engine -> (fault injector) -> ingestion pipeline -> store.
    telemetry::TelemetryStore scratch;
    KEA_RETURN_IF_ERROR(engine_->Run(now_, hours, &scratch));
    if (fault_injector_ != nullptr) {
      KEA_RETURN_IF_ERROR(
          ingestion_->Ingest(fault_injector_->Corrupt(scratch.records())));
    } else {
      KEA_RETURN_IF_ERROR(ingestion_->Ingest(scratch.records()));
    }
    now_ += hours;
  }
  // Drift monitoring: fold the new telemetry into the detector's streams and
  // route any alarms into the ModelHealth breaker. Read-only on the store —
  // a clean stream leaves the session's behavior untouched.
  if (drift_ != nullptr) {
    const bool was_safe =
        model_health_ != nullptr && model_health_->in_safe_mode();
    std::vector<telemetry::DriftDetector::Alarm> alarms = drift_->CatchUp(store_);
    std::vector<telemetry::DriftDetector::Alarm> stale =
        drift_->CheckStaleness(now_);
    alarms.insert(alarms.end(), stale.begin(), stale.end());
    if (model_health_ != nullptr) {
      for (const telemetry::DriftDetector::Alarm& alarm : alarms) {
        model_health_->Trip("drift:" + alarm.metric, now_);
      }
      // A freshly opened breaker means the fitted models are no longer
      // trusted; anything cached against the current model_epoch is stale.
      if (!was_safe && model_health_->in_safe_mode()) ++model_epoch_;
    }
  }
  // Durable sessions checkpoint after every simulate so a crash between
  // control-plane actions loses no telemetry. Inside a journaled round the
  // per-step checkpoints (which also cover the step's ledger event) own this.
  if (ledger_ != nullptr && !in_journaled_round_) {
    if (durability_mode_ == DurabilityMode::kDegraded) {
      // Auto-probe: a healed disk re-checkpoints here (covering this call's
      // telemetry); a still-broken one keeps the session degraded. Either
      // way the simulation itself succeeded.
      (void)TryRestoreDurability();
    } else {
      Status written = WriteCheckpoint(ledger_->next_seq());
      if (!written.ok()) {
        // Injected crashes (kAborted) and logic errors propagate; a storage
        // plane failure degrades the session instead of losing the tick.
        if (!IsStorageFailure(written)) return written;
        EnterDegradedMode(written);
      }
    }
  }
  return Status::OK();
}

Status KeaSession::EnableIngestionPipeline(const IngestionConfig& config) {
  telemetry::IngestionPipeline::Options pipeline_options = config.pipeline;
  pipeline_options.retry.seed = MixSeed(config.seed, 0x1e7e57);
  ingestion_ =
      std::make_unique<telemetry::IngestionPipeline>(&store_, pipeline_options);
  fault_injector_.reset();
  if (!config.faults.empty()) {
    fault_injector_ =
        std::make_unique<sim::TelemetryFaultInjector>(config.faults, config.seed);
    ingestion_->set_write_hook(fault_injector_->MakeWriteHook());
  }
  ingestion_config_ = config;
  ingestion_enabled_ = true;
  return Status::OK();
}

Status KeaSession::EnableFleetChaos(const FleetChaosConfig& config) {
  fleet_faults_ = std::make_unique<sim::FleetFaultInjector>(
      &cluster_, config.profile, config.seed);
  engine_->AttachFleetFaults(fleet_faults_.get());
  fleet_chaos_config_ = config;
  fleet_chaos_enabled_ = true;
  return Status::OK();
}

Status KeaSession::EnableSelfHealing(const SelfHealingConfig& config) {
  drift_ = std::make_unique<telemetry::DriftDetector>(config.drift);
  model_health_ = std::make_unique<core::ModelHealth>(config.health);
  self_healing_config_ = config;
  self_healing_enabled_ = true;
  return Status::OK();
}

size_t KeaSession::TotalDriftAlarms() const {
  if (drift_ == nullptr) return 0;
  size_t total = drift_->staleness_alarms();
  for (size_t count : drift_->alarm_counts()) total += count;
  return total;
}

Status KeaSession::EnableDurability(const std::string& dir) {
  DurabilityOptions options;
  options.dir = dir;
  return EnableDurability(options);
}

Status KeaSession::EnableDurability(const DurabilityOptions& options) {
  if (ledger_ != nullptr) {
    return Status::FailedPrecondition("durability already enabled");
  }
  KEA_ASSIGN_OR_RETURN(
      ledger_, core::DeploymentLedger::Open(options.dir + kLedgerFile));
  durability_dir_ = options.dir;
  keep_generations_ = options.keep_generations;
  deployment_.AttachLedger(ledger_.get());
  // The initial checkpoint covers whatever the (possibly pre-existing) ledger
  // holds, so Resume() of a never-crashed directory is a clean no-op restore.
  Status written = WriteCheckpoint(ledger_->next_seq());
  if (!written.ok()) {
    deployment_.AttachLedger(nullptr);
    ledger_.reset();
    durability_dir_.clear();
    return written;
  }
  durability_mode_ = DurabilityMode::kDurable;
  DurabilityModeGauge()->Set(1);
  return Status::OK();
}

Status KeaSession::Checkpoint() {
  if (ledger_ == nullptr) {
    return Status::FailedPrecondition(
        "EnableDurability must be called before Checkpoint");
  }
  if (durability_mode_ == DurabilityMode::kDegraded) {
    return Status::FailedPrecondition(
        "degraded durability (" + degraded_reason_.message() +
        "); call TryRestoreDurability before checkpointing");
  }
  return WriteCheckpoint(ledger_->next_seq());
}

void KeaSession::EnterDegradedMode(const Status& reason) {
  if (durability_mode_ == DurabilityMode::kDegraded) return;
  durability_mode_ = DurabilityMode::kDegraded;
  degraded_reason_ = reason;
  DegradedEntriesCounter()->Increment();
  DurabilityModeGauge()->Set(2);
}

Status KeaSession::TryRestoreDurability() {
  if (durability_mode_ != DurabilityMode::kDegraded) {
    return Status::FailedPrecondition(
        "session is not in degraded-durability mode");
  }
  // In-memory progress is the authority: every event this session
  // acknowledged reached the in-memory ledger, so the rebuilt plane must
  // cover at least that much — a disk that lost acknowledged events is
  // refused rather than silently rewound (never fabricate state).
  const uint64_t covered = ledger_->next_seq();
  StatusOr<std::unique_ptr<core::DeploymentLedger>> reopened =
      core::DeploymentLedger::Open(durability_dir_ + kLedgerFile);
  if (!reopened.ok()) return reopened.status();
  if (reopened.value()->next_seq() < covered) {
    return Status::Internal(
        "ledger on disk holds " +
        std::to_string(reopened.value()->next_seq()) +
        " events but the session acknowledged " + std::to_string(covered) +
        " — refusing to restore a plane that lost acknowledged events");
  }
  // Orphan disk events (appends that persisted but were reported failed)
  // have seq >= covered, so the checkpoint below leaves them in the
  // re-drive region: the next round replays their recorded payloads with
  // the idempotency keys guaranteeing exactly-once effects.
  ledger_ = std::move(reopened).value();
  deployment_.AttachLedger(ledger_.get());
  Status written = WriteCheckpoint(covered);
  if (!written.ok()) {
    if (IsStorageFailure(written)) degraded_reason_ = written;
    return written;
  }
  durability_mode_ = DurabilityMode::kDurable;
  degraded_reason_ = Status::OK();
  DegradedRestoresCounter()->Increment();
  DurabilityModeGauge()->Set(1);
  return Status::OK();
}

Status KeaSession::WriteCheckpoint(uint64_t covered_seq) {
  SnapshotWriter snapshot;

  StateWriter meta;
  meta.PutU64(covered_seq);
  meta.PutI64(now_);
  meta.PutBool(has_round_);
  meta.PutI64(last_fit_begin_);
  meta.PutI64(last_fit_end_);
  meta.PutI64(last_deploy_hour_);
  meta.PutI64(round_count_);
  meta.PutInt(static_cast<int>(last_whatif_options_.regressor));
  meta.PutU64(last_whatif_options_.min_observations);
  meta.PutInt(last_whatif_options_.num_threads);
  meta.PutU64(model_epoch_);
  meta.PutU64(deploy_epoch_);
  meta.PutI64(fabric_count_);
  meta.PutI64(keep_generations_);
  snapshot.AddSection("meta", meta.Release());

  StateWriter config;
  EncodeConfig(config_, ingestion_config_, ingestion_enabled_,
               fleet_chaos_config_, fleet_chaos_enabled_, self_healing_config_,
               self_healing_enabled_, &config);
  snapshot.AddSection("config", config.Release());

  snapshot.AddSection("telemetry", store_.ToCsv());

  StateWriter cluster;
  cluster.PutU64(cluster_.machines().size());
  for (const sim::Machine& m : cluster_.machines()) {
    cluster.PutInt(m.sc);
    cluster.PutInt(m.max_containers);
    cluster.PutInt(m.max_queued_containers);
    cluster.PutDouble(m.power_cap_fraction);
    cluster.PutBool(m.feature_enabled);
  }
  snapshot.AddSection("cluster", cluster.Release());

  snapshot.AddSection("engine", engine_->SerializeState());
  snapshot.AddSection("deployment", deployment_.SerializeState());
  if (ingestion_ != nullptr) {
    snapshot.AddSection("ingestion", ingestion_->SerializeState());
  }
  if (fault_injector_ != nullptr) {
    snapshot.AddSection("fault_injector", fault_injector_->SerializeState());
  }
  if (fleet_faults_ != nullptr) {
    snapshot.AddSection("fleet_faults", fleet_faults_->SerializeState());
  }
  if (drift_ != nullptr) {
    snapshot.AddSection("drift", drift_->SerializeState());
  }
  if (model_health_ != nullptr) {
    snapshot.AddSection("model_health", model_health_->SerializeState());
  }

  KEA_RETURN_IF_ERROR(SnapshotGenerations::Write(
      snapshot, durability_dir_ + kCheckpointFile, keep_generations_));
  if (covered_seq > durable_seq_) durable_seq_ = covered_seq;
  return Status::OK();
}

StatusOr<std::unique_ptr<KeaSession>> KeaSession::Resume(const std::string& dir) {
  KEA_PHASE("session.journal_replay");
  // The ledger first: its durable progress bounds which checkpoints are
  // admissible. A checkpoint claiming coverage beyond the ledger's tail
  // (a rotted or rewound ledger) would fabricate effects on replay, so the
  // validator rejects it and the restore falls back a generation.
  std::unique_ptr<core::DeploymentLedger> ledger;
  KEA_ASSIGN_OR_RETURN(ledger, core::DeploymentLedger::Open(dir + kLedgerFile));
  const uint64_t ledger_next = ledger->next_seq();
  SnapshotGenerations::Validator admissible =
      [ledger_next](const SnapshotReader& candidate) -> Status {
    StatusOr<std::string> meta_blob = candidate.Section("meta");
    if (!meta_blob.ok()) return meta_blob.status();
    StateReader meta(meta_blob.value());
    uint64_t covered = 0;
    KEA_RETURN_IF_ERROR(meta.GetU64(&covered));
    if (covered > ledger_next) {
      return Status::FailedPrecondition(
          "checkpoint covers " + std::to_string(covered) +
          " ledger events but the ledger holds " +
          std::to_string(ledger_next) + " — refusing to fabricate state");
    }
    return Status::OK();
  };
  KEA_ASSIGN_OR_RETURN(SnapshotGenerations::Restored restored,
                       SnapshotGenerations::RestoreLatestValid(
                           dir + kCheckpointFile, admissible));
  SnapshotReader& snapshot = restored.reader;

  std::string config_blob;
  KEA_ASSIGN_OR_RETURN(config_blob, snapshot.Section("config"));
  Config config;
  IngestionConfig ingestion_config;
  bool ingestion_enabled = false;
  FleetChaosConfig chaos_config;
  bool chaos_enabled = false;
  SelfHealingConfig healing_config;
  bool healing_enabled = false;
  KEA_RETURN_IF_ERROR(DecodeConfig(config_blob, &config, &ingestion_config,
                                   &ingestion_enabled, &chaos_config,
                                   &chaos_enabled, &healing_config,
                                   &healing_enabled));

  KEA_ASSIGN_OR_RETURN(std::unique_ptr<KeaSession> session, Create(config));
  if (ingestion_enabled) {
    KEA_RETURN_IF_ERROR(session->EnableIngestionPipeline(ingestion_config));
  }
  if (chaos_enabled) {
    KEA_RETURN_IF_ERROR(session->EnableFleetChaos(chaos_config));
  }
  if (healing_enabled) {
    KEA_RETURN_IF_ERROR(session->EnableSelfHealing(healing_config));
  }

  std::string meta_blob;
  KEA_ASSIGN_OR_RETURN(meta_blob, snapshot.Section("meta"));
  StateReader meta(meta_blob);
  int64_t now = 0, fit_begin = 0, fit_end = 0, deploy_hour = 0;
  int regressor = 0, num_threads = 0;
  uint64_t min_observations = 0;
  KEA_RETURN_IF_ERROR(meta.GetU64(&session->durable_seq_));
  KEA_RETURN_IF_ERROR(meta.GetI64(&now));
  KEA_RETURN_IF_ERROR(meta.GetBool(&session->has_round_));
  KEA_RETURN_IF_ERROR(meta.GetI64(&fit_begin));
  KEA_RETURN_IF_ERROR(meta.GetI64(&fit_end));
  KEA_RETURN_IF_ERROR(meta.GetI64(&deploy_hour));
  KEA_RETURN_IF_ERROR(meta.GetI64(&session->round_count_));
  KEA_RETURN_IF_ERROR(meta.GetInt(&regressor));
  KEA_RETURN_IF_ERROR(meta.GetU64(&min_observations));
  KEA_RETURN_IF_ERROR(meta.GetInt(&num_threads));
  // Pre-serving checkpoints end here; their sessions start at epoch zero.
  if (!meta.AtEnd()) {
    KEA_RETURN_IF_ERROR(meta.GetU64(&session->model_epoch_));
    KEA_RETURN_IF_ERROR(meta.GetU64(&session->deploy_epoch_));
  }
  // Pre-fabric checkpoints end here; their sessions have run zero fabrics.
  if (!meta.AtEnd()) {
    KEA_RETURN_IF_ERROR(meta.GetI64(&session->fabric_count_));
  }
  // Pre-generation checkpoints end here; their retention knob defaults.
  if (!meta.AtEnd()) {
    int64_t keep = 0;
    KEA_RETURN_IF_ERROR(meta.GetI64(&keep));
    session->keep_generations_ = static_cast<int>(keep);
  }
  if (!meta.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in checkpoint meta section");
  }
  session->now_ = static_cast<sim::HourIndex>(now);
  session->last_fit_begin_ = static_cast<sim::HourIndex>(fit_begin);
  session->last_fit_end_ = static_cast<sim::HourIndex>(fit_end);
  session->last_deploy_hour_ = static_cast<sim::HourIndex>(deploy_hour);
  session->last_whatif_options_.regressor =
      static_cast<core::RegressorKind>(regressor);
  session->last_whatif_options_.min_observations =
      static_cast<size_t>(min_observations);
  session->last_whatif_options_.num_threads = num_threads;

  std::string store_csv;
  KEA_ASSIGN_OR_RETURN(store_csv, snapshot.Section("telemetry"));
  KEA_ASSIGN_OR_RETURN(session->store_,
                       telemetry::TelemetryStore::FromCsv(store_csv));

  std::string cluster_blob;
  KEA_ASSIGN_OR_RETURN(cluster_blob, snapshot.Section("cluster"));
  StateReader cluster(cluster_blob);
  uint64_t machine_count = 0;
  KEA_RETURN_IF_ERROR(cluster.GetU64(&machine_count));
  if (machine_count != session->cluster_.machines().size()) {
    return Status::InvalidArgument(
        "checkpoint cluster size does not match the rebuilt fleet");
  }
  std::vector<int> scs(machine_count, 0);
  std::map<int, std::vector<int>> ids_by_sc;
  std::vector<sim::Machine>& machines = session->cluster_.mutable_machines();
  for (uint64_t i = 0; i < machine_count; ++i) {
    sim::Machine& m = machines[i];
    KEA_RETURN_IF_ERROR(cluster.GetInt(&scs[i]));
    KEA_RETURN_IF_ERROR(cluster.GetInt(&m.max_containers));
    KEA_RETURN_IF_ERROR(cluster.GetInt(&m.max_queued_containers));
    KEA_RETURN_IF_ERROR(cluster.GetDouble(&m.power_cap_fraction));
    KEA_RETURN_IF_ERROR(cluster.GetBool(&m.feature_enabled));
    if (scs[i] != m.sc) ids_by_sc[scs[i]].push_back(m.id);
  }
  if (!cluster.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in checkpoint cluster section");
  }
  // SetSoftwareConfig rebuilds the group index; only drifted machines need it.
  for (const auto& [sc, ids] : ids_by_sc) {
    KEA_RETURN_IF_ERROR(session->cluster_.SetSoftwareConfig(ids, sc));
  }

  std::string blob;
  KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("engine"));
  KEA_RETURN_IF_ERROR(session->engine_->RestoreState(blob));
  KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("deployment"));
  KEA_RETURN_IF_ERROR(session->deployment_.RestoreState(blob));
  if (snapshot.Has("ingestion")) {
    if (session->ingestion_ == nullptr) {
      return Status::InvalidArgument(
          "checkpoint has ingestion state but no ingestion config");
    }
    KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("ingestion"));
    KEA_RETURN_IF_ERROR(session->ingestion_->RestoreState(blob));
  }
  if (snapshot.Has("fault_injector")) {
    if (session->fault_injector_ == nullptr) {
      return Status::InvalidArgument(
          "checkpoint has fault-injector state but no fault profile");
    }
    KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("fault_injector"));
    KEA_RETURN_IF_ERROR(session->fault_injector_->RestoreState(blob));
  }
  if (snapshot.Has("fleet_faults")) {
    if (session->fleet_faults_ == nullptr) {
      return Status::InvalidArgument(
          "checkpoint has fleet-fault state but no fleet-chaos config");
    }
    KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("fleet_faults"));
    KEA_RETURN_IF_ERROR(session->fleet_faults_->RestoreState(blob));
  }
  if (snapshot.Has("drift")) {
    if (session->drift_ == nullptr) {
      return Status::InvalidArgument(
          "checkpoint has drift state but no self-healing config");
    }
    KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("drift"));
    KEA_RETURN_IF_ERROR(session->drift_->RestoreState(blob));
  }
  if (snapshot.Has("model_health")) {
    if (session->model_health_ == nullptr) {
      return Status::InvalidArgument(
          "checkpoint has model-health state but no self-healing config");
    }
    KEA_ASSIGN_OR_RETURN(blob, snapshot.Section("model_health"));
    KEA_RETURN_IF_ERROR(session->model_health_->RestoreState(blob));
  }

  session->durability_dir_ = dir;
  session->ledger_ = std::move(ledger);
  session->deployment_.AttachLedger(session->ledger_.get());
  session->durability_mode_ = DurabilityMode::kDurable;
  session->resume_generations_discarded_ = restored.discarded;
  DurabilityModeGauge()->Set(1);

  // Rebuild the validation engine for a completed round: the fit window and
  // options are checkpointed, the fit itself is deterministic, so the refit
  // matches the engine the crashed process held.
  if (session->has_round_ &&
      session->last_fit_end_ > session->last_fit_begin_) {
    KEA_ASSIGN_OR_RETURN(
        core::WhatIfEngine engine,
        core::WhatIfEngine::Fit(session->store_,
                                telemetry::HourRangeFilter(
                                    session->last_fit_begin_,
                                    session->last_fit_end_),
                                session->last_whatif_options_));
    session->last_engine_ =
        std::make_unique<core::WhatIfEngine>(std::move(engine));
  }
  return session;
}

Status KeaSession::FitWhatIfEngine(const core::WhatIfEngine::Options& options,
                                   int lookback_hours) {
  if (lookback_hours <= 0) {
    return Status::InvalidArgument("lookback_hours must be positive");
  }
  if (now_ == 0) {
    return Status::FailedPrecondition("simulate telemetry before fitting");
  }
  KEA_TRACE_SPAN("session.fit_whatif",
                 {{"lookback_hours", std::to_string(lookback_hours)}});
  sim::HourIndex begin = std::max(0, now_ - lookback_hours);
  KEA_ASSIGN_OR_RETURN(
      core::WhatIfEngine engine,
      core::WhatIfEngine::Fit(store_, telemetry::HourRangeFilter(begin, now_),
                              options));
  last_engine_ = std::make_unique<core::WhatIfEngine>(std::move(engine));
  last_fit_begin_ = begin;
  last_fit_end_ = now_;
  last_whatif_options_ = options;
  ++model_epoch_;
  // Fitting is a model operation, not a deployment: in degraded mode it
  // still runs, it just cannot persist.
  if (ledger_ != nullptr && !in_journaled_round_ &&
      durability_mode_ != DurabilityMode::kDegraded) {
    Status written = WriteCheckpoint(ledger_->next_seq());
    if (!written.ok()) {
      if (!IsStorageFailure(written)) return written;
      EnterDegradedMode(written);
    }
  }
  return Status::OK();
}

StatusOr<KeaSession::TuningRound> KeaSession::RunYarnTuningRound(
    const YarnConfigTuner::Options& options, int lookback_hours,
    int deploy_max_step) {
  if (lookback_hours <= 0) {
    return Status::InvalidArgument("lookback_hours must be positive");
  }
  if (now_ == 0) {
    return Status::FailedPrecondition("simulate telemetry before tuning");
  }
  if (model_health_ != nullptr && model_health_->in_safe_mode()) {
    return Status::FailedPrecondition(
        "model-health breaker is open; deployments refused "
        "(use RunGuardedTuningRound to drive the refit cycle)");
  }
  if (durability_mode_ == DurabilityMode::kDegraded) {
    return DegradedRefusal(degraded_reason_);
  }
  KEA_TRACE_SPAN("session.round", {{"kind", "yarn"},
                                   {"lookback_hours",
                                    std::to_string(lookback_hours)}});
  RoundsCounter()->Increment();
  sim::HourIndex begin = std::max(0, now_ - lookback_hours);

  KEA_ASSIGN_OR_RETURN(
      core::WhatIfEngine engine,
      core::WhatIfEngine::Fit(store_, telemetry::HourRangeFilter(begin, now_),
                              options.whatif));
  YarnConfigTuner tuner(options);
  TuningRound round;
  KEA_ASSIGN_OR_RETURN(round.plan, tuner.ProposeFromEngine(engine, cluster_));
  round.fit_begin = begin;
  round.fit_end = now_;

  core::DeploymentModule::Options deploy_options;
  deploy_options.max_step = deploy_max_step;
  // Replacing the module must not reset its history or its ledger-key
  // counters — a restarted counter would reuse idempotency keys and make a
  // genuinely new apply look like a replayed one.
  std::string module_state = deployment_.SerializeState();
  deployment_ = core::DeploymentModule(deploy_options);
  KEA_RETURN_IF_ERROR(deployment_.RestoreState(module_state));
  if (ledger_ != nullptr) deployment_.AttachLedger(ledger_.get());
  StatusOr<std::vector<core::AppliedChange>> applied =
      deployment_.ApplyConservatively(round.plan.recommendations, &cluster_);
  if (!applied.ok()) {
    // Write-ahead discipline: a failed journal append touched no machine.
    // Storage failures flip the session to degraded so later rounds are
    // refused instead of repeatedly hammering a dead disk.
    if (IsStorageFailure(applied.status())) EnterDegradedMode(applied.status());
    return applied.status();
  }
  round.applied = std::move(applied).value();

  has_round_ = true;
  last_engine_ = std::make_unique<core::WhatIfEngine>(std::move(engine));
  last_fit_begin_ = begin;
  last_fit_end_ = now_;
  last_deploy_hour_ = now_;
  last_whatif_options_ = options.whatif;
  ++model_epoch_;
  if (!round.applied.empty()) ++deploy_epoch_;
  if (ledger_ != nullptr) {
    Status written = WriteCheckpoint(ledger_->next_seq());
    if (!written.ok()) {
      // The applies are already journaled; only their checkpoint is missing,
      // which resume's re-drive repairs. Degrade rather than fail the round.
      if (!IsStorageFailure(written)) return written;
      EnterDegradedMode(written);
    }
  }
  return round;
}

StatusOr<KeaSession::GuardedRound> KeaSession::RunGuardedTuningRound(
    const GuardedRoundOptions& options) {
  // The durability breaker outranks everything: a degraded storage plane
  // refuses any round (even safe-mode rounds persist breaker state).
  if (durability_mode_ == DurabilityMode::kDegraded) {
    return DegradedRefusal(degraded_reason_);
  }
  // The breaker gates both the plain and the durable paths: while open, the
  // session holds the last known-good config and only drives the refit cycle.
  if (model_health_ != nullptr && model_health_->in_safe_mode()) {
    StatusOr<GuardedRound> round = RunSafeModeRound(options);
    if (!round.ok() && IsStorageFailure(round.status())) {
      EnterDegradedMode(round.status());
    }
    return round;
  }
  if (ledger_ != nullptr) {
    StatusOr<GuardedRound> round = RunGuardedTuningRoundDurable(options);
    if (!round.ok() && IsStorageFailure(round.status())) {
      // Journaled steps that already ran are on disk (or re-drivable);
      // degrade so nothing further reaches the fleet until the plane heals.
      EnterDegradedMode(round.status());
    }
    return round;
  }
  if (options.lookback_hours <= 0) {
    return Status::InvalidArgument("lookback_hours must be positive");
  }
  if (now_ == 0) {
    return Status::FailedPrecondition("simulate telemetry before tuning");
  }
  KEA_TRACE_SPAN("session.round", {{"kind", "guarded"},
                                   {"lookback_hours",
                                    std::to_string(options.lookback_hours)}});
  RoundsCounter()->Increment();
  const size_t alarms_before = TotalDriftAlarms();
  sim::HourIndex begin = std::max(0, now_ - options.lookback_hours);

  KEA_ASSIGN_OR_RETURN(
      core::WhatIfEngine engine,
      core::WhatIfEngine::Fit(store_, telemetry::HourRangeFilter(begin, now_),
                              options.tuner.whatif));
  YarnConfigTuner tuner(options.tuner);
  GuardedRound round;
  KEA_ASSIGN_OR_RETURN(round.plan, tuner.ProposeFromEngine(engine, cluster_));
  round.fit_begin = begin;
  round.fit_end = now_;

  // A corrupted model never reaches the fleet: any non-finite prediction or
  // recommendation aborts before the first canary machine is touched.
  KEA_RETURN_IF_ERROR(CheckPlanSane(round.plan));

  // During probation (RE-ARMED) the guardrails are tightened — the freshly
  // refitted model gets less headroom. EffectiveGuardrails is the identity
  // while HEALTHY, so the tuned path stays bit-identical without trips.
  core::GuardrailedRollout::Options rollout_options = options.rollout;
  if (model_health_ != nullptr) {
    rollout_options.guardrails =
        model_health_->EffectiveGuardrails(rollout_options.guardrails);
  }
  core::GuardrailedRollout rollout(rollout_options);
  sim::HourIndex deploy_hour = now_;
  KEA_ASSIGN_OR_RETURN(
      round.rollout,
      rollout.Execute(round.plan.recommendations, &cluster_, &store_, now_,
                      [this](int hours) { return Simulate(hours); }));

  has_round_ = true;
  last_engine_ = std::make_unique<core::WhatIfEngine>(std::move(engine));
  last_fit_begin_ = begin;
  last_fit_end_ = round.fit_end;
  last_deploy_hour_ = deploy_hour;
  last_whatif_options_ = options.tuner.whatif;
  ++model_epoch_;
  // kNoChange rollouts never touch a machine; anything else changed the
  // fleet's applied configuration at least transiently.
  if (round.rollout.outcome != core::GuardrailedRollout::Outcome::kNoChange) {
    ++deploy_epoch_;
  }
  FinishRoundHealth(alarms_before, &round);
  return round;
}

StatusOr<KeaSession::GuardedRound> KeaSession::RunSafeModeRound(
    const GuardedRoundOptions& options) {
  KEA_TRACE_SPAN("session.round", {{"kind", "safe_mode"}});
  RoundsCounter()->Increment();
  const size_t alarms_before = TotalDriftAlarms();
  GuardedRound round;
  round.safe_mode = true;
  round.rollout.outcome = core::GuardrailedRollout::Outcome::kNoChange;
  round.fit_begin = last_fit_begin_;
  round.fit_end = last_fit_end_;
  if (model_health_->RefitDue(now_)) {
    round.refit_attempted = true;
    model_health_->BeginRefit();
    bool passed = AttemptRefit(options);
    model_health_->CompleteRefit(passed, now_);
    round.refit_passed = passed;
    if (passed && drift_ != nullptr) {
      // The post-drift regime is the new normal for every metric stream.
      drift_->Rearm();
    }
  }
  model_health_->NoteRound();
  round.health_state = core::ModelHealth::StateName(model_health_->state());
  round.drift_alarms = TotalDriftAlarms() - alarms_before;
  if (ledger_ != nullptr) {
    // Safe-mode rounds deploy nothing, but a passed refit moved the fit
    // window and breaker state — persist them.
    KEA_RETURN_IF_ERROR(WriteCheckpoint(ledger_->next_seq()));
  }
  return round;
}

bool KeaSession::AttemptRefit(const GuardedRoundOptions& options) {
  const core::ModelHealth::Options& health = model_health_->options();
  // Fit strictly post-drift telemetry: [max(trip, now - lookback), holdout),
  // with the stream's newest tail held out as the validation gate.
  sim::HourIndex holdout_begin = now_ - health.holdout_hours;
  sim::HourIndex fit_begin = std::max(0, now_ - health.refit_lookback_hours);
  if (model_health_->tripped_at() > fit_begin) {
    fit_begin = model_health_->tripped_at();
  }
  if (holdout_begin <= fit_begin) return false;  // Not enough post-drift data.

  StatusOr<core::WhatIfEngine> fitted = core::WhatIfEngine::Fit(
      store_, telemetry::HourRangeFilter(fit_begin, holdout_begin),
      options.tuner.whatif);
  if (!fitted.ok()) return false;

  core::ModelValidator::Options validator_options;
  validator_options.tolerance = health.validation_tolerance;
  core::ModelValidator validator(validator_options);
  StatusOr<core::ValidationReport> report =
      validator.Validate(fitted.value(), store_,
                         telemetry::HourRangeFilter(holdout_begin, now_));
  if (!report.ok()) return false;
  if (!report.value().models_valid || !report.value().unmodeled_groups.empty()) {
    return false;
  }

  // Gate passed: the refit becomes the session's validation engine and the
  // new known-good fit window.
  last_engine_ =
      std::make_unique<core::WhatIfEngine>(std::move(fitted).value());
  has_round_ = true;
  last_fit_begin_ = fit_begin;
  last_fit_end_ = holdout_begin;
  last_deploy_hour_ = holdout_begin;
  last_whatif_options_ = options.tuner.whatif;
  ++model_epoch_;
  return true;
}

void KeaSession::FinishRoundHealth(size_t alarms_before, GuardedRound* round) {
  if (model_health_ == nullptr) return;
  // Residual tracking: replay the round's models against the telemetry that
  // accrued after its deployment. Residual inflation trips the breaker just
  // like a drift alarm.
  if (last_engine_ != nullptr && now_ > last_deploy_hour_) {
    core::ModelValidator validator{core::ModelValidator::Options{}};
    StatusOr<core::ValidationReport> report = validator.Validate(
        *last_engine_, store_,
        telemetry::HourRangeFilter(last_deploy_hour_, now_));
    if (report.ok()) {
      model_health_->ObserveValidation(report.value(), now_);
    }
  }
  model_health_->NoteRound();
  round->health_state = core::ModelHealth::StateName(model_health_->state());
  round->drift_alarms = TotalDriftAlarms() - alarms_before;
}

StatusOr<KeaSession::GuardedRound> KeaSession::RunGuardedTuningRoundDurable(
    const GuardedRoundOptions& options) {
  const int64_t round_number = round_count_;
  const std::string round_key = "round/" + std::to_string(round_number);
  KEA_TRACE_SPAN("session.round", {{"kind", "durable"},
                                   {"round", std::to_string(round_number)}});
  RoundsCounter()->Increment();
  const size_t alarms_before = TotalDriftAlarms();
  GuardedRound round;
  sim::HourIndex start_hour = 0;
  std::unique_ptr<core::WhatIfEngine> fresh_engine;

  // --- ROUND_STARTED: journal the fit window and the full plan before any
  // machine is touched. On resume the journaled plan is the authority — the
  // clock has advanced into the rollout, so a refit would see a different
  // window and could propose a different plan.
  {
    const core::DeploymentLedger::Event* event =
        ledger_->Find(round_key + "/started");
    std::string payload;
    if (event != nullptr && event->seq < durable_seq_) {
      StepReplayedCounter()->Increment();
      payload = event->payload;  // Replay: checkpoint already covers it.
    } else {
      KEA_RETURN_IF_ERROR(CrashPoints::Check("session.round_started.pre"));
      uint64_t seq = 0;
      if (event != nullptr) {
        // Journaled but not yet checkpointed: re-drive from the record.
        StepRedrivenCounter()->Increment();
        payload = event->payload;
        seq = event->seq;
      } else {
        StepFreshCounter()->Increment();
        if (options.lookback_hours <= 0) {
          return Status::InvalidArgument("lookback_hours must be positive");
        }
        if (now_ == 0) {
          return Status::FailedPrecondition("simulate telemetry before tuning");
        }
        sim::HourIndex begin = std::max(0, now_ - options.lookback_hours);
        KEA_ASSIGN_OR_RETURN(
            core::WhatIfEngine engine,
            core::WhatIfEngine::Fit(
                store_, telemetry::HourRangeFilter(begin, now_),
                options.tuner.whatif));
        YarnConfigTuner tuner(options.tuner);
        YarnConfigTuner::Plan plan;
        KEA_ASSIGN_OR_RETURN(plan, tuner.ProposeFromEngine(engine, cluster_));
        KEA_RETURN_IF_ERROR(CheckPlanSane(plan));
        fresh_engine = std::make_unique<core::WhatIfEngine>(std::move(engine));
        payload = EncodeRoundStart(now_, begin, now_, plan);
        const core::DeploymentLedger::Event* appended = nullptr;
        KEA_ASSIGN_OR_RETURN(
            appended,
            ledger_->Append(core::DeploymentLedger::EventType::kRoundStarted,
                            round_key + "/started", payload));
        seq = appended->seq;
      }
      KEA_RETURN_IF_ERROR(
          CrashPoints::Check("session.round_started.post_record"));
      KEA_RETURN_IF_ERROR(WriteCheckpoint(seq + 1));
    }
    KEA_RETURN_IF_ERROR(DecodeRoundStart(payload, &start_hour,
                                         &round.fit_begin, &round.fit_end,
                                         &round.plan));
  }

  // --- Waves: the rollout drives itself through the ledger, checkpointing
  // after every journaled step. Simulate() must not checkpoint concurrently —
  // a mid-observation checkpoint would claim coverage of a step whose verdict
  // is not yet journaled.
  core::GuardrailedRollout::Options rollout_options = options.rollout;
  if (model_health_ != nullptr) {
    rollout_options.guardrails =
        model_health_->EffectiveGuardrails(rollout_options.guardrails);
  }
  core::GuardrailedRollout rollout(rollout_options);
  core::GuardrailedRollout::JournalContext context;
  context.ledger = ledger_.get();
  context.durable_seq = durable_seq_;
  context.round = static_cast<int>(round_number);
  context.checkpoint = [this](uint64_t covered_seq) {
    return WriteCheckpoint(covered_seq);
  };
  in_journaled_round_ = true;
  StatusOr<core::GuardrailedRollout::Report> executed = rollout.ExecuteJournaled(
      round.plan.recommendations, &cluster_, &store_, start_hour,
      [this](int hours) { return Simulate(hours); }, &context);
  in_journaled_round_ = false;
  if (!executed.ok()) return executed.status();
  round.rollout = std::move(executed).value();

  // --- ROUND_FINISHED: seal the outcome so the next round gets a new key.
  {
    const core::DeploymentLedger::Event* event =
        ledger_->Find(round_key + "/finished");
    if (event == nullptr || event->seq >= durable_seq_) {
      KEA_RETURN_IF_ERROR(CrashPoints::Check("session.round_finished.pre"));
      uint64_t seq = 0;
      if (event != nullptr) {
        StepRedrivenCounter()->Increment();
        seq = event->seq;
      } else {
        StepFreshCounter()->Increment();
        StateWriter outcome;
        outcome.PutInt(static_cast<int>(round.rollout.outcome));
        outcome.PutInt(round.rollout.tripped_wave);
        outcome.PutU64(round.rollout.machines_restored);
        const core::DeploymentLedger::Event* appended = nullptr;
        KEA_ASSIGN_OR_RETURN(
            appended,
            ledger_->Append(core::DeploymentLedger::EventType::kRoundFinished,
                            round_key + "/finished", outcome.Release()));
        seq = appended->seq;
      }
      KEA_RETURN_IF_ERROR(
          CrashPoints::Check("session.round_finished.post_record"));
      // Bookkeeping before the checkpoint so the round's completion is part
      // of the durable state the checkpoint claims to cover.
      round_count_ = round_number + 1;
      has_round_ = true;
      last_fit_begin_ = round.fit_begin;
      last_fit_end_ = round.fit_end;
      last_deploy_hour_ = start_hour;
      last_whatif_options_ = options.tuner.whatif;
      KEA_RETURN_IF_ERROR(WriteCheckpoint(seq + 1));
    } else {
      StepReplayedCounter()->Increment();
      round_count_ = round_number + 1;
      has_round_ = true;
      last_fit_begin_ = round.fit_begin;
      last_fit_end_ = round.fit_end;
      last_deploy_hour_ = start_hour;
      last_whatif_options_ = options.tuner.whatif;
    }
  }

  ++model_epoch_;
  if (round.rollout.outcome != core::GuardrailedRollout::Outcome::kNoChange) {
    ++deploy_epoch_;
  }
  if (fresh_engine != nullptr) {
    last_engine_ = std::move(fresh_engine);
  } else {
    // Resumed round: refit over the journaled window. The filter pins the
    // window, so the post-deploy telemetry that has accrued since does not
    // perturb the fit — the engine matches the uninterrupted run's.
    KEA_ASSIGN_OR_RETURN(
        core::WhatIfEngine engine,
        core::WhatIfEngine::Fit(
            store_,
            telemetry::HourRangeFilter(round.fit_begin, round.fit_end),
            options.tuner.whatif));
    last_engine_ = std::make_unique<core::WhatIfEngine>(std::move(engine));
  }
  FinishRoundHealth(alarms_before, &round);
  if (self_healing_enabled_) {
    // Persist the post-round breaker/residual state; without this a crash
    // here would resume with a pre-round ModelHealth.
    KEA_RETURN_IF_ERROR(WriteCheckpoint(ledger_->next_seq()));
  }
  return round;
}

namespace {

obs::Counter* FabricRunsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("session.fabric_runs");
  return c;
}

/// Wires the session's fleet-fault injector into the fabric's per-arm
/// down-hours attribution unless the caller supplied an accessor.
void WireDownHours(const sim::FleetFaultInjector* faults,
                   core::ExperimentFabric::Options* options) {
  if (options->down_hours || faults == nullptr) return;
  options->down_hours = [faults](const std::vector<int>& machine_ids) {
    return faults->DownHours(machine_ids);
  };
}

}  // namespace

StatusOr<core::ExperimentFabric::Report> KeaSession::RunExperimentFabric(
    const std::vector<core::FlightRequest>& requests,
    const FabricRoundOptions& options) {
  if (now_ == 0) {
    return Status::FailedPrecondition("simulate telemetry before flighting");
  }
  if (durability_mode_ == DurabilityMode::kDegraded) {
    return DegradedRefusal(degraded_reason_);
  }
  if (ledger_ != nullptr) {
    StatusOr<core::ExperimentFabric::Report> report =
        RunExperimentFabricDurable(requests, options);
    if (!report.ok() && IsStorageFailure(report.status())) {
      EnterDegradedMode(report.status());
    }
    return report;
  }
  KEA_TRACE_SPAN("session.fabric", {{"kind", "plain"},
                                    {"requests",
                                     std::to_string(requests.size())}});
  FabricRunsCounter()->Increment();
  core::ExperimentFabric::Options fabric_options = options.fabric;
  WireDownHours(fleet_faults_.get(), &fabric_options);
  core::ExperimentFabric fabric(fabric_options);
  StatusOr<core::ExperimentFabric::Report> report = fabric.Run(
      requests, &cluster_, &store_, now_,
      [this](int hours) { return Simulate(hours); }, nullptr);
  if (report.ok() && report.value().admitted > 0) {
    // Flights patched and restored machine config; anything cached against
    // the previous deploy epoch saw a fleet that no longer exists.
    ++deploy_epoch_;
  }
  return report;
}

StatusOr<core::ExperimentFabric::Report> KeaSession::RunExperimentFabricDurable(
    const std::vector<core::FlightRequest>& requests,
    const FabricRoundOptions& options) {
  const int64_t fabric_number = fabric_count_;
  const std::string fabric_key = "fab/" + std::to_string(fabric_number);
  KEA_TRACE_SPAN("session.fabric", {{"kind", "durable"},
                                    {"fabric", std::to_string(fabric_number)}});
  FabricRunsCounter()->Increment();
  sim::HourIndex start_hour = 0;

  // --- FABRIC_STARTED: seal the start hour and queue size before any flight
  // is touched. On resume the journaled start hour is the authority — the
  // clock has advanced into the run.
  {
    const core::DeploymentLedger::Event* event =
        ledger_->Find(fabric_key + "/started");
    std::string payload;
    if (event != nullptr && event->seq < durable_seq_) {
      StepReplayedCounter()->Increment();
      payload = event->payload;
    } else {
      KEA_RETURN_IF_ERROR(CrashPoints::Check("session.fabric_started.pre"));
      uint64_t seq = 0;
      if (event != nullptr) {
        StepRedrivenCounter()->Increment();
        payload = event->payload;
        seq = event->seq;
      } else {
        StepFreshCounter()->Increment();
        StateWriter w;
        w.PutI64(now_);
        w.PutU64(requests.size());
        payload = w.Release();
        const core::DeploymentLedger::Event* appended = nullptr;
        KEA_ASSIGN_OR_RETURN(
            appended,
            ledger_->Append(core::DeploymentLedger::EventType::kFabricStarted,
                            fabric_key + "/started", payload));
        seq = appended->seq;
      }
      KEA_RETURN_IF_ERROR(
          CrashPoints::Check("session.fabric_started.post_record"));
      KEA_RETURN_IF_ERROR(WriteCheckpoint(seq + 1));
    }
    StateReader r(payload);
    int64_t start = 0;
    uint64_t queue_size = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&start));
    KEA_RETURN_IF_ERROR(r.GetU64(&queue_size));
    if (queue_size != requests.size()) {
      return Status::FailedPrecondition(
          "resumed fabric run " + std::to_string(fabric_number) + " had " +
          std::to_string(queue_size) + " requests, got " +
          std::to_string(requests.size()) +
          " — resume must pass the same queue");
    }
    start_hour = static_cast<sim::HourIndex>(start);
  }

  // --- Flights: the fabric drives itself through the ledger under
  // "fab<n>/..." keys, checkpointing after every journaled step. Simulate()
  // must not checkpoint concurrently (same contract as guarded rounds).
  core::ExperimentFabric::Options fabric_options = options.fabric;
  WireDownHours(fleet_faults_.get(), &fabric_options);
  core::ExperimentFabric fabric(fabric_options);
  core::ExperimentFabric::JournalContext context;
  context.ledger = ledger_.get();
  context.durable_seq = durable_seq_;
  context.round = static_cast<int>(fabric_number);
  context.checkpoint = [this](uint64_t covered_seq) {
    return WriteCheckpoint(covered_seq);
  };
  in_journaled_round_ = true;
  StatusOr<core::ExperimentFabric::Report> executed = fabric.Run(
      requests, &cluster_, &store_, start_hour,
      [this](int hours) { return Simulate(hours); }, &context);
  in_journaled_round_ = false;
  if (!executed.ok()) return executed.status();
  core::ExperimentFabric::Report report = std::move(executed).value();

  // --- FABRIC_FINISHED: seal the outcome so the next run gets new keys.
  {
    const core::DeploymentLedger::Event* event =
        ledger_->Find(fabric_key + "/finished");
    if (event == nullptr || event->seq >= durable_seq_) {
      KEA_RETURN_IF_ERROR(CrashPoints::Check("session.fabric_finished.pre"));
      uint64_t seq = 0;
      if (event != nullptr) {
        StepRedrivenCounter()->Increment();
        seq = event->seq;
      } else {
        StepFreshCounter()->Increment();
        StateWriter outcome;
        outcome.PutU64(report.admitted);
        outcome.PutU64(report.rejected);
        outcome.PutU64(report.trips);
        outcome.PutU64(report.max_concurrent);
        outcome.PutU64(report.peak_flighted_machines);
        outcome.PutI64(report.end_hour);
        const core::DeploymentLedger::Event* appended = nullptr;
        KEA_ASSIGN_OR_RETURN(
            appended,
            ledger_->Append(core::DeploymentLedger::EventType::kFabricFinished,
                            fabric_key + "/finished", outcome.Release()));
        seq = appended->seq;
      }
      KEA_RETURN_IF_ERROR(
          CrashPoints::Check("session.fabric_finished.post_record"));
      // Bookkeeping before the checkpoint so the run's completion is part of
      // the durable state the checkpoint claims to cover.
      fabric_count_ = fabric_number + 1;
      KEA_RETURN_IF_ERROR(WriteCheckpoint(seq + 1));
    } else {
      StepReplayedCounter()->Increment();
      fabric_count_ = fabric_number + 1;
    }
  }
  if (report.admitted > 0) ++deploy_epoch_;
  return report;
}

StatusOr<core::ValidationReport> KeaSession::ValidateModels(
    const core::ModelValidator::Options& options) const {
  if (!has_round_) {
    return Status::FailedPrecondition("no tuning round to validate");
  }
  if (now_ <= last_deploy_hour_) {
    return Status::FailedPrecondition(
        "simulate post-deployment telemetry before validating");
  }
  core::ModelValidator validator(options);
  return validator.Validate(*last_engine_, store_,
                            telemetry::HourRangeFilter(last_deploy_hour_, now_));
}

Status KeaSession::RollbackLastDeployment() {
  if (durability_mode_ == DurabilityMode::kDegraded) {
    return DegradedRefusal(degraded_reason_);
  }
  KEA_RETURN_IF_ERROR(deployment_.RollbackLast(&cluster_));
  ++deploy_epoch_;
  if (ledger_ != nullptr && !in_journaled_round_) {
    Status written = WriteCheckpoint(ledger_->next_seq());
    if (!written.ok()) {
      if (!IsStorageFailure(written)) return written;
      // The rollback is journaled; only its checkpoint is missing.
      EnterDegradedMode(written);
    }
  }
  return Status::OK();
}

StatusOr<CapacityConverter::Report> KeaSession::EstimateCapacityValue(
    const CapacityConverter::Options& options) const {
  if (!has_round_) {
    return Status::FailedPrecondition("no tuning round to value");
  }
  if (now_ <= last_deploy_hour_) {
    return Status::FailedPrecondition(
        "simulate post-deployment telemetry before valuation");
  }
  CapacityConverter converter(options);
  return converter.FromWindows(
      store_, telemetry::HourRangeFilter(last_fit_begin_, last_deploy_hour_),
      telemetry::HourRangeFilter(last_deploy_hour_, now_));
}

}  // namespace kea::apps
