#include "apps/experiment_planner.h"

#include <cmath>
#include <map>

#include "ml/stats.h"
#include "telemetry/perf_monitor.h"

namespace kea::apps {

StatusOr<ExperimentPlanner::Plan> ExperimentPlanner::PlanDataReadExperiment(
    const telemetry::TelemetryStore& store, const sim::Cluster& cluster,
    sim::SkuId sku) const {
  if (options_.min_detectable_effect <= 0.0 ||
      options_.min_detectable_effect >= 1.0) {
    return Status::InvalidArgument("min_detectable_effect must be in (0, 1)");
  }
  if (options_.max_days <= 0) {
    return Status::InvalidArgument("max_days must be positive");
  }

  // Per-machine-day Total Data Read for the SKU.
  auto daily = telemetry::RollUpDaily(
      store, [sku](const telemetry::MachineHourRecord& r) { return r.sku == sku; });
  std::vector<double> per_day;
  per_day.reserve(daily.size());
  for (const auto& d : daily) {
    if (d.data_read_mb > 0.0) per_day.push_back(d.data_read_mb);
  }
  if (per_day.size() < 30) {
    return Status::FailedPrecondition(
        "need >= 30 machine-days of telemetry for the SKU to estimate noise");
  }
  KEA_ASSIGN_OR_RETURN(ml::Summary summary, ml::Summarize(per_day));
  if (summary.mean <= 0.0) {
    return Status::FailedPrecondition("degenerate data-read telemetry");
  }
  // Zero-variance (constant) telemetry would make the power analysis demand a
  // 0-machine arm / report an infinite MDE. There is nothing to detect an
  // effect against; reject the plan outright instead of emitting a degenerate
  // one.
  if (!std::isfinite(summary.stddev) || summary.stddev <= 0.0) {
    return Status::FailedPrecondition(
        "data-read telemetry for the SKU has zero variance (constant "
        "machine-days) — cannot size an experiment against zero noise");
  }

  Plan plan;
  plan.sku = sku;
  plan.relative_stddev = summary.stddev / summary.mean;

  // Work in relative units: detect `min_detectable_effect` against
  // `relative_stddev` noise.
  KEA_ASSIGN_OR_RETURN(
      plan.machine_days_per_arm,
      core::RequiredSampleSizePerArm(options_.min_detectable_effect,
                                     plan.relative_stddev, options_.power));

  // Concrete shape: prefer more machines over more days (faster answers);
  // at the day budget, scale machines.
  int available = 0;
  for (const sim::Machine& m : cluster.machines()) {
    if (m.sku == sku) ++available;
  }
  int per_arm_budget = available / 2;

  int days = 1;
  int machines = static_cast<int>(plan.machine_days_per_arm);
  while (machines > per_arm_budget && days < options_.max_days) {
    ++days;
    machines = static_cast<int>(
        std::ceil(static_cast<double>(plan.machine_days_per_arm) / days));
  }
  plan.days = days;
  plan.machines_per_arm = machines;
  plan.feasible = machines <= per_arm_budget && per_arm_budget > 0;

  int64_t actual_n = static_cast<int64_t>(plan.machines_per_arm) * plan.days;
  KEA_ASSIGN_OR_RETURN(plan.achieved_mde,
                       core::MinimumDetectableEffect(std::max<int64_t>(actual_n, 2),
                                                     plan.relative_stddev,
                                                     options_.power));
  return plan;
}

ExperimentPlanner::BatchPlan ExperimentPlanner::PlanDataReadBatch(
    const telemetry::TelemetryStore& store, const sim::Cluster& cluster,
    const std::vector<sim::SkuId>& skus) const {
  BatchPlan batch;
  for (sim::SkuId sku : skus) {
    StatusOr<Plan> plan = PlanDataReadExperiment(store, cluster, sku);
    if (!plan.ok()) {
      batch.skipped.emplace_back(sku, plan.status().message());
      continue;
    }
    if (!plan.value().feasible) {
      batch.skipped.emplace_back(
          sku, "not enough machines of the SKU for two arms");
      continue;
    }
    batch.plans.push_back(std::move(plan).value());
  }
  return batch;
}

std::vector<core::FlightRequest> ExperimentPlanner::ToFlightRequests(
    const BatchPlan& batch, const core::ConfigPatch& treatment,
    int window_hours) {
  std::vector<core::FlightRequest> requests;
  if (window_hours <= 0) return requests;
  requests.reserve(batch.plans.size());
  for (const Plan& plan : batch.plans) {
    core::FlightRequest req;
    req.name = "data-read-sku" + std::to_string(plan.sku);
    req.sku = plan.sku;
    req.treatment = treatment;
    req.machines_per_arm = plan.machines_per_arm;
    req.window_hours = window_hours;
    // The planned horizon in whole guardrail windows; a partial trailing
    // window is dropped, never fabricated.
    req.num_windows = std::max(1, (plan.days * 24) / window_hours);
    requests.push_back(std::move(req));
  }
  return requests;
}

}  // namespace kea::apps
