#include "apps/yarn_tuner.h"

#include <cmath>

#include "opt/lp.h"
#include "opt/search.h"

namespace kea::apps {

StatusOr<std::map<sim::MachineGroupKey, int>> YarnConfigTuner::ConfiguredMax(
    const sim::Cluster& cluster) {
  std::map<sim::MachineGroupKey, int> out;
  for (const auto& [key, ids] : cluster.groups()) {
    if (ids.empty()) continue;
    out[key] = cluster.machines()[static_cast<size_t>(ids.front())].max_containers;
  }
  if (out.empty()) return Status::FailedPrecondition("cluster has no machine groups");
  return out;
}

StatusOr<YarnConfigTuner::Plan> YarnConfigTuner::Propose(
    const telemetry::TelemetryStore& store, const telemetry::RecordFilter& filter,
    const sim::Cluster& cluster) const {
  KEA_ASSIGN_OR_RETURN(core::WhatIfEngine engine,
                       core::WhatIfEngine::Fit(store, filter, options_.whatif));
  return ProposeFromEngine(engine, cluster);
}

StatusOr<YarnConfigTuner::Plan> YarnConfigTuner::ProposeFromEngine(
    const core::WhatIfEngine& engine, const sim::Cluster& cluster) const {
  const auto& models = engine.models();
  if (models.empty()) return Status::FailedPrecondition("engine has no models");
  KEA_ASSIGN_OR_RETURN(auto configured_max, ConfiguredMax(cluster));

  const size_t k_count = models.size();
  std::vector<sim::MachineGroupKey> keys;
  keys.reserve(k_count);
  for (const auto& [key, gm] : models) keys.push_back(key);

  // Linearized latency coefficients: w_k(m) = a_k + b_k m with the
  // throughput weights L_k n_k frozen at the current operating point.
  std::vector<double> a(k_count), b(k_count), weight(k_count);
  std::vector<double> current(k_count), n(k_count);
  double weight_total = 0.0;
  for (size_t i = 0; i < k_count; ++i) {
    const core::GroupModels& gm = models.at(keys[i]);
    double g0 = gm.g.intercept();
    double g1 = gm.g.coefficients()[0];
    double f0 = gm.f.intercept();
    double f1 = gm.f.coefficients()[0];
    a[i] = f0 + f1 * g0;
    b[i] = f1 * g1;
    current[i] = gm.current_containers;
    n[i] = static_cast<double>(gm.num_machines);
    weight[i] = gm.current_tasks_per_hour * n[i];
    weight_total += weight[i];
  }
  if (weight_total <= 0.0) {
    return Status::FailedPrecondition("zero task throughput in telemetry");
  }

  // W-bar' under the same linearization, so the current point is feasible by
  // construction.
  double current_latency = 0.0;
  for (size_t i = 0; i < k_count; ++i) {
    current_latency += (a[i] + b[i] * current[i]) * weight[i];
  }
  current_latency /= weight_total;

  opt::LpProblem lp(k_count, opt::LpDirection::kMaximize);
  for (size_t i = 0; i < k_count; ++i) {
    KEA_RETURN_IF_ERROR(lp.SetObjectiveCoefficient(i, n[i]));
    double lo = std::max(static_cast<double>(options_.min_containers),
                         current[i] - options_.max_step);
    double hi = current[i] + options_.max_step;
    KEA_RETURN_IF_ERROR(lp.SetBounds(i, lo, hi));
  }

  // Latency constraint: sum_k (a_k + b_k m_k) weight_k <= slack * W' * total.
  opt::LpConstraint latency;
  latency.name = "cluster_avg_latency";
  latency.coefficients.assign(k_count, 0.0);
  latency.sense = opt::ConstraintSense::kLessEqual;
  latency.rhs = options_.latency_slack * current_latency * weight_total;
  for (size_t i = 0; i < k_count; ++i) {
    latency.coefficients[i] = b[i] * weight[i];
    latency.rhs -= a[i] * weight[i];
  }
  KEA_RETURN_IF_ERROR(lp.AddConstraint(std::move(latency)));

  // Per-group predicted utilization cap: g0 + g1 m <= max_utilization.
  for (size_t i = 0; i < k_count; ++i) {
    const core::GroupModels& gm = models.at(keys[i]);
    double g1 = gm.g.coefficients()[0];
    if (g1 <= 0.0) continue;  // A flat/negative fit can't bind meaningfully.
    opt::LpConstraint util;
    util.name = "util_" + sim::GroupLabel(keys[i]);
    util.coefficients.assign(k_count, 0.0);
    util.coefficients[i] = g1;
    util.sense = opt::ConstraintSense::kLessEqual;
    util.rhs = options_.max_utilization - gm.g.intercept();
    KEA_RETURN_IF_ERROR(lp.AddConstraint(std::move(util)));
  }

  opt::SimplexSolver solver;
  KEA_ASSIGN_OR_RETURN(opt::LpSolution solution, solver.Solve(lp));

  Plan plan;
  double capacity_before = 0.0, capacity_after = 0.0;
  std::map<sim::MachineGroupKey, double> proposed;
  for (size_t i = 0; i < k_count; ++i) {
    plan.lp_solution[keys[i]] = solution.x[i];
    proposed[keys[i]] = solution.x[i];
    capacity_before += current[i] * n[i];
    capacity_after += solution.x[i] * n[i];

    int delta = static_cast<int>(std::lround(solution.x[i] - current[i]));
    auto it = configured_max.find(keys[i]);
    if (it == configured_max.end()) continue;
    core::GroupRecommendation rec;
    rec.group = keys[i];
    rec.current_max_containers = it->second;
    rec.recommended_max_containers = std::max(options_.min_containers,
                                              it->second + delta);
    plan.recommendations.push_back(rec);
  }
  plan.predicted_capacity_gain = capacity_after / capacity_before - 1.0;

  // Report the *exact* (unlinearized) model prediction for both points.
  std::map<sim::MachineGroupKey, double> current_map;
  for (size_t i = 0; i < k_count; ++i) current_map[keys[i]] = current[i];
  KEA_ASSIGN_OR_RETURN(plan.predicted_latency_before_s,
                       engine.PredictClusterLatency(current_map));
  KEA_ASSIGN_OR_RETURN(plan.predicted_latency_after_s,
                       engine.PredictClusterLatency(proposed));
  return plan;
}

StatusOr<YarnConfigTuner::SimulatedPlanOutcome> YarnConfigTuner::SimulatePlan(
    const Plan& plan, const sim::PerfModel* model, const sim::Cluster& base,
    const sim::WorkloadModel* workload, const sim::SweepOptions& sweep) const {
  if (plan.recommendations.empty()) {
    return Status::InvalidArgument("plan has no recommendations to simulate");
  }

  std::vector<core::GroupRecommendation> recs = plan.recommendations;
  std::vector<sim::SweepCandidate> candidates;
  candidates.push_back({"current", nullptr});
  candidates.push_back({"proposed", [recs](sim::Cluster* cluster) {
                          for (const auto& rec : recs) {
                            KEA_RETURN_IF_ERROR(cluster->SetGroupMaxContainers(
                                rec.group, rec.recommended_max_containers));
                          }
                          return Status::OK();
                        }});

  KEA_ASSIGN_OR_RETURN(std::vector<sim::SweepSummary> summaries,
                       sim::RunConfigSweep(model, base, workload, candidates, sweep));

  SimulatedPlanOutcome outcome;
  outcome.current = std::move(summaries[0]);
  outcome.proposed = std::move(summaries[1]);
  if (outcome.current.mean_task_latency_s > 0.0) {
    outcome.latency_change = outcome.proposed.mean_task_latency_s /
                                 outcome.current.mean_task_latency_s -
                             1.0;
  }
  if (outcome.current.total_tasks > 0.0) {
    outcome.throughput_change =
        outcome.proposed.total_tasks / outcome.current.total_tasks - 1.0;
  }
  return outcome;
}

StatusOr<YarnConfigTuner::Plan> YarnConfigTuner::ProposeExact(
    const core::WhatIfEngine& engine, const sim::Cluster& cluster) const {
  const auto& models = engine.models();
  if (models.empty()) return Status::FailedPrecondition("engine has no models");
  KEA_ASSIGN_OR_RETURN(auto configured_max, ConfiguredMax(cluster));

  std::vector<sim::MachineGroupKey> keys;
  std::vector<double> current, n;
  for (const auto& [key, gm] : models) {
    keys.push_back(key);
    current.push_back(gm.current_containers);
    n.push_back(static_cast<double>(gm.num_machines));
  }
  const size_t k_count = keys.size();

  std::map<sim::MachineGroupKey, double> current_map;
  for (size_t i = 0; i < k_count; ++i) current_map[keys[i]] = current[i];
  KEA_ASSIGN_OR_RETURN(double latency_budget,
                       engine.PredictClusterLatency(current_map));
  latency_budget *= options_.latency_slack;

  auto to_map = [&](const std::vector<int>& deltas) {
    std::map<sim::MachineGroupKey, double> m;
    for (size_t i = 0; i < k_count; ++i) {
      m[keys[i]] = std::max(static_cast<double>(options_.min_containers),
                            current[i] + deltas[i]);
    }
    return m;
  };

  auto objective = [&](const std::vector<int>& deltas) {
    double total = 0.0;
    for (size_t i = 0; i < k_count; ++i) {
      total += std::max(static_cast<double>(options_.min_containers),
                        current[i] + deltas[i]) *
               n[i];
    }
    return total;
  };
  auto feasible = [&](const std::vector<int>& deltas) {
    auto m = to_map(deltas);
    for (size_t i = 0; i < k_count; ++i) {
      auto util = engine.PredictUtilization(keys[i], m[keys[i]]);
      if (!util.ok() || util.value() > options_.max_utilization) return false;
    }
    auto latency = engine.PredictClusterLatency(m);
    return latency.ok() && latency.value() <= latency_budget + 1e-12;
  };

  opt::IntegerDomain domain;
  domain.lo.assign(k_count, -options_.max_step);
  domain.hi.assign(k_count, options_.max_step);

  constexpr size_t kExhaustiveCap = 300'000;
  StatusOr<opt::SearchResult> search = Status::Internal("unset");
  if (domain.CardinalityCapped(kExhaustiveCap) <= kExhaustiveCap) {
    search = opt::ExhaustiveSearch(domain, objective, feasible, kExhaustiveCap);
  } else {
    std::vector<int> start(k_count, 0);
    search = opt::CoordinateAscent(domain, start, objective, feasible);
  }
  KEA_RETURN_IF_ERROR(search.status());
  const opt::SearchResult& best = search.value();

  Plan plan;
  double capacity_before = 0.0;
  for (size_t i = 0; i < k_count; ++i) capacity_before += current[i] * n[i];
  plan.predicted_capacity_gain = best.objective_value / capacity_before - 1.0;
  auto best_map = to_map(best.x);
  for (size_t i = 0; i < k_count; ++i) {
    plan.lp_solution[keys[i]] = best_map[keys[i]];
    auto it = configured_max.find(keys[i]);
    if (it == configured_max.end()) continue;
    core::GroupRecommendation rec;
    rec.group = keys[i];
    rec.current_max_containers = it->second;
    rec.recommended_max_containers =
        std::max(options_.min_containers, it->second + best.x[i]);
    plan.recommendations.push_back(rec);
  }
  KEA_ASSIGN_OR_RETURN(plan.predicted_latency_before_s,
                       engine.PredictClusterLatency(current_map));
  KEA_ASSIGN_OR_RETURN(plan.predicted_latency_after_s,
                       engine.PredictClusterLatency(best_map));
  return plan;
}

}  // namespace kea::apps
