#include "apps/sku_designer.h"

#include <algorithm>
#include <cmath>

#include "opt/montecarlo.h"

namespace kea::apps {

SkuDesigner::Options SkuDesigner::Options::Default() {
  Options o;
  for (double ssd = 400.0; ssd <= 1600.0 + 1e-9; ssd += 200.0) {
    o.ssd_candidates_gb.push_back(ssd);
  }
  for (double ram = 200.0; ram <= 800.0 + 1e-9; ram += 100.0) {
    o.ram_candidates_gb.push_back(ram);
  }
  return o;
}

StatusOr<SkuDesigner::Result> SkuDesigner::Design(
    const telemetry::TelemetryStore& store, const telemetry::RecordFilter& filter,
    Rng* rng) const {
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (options_.ssd_candidates_gb.empty() || options_.ram_candidates_gb.empty()) {
    return Status::InvalidArgument("empty candidate grids");
  }
  if (options_.new_machine_cores <= 0) {
    return Status::InvalidArgument("new machine cores must be positive");
  }

  const bool use_nic = !options_.nic_candidates_mbps.empty();

  // Usable observations: machine-hours with enough busy cores to identify
  // the per-core slope.
  std::vector<double> cores, ssd, ram, nic;
  for (const auto& r : store.records()) {
    if (filter && !filter(r)) continue;
    if (r.cores_used < 1.0) continue;
    cores.push_back(r.cores_used);
    ssd.push_back(r.ssd_used_gb);
    ram.push_back(r.ram_used_gb);
    nic.push_back(r.network_used_mbps);
  }
  if (cores.size() < 50) {
    return Status::FailedPrecondition("not enough busy machine-hours to fit p, q");
  }

  Result result;
  ml::LinearRegressor regressor;
  KEA_ASSIGN_OR_RETURN(result.p, regressor.Fit(ml::MakeDataset1D(cores, ssd)));
  KEA_ASSIGN_OR_RETURN(result.q, regressor.Fit(ml::MakeDataset1D(cores, ram)));
  KEA_ASSIGN_OR_RETURN(result.p_fit,
                       ml::Evaluate(result.p, ml::MakeDataset1D(cores, ssd)));
  KEA_ASSIGN_OR_RETURN(result.q_fit,
                       ml::Evaluate(result.q, ml::MakeDataset1D(cores, ram)));
  if (use_nic) {
    KEA_ASSIGN_OR_RETURN(result.n, regressor.Fit(ml::MakeDataset1D(cores, nic)));
    KEA_ASSIGN_OR_RETURN(result.n_fit,
                         ml::Evaluate(result.n, ml::MakeDataset1D(cores, nic)));
  }

  // Per-observation slopes beta = (usage - alpha) / cores form the empirical
  // distributions the Monte-Carlo draws from ("drawing random numbers beta_s
  // and beta_r from the observational data").
  double alpha_s = result.p.intercept();
  double alpha_r = result.q.intercept();
  double alpha_n = use_nic ? result.n.intercept() : 0.0;
  std::vector<double> beta_s_samples, beta_r_samples, beta_n_samples;
  beta_s_samples.reserve(cores.size());
  beta_r_samples.reserve(cores.size());
  for (size_t i = 0; i < cores.size(); ++i) {
    beta_s_samples.push_back(std::max(0.0, (ssd[i] - alpha_s) / cores[i]));
    beta_r_samples.push_back(std::max(0.0, (ram[i] - alpha_r) / cores[i]));
    if (use_nic) {
      beta_n_samples.push_back(std::max(0.0, (nic[i] - alpha_n) / cores[i]));
    }
  }
  KEA_ASSIGN_OR_RETURN(ml::EmpiricalDistribution beta_s,
                       ml::EmpiricalDistribution::FromSamples(beta_s_samples));
  KEA_ASSIGN_OR_RETURN(ml::EmpiricalDistribution beta_r,
                       ml::EmpiricalDistribution::FromSamples(beta_r_samples));
  ml::EmpiricalDistribution beta_n = beta_s;  // Placeholder when !use_nic.
  if (use_nic) {
    KEA_ASSIGN_OR_RETURN(beta_n,
                         ml::EmpiricalDistribution::FromSamples(beta_n_samples));
  }

  const double total_cores = static_cast<double>(options_.new_machine_cores);

  constexpr double kUnbounded = 1e18;

  // One Monte-Carlo draw of the cost of design (S, R, N); also tallies
  // stranding events through the out-parameters. N = kUnbounded disables the
  // NIC dimension.
  auto draw_cost = [&](double S, double R, double N, Rng* r, bool* out_ssd,
                       bool* out_ram, bool* out_nic) {
    double bs = std::max(beta_s.Sample(r), 1e-6);
    double br = std::max(beta_r.Sample(r), 1e-6);
    double bn = use_nic ? std::max(beta_n.Sample(r), 1e-6) : 1e-6;
    // Max cores supportable by each resource: inverse of the projections
    // with the drawn slopes.
    double c_ssd = (S - alpha_s) / bs;
    double c_ram = (R - alpha_r) / br;
    double c_nic = use_nic ? (N - alpha_n) / bn : kUnbounded;
    double c = std::min({total_cores, c_ssd, c_ram, c_nic});
    c = std::max(c, 0.0);

    double idle_cores = total_cores - c;
    double idle_ssd = std::max(0.0, S - (alpha_s + bs * c));
    double idle_ram = std::max(0.0, R - (alpha_r + br * c));
    double idle_nic = use_nic ? std::max(0.0, N - (alpha_n + bn * c)) : 0.0;

    double cost = idle_cores * options_.cost_per_idle_core +
                  idle_ssd * options_.cost_per_idle_ssd_gb +
                  idle_ram * options_.cost_per_idle_ram_gb +
                  idle_nic * options_.cost_per_idle_nic_mbps;
    // Stranded: the binding resource is exhausted while cores remain idle.
    double binding = std::min({c_ssd, c_ram, c_nic});
    if (binding < total_cores) {
      if (c_ssd <= binding + 1e-12) {
        cost += options_.out_of_ssd_penalty;
        *out_ssd = true;
      } else if (c_ram <= binding + 1e-12) {
        cost += options_.out_of_ram_penalty;
        *out_ram = true;
      } else {
        cost += options_.out_of_nic_penalty;
        *out_nic = true;
      }
    }
    return cost;
  };

  std::vector<double> nic_candidates = options_.nic_candidates_mbps;
  if (!use_nic) nic_candidates = {kUnbounded};

  // Flatten the (SSD x RAM x NIC) grid so the Monte-Carlo runs as one
  // parallel candidate loop — the paper's 1000 draws per candidate are
  // independent across candidates, and EstimateOverGrid gives each one its
  // own RNG substream.
  struct Candidate {
    double ssd, ram, nic;
  };
  std::vector<Candidate> candidates;
  candidates.reserve(options_.ssd_candidates_gb.size() *
                     options_.ram_candidates_gb.size() * nic_candidates.size());
  for (double S : options_.ssd_candidates_gb) {
    for (double R : options_.ram_candidates_gb) {
      for (double N : nic_candidates) {
        candidates.push_back({S, R, N});
      }
    }
  }

  // Stranding tallies per candidate; each slot is only ever touched by the
  // one task evaluating that candidate, so the loop stays race-free.
  std::vector<int> ssd_strand(candidates.size(), 0);
  std::vector<int> ram_strand(candidates.size(), 0);
  std::vector<int> nic_strand(candidates.size(), 0);
  auto grid_sample = [&](size_t i, Rng* r) {
    bool os = false, orm = false, on = false;
    double cost =
        draw_cost(candidates[i].ssd, candidates[i].ram, candidates[i].nic, r,
                  &os, &orm, &on);
    if (os) ++ssd_strand[i];
    if (orm) ++ram_strand[i];
    if (on) ++nic_strand[i];
    return cost;
  };
  opt::GridOptions grid_options;
  grid_options.num_threads = options_.num_threads;
  KEA_ASSIGN_OR_RETURN(
      opt::GridEstimate grid,
      opt::EstimateOverGrid(candidates.size(), grid_sample,
                            options_.mc_iterations, rng, grid_options));

  result.surface.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    const opt::MonteCarloEstimate& estimate = grid.estimates[i];
    DesignPoint point;
    point.ssd_gb = candidates[i].ssd;
    point.ram_gb = candidates[i].ram;
    point.nic_mbps = use_nic ? candidates[i].nic : 0.0;
    point.expected_cost = estimate.mean;
    point.standard_error = estimate.standard_error;
    double iters = static_cast<double>(estimate.iterations);
    point.p_out_of_ssd = static_cast<double>(ssd_strand[i]) / iters;
    point.p_out_of_ram = static_cast<double>(ram_strand[i]) / iters;
    point.p_out_of_nic = static_cast<double>(nic_strand[i]) / iters;
    result.surface.push_back(point);
  }
  result.best_index = grid.best_index;
  return result;
}

StatusOr<telemetry::TelemetryStore> SkuDesigner::SimulateDesignTelemetry(
    const sim::PerfModel* model, const sim::Cluster& base,
    const sim::WorkloadModel* workload, const std::vector<double>& capacity_scales,
    const sim::SweepOptions& sweep) {
  if (capacity_scales.empty()) {
    return Status::InvalidArgument("empty capacity scale sweep");
  }
  std::vector<sim::SweepCandidate> candidates;
  candidates.reserve(capacity_scales.size());
  for (double scale : capacity_scales) {
    if (scale <= 0.0) {
      return Status::InvalidArgument("capacity scales must be positive");
    }
    candidates.push_back(
        {"capacity_x" + std::to_string(scale), [scale](sim::Cluster* cluster) {
           for (sim::Machine& m : cluster->mutable_machines()) {
             m.max_containers = std::max(
                 1, static_cast<int>(std::lround(m.max_containers * scale)));
           }
           return Status::OK();
         }});
  }
  KEA_ASSIGN_OR_RETURN(
      std::vector<telemetry::TelemetryStore> stores,
      sim::RunConfigSweepTelemetry(model, base, workload, candidates, sweep));
  telemetry::TelemetryStore merged;
  for (const telemetry::TelemetryStore& store : stores) {
    merged.AppendAll(store.records());
  }
  return merged;
}

}  // namespace kea::apps
