#ifndef KEA_APPS_EXPERIMENT_PLANNER_H_
#define KEA_APPS_EXPERIMENT_PLANNER_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/experiment_fabric.h"
#include "core/power_analysis.h"
#include "sim/cluster.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Sizes an experimental-tuning study before running it (Section 7: a fair
/// comparison needs controlled variables *and* "a relatively large sample
/// size"). From telemetry, estimates the per-machine-day noise of the target
/// metric for one SKU, then uses power analysis to recommend how many
/// machines x days each arm needs to detect a given effect.
class ExperimentPlanner {
 public:
  struct Options {
    /// Smallest relative effect the experiment must detect (e.g. 0.01 = 1%).
    double min_detectable_effect = 0.01;
    core::PowerAnalysis power;
    /// Maximum workdays an experiment may run (the paper's studies run 1-5).
    int max_days = 10;
  };

  struct Plan {
    sim::SkuId sku = 0;
    /// Estimated per-machine-day relative standard deviation of the metric.
    double relative_stddev = 0.0;
    /// Machine-day observations needed per arm.
    int64_t machine_days_per_arm = 0;
    /// A concrete (machines, days) recommendation within the day budget.
    int machines_per_arm = 0;
    int days = 0;
    /// Whether the cluster has enough machines of the SKU for two arms.
    bool feasible = false;
    /// The effect actually detectable with the recommended shape.
    double achieved_mde = 0.0;
  };

  ExperimentPlanner() : options_(Options()) {}
  explicit ExperimentPlanner(const Options& options) : options_(options) {}

  /// Plans an A/B experiment on `sku` using `store` to estimate the noise of
  /// per-machine-day Total Data Read. Returns FailedPrecondition when the
  /// telemetry has too few machine-days of the SKU, InvalidArgument on bad
  /// options.
  StatusOr<Plan> PlanDataReadExperiment(const telemetry::TelemetryStore& store,
                                        const sim::Cluster& cluster,
                                        sim::SkuId sku) const;

  /// A batch of plans destined for the concurrent experiment fabric: the
  /// feasible plans, plus every SKU that could not be planned with the reason
  /// (too little telemetry, zero variance, not enough machines). A SKU that
  /// fails to plan never silently disappears from the queue.
  struct BatchPlan {
    std::vector<Plan> plans;
    std::vector<std::pair<sim::SkuId, std::string>> skipped;
  };

  /// Plans one data-read experiment per SKU. Per-SKU failures are collected
  /// in `skipped`, not returned as errors — a fleet-wide batch must survive
  /// individual degenerate SKUs.
  BatchPlan PlanDataReadBatch(const telemetry::TelemetryStore& store,
                              const sim::Cluster& cluster,
                              const std::vector<sim::SkuId>& skus) const;

  /// Converts the feasible plans of a batch into fabric flight requests: one
  /// request per plan, arms sized by the plan, horizon = plan.days sliced
  /// into `window_hours` guardrail windows (partial trailing windows are
  /// dropped, mirroring TimeSlicingSchedule).
  static std::vector<core::FlightRequest> ToFlightRequests(
      const BatchPlan& batch, const core::ConfigPatch& treatment,
      int window_hours = 6);

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_EXPERIMENT_PLANNER_H_
