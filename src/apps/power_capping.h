#ifndef KEA_APPS_POWER_CAPPING_H_
#define KEA_APPS_POWER_CAPPING_H_

#include <vector>

#include "common/status.h"
#include "sim/cluster.h"
#include "sim/fluid_engine.h"
#include "sim/perf_model.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Experimental tuning: power capping (Section 7.2). For each capping level,
/// four machine groups of the same SKU run concurrently for a round
/// (hybrid setting — chassis-level capping makes the ideal setting
/// impossible):
///   A: no capping, Feature off (baseline)
///   B: no capping, Feature on
///   C: capping,    Feature off
///   D: capping,    Feature on
/// Performance is compared with *normalized* metrics (Bytes per CPU Time,
/// Bytes per Second) that are robust to load level, and each round's cells
/// are benchmarked against its own group A (Figure 15).
class PowerCappingStudy {
 public:
  struct Options {
    sim::SkuId sku = 4;  ///< Default: Gen3.2.
    /// Cap levels as fractions below the provisioned level.
    std::vector<double> cap_levels = {0.10, 0.15, 0.20, 0.25, 0.30};
    /// Machines per group (the paper uses 120).
    int group_size = 120;
    /// Hours per experiment round ("more than 24 hours").
    int hours_per_round = 26;
  };

  /// One (cap level, feature) cell of Figure 15.
  struct Cell {
    double cap_level = 0.0;
    bool capped = false;
    bool feature = false;
    /// Fractional change vs. the same round's group A.
    double bytes_per_cpu_time_change = 0.0;
    double bytes_per_second_change = 0.0;
    double avg_power_watts = 0.0;
    /// Welch t-value of the per-machine-hour Bytes-per-CPU-Time samples vs
    /// group A (positive = this cell above baseline).
    double t_value = 0.0;
    bool significant = false;
  };

  struct Result {
    std::vector<Cell> cells;
    /// Watts saved per machine at the deepest cap level that does not
    /// degrade Bytes per CPU Time by more than 1% with the Feature enabled.
    double recommended_cap_level = 0.0;
    double provisioned_watts_saved_per_machine = 0.0;
  };

  PowerCappingStudy() : options_(Options()) {}
  explicit PowerCappingStudy(const Options& options) : options_(options) {}

  /// Runs all experiment rounds on the simulator: selects hybrid groups,
  /// flights each round's configuration, simulates, and analyzes. The engine
  /// keeps appending to `store`; rounds start at `start_hour`. `model` is
  /// used only to translate the recommended cap level into watts saved.
  StatusOr<Result> Run(const sim::PerfModel& model, sim::Cluster* cluster,
                       sim::FluidEngine* engine, telemetry::TelemetryStore* store,
                       sim::HourIndex start_hour) const;

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_POWER_CAPPING_H_
