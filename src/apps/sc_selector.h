#ifndef KEA_APPS_SC_SELECTOR_H_
#define KEA_APPS_SC_SELECTOR_H_

#include <vector>

#include "common/status.h"
#include "core/experiment.h"
#include "core/treatment.h"
#include "sim/cluster.h"
#include "sim/fluid_engine.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Experimental tuning: selecting between software configurations SC1 (local
/// temp store on HDD) and SC2 (local temp store on SSD), Section 7.1.
///
/// Uses the *ideal* experiment setting: every other machine in the same
/// racks forms the control (SC1) vs. treatment (SC2) arm, so both arms see
/// statistically identical workloads. The experiment runs over consecutive
/// workdays and reports the Table 4 metrics with Student t-values.
class ScSelector {
 public:
  struct Options {
    sim::SkuId sku = 3;  ///< Default: Gen3.1.
    /// Racks to enroll (the paper used two rows of ~700 machines each; with
    /// 40-machine racks, 35 racks give ~700 per arm).
    int max_racks = 35;
    int min_machines_per_arm = 50;
    /// Consecutive workdays of data collection (the paper used five).
    int workdays = 5;
  };

  struct Result {
    core::ExperimentAssignment assignment;
    core::BalanceReport balance;
    /// Table 4 rows: per-machine-day Total Data Read and mean task latency.
    core::TreatmentEffect data_read;
    core::TreatmentEffect task_latency;
    /// True when SC2 dominates: higher throughput and lower latency, both
    /// significant.
    bool sc2_dominates = false;
  };

  ScSelector() : options_(Options()) {}
  explicit ScSelector(const Options& options) : options_(options) {}

  /// Runs the experiment on the simulator: forces both arms to SC1, flights
  /// SC2 on the treatment arm, simulates `workdays` x 24 hours starting at
  /// `start_hour` (align to a Monday to avoid weekend effects), analyzes and
  /// reverts.
  StatusOr<Result> Run(sim::Cluster* cluster, sim::FluidEngine* engine,
                       telemetry::TelemetryStore* store,
                       sim::HourIndex start_hour) const;

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_SC_SELECTOR_H_
