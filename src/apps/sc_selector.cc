#include "apps/sc_selector.h"

#include <map>

#include "core/flighting.h"
#include "telemetry/perf_monitor.h"

namespace kea::apps {

namespace {

/// Aggregates per-machine-day observations of a metric over a window.
std::vector<double> PerMachineDay(
    const telemetry::TelemetryStore& store, const std::vector<int>& machine_ids,
    sim::HourIndex begin, sim::HourIndex end,
    const std::function<double(double sum_data, double sum_exec_s, double sum_tasks)>&
        reduce) {
  auto filter = telemetry::AndFilter(telemetry::HourRangeFilter(begin, end),
                                     telemetry::MachineSetFilter(machine_ids));
  // (machine, day) -> sums.
  struct Sums {
    double data = 0.0;
    double exec_s = 0.0;
    double tasks = 0.0;
  };
  std::map<std::pair<int, int>, Sums> by_day;
  for (const auto& r : store.records()) {
    if (!filter(r)) continue;
    Sums& s = by_day[{r.machine_id, r.hour / sim::kHoursPerDay}];
    s.data += r.data_read_mb;
    s.exec_s += r.avg_task_latency_s * r.tasks_finished;
    s.tasks += r.tasks_finished;
  }
  std::vector<double> out;
  out.reserve(by_day.size());
  for (const auto& [key, s] : by_day) {
    out.push_back(reduce(s.data, s.exec_s, s.tasks));
  }
  return out;
}

}  // namespace

StatusOr<ScSelector::Result> ScSelector::Run(sim::Cluster* cluster,
                                             sim::FluidEngine* engine,
                                             telemetry::TelemetryStore* store,
                                             sim::HourIndex start_hour) const {
  if (cluster == nullptr || engine == nullptr || store == nullptr) {
    return Status::InvalidArgument("null cluster/engine/store");
  }
  if (options_.workdays <= 0) {
    return Status::InvalidArgument("workdays must be positive");
  }

  Result result;
  KEA_ASSIGN_OR_RETURN(result.assignment,
                       core::IdealAssignment(*cluster, options_.sku,
                                             options_.max_racks,
                                             options_.min_machines_per_arm));
  result.balance = core::CheckBalance(*cluster, result.assignment);

  sim::HourIndex end_hour = start_hour + options_.workdays * sim::kHoursPerDay;

  // One flight per arm on disjoint machines: control pinned to SC1,
  // treatment flighted to SC2. (Layering a treatment flight on top of a
  // both-arms baseline flight is exactly the same-machine overlap
  // FlightingService now rejects — the inner flight's End would restore a
  // snapshot taken mid-flight of the outer one.)
  core::FlightingService flighting;
  core::ConfigPatch to_sc1;
  to_sc1.software_config = 0;
  core::ConfigPatch to_sc2;
  to_sc2.software_config = 1;

  KEA_ASSIGN_OR_RETURN(
      core::FlightId baseline_flight,
      flighting.CreateFlight({"sc1_baseline", result.assignment.control,
                              start_hour, end_hour, to_sc1}));
  KEA_ASSIGN_OR_RETURN(
      core::FlightId treatment_flight,
      flighting.CreateFlight({"sc2_treatment", result.assignment.treatment,
                              start_hour, end_hour, to_sc2}));

  KEA_RETURN_IF_ERROR(flighting.Begin(baseline_flight, cluster));
  KEA_RETURN_IF_ERROR(flighting.Begin(treatment_flight, cluster));

  KEA_RETURN_IF_ERROR(
      engine->Run(start_hour, options_.workdays * sim::kHoursPerDay, store));

  KEA_RETURN_IF_ERROR(flighting.End(treatment_flight, cluster));
  KEA_RETURN_IF_ERROR(flighting.End(baseline_flight, cluster));

  // Table 4 metrics, per machine-day.
  auto data_metric = [](double data, double, double) { return data; };
  auto latency_metric = [](double, double exec_s, double tasks) {
    return tasks > 0.0 ? exec_s / tasks : 0.0;
  };
  std::vector<double> control_data = PerMachineDay(
      *store, result.assignment.control, start_hour, end_hour, data_metric);
  std::vector<double> treatment_data = PerMachineDay(
      *store, result.assignment.treatment, start_hour, end_hour, data_metric);
  std::vector<double> control_latency = PerMachineDay(
      *store, result.assignment.control, start_hour, end_hour, latency_metric);
  std::vector<double> treatment_latency = PerMachineDay(
      *store, result.assignment.treatment, start_hour, end_hour, latency_metric);

  KEA_ASSIGN_OR_RETURN(result.data_read,
                       core::EstimateTreatmentEffect("Total Data Read (MB/day)",
                                                     control_data, treatment_data));
  KEA_ASSIGN_OR_RETURN(
      result.task_latency,
      core::EstimateTreatmentEffect("Average Task Execution Time (s)",
                                    control_latency, treatment_latency));

  result.sc2_dominates = result.data_read.percent_change > 0.0 &&
                         result.data_read.significant &&
                         result.task_latency.percent_change < 0.0 &&
                         result.task_latency.significant;
  return result;
}

}  // namespace kea::apps
