#ifndef KEA_APPS_YARN_TUNER_H_
#define KEA_APPS_YARN_TUNER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "core/deployment.h"
#include "core/whatif.h"
#include "sim/cluster.h"
#include "sim/fluid_sweep.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Observational tuning of YARN's max_num_running_containers (Section 5.2).
///
/// Pipeline: fit the What-if Engine on telemetry, then solve the LP of
/// Eq. (7)-(10):
///
///   max   sum_k m_k n_k                     (sellable container capacity)
///   s.t.  W-bar(m) <= W-bar'                (cluster average task latency)
///         g_k(m_k) <= max_utilization       (keep machines off the cliff)
///         |m_k - m'_k| <= max_step          (production conservatism)
///
/// W-bar is a ratio of quadratics in m; following the paper's LP
/// formulation, the task-throughput weights l_k n_k are frozen at their
/// current operating values, making the constraint linear (see DESIGN.md).
/// ProposeExact() solves the unlinearized problem by integer search and is
/// used by the ablation bench.
class YarnConfigTuner {
 public:
  struct Options {
    core::WhatIfEngine::Options whatif;
    /// Box radius around the current operating point, in containers.
    int max_step = 2;
    /// Predicted utilization cap per group.
    double max_utilization = 0.97;
    /// Allowed ratio of new to current cluster-average latency (1.0 = "no
    /// worse", Eq. 8).
    double latency_slack = 1.0;
    int min_containers = 1;
  };

  /// The proposed configuration plus the model's own predictions about it.
  struct Plan {
    std::vector<core::GroupRecommendation> recommendations;
    /// Fractional change in total container capacity, sum_k m*_k n_k over
    /// sum_k m'_k n_k, minus 1.
    double predicted_capacity_gain = 0.0;
    double predicted_latency_before_s = 0.0;
    double predicted_latency_after_s = 0.0;
    /// Continuous LP optimum per group (before rounding), keyed by group.
    std::map<sim::MachineGroupKey, double> lp_solution;
  };

  YarnConfigTuner() : options_(Options()) {}
  explicit YarnConfigTuner(const Options& options) : options_(options) {}

  /// Full observational-tuning pass: fit + optimize. `cluster` supplies the
  /// current configured max_containers per group (the value the
  /// recommendation patches).
  StatusOr<Plan> Propose(const telemetry::TelemetryStore& store,
                         const telemetry::RecordFilter& filter,
                         const sim::Cluster& cluster) const;

  /// Optimizes against an already-fitted engine (lets callers reuse fits).
  StatusOr<Plan> ProposeFromEngine(const core::WhatIfEngine& engine,
                                   const sim::Cluster& cluster) const;

  /// Exact variant: integer search with the true (nonlinear) latency ratio
  /// constraint instead of the LP linearization.
  StatusOr<Plan> ProposeExact(const core::WhatIfEngine& engine,
                              const sim::Cluster& cluster) const;

  /// What the fluid simulator says about a plan before it ships: the current
  /// and proposed configurations simulated side by side (the flighting dry
  /// run of Section 5.2.2, minus the production risk).
  struct SimulatedPlanOutcome {
    sim::SweepSummary current;
    sim::SweepSummary proposed;
    /// Fractional change proposed/current - 1 in the simulated task-weighted
    /// latency and total tasks finished.
    double latency_change = 0.0;
    double throughput_change = 0.0;
  };

  /// Simulates `plan` against the base configuration with the fluid-engine
  /// configuration sweep: both arms run `sweep.hours` hours on private
  /// cluster copies with independent RNG substreams, concurrently per
  /// `sweep.num_threads`, and bit-identically at any thread count.
  StatusOr<SimulatedPlanOutcome> SimulatePlan(const Plan& plan,
                                              const sim::PerfModel* model,
                                              const sim::Cluster& base,
                                              const sim::WorkloadModel* workload,
                                              const sim::SweepOptions& sweep) const;

 private:
  /// Configured max_containers per group read from the cluster.
  static StatusOr<std::map<sim::MachineGroupKey, int>> ConfiguredMax(
      const sim::Cluster& cluster);

  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_YARN_TUNER_H_
