#ifndef KEA_APPS_QUEUE_TUNER_H_
#define KEA_APPS_QUEUE_TUNER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "ml/regression.h"
#include "sim/cluster.h"
#include "telemetry/store.h"

namespace kea::apps {

/// Observational tuning of the per-group maximum queue length (the Section
/// 5.3 extension): "as faster machines have faster de-queue rate, we can
/// allow more containers to be queued on them ... to learn the relationship
/// between the tuned parameters, i.e. the maximum queuing length, and the
/// objective performance metrics, such as variance of queuing latency, to
/// achieve better queuing distribution."
///
/// Methodology — the same What-if pattern as the container tuner:
///  1. From overloaded machine-hours, fit per-group models
///     queue_latency_ms = a_k + b_k * queued_containers (the de-queue rate is
///     a property of the group, invariant to the queue cap itself).
///  2. Solve the min-max LP: choose per-group queue caps q_k that minimize
///     the worst-group full-queue latency, holding the cluster's total queue
///     capacity constant:
///        min t   s.t.  a_k + b_k q_k <= t,  sum_k n_k q_k = sum_k n_k q'_k,
///                      q_min <= q_k <= q_max.
class QueueTuner {
 public:
  struct Options {
    /// Minimum overloaded machine-hours per group to fit a model.
    size_t min_observations = 24;
    /// Bounds on any group's queue cap.
    int min_queue = 2;
    int max_queue = 64;
  };

  /// One group's fitted queue model and recommendation.
  struct GroupPlan {
    sim::MachineGroupKey group;
    int num_machines = 0;
    ml::LinearModel latency_vs_queued;  ///< queue latency (ms) vs queued count.
    ml::RegressionMetrics fit;
    int current_max_queued = 0;
    int recommended_max_queued = 0;
    /// Predicted latency with the queue at its cap, before and after.
    double full_queue_latency_before_ms = 0.0;
    double full_queue_latency_after_ms = 0.0;
  };

  struct Plan {
    std::vector<GroupPlan> groups;
    /// Worst-group full-queue latency before/after (the min-max objective).
    double worst_latency_before_ms = 0.0;
    double worst_latency_after_ms = 0.0;
  };

  QueueTuner() : options_(Options()) {}
  explicit QueueTuner(const Options& options) : options_(options) {}

  /// Fits queue models on the telemetry matching `filter` and solves the
  /// min-max LP. Needs overloaded hours (queued > 0) in the data; returns
  /// FailedPrecondition otherwise.
  StatusOr<Plan> Propose(const telemetry::TelemetryStore& store,
                         const telemetry::RecordFilter& filter,
                         const sim::Cluster& cluster) const;

  /// Applies a plan's recommendations to the cluster.
  static Status Apply(const Plan& plan, sim::Cluster* cluster);

 private:
  Options options_;
};

}  // namespace kea::apps

#endif  // KEA_APPS_QUEUE_TUNER_H_
