#ifndef KEA_OPT_MONTECARLO_H_
#define KEA_OPT_MONTECARLO_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace kea::opt {

/// Aggregate of a Monte-Carlo estimation run.
struct MonteCarloEstimate {
  double mean = 0.0;
  double stddev = 0.0;        ///< Sample standard deviation of the draws.
  double standard_error = 0.0;  ///< stddev / sqrt(n).
  int iterations = 0;
};

/// Estimates E[f] by averaging `iterations` draws of `sample(rng)`. The SKU
/// design application (Section 6.1) uses 1000 iterations per (SSD, RAM)
/// candidate to estimate the expected machine cost.
StatusOr<MonteCarloEstimate> EstimateExpectation(
    const std::function<double(Rng*)>& sample, int iterations, Rng* rng);

/// Evaluates `sample` over a grid of candidate configurations and returns the
/// estimate per candidate plus the argmin index. `sample(i, rng)` draws one
/// cost observation for candidate i.
struct GridEstimate {
  std::vector<MonteCarloEstimate> estimates;
  size_t best_index = 0;  ///< Index with the smallest mean.
};

struct GridOptions {
  /// Threads for the candidate loop: 0 = hardware_concurrency, 1 = the
  /// serial legacy execution path. Each candidate draws from its own RNG
  /// substream (Rng::Split by candidate index), so the results are
  /// bit-identical at every thread count.
  int num_threads = 0;
};

/// The grid evaluation is embarrassingly parallel (the paper runs ~1000
/// draws for each of dozens of (SSD, RAM) candidates); candidates are
/// evaluated concurrently per `options.num_threads`. `sample` must be safe
/// to call concurrently for distinct candidate indices. The parent `rng` is
/// advanced exactly once (to key this call's substream family), so repeated
/// calls on the same rng stay decorrelated while each call's output depends
/// only on the rng state at entry — never on thread scheduling.
StatusOr<GridEstimate> EstimateOverGrid(
    size_t num_candidates, const std::function<double(size_t, Rng*)>& sample,
    int iterations_per_candidate, Rng* rng,
    const GridOptions& options = GridOptions());

}  // namespace kea::opt

#endif  // KEA_OPT_MONTECARLO_H_
