#ifndef KEA_OPT_MONTECARLO_H_
#define KEA_OPT_MONTECARLO_H_

#include <functional>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace kea::opt {

/// Aggregate of a Monte-Carlo estimation run.
struct MonteCarloEstimate {
  double mean = 0.0;
  double stddev = 0.0;        ///< Sample standard deviation of the draws.
  double standard_error = 0.0;  ///< stddev / sqrt(n).
  int iterations = 0;
};

/// Estimates E[f] by averaging `iterations` draws of `sample(rng)`. The SKU
/// design application (Section 6.1) uses 1000 iterations per (SSD, RAM)
/// candidate to estimate the expected machine cost.
StatusOr<MonteCarloEstimate> EstimateExpectation(
    const std::function<double(Rng*)>& sample, int iterations, Rng* rng);

/// Evaluates `sample` over a grid of candidate configurations and returns the
/// estimate per candidate plus the argmin index. `sample(i, rng)` draws one
/// cost observation for candidate i.
struct GridEstimate {
  std::vector<MonteCarloEstimate> estimates;
  size_t best_index = 0;  ///< Index with the smallest mean.
};

StatusOr<GridEstimate> EstimateOverGrid(
    size_t num_candidates, const std::function<double(size_t, Rng*)>& sample,
    int iterations_per_candidate, Rng* rng);

}  // namespace kea::opt

#endif  // KEA_OPT_MONTECARLO_H_
