#ifndef KEA_OPT_SEARCH_H_
#define KEA_OPT_SEARCH_H_

#include <functional>
#include <vector>

#include "common/status.h"

namespace kea::opt {

/// Integer box domain for derivative-free search: variable i ranges over
/// [lo[i], hi[i]] inclusive with unit step.
struct IntegerDomain {
  std::vector<int> lo;
  std::vector<int> hi;

  size_t size() const { return lo.size(); }
  /// Total number of grid points (saturates at SIZE_MAX).
  size_t CardinalityCapped(size_t cap) const;
};

/// Result of a derivative-free search.
struct SearchResult {
  std::vector<int> x;
  double objective_value = 0.0;
  size_t evaluations = 0;
};

using ObjectiveFn = std::function<double(const std::vector<int>&)>;
using FeasibleFn = std::function<bool(const std::vector<int>&)>;

/// Exhaustively enumerates the integer grid and returns the feasible point
/// maximizing `objective`. Returns:
///  - InvalidArgument on malformed domains,
///  - ResourceExhausted if the grid exceeds `max_evaluations`,
///  - kInfeasible if no grid point satisfies `feasible`.
///
/// Used as the exact (non-linearized) fallback for the YARN container
/// problem, where the latency constraint W-bar <= W-bar' is a ratio of
/// quadratics (see DESIGN.md).
StatusOr<SearchResult> ExhaustiveSearch(const IntegerDomain& domain,
                                        const ObjectiveFn& objective,
                                        const FeasibleFn& feasible,
                                        size_t max_evaluations = 2'000'000);

/// Coordinate-ascent hill climbing over the integer grid from `start`:
/// repeatedly tries single +-1 moves on each coordinate, and when no single
/// move improves, paired moves (+-1 on two coordinates simultaneously).
/// The paired neighborhood matters for problems with a tight coupling
/// constraint — e.g. the YARN latency budget, where capacity must be shed on
/// one machine group before another can absorb it. Accepts feasible
/// improvements until a full sweep yields none. Scales to domains where
/// exhaustive search is intractable; finds a local optimum.
StatusOr<SearchResult> CoordinateAscent(const IntegerDomain& domain,
                                        std::vector<int> start,
                                        const ObjectiveFn& objective,
                                        const FeasibleFn& feasible,
                                        int max_sweeps = 100);

}  // namespace kea::opt

#endif  // KEA_OPT_SEARCH_H_
