#ifndef KEA_OPT_LP_H_
#define KEA_OPT_LP_H_

#include <limits>
#include <string>
#include <vector>

#include "common/status.h"

namespace kea::opt {

/// Direction of a linear constraint row.
enum class ConstraintSense { kLessEqual, kGreaterEqual, kEqual };

/// One linear constraint: dot(coefficients, x) <sense> rhs.
struct LpConstraint {
  std::vector<double> coefficients;
  ConstraintSense sense = ConstraintSense::kLessEqual;
  double rhs = 0.0;
  std::string name;
};

/// Whether to maximize or minimize the objective.
enum class LpDirection { kMaximize, kMinimize };

/// A linear program over `num_variables` variables with box bounds. All
/// variables default to [0, +inf). The YARN container problem (Eq. 7-10) is
/// expressed through this builder.
class LpProblem {
 public:
  explicit LpProblem(size_t num_variables, LpDirection direction = LpDirection::kMaximize);

  size_t num_variables() const { return objective_.size(); }
  LpDirection direction() const { return direction_; }

  /// Sets the objective coefficient of variable i.
  Status SetObjectiveCoefficient(size_t i, double value);

  /// Sets [lo, hi] bounds on variable i. Requires lo <= hi and lo finite
  /// (KEA's tuning variables are physical quantities with natural lower
  /// bounds). hi may be +infinity.
  Status SetBounds(size_t i, double lo, double hi);

  /// Adds a constraint row. The coefficient vector must have num_variables
  /// entries.
  Status AddConstraint(LpConstraint constraint);

  const std::vector<double>& objective() const { return objective_; }
  const std::vector<double>& lower_bounds() const { return lower_bounds_; }
  const std::vector<double>& upper_bounds() const { return upper_bounds_; }
  const std::vector<LpConstraint>& constraints() const { return constraints_; }

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();

 private:
  LpDirection direction_;
  std::vector<double> objective_;
  std::vector<double> lower_bounds_;
  std::vector<double> upper_bounds_;
  std::vector<LpConstraint> constraints_;
};

/// Solution of an LP.
struct LpSolution {
  std::vector<double> x;
  double objective_value = 0.0;
  int iterations = 0;
};

/// Dense two-phase primal simplex. Exact (up to numerics) for the small LPs
/// KEA builds: K <= a few dozen machine-group variables. Returns:
///  - kInfeasible if no feasible point exists,
///  - kUnbounded if the objective is unbounded over the feasible region.
class SimplexSolver {
 public:
  struct Options {
    int max_iterations = 10000;
    double tolerance = 1e-9;
  };

  SimplexSolver() : options_(Options()) {}
  explicit SimplexSolver(const Options& options) : options_(options) {}

  StatusOr<LpSolution> Solve(const LpProblem& problem) const;

 private:
  Options options_;
};

}  // namespace kea::opt

#endif  // KEA_OPT_LP_H_
