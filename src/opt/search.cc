#include "opt/search.h"

#include <cstdint>
#include <limits>

namespace kea::opt {

namespace {

Status ValidateDomain(const IntegerDomain& domain) {
  if (domain.lo.size() != domain.hi.size()) {
    return Status::InvalidArgument("domain lo/hi size mismatch");
  }
  if (domain.lo.empty()) return Status::InvalidArgument("empty domain");
  for (size_t i = 0; i < domain.lo.size(); ++i) {
    if (domain.lo[i] > domain.hi[i]) {
      return Status::InvalidArgument("domain lo > hi at index " + std::to_string(i));
    }
  }
  return Status::OK();
}

}  // namespace

size_t IntegerDomain::CardinalityCapped(size_t cap) const {
  size_t total = 1;
  for (size_t i = 0; i < lo.size(); ++i) {
    size_t width = static_cast<size_t>(hi[i] - lo[i]) + 1;
    if (total > cap / width) return cap + 1;  // Would overflow the cap.
    total *= width;
  }
  return total;
}

StatusOr<SearchResult> ExhaustiveSearch(const IntegerDomain& domain,
                                        const ObjectiveFn& objective,
                                        const FeasibleFn& feasible,
                                        size_t max_evaluations) {
  KEA_RETURN_IF_ERROR(ValidateDomain(domain));
  if (domain.CardinalityCapped(max_evaluations) > max_evaluations) {
    return Status::ResourceExhausted("integer grid larger than max_evaluations");
  }

  std::vector<int> point = domain.lo;
  SearchResult best;
  bool found = false;
  size_t evaluations = 0;

  while (true) {
    ++evaluations;
    if (feasible(point)) {
      double value = objective(point);
      if (!found || value > best.objective_value) {
        best.x = point;
        best.objective_value = value;
        found = true;
      }
    }
    // Odometer increment.
    size_t i = 0;
    for (; i < domain.size(); ++i) {
      if (point[i] < domain.hi[i]) {
        ++point[i];
        break;
      }
      point[i] = domain.lo[i];
    }
    if (i == domain.size()) break;
  }

  if (!found) return Status::Infeasible("no feasible grid point");
  best.evaluations = evaluations;
  return best;
}

StatusOr<SearchResult> CoordinateAscent(const IntegerDomain& domain,
                                        std::vector<int> start,
                                        const ObjectiveFn& objective,
                                        const FeasibleFn& feasible,
                                        int max_sweeps) {
  KEA_RETURN_IF_ERROR(ValidateDomain(domain));
  if (start.size() != domain.size()) {
    return Status::InvalidArgument("start point dimension mismatch");
  }
  for (size_t i = 0; i < start.size(); ++i) {
    if (start[i] < domain.lo[i] || start[i] > domain.hi[i]) {
      return Status::InvalidArgument("start point outside domain");
    }
  }
  if (!feasible(start)) {
    return Status::Infeasible("start point infeasible for coordinate ascent");
  }

  SearchResult best;
  best.x = std::move(start);
  best.objective_value = objective(best.x);
  best.evaluations = 1;

  auto try_candidate = [&](std::vector<int> candidate) {
    for (size_t i = 0; i < domain.size(); ++i) {
      if (candidate[i] < domain.lo[i] || candidate[i] > domain.hi[i]) return false;
    }
    ++best.evaluations;
    if (!feasible(candidate)) return false;
    double value = objective(candidate);
    if (value > best.objective_value + 1e-12) {
      best.x = std::move(candidate);
      best.objective_value = value;
      return true;
    }
    return false;
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    bool improved = false;
    // Single-coordinate moves.
    for (size_t i = 0; i < domain.size(); ++i) {
      for (int delta : {+1, -1}) {
        std::vector<int> candidate = best.x;
        candidate[i] += delta;
        if (try_candidate(std::move(candidate))) {
          improved = true;
          break;
        }
      }
    }
    // Paired moves: needed to cross tight coupling constraints where one
    // coordinate must give before another can take.
    if (!improved) {
      for (size_t i = 0; i < domain.size() && !improved; ++i) {
        for (size_t j = 0; j < domain.size() && !improved; ++j) {
          if (i == j) continue;
          for (int di : {+1, -1}) {
            for (int dj : {+1, -1}) {
              std::vector<int> candidate = best.x;
              candidate[i] += di;
              candidate[j] += dj;
              if (try_candidate(std::move(candidate))) {
                improved = true;
                break;
              }
            }
            if (improved) break;
          }
        }
      }
    }
    if (!improved) break;
  }
  return best;
}

}  // namespace kea::opt
