#include "opt/lp.h"

#include <cmath>
#include <utility>
#include <vector>

namespace kea::opt {

LpProblem::LpProblem(size_t num_variables, LpDirection direction)
    : direction_(direction),
      objective_(num_variables, 0.0),
      lower_bounds_(num_variables, 0.0),
      upper_bounds_(num_variables, kInfinity) {}

Status LpProblem::SetObjectiveCoefficient(size_t i, double value) {
  if (i >= objective_.size()) return Status::OutOfRange("objective index");
  objective_[i] = value;
  return Status::OK();
}

Status LpProblem::SetBounds(size_t i, double lo, double hi) {
  if (i >= objective_.size()) return Status::OutOfRange("bounds index");
  if (!std::isfinite(lo)) return Status::InvalidArgument("lower bound must be finite");
  if (lo > hi) return Status::InvalidArgument("lower bound exceeds upper bound");
  lower_bounds_[i] = lo;
  upper_bounds_[i] = hi;
  return Status::OK();
}

Status LpProblem::AddConstraint(LpConstraint constraint) {
  if (constraint.coefficients.size() != objective_.size()) {
    return Status::InvalidArgument("constraint width mismatch");
  }
  constraints_.push_back(std::move(constraint));
  return Status::OK();
}

namespace {

/// Internal standard-form tableau: maximize c^T y, A y = b, y >= 0, b >= 0.
struct Tableau {
  size_t rows;       // number of constraints
  size_t cols;       // structural + slack + artificial columns
  size_t artificial_start;
  std::vector<std::vector<double>> a;  // rows x cols
  std::vector<double> b;               // rhs
  std::vector<size_t> basis;           // basic column per row
};

/// Pivot on (row, col): normalize the pivot row and eliminate the column from
/// every other row.
void Pivot(Tableau* t, size_t row, size_t col) {
  double pivot = t->a[row][col];
  for (size_t c = 0; c < t->cols; ++c) t->a[row][c] /= pivot;
  t->b[row] /= pivot;
  for (size_t r = 0; r < t->rows; ++r) {
    if (r == row) continue;
    double factor = t->a[r][col];
    if (factor == 0.0) continue;
    for (size_t c = 0; c < t->cols; ++c) t->a[r][c] -= factor * t->a[row][c];
    t->b[r] -= factor * t->b[row];
  }
  t->basis[row] = col;
}

/// Runs primal simplex with the given objective (maximize). Uses Bland's rule
/// (smallest eligible index) so no anti-cycling perturbation is needed.
/// `allowed(col)` filters columns (used in phase 2 to freeze artificials).
/// Returns kUnbounded if a column with positive reduced cost has no leaving
/// row, or an iteration count otherwise.
StatusOr<int> RunSimplex(Tableau* t, const std::vector<double>& objective,
                         const std::vector<bool>& allowed, int max_iterations,
                         double tol) {
  int iterations = 0;
  while (true) {
    if (++iterations > max_iterations) {
      return Status::ResourceExhausted("simplex iteration limit reached");
    }
    // Reduced costs: z_j - c_j = c_B^T B^-1 A_j - c_j, tracked implicitly by
    // recomputing from the current tableau.
    // cost_j = objective[j] - sum_r objective[basis[r]] * a[r][j]
    size_t entering = t->cols;
    for (size_t j = 0; j < t->cols; ++j) {
      if (!allowed[j]) continue;
      double reduced = objective[j];
      for (size_t r = 0; r < t->rows; ++r) {
        double cb = objective[t->basis[r]];
        if (cb != 0.0) reduced -= cb * t->a[r][j];
      }
      if (reduced > tol) {
        entering = j;  // Bland: first eligible index.
        break;
      }
    }
    if (entering == t->cols) return iterations - 1;  // Optimal.

    // Ratio test with Bland tie-breaking on the basis variable index.
    size_t leaving = t->rows;
    double best_ratio = 0.0;
    for (size_t r = 0; r < t->rows; ++r) {
      if (t->a[r][entering] > tol) {
        double ratio = t->b[r] / t->a[r][entering];
        if (leaving == t->rows || ratio < best_ratio - tol ||
            (std::fabs(ratio - best_ratio) <= tol &&
             t->basis[r] < t->basis[leaving])) {
          leaving = r;
          best_ratio = ratio;
        }
      }
    }
    if (leaving == t->rows) {
      return Status::Unbounded("LP objective unbounded");
    }
    Pivot(t, leaving, entering);
  }
}

}  // namespace

StatusOr<LpSolution> SimplexSolver::Solve(const LpProblem& problem) const {
  const size_t n = problem.num_variables();
  const double tol = options_.tolerance;

  // Shift variables by their lower bounds: y = x - lo >= 0. Finite upper
  // bounds become extra <= rows.
  std::vector<LpConstraint> rows = problem.constraints();
  double objective_shift = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double lo = problem.lower_bounds()[i];
    objective_shift += problem.objective()[i] * lo;
    for (auto& row : rows) {
      row.rhs -= row.coefficients[i] * lo;
    }
    double hi = problem.upper_bounds()[i];
    if (std::isfinite(hi)) {
      LpConstraint ub;
      ub.coefficients.assign(n, 0.0);
      ub.coefficients[i] = 1.0;
      ub.sense = ConstraintSense::kLessEqual;
      ub.rhs = hi - lo;
      rows.push_back(std::move(ub));
    }
  }

  // Internal objective: always maximize.
  std::vector<double> c(n);
  double sign = problem.direction() == LpDirection::kMaximize ? 1.0 : -1.0;
  for (size_t i = 0; i < n; ++i) c[i] = sign * problem.objective()[i];

  // Normalize rows so rhs >= 0.
  for (auto& row : rows) {
    if (row.rhs < 0.0) {
      for (double& v : row.coefficients) v = -v;
      row.rhs = -row.rhs;
      if (row.sense == ConstraintSense::kLessEqual) {
        row.sense = ConstraintSense::kGreaterEqual;
      } else if (row.sense == ConstraintSense::kGreaterEqual) {
        row.sense = ConstraintSense::kLessEqual;
      }
    }
  }

  const size_t m = rows.size();
  // Count slack columns: <= and >= rows each get one (+1 / -1).
  size_t num_slack = 0;
  for (const auto& row : rows) {
    if (row.sense != ConstraintSense::kEqual) ++num_slack;
  }
  // Artificials for >= and = rows (and <= rows never need one).
  size_t num_artificial = 0;
  for (const auto& row : rows) {
    if (row.sense != ConstraintSense::kLessEqual) ++num_artificial;
  }

  Tableau t;
  t.rows = m;
  t.artificial_start = n + num_slack;
  t.cols = n + num_slack + num_artificial;
  t.a.assign(m, std::vector<double>(t.cols, 0.0));
  t.b.assign(m, 0.0);
  t.basis.assign(m, 0);

  size_t slack_col = n;
  size_t art_col = t.artificial_start;
  for (size_t r = 0; r < m; ++r) {
    for (size_t j = 0; j < n; ++j) t.a[r][j] = rows[r].coefficients[j];
    t.b[r] = rows[r].rhs;
    switch (rows[r].sense) {
      case ConstraintSense::kLessEqual:
        t.a[r][slack_col] = 1.0;
        t.basis[r] = slack_col++;
        break;
      case ConstraintSense::kGreaterEqual:
        t.a[r][slack_col] = -1.0;
        ++slack_col;
        t.a[r][art_col] = 1.0;
        t.basis[r] = art_col++;
        break;
      case ConstraintSense::kEqual:
        t.a[r][art_col] = 1.0;
        t.basis[r] = art_col++;
        break;
    }
  }

  std::vector<bool> all_allowed(t.cols, true);

  // Phase 1: maximize -(sum of artificials).
  if (num_artificial > 0) {
    std::vector<double> phase1(t.cols, 0.0);
    for (size_t j = t.artificial_start; j < t.cols; ++j) phase1[j] = -1.0;
    KEA_ASSIGN_OR_RETURN(int p1_iters,
                         RunSimplex(&t, phase1, all_allowed,
                                    options_.max_iterations, tol));
    (void)p1_iters;
    double infeasibility = 0.0;
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] >= t.artificial_start) infeasibility += t.b[r];
    }
    if (infeasibility > 1e-7) {
      return Status::Infeasible("LP has no feasible solution");
    }
    // Drive any degenerate artificial basics out of the basis.
    for (size_t r = 0; r < m; ++r) {
      if (t.basis[r] < t.artificial_start) continue;
      size_t replacement = t.cols;
      for (size_t j = 0; j < t.artificial_start; ++j) {
        if (std::fabs(t.a[r][j]) > tol) {
          replacement = j;
          break;
        }
      }
      if (replacement != t.cols) {
        Pivot(&t, r, replacement);
      }
      // If the row is all-zero over structural columns it is redundant; the
      // artificial stays basic at value 0, which phase 2 leaves untouched.
    }
  }

  // Phase 2: artificial columns are frozen out.
  std::vector<bool> allowed(t.cols, true);
  for (size_t j = t.artificial_start; j < t.cols; ++j) allowed[j] = false;
  std::vector<double> phase2(t.cols, 0.0);
  for (size_t j = 0; j < n; ++j) phase2[j] = c[j];

  auto p2 = RunSimplex(&t, phase2, allowed, options_.max_iterations, tol);
  if (!p2.ok()) {
    if (p2.status().code() == StatusCode::kUnbounded &&
        problem.direction() == LpDirection::kMinimize) {
      return Status::Unbounded("LP objective unbounded below");
    }
    return p2.status();
  }

  LpSolution solution;
  solution.iterations = p2.value();
  solution.x.assign(n, 0.0);
  for (size_t r = 0; r < m; ++r) {
    if (t.basis[r] < n) solution.x[t.basis[r]] = t.b[r];
  }
  // Un-shift lower bounds.
  double objective_value = objective_shift;
  for (size_t i = 0; i < n; ++i) {
    solution.x[i] += problem.lower_bounds()[i];
    objective_value += problem.objective()[i] * (solution.x[i] - problem.lower_bounds()[i]);
  }
  solution.objective_value = objective_value;
  return solution;
}

}  // namespace kea::opt
