#include "opt/montecarlo.h"

#include <cmath>
#include <vector>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace kea::opt {

namespace {

// Deterministic: one grid call, num_candidates cells, candidates*iterations
// draws — totals identical at any thread count.
obs::Counter* GridCallsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("mc.grid_calls");
  return c;
}
obs::Counter* CandidatesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("mc.candidates");
  return c;
}
obs::Counter* DrawsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("mc.draws");
  return c;
}

}  // namespace

StatusOr<MonteCarloEstimate> EstimateExpectation(
    const std::function<double(Rng*)>& sample, int iterations, Rng* rng) {
  if (iterations < 2) {
    return Status::InvalidArgument("Monte-Carlo needs >= 2 iterations");
  }
  if (rng == nullptr) return Status::InvalidArgument("null rng");

  // Welford's online mean/variance.
  double mean = 0.0;
  double m2 = 0.0;
  for (int i = 0; i < iterations; ++i) {
    double x = sample(rng);
    double delta = x - mean;
    mean += delta / static_cast<double>(i + 1);
    m2 += delta * (x - mean);
  }
  MonteCarloEstimate e;
  e.iterations = iterations;
  e.mean = mean;
  double variance = m2 / static_cast<double>(iterations - 1);
  e.stddev = std::sqrt(variance);
  e.standard_error = e.stddev / std::sqrt(static_cast<double>(iterations));
  return e;
}

StatusOr<GridEstimate> EstimateOverGrid(
    size_t num_candidates, const std::function<double(size_t, Rng*)>& sample,
    int iterations_per_candidate, Rng* rng, const GridOptions& options) {
  if (num_candidates == 0) return Status::InvalidArgument("empty candidate grid");
  if (rng == nullptr) return Status::InvalidArgument("null rng");
  if (iterations_per_candidate < 2) {
    return Status::InvalidArgument("Monte-Carlo needs >= 2 iterations");
  }

  KEA_TRACE_SPAN("mc.grid",
                 {{"candidates", std::to_string(num_candidates)},
                  {"iterations", std::to_string(iterations_per_candidate)}});
  KEA_PHASE("mc.grid");
  GridCallsCounter()->Increment();
  CandidatesCounter()->Increment(num_candidates);
  DrawsCounter()->Increment(num_candidates *
                            static_cast<uint64_t>(iterations_per_candidate));

  // One parent draw keys this call's substream family; candidate i then draws
  // only from substream i of that key, so its estimate depends on the logical
  // index and never on which thread ran it or in what order.
  Rng substream_base(rng->engine()());

  GridEstimate grid;
  grid.estimates.assign(num_candidates, MonteCarloEstimate{});
  std::vector<Status> failures(num_candidates, Status::OK());
  common::ThreadPool::Run(options.num_threads, num_candidates, [&](size_t i) {
    KEA_TRACE_SPAN("mc.candidate", {{"index", std::to_string(i)}});
    Rng substream = substream_base.Split(i);
    auto bound = [&sample, i](Rng* r) { return sample(i, r); };
    StatusOr<MonteCarloEstimate> e =
        EstimateExpectation(bound, iterations_per_candidate, &substream);
    if (e.ok()) {
      grid.estimates[i] = e.value();
    } else {
      failures[i] = e.status();
    }
  });
  for (const Status& s : failures) KEA_RETURN_IF_ERROR(s);

  for (size_t i = 1; i < num_candidates; ++i) {
    if (grid.estimates[i].mean < grid.estimates[grid.best_index].mean) {
      grid.best_index = i;
    }
  }
  return grid;
}

}  // namespace kea::opt
