#include "opt/montecarlo.h"

#include <cmath>

namespace kea::opt {

StatusOr<MonteCarloEstimate> EstimateExpectation(
    const std::function<double(Rng*)>& sample, int iterations, Rng* rng) {
  if (iterations < 2) {
    return Status::InvalidArgument("Monte-Carlo needs >= 2 iterations");
  }
  if (rng == nullptr) return Status::InvalidArgument("null rng");

  // Welford's online mean/variance.
  double mean = 0.0;
  double m2 = 0.0;
  for (int i = 0; i < iterations; ++i) {
    double x = sample(rng);
    double delta = x - mean;
    mean += delta / static_cast<double>(i + 1);
    m2 += delta * (x - mean);
  }
  MonteCarloEstimate e;
  e.iterations = iterations;
  e.mean = mean;
  double variance = m2 / static_cast<double>(iterations - 1);
  e.stddev = std::sqrt(variance);
  e.standard_error = e.stddev / std::sqrt(static_cast<double>(iterations));
  return e;
}

StatusOr<GridEstimate> EstimateOverGrid(
    size_t num_candidates, const std::function<double(size_t, Rng*)>& sample,
    int iterations_per_candidate, Rng* rng) {
  if (num_candidates == 0) return Status::InvalidArgument("empty candidate grid");
  GridEstimate grid;
  grid.estimates.reserve(num_candidates);
  for (size_t i = 0; i < num_candidates; ++i) {
    auto bound = [&sample, i](Rng* r) { return sample(i, r); };
    KEA_ASSIGN_OR_RETURN(MonteCarloEstimate e,
                         EstimateExpectation(bound, iterations_per_candidate, rng));
    grid.estimates.push_back(e);
    if (e.mean < grid.estimates[grid.best_index].mean) grid.best_index = i;
  }
  return grid;
}

}  // namespace kea::opt
