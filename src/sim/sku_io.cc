#include "sim/sku_io.h"

#include <cstdlib>

#include "common/csv.h"

namespace kea::sim {

namespace {

const char* const kColumns[] = {"name",     "cores",    "ram_gb",
                                "ssd_gb",   "core_speed", "hdd_mbps",
                                "ssd_mbps", "idle_watts", "peak_watts",
                                "provisioned_watts"};

StatusOr<double> ParseDouble(const std::string& cell, const std::string& column) {
  char* end = nullptr;
  double value = std::strtod(cell.c_str(), &end);
  if (end == cell.c_str() || *end != '\0') {
    return Status::InvalidArgument("unparsable number '" + cell + "' in column " +
                                   column);
  }
  return value;
}

}  // namespace

std::string SkuCatalogToCsv(const SkuCatalog& catalog) {
  CsvWriter writer;
  std::vector<std::string> header(std::begin(kColumns), std::end(kColumns));
  writer.SetHeader(header);
  for (const SkuSpec& s : catalog.specs()) {
    auto d = [](double v) { return std::to_string(v); };
    (void)writer.AppendRow({s.name, std::to_string(s.cores), d(s.ram_gb),
                            d(s.ssd_gb), d(s.core_speed), d(s.hdd_mbps),
                            d(s.ssd_mbps), d(s.idle_watts), d(s.peak_watts),
                            d(s.provisioned_watts)});
  }
  return writer.ToString();
}

StatusOr<SkuCatalog> SkuCatalogFromCsv(const std::string& csv_text) {
  KEA_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(csv_text));

  std::vector<int> column_index;
  for (const char* column : kColumns) {
    int index = table.ColumnIndex(column);
    if (index < 0) {
      return Status::InvalidArgument(std::string("missing column: ") + column);
    }
    column_index.push_back(index);
  }

  std::vector<SkuSpec> specs;
  for (const auto& row : table.rows) {
    SkuSpec s;
    s.name = row[static_cast<size_t>(column_index[0])];
    auto cell = [&](int i) { return row[static_cast<size_t>(column_index[i])]; };
    KEA_ASSIGN_OR_RETURN(double cores, ParseDouble(cell(1), "cores"));
    s.cores = static_cast<int>(cores);
    KEA_ASSIGN_OR_RETURN(s.ram_gb, ParseDouble(cell(2), "ram_gb"));
    KEA_ASSIGN_OR_RETURN(s.ssd_gb, ParseDouble(cell(3), "ssd_gb"));
    KEA_ASSIGN_OR_RETURN(s.core_speed, ParseDouble(cell(4), "core_speed"));
    KEA_ASSIGN_OR_RETURN(s.hdd_mbps, ParseDouble(cell(5), "hdd_mbps"));
    KEA_ASSIGN_OR_RETURN(s.ssd_mbps, ParseDouble(cell(6), "ssd_mbps"));
    KEA_ASSIGN_OR_RETURN(s.idle_watts, ParseDouble(cell(7), "idle_watts"));
    KEA_ASSIGN_OR_RETURN(s.peak_watts, ParseDouble(cell(8), "peak_watts"));
    KEA_ASSIGN_OR_RETURN(s.provisioned_watts,
                         ParseDouble(cell(9), "provisioned_watts"));
    specs.push_back(std::move(s));
  }
  return SkuCatalog::Create(std::move(specs));
}

Status SaveSkuCatalog(const SkuCatalog& catalog, const std::string& path) {
  CsvWriter writer;
  // Reuse the serialized text through the generic file writer.
  std::string text = SkuCatalogToCsv(catalog);
  KEA_ASSIGN_OR_RETURN(CsvTable table, ParseCsv(text));
  writer.SetHeader(table.header);
  for (const auto& row : table.rows) {
    KEA_RETURN_IF_ERROR(writer.AppendRow(row));
  }
  return writer.WriteFile(path);
}

StatusOr<SkuCatalog> LoadSkuCatalog(const std::string& path) {
  KEA_ASSIGN_OR_RETURN(CsvTable table, ReadCsvFile(path));
  // Rebuild the text for the shared parser.
  CsvWriter writer;
  writer.SetHeader(table.header);
  for (const auto& row : table.rows) {
    KEA_RETURN_IF_ERROR(writer.AppendRow(row));
  }
  return SkuCatalogFromCsv(writer.ToString());
}

}  // namespace kea::sim
