#ifndef KEA_SIM_JOB_SIM_H_
#define KEA_SIM_JOB_SIM_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/cluster.h"
#include "sim/fleet_fault_injector.h"
#include "sim/perf_model.h"
#include "sim/workload.h"
#include "telemetry/record.h"

namespace kea::sim {

/// A recurring job template: a sequence of stages with a barrier between
/// consecutive stages (SCOPE stage semantics). Each stage runs `stage_tasks`
/// parallel tasks whose types are drawn from the workload mix.
struct JobTemplateSpec {
  std::string name;
  std::vector<int> stage_tasks;
  /// Mean seconds between consecutive submissions of this template.
  double mean_interarrival_s = 600.0;
  /// Multiplier on task work for this template.
  double work_scale = 1.0;
};

/// Three benchmark templates standing in for the paper's TPC-H / TPC-DS
/// derived jobs (Figure 11).
std::vector<JobTemplateSpec> BenchmarkJobTemplates();

/// Discrete-event task/job-level simulator. This is the detail layer of the
/// two-layer design (see DESIGN.md): it runs full job DAGs on a (sub)cluster
/// to answer task-level questions the fluid engine cannot:
///  - which tasks land on which racks/SKUs (Figure 6),
///  - how task duration distributions differ across SKUs and which tasks end
///    up on the critical path (Figure 5),
///  - end-to-end job runtimes before/after a configuration change
///    (Figure 11).
///
/// Scheduling model: a ready task is placed on a machine drawn uniformly at
/// random among machines with a free container slot; when no slot is free
/// the task waits in a FIFO queue that drains on completions. This mirrors
/// the monolithic resource manager's randomized placement (Section 3.2).
class JobSimulator {
 public:
  struct Options {
    uint64_t seed = 7;
    /// Lognormal sigma on individual task durations (input skew, GC...).
    double task_noise_sigma = 0.25;
    /// Pareto shape for the heavy tail of task work (lower = heavier).
    double work_pareto_alpha = 2.6;
    /// Fraction of each machine's container slots occupied by background
    /// production load for the whole run. The benchmark jobs compete with
    /// this load for slots and experience its CPU interference — this is
    /// what makes configuration changes (max_containers re-balancing)
    /// visible in job runtimes (Figure 11). At least one slot per machine is
    /// kept free.
    double background_load_fraction = 0.8;
    /// Per-attempt probability that a task fails and must retry on another
    /// machine (hardware hiccups, preemptions). Big-data frameworks mask
    /// these failures with re-execution; retries lengthen job critical paths.
    double task_failure_probability = 0.0;
    /// Retries per task before the job gives the task up (and the paper's
    /// resilient substrate would blacklist the machine); attempts beyond
    /// this succeed unconditionally to keep jobs finite.
    int max_task_retries = 3;
    /// Safety valve on total simulated tasks.
    size_t max_tasks = 5'000'000;
  };

  struct Result {
    std::vector<telemetry::TaskRecord> tasks;
    std::vector<telemetry::JobRecord> jobs;
    /// Jobs still running at the horizon (excluded from `jobs`).
    size_t unfinished_jobs = 0;
    /// Task attempts that failed and were retried.
    size_t task_retries = 0;
  };

  /// `model`, `cluster` and `workload` must outlive the simulator. The
  /// cluster's max_containers / power / feature configuration is honored.
  JobSimulator(const PerfModel* model, const Cluster* cluster,
               const WorkloadModel* workload, const Options& options);

  /// Layers fleet chaos onto the run: machines the injector currently
  /// reports down contribute no container slots, and degraded machines run
  /// tasks slower by the injector's speed multiplier. Health is sampled once
  /// at Run() start (the discrete-event horizon is short relative to repair
  /// times); advance the injector with BeginHour before calling Run. An
  /// empty-profile injector leaves results bit-identical. `faults` must
  /// outlive the simulator; pass nullptr to detach.
  void AttachFleetFaults(FleetFaultInjector* faults) { fleet_faults_ = faults; }

  /// Simulates `duration_s` seconds of job arrivals and executions. Returns
  /// InvalidArgument on malformed templates or horizon.
  StatusOr<Result> Run(const std::vector<JobTemplateSpec>& templates,
                       double duration_s);

 private:
  const PerfModel* model_;
  const Cluster* cluster_;
  const WorkloadModel* workload_;
  Options options_;
  Rng rng_;
  FleetFaultInjector* fleet_faults_ = nullptr;  // Not owned.
};

}  // namespace kea::sim

#endif  // KEA_SIM_JOB_SIM_H_
