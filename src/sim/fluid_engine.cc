#include "sim/fluid_engine.h"

#include <algorithm>
#include <cmath>

#include "common/snapshot.h"

namespace kea::sim {

FluidEngine::FluidEngine(const PerfModel* model, Cluster* cluster,
                         const WorkloadModel* workload, const Options& options)
    : model_(model),
      cluster_(cluster),
      workload_(workload),
      options_(options),
      rng_(options.seed),
      baseline_slots_(static_cast<double>(cluster->TotalContainerSlots())) {}

Status FluidEngine::Run(HourIndex start_hour, int hours,
                        telemetry::TelemetryStore* store) {
  if (store == nullptr) return Status::InvalidArgument("null telemetry store");
  if (hours <= 0) return Status::InvalidArgument("hours must be positive");
  for (int h = 0; h < hours; ++h) {
    SimulateHour(start_hour + h, store);
  }
  return Status::OK();
}

void FluidEngine::SimulateHour(HourIndex hour, telemetry::TelemetryStore* store) {
  const auto& machines = cluster_->machines();
  const size_t n = machines.size();
  offered_.assign(n, 0.0);
  assigned_.assign(n, 0.0);
  if (down_until_.size() != n) down_until_.assign(n, 0);

  // Failure injection: up machines may fail this hour and stay down for an
  // exponential repair time. Down machines contribute zero capacity and no
  // telemetry.
  if (options_.failure_rate_per_hour > 0.0) {
    for (size_t i = 0; i < n; ++i) {
      if (down_until_[i] > hour) continue;
      if (rng_.Bernoulli(options_.failure_rate_per_hour)) {
        double repair = rng_.Exponential(1.0 / options_.mean_repair_hours);
        down_until_[i] = hour + std::max(1, static_cast<int>(repair));
      }
    }
  }
  // Fleet-chaos health snapshot for the hour. With no injector attached (or
  // an empty profile) every machine is up at speed 1.0 and the engine's own
  // draws are untouched — the zero-fault path stays bit-identical.
  if (fleet_faults_ != nullptr) {
    fleet_faults_->BeginHour(hour);
    fleet_up_.assign(n, 1);
    fleet_speed_.assign(n, 1.0);
    for (size_t i = 0; i < n; ++i) {
      MachineHealth health = fleet_faults_->Health(i);
      fleet_up_[i] = health.up ? 1 : 0;
      fleet_speed_[i] = health.speed;
    }
  }
  auto fleet_up = [&](size_t i) {
    return fleet_faults_ == nullptr || fleet_up_[i] != 0;
  };
  auto slots_of = [&](size_t i) {
    return (down_until_[i] > hour || !fleet_up(i))
               ? 0.0
               : static_cast<double>(machines[i].max_containers);
  };

  double demand = workload_->DemandContainers(hour, baseline_slots_, &rng_);

  // Uniform random placement across container *slots* with imbalance noise:
  // a machine with twice the slots receives twice the expected containers
  // (every slot is an equally likely landing spot for the randomizing
  // scheduler). Shares are normalized to sum back to the demand.
  double total_slots_now = 0.0;
  for (size_t i = 0; i < n; ++i) total_slots_now += slots_of(i);
  if (total_slots_now <= 0.0) return;  // Entire cluster down.
  double offered_total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double share = demand * slots_of(i) / total_slots_now;
    offered_[i] = share * rng_.LogNormal(0.0, options_.placement_noise_sigma);
    offered_total += offered_[i];
  }
  if (offered_total > 0.0) {
    double scale = demand / offered_total;
    for (double& v : offered_) v *= scale;
  }

  // First assignment pass: cap at max_containers (0 for down machines).
  double overflow = 0.0;
  for (size_t i = 0; i < n; ++i) {
    assigned_[i] = std::min(offered_[i], slots_of(i));
    overflow += offered_[i] - assigned_[i];
  }

  // Work-conserving redistribution: spare slots absorb overflow.
  for (int round = 0; round < options_.redistribution_rounds && overflow > 1e-9;
       ++round) {
    double spare_total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      spare_total += slots_of(i) - assigned_[i];
    }
    if (spare_total <= 1e-9) break;
    double next_overflow = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double cap = slots_of(i);
      double spare = cap - assigned_[i];
      if (spare <= 0.0) continue;
      double granted = overflow * (spare / spare_total);
      double accepted = std::min(granted, spare);
      assigned_[i] += accepted;
      next_overflow += granted - accepted;
    }
    overflow = next_overflow;
  }

  // Whatever still cannot run queues as low-priority containers,
  // proportionally to each machine's slot count (placements were uniform),
  // capped by the per-machine queue limit (Section 5.3). Overflow that no
  // queue can hold is rejected back to the scheduler.
  double total_slots = total_slots_now;
  std::vector<double> queued(n, 0.0);
  std::vector<double> rejected(n, 0.0);
  if (overflow > 0.0 && total_slots > 0.0) {
    double spill = 0.0;
    for (size_t i = 0; i < n; ++i) {
      double want = overflow * slots_of(i) / total_slots;
      double cap = slots_of(i) > 0.0
                       ? static_cast<double>(machines[i].max_queued_containers)
                       : 0.0;
      queued[i] = std::min(want, cap);
      spill += want - queued[i];
    }
    // One redistribution round into remaining queue capacity; what's left is
    // rejected, attributed to the machines whose queues are full.
    if (spill > 1e-9) {
      double spare_total = 0.0;
      for (size_t i = 0; i < n; ++i) {
        if (slots_of(i) <= 0.0) continue;
        spare_total +=
            static_cast<double>(machines[i].max_queued_containers) - queued[i];
      }
      if (spare_total > 1e-9) {
        double absorbed = std::min(spill, spare_total);
        for (size_t i = 0; i < n; ++i) {
          if (slots_of(i) <= 0.0) continue;
          double spare =
              static_cast<double>(machines[i].max_queued_containers) - queued[i];
          queued[i] += absorbed * (spare / spare_total);
        }
        spill -= absorbed;
      }
      if (spill > 1e-9) {
        double full_total = 0.0;
        for (size_t i = 0; i < n; ++i) {
          if (queued[i] >=
              static_cast<double>(machines[i].max_queued_containers) - 1e-9) {
            full_total += static_cast<double>(machines[i].max_containers);
          }
        }
        for (size_t i = 0; i < n; ++i) {
          if (full_total > 0.0 &&
              queued[i] >=
                  static_cast<double>(machines[i].max_queued_containers) - 1e-9) {
            rejected[i] =
                spill * static_cast<double>(machines[i].max_containers) / full_total;
          }
        }
      }
    }
  }

  for (size_t i = 0; i < n; ++i) {
    if (down_until_[i] > hour) continue;  // No telemetry from down machines.
    if (!fleet_up(i)) continue;           // Fleet-chaos downtime: same gap.
    const Machine& m = machines[i];
    MachineGroupKey group = m.group();

    double containers = assigned_[i];

    double util = model_->Utilization(m.sku, containers);
    util += rng_.Gaussian(0.0, options_.utilization_noise);
    util = std::clamp(util, 0.0, 1.0);

    telemetry::MachineHourRecord r;
    r.machine_id = m.id;
    r.hour = hour;
    r.rack = m.rack;
    r.sku = m.sku;
    r.sc = m.sc;
    r.avg_running_containers = containers;
    r.cpu_utilization = util;

    if (containers > 1e-9) {
      double latency = model_->TaskLatencySeconds(group, util, containers,
                                                  m.power_cap_fraction,
                                                  m.feature_enabled);
      // Slow-node degradation stretches task time; division by exactly 1.0
      // keeps the healthy path bit-identical.
      if (fleet_faults_ != nullptr) latency /= fleet_speed_[i];
      latency *= rng_.LogNormal(0.0, options_.latency_noise_sigma);
      double tasks = model_->TasksPerHour(containers, latency);
      double data = model_->DataReadMbPerHour(tasks);
      data *= rng_.LogNormal(0.0, options_.data_noise_sigma);

      r.avg_task_latency_s = latency;
      r.tasks_finished = tasks;
      r.data_read_mb = data;
      r.queue_latency_ms =
          queued[i] * latency / std::max(containers, 1.0) * 1000.0;
    }
    r.queued_containers = queued[i];
    r.rejected_containers = rejected[i];
    r.cpu_time_core_s = util *
                        static_cast<double>(model_->catalog().spec(m.sku).cores) *
                        kSecondsPerHour;

    double cores_used = model_->CoresUsed(m.sku, util);
    r.cores_used = cores_used;
    const PerfModel::Params& p = model_->params();
    double beta_s = rng_.Gaussian(p.ssd_gb_per_core_mean, p.ssd_gb_per_core_stddev);
    double beta_r = rng_.Gaussian(p.ram_gb_per_core_mean, p.ram_gb_per_core_stddev);
    double beta_n = rng_.Gaussian(p.nic_mbps_per_core_mean, p.nic_mbps_per_core_stddev);
    beta_s = std::max(beta_s, 0.0);
    beta_r = std::max(beta_r, 0.0);
    beta_n = std::max(beta_n, 0.0);
    r.ssd_used_gb = model_->SsdUsedGb(cores_used, beta_s);
    r.ram_used_gb = model_->RamUsedGb(cores_used, beta_r);
    r.network_used_mbps = model_->NetworkUsedMbps(cores_used, beta_n);

    r.power_watts = model_->PowerWatts(m.sku, util, m.power_cap_fraction,
                                       m.feature_enabled);
    store->Append(r);
  }
}

std::string FluidEngine::SerializeState() const {
  StateWriter w;
  w.PutString(rng_.SerializeState());
  w.PutDouble(baseline_slots_);
  w.PutU64(down_until_.size());
  for (HourIndex h : down_until_) w.PutI64(h);
  return w.Release();
}

Status FluidEngine::RestoreState(const std::string& blob) {
  StateReader r(blob);
  std::string rng_state;
  KEA_RETURN_IF_ERROR(r.GetString(&rng_state));
  double baseline = 0.0;
  KEA_RETURN_IF_ERROR(r.GetDouble(&baseline));
  uint64_t count = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  std::vector<HourIndex> down(count);
  for (HourIndex& h : down) {
    int64_t v = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&v));
    h = static_cast<HourIndex>(v);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in fluid-engine state blob");
  }
  KEA_RETURN_IF_ERROR(rng_.RestoreState(rng_state));
  baseline_slots_ = baseline;
  down_until_ = std::move(down);
  return Status::OK();
}

}  // namespace kea::sim
