#ifndef KEA_SIM_FLUID_ENGINE_H_
#define KEA_SIM_FLUID_ENGINE_H_

#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/cluster.h"
#include "sim/fleet_fault_injector.h"
#include "sim/perf_model.h"
#include "sim/workload.h"
#include "telemetry/store.h"

namespace kea::sim {

/// The fluid (machine-hour) simulation engine. Instead of simulating billions
/// of individual tasks, it advances the cluster one hour at a time:
///
///   1. draw the cluster-wide offered load (containers) from the workload
///      model — demand is anchored to the *baseline* capacity so config
///      changes affect absorption, not demand;
///   2. spread the load uniformly across machines (the Cosmos scheduler
///      randomizes task placement, Section 3.2 Level IV), respecting each
///      machine's max_num_running_containers and redistributing overflow to
///      machines with spare slots (work conservation);
///   3. load that no machine can run queues as low-priority containers
///      (Section 5.3);
///   4. evaluate the ground-truth PerfModel per machine, add observation
///      noise, and emit one MachineHourRecord per machine.
///
/// This is the scale layer: tens of thousands of machine-weeks per second.
/// Task/job-level questions use the discrete-event JobSimulator instead.
class FluidEngine {
 public:
  struct Options {
    uint64_t seed = 42;
    /// Lognormal sigma of per-machine placement imbalance.
    double placement_noise_sigma = 0.06;
    /// Relative Gaussian noise on observed utilization.
    double utilization_noise = 0.02;
    /// Lognormal sigma on observed task latency.
    double latency_noise_sigma = 0.06;
    /// Lognormal sigma on observed data read.
    double data_noise_sigma = 0.04;
    /// Rounds of overflow redistribution (work conservation fidelity).
    int redistribution_rounds = 4;

    /// Machine failure injection: per-machine probability of failing in any
    /// hour, and the mean hours until repair. Failed machines run nothing
    /// and emit no telemetry (production pipelines see gaps, not zeros) —
    /// "big-data systems are by design very resilient to individual
    /// failures" (Section 3.2), and KEA's statistical models must be too.
    double failure_rate_per_hour = 0.0;
    double mean_repair_hours = 12.0;
  };

  /// `model`, `cluster` and `workload` must outlive the engine. The engine
  /// reads the cluster configuration at every simulated hour, so flighting /
  /// deployment changes made between Run() calls take effect naturally.
  FluidEngine(const PerfModel* model, Cluster* cluster, const WorkloadModel* workload,
              const Options& options);

  /// Baseline capacity used to anchor demand (sum of max_containers at
  /// construction time).
  double baseline_slots() const { return baseline_slots_; }

  /// Layers fleet chaos onto the simulation: machines the injector reports
  /// down contribute no capacity and no telemetry, and degraded machines run
  /// tasks slower by the injector's speed multiplier. The injector draws only
  /// from its own seed-mixed substreams — attaching one with an empty profile
  /// leaves every engine draw bit-identical. Pass nullptr to detach; `faults`
  /// must outlive the engine.
  void AttachFleetFaults(FleetFaultInjector* faults) { fleet_faults_ = faults; }

  /// Simulates hours [start, start + hours) and appends one record per
  /// machine per hour into `store`. Returns InvalidArgument on a null store
  /// or non-positive hours.
  Status Run(HourIndex start_hour, int hours, telemetry::TelemetryStore* store);

  /// Bit-exact checkpoint of mutable state: the RNG cursor, the demand
  /// anchor, and per-machine downtime. baseline_slots_ must be restored
  /// rather than recomputed — the restored cluster already carries applied
  /// config changes, and re-anchoring demand to it would shift every
  /// subsequent draw. offered_/assigned_ are per-hour scratch and excluded.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  void SimulateHour(HourIndex hour, telemetry::TelemetryStore* store);

  const PerfModel* model_;
  Cluster* cluster_;
  const WorkloadModel* workload_;
  Options options_;
  Rng rng_;
  double baseline_slots_;

  // Scratch buffers reused across hours.
  std::vector<double> offered_;
  std::vector<double> assigned_;
  // Failure injection: hour at which each machine comes back up (0 = up).
  std::vector<HourIndex> down_until_;

  // Fleet chaos (not owned; state checkpointed by its owner, not here).
  FleetFaultInjector* fleet_faults_ = nullptr;
  // Per-hour health snapshot scratch, valid while fleet_faults_ is attached.
  std::vector<uint8_t> fleet_up_;
  std::vector<double> fleet_speed_;
};

}  // namespace kea::sim

#endif  // KEA_SIM_FLUID_ENGINE_H_
