#include "sim/fault_injector.h"

#include <algorithm>
#include <limits>

#include "common/snapshot.h"

namespace kea::sim {
namespace {

// Salt constants separating the injector's substream families.
constexpr uint64_t kRecordSalt = 0x7E1E7E1E00000001ULL;
constexpr uint64_t kStuckSalt = 0x7E1E7E1E00000002ULL;
constexpr uint64_t kWriteSalt = 0x7E1E7E1E00000003ULL;

}  // namespace

FaultProfile FaultProfile::Moderate() {
  FaultProfile p;
  p.drop_rate = 0.02;
  p.duplicate_rate = 0.02;
  p.non_finite_rate = 0.01;
  p.out_of_range_rate = 0.01;
  p.outlier_rate = 0.01;
  p.outlier_scale = 50.0;
  p.stuck_machine_fraction = 0.02;
  p.late_rate = 0.03;
  p.max_late_hours = 6;
  p.transient_error_rate = 0.05;
  return p;
}

Rng TelemetryFaultInjector::RecordRng(const telemetry::MachineHourRecord& r,
                                      uint64_t salt) const {
  uint64_t id = static_cast<uint64_t>(static_cast<uint32_t>(r.machine_id));
  uint64_t hour = static_cast<uint64_t>(static_cast<uint32_t>(r.hour));
  return Rng(MixSeed(seed_ ^ salt, (id << 32) | hour));
}

std::vector<telemetry::MachineHourRecord> TelemetryFaultInjector::Corrupt(
    const std::vector<telemetry::MachineHourRecord>& batch) {
  std::vector<telemetry::MachineHourRecord> out;
  out.reserve(batch.size());
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (const telemetry::MachineHourRecord& clean : batch) {
    ++counters_.seen;
    if (clean.hour > watermark_) watermark_ = clean.hour;
    telemetry::MachineHourRecord r = clean;

    // Stuck-counter machines replay their first observed payload forever
    // (identity fields — machine, hour, rack, group — stay live; it is the
    // measurements that freeze).
    if (profile_.stuck_machine_fraction > 0.0) {
      Rng machine_rng(MixSeed(seed_ ^ kStuckSalt,
                              static_cast<uint64_t>(static_cast<uint32_t>(r.machine_id))));
      if (machine_rng.Bernoulli(profile_.stuck_machine_fraction)) {
        auto [it, inserted] = stuck_payload_.try_emplace(r.machine_id, r);
        if (!inserted) {
          telemetry::MachineHourRecord frozen = it->second;
          frozen.machine_id = r.machine_id;
          frozen.hour = r.hour;
          frozen.rack = r.rack;
          frozen.sku = r.sku;
          frozen.sc = r.sc;
          r = frozen;
          ++counters_.stuck_replayed;
        }
      }
    }

    Rng rng = RecordRng(r, kRecordSalt);
    if (rng.Bernoulli(profile_.drop_rate)) {
      ++counters_.dropped;
      continue;
    }

    // At most one corruption kind per record, drawn in a fixed order so the
    // pattern is stable under profile tweaks to unrelated rates.
    if (rng.Bernoulli(profile_.non_finite_rate)) {
      double poison = kNan;
      switch (rng.UniformInt(0, 2)) {
        case 0: poison = kNan; break;
        case 1: poison = kInf; break;
        default: poison = -kInf; break;
      }
      switch (rng.UniformInt(0, 3)) {
        case 0: r.cpu_utilization = poison; break;
        case 1: r.tasks_finished = poison; break;
        case 2: r.data_read_mb = poison; break;
        default: r.avg_task_latency_s = poison; break;
      }
      ++counters_.made_non_finite;
    } else if (rng.Bernoulli(profile_.out_of_range_rate)) {
      switch (rng.UniformInt(0, 2)) {
        case 0: r.cpu_utilization = 1.0 + rng.Uniform(0.1, 2.0); break;
        case 1: r.tasks_finished = -rng.Uniform(1.0, 100.0); break;
        default: r.data_read_mb = -rng.Uniform(1.0, 1000.0); break;
      }
      ++counters_.made_out_of_range;
    } else if (rng.Bernoulli(profile_.outlier_rate)) {
      // In-range garbage: plausible schema, absurd magnitude.
      if (rng.Bernoulli(0.5)) {
        r.data_read_mb *= profile_.outlier_scale;
      } else {
        r.avg_task_latency_s *= profile_.outlier_scale;
      }
      ++counters_.made_outlier;
    }

    bool duplicate = rng.Bernoulli(profile_.duplicate_rate);
    if (rng.Bernoulli(profile_.late_rate)) {
      int delay = static_cast<int>(
          rng.UniformInt(1, std::max(1, profile_.max_late_hours)));
      delayed_[r.hour + delay].push_back(r);
      ++counters_.delayed;
      // A delayed record's replay copy arrives with it.
      if (duplicate) {
        delayed_[r.hour + delay].push_back(r);
        ++counters_.duplicated;
      }
      continue;
    }
    out.push_back(r);
    if (duplicate) {
      out.push_back(r);
      ++counters_.duplicated;
    }
  }

  // Release delayed records whose hour has come, oldest first, after the
  // fresh records — i.e. out of hour order, as a real pipeline would see.
  for (auto it = delayed_.begin();
       it != delayed_.end() && it->first <= watermark_;) {
    out.insert(out.end(), it->second.begin(), it->second.end());
    it = delayed_.erase(it);
  }
  return out;
}

std::vector<telemetry::MachineHourRecord> TelemetryFaultInjector::Flush() {
  std::vector<telemetry::MachineHourRecord> out;
  for (auto& [hour, records] : delayed_) {
    out.insert(out.end(), records.begin(), records.end());
  }
  delayed_.clear();
  return out;
}

telemetry::WriteHook TelemetryFaultInjector::MakeWriteHook() {
  if (profile_.transient_error_rate <= 0.0) return nullptr;
  return [this](const telemetry::MachineHourRecord&, int attempt) {
    // Attempt 0 opens a new logical call; retries reuse its index so the
    // (call, attempt) substream key is stable for a given record.
    if (attempt == 0) ++write_calls_;
    uint64_t call = write_calls_ - 1;
    Rng rng(MixSeed(seed_ ^ kWriteSalt,
                    call * 64 + static_cast<uint64_t>(attempt)));
    if (rng.Bernoulli(profile_.transient_error_rate)) {
      ++counters_.transient_errors;
      return Status::Unavailable("telemetry sink momentarily unreachable");
    }
    return Status::OK();
  };
}

std::string TelemetryFaultInjector::SerializeState() const {
  StateWriter w;
  w.PutU64(counters_.seen);
  w.PutU64(counters_.dropped);
  w.PutU64(counters_.duplicated);
  w.PutU64(counters_.made_non_finite);
  w.PutU64(counters_.made_out_of_range);
  w.PutU64(counters_.made_outlier);
  w.PutU64(counters_.stuck_replayed);
  w.PutU64(counters_.delayed);
  w.PutU64(counters_.transient_errors);

  // Canonical (sorted) order for the hash map so identical logical state
  // always serializes to identical bytes.
  std::vector<int> machines;
  machines.reserve(stuck_payload_.size());
  for (const auto& [machine, record] : stuck_payload_) machines.push_back(machine);
  std::sort(machines.begin(), machines.end());
  w.PutU64(machines.size());
  for (int machine : machines) {
    w.PutInt(machine);
    telemetry::PutMachineHourRecord(stuck_payload_.at(machine), &w);
  }

  w.PutU64(delayed_.size());
  for (const auto& [hour, records] : delayed_) {
    w.PutI64(hour);
    w.PutU64(records.size());
    for (const auto& record : records) telemetry::PutMachineHourRecord(record, &w);
  }

  w.PutI64(watermark_);
  w.PutU64(write_calls_);
  return w.Release();
}

Status TelemetryFaultInjector::RestoreState(const std::string& blob) {
  StateReader r(blob);
  Counters counters;
  uint64_t u = 0;
  size_t* fields[] = {&counters.seen,          &counters.dropped,
                      &counters.duplicated,    &counters.made_non_finite,
                      &counters.made_out_of_range, &counters.made_outlier,
                      &counters.stuck_replayed, &counters.delayed,
                      &counters.transient_errors};
  for (size_t* f : fields) {
    KEA_RETURN_IF_ERROR(r.GetU64(&u));
    *f = u;
  }

  uint64_t count = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  std::unordered_map<int, telemetry::MachineHourRecord> stuck;
  stuck.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int machine = 0;
    telemetry::MachineHourRecord record;
    KEA_RETURN_IF_ERROR(r.GetInt(&machine));
    KEA_RETURN_IF_ERROR(telemetry::GetMachineHourRecord(&r, &record));
    stuck[machine] = record;
  }

  KEA_RETURN_IF_ERROR(r.GetU64(&count));
  std::map<HourIndex, std::vector<telemetry::MachineHourRecord>> delayed;
  for (uint64_t i = 0; i < count; ++i) {
    int64_t hour = 0;
    uint64_t n = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&hour));
    KEA_RETURN_IF_ERROR(r.GetU64(&n));
    std::vector<telemetry::MachineHourRecord> records(n);
    for (auto& record : records) {
      KEA_RETURN_IF_ERROR(telemetry::GetMachineHourRecord(&r, &record));
    }
    delayed[static_cast<HourIndex>(hour)] = std::move(records);
  }

  int64_t watermark = 0;
  uint64_t write_calls = 0;
  KEA_RETURN_IF_ERROR(r.GetI64(&watermark));
  KEA_RETURN_IF_ERROR(r.GetU64(&write_calls));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in fault-injector state blob");
  }

  counters_ = counters;
  stuck_payload_ = std::move(stuck);
  delayed_ = std::move(delayed);
  watermark_ = static_cast<HourIndex>(watermark);
  write_calls_ = write_calls;
  return Status::OK();
}

}  // namespace kea::sim
