#include "sim/fault_injector.h"

#include <algorithm>
#include <limits>

namespace kea::sim {
namespace {

// Salt constants separating the injector's substream families.
constexpr uint64_t kRecordSalt = 0x7E1E7E1E00000001ULL;
constexpr uint64_t kStuckSalt = 0x7E1E7E1E00000002ULL;
constexpr uint64_t kWriteSalt = 0x7E1E7E1E00000003ULL;

}  // namespace

FaultProfile FaultProfile::Moderate() {
  FaultProfile p;
  p.drop_rate = 0.02;
  p.duplicate_rate = 0.02;
  p.non_finite_rate = 0.01;
  p.out_of_range_rate = 0.01;
  p.outlier_rate = 0.01;
  p.outlier_scale = 50.0;
  p.stuck_machine_fraction = 0.02;
  p.late_rate = 0.03;
  p.max_late_hours = 6;
  p.transient_error_rate = 0.05;
  return p;
}

Rng TelemetryFaultInjector::RecordRng(const telemetry::MachineHourRecord& r,
                                      uint64_t salt) const {
  uint64_t id = static_cast<uint64_t>(static_cast<uint32_t>(r.machine_id));
  uint64_t hour = static_cast<uint64_t>(static_cast<uint32_t>(r.hour));
  return Rng(MixSeed(seed_ ^ salt, (id << 32) | hour));
}

std::vector<telemetry::MachineHourRecord> TelemetryFaultInjector::Corrupt(
    const std::vector<telemetry::MachineHourRecord>& batch) {
  std::vector<telemetry::MachineHourRecord> out;
  out.reserve(batch.size());
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  for (const telemetry::MachineHourRecord& clean : batch) {
    ++counters_.seen;
    if (clean.hour > watermark_) watermark_ = clean.hour;
    telemetry::MachineHourRecord r = clean;

    // Stuck-counter machines replay their first observed payload forever
    // (identity fields — machine, hour, rack, group — stay live; it is the
    // measurements that freeze).
    if (profile_.stuck_machine_fraction > 0.0) {
      Rng machine_rng(MixSeed(seed_ ^ kStuckSalt,
                              static_cast<uint64_t>(static_cast<uint32_t>(r.machine_id))));
      if (machine_rng.Bernoulli(profile_.stuck_machine_fraction)) {
        auto [it, inserted] = stuck_payload_.try_emplace(r.machine_id, r);
        if (!inserted) {
          telemetry::MachineHourRecord frozen = it->second;
          frozen.machine_id = r.machine_id;
          frozen.hour = r.hour;
          frozen.rack = r.rack;
          frozen.sku = r.sku;
          frozen.sc = r.sc;
          r = frozen;
          ++counters_.stuck_replayed;
        }
      }
    }

    Rng rng = RecordRng(r, kRecordSalt);
    if (rng.Bernoulli(profile_.drop_rate)) {
      ++counters_.dropped;
      continue;
    }

    // At most one corruption kind per record, drawn in a fixed order so the
    // pattern is stable under profile tweaks to unrelated rates.
    if (rng.Bernoulli(profile_.non_finite_rate)) {
      double poison = kNan;
      switch (rng.UniformInt(0, 2)) {
        case 0: poison = kNan; break;
        case 1: poison = kInf; break;
        default: poison = -kInf; break;
      }
      switch (rng.UniformInt(0, 3)) {
        case 0: r.cpu_utilization = poison; break;
        case 1: r.tasks_finished = poison; break;
        case 2: r.data_read_mb = poison; break;
        default: r.avg_task_latency_s = poison; break;
      }
      ++counters_.made_non_finite;
    } else if (rng.Bernoulli(profile_.out_of_range_rate)) {
      switch (rng.UniformInt(0, 2)) {
        case 0: r.cpu_utilization = 1.0 + rng.Uniform(0.1, 2.0); break;
        case 1: r.tasks_finished = -rng.Uniform(1.0, 100.0); break;
        default: r.data_read_mb = -rng.Uniform(1.0, 1000.0); break;
      }
      ++counters_.made_out_of_range;
    } else if (rng.Bernoulli(profile_.outlier_rate)) {
      // In-range garbage: plausible schema, absurd magnitude.
      if (rng.Bernoulli(0.5)) {
        r.data_read_mb *= profile_.outlier_scale;
      } else {
        r.avg_task_latency_s *= profile_.outlier_scale;
      }
      ++counters_.made_outlier;
    }

    bool duplicate = rng.Bernoulli(profile_.duplicate_rate);
    if (rng.Bernoulli(profile_.late_rate)) {
      int delay = static_cast<int>(
          rng.UniformInt(1, std::max(1, profile_.max_late_hours)));
      delayed_[r.hour + delay].push_back(r);
      ++counters_.delayed;
      // A delayed record's replay copy arrives with it.
      if (duplicate) {
        delayed_[r.hour + delay].push_back(r);
        ++counters_.duplicated;
      }
      continue;
    }
    out.push_back(r);
    if (duplicate) {
      out.push_back(r);
      ++counters_.duplicated;
    }
  }

  // Release delayed records whose hour has come, oldest first, after the
  // fresh records — i.e. out of hour order, as a real pipeline would see.
  for (auto it = delayed_.begin();
       it != delayed_.end() && it->first <= watermark_;) {
    out.insert(out.end(), it->second.begin(), it->second.end());
    it = delayed_.erase(it);
  }
  return out;
}

std::vector<telemetry::MachineHourRecord> TelemetryFaultInjector::Flush() {
  std::vector<telemetry::MachineHourRecord> out;
  for (auto& [hour, records] : delayed_) {
    out.insert(out.end(), records.begin(), records.end());
  }
  delayed_.clear();
  return out;
}

telemetry::WriteHook TelemetryFaultInjector::MakeWriteHook() {
  if (profile_.transient_error_rate <= 0.0) return nullptr;
  return [this](const telemetry::MachineHourRecord&, int attempt) {
    // Attempt 0 opens a new logical call; retries reuse its index so the
    // (call, attempt) substream key is stable for a given record.
    if (attempt == 0) ++write_calls_;
    uint64_t call = write_calls_ - 1;
    Rng rng(MixSeed(seed_ ^ kWriteSalt,
                    call * 64 + static_cast<uint64_t>(attempt)));
    if (rng.Bernoulli(profile_.transient_error_rate)) {
      ++counters_.transient_errors;
      return Status::Unavailable("telemetry sink momentarily unreachable");
    }
    return Status::OK();
  };
}

}  // namespace kea::sim
