#ifndef KEA_SIM_TYPES_H_
#define KEA_SIM_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>
#include <tuple>

namespace kea::sim {

/// Index of a hardware generation (stock keeping unit) in the SkuCatalog.
using SkuId = int;

/// Index of a software configuration. The paper studies two: SC1 (local temp
/// store on HDD) and SC2 (local temp store on SSD).
using ScId = int;

/// Hours since the start of the simulation.
using HourIndex = int;

/// Seconds since the start of the simulation (used by the discrete-event
/// job engine).
using SimTime = double;

constexpr int kHoursPerDay = 24;
constexpr int kHoursPerWeek = 168;
constexpr double kSecondsPerHour = 3600.0;

/// Identifies a machine group: the SC-SKU combination `k` of Eq. (1)-(6).
/// All KEA models are fit per machine group.
struct MachineGroupKey {
  ScId sc = 0;
  SkuId sku = 0;

  bool operator==(const MachineGroupKey& other) const {
    return sc == other.sc && sku == other.sku;
  }
  bool operator<(const MachineGroupKey& other) const {
    return std::tie(sc, sku) < std::tie(other.sc, other.sku);
  }
};

/// "SC<sc>-SKU<sku>" label for reports.
inline std::string GroupLabel(const MachineGroupKey& key) {
  return "SC" + std::to_string(key.sc + 1) + "-SKU" + std::to_string(key.sku);
}

}  // namespace kea::sim

template <>
struct std::hash<kea::sim::MachineGroupKey> {
  size_t operator()(const kea::sim::MachineGroupKey& key) const noexcept {
    return std::hash<int>()(key.sc) * 1000003u ^ std::hash<int>()(key.sku);
  }
};

#endif  // KEA_SIM_TYPES_H_
