#ifndef KEA_SIM_PERF_MODEL_H_
#define KEA_SIM_PERF_MODEL_H_

#include <vector>

#include "common/status.h"
#include "sim/sku.h"
#include "sim/types.h"

namespace kea::sim {

/// Ground-truth machine performance model. This encodes "how the hardware
/// actually behaves" — the relationships KEA's What-if Engine must *learn*
/// from telemetry. KEA code never calls into this class; only the simulator
/// engines do.
///
/// Relationships implemented (see DESIGN.md):
///  - running containers -> CPU utilization          (learned as g_k, Eq. 1)
///  - utilization        -> tasks finished per hour  (learned as h_k, Eq. 3)
///  - utilization        -> average task latency     (learned as f_k, Eq. 5)
///  - cores used         -> SSD / RAM usage          (learned as p, q; Eq. 11-12)
///  - utilization        -> power draw; power caps throttle core frequency
class PerfModel {
 public:
  struct Params {
    /// Average CPU demand of one running container, in cores.
    double cores_per_container = 2.0;

    /// CPU work of an average task in core-seconds at reference speed 1.0.
    double task_cpu_work = 80.0;

    /// Input bytes read per task (drives "Total Data Read"), in MB.
    double task_input_mb = 600.0;

    /// Local temp-store traffic per task, in MB. SC1 serves it from HDD,
    /// SC2 from SSD (Section 7.1).
    double task_temp_mb = 220.0;

    /// Quadratic interference coefficient: latency multiplier is
    /// (1 + interference * util^2).
    double interference = 0.65;

    /// Processor "Feature" (Section 7.2): effective speed multiplier when
    /// enabled, and multiplier on dynamic power.
    double feature_speed_boost = 1.05;
    double feature_power_discount = 0.94;

    /// Exponent relating the required power reduction to the frequency
    /// reduction under capping (frequency/voltage scaling).
    double power_elasticity = 0.85;

    /// Dynamic power is concave in utilization: P = idle + dyn * util^e with
    /// e < 1 (low-load frequency boosting draws disproportionate power).
    /// This is why the original conservative provisioning is wasteful and
    /// why moderate caps start to bind at realistic utilizations (Fig. 15).
    double power_util_exponent = 0.6;

    /// Baseline (cores-independent) SSD and RAM usage in GB, and mean /
    /// stddev of the per-core usage slopes. The SKU-design study (Section
    /// 6.1) estimates these from telemetry.
    double ssd_base_gb = 40.0;
    double ssd_gb_per_core_mean = 6.0;
    double ssd_gb_per_core_stddev = 1.2;
    double ram_base_gb = 10.0;
    double ram_gb_per_core_mean = 3.2;
    double ram_gb_per_core_stddev = 0.7;

    /// Network usage model (Section 6.2 extends the same methodology to
    /// "other resources utilization, such as network bandwidth").
    double nic_base_mbps = 150.0;
    double nic_mbps_per_core_mean = 45.0;
    double nic_mbps_per_core_stddev = 12.0;
  };

  /// Builds a model over the given catalogs. `software_configs` must be
  /// non-empty.
  static StatusOr<PerfModel> Create(SkuCatalog catalog, std::vector<ScSpec> software_configs,
                                    Params params);

  /// Same with default params; the default catalog is always valid.
  static PerfModel CreateDefault();

  const SkuCatalog& catalog() const { return catalog_; }
  const std::vector<ScSpec>& software_configs() const { return software_configs_; }
  const Params& params() const { return params_; }

  /// CPU utilization in [0, 1] when `containers` run simultaneously on the
  /// SKU (deterministic part; engines add observation noise).
  double Utilization(SkuId sku, double containers) const;

  /// Core-speed multiplier in (0, 1] implied by a power cap.
  /// `cap_fraction` is the fraction *below* the provisioned level (0 = no
  /// capping, 0.2 = capped 20% below provisioned), matching the paper's
  /// "% below current provision level" tuning parameter.
  double ThrottleFactor(SkuId sku, double utilization, double cap_fraction,
                        bool feature_enabled) const;

  /// Mean task latency in seconds for a machine of the group at the given
  /// utilization and container count.
  double TaskLatencySeconds(MachineGroupKey group, double utilization,
                            double containers, double cap_fraction,
                            bool feature_enabled) const;

  /// Tasks finished per hour given the container count and mean latency.
  double TasksPerHour(double containers, double task_latency_seconds) const;

  /// Bytes read per machine-hour in MB, given tasks finished per hour.
  double DataReadMbPerHour(double tasks_per_hour) const;

  /// Electrical power draw in watts at the given utilization (after the cap
  /// is applied, draw never exceeds the cap).
  double PowerWatts(SkuId sku, double utilization, double cap_fraction,
                    bool feature_enabled) const;

  /// Cap in watts implied by `cap_fraction` below provisioned power.
  double CapWatts(SkuId sku, double cap_fraction) const;

  /// Number of cores busy at the given utilization.
  double CoresUsed(SkuId sku, double utilization) const;

  /// SSD / RAM usage in GB when `cores_used` cores are busy, with the given
  /// per-core slope draw (pass the mean for the deterministic value).
  double SsdUsedGb(double cores_used, double slope_gb_per_core) const;
  double RamUsedGb(double cores_used, double slope_gb_per_core) const;
  double NetworkUsedMbps(double cores_used, double slope_mbps_per_core) const;

 private:
  PerfModel(SkuCatalog catalog, std::vector<ScSpec> software_configs, Params params)
      : catalog_(std::move(catalog)),
        software_configs_(std::move(software_configs)),
        params_(params) {}

  SkuCatalog catalog_;
  std::vector<ScSpec> software_configs_;
  Params params_;
};

}  // namespace kea::sim

#endif  // KEA_SIM_PERF_MODEL_H_
