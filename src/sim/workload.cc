#include "sim/workload.h"

#include <cmath>

namespace kea::sim {

namespace {
constexpr double kPi = 3.14159265358979323846;
}  // namespace

WorkloadSpec WorkloadSpec::Default() {
  WorkloadSpec spec;
  spec.task_types = {
      {"extract", 0.7, 1.6, 0.8, 0.35},
      {"process", 1.3, 0.8, 1.2, 0.30},
      {"aggregate", 1.1, 0.7, 1.4, 0.20},
      {"output", 0.6, 0.4, 0.6, 0.15},
  };
  return spec;
}

StatusOr<WorkloadModel> WorkloadModel::Create(WorkloadSpec spec) {
  if (spec.task_types.empty()) {
    return Status::InvalidArgument("workload needs at least one task type");
  }
  if (spec.base_demand_fraction <= 0.0) {
    return Status::InvalidArgument("base demand must be positive");
  }
  if (spec.diurnal_amplitude < 0.0 || spec.diurnal_amplitude >= 1.0) {
    return Status::InvalidArgument("diurnal amplitude must be in [0, 1)");
  }
  if (spec.weekend_factor <= 0.0) {
    return Status::InvalidArgument("weekend factor must be positive");
  }
  if (spec.weekly_growth <= -1.0) {
    return Status::InvalidArgument("weekly growth must exceed -100%");
  }
  for (const auto& t : spec.task_types) {
    if (t.weight <= 0.0) {
      return Status::InvalidArgument("task type weight must be positive: " + t.name);
    }
    if (t.cpu_work_multiplier <= 0.0 || t.input_mb_multiplier < 0.0 ||
        t.temp_mb_multiplier < 0.0) {
      return Status::InvalidArgument("invalid multipliers for task type " + t.name);
    }
  }
  return WorkloadModel(std::move(spec));
}

WorkloadModel WorkloadModel::CreateDefault() {
  auto model = Create(WorkloadSpec::Default());
  return std::move(model).value();
}

WorkloadModel::WorkloadModel(WorkloadSpec spec) : spec_(std::move(spec)) {
  weights_.reserve(spec_.task_types.size());
  for (const auto& t : spec_.task_types) weights_.push_back(t.weight);
}

double WorkloadModel::SeasonalDemandFraction(HourIndex hour) const {
  double hour_of_day = static_cast<double>(hour % kHoursPerDay);
  int day_of_week = (hour / kHoursPerDay) % 7;

  double phase = 2.0 * kPi * (hour_of_day - spec_.peak_hour) / 24.0;
  double diurnal = 1.0 + spec_.diurnal_amplitude * std::cos(phase);
  double weekly = (day_of_week >= 5) ? spec_.weekend_factor : 1.0;
  double growth = spec_.weekly_growth != 0.0
                      ? std::pow(1.0 + spec_.weekly_growth,
                                 static_cast<double>(hour) / kHoursPerWeek)
                      : 1.0;
  return spec_.base_demand_fraction * diurnal * weekly * growth;
}

double WorkloadModel::DemandContainers(HourIndex hour, double baseline_slots,
                                       Rng* rng) const {
  double fraction = SeasonalDemandFraction(hour);
  if (rng != nullptr && spec_.demand_noise_sigma > 0.0) {
    fraction *= rng->LogNormal(0.0, spec_.demand_noise_sigma);
  }
  return fraction * baseline_slots;
}

size_t WorkloadModel::SampleTaskType(Rng* rng) const {
  return rng->Categorical(weights_);
}

}  // namespace kea::sim
