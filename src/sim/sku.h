#ifndef KEA_SIM_SKU_H_
#define KEA_SIM_SKU_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sim/types.h"

namespace kea::sim {

/// Hardware description of one machine generation. Cosmos operates 20+
/// generations; the default catalog models six representative ones
/// (Gen 1.1 ... Gen 4.1), matching the generations shown in Figures 2 and 9.
struct SkuSpec {
  std::string name;

  int cores = 0;
  double ram_gb = 0.0;
  double ssd_gb = 0.0;

  /// Per-core speed relative to the reference generation (Gen 3.2 = 1.0).
  /// Older generations are slower; their tasks dominate job critical paths
  /// (Figure 5).
  double core_speed = 1.0;

  /// Sequential I/O bandwidth of the local HDD array / SSD in MB/s. The SC1
  /// vs SC2 experiment (Section 7.1) is about which medium hosts the local
  /// temp store.
  double hdd_mbps = 0.0;
  double ssd_mbps = 0.0;

  /// Power envelope: watts at idle and at 100% CPU utilization.
  double idle_watts = 0.0;
  double peak_watts = 0.0;

  /// Provisioned power before capping; the original conservative limit the
  /// power-capping application (Section 7.2) reduces.
  double provisioned_watts = 0.0;
};

/// An immutable, indexable collection of SKU specs.
class SkuCatalog {
 public:
  /// The default six-generation catalog used by examples/benches. Older
  /// generations have fewer, slower cores; newer generations are faster and
  /// larger, mirroring Figure 2.
  static SkuCatalog Default();

  /// Builds a catalog from explicit specs; returns InvalidArgument when empty
  /// or when a spec is malformed (non-positive cores/speed, peak < idle...).
  static StatusOr<SkuCatalog> Create(std::vector<SkuSpec> specs);

  size_t size() const { return specs_.size(); }
  const SkuSpec& spec(SkuId id) const { return specs_[static_cast<size_t>(id)]; }

  /// Finds a SKU by name; NotFound if absent.
  StatusOr<SkuId> FindByName(const std::string& name) const;

  const std::vector<SkuSpec>& specs() const { return specs_; }

 private:
  explicit SkuCatalog(std::vector<SkuSpec> specs) : specs_(std::move(specs)) {}
  std::vector<SkuSpec> specs_;
};

/// Software configuration: the mapping of the local temp store to physical
/// media (Section 7.1). SC1 = temp on HDD, SC2 = temp on SSD.
struct ScSpec {
  std::string name;
  bool temp_store_on_ssd = false;
};

/// The two software configurations studied in the paper.
std::vector<ScSpec> DefaultSoftwareConfigs();

}  // namespace kea::sim

#endif  // KEA_SIM_SKU_H_
