#ifndef KEA_SIM_FAULT_INJECTOR_H_
#define KEA_SIM_FAULT_INJECTOR_H_

#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

#include "common/random.h"
#include "telemetry/ingestion.h"
#include "telemetry/record.h"

namespace kea::sim {

/// How dirty the telemetry stream is. Models the Cosmos failure modes of
/// Section 3.2: a fleet with constant machine churn whose daily join pipeline
/// sees missing, duplicated, late and outright corrupt machine-hours. All
/// rates are per-record probabilities; a default-constructed profile injects
/// nothing.
struct FaultProfile {
  /// Record silently lost (collector died mid-hour).
  double drop_rate = 0.0;
  /// Record emitted twice (pipeline replay after a partial failure).
  double duplicate_rate = 0.0;
  /// One metric field replaced by NaN or +-Inf (corrupt join output).
  double non_finite_rate = 0.0;
  /// One metric pushed outside its valid range (negative count, util > 1).
  double out_of_range_rate = 0.0;
  /// One volume metric scaled by a large factor — still finite and positive,
  /// so only robust aggregation (winsorizing) catches it.
  double outlier_rate = 0.0;
  double outlier_scale = 50.0;
  /// Fraction of machines whose counters freeze: every record repeats the
  /// first metric payload observed for that machine.
  double stuck_machine_fraction = 0.0;
  /// Record delayed by 1..max_late_hours and re-emitted out of order.
  double late_rate = 0.0;
  int max_late_hours = 6;
  /// Per-attempt probability that an ingestion write fails transiently
  /// (exercises the RetryPolicy path).
  double transient_error_rate = 0.0;

  bool empty() const {
    return drop_rate == 0.0 && duplicate_rate == 0.0 && non_finite_rate == 0.0 &&
           out_of_range_rate == 0.0 && outlier_rate == 0.0 &&
           stuck_machine_fraction == 0.0 && late_rate == 0.0 &&
           transient_error_rate == 0.0;
  }

  /// No faults (the pass-through profile).
  static FaultProfile None() { return FaultProfile(); }

  /// The chaos-suite default: every fault mode on at moderate rates.
  static FaultProfile Moderate();
};

/// Deterministic corruption stage between the simulation engines and the
/// ingestion pipeline. Every per-record decision draws from an Rng::Split
/// substream keyed on (machine, hour), so the fault pattern for a given seed
/// is a pure function of the record's identity — independent of batch
/// boundaries, arrival order, or thread schedule.
class TelemetryFaultInjector {
 public:
  struct Counters {
    size_t seen = 0;
    size_t dropped = 0;
    size_t duplicated = 0;
    size_t made_non_finite = 0;
    size_t made_out_of_range = 0;
    size_t made_outlier = 0;
    size_t stuck_replayed = 0;  ///< Records overwritten by a frozen payload.
    size_t delayed = 0;
    size_t transient_errors = 0;
  };

  TelemetryFaultInjector(const FaultProfile& profile, uint64_t seed)
      : profile_(profile), seed_(seed) {}

  /// Applies drop/duplicate/corrupt/stuck/late faults to a freshly produced
  /// batch and returns the stream that "arrives" now: surviving records plus
  /// previously delayed records whose delay has expired (appended at the end,
  /// i.e. out of hour order).
  std::vector<telemetry::MachineHourRecord> Corrupt(
      const std::vector<telemetry::MachineHourRecord>& batch);

  /// Drains every still-delayed record (end of stream), oldest first.
  std::vector<telemetry::MachineHourRecord> Flush();

  /// Write hook for IngestionPipeline: attempt k of the c-th write fails with
  /// Status::Unavailable with probability transient_error_rate, decided by a
  /// substream keyed on (c, k) — deterministic and eventually succeeding for
  /// any rate < 1 given enough attempts.
  telemetry::WriteHook MakeWriteHook();

  const Counters& counters() const { return counters_; }
  const FaultProfile& profile() const { return profile_; }

  /// Bit-exact checkpoint of mutable state: counters, frozen stuck payloads,
  /// the delayed-record queue, watermark, and the write-hook call counter
  /// (which keys the deterministic transient-failure draws). The profile and
  /// seed are construction-time and not included.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  /// Substream for the per-record fault draws.
  Rng RecordRng(const telemetry::MachineHourRecord& r, uint64_t salt) const;

  FaultProfile profile_;
  uint64_t seed_;
  Counters counters_;

  /// Frozen metric payload per stuck machine, captured at first sight.
  std::unordered_map<int, telemetry::MachineHourRecord> stuck_payload_;
  /// Delayed records keyed by release hour.
  std::map<HourIndex, std::vector<telemetry::MachineHourRecord>> delayed_;
  HourIndex watermark_ = -1;
  /// Write-hook call counter (grows monotonically; deterministic replay).
  uint64_t write_calls_ = 0;
};

}  // namespace kea::sim

#endif  // KEA_SIM_FAULT_INJECTOR_H_
