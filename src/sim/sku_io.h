#ifndef KEA_SIM_SKU_IO_H_
#define KEA_SIM_SKU_IO_H_

#include <string>

#include "common/status.h"
#include "sim/sku.h"

namespace kea::sim {

/// Serializes a SKU catalog as CSV (one row per hardware generation) so
/// operators can review and version fleet descriptions alongside
/// configuration.
std::string SkuCatalogToCsv(const SkuCatalog& catalog);

/// Parses a catalog from CSV produced by SkuCatalogToCsv (or hand-written
/// with the same header). Returns InvalidArgument on unknown/missing columns
/// or unparsable numbers, and propagates SkuCatalog::Create validation.
StatusOr<SkuCatalog> SkuCatalogFromCsv(const std::string& csv_text);

/// Convenience file wrappers.
Status SaveSkuCatalog(const SkuCatalog& catalog, const std::string& path);
StatusOr<SkuCatalog> LoadSkuCatalog(const std::string& path);

}  // namespace kea::sim

#endif  // KEA_SIM_SKU_IO_H_
