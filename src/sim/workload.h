#ifndef KEA_SIM_WORKLOAD_H_
#define KEA_SIM_WORKLOAD_H_

#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/types.h"

namespace kea::sim {

/// A class of tasks in the SCOPE-like workload (extract, process, aggregate,
/// output...). Multipliers scale the PerfModel's average task parameters.
struct TaskType {
  std::string name;
  double cpu_work_multiplier = 1.0;
  double input_mb_multiplier = 1.0;
  double temp_mb_multiplier = 1.0;
  /// Relative frequency in the task mix.
  double weight = 1.0;
};

/// Cluster-wide offered load with diurnal and weekly seasonality — the "long
/// windows of observation" problem of Section 1 in miniature. Demand is
/// expressed as a fraction of the cluster's *baseline* container capacity so
/// configuration changes alter how the demand is absorbed, not the demand
/// itself.
struct WorkloadSpec {
  /// Mean demand as a fraction of baseline container slots. Values slightly
  /// above 1 keep the cluster demand-bound, so extra container slots convert
  /// into sellable capacity (the paper's headline metric).
  double base_demand_fraction = 1.02;

  /// Peak-to-mean amplitude of the diurnal sine.
  double diurnal_amplitude = 0.16;

  /// Hour of day (0-23) at which demand peaks.
  double peak_hour = 14.0;

  /// Demand multiplier applied on Saturday/Sunday.
  double weekend_factor = 0.86;

  /// Multiplicative lognormal noise sigma on the hourly demand.
  double demand_noise_sigma = 0.03;

  /// Organic demand growth per week (compounded), e.g. 0.01 = +1%/week.
  /// Drives the capacity-planning application ("how much memory to use for
  /// future machines", when does the cluster run out of capacity).
  double weekly_growth = 0.0;

  /// The task mix. Uniform random placement of this mix across machines is
  /// what justifies abstraction Levels IV-V (Figure 6).
  std::vector<TaskType> task_types;

  static WorkloadSpec Default();
};

/// Samples hour-by-hour demand and task types.
class WorkloadModel {
 public:
  /// Returns InvalidArgument for malformed specs (empty task mix, negative
  /// amplitudes...).
  static StatusOr<WorkloadModel> Create(WorkloadSpec spec);
  static WorkloadModel CreateDefault();

  const WorkloadSpec& spec() const { return spec_; }

  /// Deterministic seasonal demand fraction at `hour` (no noise).
  double SeasonalDemandFraction(HourIndex hour) const;

  /// Noisy demand in container-slots given the baseline capacity.
  double DemandContainers(HourIndex hour, double baseline_slots, Rng* rng) const;

  /// Samples a task type index according to the mix weights.
  size_t SampleTaskType(Rng* rng) const;

 private:
  explicit WorkloadModel(WorkloadSpec spec);

  WorkloadSpec spec_;
  std::vector<double> weights_;
};

}  // namespace kea::sim

#endif  // KEA_SIM_WORKLOAD_H_
