#include "sim/cluster.h"

#include <cmath>
#include <numeric>

namespace kea::sim {

ClusterSpec ClusterSpec::Default() {
  ClusterSpec spec;
  spec.total_machines = 2000;
  spec.machines_per_rack = 40;
  // Older generations are a shrinking share of the fleet (Figure 2, left).
  spec.sku_fractions = {0.10, 0.12, 0.13, 0.20, 0.25, 0.20};
  // Manual tuning has pushed old generations near their limit while new
  // generations run conservatively (Figure 2, right): with 2 cores per
  // container these correspond to target utilizations of roughly
  // 0.88, 0.75, 0.75, 0.69, 0.58, 0.50.
  spec.baseline_max_containers = {7, 9, 9, 11, 14, 16};
  spec.sc2_fraction = 0.5;
  spec.racks_per_subcluster = 10;
  return spec;
}

StatusOr<Cluster> Cluster::Build(const SkuCatalog& catalog, const ClusterSpec& spec) {
  if (spec.total_machines <= 0) {
    return Status::InvalidArgument("total_machines must be positive");
  }
  if (spec.machines_per_rack <= 0) {
    return Status::InvalidArgument("machines_per_rack must be positive");
  }
  if (spec.sku_fractions.size() != catalog.size()) {
    return Status::InvalidArgument("sku_fractions size must match catalog");
  }
  if (spec.baseline_max_containers.size() != catalog.size()) {
    return Status::InvalidArgument("baseline_max_containers size must match catalog");
  }
  double fraction_sum = std::accumulate(spec.sku_fractions.begin(),
                                        spec.sku_fractions.end(), 0.0);
  if (std::fabs(fraction_sum - 1.0) > 0.01) {
    return Status::InvalidArgument("sku_fractions must sum to 1");
  }
  if (spec.sc2_fraction < 0.0 || spec.sc2_fraction > 1.0) {
    return Status::InvalidArgument("sc2_fraction must be in [0, 1]");
  }
  for (int m : spec.baseline_max_containers) {
    if (m <= 0) return Status::InvalidArgument("baseline max_containers must be positive");
  }
  if (spec.baseline_max_queued < 0) {
    return Status::InvalidArgument("baseline_max_queued must be non-negative");
  }
  if (spec.racks_per_subcluster <= 0) {
    return Status::InvalidArgument("racks_per_subcluster must be positive");
  }

  // Per-SKU machine counts; remainder goes to the last SKU.
  std::vector<int> counts(catalog.size(), 0);
  int assigned = 0;
  for (size_t i = 0; i < catalog.size(); ++i) {
    counts[i] = static_cast<int>(std::floor(spec.sku_fractions[i] *
                                            static_cast<double>(spec.total_machines)));
    assigned += counts[i];
  }
  counts.back() += spec.total_machines - assigned;

  Cluster cluster;
  cluster.machines_.reserve(static_cast<size_t>(spec.total_machines));

  // Racks are homogeneous in SKU (machines in a rack are purchased together)
  // but mixed in SC: machines alternate SC1/SC2 within the rack so the ideal
  // experiment setting of Section 7 ("every other machine in the same rack")
  // is available.
  int id = 0;
  int rack = 0;
  for (size_t sku = 0; sku < catalog.size(); ++sku) {
    int remaining = counts[sku];
    while (remaining > 0) {
      int in_rack = std::min(remaining, spec.machines_per_rack);
      for (int i = 0; i < in_rack; ++i) {
        Machine m;
        m.id = id++;
        m.rack = rack;
        m.sub_cluster = rack / spec.racks_per_subcluster;
        m.sku = static_cast<SkuId>(sku);
        // Bresenham-style spreading: machine i in the rack is SC2 iff the
        // running count of SC2 machines must advance to track the fraction.
        // For sc2_fraction = 0.5 this alternates SC1/SC2 ("every other
        // machine in the same rack", Section 7.1).
        double f = spec.sc2_fraction;
        bool is_sc2 = std::floor(static_cast<double>(i + 1) * f) >
                      std::floor(static_cast<double>(i) * f);
        m.sc = is_sc2 ? 1 : 0;
        m.max_containers = spec.baseline_max_containers[sku];
        m.max_queued_containers = spec.baseline_max_queued;
        cluster.machines_.push_back(m);
      }
      remaining -= in_rack;
      ++rack;
    }
  }
  cluster.num_racks_ = rack;
  cluster.num_subclusters_ = (rack + spec.racks_per_subcluster - 1) /
                             spec.racks_per_subcluster;
  cluster.RebuildGroups();
  return cluster;
}

void Cluster::RebuildGroups() {
  groups_.clear();
  for (const Machine& m : machines_) {
    groups_[m.group()].push_back(m.id);
  }
}

int Cluster::GroupSize(MachineGroupKey key) const {
  auto it = groups_.find(key);
  return it == groups_.end() ? 0 : static_cast<int>(it->second.size());
}

int64_t Cluster::TotalContainerSlots() const {
  int64_t total = 0;
  for (const Machine& m : machines_) total += m.max_containers;
  return total;
}

Status Cluster::SetGroupMaxContainers(MachineGroupKey key, int max_containers) {
  if (max_containers <= 0) {
    return Status::InvalidArgument("max_containers must be positive");
  }
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    return Status::NotFound("no machines in group " + GroupLabel(key));
  }
  for (int id : it->second) {
    machines_[static_cast<size_t>(id)].max_containers = max_containers;
  }
  return Status::OK();
}

std::vector<int> Cluster::SubClusterMachines(int sub_cluster) const {
  std::vector<int> out;
  for (const Machine& m : machines_) {
    if (m.sub_cluster == sub_cluster) out.push_back(m.id);
  }
  return out;
}

Status Cluster::SetGroupMaxQueued(MachineGroupKey key, int max_queued) {
  if (max_queued < 0) {
    return Status::InvalidArgument("max_queued must be non-negative");
  }
  auto it = groups_.find(key);
  if (it == groups_.end()) {
    return Status::NotFound("no machines in group " + GroupLabel(key));
  }
  for (int id : it->second) {
    machines_[static_cast<size_t>(id)].max_queued_containers = max_queued;
  }
  return Status::OK();
}

int64_t Cluster::TotalQueueSlots() const {
  int64_t total = 0;
  for (const Machine& m : machines_) total += m.max_queued_containers;
  return total;
}

Status Cluster::SetPowerCap(const std::vector<int>& machine_ids, double cap_fraction) {
  if (cap_fraction < 0.0 || cap_fraction >= 1.0) {
    return Status::InvalidArgument("cap_fraction must be in [0, 1)");
  }
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines_.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
    machines_[static_cast<size_t>(id)].power_cap_fraction = cap_fraction;
  }
  return Status::OK();
}

Status Cluster::SetFeature(const std::vector<int>& machine_ids, bool enabled) {
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines_.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
    machines_[static_cast<size_t>(id)].feature_enabled = enabled;
  }
  return Status::OK();
}

Status Cluster::SetSoftwareConfig(const std::vector<int>& machine_ids, ScId sc) {
  if (sc < 0) return Status::InvalidArgument("invalid software configuration id");
  for (int id : machine_ids) {
    if (id < 0 || static_cast<size_t>(id) >= machines_.size()) {
      return Status::OutOfRange("machine id " + std::to_string(id));
    }
    machines_[static_cast<size_t>(id)].sc = sc;
  }
  RebuildGroups();
  return Status::OK();
}

}  // namespace kea::sim
