#ifndef KEA_SIM_FLEET_FAULT_INJECTOR_H_
#define KEA_SIM_FLEET_FAULT_INJECTOR_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "sim/cluster.h"
#include "sim/types.h"

namespace kea::sim {

/// How unhealthy the simulated *fleet* is — as opposed to FaultProfile, which
/// corrupts the telemetry about a healthy fleet. Models the environment drift
/// the paper's model-monitoring section worries about: machines crash and
/// restart, whole racks go dark together, hardware silently degrades, and
/// capacity is sometimes lost for good. All rates are per-entity per-hour
/// hazards; a default-constructed profile injects nothing.
struct FleetFaultProfile {
  /// Per up-machine probability of crashing in any hour; repair times are
  /// exponential with this mean (machine lifetimes are exponential too —
  /// the hazard rate is constant).
  double crash_rate_per_hour = 0.0;
  double mean_repair_hours = 8.0;

  /// Per-rack probability of a correlated outage taking every machine in the
  /// rack down at once (ToR switch / PDU failure); exponential duration.
  double rack_outage_rate_per_hour = 0.0;
  double mean_rack_outage_hours = 4.0;

  /// Per healthy-machine probability of onset of slow-node degradation. A
  /// degraded machine's throughput multiplier drops by roughly
  /// `degrade_severity` (jittered per incident) and then creeps back toward
  /// 1.0 by `recovery_per_hour` each hour until fully healed.
  double degrade_rate_per_hour = 0.0;
  double degrade_severity = 0.4;
  double recovery_per_hour = 0.02;

  /// Per up-machine probability of being lost permanently (fire-walled off,
  /// decommissioned after repeated failures). Lost machines never return.
  double permanent_loss_rate_per_hour = 0.0;

  bool empty() const {
    return crash_rate_per_hour == 0.0 && rack_outage_rate_per_hour == 0.0 &&
           degrade_rate_per_hour == 0.0 && permanent_loss_rate_per_hour == 0.0;
  }

  /// No fleet faults (the pass-through profile).
  static FleetFaultProfile None() { return FleetFaultProfile(); }

  /// Frequent independent crashes, fast repair — high machine churn.
  static FleetFaultProfile CrashStorm();

  /// Rare but long rack-wide outages.
  static FleetFaultProfile RackOutages();

  /// No outages, but hardware slowly degrades and recovers.
  static FleetFaultProfile SlowDegradation();
};

/// Health of one machine as seen by a simulation engine.
struct MachineHealth {
  bool up = true;      ///< False while crashed, rack-down, or lost for good.
  double speed = 1.0;  ///< Throughput multiplier in (0, 1]; 1.0 = healthy.
};

/// Deterministic seeded fleet-chaos engine layered on the Cluster. The
/// engines consult it for per-machine health each simulated hour; KEA never
/// sees it directly — faults surface only through the normal telemetry
/// schema (missing machine-hours, inflated latencies, shrunken capacity).
///
/// Every per-entity decision draws from an Rng substream keyed
/// MixSeed(seed ^ salt, (entity_id << 32) | hour), so the fault pattern for
/// a given seed is a pure function of (entity, hour) — independent of
/// iteration order, engine choice, or thread schedule — and the salt family
/// (0xF1EE7FA0C…) is disjoint from TelemetryFaultInjector's (0x7E1E7E1E…),
/// so both injectors compose under one session seed without stream
/// collision (see determinism_test).
class FleetFaultInjector {
 public:
  struct Counters {
    size_t crashes = 0;
    size_t rack_outages = 0;
    size_t degradations = 0;
    size_t recoveries = 0;
    size_t permanent_losses = 0;
    size_t machine_down_hours = 0;  ///< Sum over hours of machines down.
  };

  /// `cluster` must outlive the injector (racks and machine ids are read
  /// from it each hour, so fleet growth between runs is picked up).
  FleetFaultInjector(const Cluster* cluster, const FleetFaultProfile& profile,
                     uint64_t seed);

  /// Advances fault state to `hour`: new crashes, rack outages, degradation
  /// onsets/recoveries, permanent losses. Idempotent per hour and monotonic —
  /// calls for an hour already begun are no-ops, so engines can call it
  /// unconditionally at the top of each simulated hour.
  void BeginHour(HourIndex hour);

  /// Health of machine at index `i` in cluster->machines() for the hour last
  /// passed to BeginHour.
  MachineHealth Health(size_t i) const;

  size_t machines_down_now() const;
  size_t machines_degraded_now() const;

  /// Cumulative down-hours of machine index `i` (0 before its first fault).
  uint64_t down_hours(size_t i) const {
    return i < down_hours_.size() ? down_hours_[i] : 0;
  }
  /// Summed cumulative down-hours over a machine set — the per-arm fault
  /// attribution the experiment fabric records at flight start/end (machine
  /// id == machine index in cluster->machines()).
  uint64_t DownHours(const std::vector<int>& machine_ids) const;

  const Counters& counters() const { return counters_; }
  const FleetFaultProfile& profile() const { return profile_; }

  /// Bit-exact checkpoint of mutable state (down clocks, speeds, loss flags,
  /// counters, hour cursor). Profile and seed are construction-time.
  std::string SerializeState() const;
  Status RestoreState(const std::string& blob);

 private:
  void EnsureSized();
  Rng EntityRng(uint64_t salt, uint64_t entity_id, HourIndex hour) const;

  const Cluster* cluster_;
  FleetFaultProfile profile_;
  uint64_t seed_;
  Counters counters_;

  HourIndex current_hour_ = -1;  ///< Last hour begun; -1 before first call.
  std::vector<HourIndex> down_until_;       ///< Crash repair clocks (0 = up).
  std::vector<HourIndex> rack_down_until_;  ///< Rack outage clocks, by rack id.
  std::vector<uint8_t> lost_;               ///< Permanent-loss flags.
  std::vector<double> speed_;               ///< Throughput multipliers.
  std::vector<uint64_t> down_hours_;        ///< Cumulative down-hours, by machine.
};

}  // namespace kea::sim

#endif  // KEA_SIM_FLEET_FAULT_INJECTOR_H_
