#include "sim/fluid_sweep.h"

#include <utility>

#include "common/thread_pool.h"
#include "obs/metrics.h"
#include "obs/profiler.h"
#include "obs/trace.h"

namespace kea::sim {

namespace {

// Deterministic: sweep fan-out totals, independent of thread count.
obs::Counter* SweepRunsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("sweep.runs");
  return c;
}
obs::Counter* SweepCandidatesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter("sweep.candidates");
  return c;
}
obs::Counter* SweepMachineHoursCounter() {
  static obs::Counter* c =
      obs::Registry::Get().GetCounter("sweep.machine_hours");
  return c;
}

}  // namespace

SweepSummary SummarizeTelemetry(const std::string& label,
                                const telemetry::TelemetryStore& store) {
  SweepSummary s;
  s.label = label;
  double util = 0.0, containers = 0.0, latency_weighted = 0.0, power = 0.0;
  for (const auto& r : store.records()) {
    ++s.machine_hours;
    util += r.cpu_utilization;
    containers += r.avg_running_containers;
    latency_weighted += r.avg_task_latency_s * r.tasks_finished;
    s.total_tasks += r.tasks_finished;
    s.total_queued += r.queued_containers;
    s.total_rejected += r.rejected_containers;
    power += r.power_watts;
  }
  if (s.machine_hours > 0) {
    double n = static_cast<double>(s.machine_hours);
    s.mean_utilization = util / n;
    s.mean_running_containers = containers / n;
    s.mean_power_watts = power / n;
  }
  if (s.total_tasks > 0.0) s.mean_task_latency_s = latency_weighted / s.total_tasks;
  return s;
}

StatusOr<std::vector<telemetry::TelemetryStore>> RunConfigSweepTelemetry(
    const PerfModel* model, const Cluster& base, const WorkloadModel* workload,
    const std::vector<SweepCandidate>& candidates, const SweepOptions& options) {
  if (model == nullptr) return Status::InvalidArgument("null perf model");
  if (workload == nullptr) return Status::InvalidArgument("null workload model");
  if (candidates.empty()) return Status::InvalidArgument("empty candidate sweep");
  if (options.hours <= 0) return Status::InvalidArgument("hours must be positive");

  KEA_TRACE_SPAN("sweep.run",
                 {{"candidates", std::to_string(candidates.size())},
                  {"hours", std::to_string(options.hours)}});
  KEA_PHASE("sweep.run");
  SweepRunsCounter()->Increment();
  SweepCandidatesCounter()->Increment(candidates.size());

  // Substream parent: candidate i simulates with seed Split(i), so its draw
  // sequence depends only on (options.engine.seed, i) — never on which
  // thread picks it up.
  Rng substream_base(options.engine.seed);

  std::vector<telemetry::TelemetryStore> stores(candidates.size());
  std::vector<Status> failures(candidates.size(), Status::OK());
  common::ThreadPool::Run(options.num_threads, candidates.size(), [&](size_t i) {
    KEA_TRACE_SPAN("sweep.candidate", {{"label", candidates[i].label},
                                       {"index", std::to_string(i)}});
    Cluster cluster = base;
    if (candidates[i].edit) {
      Status edited = candidates[i].edit(&cluster);
      if (!edited.ok()) {
        failures[i] = edited;
        return;
      }
    }
    FluidEngine::Options engine_options = options.engine;
    engine_options.seed = substream_base.Split(i).seed();
    FluidEngine engine(model, &cluster, workload, engine_options);
    failures[i] = engine.Run(options.start_hour, options.hours, &stores[i]);
  });
  for (const Status& s : failures) KEA_RETURN_IF_ERROR(s);
  // Single-threaded tally keeps the increment order deterministic.
  uint64_t machine_hours = 0;
  for (const auto& store : stores) machine_hours += store.size();
  SweepMachineHoursCounter()->Increment(machine_hours);
  return stores;
}

StatusOr<std::vector<SweepSummary>> RunConfigSweep(
    const PerfModel* model, const Cluster& base, const WorkloadModel* workload,
    const std::vector<SweepCandidate>& candidates, const SweepOptions& options) {
  KEA_ASSIGN_OR_RETURN(
      std::vector<telemetry::TelemetryStore> stores,
      RunConfigSweepTelemetry(model, base, workload, candidates, options));
  std::vector<SweepSummary> summaries;
  summaries.reserve(stores.size());
  for (size_t i = 0; i < stores.size(); ++i) {
    summaries.push_back(SummarizeTelemetry(candidates[i].label, stores[i]));
  }
  return summaries;
}

}  // namespace kea::sim
