#include "sim/sku.h"

namespace kea::sim {

SkuCatalog SkuCatalog::Default() {
  // Six generations spanning a decade of hardware. Numbers are synthetic but
  // ordered like real fleet evolution: core counts and speeds grow, HDD
  // bandwidth stagnates while SSD bandwidth grows.
  std::vector<SkuSpec> specs = {
      // name, cores, ram, ssd, speed, hdd, ssd_bw, idle, peak, provisioned
      // HDD bandwidth grows with machine size (more spindles per chassis);
      // SSD bandwidth grows faster across generations.
      {"Gen1.1", 16, 64.0, 240.0, 0.60, 120.0, 350.0, 90.0, 280.0, 294.0},
      {"Gen2.1", 24, 96.0, 480.0, 0.72, 170.0, 500.0, 95.0, 320.0, 336.0},
      {"Gen2.2", 24, 128.0, 480.0, 0.78, 180.0, 520.0, 95.0, 330.0, 346.5},
      {"Gen3.1", 32, 192.0, 960.0, 0.88, 260.0, 900.0, 100.0, 380.0, 399.0},
      {"Gen3.2", 48, 256.0, 1200.0, 1.00, 380.0, 1100.0, 105.0, 420.0, 441.0},
      {"Gen4.1", 64, 384.0, 1920.0, 1.18, 520.0, 1600.0, 110.0, 480.0, 504.0},
  };
  auto catalog = Create(std::move(specs));
  // The default catalog is well-formed by construction.
  return std::move(catalog).value();
}

StatusOr<SkuCatalog> SkuCatalog::Create(std::vector<SkuSpec> specs) {
  if (specs.empty()) return Status::InvalidArgument("empty SKU catalog");
  for (const auto& s : specs) {
    if (s.name.empty()) return Status::InvalidArgument("SKU with empty name");
    if (s.cores <= 0) return Status::InvalidArgument(s.name + ": cores must be positive");
    if (s.core_speed <= 0.0) {
      return Status::InvalidArgument(s.name + ": core_speed must be positive");
    }
    if (s.ram_gb <= 0.0 || s.ssd_gb < 0.0) {
      return Status::InvalidArgument(s.name + ": invalid memory sizes");
    }
    if (s.hdd_mbps <= 0.0 || s.ssd_mbps <= 0.0) {
      return Status::InvalidArgument(s.name + ": invalid I/O bandwidth");
    }
    if (s.peak_watts <= s.idle_watts || s.idle_watts <= 0.0) {
      return Status::InvalidArgument(s.name + ": invalid power envelope");
    }
    if (s.provisioned_watts < s.peak_watts) {
      return Status::InvalidArgument(s.name +
                                     ": provisioned power below peak draw");
    }
  }
  return SkuCatalog(std::move(specs));
}

StatusOr<SkuId> SkuCatalog::FindByName(const std::string& name) const {
  for (size_t i = 0; i < specs_.size(); ++i) {
    if (specs_[i].name == name) return static_cast<SkuId>(i);
  }
  return Status::NotFound("SKU not found: " + name);
}

std::vector<ScSpec> DefaultSoftwareConfigs() {
  return {
      {"SC1", /*temp_store_on_ssd=*/false},
      {"SC2", /*temp_store_on_ssd=*/true},
  };
}

}  // namespace kea::sim
