#include "sim/job_sim.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <queue>

namespace kea::sim {

std::vector<JobTemplateSpec> BenchmarkJobTemplates() {
  return {
      // Scan-heavy join pipeline (TPC-H-like).
      {"bench_scan_join", {48, 24, 8}, 900.0, 1.0},
      // Deep aggregation tree (TPC-DS-like).
      {"bench_agg_tree", {64, 32, 16, 4}, 1200.0, 0.8},
      // Short reporting job.
      {"bench_report", {16, 4}, 600.0, 0.6},
  };
}

namespace {

/// A task waiting to run or running.
struct PendingTask {
  size_t job_index;
  int stage;
  int task_index;
  int task_type;
  double work_multiplier;  // type cpu multiplier * template scale * tail draw
  double temp_multiplier;
  int attempt = 0;  // Retry count for this task.
};

struct JobState {
  int64_t job_id;
  int template_id;
  double submit_time;
  /// Content stream: drives this job's task types and work draws. Seeded
  /// from (simulation seed, template, instance), so the *workload* is
  /// identical across runs that differ only in cluster configuration —
  /// before/after comparisons (Figure 11) are paired by construction.
  Rng content_rng{0};
  int current_stage = 0;
  int remaining_in_stage = 0;
  bool finished = false;
  /// Max task duration seen in the current stage and the record index of
  /// that task (for critical-path marking).
  double stage_max_duration = -1.0;
  size_t stage_critical_record = 0;
};

struct Completion {
  double time;
  int machine_id;
  size_t record_index;  // into Result::tasks
  size_t job_index;
  PendingTask task;  // Retained for retry on failure.

  bool operator>(const Completion& other) const { return time > other.time; }
};

struct Arrival {
  double time;
  size_t template_index;
  bool operator>(const Arrival& other) const { return time > other.time; }
};

}  // namespace

JobSimulator::JobSimulator(const PerfModel* model, const Cluster* cluster,
                           const WorkloadModel* workload, const Options& options)
    : model_(model), cluster_(cluster), workload_(workload), options_(options),
      rng_(options.seed) {}

StatusOr<JobSimulator::Result> JobSimulator::Run(
    const std::vector<JobTemplateSpec>& templates, double duration_s) {
  if (templates.empty()) return Status::InvalidArgument("no job templates");
  if (duration_s <= 0.0) return Status::InvalidArgument("duration must be positive");
  for (const auto& t : templates) {
    if (t.stage_tasks.empty()) {
      return Status::InvalidArgument("template " + t.name + " has no stages");
    }
    for (int n : t.stage_tasks) {
      if (n <= 0) {
        return Status::InvalidArgument("template " + t.name + " has an empty stage");
      }
    }
    if (t.mean_interarrival_s <= 0.0) {
      return Status::InvalidArgument("template " + t.name + " needs positive interarrival");
    }
    if (t.work_scale <= 0.0) {
      return Status::InvalidArgument("template " + t.name + " needs positive work scale");
    }
  }

  if (options_.background_load_fraction < 0.0 ||
      options_.background_load_fraction >= 1.0) {
    return Status::InvalidArgument("background_load_fraction must be in [0, 1)");
  }

  const auto& machines = cluster_->machines();
  const size_t n_machines = machines.size();
  // Background production containers occupy a fraction of every machine's
  // slots for the whole run (at least one slot stays free for the benchmark
  // jobs). They contribute to utilization-driven interference.
  std::vector<int> running(n_machines, 0);
  // The slot pool holds one entry per free container slot (machine id).
  // Picking a uniformly random *slot* matches the randomizing scheduler: a
  // machine's placement probability is proportional to its free capacity,
  // exactly like the fluid engine's slot-proportional assignment.
  std::vector<int> slot_pool;
  // Fleet-chaos snapshot for the whole run: down machines offer no slots,
  // degraded machines run slower. All-ones when no injector is attached (or
  // its profile is empty), keeping the healthy path bit-identical.
  std::vector<uint8_t> fleet_up(n_machines, 1);
  std::vector<double> fleet_speed(n_machines, 1.0);
  if (fleet_faults_ != nullptr) {
    for (size_t i = 0; i < n_machines; ++i) {
      MachineHealth health = fleet_faults_->Health(i);
      fleet_up[i] = health.up ? 1 : 0;
      fleet_speed[i] = health.speed;
    }
  }
  for (size_t i = 0; i < n_machines; ++i) {
    if (machines[i].max_containers <= 0 || fleet_up[i] == 0) continue;
    int background = static_cast<int>(options_.background_load_fraction *
                                      machines[i].max_containers);
    background = std::min(background, machines[i].max_containers - 1);
    running[i] = background;
    for (int s = background; s < machines[i].max_containers; ++s) {
      slot_pool.push_back(static_cast<int>(i));
    }
  }

  // Acquires the slot at pool index `pick` (swap-remove, O(1)).
  auto acquire_slot = [&](size_t pick) {
    int machine_id = slot_pool[pick];
    slot_pool[pick] = slot_pool.back();
    slot_pool.pop_back();
    ++running[static_cast<size_t>(machine_id)];
    return machine_id;
  };
  auto release_slot = [&](int machine_id) {
    --running[static_cast<size_t>(machine_id)];
    slot_pool.push_back(machine_id);
  };

  Result result;
  std::vector<JobState> jobs;
  std::deque<PendingTask> waiting;

  std::priority_queue<Completion, std::vector<Completion>, std::greater<>> completions;
  std::priority_queue<Arrival, std::vector<Arrival>, std::greater<>> arrivals;

  // Per-template arrival streams: the submission times of template t do not
  // depend on anything else in the simulation, so the job population is
  // identical across configurations.
  constexpr uint64_t kGolden = 0x9e3779b97f4a7c15ULL;
  std::vector<Rng> arrival_rngs;
  arrival_rngs.reserve(templates.size());
  for (size_t t = 0; t < templates.size(); ++t) {
    arrival_rngs.emplace_back(options_.seed ^ (kGolden * (t + 1)));
    arrivals.push(
        {arrival_rngs[t].Exponential(1.0 / templates[t].mean_interarrival_s), t});
  }
  std::vector<int64_t> instances_per_template(templates.size(), 0);

  int64_t next_job_id = 0;
  size_t total_tasks = 0;

  const PerfModel::Params& params = model_->params();
  const auto& task_types = workload_->spec().task_types;

  // Computes a task's duration on `machine` given its current occupancy.
  auto task_duration = [&](const PendingTask& task, const Machine& m) {
    double util = model_->Utilization(
        m.sku, static_cast<double>(running[static_cast<size_t>(m.id)]));
    const SkuSpec& spec = model_->catalog().spec(m.sku);
    double speed = spec.core_speed *
                   model_->ThrottleFactor(m.sku, util, m.power_cap_fraction,
                                          m.feature_enabled);
    if (m.feature_enabled) speed *= params.feature_speed_boost;
    speed *= fleet_speed[static_cast<size_t>(m.id)];
    double cpu_s = params.task_cpu_work * task.work_multiplier / speed;
    cpu_s *= 1.0 + params.interference * util * util;
    const ScSpec& sc = model_->software_configs()[static_cast<size_t>(m.sc)];
    double medium = sc.temp_store_on_ssd ? spec.ssd_mbps : spec.hdd_mbps;
    double share = std::max<double>(running[static_cast<size_t>(m.id)], 1.0);
    double io_s = params.task_temp_mb * task.temp_multiplier * share / medium;
    double noisy = (cpu_s + io_s) * rng_.LogNormal(0.0, options_.task_noise_sigma);
    return noisy;
  };

  // Places `task` on a uniformly random free slot (if any); returns true if
  // dispatched.
  auto try_dispatch = [&](const PendingTask& task, double now) {
    if (slot_pool.empty()) return false;
    size_t pick = static_cast<size_t>(
        rng_.UniformInt(0, static_cast<int64_t>(slot_pool.size()) - 1));
    int machine_id = acquire_slot(pick);
    const Machine& m = machines[static_cast<size_t>(machine_id)];

    double duration = task_duration(task, m);

    telemetry::TaskRecord record;
    record.job_id = jobs[task.job_index].job_id;
    record.stage = task.stage;
    record.task_type = task.task_type;
    record.machine_id = machine_id;
    record.rack = m.rack;
    record.sku = m.sku;
    record.sc = m.sc;
    record.start_time_s = now;
    record.duration_s = duration;
    record.on_critical_path = false;
    size_t record_index = result.tasks.size();
    result.tasks.push_back(record);

    completions.push(
        {now + duration, machine_id, record_index, task.job_index, task});
    return true;
  };

  // Enqueues all tasks of `stage` for job `job_index` at time `now`.
  auto launch_stage = [&](size_t job_index, int stage, double now) {
    JobState& job = jobs[job_index];
    const JobTemplateSpec& tmpl =
        templates[static_cast<size_t>(job.template_id)];
    int count = tmpl.stage_tasks[static_cast<size_t>(stage)];
    job.current_stage = stage;
    job.remaining_in_stage = count;
    job.stage_max_duration = -1.0;
    for (int i = 0; i < count; ++i) {
      PendingTask task;
      task.job_index = job_index;
      task.stage = stage;
      task.task_index = i;
      task.task_type = static_cast<int>(workload_->SampleTaskType(&job.content_rng));
      const TaskType& type = task_types[static_cast<size_t>(task.task_type)];
      // Heavy-tailed work: Pareto with mean normalized to 1.
      double tail = job.content_rng.Pareto(1.0, options_.work_pareto_alpha) *
                    (options_.work_pareto_alpha - 1.0) / options_.work_pareto_alpha;
      task.work_multiplier = type.cpu_work_multiplier * tmpl.work_scale * tail;
      task.temp_multiplier = type.temp_mb_multiplier;
      ++total_tasks;
      if (!try_dispatch(task, now)) waiting.push_back(task);
    }
  };

  double now = 0.0;
  while (now < duration_s) {
    bool has_arrival = !arrivals.empty();
    bool has_completion = !completions.empty();
    if (!has_arrival && !has_completion) break;
    if (total_tasks > options_.max_tasks) {
      return Status::ResourceExhausted("job simulation exceeded max_tasks");
    }

    double arrival_time = has_arrival ? arrivals.top().time : 1e300;
    double completion_time = has_completion ? completions.top().time : 1e300;

    if (arrival_time <= completion_time) {
      Arrival a = arrivals.top();
      arrivals.pop();
      now = a.time;
      if (now >= duration_s) break;
      // Schedule the next submission of this template.
      const JobTemplateSpec& tmpl = templates[a.template_index];
      arrivals.push({now + arrival_rngs[a.template_index].Exponential(
                               1.0 / tmpl.mean_interarrival_s),
                     a.template_index});
      JobState job;
      job.job_id = next_job_id++;
      job.template_id = static_cast<int>(a.template_index);
      job.submit_time = now;
      int64_t instance = instances_per_template[a.template_index]++;
      job.content_rng = Rng(options_.seed ^ (kGolden * (a.template_index + 101)) ^
                            (kGolden * static_cast<uint64_t>(instance * 2 + 1)));
      jobs.push_back(job);
      launch_stage(jobs.size() - 1, 0, now);
    } else {
      Completion c = completions.top();
      completions.pop();
      now = c.time;

      // Free the slot and pull from the FIFO queue.
      release_slot(c.machine_id);
      while (!waiting.empty() && !slot_pool.empty()) {
        PendingTask task = waiting.front();
        waiting.pop_front();
        try_dispatch(task, now);
      }

      // Failure injection: the completed attempt may actually have failed;
      // the framework retries it on a (usually different) machine. Failed
      // attempts never finish a stage and never join the critical path.
      if (options_.task_failure_probability > 0.0 &&
          c.task.attempt < options_.max_task_retries &&
          rng_.Bernoulli(options_.task_failure_probability)) {
        ++result.task_retries;
        PendingTask retry = c.task;
        ++retry.attempt;
        ++total_tasks;
        if (!try_dispatch(retry, now)) waiting.push_back(retry);
        continue;
      }

      JobState& job = jobs[c.job_index];
      const telemetry::TaskRecord& record = result.tasks[c.record_index];
      if (record.duration_s > job.stage_max_duration) {
        job.stage_max_duration = record.duration_s;
        job.stage_critical_record = c.record_index;
      }
      if (--job.remaining_in_stage == 0) {
        // The slowest task of the completed stage is on the critical path.
        result.tasks[job.stage_critical_record].on_critical_path = true;
        const JobTemplateSpec& tmpl =
            templates[static_cast<size_t>(job.template_id)];
        int next_stage = job.current_stage + 1;
        if (next_stage < static_cast<int>(tmpl.stage_tasks.size())) {
          launch_stage(c.job_index, next_stage, now);
        } else {
          job.finished = true;
          telemetry::JobRecord jr;
          jr.job_id = job.job_id;
          jr.template_id = job.template_id;
          jr.submit_time_s = job.submit_time;
          jr.runtime_s = now - job.submit_time;
          result.jobs.push_back(jr);
        }
      }
    }
  }

  for (const JobState& job : jobs) {
    if (!job.finished) ++result.unfinished_jobs;
  }
  return result;
}

}  // namespace kea::sim
