#ifndef KEA_SIM_FLUID_SWEEP_H_
#define KEA_SIM_FLUID_SWEEP_H_

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sim/cluster.h"
#include "sim/fluid_engine.h"
#include "telemetry/store.h"

namespace kea::sim {

/// One candidate configuration in a sweep: a label plus an edit applied to a
/// private copy of the base cluster before simulation. A null edit simulates
/// the base configuration unchanged (the control arm of a what-if sweep).
struct SweepCandidate {
  std::string label;
  std::function<Status(Cluster*)> edit;
};

/// Fleet-level aggregate of one candidate's simulated window. All fields are
/// plain sums/means over the emitted machine-hour records, so two summaries
/// are bitwise comparable.
struct SweepSummary {
  std::string label;
  int64_t machine_hours = 0;           ///< Records emitted (up machines only).
  double mean_utilization = 0.0;
  double mean_running_containers = 0.0;
  /// Task-weighted mean latency (the W-bar of Eq. 9, measured not predicted).
  double mean_task_latency_s = 0.0;
  double total_tasks = 0.0;
  double total_queued = 0.0;
  double total_rejected = 0.0;
  double mean_power_watts = 0.0;
};

struct SweepOptions {
  /// Engine options for every candidate; `engine.seed` keys the sweep's
  /// substream family (candidate i simulates with substream i of it).
  FluidEngine::Options engine;
  HourIndex start_hour = 0;
  int hours = kHoursPerWeek;
  /// Threads for the candidate loop: 0 = hardware_concurrency, 1 = the
  /// serial legacy path. Candidates never share an engine, cluster copy or
  /// RNG stream, so results are bit-identical at every thread count.
  int num_threads = 0;
};

/// Simulates every candidate configuration on its own copy of `base` with an
/// independent RNG substream and returns one telemetry store per candidate,
/// in candidate order. This is the evaluation loop of configuration search:
/// embarrassingly parallel across candidates, deterministic in their indices.
/// `model` and `workload` must outlive the call and are shared read-only.
StatusOr<std::vector<telemetry::TelemetryStore>> RunConfigSweepTelemetry(
    const PerfModel* model, const Cluster& base, const WorkloadModel* workload,
    const std::vector<SweepCandidate>& candidates, const SweepOptions& options);

/// Same sweep, reduced to one fleet summary per candidate.
StatusOr<std::vector<SweepSummary>> RunConfigSweep(
    const PerfModel* model, const Cluster& base, const WorkloadModel* workload,
    const std::vector<SweepCandidate>& candidates, const SweepOptions& options);

/// Aggregates a telemetry store into the sweep's summary form.
SweepSummary SummarizeTelemetry(const std::string& label,
                                const telemetry::TelemetryStore& store);

}  // namespace kea::sim

#endif  // KEA_SIM_FLUID_SWEEP_H_
