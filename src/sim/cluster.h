#ifndef KEA_SIM_CLUSTER_H_
#define KEA_SIM_CLUSTER_H_

#include <map>
#include <vector>

#include "common/status.h"
#include "sim/sku.h"
#include "sim/types.h"

namespace kea::sim {

/// One machine in the simulated fleet, with its currently effective
/// configuration. Configuration fields are mutated by the flighting /
/// deployment modules through Cluster.
struct Machine {
  int id = 0;
  int rack = 0;
  /// Sub-cluster (Hydra-style federation unit [18]); pilot flightings in
  /// Section 5.2.2 target whole sub-clusters.
  int sub_cluster = 0;
  SkuId sku = 0;
  ScId sc = 0;

  /// YARN max_num_running_containers for this machine.
  int max_containers = 0;
  /// Maximum low-priority containers that may queue on this machine
  /// (Section 5.3); excess is rejected back to the scheduler.
  int max_queued_containers = 0;
  /// Power cap as a fraction below provisioned level (0 = uncapped).
  double power_cap_fraction = 0.0;
  /// Processor Feature flag (Section 7.2).
  bool feature_enabled = false;

  MachineGroupKey group() const { return MachineGroupKey{sc, sku}; }
};

/// Describes the fleet to build. The default mirrors Figure 2: older
/// generations are fewer and run hotter (their manual tuning has had years to
/// push them), newer generations are plentiful but conservatively configured.
struct ClusterSpec {
  int total_machines = 2000;
  int machines_per_rack = 40;

  /// Fraction of the fleet per SKU; must have one entry per catalog SKU and
  /// sum to ~1.
  std::vector<double> sku_fractions;

  /// Baseline max_num_running_containers per SKU (the manually tuned
  /// starting point KEA improves on).
  std::vector<int> baseline_max_containers;

  /// Baseline maximum queued low-priority containers per machine; the
  /// manual default is one flat value for every SKU (the very practice the
  /// Section 5.3 queue tuning replaces with per-SKU values).
  int baseline_max_queued = 12;

  /// Fraction of machines deployed with SC2 (temp store on SSD). Machines
  /// alternate SC within a rack so both groups see identical workloads.
  double sc2_fraction = 0.5;

  /// Racks per sub-cluster (the federated resource-manager unit).
  int racks_per_subcluster = 10;

  /// The default spec for the default six-SKU catalog.
  static ClusterSpec Default();
};

/// The simulated fleet: machines with their racks, SKUs, SCs and effective
/// configuration, plus group indexes used by the engines and by KEA.
class Cluster {
 public:
  /// Creates an empty cluster (no machines); populate via Build().
  Cluster() = default;

  /// Builds the fleet deterministically from the spec. Returns
  /// InvalidArgument when the spec is inconsistent with the catalog.
  static StatusOr<Cluster> Build(const SkuCatalog& catalog, const ClusterSpec& spec);

  const std::vector<Machine>& machines() const { return machines_; }
  std::vector<Machine>& mutable_machines() { return machines_; }

  size_t size() const { return machines_.size(); }
  int num_racks() const { return num_racks_; }

  /// Machine ids per machine group (SC-SKU combination), ordered by key.
  const std::map<MachineGroupKey, std::vector<int>>& groups() const { return groups_; }

  /// Number of machines n_k in a group; 0 if the group doesn't exist.
  int GroupSize(MachineGroupKey key) const;

  /// Sum of max_containers over all machines (the cluster's container
  /// capacity under the current configuration).
  int64_t TotalContainerSlots() const;

  /// Sets max_containers for every machine in the group. NotFound if the
  /// group is empty.
  Status SetGroupMaxContainers(MachineGroupKey key, int max_containers);

  /// Sets max_queued_containers for every machine in the group.
  Status SetGroupMaxQueued(MachineGroupKey key, int max_queued);

  /// Sum of max_queued_containers over all machines.
  int64_t TotalQueueSlots() const;

  /// Machine ids of one sub-cluster; empty when out of range.
  std::vector<int> SubClusterMachines(int sub_cluster) const;

  int num_subclusters() const { return num_subclusters_; }

  /// Sets the power cap fraction / Feature flag on a set of machines.
  /// OutOfRange on a bad machine id.
  Status SetPowerCap(const std::vector<int>& machine_ids, double cap_fraction);
  Status SetFeature(const std::vector<int>& machine_ids, bool enabled);

  /// Reassigns the software configuration of a set of machines.
  Status SetSoftwareConfig(const std::vector<int>& machine_ids, ScId sc);

 private:
  void RebuildGroups();

  std::vector<Machine> machines_;
  std::map<MachineGroupKey, std::vector<int>> groups_;
  int num_racks_ = 0;
  int num_subclusters_ = 0;
};

}  // namespace kea::sim

#endif  // KEA_SIM_CLUSTER_H_
