#include "sim/fleet_fault_injector.h"

#include <algorithm>
#include <cmath>

#include "common/snapshot.h"

namespace kea::sim {

namespace {

// Substream salt family for fleet faults. Deliberately disjoint from
// TelemetryFaultInjector's 0x7E1E7E1E… family so both injectors can share
// one session seed without their draws colliding (see determinism_test).
constexpr uint64_t kCrashSalt = 0xF1EE7FA0C0000001ULL;
constexpr uint64_t kRackSalt = 0xF1EE7FA0C0000002ULL;
constexpr uint64_t kDegradeSalt = 0xF1EE7FA0C0000003ULL;
constexpr uint64_t kLossSalt = 0xF1EE7FA0C0000004ULL;

}  // namespace

FleetFaultProfile FleetFaultProfile::CrashStorm() {
  FleetFaultProfile p;
  p.crash_rate_per_hour = 0.01;
  p.mean_repair_hours = 6.0;
  return p;
}

FleetFaultProfile FleetFaultProfile::RackOutages() {
  FleetFaultProfile p;
  p.rack_outage_rate_per_hour = 0.01;
  p.mean_rack_outage_hours = 12.0;
  return p;
}

FleetFaultProfile FleetFaultProfile::SlowDegradation() {
  FleetFaultProfile p;
  p.degrade_rate_per_hour = 0.01;
  p.degrade_severity = 0.4;
  p.recovery_per_hour = 0.01;
  return p;
}

FleetFaultInjector::FleetFaultInjector(const Cluster* cluster,
                                       const FleetFaultProfile& profile,
                                       uint64_t seed)
    : cluster_(cluster), profile_(profile), seed_(seed) {}

Rng FleetFaultInjector::EntityRng(uint64_t salt, uint64_t entity_id,
                                  HourIndex hour) const {
  return Rng(MixSeed(seed_ ^ salt,
                     (entity_id << 32) | static_cast<uint32_t>(hour)));
}

void FleetFaultInjector::EnsureSized() {
  const auto& machines = cluster_->machines();
  if (down_until_.size() != machines.size()) {
    down_until_.assign(machines.size(), 0);
    lost_.assign(machines.size(), 0);
    speed_.assign(machines.size(), 1.0);
    down_hours_.assign(machines.size(), 0);
  }
  int max_rack = -1;
  for (const Machine& m : machines) max_rack = std::max(max_rack, m.rack);
  if (rack_down_until_.size() != static_cast<size_t>(max_rack + 1)) {
    rack_down_until_.resize(static_cast<size_t>(max_rack + 1), 0);
  }
}

void FleetFaultInjector::BeginHour(HourIndex hour) {
  EnsureSized();
  for (HourIndex h = current_hour_ + 1; h <= hour; ++h) {
    const auto& machines = cluster_->machines();

    if (profile_.rack_outage_rate_per_hour > 0.0) {
      for (size_t r = 0; r < rack_down_until_.size(); ++r) {
        if (rack_down_until_[r] > h) continue;
        Rng rng = EntityRng(kRackSalt, r, h);
        if (rng.Bernoulli(profile_.rack_outage_rate_per_hour)) {
          double d = rng.Exponential(1.0 / profile_.mean_rack_outage_hours);
          rack_down_until_[r] = h + std::max(1, static_cast<int>(d));
          ++counters_.rack_outages;
        }
      }
    }

    for (size_t i = 0; i < machines.size(); ++i) {
      if (lost_[i]) continue;
      const uint64_t id = static_cast<uint64_t>(machines[i].id);
      const bool machine_up = down_until_[i] <= h &&
                              rack_down_until_[machines[i].rack] <= h;

      if (profile_.permanent_loss_rate_per_hour > 0.0 && machine_up) {
        Rng rng = EntityRng(kLossSalt, id, h);
        if (rng.Bernoulli(profile_.permanent_loss_rate_per_hour)) {
          lost_[i] = 1;
          ++counters_.permanent_losses;
          continue;
        }
      }

      if (profile_.crash_rate_per_hour > 0.0 && machine_up) {
        Rng rng = EntityRng(kCrashSalt, id, h);
        if (rng.Bernoulli(profile_.crash_rate_per_hour)) {
          double repair = rng.Exponential(1.0 / profile_.mean_repair_hours);
          down_until_[i] = h + std::max(1, static_cast<int>(repair));
          ++counters_.crashes;
        }
      }

      if (speed_[i] < 1.0) {
        // Gradual recovery; no draw needed — onset fixed the trajectory.
        speed_[i] = std::min(1.0, speed_[i] + profile_.recovery_per_hour);
        if (speed_[i] >= 1.0) ++counters_.recoveries;
      } else if (profile_.degrade_rate_per_hour > 0.0) {
        Rng rng = EntityRng(kDegradeSalt, id, h);
        if (rng.Bernoulli(profile_.degrade_rate_per_hour)) {
          double drop = profile_.degrade_severity * rng.Uniform(0.5, 1.5);
          drop = std::clamp(drop, 0.05, 0.9);
          speed_[i] = 1.0 - drop;
          ++counters_.degradations;
        }
      }
    }

    current_hour_ = h;
    if (!profile_.empty()) {
      // One pass feeds both the fleet-wide counter and the per-machine
      // attribution (the fabric charges each flight arm its own down-hours).
      size_t down = 0;
      for (size_t i = 0; i < down_until_.size(); ++i) {
        if (!Health(i).up) {
          ++down;
          ++down_hours_[i];
        }
      }
      counters_.machine_down_hours += down;
    }
  }
}

MachineHealth FleetFaultInjector::Health(size_t i) const {
  MachineHealth h;
  if (current_hour_ < 0 || i >= down_until_.size()) return h;
  const Machine& m = cluster_->machines()[i];
  h.up = !lost_[i] && down_until_[i] <= current_hour_ &&
         rack_down_until_[m.rack] <= current_hour_;
  h.speed = speed_[i];
  return h;
}

size_t FleetFaultInjector::machines_down_now() const {
  size_t down = 0;
  for (size_t i = 0; i < down_until_.size(); ++i) {
    if (!Health(i).up) ++down;
  }
  return down;
}

uint64_t FleetFaultInjector::DownHours(const std::vector<int>& machine_ids) const {
  uint64_t total = 0;
  for (int id : machine_ids) {
    if (id >= 0) total += down_hours(static_cast<size_t>(id));
  }
  return total;
}

size_t FleetFaultInjector::machines_degraded_now() const {
  size_t degraded = 0;
  for (double s : speed_) {
    if (s < 1.0) ++degraded;
  }
  return degraded;
}

std::string FleetFaultInjector::SerializeState() const {
  StateWriter w;
  w.PutI64(current_hour_);
  w.PutU64(down_until_.size());
  for (HourIndex h : down_until_) w.PutI64(h);
  w.PutU64(rack_down_until_.size());
  for (HourIndex h : rack_down_until_) w.PutI64(h);
  w.PutU64(lost_.size());
  for (uint8_t v : lost_) w.PutBool(v != 0);
  w.PutU64(speed_.size());
  for (double s : speed_) w.PutDouble(s);
  w.PutU64(counters_.crashes);
  w.PutU64(counters_.rack_outages);
  w.PutU64(counters_.degradations);
  w.PutU64(counters_.recoveries);
  w.PutU64(counters_.permanent_losses);
  w.PutU64(counters_.machine_down_hours);
  w.PutU64(down_hours_.size());
  for (uint64_t d : down_hours_) w.PutU64(d);
  return w.Release();
}

Status FleetFaultInjector::RestoreState(const std::string& blob) {
  StateReader r(blob);
  int64_t hour = 0;
  KEA_RETURN_IF_ERROR(r.GetI64(&hour));
  uint64_t n = 0;
  KEA_RETURN_IF_ERROR(r.GetU64(&n));
  std::vector<HourIndex> down(n);
  for (HourIndex& h : down) {
    int64_t v = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&v));
    h = static_cast<HourIndex>(v);
  }
  KEA_RETURN_IF_ERROR(r.GetU64(&n));
  std::vector<HourIndex> rack_down(n);
  for (HourIndex& h : rack_down) {
    int64_t v = 0;
    KEA_RETURN_IF_ERROR(r.GetI64(&v));
    h = static_cast<HourIndex>(v);
  }
  KEA_RETURN_IF_ERROR(r.GetU64(&n));
  std::vector<uint8_t> lost(n);
  for (uint8_t& v : lost) {
    bool b = false;
    KEA_RETURN_IF_ERROR(r.GetBool(&b));
    v = b ? 1 : 0;
  }
  KEA_RETURN_IF_ERROR(r.GetU64(&n));
  std::vector<double> speed(n);
  for (double& s : speed) KEA_RETURN_IF_ERROR(r.GetDouble(&s));
  Counters c;
  KEA_RETURN_IF_ERROR(r.GetU64(&c.crashes));
  KEA_RETURN_IF_ERROR(r.GetU64(&c.rack_outages));
  KEA_RETURN_IF_ERROR(r.GetU64(&c.degradations));
  KEA_RETURN_IF_ERROR(r.GetU64(&c.recoveries));
  KEA_RETURN_IF_ERROR(r.GetU64(&c.permanent_losses));
  KEA_RETURN_IF_ERROR(r.GetU64(&c.machine_down_hours));
  // Per-machine down-hours: absent in blobs written before the attribution
  // field existed — restore those as all-zero rather than rejecting them.
  std::vector<uint64_t> down_hours;
  if (!r.AtEnd()) {
    KEA_RETURN_IF_ERROR(r.GetU64(&n));
    down_hours.resize(n);
    for (uint64_t& d : down_hours) KEA_RETURN_IF_ERROR(r.GetU64(&d));
  } else {
    down_hours.assign(down.size(), 0);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("trailing bytes in fleet-fault state blob");
  }
  current_hour_ = static_cast<HourIndex>(hour);
  down_until_ = std::move(down);
  rack_down_until_ = std::move(rack_down);
  lost_ = std::move(lost);
  speed_ = std::move(speed);
  down_hours_ = std::move(down_hours);
  counters_ = c;
  return Status::OK();
}

}  // namespace kea::sim
