#include "sim/perf_model.h"

#include <algorithm>
#include <cmath>

namespace kea::sim {

StatusOr<PerfModel> PerfModel::Create(SkuCatalog catalog,
                                      std::vector<ScSpec> software_configs,
                                      Params params) {
  if (software_configs.empty()) {
    return Status::InvalidArgument("need at least one software configuration");
  }
  if (params.cores_per_container <= 0.0 || params.task_cpu_work <= 0.0) {
    return Status::InvalidArgument("invalid workload parameters");
  }
  if (params.interference < 0.0) {
    return Status::InvalidArgument("interference must be non-negative");
  }
  return PerfModel(std::move(catalog), std::move(software_configs), params);
}

PerfModel PerfModel::CreateDefault() {
  auto model = Create(SkuCatalog::Default(), DefaultSoftwareConfigs(), Params());
  return std::move(model).value();
}

double PerfModel::Utilization(SkuId sku, double containers) const {
  const SkuSpec& spec = catalog_.spec(sku);
  double demand = containers * params_.cores_per_container;
  return std::clamp(demand / static_cast<double>(spec.cores), 0.0, 1.0);
}

double PerfModel::CapWatts(SkuId sku, double cap_fraction) const {
  const SkuSpec& spec = catalog_.spec(sku);
  return spec.provisioned_watts * (1.0 - cap_fraction);
}

double PerfModel::ThrottleFactor(SkuId sku, double utilization, double cap_fraction,
                                 bool feature_enabled) const {
  if (cap_fraction <= 0.0) return 1.0;
  const SkuSpec& spec = catalog_.spec(sku);
  double dynamic = spec.peak_watts - spec.idle_watts;
  if (feature_enabled) dynamic *= params_.feature_power_discount;
  double load = std::pow(utilization, params_.power_util_exponent);
  double uncapped = spec.idle_watts + dynamic * load;
  double cap = CapWatts(sku, cap_fraction);
  if (uncapped <= cap) return 1.0;
  // Frequency scaling brings dynamic power down; idle power is fixed. The
  // achievable speed fraction follows a sub-linear power/frequency relation.
  double needed = (cap - spec.idle_watts) / (dynamic * load);
  needed = std::clamp(needed, 0.25, 1.0);
  return std::pow(needed, params_.power_elasticity);
}

double PerfModel::TaskLatencySeconds(MachineGroupKey group, double utilization,
                                     double containers, double cap_fraction,
                                     bool feature_enabled) const {
  const SkuSpec& spec = catalog_.spec(group.sku);
  const ScSpec& sc = software_configs_[static_cast<size_t>(group.sc)];

  double speed = spec.core_speed;
  speed *= ThrottleFactor(group.sku, utilization, cap_fraction, feature_enabled);
  if (feature_enabled) speed *= params_.feature_speed_boost;

  double cpu_seconds = params_.task_cpu_work / speed;
  cpu_seconds *= 1.0 + params_.interference * utilization * utilization;

  // Temp-store I/O: the medium's bandwidth is shared by concurrent
  // containers, so per-task I/O time grows with the container count.
  double medium_mbps = sc.temp_store_on_ssd ? spec.ssd_mbps : spec.hdd_mbps;
  double share = std::max(containers, 1.0);
  double io_seconds = params_.task_temp_mb * share / medium_mbps;

  return cpu_seconds + io_seconds;
}

double PerfModel::TasksPerHour(double containers, double task_latency_seconds) const {
  if (task_latency_seconds <= 0.0) return 0.0;
  return containers * kSecondsPerHour / task_latency_seconds;
}

double PerfModel::DataReadMbPerHour(double tasks_per_hour) const {
  return tasks_per_hour * params_.task_input_mb;
}

double PerfModel::PowerWatts(SkuId sku, double utilization, double cap_fraction,
                             bool feature_enabled) const {
  const SkuSpec& spec = catalog_.spec(sku);
  double dynamic = spec.peak_watts - spec.idle_watts;
  if (feature_enabled) dynamic *= params_.feature_power_discount;
  double load = std::pow(utilization, params_.power_util_exponent);
  double uncapped = spec.idle_watts + dynamic * load;
  if (cap_fraction <= 0.0) return uncapped;
  return std::min(uncapped, CapWatts(sku, cap_fraction));
}

double PerfModel::CoresUsed(SkuId sku, double utilization) const {
  return utilization * static_cast<double>(catalog_.spec(sku).cores);
}

double PerfModel::SsdUsedGb(double cores_used, double slope_gb_per_core) const {
  return params_.ssd_base_gb + slope_gb_per_core * cores_used;
}

double PerfModel::RamUsedGb(double cores_used, double slope_gb_per_core) const {
  return params_.ram_base_gb + slope_gb_per_core * cores_used;
}

double PerfModel::NetworkUsedMbps(double cores_used,
                                  double slope_mbps_per_core) const {
  return params_.nic_base_mbps + slope_mbps_per_core * cores_used;
}

}  // namespace kea::sim
