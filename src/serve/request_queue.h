#ifndef KEA_SERVE_REQUEST_QUEUE_H_
#define KEA_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "common/status.h"
#include "common/virtual_clock.h"
#include "serve/overload.h"

namespace kea::serve {

/// Bounded multi-tenant admission queue with deadline-aware release gating.
/// Push never blocks: a request is either accepted (enqueued) or rejected
/// with kResourceExhausted (or kDeadlineExceeded when it arrives already
/// expired) — the service's load-shedding contract. Dispatch is round-robin
/// across tenants with at most one in-flight request per tenant, which
/// (a) keeps a chatty tenant from starving the others and (b) serializes each
/// tenant's requests so its session sees the same order a solo run would.
///
/// Two dispatch modes per entry:
///
///  - **Immediate** (`gated == false`, the PR 6 path): the entry is
///    dispatchable the moment it is enqueued. Bit-exact legacy behavior.
///  - **Gated** (`gated == true`): the entry only becomes dispatchable when a
///    virtual-time sweep (AdvanceVirtualTime) releases it against a virtual
///    service capacity. The sweep is also where overload decisions happen,
///    in deterministic order: entries whose deadline passed are shed in
///    queue with kDeadlineExceeded — an expired request is NEVER handed to a
///    worker — and a CoDel controller sheds from the head when sojourn shows
///    the queue stopped draining. Because workers only ever see released
///    entries, the shed/release trace is a pure function of the push +
///    sweep schedule, independent of physical worker count or speed.
class RequestQueue {
 public:
  struct Options {
    /// Total queued requests across all tenants before Push rejects.
    size_t capacity = 256;
    /// Queued requests allowed per tenant before Push rejects, independent
    /// of total occupancy — one tenant can never own the whole queue.
    size_t per_tenant = 64;
  };

  /// Admission + outcome ledger. Conservation invariants at any quiescent
  /// point (no queued or in-flight work):
  ///   submitted == accepted + rejected
  ///   accepted  == completed + shed_deadline + shed_codel + cancelled_shutdown
  struct Counters {
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;          ///< Dispatched and executed.
    uint64_t shed_deadline = 0;      ///< Expired in queue; never dispatched.
    uint64_t shed_codel = 0;         ///< Shed by the CoDel controller.
    uint64_t cancelled_shutdown = 0; ///< Drained unexecuted at shutdown.
    /// Of `completed`: virtual finish (release + cost) beat the deadline.
    /// Deadline-free entries always count. The goodput numerator.
    uint64_t met_deadline = 0;
  };

  /// One gated submission. `work` returns true when it executed the request
  /// and false when it resolved it as cancelled (shutdown drain) — the queue
  /// counts the two differently. `shed` resolves the caller's ticket when
  /// the queue drops the entry without dispatching it; may be null.
  struct PushSpec {
    std::function<bool()> work;
    std::function<void(const Status&)> shed;
    int64_t deadline_ms = kNoDeadlineMs;
    double cost_ms = 1.0;
    bool gated = false;
  };

  /// Deterministic record of one AdvanceVirtualTime sweep.
  struct SweepOutcome {
    int released = 0;
    double leftover_capacity_ms = 0.0;
    /// (tenant, entry id, sojourn_ms) per released entry, release order.
    struct Release {
      int tenant = 0;
      uint64_t id = 0;
      int64_t sojourn_ms = 0;
    };
    std::vector<Release> releases;
    /// (tenant, entry id) per shed entry, shed order.
    std::vector<std::pair<int, uint64_t>> shed_deadline;
    std::vector<std::pair<int, uint64_t>> shed_codel;
  };

  explicit RequestQueue(const Options& options);

  /// Enqueues per `spec` for `tenant`. Returns OK, ResourceExhausted (queue
  /// or per-tenant bound hit — the caller should surface this to the client
  /// verbatim), DeadlineExceeded (already expired on arrival, gated entries
  /// only), or FailedPrecondition after Shutdown. Never blocks.
  Status Push(int tenant, PushSpec spec);

  /// Legacy convenience: immediate-mode entry with no shed callback.
  Status Push(int tenant, std::function<bool()> work);

  /// Counts a submission the service rejected before reaching the queue
  /// (breaker fast-fail, dry retry budget, brownout refusal), so the
  /// submitted == accepted + rejected ledger covers every client call.
  void NoteExternalRejection();

  /// Advances the queue's virtual clock and performs one deterministic
  /// overload sweep: (1) gated entries whose deadline < now are shed with
  /// kDeadlineExceeded; (2) up to `capacity_ms` of request cost is released
  /// round-robin across tenants in per-tenant FIFO order, consulting `codel`
  /// (may be null) at each would-be release with the entry's sojourn.
  /// Shed callbacks run outside the queue lock, in sweep order.
  SweepOutcome AdvanceVirtualTime(int64_t now_ms, double capacity_ms,
                                  CodelController* codel);

  /// Blocks until a released request from a non-busy tenant is available
  /// (returns true, marks the tenant busy) or the queue is shut down and
  /// drained (returns false). Callers MUST call Done(tenant, executed) after
  /// running the work.
  bool PopBlocking(int* tenant, std::function<bool()>* work);

  /// Non-blocking PopBlocking: returns false when nothing is eligible now.
  bool TryPop(int* tenant, std::function<bool()>* work);

  /// Releases the per-tenant in-flight slot taken by Pop. `executed` is the
  /// work functor's return: true counts completed (and met_deadline when the
  /// entry's virtual finish beat its deadline), false cancelled_shutdown.
  void Done(int tenant, bool executed);

  /// Rejects all future Push calls. Gated entries that were never released
  /// are shed immediately with kUnavailable ("drained without execution") —
  /// distinguishable from both execution results and deadline sheds — while
  /// released/immediate entries remain poppable so workers can drain them.
  void Shutdown();

  /// Blocks until no released entry is pending and no request is in flight:
  /// the deterministic barrier between a sweep and the next clock advance.
  /// Unreleased gated entries do NOT count — they are waiting for capacity.
  void WaitQuiescent();

  size_t depth() const;
  /// Total declared cost of gated-but-unreleased entries: the backlog the
  /// brownout ladder's pressure signal is computed from.
  double unreleased_cost_ms() const;
  int64_t virtual_now_ms() const;
  Counters counters() const;

 private:
  struct Entry {
    uint64_t id = 0;
    std::function<bool()> work;
    std::function<void(const Status&)> shed;
    int64_t deadline_ms = kNoDeadlineMs;
    double cost_ms = 1.0;
    int64_t enqueue_vt = 0;
    bool released = false;
    bool met_deadline = true;  ///< Fixed at release: virtual finish <= deadline.
  };

  /// Picks the next eligible (released, non-busy tenant) entry after cursor
  /// `last_served_`, or returns false. Caller holds mu_.
  bool PopLocked(int* tenant, std::function<bool()>* work);
  /// Erases empty per-tenant deques. Caller holds mu_.
  void EraseIfEmpty(int tenant);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, std::deque<Entry>> pending_;
  std::set<int> busy_;  ///< Tenants with a request currently executing.
  /// met_deadline flag of each in-flight entry, keyed by tenant (one
  /// in-flight per tenant), consumed by Done().
  std::map<int, bool> inflight_met_;
  size_t total_ = 0;
  size_t released_pending_ = 0;  ///< Released entries not yet popped.
  double unreleased_cost_ms_ = 0.0;
  uint64_t next_id_ = 1;
  int64_t now_vt_ = 0;
  int last_served_ = -1;    ///< Round-robin cursor for dispatch.
  int release_cursor_ = -1; ///< Round-robin cursor for the release sweep.
  bool shutdown_ = false;
  Counters counters_;
};

}  // namespace kea::serve

#endif  // KEA_SERVE_REQUEST_QUEUE_H_
