#ifndef KEA_SERVE_REQUEST_QUEUE_H_
#define KEA_SERVE_REQUEST_QUEUE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <set>

#include "common/status.h"

namespace kea::serve {

/// Bounded multi-tenant admission queue. Push never blocks: a request is
/// either accepted (enqueued) or rejected with kResourceExhausted — the
/// service's load-shedding contract. Dispatch is round-robin across tenants
/// with at most one in-flight request per tenant, which (a) keeps a chatty
/// tenant from starving the others and (b) serializes each tenant's requests
/// so its session sees the same order a solo run would.
class RequestQueue {
 public:
  struct Options {
    /// Total queued requests across all tenants before Push rejects.
    size_t capacity = 256;
    /// Queued requests allowed per tenant before Push rejects, independent
    /// of total occupancy — one tenant can never own the whole queue.
    size_t per_tenant = 64;
  };

  /// Admission ledger. Conservation invariant: accepted + rejected ==
  /// submitted at any quiescent point.
  struct Counters {
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t rejected = 0;
  };

  explicit RequestQueue(const Options& options);

  /// Enqueues `work` for `tenant`. Returns OK, ResourceExhausted (queue or
  /// per-tenant bound hit — the caller should surface this to the client
  /// verbatim), or FailedPrecondition after Shutdown. Never blocks.
  Status Push(int tenant, std::function<void()> work);

  /// Blocks until a request from a non-busy tenant is available (returns
  /// true, marks the tenant busy) or the queue is shut down and drained
  /// (returns false). Callers MUST call Done(tenant) after running the work.
  bool PopBlocking(int* tenant, std::function<void()>* work);

  /// Non-blocking PopBlocking: returns false when nothing is eligible now.
  bool TryPop(int* tenant, std::function<void()>* work);

  /// Releases the per-tenant in-flight slot taken by Pop.
  void Done(int tenant);

  /// Rejects all future Push calls; pending requests remain poppable so
  /// workers can drain before exiting.
  void Shutdown();

  size_t depth() const;
  Counters counters() const;

 private:
  /// Picks the next eligible tenant after cursor `last_served_`, or returns
  /// false. Caller holds mu_.
  bool PopLocked(int* tenant, std::function<void()>* work);

  const Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<int, std::deque<std::function<void()>>> pending_;
  std::set<int> busy_;  ///< Tenants with a request currently executing.
  size_t total_ = 0;
  int last_served_ = -1;  ///< Round-robin cursor over tenant ids.
  bool shutdown_ = false;
  Counters counters_;
};

}  // namespace kea::serve

#endif  // KEA_SERVE_REQUEST_QUEUE_H_
