#include "serve/overload.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace kea::serve {

// ---------------------------------------------------------------------------
// Retry hints

Status WithRetryAfter(Status status, int64_t retry_after_ms) {
  if (status.ok()) return status;
  char buf[48];
  std::snprintf(buf, sizeof(buf), " [retry_after_ms=%lld]",
                static_cast<long long>(retry_after_ms));
  return Status(status.code(), status.message() + buf);
}

std::optional<int64_t> RetryAfterMs(const Status& status) {
  const std::string& m = status.message();
  const std::string tag = "[retry_after_ms=";
  size_t pos = m.rfind(tag);
  if (pos == std::string::npos) return std::nullopt;
  pos += tag.size();
  size_t end = m.find(']', pos);
  if (end == std::string::npos || end == pos) return std::nullopt;
  long long value = 0;
  for (size_t i = pos; i < end; ++i) {
    if (m[i] < '0' || m[i] > '9') return std::nullopt;
    value = value * 10 + (m[i] - '0');
  }
  return static_cast<int64_t>(value);
}

// ---------------------------------------------------------------------------
// CodelController

int64_t CodelController::ShedSpacing() const {
  // interval / sqrt(count): successive sheds in one episode accelerate, the
  // classic CoDel control law.
  return std::max<int64_t>(
      1, static_cast<int64_t>(static_cast<double>(options_.interval_ms) /
                              std::sqrt(static_cast<double>(
                                  std::max(shed_count_, 1)))));
}

bool CodelController::OnDispatch(int64_t sojourn_ms, int64_t now_ms) {
  if (sojourn_ms < options_.target_ms) {
    // The queue proved it can drain: leave shedding, restart the watch.
    first_above_ms_ = -1;
    shedding_ = false;
    shed_count_ = 0;
    return false;
  }
  if (first_above_ms_ < 0) {
    first_above_ms_ = now_ms + options_.interval_ms;
    return false;
  }
  if (shedding_) {
    if (now_ms >= shed_next_ms_) {
      ++shed_count_;
      ++total_sheds_;
      shed_next_ms_ = now_ms + ShedSpacing();
      return true;
    }
    return false;
  }
  if (now_ms >= first_above_ms_) {
    // Sojourn stayed above target for a full interval: standing backlog.
    shedding_ = true;
    shed_count_ = 1;
    ++total_sheds_;
    shed_next_ms_ = now_ms + ShedSpacing();
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// CircuitBreaker

const char* CircuitBreaker::StateName(State s) {
  switch (s) {
    case State::kHealthy:
      return "HEALTHY";
    case State::kTripped:
      return "TRIPPED";
    case State::kProbation:
      return "PROBATION";
  }
  return "?";
}

CircuitBreaker::CircuitBreaker(const Options& options)
    : options_(options),
      ring_(static_cast<size_t>(std::max(options.window, 1)), true),
      next_cooldown_ms_(options.cooldown_ms) {}

double CircuitBreaker::FailureFraction() const {
  if (ring_size_ == 0) return 0.0;
  int failures = 0;
  for (int i = 0; i < ring_size_; ++i) {
    if (!ring_[static_cast<size_t>(i)]) ++failures;
  }
  return static_cast<double>(failures) / static_cast<double>(ring_size_);
}

void CircuitBreaker::Trip(int64_t now_ms) {
  state_ = State::kTripped;
  open_until_ms_ = now_ms + next_cooldown_ms_;
  next_cooldown_ms_ =
      std::min(next_cooldown_ms_ * 2, options_.max_cooldown_ms);
  ++trips_;
  // A fresh window: post-trip evidence only.
  ring_size_ = 0;
  ring_next_ = 0;
}

bool CircuitBreaker::AllowRequest(int64_t now_ms) {
  switch (state_) {
    case State::kHealthy:
      return true;
    case State::kTripped:
      if (now_ms < open_until_ms_) {
        ++fast_fails_;
        return false;
      }
      // Cooldown over: admit a limited probe set.
      state_ = State::kProbation;
      probes_issued_ = 0;
      probe_successes_ = 0;
      [[fallthrough]];
    case State::kProbation:
      if (probes_issued_ < options_.probation_probes) {
        ++probes_issued_;
        return true;
      }
      ++fast_fails_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordOutcome(bool ok, int64_t now_ms) {
  if (state_ == State::kProbation) {
    if (!ok) {
      Trip(now_ms);
      return;
    }
    ++probe_successes_;
    if (probe_successes_ >= options_.probation_probes) {
      state_ = State::kHealthy;
      next_cooldown_ms_ = options_.cooldown_ms;  // clean bill: reset backoff
      ring_size_ = 0;
      ring_next_ = 0;
    }
    return;
  }
  if (state_ == State::kTripped) return;  // outcomes of pre-trip stragglers
  ring_[static_cast<size_t>(ring_next_)] = ok;
  ring_next_ = (ring_next_ + 1) % static_cast<int>(ring_.size());
  if (ring_size_ < static_cast<int>(ring_.size())) ++ring_size_;
  if (ring_size_ >= options_.min_volume &&
      FailureFraction() >= options_.failure_threshold) {
    Trip(now_ms);
  }
}

// ---------------------------------------------------------------------------
// BrownoutLadder

const char* RungName(BrownoutRung rung) {
  switch (rung) {
    case BrownoutRung::kNormal:
      return "NORMAL";
    case BrownoutRung::kReducedSampling:
      return "REDUCED_SAMPLING";
    case BrownoutRung::kStaleCache:
      return "STALE_CACHE";
    case BrownoutRung::kNoColdWork:
      return "NO_COLD_WORK";
  }
  return "?";
}

BrownoutRung BrownoutLadder::Update(double pressure_ms) {
  ++dwell_;
  const int cur = static_cast<int>(rung_);
  int next = cur;
  if (cur < 3 && pressure_ms >= options_.up_threshold_ms[cur]) {
    next = cur + 1;
  } else if (cur > 0 &&
             pressure_ms <
                 options_.up_threshold_ms[cur - 1] * options_.down_fraction) {
    next = cur - 1;
  }
  if (next != cur && dwell_ >= options_.min_dwell_updates) {
    rung_ = static_cast<BrownoutRung>(next);
    ++transitions_;
    dwell_ = 0;
  }
  return rung_;
}

}  // namespace kea::serve
