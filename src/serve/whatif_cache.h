#ifndef KEA_SERVE_WHATIF_CACHE_H_
#define KEA_SERVE_WHATIF_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/whatif.h"
#include "serve/fingerprint.h"
#include "sim/types.h"

namespace kea::serve {

/// One what-if query: a set of candidate per-group container configurations
/// to evaluate against the tenant's current models. The service coalesces
/// compatible requests into one sweep and memoizes the response.
struct WhatIfRequest {
  std::vector<std::map<sim::MachineGroupKey, double>> candidates;
  /// Monte Carlo samples for the per-candidate error bars (see
  /// WhatIfEngine::EvaluateWhatIf). Part of the cache key: requests that ask
  /// for different sampling depths are different queries. 0 disables.
  int uncertainty_samples = 256;
};

/// Per-candidate evaluation plus the index of the lowest-latency candidate
/// (ties break to the lowest index, keeping the payload deterministic).
/// Under brownout the service may answer with reduced fidelity; such
/// responses are explicitly marked so a client can tell a degraded answer
/// from a full-service one (DESIGN.md "Overload control").
struct WhatIfResponse {
  std::vector<core::WhatIfResult> candidates;
  size_t best_index = 0;
  /// True when this answer was produced under a brownout rung: fewer
  /// Monte-Carlo samples than requested, or served from a stale epoch.
  bool degraded = false;
  /// The brownout rung in force when the answer was produced (0 = none).
  int degraded_rung = 0;
  /// Human-readable degradation cause ("reduced sampling", "stale epoch").
  std::string degraded_reason;
};

/// Responses flow through the cache and tickets as immutable shared payloads:
/// a hit hands back the cached object itself instead of copying a potentially
/// large candidate sweep, which is what makes warm hits an order of magnitude
/// cheaper than recomputation (see bench_serve_throughput). Holders keep the
/// payload alive across eviction and invalidation.
using WhatIfResponsePtr = std::shared_ptr<const WhatIfResponse>;

/// Order-sensitive digest of the request's candidate grids; the config
/// component of the cache key. Doubles hash their IEEE-754 bit pattern.
uint64_t ConfigHash(const WhatIfRequest& request);

/// Evaluates every candidate against `engine`. This is the single evaluation
/// path shared by the service's cold path and by solo baselines, so a cache
/// hit is bit-identical to recomputation by construction: the cached payload
/// was produced by this exact function.
StatusOr<WhatIfResponse> EvaluateWhatIfRequest(const core::WhatIfEngine& engine,
                                               const WhatIfRequest& request);

/// Copies `base` and stamps the degradation markers. Cached payloads are
/// immutable and shared, so a degraded serving is always a fresh allocation,
/// pointer-distinct from the entry it was derived from.
WhatIfResponsePtr MakeDegradedCopy(const WhatIfResponse& base, int rung,
                                   std::string reason);

/// Full cache key: (tenant, model version, applied-config version, model
/// digest, telemetry window digest, request digest). The epochs make
/// invalidation exact — any refit, deployment, or health trip bumps one of
/// them — while model_hash and the workload fingerprint guard against epoch
/// counters that moved without a semantic change (or vice versa across
/// resumes).
struct WhatIfCacheKey {
  int tenant = 0;
  uint64_t model_epoch = 0;
  uint64_t deploy_epoch = 0;
  uint64_t model_hash = 0;
  WorkloadFingerprint workload;
  uint64_t config_hash = 0;

  bool operator==(const WhatIfCacheKey&) const = default;
  bool operator<(const WhatIfCacheKey& o) const {
    return std::tie(tenant, model_epoch, deploy_epoch, model_hash, workload,
                    config_hash) <
           std::tie(o.tenant, o.model_epoch, o.deploy_epoch, o.model_hash,
                    o.workload, o.config_hash);
  }
};

/// Bounded, thread-safe LRU cache of what-if responses. Entries are shared
/// immutable snapshots — a hit returns the cached payload without copying it,
/// and the snapshot stays valid after eviction for as long as someone holds
/// the pointer. Explicit invalidation is per tenant (InvalidateTenant);
/// implicit invalidation is the epoch fields of the key, which simply stop
/// matching.
class WhatIfCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t stale_hits = 0;  ///< LookupStale matches (brownout rung >= 2).
    uint64_t insertions = 0;
    uint64_t evictions = 0;
    uint64_t invalidations = 0;
  };

  explicit WhatIfCache(size_t capacity);

  /// Returns the cached response (refreshing its LRU position), or nullptr
  /// on miss. The returned payload is never copied and never mutated.
  WhatIfResponsePtr Lookup(const WhatIfCacheKey& key);

  /// Brownout fallback (rung >= 2): on a fresh-epoch miss, returns the best
  /// entry for the same (tenant, config_hash) whose epochs lag `key`'s by at
  /// most `max_epoch_lag` — the answer the service gave for this exact query
  /// one refit/deploy ago. model_hash and workload fingerprint are allowed
  /// to differ (they legitimately moved with the epoch). Returns the cached
  /// payload itself; the service marks degradation on a pointer-distinct
  /// copy (MakeDegradedCopy), never on the cached object. InvalidateTenant
  /// drops these entries like any other — once a tenant is invalidated no
  /// stale answer survives to be served.
  WhatIfResponsePtr LookupStale(const WhatIfCacheKey& key, int max_epoch_lag);

  /// Inserts (or refreshes) the entry, evicting the least-recently-used
  /// entry when over capacity. `response` must not be null.
  void Insert(const WhatIfCacheKey& key, WhatIfResponsePtr response);

  /// Drops every entry belonging to `tenant`; returns how many were dropped.
  /// Called by the service after any request that may have mutated the
  /// tenant's models or fleet state.
  size_t InvalidateTenant(int tenant);

  size_t size() const;
  size_t capacity() const { return capacity_; }
  Stats stats() const;

 private:
  using LruList = std::list<std::pair<WhatIfCacheKey, WhatIfResponsePtr>>;

  const size_t capacity_;
  mutable std::mutex mu_;
  LruList lru_;  ///< front = most recent.
  std::map<WhatIfCacheKey, LruList::iterator> index_;
  Stats stats_;
};

}  // namespace kea::serve

#endif  // KEA_SERVE_WHATIF_CACHE_H_
