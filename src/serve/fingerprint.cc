#include "serve/fingerprint.h"

#include <bit>

namespace kea::serve {

namespace {

// Two independent digests of the same byte stream: `lo` is FNV-1a over the
// little-endian bytes, `hi` is a splitmix64-style chain. A collision must
// happen in both simultaneously for two windows to alias.
inline void MixLo(uint64_t v, uint64_t* lo) {
  for (int i = 0; i < 8; ++i) {
    *lo ^= (v >> (8 * i)) & 0xffu;
    *lo *= 0x100000001b3ULL;
  }
}

inline void MixHi(uint64_t v, uint64_t* hi) {
  uint64_t z = *hi + v + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  *hi = z ^ (z >> 31);
}

inline void MixU64(uint64_t v, WorkloadFingerprint* fp) {
  MixLo(v, &fp->lo);
  MixHi(v, &fp->hi);
}

inline void MixDouble(double v, WorkloadFingerprint* fp) {
  MixU64(std::bit_cast<uint64_t>(v), fp);
}

inline void MixInt(int64_t v, WorkloadFingerprint* fp) {
  MixU64(static_cast<uint64_t>(v), fp);
}

}  // namespace

WorkloadFingerprint FingerprintWindow(const telemetry::TelemetryStore& store,
                                      sim::HourIndex begin,
                                      sim::HourIndex end) {
  WorkloadFingerprint fp;
  fp.lo = 0xcbf29ce484222325ULL;  // FNV-1a 64 offset basis.
  fp.hi = 0x6a09e667f3bcc908ULL;  // sqrt(2) fraction bits.
  for (const auto& r : store.records()) {
    if (r.hour < begin || r.hour >= end) continue;
    MixInt(r.machine_id, &fp);
    MixInt(r.hour, &fp);
    MixInt(r.rack, &fp);
    MixInt(r.sku, &fp);
    MixInt(r.sc, &fp);
    MixDouble(r.avg_running_containers, &fp);
    MixDouble(r.cpu_utilization, &fp);
    MixDouble(r.tasks_finished, &fp);
    MixDouble(r.data_read_mb, &fp);
    MixDouble(r.avg_task_latency_s, &fp);
    MixDouble(r.cpu_time_core_s, &fp);
    MixDouble(r.queued_containers, &fp);
    MixDouble(r.queue_latency_ms, &fp);
    MixDouble(r.rejected_containers, &fp);
    MixDouble(r.cores_used, &fp);
    MixDouble(r.ssd_used_gb, &fp);
    MixDouble(r.ram_used_gb, &fp);
    MixDouble(r.network_used_mbps, &fp);
    MixDouble(r.power_watts, &fp);
    ++fp.records;
  }
  // Seal the window bounds so an empty [0, 5) window and an empty [3, 9)
  // window do not collide.
  MixInt(begin, &fp);
  MixInt(end, &fp);
  return fp;
}

}  // namespace kea::serve
