#ifndef KEA_SERVE_OVERLOAD_H_
#define KEA_SERVE_OVERLOAD_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/retry.h"
#include "common/retry_budget.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "obs/slo.h"

namespace kea::serve {

// ---------------------------------------------------------------------------
// Retry hints. Every rejection the service emits under overload carries a
// deterministic, jittered backoff hint so well-behaved clients space their
// retries out instead of hammering in lockstep. The hint rides in the status
// message (Status has no metadata field) in a fixed machine-readable form.

/// Appends " [retry_after_ms=<N>]" to the status message.
Status WithRetryAfter(Status status, int64_t retry_after_ms);

/// Parses the hint back out of a rejection; nullopt when absent.
std::optional<int64_t> RetryAfterMs(const Status& status);

// ---------------------------------------------------------------------------
// CoDel-style queue controller (Nichols & Jacobson). Watches the sojourn time
// of entries at their would-be dispatch: a queue is healthy as long as it
// fully drains now and then (minimum sojourn below `target_ms` within every
// `interval_ms`); once sojourn stays above target for a whole interval the
// queue has a standing backlog and the controller starts shedding, at a rate
// that accelerates by the inverse square root of the shed count until the
// backlog clears. Unlike a depth cap this adapts to the actual drain rate —
// a short burst rides through untouched, a persistent overload is cut early
// while sojourn is still bounded, instead of when the queue is full.
//
// Deterministic: state moves only in OnDispatch calls, which the service
// makes at virtual-time sweeps in a fixed order.
class CodelController {
 public:
  struct Options {
    /// Acceptable standing sojourn (virtual ms).
    int64_t target_ms = 50;
    /// Window the sojourn must stay above target before shedding starts; also
    /// the base spacing of consecutive sheds.
    int64_t interval_ms = 100;
  };

  CodelController() : CodelController(Options()) {}
  explicit CodelController(const Options& options) : options_(options) {}

  /// Called for each entry at its would-be dispatch with the entry's queue
  /// sojourn. Returns true when the entry should be shed instead.
  bool OnDispatch(int64_t sojourn_ms, int64_t now_ms);

  bool shedding() const { return shedding_; }
  uint64_t total_sheds() const { return total_sheds_; }
  const Options& options() const { return options_; }

 private:
  int64_t ShedSpacing() const;

  Options options_;
  /// Virtual time after which a persistent above-target sojourn trips
  /// shedding; -1 while below target.
  int64_t first_above_ms_ = -1;
  bool shedding_ = false;
  int64_t shed_next_ms_ = 0;  ///< Next scheduled shed while shedding.
  int shed_count_ = 0;        ///< Sheds in the current shedding episode.
  uint64_t total_sheds_ = 0;
};

// ---------------------------------------------------------------------------
// Per-tenant circuit breaker, mirroring core::ModelHealth's discipline at the
// serving layer:
//
//   HEALTHY ──failure fraction over window──▶ TRIPPED
//   TRIPPED ──cooldown elapsed──▶ PROBATION (limited probes admitted)
//   PROBATION ──probes succeed──▶ HEALTHY   (cooldown resets)
//   PROBATION ──a probe fails──▶ TRIPPED    (cooldown doubles, capped)
//
// While TRIPPED the tenant is fast-failed at admission instead of occupying
// workers with handlers that keep failing or timing out; in-queue sheds
// (deadline, CoDel) count as failures — a tenant whose work keeps expiring
// is overloading the service just as surely as one whose handlers throw.
class CircuitBreaker {
 public:
  enum class State { kHealthy, kTripped, kProbation };
  static const char* StateName(State s);

  struct Options {
    /// Sliding outcome window (ring buffer length).
    int window = 16;
    /// Minimum outcomes in the window before trip decisions are made.
    int min_volume = 8;
    /// Trip when the window's failure fraction reaches this.
    double failure_threshold = 0.5;
    /// TRIPPED hold before probation; doubles on each consecutive re-trip.
    int64_t cooldown_ms = 500;
    int64_t max_cooldown_ms = 8000;
    /// Requests admitted in PROBATION; all must succeed to close.
    int probation_probes = 3;
  };

  CircuitBreaker() : CircuitBreaker(Options()) {}
  explicit CircuitBreaker(const Options& options);

  /// Admission check at submit time. May transition TRIPPED → PROBATION when
  /// the cooldown has elapsed. Returns false to fast-fail the request.
  bool AllowRequest(int64_t now_ms);

  /// Outcome of a dispatched request (ok == handler returned OK). In
  /// PROBATION a success counts toward closing, a failure re-trips.
  void RecordOutcome(bool ok, int64_t now_ms);
  /// An in-queue shed of this tenant's request: a failure outcome.
  void RecordShed(int64_t now_ms) { RecordOutcome(false, now_ms); }

  State state() const { return state_; }
  uint64_t trips() const { return trips_; }
  uint64_t fast_fails() const { return fast_fails_; }
  int64_t open_until_ms() const { return open_until_ms_; }
  const Options& options() const { return options_; }

 private:
  void Trip(int64_t now_ms);
  double FailureFraction() const;

  Options options_;
  State state_ = State::kHealthy;
  /// Outcome ring: outcomes_[i % window], true = success.
  std::vector<bool> ring_;
  int ring_size_ = 0;
  int ring_next_ = 0;
  int64_t open_until_ms_ = 0;
  int64_t next_cooldown_ms_ = 0;
  int probes_issued_ = 0;
  int probe_successes_ = 0;
  uint64_t trips_ = 0;
  uint64_t fast_fails_ = 0;
};

// ---------------------------------------------------------------------------
// Brownout degradation ladder. Under measured pressure — the estimated time
// to drain the undispatched backlog, per virtual worker — the service climbs
// rungs one at a time, each trading answer fidelity for capacity:
//
//   rung 0  kNormal          full service
//   rung 1  kReducedSampling cold what-ifs clamp uncertainty_samples
//   rung 2  kStaleCache      misses may be answered one epoch back, degraded
//   rung 3  kNoColdWork      cold fits/evaluations refused outright
//
// Hysteresis (descend only when pressure falls well below the rung's
// threshold) plus a minimum dwell keep the ladder from flapping; transitions
// happen only in Update(), which the service calls once per virtual-time
// sweep — deterministic by construction.
enum class BrownoutRung {
  kNormal = 0,
  kReducedSampling = 1,
  kStaleCache = 2,
  kNoColdWork = 3,
};
const char* RungName(BrownoutRung rung);

class BrownoutLadder {
 public:
  struct Options {
    /// Pressure (ms of backlog per virtual worker) at which rung i+1 is
    /// entered from rung i.
    double up_threshold_ms[3] = {150.0, 300.0, 600.0};
    /// Descend from rung i+1 once pressure < up_threshold_ms[i] * this.
    double down_fraction = 0.5;
    /// Updates to dwell at a rung before moving again (up or down).
    int min_dwell_updates = 2;
  };

  BrownoutLadder() : BrownoutLadder(Options()) {}
  explicit BrownoutLadder(const Options& options) : options_(options) {}

  /// One controller step; at most one rung of movement. Returns the rung in
  /// force after the step.
  BrownoutRung Update(double pressure_ms);

  BrownoutRung rung() const { return rung_; }
  uint64_t transitions() const { return transitions_; }
  const Options& options() const { return options_; }

 private:
  Options options_;
  BrownoutRung rung_ = BrownoutRung::kNormal;
  int dwell_ = 0;  ///< Updates spent at the current rung.
  uint64_t transitions_ = 0;
};

// ---------------------------------------------------------------------------
// Aggregated overload-control configuration for the service.
struct OverloadOptions {
  /// Master switch. Off (the default) = bit-exact PR 6 service: no clock, no
  /// deadlines, no gating — requests dispatch as soon as a worker is free.
  bool enabled = false;

  /// Virtual service capacity: the sweep releases up to
  /// virtual_workers * elapsed_ms of request cost per AdvanceVirtualTime.
  /// Decouples control decisions from the physical worker count, which is
  /// what makes the decision trace bit-identical at any num_threads.
  double virtual_workers = 2.0;
  /// Cost assumed for submissions that don't declare one.
  double default_cost_ms = 10.0;

  CodelController::Options codel;
  CircuitBreaker::Options breaker;
  BrownoutLadder::Options brownout;
  RetryBudget::Options retry_budget;
  /// Jitter source for the retry_after_ms hints (per-tenant substreams via
  /// MixSeed, so hints are deterministic yet decorrelated across tenants).
  RetryPolicy::Options retry_hints;

  /// uncertainty_samples clamp applied to cold what-ifs at rung >= 1.
  int brownout_samples = 32;
  /// How many epochs back rung >= 2 may serve stale cache hits from.
  int stale_epoch_lag = 1;

  /// SLO plane (ISSUE 9). While overload control is on, every release's
  /// sojourn and every shed feed an obs::SloTracker against the virtual
  /// clock — the same instrument operators see in statusz. With
  /// `slo.enforce` additionally set, a multiwindow burn alert escalates the
  /// published brownout rung one step beyond the ladder's pressure verdict
  /// (logged as "slo_escalate"). enforce defaults OFF so the PR 8 decision
  /// trace stays byte-identical under unchanged options.
  struct SloGuard {
    bool enforce = false;
    obs::SloOptions slo{
        .target_ms = 200.0,   // queue sojourn target per release
        .objective = 0.9,     // virtual sojourns are coarse; modest objective
        .fast_window_ms = 500,
        .slow_window_ms = 5000,
        .fast_burn_alert = 6.0,
        .slow_burn_alert = 2.0,
        .bucket_ms = 50,
    };
  };
  SloGuard slo_guard;
};

}  // namespace kea::serve

#endif  // KEA_SERVE_OVERLOAD_H_
