#include "serve/whatif_cache.h"

#include <bit>

#include "obs/metrics.h"

namespace kea::serve {

namespace {

// Cache traffic depends on arrival interleaving, so every serve instrument
// is kTiming: never part of the deterministic exports.
obs::Counter* HitsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.cache_hits", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* MissesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.cache_misses", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* EvictionsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.cache_evictions", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* InvalidatedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.cache_invalidated", "", obs::Kind::kTiming);
  return c;
}

inline void HashU64(uint64_t v, uint64_t* h) {
  for (int i = 0; i < 8; ++i) {
    *h ^= (v >> (8 * i)) & 0xffu;
    *h *= 0x100000001b3ULL;
  }
}
inline void HashDouble(double v, uint64_t* h) {
  HashU64(std::bit_cast<uint64_t>(v), h);
}

}  // namespace

uint64_t ConfigHash(const WhatIfRequest& request) {
  uint64_t h = 0xcbf29ce484222325ULL;
  HashU64(static_cast<uint64_t>(static_cast<int64_t>(request.uncertainty_samples)), &h);
  HashU64(request.candidates.size(), &h);
  for (const auto& candidate : request.candidates) {
    HashU64(candidate.size(), &h);
    for (const auto& [key, containers] : candidate) {
      HashU64(static_cast<uint64_t>(static_cast<int64_t>(key.sc)), &h);
      HashU64(static_cast<uint64_t>(static_cast<int64_t>(key.sku)), &h);
      HashDouble(containers, &h);
    }
  }
  return h;
}

StatusOr<WhatIfResponse> EvaluateWhatIfRequest(const core::WhatIfEngine& engine,
                                               const WhatIfRequest& request) {
  if (request.candidates.empty()) {
    return Status::InvalidArgument("what-if request has no candidates");
  }
  WhatIfResponse response;
  response.candidates.reserve(request.candidates.size());
  for (const auto& candidate : request.candidates) {
    KEA_ASSIGN_OR_RETURN(
        core::WhatIfResult result,
        engine.EvaluateWhatIf(candidate, request.uncertainty_samples));
    response.candidates.push_back(std::move(result));
  }
  for (size_t i = 1; i < response.candidates.size(); ++i) {
    if (response.candidates[i].cluster_latency_s <
        response.candidates[response.best_index].cluster_latency_s) {
      response.best_index = i;
    }
  }
  return response;
}

WhatIfResponsePtr MakeDegradedCopy(const WhatIfResponse& base, int rung,
                                   std::string reason) {
  auto copy = std::make_shared<WhatIfResponse>(base);
  copy->degraded = true;
  copy->degraded_rung = rung;
  copy->degraded_reason = std::move(reason);
  return copy;
}

WhatIfCache::WhatIfCache(size_t capacity) : capacity_(capacity) {}

WhatIfResponsePtr WhatIfCache::Lookup(const WhatIfCacheKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++stats_.misses;
    MissesCounter()->Increment();
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  HitsCounter()->Increment();
  return it->second->second;
}

WhatIfResponsePtr WhatIfCache::LookupStale(const WhatIfCacheKey& key,
                                           int max_epoch_lag) {
  std::lock_guard<std::mutex> lock(mu_);
  // Linear scan: the cache is bounded and stale serving only runs under
  // brownout, where shedding has already cut the request rate.
  const WhatIfCacheKey* best = nullptr;
  WhatIfResponsePtr found;
  for (const auto& [entry_key, response] : lru_) {
    if (entry_key.tenant != key.tenant) continue;
    if (entry_key.config_hash != key.config_hash) continue;
    // Strictly older, within the lag window, on both epoch axes.
    if (entry_key.model_epoch > key.model_epoch ||
        entry_key.deploy_epoch > key.deploy_epoch) {
      continue;
    }
    if (entry_key.model_epoch == key.model_epoch &&
        entry_key.deploy_epoch == key.deploy_epoch) {
      continue;  // the fresh key; Lookup already missed it semantically
    }
    if (key.model_epoch - entry_key.model_epoch >
            static_cast<uint64_t>(max_epoch_lag) ||
        key.deploy_epoch - entry_key.deploy_epoch >
            static_cast<uint64_t>(max_epoch_lag)) {
      continue;
    }
    if (best == nullptr || *best < entry_key) {  // freshest eligible wins
      best = &entry_key;
      found = response;
    }
  }
  if (found != nullptr) ++stats_.stale_hits;
  return found;
}

void WhatIfCache::Insert(const WhatIfCacheKey& key, WhatIfResponsePtr response) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(response);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(response));
  index_[key] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++stats_.evictions;
    EvictionsCounter()->Increment();
  }
}

size_t WhatIfCache::InvalidateTenant(int tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = lru_.begin(); it != lru_.end();) {
    if (it->first.tenant == tenant) {
      index_.erase(it->first);
      it = lru_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  stats_.invalidations += dropped;
  InvalidatedCounter()->Increment(dropped);
  return dropped;
}

size_t WhatIfCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

WhatIfCache::Stats WhatIfCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace kea::serve
