#ifndef KEA_SERVE_FINGERPRINT_H_
#define KEA_SERVE_FINGERPRINT_H_

#include <cstdint>

#include "sim/types.h"
#include "telemetry/store.h"

namespace kea::serve {

/// 128-bit digest of a telemetry window plus the number of records it
/// covered. Two windows that differ in any record field, in record order, or
/// in which records fall inside the window produce different fingerprints
/// (up to hash collisions on two independent 64-bit chains). Used as the
/// workload component of the what-if cache key: a cache entry is reusable
/// only when the telemetry the models would be judged against is unchanged.
struct WorkloadFingerprint {
  uint64_t lo = 0;
  uint64_t hi = 0;
  uint64_t records = 0;

  bool operator==(const WorkloadFingerprint&) const = default;
  bool operator<(const WorkloadFingerprint& o) const {
    if (lo != o.lo) return lo < o.lo;
    if (hi != o.hi) return hi < o.hi;
    return records < o.records;
  }
};

/// Digests every record with `begin <= hour < end` in store order. Doubles
/// are hashed by their exact IEEE-754 bit pattern, so the fingerprint is as
/// bit-exact as the telemetry itself and identical across runs and machines.
WorkloadFingerprint FingerprintWindow(const telemetry::TelemetryStore& store,
                                      sim::HourIndex begin, sim::HourIndex end);

}  // namespace kea::serve

#endif  // KEA_SERVE_FINGERPRINT_H_
