#include "serve/service.h"

#include "common/random.h"

namespace kea::serve {

namespace {

obs::Counter* BatchesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.whatif_batches", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* CoalescedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.whatif_coalesced", "", obs::Kind::kTiming);
  return c;
}

}  // namespace

TuningService::TuningService(const Options& options)
    : options_(options), queue_(options.queue) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<WhatIfCache>(options_.cache_capacity);
  }
  workers_.reserve(options_.num_threads > 0 ? options_.num_threads : 0);
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TuningService::~TuningService() {
  // From here on, handlers resolve their tickets with kUnavailable instead
  // of touching sessions that are about to be destroyed.
  aborting_.store(true, std::memory_order_relaxed);
  queue_.Shutdown();
  for (auto& w : workers_) w.join();
  // With num_threads == 0 (or a shutdown race) requests may still be queued;
  // drain them so no Wait() blocks forever.
  RunPending();
}

void TuningService::RunOne(RequestQueue* queue, int tenant_id,
                           const std::function<void()>& work) {
  work();
  queue->Done(tenant_id);
}

void TuningService::WorkerLoop() {
  int tenant_id = 0;
  std::function<void()> work;
  while (queue_.PopBlocking(&tenant_id, &work)) {
    RunOne(&queue_, tenant_id, work);
  }
}

size_t TuningService::RunPending() {
  size_t executed = 0;
  int tenant_id = 0;
  std::function<void()> work;
  while (queue_.TryPop(&tenant_id, &work)) {
    RunOne(&queue_, tenant_id, work);
    ++executed;
  }
  return executed;
}

StatusOr<TenantId> TuningService::AddTenant(
    const std::string& name, const apps::KeaSession::Config& config) {
  KEA_ASSIGN_OR_RETURN(std::unique_ptr<apps::KeaSession> session,
                       apps::KeaSession::Create(config));
  std::lock_guard<std::mutex> lock(tenants_mu_);
  auto tenant = std::make_unique<Tenant>();
  tenant->id = static_cast<TenantId>(tenants_.size());
  tenant->name = name;
  tenant->session = std::move(session);
  const std::string labels = "tenant=" + name;
  tenant->requests = obs::Registry::Get().GetCounter(
      "serve.tenant_requests", labels, obs::Kind::kTiming);
  tenant->cache_hits = obs::Registry::Get().GetCounter(
      "serve.tenant_cache_hits", labels, obs::Kind::kTiming);
  tenants_.push_back(std::move(tenant));
  return tenants_.back()->id;
}

TuningService::Tenant* TuningService::FindTenant(TenantId id) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (id < 0 || static_cast<size_t>(id) >= tenants_.size()) return nullptr;
  return tenants_[id].get();
}

StatusOr<apps::KeaSession*> TuningService::tenant_session(TenantId id) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(id));
  }
  return t->session.get();
}

template <typename T, typename Handler>
StatusOr<Ticket<T>> TuningService::SubmitSealing(TenantId id, Handler handler) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(id));
  }
  Ticket<T> ticket;
  auto work = [this, t, ticket, handler]() {
    if (aborting_.load(std::memory_order_relaxed)) {
      ticket.Set(Status::Unavailable("service shutting down"));
      return;
    }
    // Epoch capture brackets the handler: any model refit or fleet change it
    // caused invalidates the tenant's cached what-if answers.
    const uint64_t model_before = t->session->model_epoch();
    const uint64_t deploy_before = t->session->deploy_epoch();
    StatusOr<T> result = handler(t->session.get());
    if (cache_ != nullptr && (t->session->model_epoch() != model_before ||
                              t->session->deploy_epoch() != deploy_before)) {
      cache_->InvalidateTenant(t->id);
    }
    ticket.Set(std::move(result));
  };
  // Push under the staging lock so the seal below cannot interleave with a
  // concurrent SubmitWhatIf staging into the batch this request outruns.
  std::lock_guard<std::mutex> lock(t->staging_mu);
  KEA_RETURN_IF_ERROR(queue_.Push(t->id, std::move(work)));
  // Seal: later what-ifs open a new batch, whose drain request is enqueued
  // after this one — so they observe this request's effects, exactly as a
  // solo session would.
  t->open_batch = 0;
  t->requests->Increment();
  return ticket;
}

StatusOr<Ticket<sim::HourIndex>> TuningService::SubmitSimulate(TenantId id,
                                                               int hours) {
  return SubmitSealing<sim::HourIndex>(
      id, [hours](apps::KeaSession* s) -> StatusOr<sim::HourIndex> {
        KEA_RETURN_IF_ERROR(s->Simulate(hours));
        return s->now();
      });
}

StatusOr<Ticket<uint64_t>> TuningService::SubmitFit(TenantId id,
                                                    const FitRequest& request) {
  return SubmitSealing<uint64_t>(
      id, [request](apps::KeaSession* s) -> StatusOr<uint64_t> {
        KEA_RETURN_IF_ERROR(
            s->FitWhatIfEngine(request.whatif, request.lookback_hours));
        return s->model_epoch();
      });
}

StatusOr<Ticket<apps::KeaSession::GuardedRound>>
TuningService::SubmitTuningRound(
    TenantId id, const apps::KeaSession::GuardedRoundOptions& options) {
  return SubmitSealing<apps::KeaSession::GuardedRound>(
      id, [options](apps::KeaSession* s) { return s->RunGuardedTuningRound(options); });
}

StatusOr<Ticket<apps::SkuDesigner::Result>> TuningService::SubmitSkuDesign(
    TenantId id, const SkuDesignRequest& request) {
  return SubmitSealing<apps::SkuDesigner::Result>(
      id, [request](apps::KeaSession* s) {
        // A request-owned RNG: the design is a pure function of (telemetry,
        // options, seed), independent of scheduling and of other requests.
        Rng rng(request.seed);
        apps::SkuDesigner designer(request.options);
        return designer.Design(s->store(), nullptr, &rng);
      });
}

StatusOr<Ticket<WhatIfResponsePtr>> TuningService::SubmitWhatIf(
    TenantId id, const WhatIfRequest& request) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(id));
  }
  if (request.candidates.empty()) {
    return Status::InvalidArgument("what-if request has no candidates");
  }
  Ticket<WhatIfResponsePtr> ticket;
  std::lock_guard<std::mutex> lock(t->staging_mu);
  const bool opened = t->open_batch == 0;
  if (opened) t->open_batch = t->next_batch++;
  const uint64_t batch = t->open_batch;
  t->staged[batch].push_back(StagedWhatIf{request, ticket});
  // Every admitted what-if consumes one queue slot (admission control sees
  // the true request rate); the first drain to run answers the whole batch
  // and the remaining slots become no-ops.
  const uint64_t b = batch;
  Status pushed = queue_.Push(t->id, [this, t, b]() { DrainWhatIfBatch(t, b); });
  if (!pushed.ok()) {
    // Roll back only this submission; earlier coalesced entries keep their
    // already-enqueued drain.
    auto& staged = t->staged[batch];
    staged.pop_back();
    if (staged.empty()) t->staged.erase(batch);
    if (opened) t->open_batch = 0;
    return pushed;
  }
  t->requests->Increment();
  return ticket;
}

void TuningService::DrainWhatIfBatch(Tenant* t, uint64_t batch) {
  std::vector<StagedWhatIf> items;
  {
    std::lock_guard<std::mutex> lock(t->staging_mu);
    auto it = t->staged.find(batch);
    if (it != t->staged.end()) {
      items = std::move(it->second);
      t->staged.erase(it);
    }
    // The batch is executing now; later what-ifs must start a new one.
    if (t->open_batch == batch) t->open_batch = 0;
  }
  if (items.empty()) return;  // Already answered by an earlier drain slot.
  if (aborting_.load(std::memory_order_relaxed)) {
    for (const auto& item : items) {
      item.ticket.Set(Status::Unavailable("service shutting down"));
    }
    return;
  }
  BatchesCounter()->Increment();
  CoalescedCounter()->Increment(items.size() - 1);

  const core::WhatIfEngine* engine = t->session->whatif_engine();
  if (engine == nullptr) {
    for (const auto& item : items) {
      item.ticket.Set(
          Status::FailedPrecondition("no fitted What-if engine; submit a fit "
                                     "or tuning round first"));
    }
    return;
  }
  // One snapshot answers the whole batch: epochs, model digest, and the
  // fingerprint of the telemetry window the models were fit on.
  const uint64_t model_epoch = t->session->model_epoch();
  const uint64_t deploy_epoch = t->session->deploy_epoch();
  const uint64_t model_hash = engine->ModelHash();
  if (t->fingerprint_epoch != model_epoch) {
    auto [begin, end] = t->session->fit_window();
    t->fingerprint = FingerprintWindow(t->session->store(), begin, end);
    t->fingerprint_epoch = model_epoch;
  }
  for (const auto& item : items) {
    WhatIfCacheKey key;
    key.tenant = t->id;
    key.model_epoch = model_epoch;
    key.deploy_epoch = deploy_epoch;
    key.model_hash = model_hash;
    key.workload = t->fingerprint;
    key.config_hash = ConfigHash(item.request);
    if (cache_ != nullptr) {
      WhatIfResponsePtr hit = cache_->Lookup(key);
      if (hit != nullptr) {
        t->cache_hits->Increment();
        item.ticket.Set(std::move(hit));
        continue;
      }
    }
    StatusOr<WhatIfResponse> cold = EvaluateWhatIfRequest(*engine, item.request);
    if (!cold.ok()) {
      item.ticket.Set(cold.status());
      continue;
    }
    auto payload =
        std::make_shared<const WhatIfResponse>(std::move(cold).value());
    if (cache_ != nullptr) cache_->Insert(key, payload);
    item.ticket.Set(std::move(payload));
  }
}

}  // namespace kea::serve
