#include "serve/service.h"

#include <algorithm>
#include <cstdio>

#include "common/random.h"
#include "obs/profiler.h"
#include "obs/shard.h"

namespace kea::serve {

namespace {

obs::Counter* BatchesCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.whatif_batches", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* CoalescedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.whatif_coalesced", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* BreakerTripsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.breaker_trips", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* BreakerFastFailCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.breaker_fastfail", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* RetryBudgetExhaustedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.retry_budget_exhausted", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* BrownoutRefusalsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.brownout_refusals", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* DegradedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.degraded_responses", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* BrownoutTransitionsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.brownout_transitions", "", obs::Kind::kTiming);
  return c;
}
obs::Gauge* RungGauge() {
  static obs::Gauge* g = obs::Registry::Get().GetGauge(
      "serve.brownout_rung", "", obs::Kind::kTiming);
  return g;
}

// SLO plane instruments (kTiming: sojourns are virtual-clock artifacts of a
// particular driver schedule, not logical event counts).
obs::Histogram* SojournHistogram() {
  static obs::Histogram* h = obs::Registry::Get().GetHistogram(
      "serve.sojourn_ms", "", obs::ExponentialBuckets(1.0, 2.0, 16),
      obs::Kind::kTiming);
  return h;
}
obs::Gauge* FastBurnGauge() {
  static obs::Gauge* g = obs::Registry::Get().GetGauge(
      "serve.slo_fast_burn", "", obs::Kind::kTiming);
  return g;
}
obs::Gauge* SlowBurnGauge() {
  static obs::Gauge* g = obs::Registry::Get().GetGauge(
      "serve.slo_slow_burn", "", obs::Kind::kTiming);
  return g;
}
obs::Counter* SloEscalationsCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.slo_escalations", "", obs::Kind::kTiming);
  return c;
}

}  // namespace

TuningService::TuningService(const Options& options)
    : options_(options),
      queue_(options.queue),
      codel_(options.overload.codel),
      ladder_(options.overload.brownout) {
  if (options_.cache_capacity > 0) {
    cache_ = std::make_unique<WhatIfCache>(options_.cache_capacity);
  }
  if (options_.overload.enabled) {
    // Always track (statusz shows burn either way); only
    // slo_guard.enforce lets the tracker move the rung.
    slo_ = std::make_unique<obs::SloTracker>(options_.overload.slo_guard.slo);
  }
  workers_.reserve(options_.num_threads > 0 ? options_.num_threads : 0);
  for (int i = 0; i < options_.num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

TuningService::~TuningService() {
  // From here on, handlers resolve their tickets with kUnavailable instead
  // of touching sessions that are about to be destroyed.
  aborting_.store(true, std::memory_order_relaxed);
  // Shutdown sheds never-released (gated) entries with the drain reason;
  // released/immediate entries stay poppable for the workers below.
  queue_.Shutdown();
  for (auto& w : workers_) w.join();
  // With num_threads == 0 (or a shutdown race) requests may still be queued;
  // drain them so no Wait() blocks forever.
  RunPending();
}

void TuningService::RunOne(RequestQueue* queue, int tenant_id,
                           const std::function<bool()>& work) {
  KEA_PHASE("serve.dispatch");
  const bool executed = work();
  queue->Done(tenant_id, executed);
}

void TuningService::WorkerLoop() {
  int tenant_id = 0;
  std::function<bool()> work;
  while (queue_.PopBlocking(&tenant_id, &work)) {
    RunOne(&queue_, tenant_id, work);
  }
}

size_t TuningService::RunPending() {
  size_t executed = 0;
  int tenant_id = 0;
  std::function<bool()> work;
  while (queue_.TryPop(&tenant_id, &work)) {
    RunOne(&queue_, tenant_id, work);
    ++executed;
  }
  return executed;
}

StatusOr<TenantId> TuningService::AddTenant(
    const std::string& name, const apps::KeaSession::Config& config) {
  KEA_ASSIGN_OR_RETURN(std::unique_ptr<apps::KeaSession> session,
                       apps::KeaSession::Create(config));
  std::lock_guard<std::mutex> lock(tenants_mu_);
  const TenantId id = static_cast<TenantId>(tenants_.size());
  // Per-tenant jitter substream: hints are deterministic yet decorrelated
  // across tenants, so synchronized rejections don't produce synchronized
  // retries.
  RetryPolicy::Options hints = options_.overload.retry_hints;
  hints.seed = MixSeed(hints.seed, static_cast<uint64_t>(id));
  auto tenant = std::make_unique<Tenant>(options_.overload.breaker,
                                         options_.overload.retry_budget, hints);
  tenant->id = id;
  tenant->name = name;
  tenant->session = std::move(session);
  const std::string labels = "tenant=" + name;
  tenant->requests = obs::Registry::Get().GetCounter(
      "serve.tenant_requests", labels, obs::Kind::kTiming);
  tenant->cache_hits = obs::Registry::Get().GetCounter(
      "serve.tenant_cache_hits", labels, obs::Kind::kTiming);
  tenants_.push_back(std::move(tenant));
  return id;
}

TuningService::Tenant* TuningService::FindTenant(TenantId id) {
  std::lock_guard<std::mutex> lock(tenants_mu_);
  if (id < 0 || static_cast<size_t>(id) >= tenants_.size()) return nullptr;
  return tenants_[id].get();
}

StatusOr<apps::KeaSession*> TuningService::tenant_session(TenantId id) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(id));
  }
  return t->session.get();
}

// ---------------------------------------------------------------------------
// Overload admission

Status TuningService::AdmitOverload(Tenant* t, bool cold_work) {
  if (!options_.overload.enabled) return Status::OK();
  const int64_t now = clock_.now_ms();
  std::lock_guard<std::mutex> lock(overload_mu_);
  const CircuitBreaker::State before = t->breaker.state();
  if (!t->breaker.AllowRequest(now)) {
    ++t->rejections;
    ++t->reject_streak;
    queue_.NoteExternalRejection();
    BreakerFastFailCounter()->Increment();
    // Tell the client exactly when probation opens; never a guess.
    const int64_t hint = std::max<int64_t>(t->breaker.open_until_ms() - now, 1);
    overload_log_.push_back("t=" + std::to_string(now) + " tenant=" + t->name +
                            " fast-fail breaker=" +
                            CircuitBreaker::StateName(t->breaker.state()));
    return WithRetryAfter(
        Status::Unavailable("tenant circuit breaker open (" +
                            std::string(CircuitBreaker::StateName(
                                t->breaker.state())) +
                            "); handlers keep failing or timing out"),
        hint);
  }
  if (t->breaker.state() != before) {
    overload_log_.push_back("t=" + std::to_string(now) + " tenant=" + t->name +
                            " breaker " + CircuitBreaker::StateName(before) +
                            "->" +
                            CircuitBreaker::StateName(t->breaker.state()));
  }
  if (t->reject_streak > 0 && !t->retry_budget.TryConsume(now)) {
    ++t->rejections;
    ++t->reject_streak;
    queue_.NoteExternalRejection();
    RetryBudgetExhaustedCounter()->Increment();
    overload_log_.push_back("t=" + std::to_string(now) + " tenant=" + t->name +
                            " retry-budget-exhausted streak=" +
                            std::to_string(t->reject_streak));
    return WithRetryAfter(
        Status::ResourceExhausted(
            "per-tenant retry budget exhausted; stop retrying and back off"),
        static_cast<int64_t>(options_.overload.retry_hints.max_backoff_ms));
  }
  if (cold_work &&
      rung_.load(std::memory_order_relaxed) >=
          static_cast<int>(BrownoutRung::kNoColdWork)) {
    ++t->rejections;
    ++t->reject_streak;
    queue_.NoteExternalRejection();
    BrownoutRefusalsCounter()->Increment();
    const int64_t hint = static_cast<int64_t>(
        t->retry_hints.BackoffMs(t->rejections,
                                 static_cast<int>(std::min<uint64_t>(
                                     t->reject_streak, 8))));
    overload_log_.push_back("t=" + std::to_string(now) + " tenant=" + t->name +
                            " brownout-refuse-cold");
    return WithRetryAfter(
        Status::Unavailable("brownout: cold fits refused (rung NO_COLD_WORK)"),
        hint);
  }
  return Status::OK();
}

Status TuningService::NoteRejected(Tenant* t, Status status) {
  if (!options_.overload.enabled) return status;
  const int64_t now = clock_.now_ms();
  std::lock_guard<std::mutex> lock(overload_mu_);
  ++t->rejections;
  ++t->reject_streak;
  const int64_t hint = static_cast<int64_t>(t->retry_hints.BackoffMs(
      t->rejections,
      static_cast<int>(std::min<uint64_t>(t->reject_streak, 8))));
  overload_log_.push_back("t=" + std::to_string(now) + " tenant=" + t->name +
                          " rejected code=" +
                          StatusCodeToString(status.code()) + " streak=" +
                          std::to_string(t->reject_streak));
  return WithRetryAfter(std::move(status), hint);
}

void TuningService::NoteAccepted(Tenant* t) {
  if (!options_.overload.enabled) return;
  std::lock_guard<std::mutex> lock(overload_mu_);
  t->reject_streak = 0;
}

RequestQueue::PushSpec TuningService::MakeSpec(const SubmitOptions& submit) {
  RequestQueue::PushSpec spec;
  spec.gated = options_.overload.enabled;
  spec.deadline_ms = submit.deadline_ms;
  spec.cost_ms = submit.cost_ms > 0.0 ? submit.cost_ms
                                      : options_.overload.default_cost_ms;
  return spec;
}

void TuningService::RecordOutcome(Tenant* t, bool ok) {
  if (!options_.overload.enabled) return;
  std::lock_guard<std::mutex> lock(overload_mu_);
  t->pending_outcomes.push_back(ok);
}

// ---------------------------------------------------------------------------
// Submission

template <typename T, typename Handler>
StatusOr<Ticket<T>> TuningService::SubmitSealing(TenantId id,
                                                 const SubmitOptions& submit,
                                                 bool cold_work,
                                                 Handler handler) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(id));
  }
  KEA_RETURN_IF_ERROR(AdmitOverload(t, cold_work));
  Ticket<T> ticket;
  auto work = [this, t, ticket, handler]() -> bool {
    if (aborting_.load(std::memory_order_relaxed)) {
      ticket.Set(Status::Unavailable(
          "service shutting down; request drained without execution"));
      return false;
    }
    // Epoch capture brackets the handler: any model refit or fleet change it
    // caused invalidates the tenant's cached what-if answers.
    const uint64_t model_before = t->session->model_epoch();
    const uint64_t deploy_before = t->session->deploy_epoch();
    StatusOr<T> result = handler(t->session.get());
    // Epoch-keyed entries can never serve a stale answer as fresh, so the
    // purge is memory hygiene, not correctness. With the overload plane
    // enabled the old-epoch entries are deliberately kept (bounded by the
    // LRU): they are exactly what brownout rung 2 serves, marked degraded.
    if (cache_ != nullptr && !options_.overload.enabled &&
        (t->session->model_epoch() != model_before ||
         t->session->deploy_epoch() != deploy_before)) {
      cache_->InvalidateTenant(t->id);
    }
    RecordOutcome(t, result.ok());
    ticket.Set(std::move(result));
    return true;
  };
  RequestQueue::PushSpec spec = MakeSpec(submit);
  spec.work = std::move(work);
  spec.shed = [ticket](const Status& status) { ticket.Set(status); };
  // Push under the staging lock so the seal below cannot interleave with a
  // concurrent SubmitWhatIf staging into the batch this request outruns.
  std::lock_guard<std::mutex> lock(t->staging_mu);
  Status pushed = queue_.Push(t->id, std::move(spec));
  if (!pushed.ok()) return NoteRejected(t, std::move(pushed));
  NoteAccepted(t);
  // Seal: later what-ifs open a new batch, whose drain request is enqueued
  // after this one — so they observe this request's effects, exactly as a
  // solo session would.
  t->open_batch = 0;
  t->requests->Increment();
  return ticket;
}

StatusOr<Ticket<sim::HourIndex>> TuningService::SubmitSimulate(
    TenantId id, int hours, const SubmitOptions& submit) {
  return SubmitSealing<sim::HourIndex>(
      id, submit, /*cold_work=*/false,
      [hours](apps::KeaSession* s) -> StatusOr<sim::HourIndex> {
        KEA_RETURN_IF_ERROR(s->Simulate(hours));
        return s->now();
      });
}

StatusOr<Ticket<uint64_t>> TuningService::SubmitFit(
    TenantId id, const FitRequest& request, const SubmitOptions& submit) {
  return SubmitSealing<uint64_t>(
      id, submit, /*cold_work=*/true,
      [request](apps::KeaSession* s) -> StatusOr<uint64_t> {
        KEA_RETURN_IF_ERROR(
            s->FitWhatIfEngine(request.whatif, request.lookback_hours));
        return s->model_epoch();
      });
}

StatusOr<Ticket<apps::KeaSession::GuardedRound>>
TuningService::SubmitTuningRound(
    TenantId id, const apps::KeaSession::GuardedRoundOptions& options,
    const SubmitOptions& submit) {
  return SubmitSealing<apps::KeaSession::GuardedRound>(
      id, submit, /*cold_work=*/true,
      [options](apps::KeaSession* s) { return s->RunGuardedTuningRound(options); });
}

StatusOr<Ticket<apps::SkuDesigner::Result>> TuningService::SubmitSkuDesign(
    TenantId id, const SkuDesignRequest& request, const SubmitOptions& submit) {
  return SubmitSealing<apps::SkuDesigner::Result>(
      id, submit, /*cold_work=*/true, [request](apps::KeaSession* s) {
        // A request-owned RNG: the design is a pure function of (telemetry,
        // options, seed), independent of scheduling and of other requests.
        Rng rng(request.seed);
        apps::SkuDesigner designer(request.options);
        return designer.Design(s->store(), nullptr, &rng);
      });
}

StatusOr<Ticket<WhatIfResponsePtr>> TuningService::SubmitWhatIf(
    TenantId id, const WhatIfRequest& request, const SubmitOptions& submit) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) {
    return Status::NotFound("unknown tenant " + std::to_string(id));
  }
  if (request.candidates.empty()) {
    return Status::InvalidArgument("what-if request has no candidates");
  }
  KEA_RETURN_IF_ERROR(AdmitOverload(t, /*cold_work=*/false));
  Ticket<WhatIfResponsePtr> ticket;
  std::lock_guard<std::mutex> lock(t->staging_mu);
  const bool opened = t->open_batch == 0;
  if (opened) t->open_batch = t->next_batch++;
  const uint64_t batch = t->open_batch;
  const uint64_t item_id = t->next_item++;
  t->staged[batch].push_back(StagedWhatIf{item_id, request, ticket});
  // Every admitted what-if consumes one queue slot (admission control sees
  // the true request rate); the first drain to run answers the whole batch
  // and the remaining slots become no-ops.
  const uint64_t b = batch;
  RequestQueue::PushSpec spec = MakeSpec(submit);
  spec.work = [this, t, b]() -> bool { return DrainWhatIfBatch(t, b); };
  // Shedding this slot un-stages exactly this submission: coalesced
  // neighbors keep their own slots and are answered by whichever of them
  // drains first.
  spec.shed = [t, b, item_id, ticket](const Status& status) {
    {
      std::lock_guard<std::mutex> staging_lock(t->staging_mu);
      auto it = t->staged.find(b);
      if (it != t->staged.end()) {
        auto& items = it->second;
        for (auto i = items.begin(); i != items.end(); ++i) {
          if (i->item_id == item_id) {
            items.erase(i);
            break;
          }
        }
        if (items.empty()) t->staged.erase(it);
      }
    }
    ticket.Set(status);
  };
  Status pushed = queue_.Push(t->id, std::move(spec));
  if (!pushed.ok()) {
    // Roll back only this submission; earlier coalesced entries keep their
    // already-enqueued drain.
    auto& staged = t->staged[batch];
    staged.pop_back();
    if (staged.empty()) t->staged.erase(batch);
    if (opened) t->open_batch = 0;
    return NoteRejected(t, std::move(pushed));
  }
  NoteAccepted(t);
  t->requests->Increment();
  return ticket;
}

bool TuningService::DrainWhatIfBatch(Tenant* t, uint64_t batch) {
  std::vector<StagedWhatIf> items;
  {
    std::lock_guard<std::mutex> lock(t->staging_mu);
    auto it = t->staged.find(batch);
    if (it != t->staged.end()) {
      items = std::move(it->second);
      t->staged.erase(it);
    }
    // The batch is executing now; later what-ifs must start a new one.
    if (t->open_batch == batch) t->open_batch = 0;
  }
  if (items.empty()) return true;  // Already answered by an earlier drain slot.
  if (aborting_.load(std::memory_order_relaxed)) {
    for (const auto& item : items) {
      item.ticket.Set(Status::Unavailable(
          "service shutting down; request drained without execution"));
    }
    return false;
  }
  BatchesCounter()->Increment();
  CoalescedCounter()->Increment(items.size() - 1);

  const core::WhatIfEngine* engine = t->session->whatif_engine();
  if (engine == nullptr) {
    for (const auto& item : items) {
      RecordOutcome(t, false);
      item.ticket.Set(
          Status::FailedPrecondition("no fitted What-if engine; submit a fit "
                                     "or tuning round first"));
    }
    return true;
  }
  // The rung in force for this whole batch: read once, so a sweep landing
  // mid-drain cannot split the batch across fidelity levels.
  const int rung = rung_.load(std::memory_order_relaxed);
  const bool browning = options_.overload.enabled && rung > 0;
  // One snapshot answers the whole batch: epochs, model digest, and the
  // fingerprint of the telemetry window the models were fit on.
  const uint64_t model_epoch = t->session->model_epoch();
  const uint64_t deploy_epoch = t->session->deploy_epoch();
  const uint64_t model_hash = engine->ModelHash();
  if (t->fingerprint_epoch != model_epoch) {
    auto [begin, end] = t->session->fit_window();
    t->fingerprint = FingerprintWindow(t->session->store(), begin, end);
    t->fingerprint_epoch = model_epoch;
  }
  for (const auto& item : items) {
    // The key of the request as asked — brownout fidelity cuts never change
    // it, so a full-fidelity cached answer is always preferred and stale
    // serving matches what the client actually queried.
    WhatIfCacheKey key;
    key.tenant = t->id;
    key.model_epoch = model_epoch;
    key.deploy_epoch = deploy_epoch;
    key.model_hash = model_hash;
    key.workload = t->fingerprint;
    key.config_hash = ConfigHash(item.request);
    if (cache_ != nullptr) {
      WhatIfResponsePtr hit = cache_->Lookup(key);
      if (hit != nullptr) {
        t->cache_hits->Increment();
        RecordOutcome(t, true);
        item.ticket.Set(std::move(hit));
        continue;
      }
    }
    // Rung 1+: cold evaluations trade error-bar fidelity for capacity. The
    // clamped variant is a distinct query with its own cache line; cached
    // content is always unmarked (it is the exact answer to the clamped
    // query) and degradation is stamped on a pointer-distinct copy at serve
    // time.
    WhatIfRequest effective = item.request;
    bool clamped = false;
    if (browning && rung >= static_cast<int>(BrownoutRung::kReducedSampling) &&
        effective.uncertainty_samples > options_.overload.brownout_samples) {
      effective.uncertainty_samples = options_.overload.brownout_samples;
      clamped = true;
    }
    WhatIfCacheKey clamped_key = key;
    if (clamped) {
      clamped_key.config_hash = ConfigHash(effective);
      if (cache_ != nullptr) {
        WhatIfResponsePtr hit = cache_->Lookup(clamped_key);
        if (hit != nullptr) {
          t->cache_hits->Increment();
          DegradedCounter()->Increment();
          RecordOutcome(t, true);
          item.ticket.Set(MakeDegradedCopy(*hit, rung, "reduced sampling"));
          continue;
        }
      }
    }
    // Rung 2+: a fresh-epoch miss may be answered one epoch back, marked.
    if (browning && rung >= static_cast<int>(BrownoutRung::kStaleCache) &&
        cache_ != nullptr) {
      WhatIfResponsePtr stale =
          cache_->LookupStale(key, options_.overload.stale_epoch_lag);
      if (stale != nullptr) {
        DegradedCounter()->Increment();
        RecordOutcome(t, true);
        item.ticket.Set(MakeDegradedCopy(*stale, rung, "stale epoch"));
        continue;
      }
    }
    // Rung 3: no cold evaluation at all.
    if (browning && rung >= static_cast<int>(BrownoutRung::kNoColdWork)) {
      BrownoutRefusalsCounter()->Increment();
      item.ticket.Set(WithRetryAfter(
          Status::Unavailable(
              "brownout: cold what-if evaluation refused (rung NO_COLD_WORK)"),
          static_cast<int64_t>(options_.overload.retry_hints.max_backoff_ms)));
      continue;
    }
    StatusOr<WhatIfResponse> cold = EvaluateWhatIfRequest(*engine, effective);
    if (!cold.ok()) {
      RecordOutcome(t, false);
      item.ticket.Set(cold.status());
      continue;
    }
    auto payload =
        std::make_shared<const WhatIfResponse>(std::move(cold).value());
    if (cache_ != nullptr) {
      cache_->Insert(clamped ? clamped_key : key, payload);
    }
    RecordOutcome(t, true);
    if (clamped) {
      DegradedCounter()->Increment();
      item.ticket.Set(MakeDegradedCopy(*payload, rung, "reduced sampling"));
    } else {
      item.ticket.Set(std::move(payload));
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// The overload sweep

TuningService::SweepReport TuningService::AdvanceVirtualTime(int64_t now_ms) {
  clock_.AdvanceTo(now_ms);
  const int64_t now = clock_.now_ms();
  std::vector<Tenant*> tenants;
  {
    std::lock_guard<std::mutex> lock(tenants_mu_);
    tenants.reserve(tenants_.size());
    for (const auto& t : tenants_) tenants.push_back(t.get());
  }
  // Phase 1 — handler outcomes since the last sweep feed the breakers, per
  // tenant in id order. Per-tenant order is completion order == submission
  // order (the queue serializes each tenant), so the fold is deterministic.
  {
    std::lock_guard<std::mutex> lock(overload_mu_);
    for (Tenant* t : tenants) {
      for (bool ok : t->pending_outcomes) {
        const CircuitBreaker::State before = t->breaker.state();
        t->breaker.RecordOutcome(ok, now);
        const CircuitBreaker::State after = t->breaker.state();
        if (after != before) {
          if (after == CircuitBreaker::State::kTripped) {
            BreakerTripsCounter()->Increment();
          }
          overload_log_.push_back(
              "t=" + std::to_string(now) + " tenant=" + t->name + " breaker " +
              CircuitBreaker::StateName(before) + "->" +
              CircuitBreaker::StateName(after));
        }
      }
      t->pending_outcomes.clear();
    }
  }
  auto record_shed = [&](const std::pair<int, uint64_t>& shed,
                         const char* kind) {
    // Caller holds overload_mu_.
    Tenant* t = tenants[static_cast<size_t>(shed.first)];
    const CircuitBreaker::State before = t->breaker.state();
    t->breaker.RecordShed(now);
    // A shed is an SLO error event: the client never got an answer.
    if (slo_) slo_->Record(0.0, /*error=*/true, now);
    const CircuitBreaker::State after = t->breaker.state();
    overload_log_.push_back("t=" + std::to_string(now) + " tenant=" +
                            t->name + " " + kind + " id=" +
                            std::to_string(shed.second));
    if (after != before) {
      if (after == CircuitBreaker::State::kTripped) {
        BreakerTripsCounter()->Increment();
      }
      overload_log_.push_back(
          "t=" + std::to_string(now) + " tenant=" + t->name + " breaker " +
          CircuitBreaker::StateName(before) + "->" +
          CircuitBreaker::StateName(after));
    }
  };
  // Phase 2 — deadline expiry only (zero capacity): the ladder must see the
  // live backlog, purged of entries that will never be served.
  const double dt = static_cast<double>(now - last_sweep_ms_);
  last_sweep_ms_ = now;
  SweepReport report;
  report.queue = queue_.AdvanceVirtualTime(now, 0.0, nullptr);
  // Phase 3 — expiry sheds feed the breakers, and the ladder takes one step
  // against the measured pressure. The rung is published BEFORE any entry is
  // released: a worker woken by the release pass below must observe the rung
  // this sweep decided, never last sweep's (that race would make drain-time
  // brownout decisions depend on worker timing).
  {
    std::lock_guard<std::mutex> lock(overload_mu_);
    for (const auto& shed : report.queue.shed_deadline) {
      record_shed(shed, "shed_deadline");
    }
    report.pressure_ms =
        queue_.unreleased_cost_ms() /
        std::max(options_.overload.virtual_workers, 1e-9);
    const BrownoutRung before_rung = ladder_.rung();
    const BrownoutRung ladder_rung = ladder_.Update(report.pressure_ms);
    report.rung = ladder_rung;
    if (ladder_rung != before_rung) {
      BrownoutTransitionsCounter()->Increment();
      overload_log_.push_back(
          "t=" + std::to_string(now) + " brownout " + RungName(before_rung) +
          "->" + RungName(ladder_rung) + " pressure_ms=" +
          std::to_string(static_cast<int64_t>(report.pressure_ms)));
    }
    // SLO guard: a multiwindow burn alert (fed by virtual-clock sojourns
    // and sheds through THIS sweep's deadline expiries) escalates the
    // published rung one step past the ladder's pressure verdict. The
    // ladder's own state is untouched, so its hysteresis/dwell discipline
    // resumes the moment the burn cools. Off by default: with enforce
    // unset this block emits nothing and the decision trace is byte-
    // identical to the pressure-only plane.
    if (slo_ != nullptr && options_.overload.slo_guard.enforce &&
        ladder_rung < BrownoutRung::kNoColdWork && slo_->Alerting(now)) {
      report.rung =
          static_cast<BrownoutRung>(static_cast<int>(ladder_rung) + 1);
      SloEscalationsCounter()->Increment();
      char burn[96];
      std::snprintf(burn, sizeof(burn),
                    " fast_burn=%.2f slow_burn=%.2f", slo_->FastBurn(now),
                    slo_->SlowBurn(now));
      overload_log_.push_back("t=" + std::to_string(now) + " slo_escalate " +
                              RungName(ladder_rung) + "->" +
                              RungName(report.rung) + burn);
    }
    rung_.store(static_cast<int>(report.rung), std::memory_order_relaxed);
    RungGauge()->Set(static_cast<double>(static_cast<int>(report.rung)));
  }
  // Phase 4 — capacity release with the CoDel controller consulted at each
  // would-be dispatch. Virtual capacity accrues with virtual time, decoupled
  // from physical workers.
  RequestQueue::SweepOutcome release = queue_.AdvanceVirtualTime(
      now, options_.overload.virtual_workers * dt, &codel_);
  report.queue.released = release.released;
  report.queue.leftover_capacity_ms = release.leftover_capacity_ms;
  report.queue.releases = std::move(release.releases);
  for (const auto& shed : release.shed_deadline) {
    report.queue.shed_deadline.push_back(shed);
  }
  report.queue.shed_codel = std::move(release.shed_codel);
  // Phase 5 — CoDel sheds are failure outcomes for their tenants' breakers.
  {
    std::lock_guard<std::mutex> lock(overload_mu_);
    for (const auto& shed : report.queue.shed_codel) {
      record_shed(shed, "shed_codel");
    }
    // Releases feed the SLO plane: sojourn against the virtual clock, in
    // release order (deterministic). Published burn gauges are what
    // statusz and the Prometheus surface show operators.
    if (slo_ != nullptr) {
      for (const auto& r : report.queue.releases) {
        slo_->Record(static_cast<double>(r.sojourn_ms), /*error=*/false, now);
        SojournHistogram()->Observe(static_cast<double>(r.sojourn_ms));
      }
      FastBurnGauge()->Set(slo_->FastBurn(now));
      SlowBurnGauge()->Set(slo_->SlowBurn(now));
    }
  }
  return report;
}

CircuitBreaker::State TuningService::breaker_state(TenantId id) {
  Tenant* t = FindTenant(id);
  if (t == nullptr) return CircuitBreaker::State::kHealthy;
  std::lock_guard<std::mutex> lock(overload_mu_);
  return t->breaker.state();
}

std::vector<std::string> TuningService::overload_log() const {
  std::lock_guard<std::mutex> lock(overload_mu_);
  return overload_log_;
}

double TuningService::slo_fast_burn() const {
  std::lock_guard<std::mutex> lock(overload_mu_);
  return slo_ == nullptr ? 0.0 : slo_->FastBurn(clock_.now_ms());
}

double TuningService::slo_slow_burn() const {
  std::lock_guard<std::mutex> lock(overload_mu_);
  return slo_ == nullptr ? 0.0 : slo_->SlowBurn(clock_.now_ms());
}

std::string TuningService::Statusz() const {
  char line[256];
  std::string out;
  out += "=== kea::serve statusz ===\n";
  std::snprintf(line, sizeof(line), "virtual_now_ms: %lld\n",
                static_cast<long long>(clock_.now_ms()));
  out += line;
  out += "brownout_rung: ";
  out += RungName(
      static_cast<BrownoutRung>(rung_.load(std::memory_order_relaxed)));
  out += "\n";
  {
    std::lock_guard<std::mutex> tenants_lock(tenants_mu_);
    std::lock_guard<std::mutex> lock(overload_mu_);
    auto mode_name = [](apps::KeaSession::DurabilityMode m) {
      switch (m) {
        case apps::KeaSession::DurabilityMode::kOff:
          return "OFF";
        case apps::KeaSession::DurabilityMode::kDurable:
          return "DURABLE";
        case apps::KeaSession::DurabilityMode::kDegraded:
          return "DEGRADED";
      }
      return "UNKNOWN";
    };
    for (const auto& t : tenants_) {
      std::snprintf(line, sizeof(line),
                    "tenant[%d] %s: breaker=%s trips=%llu fast_fails=%llu "
                    "durability=%s\n",
                    t->id, t->name.c_str(),
                    CircuitBreaker::StateName(t->breaker.state()),
                    static_cast<unsigned long long>(t->breaker.trips()),
                    static_cast<unsigned long long>(t->breaker.fast_fails()),
                    mode_name(t->session->durability_mode()));
      out += line;
      if (t->session->durability_mode() ==
          apps::KeaSession::DurabilityMode::kDegraded) {
        out += "  degraded_reason: " +
               t->session->degraded_reason().message() + "\n";
      }
    }
    if (slo_ != nullptr) {
      out += "slo: " + slo_->Describe(clock_.now_ms()) + "\n";
    } else {
      out += "slo: (overload control off)\n";
    }
  }
  obs::Histogram* h = SojournHistogram();
  std::snprintf(line, sizeof(line),
                "sojourn_ms: p50=%.1f p95=%.1f p99=%.1f count=%llu\n",
                h->Quantile(0.50), h->Quantile(0.95), h->Quantile(0.99),
                static_cast<unsigned long long>(h->count()));
  out += line;
  if (cache_ != nullptr) {
    const WhatIfCache::Stats cs = cache_->stats();
    const uint64_t lookups = cs.hits + cs.misses;
    std::snprintf(line, sizeof(line),
                  "whatif_cache: size=%zu/%zu hit_ratio=%.3f stale_hits=%llu "
                  "evictions=%llu\n",
                  cache_->size(), cache_->capacity(),
                  lookups == 0 ? 0.0
                               : static_cast<double>(cs.hits) /
                                     static_cast<double>(lookups),
                  static_cast<unsigned long long>(cs.stale_hits),
                  static_cast<unsigned long long>(cs.evictions));
    out += line;
  } else {
    out += "whatif_cache: (disabled)\n";
  }
  const RequestQueue::Counters qc = queue_.counters();
  std::snprintf(line, sizeof(line),
                "queue: depth=%zu submitted=%llu accepted=%llu rejected=%llu "
                "completed=%llu shed_deadline=%llu shed_codel=%llu\n",
                queue_.depth(), static_cast<unsigned long long>(qc.submitted),
                static_cast<unsigned long long>(qc.accepted),
                static_cast<unsigned long long>(qc.rejected),
                static_cast<unsigned long long>(qc.completed),
                static_cast<unsigned long long>(qc.shed_deadline),
                static_cast<unsigned long long>(qc.shed_codel));
  out += line;
  obs::ShardRegistry& shards = obs::ShardRegistry::Get();
  std::snprintf(line, sizeof(line),
                "obs_shards: slots=%zu live_threads=%zu epochs=%llu\n",
                shards.slot_count(), shards.live_shard_count(),
                static_cast<unsigned long long>(shards.epochs()));
  out += line;
  // Scope count only: the calibrated per-scope cost is a wall-clock
  // measurement (SelfOverheadSummary / the collapsed-stack trailer carry
  // it), and statusz must stay run-twice diffable for a fixed driver
  // schedule.
  std::snprintf(line, sizeof(line), "profiler: scopes=%llu\n",
                static_cast<unsigned long long>(
                    obs::PhaseProfiler::Get().scope_count()));
  out += line;
  // Durability panel: the self-healing storage plane's global tallies
  // (retries absorbed, scrub salvages, generation fallbacks, degraded-mode
  // round trips) — deterministic counters, so statusz stays diffable.
  obs::Registry& registry = obs::Registry::Get();
  std::snprintf(
      line, sizeof(line),
      "durability: retries=%llu retries_exhausted=%llu scrub_repairs=%llu "
      "generations_discarded=%llu degraded_entries=%llu "
      "degraded_restores=%llu\n",
      static_cast<unsigned long long>(registry.CounterValue("durability.retries")),
      static_cast<unsigned long long>(
          registry.CounterValue("durability.retries_exhausted")),
      static_cast<unsigned long long>(
          registry.CounterValue("durability.scrub_repairs")),
      static_cast<unsigned long long>(
          registry.CounterValue("durability.generations_discarded")),
      static_cast<unsigned long long>(
          registry.CounterValue("durability.degraded_entries")),
      static_cast<unsigned long long>(
          registry.CounterValue("durability.degraded_restores")));
  out += line;
  return out;
}

}  // namespace kea::serve
