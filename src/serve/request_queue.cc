#include "serve/request_queue.h"

#include <algorithm>
#include <string>
#include <utility>

#include "obs/metrics.h"

namespace kea::serve {

namespace {

// Admission traffic is schedule-dependent: kTiming, like every serve
// instrument.
obs::Counter* SubmittedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_submitted", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* AcceptedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_accepted", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_rejected", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* CompletedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_completed", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* ShedDeadlineCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.shed_deadline", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* ShedCodelCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.shed_codel", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* CancelledCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.cancelled_shutdown", "", obs::Kind::kTiming);
  return c;
}
obs::Gauge* DepthGauge() {
  static obs::Gauge* g = obs::Registry::Get().GetGauge(
      "serve.queue_depth", "", obs::Kind::kTiming);
  return g;
}

}  // namespace

RequestQueue::RequestQueue(const Options& options) : options_(options) {}

Status RequestQueue::Push(int tenant, PushSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
  SubmittedCounter()->Increment();
  if (shutdown_) {
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::FailedPrecondition("request queue is shut down");
  }
  if (spec.gated && spec.deadline_ms < now_vt_) {
    // Born expired: reject at admission rather than occupy a slot the sweep
    // would immediately shed.
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::DeadlineExceeded("deadline already expired at submission");
  }
  if (total_ >= options_.capacity) {
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::ResourceExhausted("request queue is full");
  }
  auto& q = pending_[tenant];
  if (q.size() >= options_.per_tenant) {
    if (q.empty()) pending_.erase(tenant);
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::ResourceExhausted("per-tenant queue quota exhausted");
  }
  Entry entry;
  entry.id = next_id_++;
  entry.work = std::move(spec.work);
  entry.shed = std::move(spec.shed);
  entry.deadline_ms = spec.deadline_ms;
  entry.cost_ms = spec.cost_ms;
  entry.enqueue_vt = now_vt_;
  entry.released = !spec.gated;
  if (spec.gated) {
    unreleased_cost_ms_ += spec.cost_ms;
  } else {
    ++released_pending_;
  }
  q.push_back(std::move(entry));
  ++total_;
  ++counters_.accepted;
  AcceptedCounter()->Increment();
  DepthGauge()->Set(static_cast<double>(total_));
  cv_.notify_one();
  return Status::OK();
}

Status RequestQueue::Push(int tenant, std::function<bool()> work) {
  PushSpec spec;
  spec.work = std::move(work);
  return Push(tenant, std::move(spec));
}

void RequestQueue::NoteExternalRejection() {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
  ++counters_.rejected;
  SubmittedCounter()->Increment();
  RejectedCounter()->Increment();
}

RequestQueue::SweepOutcome RequestQueue::AdvanceVirtualTime(
    int64_t now_ms, double capacity_ms, CodelController* codel) {
  SweepOutcome outcome;
  // Shed callbacks resolve caller tickets (their own locks); run them after
  // dropping mu_, in sweep order.
  std::vector<std::pair<std::function<void(const Status&)>, Status>> sheds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    now_vt_ = std::max(now_vt_, now_ms);

    // Pass 1 — deadline expiry. Tenants in id order, entries in FIFO order:
    // the shed sequence is deterministic given the push + sweep schedule.
    for (auto it = pending_.begin(); it != pending_.end();) {
      auto& q = it->second;
      for (auto e = q.begin(); e != q.end();) {
        if (!e->released && e->deadline_ms < now_vt_) {
          ++counters_.shed_deadline;
          ShedDeadlineCounter()->Increment();
          unreleased_cost_ms_ -= e->cost_ms;
          --total_;
          outcome.shed_deadline.emplace_back(it->first, e->id);
          if (e->shed) {
            sheds.emplace_back(
                std::move(e->shed),
                Status::DeadlineExceeded(
                    "deadline expired in queue after " +
                    std::to_string(now_vt_ - e->enqueue_vt) +
                    "ms; shed before dispatch"));
          }
          e = q.erase(e);
        } else {
          ++e;
        }
      }
      it = q.empty() ? pending_.erase(it) : std::next(it);
    }

    // Pass 2 — capacity release, round-robin across tenants, per-tenant FIFO.
    // The CoDel controller sees each entry's sojourn at its would-be
    // dispatch; a shed consumes no capacity (the whole point: shedding must
    // be cheaper than serving).
    double budget = capacity_ms;
    while (budget > 0.0) {
      // Next tenant strictly after the cursor (then wrapped) with an
      // unreleased entry at the front of its unreleased suffix.
      std::map<int, std::deque<Entry>>::iterator pick = pending_.end();
      std::deque<Entry>::iterator pick_entry;
      auto start = pending_.upper_bound(release_cursor_);
      for (int pass = 0; pass < 2 && pick == pending_.end(); ++pass) {
        auto it = pass == 0 ? start : pending_.begin();
        auto end = pass == 0 ? pending_.end() : start;
        for (; it != end; ++it) {
          auto e = std::find_if(it->second.begin(), it->second.end(),
                                [](const Entry& x) { return !x.released; });
          if (e != it->second.end()) {
            pick = it;
            pick_entry = e;
            break;
          }
        }
      }
      if (pick == pending_.end()) break;
      const int tenant = pick->first;
      release_cursor_ = tenant;
      const int64_t sojourn = now_vt_ - pick_entry->enqueue_vt;
      if (codel != nullptr && codel->OnDispatch(sojourn, now_vt_)) {
        ++counters_.shed_codel;
        ShedCodelCounter()->Increment();
        unreleased_cost_ms_ -= pick_entry->cost_ms;
        --total_;
        outcome.shed_codel.emplace_back(tenant, pick_entry->id);
        if (pick_entry->shed) {
          sheds.emplace_back(
              std::move(pick_entry->shed),
              WithRetryAfter(
                  Status::ResourceExhausted(
                      "shed by queue controller: backlog not draining "
                      "(sojourn " +
                      std::to_string(sojourn) + "ms)"),
                  codel->options().interval_ms));
        }
        pick->second.erase(pick_entry);
        EraseIfEmpty(tenant);
        continue;
      }
      pick_entry->released = true;
      // An entry released at `now` virtually finishes at now + cost; fixing
      // the verdict here keeps goodput accounting schedule-independent.
      pick_entry->met_deadline =
          pick_entry->deadline_ms == kNoDeadlineMs ||
          now_vt_ + static_cast<int64_t>(pick_entry->cost_ms) <=
              pick_entry->deadline_ms;
      budget -= pick_entry->cost_ms;
      unreleased_cost_ms_ -= pick_entry->cost_ms;
      ++released_pending_;
      ++outcome.released;
      outcome.releases.push_back({tenant, pick_entry->id, sojourn});
    }
    outcome.leftover_capacity_ms = std::max(budget, 0.0);
    if (unreleased_cost_ms_ < 1e-9) unreleased_cost_ms_ = 0.0;
    DepthGauge()->Set(static_cast<double>(total_));
    cv_.notify_all();
  }
  for (auto& [shed, status] : sheds) shed(status);
  return outcome;
}

bool RequestQueue::PopLocked(int* tenant, std::function<bool()>* work) {
  if (pending_.empty()) return false;
  // Round-robin: scan tenant ids strictly after the cursor, then wrap. Only
  // the FIFO head of a tenant is dispatchable, and only once released.
  auto start = pending_.upper_bound(last_served_);
  for (int pass = 0; pass < 2; ++pass) {
    auto it = pass == 0 ? start : pending_.begin();
    auto end = pass == 0 ? pending_.end() : start;
    for (; it != end; ++it) {
      if (busy_.count(it->first) > 0) continue;
      if (it->second.empty() || !it->second.front().released) continue;
      Entry& entry = it->second.front();
      *tenant = it->first;
      *work = std::move(entry.work);
      inflight_met_[it->first] = entry.met_deadline;
      it->second.pop_front();
      if (it->second.empty()) pending_.erase(it);
      --total_;
      --released_pending_;
      DepthGauge()->Set(static_cast<double>(total_));
      busy_.insert(*tenant);
      last_served_ = *tenant;
      return true;
    }
  }
  return false;
}

void RequestQueue::EraseIfEmpty(int tenant) {
  auto it = pending_.find(tenant);
  if (it != pending_.end() && it->second.empty()) pending_.erase(it);
}

bool RequestQueue::PopBlocking(int* tenant, std::function<bool()>* work) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (PopLocked(tenant, work)) return true;
    if (shutdown_ && total_ == 0) return false;
    cv_.wait(lock);
  }
}

bool RequestQueue::TryPop(int* tenant, std::function<bool()>* work) {
  std::lock_guard<std::mutex> lock(mu_);
  return PopLocked(tenant, work);
}

void RequestQueue::Done(int tenant, bool executed) {
  std::lock_guard<std::mutex> lock(mu_);
  busy_.erase(tenant);
  bool met = true;
  auto it = inflight_met_.find(tenant);
  if (it != inflight_met_.end()) {
    met = it->second;
    inflight_met_.erase(it);
  }
  if (executed) {
    ++counters_.completed;
    CompletedCounter()->Increment();
    if (met) ++counters_.met_deadline;
  } else {
    ++counters_.cancelled_shutdown;
    CancelledCounter()->Increment();
  }
  // The freed slot may unblock every waiter (the tenant's next request is
  // now eligible), and Shutdown-drain / WaitQuiescent waiters need a look.
  cv_.notify_all();
}

void RequestQueue::Shutdown() {
  std::vector<std::function<void(const Status&)>> sheds;
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    // Gated entries that were never released will now never be: resolve them
    // here, distinguishably — kUnavailable with an explicit drain reason,
    // not a deadline shed and not an execution result. Released entries stay
    // poppable so workers drain them before exiting.
    for (auto it = pending_.begin(); it != pending_.end();) {
      auto& q = it->second;
      for (auto e = q.begin(); e != q.end();) {
        if (!e->released) {
          ++counters_.cancelled_shutdown;
          CancelledCounter()->Increment();
          unreleased_cost_ms_ -= e->cost_ms;
          --total_;
          if (e->shed) sheds.push_back(std::move(e->shed));
          e = q.erase(e);
        } else {
          ++e;
        }
      }
      it = q.empty() ? pending_.erase(it) : std::next(it);
    }
    if (unreleased_cost_ms_ < 1e-9) unreleased_cost_ms_ = 0.0;
    cv_.notify_all();
  }
  const Status drained = Status::Unavailable(
      "service shutting down; request drained without execution");
  for (auto& shed : sheds) shed(drained);
}

void RequestQueue::WaitQuiescent() {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] { return released_pending_ == 0 && busy_.empty(); });
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

double RequestQueue::unreleased_cost_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unreleased_cost_ms_;
}

int64_t RequestQueue::virtual_now_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return now_vt_;
}

RequestQueue::Counters RequestQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace kea::serve
