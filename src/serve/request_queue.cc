#include "serve/request_queue.h"

#include <utility>

#include "obs/metrics.h"

namespace kea::serve {

namespace {

// Admission traffic is schedule-dependent: kTiming, like every serve
// instrument.
obs::Counter* SubmittedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_submitted", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* AcceptedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_accepted", "", obs::Kind::kTiming);
  return c;
}
obs::Counter* RejectedCounter() {
  static obs::Counter* c = obs::Registry::Get().GetCounter(
      "serve.requests_rejected", "", obs::Kind::kTiming);
  return c;
}
obs::Gauge* DepthGauge() {
  static obs::Gauge* g = obs::Registry::Get().GetGauge(
      "serve.queue_depth", "", obs::Kind::kTiming);
  return g;
}

}  // namespace

RequestQueue::RequestQueue(const Options& options) : options_(options) {}

Status RequestQueue::Push(int tenant, std::function<void()> work) {
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.submitted;
  SubmittedCounter()->Increment();
  if (shutdown_) {
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::FailedPrecondition("request queue is shut down");
  }
  if (total_ >= options_.capacity) {
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::ResourceExhausted("request queue is full");
  }
  auto& q = pending_[tenant];
  if (q.size() >= options_.per_tenant) {
    if (q.empty()) pending_.erase(tenant);
    ++counters_.rejected;
    RejectedCounter()->Increment();
    return Status::ResourceExhausted("per-tenant queue quota exhausted");
  }
  q.push_back(std::move(work));
  ++total_;
  ++counters_.accepted;
  AcceptedCounter()->Increment();
  DepthGauge()->Set(static_cast<double>(total_));
  cv_.notify_one();
  return Status::OK();
}

bool RequestQueue::PopLocked(int* tenant, std::function<void()>* work) {
  if (pending_.empty()) return false;
  // Round-robin: scan tenant ids strictly after the cursor, then wrap.
  auto start = pending_.upper_bound(last_served_);
  for (int pass = 0; pass < 2; ++pass) {
    auto it = pass == 0 ? start : pending_.begin();
    auto end = pass == 0 ? pending_.end() : start;
    for (; it != end; ++it) {
      if (busy_.count(it->first) > 0) continue;
      *tenant = it->first;
      *work = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) pending_.erase(it);
      --total_;
      DepthGauge()->Set(static_cast<double>(total_));
      busy_.insert(*tenant);
      last_served_ = *tenant;
      return true;
    }
  }
  return false;
}

bool RequestQueue::PopBlocking(int* tenant, std::function<void()>* work) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (PopLocked(tenant, work)) return true;
    if (shutdown_ && total_ == 0) return false;
    cv_.wait(lock);
  }
}

bool RequestQueue::TryPop(int* tenant, std::function<void()>* work) {
  std::lock_guard<std::mutex> lock(mu_);
  return PopLocked(tenant, work);
}

void RequestQueue::Done(int tenant) {
  std::lock_guard<std::mutex> lock(mu_);
  busy_.erase(tenant);
  // The freed slot may unblock every waiter (the tenant's next request is
  // now eligible), and Shutdown-drain waiters also need a look.
  cv_.notify_all();
}

void RequestQueue::Shutdown() {
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = true;
  cv_.notify_all();
}

size_t RequestQueue::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_;
}

RequestQueue::Counters RequestQueue::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace kea::serve
