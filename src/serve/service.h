#ifndef KEA_SERVE_SERVICE_H_
#define KEA_SERVE_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/session.h"
#include "apps/sku_designer.h"
#include "common/status.h"
#include "core/whatif.h"
#include "obs/metrics.h"
#include "serve/fingerprint.h"
#include "serve/request_queue.h"
#include "serve/whatif_cache.h"
#include "sim/types.h"

namespace kea::serve {

using TenantId = int;

/// Future-style handle for an admitted request. Wait() blocks until a worker
/// resolves the ticket and returns a copy of the result. Rejected requests
/// never produce a ticket — admission errors come back from Submit* itself.
template <typename T>
class Ticket {
 public:
  Ticket() : slot_(std::make_shared<Slot>()) {}

  /// Blocks until resolved; returns the handler's StatusOr verbatim.
  StatusOr<T> Wait() const {
    std::unique_lock<std::mutex> lock(slot_->mu);
    slot_->cv.wait(lock, [&] { return slot_->result.has_value(); });
    return *slot_->result;
  }

  bool ready() const {
    std::lock_guard<std::mutex> lock(slot_->mu);
    return slot_->result.has_value();
  }

 private:
  friend class TuningService;
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<StatusOr<T>> result;
  };

  void Set(StatusOr<T> result) const {
    std::lock_guard<std::mutex> lock(slot_->mu);
    if (slot_->result.has_value()) return;  // First resolution wins.
    slot_->result = std::move(result);
    slot_->cv.notify_all();
  }

  std::shared_ptr<Slot> slot_;
};

/// "Refresh my models" request: refit the tenant's What-if engine on its
/// recent telemetry without running the LP or deploying.
struct FitRequest {
  core::WhatIfEngine::Options whatif;
  int lookback_hours = sim::kHoursPerWeek;
};

/// Hypothetical-tuning (SKU design) request. The seed isolates the design's
/// Monte-Carlo from everything else the service is doing: the same request
/// returns the same surface no matter which worker runs it or what other
/// tenants are submitting.
struct SkuDesignRequest {
  apps::SkuDesigner::Options options;
  uint64_t seed = 42;
};

/// Multi-tenant tuning front-end: each tenant owns an isolated KeaSession
/// (own RNG streams, own clock, own telemetry store); the service adds
/// admission control, per-tenant fairness, what-if batching, and a memoized
/// what-if cache on top. Determinism contract: a tenant's request stream
/// produces bit-identical artifacts to replaying the same accepted requests
/// against a solo KeaSession, at any worker count — the queue serializes
/// each tenant's requests, sessions share no mutable state, and cache hits
/// return payloads produced by the same evaluation path as cold misses.
class TuningService {
 public:
  struct Options {
    /// Dedicated worker threads. 0 = no workers: requests queue until the
    /// caller drains them with RunPending() (single-threaded / test mode).
    /// Workers are plain threads, not a common::ThreadPool — the pool's
    /// parallel-for contract serves one job at a time, while service workers
    /// block on a shared queue indefinitely.
    int num_threads = 2;
    RequestQueue::Options queue;
    /// Entry bound for the shared what-if cache; 0 disables caching.
    size_t cache_capacity = 1024;
  };

  explicit TuningService(const Options& options);
  /// Shuts the queue down, joins workers, and resolves anything still queued
  /// with kUnavailable.
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Registers a tenant with its own fresh KeaSession. Thread-safe; returns
  /// the tenant id used in every Submit* call.
  StatusOr<TenantId> AddTenant(const std::string& name,
                               const apps::KeaSession::Config& config);

  /// Direct access to a tenant's session for setup and post-hoc inspection.
  /// Only safe while the tenant has no in-flight or queued requests.
  StatusOr<apps::KeaSession*> tenant_session(TenantId id);

  // -- Request submission. Each returns a ticket on admission or an error
  //    (kResourceExhausted when saturated, kNotFound for unknown tenants).
  //    Requests of one tenant execute in submission order.

  /// Advance the tenant's simulated cluster; resolves to the new clock.
  StatusOr<Ticket<sim::HourIndex>> SubmitSimulate(TenantId id, int hours);

  /// Refit the tenant's What-if engine; resolves to the new model epoch.
  StatusOr<Ticket<uint64_t>> SubmitFit(TenantId id, const FitRequest& request);

  /// Evaluate candidate configurations. Consecutive what-if submissions from
  /// one tenant (not split by another accepted request type) coalesce into
  /// one queue slot and are answered from one models/fingerprint snapshot.
  /// Resolves to an immutable shared payload: a cache hit hands back the
  /// cached response itself (zero-copy), a miss the freshly evaluated one.
  StatusOr<Ticket<WhatIfResponsePtr>> SubmitWhatIf(TenantId id,
                                                   const WhatIfRequest& request);

  /// Run a guarded tuning round (fit + LP + staged rollout).
  StatusOr<Ticket<apps::KeaSession::GuardedRound>> SubmitTuningRound(
      TenantId id, const apps::KeaSession::GuardedRoundOptions& options);

  /// Run hypothetical tuning (SKU design) on the tenant's telemetry.
  StatusOr<Ticket<apps::SkuDesigner::Result>> SubmitSkuDesign(
      TenantId id, const SkuDesignRequest& request);

  /// Drains and executes queued requests on the calling thread until the
  /// queue is momentarily empty; returns how many were executed. The
  /// num_threads == 0 driver; also usable alongside workers.
  size_t RunPending();

  /// Null when Options::cache_capacity == 0.
  const WhatIfCache* cache() const { return cache_.get(); }
  RequestQueue::Counters queue_counters() const { return queue_.counters(); }
  size_t queue_depth() const { return queue_.depth(); }

 private:
  /// One staged (not yet drained) what-if item.
  struct StagedWhatIf {
    WhatIfRequest request;
    Ticket<WhatIfResponsePtr> ticket;
  };

  struct Tenant {
    TenantId id = 0;
    std::string name;
    std::unique_ptr<apps::KeaSession> session;

    /// Guards the batching state below (never held while executing).
    std::mutex staging_mu;
    uint64_t next_batch = 1;
    /// Batch id currently accepting coalesced what-ifs; 0 = none open.
    uint64_t open_batch = 0;
    std::map<uint64_t, std::vector<StagedWhatIf>> staged;

    /// Memoized workload fingerprint of the last fit window, recomputed only
    /// when the model epoch moves. Touched only from the tenant's (single)
    /// in-flight request, so no lock needed.
    WorkloadFingerprint fingerprint;
    uint64_t fingerprint_epoch = ~0ULL;

    /// Per-tenant request/hit counters (kTiming).
    obs::Counter* requests = nullptr;
    obs::Counter* cache_hits = nullptr;
  };

  void WorkerLoop();
  /// Executes one popped request and releases the tenant slot.
  static void RunOne(RequestQueue* queue, int tenant_id,
                     const std::function<void()>& work);

  Tenant* FindTenant(TenantId id);
  /// Wraps `handler` with shutdown handling, epoch capture, and cache
  /// invalidation, then stages/enqueues it as a batch-sealing request.
  template <typename T, typename Handler>
  StatusOr<Ticket<T>> SubmitSealing(TenantId id, Handler handler);

  /// Evaluates (or serves from cache) every what-if staged under `batch`.
  void DrainWhatIfBatch(Tenant* t, uint64_t batch);

  const Options options_;
  RequestQueue queue_;
  std::unique_ptr<WhatIfCache> cache_;
  std::atomic<bool> aborting_{false};

  std::mutex tenants_mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;

  std::vector<std::thread> workers_;
};

}  // namespace kea::serve

#endif  // KEA_SERVE_SERVICE_H_
