#ifndef KEA_SERVE_SERVICE_H_
#define KEA_SERVE_SERVICE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/session.h"
#include "apps/sku_designer.h"
#include "common/retry.h"
#include "common/retry_budget.h"
#include "common/status.h"
#include "common/virtual_clock.h"
#include "core/whatif.h"
#include "obs/metrics.h"
#include "serve/fingerprint.h"
#include "serve/overload.h"
#include "serve/request_queue.h"
#include "serve/whatif_cache.h"
#include "sim/types.h"

namespace kea::serve {

using TenantId = int;

/// Future-style handle for an admitted request. Wait() blocks until a worker
/// resolves the ticket and returns a copy of the result. Rejected requests
/// never produce a ticket — admission errors come back from Submit* itself.
template <typename T>
class Ticket {
 public:
  Ticket() : slot_(std::make_shared<Slot>()) {}

  /// Blocks until resolved; returns the handler's StatusOr verbatim.
  StatusOr<T> Wait() const {
    std::unique_lock<std::mutex> lock(slot_->mu);
    slot_->cv.wait(lock, [&] { return slot_->result.has_value(); });
    return *slot_->result;
  }

  /// Bounded Wait: blocks at most `timeout_ms` of wall time, then returns
  /// kDeadlineExceeded WITHOUT consuming the ticket — the request is still
  /// in flight and a later Wait/WaitFor/ready() can still pick the result
  /// up. This is the caller-side guard (how long am I willing to block);
  /// the request's own virtual-clock deadline (SubmitOptions::deadline_ms)
  /// is the service-side one and sheds the work itself.
  StatusOr<T> WaitFor(int64_t timeout_ms) const {
    std::unique_lock<std::mutex> lock(slot_->mu);
    if (!slot_->cv.wait_for(lock, std::chrono::milliseconds(timeout_ms),
                            [&] { return slot_->result.has_value(); })) {
      return Status::DeadlineExceeded(
          "ticket not resolved within " + std::to_string(timeout_ms) +
          "ms wait budget; request still in flight");
    }
    return *slot_->result;
  }

  /// WaitFor against an absolute steady-clock point.
  StatusOr<T> WaitUntil(std::chrono::steady_clock::time_point when) const {
    std::unique_lock<std::mutex> lock(slot_->mu);
    if (!slot_->cv.wait_until(lock, when,
                              [&] { return slot_->result.has_value(); })) {
      return Status::DeadlineExceeded(
          "ticket not resolved by wait deadline; request still in flight");
    }
    return *slot_->result;
  }

  bool ready() const {
    std::lock_guard<std::mutex> lock(slot_->mu);
    return slot_->result.has_value();
  }

 private:
  friend class TuningService;
  struct Slot {
    std::mutex mu;
    std::condition_variable cv;
    std::optional<StatusOr<T>> result;
  };

  void Set(StatusOr<T> result) const {
    std::lock_guard<std::mutex> lock(slot_->mu);
    if (slot_->result.has_value()) return;  // First resolution wins.
    slot_->result = std::move(result);
    slot_->cv.notify_all();
  }

  std::shared_ptr<Slot> slot_;
};

/// Per-submission overload-control parameters. Default-constructed ==
/// PR 6 behavior: no deadline, dispatch as soon as a worker is free.
struct SubmitOptions {
  /// Virtual-clock deadline. A request whose deadline passes while queued is
  /// shed with kDeadlineExceeded and never dispatched; one that arrives
  /// already expired is rejected at submission. kNoDeadlineMs (and overload
  /// control disabled) bypasses gating entirely.
  int64_t deadline_ms = kNoDeadlineMs;
  /// Declared virtual service cost; 0 = OverloadOptions::default_cost_ms.
  double cost_ms = 0.0;
};

/// "Refresh my models" request: refit the tenant's What-if engine on its
/// recent telemetry without running the LP or deploying.
struct FitRequest {
  core::WhatIfEngine::Options whatif;
  int lookback_hours = sim::kHoursPerWeek;
};

/// Hypothetical-tuning (SKU design) request. The seed isolates the design's
/// Monte-Carlo from everything else the service is doing: the same request
/// returns the same surface no matter which worker runs it or what other
/// tenants are submitting.
struct SkuDesignRequest {
  apps::SkuDesigner::Options options;
  uint64_t seed = 42;
};

/// Multi-tenant tuning front-end: each tenant owns an isolated KeaSession
/// (own RNG streams, own clock, own telemetry store); the service adds
/// admission control, per-tenant fairness, what-if batching, a memoized
/// what-if cache, and — when Options::overload.enabled — an overload-control
/// plane: end-to-end deadlines against a deterministic virtual clock,
/// CoDel-style adaptive shedding, per-tenant retry budgets and circuit
/// breakers, and a brownout degradation ladder (DESIGN.md "Overload
/// control").
///
/// Determinism contract: a tenant's request stream produces bit-identical
/// artifacts to replaying the same accepted requests against a solo
/// KeaSession, at any worker count. Under overload control the shed /
/// degrade / breaker decision trace is additionally bit-identical at any
/// worker count, provided the driver's schedule is deterministic: Submit*
/// calls in a fixed program order, AdvanceVirtualTime called from one thread
/// at quiescent points (WaitQuiescent between sweeps). Decisions depend only
/// on the virtual clock and virtual service capacity — never on wall time or
/// physical worker speed.
class TuningService {
 public:
  struct Options {
    /// Dedicated worker threads. 0 = no workers: requests queue until the
    /// caller drains them with RunPending() (single-threaded / test mode).
    /// Workers are plain threads, not a common::ThreadPool — the pool's
    /// parallel-for contract serves one job at a time, while service workers
    /// block on a shared queue indefinitely.
    int num_threads = 2;
    RequestQueue::Options queue;
    /// Entry bound for the shared what-if cache; 0 disables caching.
    size_t cache_capacity = 1024;
    /// Overload-control plane; disabled by default (bit-exact PR 6 service).
    OverloadOptions overload;
  };

  /// One AdvanceVirtualTime step: the queue sweep plus the ladder verdict.
  struct SweepReport {
    RequestQueue::SweepOutcome queue;
    BrownoutRung rung = BrownoutRung::kNormal;
    double pressure_ms = 0.0;
  };

  explicit TuningService(const Options& options);
  /// Shuts the queue down (unreleased requests resolve kUnavailable with a
  /// drain reason), joins workers, and drains anything still dispatchable.
  ~TuningService();

  TuningService(const TuningService&) = delete;
  TuningService& operator=(const TuningService&) = delete;

  /// Registers a tenant with its own fresh KeaSession. Thread-safe; returns
  /// the tenant id used in every Submit* call.
  StatusOr<TenantId> AddTenant(const std::string& name,
                               const apps::KeaSession::Config& config);

  /// Direct access to a tenant's session for setup and post-hoc inspection.
  /// Only safe while the tenant has no in-flight or queued requests.
  StatusOr<apps::KeaSession*> tenant_session(TenantId id);

  // -- Request submission. Each returns a ticket on admission or an error:
  //    kResourceExhausted when saturated or the retry budget is dry,
  //    kDeadlineExceeded when the deadline already passed, kUnavailable when
  //    the tenant's breaker is open or brownout refuses cold work, kNotFound
  //    for unknown tenants. Overload rejections carry a deterministic
  //    jittered "[retry_after_ms=N]" hint (see RetryAfterMs). Requests of
  //    one tenant execute in submission order.

  /// Advance the tenant's simulated cluster; resolves to the new clock.
  StatusOr<Ticket<sim::HourIndex>> SubmitSimulate(
      TenantId id, int hours, const SubmitOptions& submit = SubmitOptions());

  /// Refit the tenant's What-if engine; resolves to the new model epoch.
  StatusOr<Ticket<uint64_t>> SubmitFit(
      TenantId id, const FitRequest& request,
      const SubmitOptions& submit = SubmitOptions());

  /// Evaluate candidate configurations. Consecutive what-if submissions from
  /// one tenant (not split by another accepted request type) coalesce into
  /// one queue slot and are answered from one models/fingerprint snapshot.
  /// Resolves to an immutable shared payload: a cache hit hands back the
  /// cached response itself (zero-copy), a miss the freshly evaluated one.
  /// Under brownout the payload may be marked degraded (reduced sampling or
  /// a stale epoch), and rung 3 refuses cold evaluations with kUnavailable.
  StatusOr<Ticket<WhatIfResponsePtr>> SubmitWhatIf(
      TenantId id, const WhatIfRequest& request,
      const SubmitOptions& submit = SubmitOptions());

  /// Run a guarded tuning round (fit + LP + staged rollout).
  StatusOr<Ticket<apps::KeaSession::GuardedRound>> SubmitTuningRound(
      TenantId id, const apps::KeaSession::GuardedRoundOptions& options,
      const SubmitOptions& submit = SubmitOptions());

  /// Run hypothetical tuning (SKU design) on the tenant's telemetry.
  StatusOr<Ticket<apps::SkuDesigner::Result>> SubmitSkuDesign(
      TenantId id, const SkuDesignRequest& request,
      const SubmitOptions& submit = SubmitOptions());

  /// Drains and executes queued requests on the calling thread until the
  /// queue is momentarily empty; returns how many were executed. The
  /// num_threads == 0 driver; also usable alongside workers.
  size_t RunPending();

  // -- Overload-control plane (Options::overload.enabled).

  /// Advances the service's virtual clock and runs one deterministic
  /// overload sweep: pending handler outcomes feed the per-tenant breakers
  /// (in tenant-id order), expired requests are shed in queue, capacity is
  /// released, and the brownout ladder takes one step against the measured
  /// backlog pressure. Call from one driver thread at a time; interleave
  /// with WaitQuiescent() for a bit-identical decision trace.
  SweepReport AdvanceVirtualTime(int64_t now_ms);

  /// Blocks until every released request has been executed and no request
  /// is in flight — the barrier between a sweep and the next clock advance.
  void WaitQuiescent() { queue_.WaitQuiescent(); }

  const VirtualClock& clock() const { return clock_; }
  BrownoutRung brownout_rung() const {
    return static_cast<BrownoutRung>(rung_.load(std::memory_order_relaxed));
  }
  /// Breaker state for a tenant (kHealthy for unknown ids).
  CircuitBreaker::State breaker_state(TenantId id);
  /// SLO burn rates over the fast / slow windows, as of the last sweep.
  /// 0.0 while overload control is off (no tracker exists).
  double slo_fast_burn() const;
  double slo_slow_burn() const;
  /// Human-readable operational snapshot: rung, per-tenant breaker states,
  /// SLO burn, sojourn percentiles, cache hit ratio, queue depth/counters,
  /// shard-registry epochs, and profiler self-overhead. Safe to call any
  /// time; renders from the same instruments the Prometheus surface exports.
  std::string Statusz() const;
  /// The ordered overload decision log: one line per admission-time decision
  /// (fast-fail, budget rejection) and per sweep event (shed, release count,
  /// rung and breaker transitions). Bit-identical across worker counts under
  /// the determinism contract above; empty while the plane never engages.
  std::vector<std::string> overload_log() const;

  /// Null when Options::cache_capacity == 0.
  const WhatIfCache* cache() const { return cache_.get(); }
  RequestQueue::Counters queue_counters() const { return queue_.counters(); }
  size_t queue_depth() const { return queue_.depth(); }

 private:
  /// One staged (not yet drained) what-if item.
  struct StagedWhatIf {
    uint64_t item_id = 0;
    WhatIfRequest request;
    Ticket<WhatIfResponsePtr> ticket;
  };

  struct Tenant {
    TenantId id = 0;
    std::string name;
    std::unique_ptr<apps::KeaSession> session;

    /// Guards the batching state below (never held while executing).
    std::mutex staging_mu;
    uint64_t next_batch = 1;
    uint64_t next_item = 1;
    /// Batch id currently accepting coalesced what-ifs; 0 = none open.
    uint64_t open_batch = 0;
    std::map<uint64_t, std::vector<StagedWhatIf>> staged;

    /// Memoized workload fingerprint of the last fit window, recomputed only
    /// when the model epoch moves. Touched only from the tenant's (single)
    /// in-flight request, so no lock needed.
    WorkloadFingerprint fingerprint;
    uint64_t fingerprint_epoch = ~0ULL;

    // -- Overload-control state, guarded by TuningService::overload_mu_.
    CircuitBreaker breaker;
    RetryBudget retry_budget;
    /// Jitter source for this tenant's retry_after_ms hints.
    RetryPolicy retry_hints;
    /// Consecutive rejections since the last acceptance; >0 marks the next
    /// submission as a retry, charged against the budget.
    uint64_t reject_streak = 0;
    uint64_t rejections = 0;  ///< Lifetime; the hint jitter's call index.
    /// Handler outcomes since the last sweep, completion (== submission)
    /// order; drained into the breaker by AdvanceVirtualTime.
    std::vector<bool> pending_outcomes;

    /// Per-tenant request/hit counters (kTiming).
    obs::Counter* requests = nullptr;
    obs::Counter* cache_hits = nullptr;

    Tenant(const CircuitBreaker::Options& breaker_options,
           const RetryBudget::Options& budget_options,
           const RetryPolicy::Options& hint_options)
        : breaker(breaker_options),
          retry_budget(budget_options),
          retry_hints(hint_options) {}
  };

  void WorkerLoop();
  /// Executes one popped request and releases the tenant slot.
  static void RunOne(RequestQueue* queue, int tenant_id,
                     const std::function<bool()>& work);

  Tenant* FindTenant(TenantId id);
  /// Overload admission gate: breaker fast-fail, retry-budget charge,
  /// brownout refusal of cold work. OK = proceed to the queue. Caller must
  /// treat any error as a rejection (already counted + logged).
  Status AdmitOverload(Tenant* t, bool cold_work);
  /// Folds a queue rejection into the tenant's retry state and appends the
  /// deterministic backoff hint.
  Status NoteRejected(Tenant* t, Status status);
  void NoteAccepted(Tenant* t);
  /// Builds the queue spec for an accepted submission.
  RequestQueue::PushSpec MakeSpec(const SubmitOptions& submit);
  /// Records a handler outcome for the tenant's breaker (overload mode).
  void RecordOutcome(Tenant* t, bool ok);

  /// Wraps `handler` with shutdown handling, epoch capture, and cache
  /// invalidation, then stages/enqueues it as a batch-sealing request.
  template <typename T, typename Handler>
  StatusOr<Ticket<T>> SubmitSealing(TenantId id, const SubmitOptions& submit,
                                    bool cold_work, Handler handler);

  /// Evaluates (or serves from cache) every what-if staged under `batch`,
  /// applying the brownout rung in force. Returns false only when the batch
  /// was resolved with the shutdown drain status (counts as cancelled).
  bool DrainWhatIfBatch(Tenant* t, uint64_t batch);

  const Options options_;
  RequestQueue queue_;
  std::unique_ptr<WhatIfCache> cache_;
  std::atomic<bool> aborting_{false};

  mutable std::mutex tenants_mu_;
  std::vector<std::unique_ptr<Tenant>> tenants_;

  // -- Overload-control plane. codel_/ladder_/last_sweep_ms_ are touched
  //    only by the (single) AdvanceVirtualTime driver; breakers, budgets,
  //    pending outcomes, and the log are shared with submit/worker threads
  //    under overload_mu_.
  VirtualClock clock_;
  CodelController codel_;
  BrownoutLadder ladder_;
  int64_t last_sweep_ms_ = 0;
  std::atomic<int> rung_{0};
  mutable std::mutex overload_mu_;
  std::vector<std::string> overload_log_;
  /// SLO plane (null while overload control is off). Fed releases and sheds
  /// under overload_mu_; read by statusz and the burn accessors.
  std::unique_ptr<obs::SloTracker> slo_;

  std::vector<std::thread> workers_;
};

}  // namespace kea::serve

#endif  // KEA_SERVE_SERVICE_H_
